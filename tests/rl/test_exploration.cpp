// Exploration-mode tests for the neural bandit agent: the paper's softmax
// sampling vs the epsilon-greedy alternative (ablation feature).
#include <gtest/gtest.h>

#include "rl/neural_agent.hpp"

namespace fedpower::rl {
namespace {

NeuralAgentConfig config_with(ExplorationMode mode) {
  NeuralAgentConfig config;
  config.state_dim = 3;
  config.action_count = 4;
  config.hidden_sizes = {8};
  config.replay_capacity = 128;
  config.exploration = mode;
  return config;
}

TEST(Exploration, DefaultIsSoftmax) {
  NeuralAgentConfig config;
  EXPECT_EQ(config.exploration, ExplorationMode::kSoftmax);
}

TEST(Exploration, EpsilonGreedyExploresAtHighEpsilon) {
  NeuralAgentConfig config = config_with(ExplorationMode::kEpsilonGreedy);
  config.tau_max = 1.0;   // epsilon = 1: fully random
  config.tau_decay = 0.0;
  NeuralBanditAgent agent(config, util::Rng{1});
  const std::vector<double> state = {0.5, 0.5, 0.5};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[agent.select_action(state)];
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Exploration, EpsilonGreedyExploitsAtFloor) {
  NeuralAgentConfig config = config_with(ExplorationMode::kEpsilonGreedy);
  config.tau_max = 0.9;
  config.tau_decay = 1.0;  // collapses to the floor immediately
  config.tau_min = 0.0001;
  NeuralBanditAgent agent(config, util::Rng{2});
  const std::vector<double> state = {0.5, 0.5, 0.5};
  // Advance the schedule far enough that exp(-decay * step) is at the
  // floor (0.9 * e^-20 << tau_min).
  for (int i = 0; i < 20; ++i) agent.record(state, 0, 0.0);
  const std::size_t greedy = agent.greedy_action(state);
  int matches = 0;
  for (int i = 0; i < 200; ++i)
    if (agent.select_action(state) == greedy) ++matches;
  EXPECT_GE(matches, 198);
}

TEST(Exploration, EpsilonClampedToOne) {
  // tau_max may exceed 1 in softmax mode; in epsilon-greedy it must clamp.
  NeuralAgentConfig config = config_with(ExplorationMode::kEpsilonGreedy);
  config.tau_max = 5.0;
  config.tau_decay = 0.0;
  NeuralBanditAgent agent(config, util::Rng{3});
  const std::vector<double> state = {0.1, 0.2, 0.3};
  // Must not abort (epsilon > 1 would violate epsilon_greedy's contract).
  for (int i = 0; i < 100; ++i) agent.select_action(state);
}

TEST(Exploration, BothModesLearnTheSameBandit) {
  const std::vector<double> state = {0.5, 0.5, 0.5};
  const std::vector<double> rewards = {0.1, 0.9, 0.3, -0.5};
  for (const ExplorationMode mode :
       {ExplorationMode::kSoftmax, ExplorationMode::kEpsilonGreedy}) {
    NeuralAgentConfig config = config_with(mode);
    config.tau_decay = 0.003;
    NeuralBanditAgent agent(config, util::Rng{4});
    for (int t = 0; t < 2000; ++t) {
      const std::size_t a = agent.select_action(state);
      agent.record(state, a, rewards[a]);
    }
    EXPECT_EQ(agent.greedy_action(state), 1u)
        << "mode=" << static_cast<int>(mode);
  }
}

TEST(Exploration, GreedyActionUnaffectedByMode) {
  NeuralBanditAgent softmax_agent(config_with(ExplorationMode::kSoftmax),
                                  util::Rng{5});
  NeuralBanditAgent eps_agent(config_with(ExplorationMode::kEpsilonGreedy),
                              util::Rng{5});
  eps_agent.set_parameters(softmax_agent.parameters());
  const std::vector<double> state = {0.3, 0.6, 0.9};
  EXPECT_EQ(softmax_agent.greedy_action(state),
            eps_agent.greedy_action(state));
}

}  // namespace
}  // namespace fedpower::rl
