// Parameterized sweep of the paper's reward function (Eq. 4) over budget
// and offset combinations: the four-segment structure must hold for any
// sane (P_crit, k_offset), not just the paper's 0.6/0.05.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/reward.hpp"

namespace fedpower::rl {
namespace {

class RewardSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {
 protected:
  double p_crit() const { return GetParam().first; }
  double k() const { return GetParam().second; }
  PaperReward reward() const { return PaperReward(p_crit(), k(), 1479.0); }
};

TEST_P(RewardSweep, FullRewardExactlyAtBudget) {
  EXPECT_DOUBLE_EQ(reward().evaluate(1479.0, p_crit()), 1.0);
}

TEST_P(RewardSweep, ZeroAtBudgetPlusOffset) {
  EXPECT_NEAR(reward().evaluate(1479.0, p_crit() + k()), 0.0, 1e-12);
}

TEST_P(RewardSweep, MinusOneAtBudgetPlusTwoOffsets) {
  EXPECT_NEAR(reward().evaluate(1479.0, p_crit() + 2.0 * k()), -1.0, 1e-12);
}

TEST_P(RewardSweep, ContinuousEverywhere) {
  const PaperReward r = reward();
  for (const double f : {102.0, 739.5, 1479.0}) {
    for (double p = p_crit() - k(); p <= p_crit() + 3.0 * k();
         p += k() / 50.0) {
      const double below = r.evaluate(f, p - 1e-10);
      const double above = r.evaluate(f, p + 1e-10);
      EXPECT_NEAR(below, above, 1e-6)
          << "f=" << f << " P=" << p;
    }
  }
}

TEST_P(RewardSweep, MonotoneNonIncreasingInPower) {
  const PaperReward r = reward();
  double previous = 2.0;
  for (double p = 0.0; p <= p_crit() + 3.0 * k(); p += k() / 10.0) {
    const double value = r.evaluate(1000.0, p);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST_P(RewardSweep, MonotoneNonDecreasingInFrequencyWhenSafe) {
  const PaperReward r = reward();
  double previous = -2.0;
  for (double f = 102.0; f <= 1479.0; f += 98.0) {
    const double value = r.evaluate(f, p_crit() * 0.8);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST_P(RewardSweep, Bounded) {
  const PaperReward r = reward();
  for (double f = 102.0; f <= 1479.0; f += 196.0)
    for (double p = 0.0; p <= 3.0; p += 0.05) {
      const double value = r.evaluate(f, p);
      EXPECT_GE(value, -1.0);
      EXPECT_LE(value, 1.0);
    }
}

TEST_P(RewardSweep, FrequencyIrrelevantDeepInViolation) {
  const PaperReward r = reward();
  const double p = p_crit() + 1.5 * k();
  EXPECT_NEAR(r.evaluate(102.0, p), r.evaluate(1479.0, p), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetOffsetGrid, RewardSweep,
    ::testing::Values(std::pair{0.6, 0.05},   // the paper's setting
                      std::pair{0.4, 0.05},   // tighter budget
                      std::pair{0.8, 0.05},   // looser budget
                      std::pair{0.6, 0.01},   // near-hard constraint
                      std::pair{0.6, 0.2},    // very soft ramp
                      std::pair{1.5, 0.1}),   // multicore-scale budget
    [](const ::testing::TestParamInfo<std::pair<double, double>>& param_info) {
      const auto fmt = [](double v) {
        std::string text = std::to_string(v);
        text.erase(text.find_last_not_of('0') + 1);
        for (char& c : text)
          if (c == '.') c = 'p';
        return text;
      };
      std::string name = "P";
      name += fmt(param_info.param.first);
      name += "_k";
      name += fmt(param_info.param.second);
      return name;
    });

}  // namespace
}  // namespace fedpower::rl
