#include "rl/tabular.hpp"

#include <gtest/gtest.h>

namespace fedpower::rl {
namespace {

Discretizer simple_discretizer() {
  return Discretizer({
      DimensionSpec{0.0, 1.0, 4},
      DimensionSpec{0.0, 10.0, 5},
  });
}

TEST(Discretizer, StateCountIsProductOfBins) {
  EXPECT_EQ(simple_discretizer().state_count(), 20u);
  EXPECT_EQ(simple_discretizer().dimension_count(), 2u);
}

TEST(Discretizer, BinBoundaries) {
  const Discretizer d = simple_discretizer();
  EXPECT_EQ(d.bin(0, 0.0), 0u);
  EXPECT_EQ(d.bin(0, 0.24), 0u);
  EXPECT_EQ(d.bin(0, 0.25), 1u);
  EXPECT_EQ(d.bin(0, 0.74), 2u);
  EXPECT_EQ(d.bin(0, 0.75), 3u);
  EXPECT_EQ(d.bin(0, 0.999), 3u);
}

TEST(Discretizer, ClampsOutOfRange) {
  const Discretizer d = simple_discretizer();
  EXPECT_EQ(d.bin(0, -5.0), 0u);
  EXPECT_EQ(d.bin(0, 99.0), 3u);
  EXPECT_EQ(d.bin(1, -1.0), 0u);
  EXPECT_EQ(d.bin(1, 100.0), 4u);
}

TEST(Discretizer, IndexIsRowMajor) {
  const Discretizer d = simple_discretizer();
  // bin(dim0)=1, bin(dim1)=2 -> 1*5 + 2 = 7.
  EXPECT_EQ(d.index(std::vector<double>{0.3, 4.5}), 7u);
}

TEST(Discretizer, IndexCoversFullRangeInjectively) {
  const Discretizer d = simple_discretizer();
  std::vector<bool> seen(d.state_count(), false);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j) {
      const std::size_t idx = d.index(std::vector<double>{
          0.125 + 0.25 * i, 1.0 + 2.0 * j});
      ASSERT_LT(idx, d.state_count());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Discretizer, UpperEdgeBelongsToLastBin) {
  const Discretizer d = simple_discretizer();
  EXPECT_EQ(d.bin(0, 1.0), 3u);
}

TEST(DiscretizerDeathTest, RejectsWrongDimensionality) {
  const Discretizer d = simple_discretizer();
  EXPECT_DEATH(d.index(std::vector<double>{0.5}), "precondition");
}

TEST(QTable, InitialValue) {
  QTable table(10, 4, 0.5);
  EXPECT_DOUBLE_EQ(table.value(3, 2), 0.5);
  EXPECT_EQ(table.states(), 10u);
  EXPECT_EQ(table.actions(), 4u);
}

TEST(QTable, UpdateMovesTowardReward) {
  QTable table(4, 2);
  table.update(1, 0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(table.value(1, 0), 0.1);
  table.update(1, 0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(table.value(1, 0), 0.19);
}

TEST(QTable, UpdateConvergesToStationaryReward) {
  QTable table(1, 1);
  for (int i = 0; i < 500; ++i) table.update(0, 0, 0.7, 0.1);
  EXPECT_NEAR(table.value(0, 0), 0.7, 1e-6);
}

TEST(QTable, VisitCountsTrack) {
  QTable table(4, 2);
  table.update(2, 1, 0.0, 0.1);
  table.update(2, 1, 0.0, 0.1);
  table.update(2, 0, 0.0, 0.1);
  EXPECT_EQ(table.visits(2, 1), 2u);
  EXPECT_EQ(table.visits(2, 0), 1u);
  EXPECT_EQ(table.visits(0, 0), 0u);
  EXPECT_EQ(table.state_visits(2), 3u);
}

TEST(QTable, StateMeanRewardAverages) {
  QTable table(2, 2);
  table.update(0, 0, 1.0, 0.5);
  table.update(0, 1, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(table.state_mean_reward(0), 0.5);
  EXPECT_DOUBLE_EQ(table.state_mean_reward(1), 0.0);  // unvisited
}

TEST(QTable, BestAction) {
  QTable table(2, 3);
  table.set_value(0, 0, 0.2);
  table.set_value(0, 1, 0.9);
  table.set_value(0, 2, 0.5);
  EXPECT_EQ(table.best_action(0), 1u);
  EXPECT_EQ(table.best_action(1), 0u);  // all equal -> first
}

TEST(QTable, RowReturnsAllActions) {
  QTable table(2, 3);
  table.set_value(1, 2, 7.0);
  const std::vector<double> row = table.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[2], 7.0);
}

TEST(QTable, StorageBytesScalesWithTable) {
  QTable small(10, 4);
  QTable large(100, 4);
  EXPECT_GT(large.storage_bytes(), small.storage_bytes());
  // A 750-state, 15-action table is far larger than the 2.9 kB neural
  // payload — one of the paper's implicit points about scalability.
  QTable profit_sized(750, 15);
  EXPECT_GT(profit_sized.storage_bytes(), 90000u);
}

TEST(QTableDeathTest, BoundsChecked) {
  QTable table(4, 2);
  EXPECT_DEATH(table.value(4, 0), "precondition");
  EXPECT_DEATH(table.value(0, 2), "precondition");
  EXPECT_DEATH(table.update(0, 0, 0.0, 0.0), "precondition");
}

}  // namespace
}  // namespace fedpower::rl
