#include "rl/policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::rl {
namespace {

TEST(Softmax, SumsToOne) {
  const std::vector<double> values = {0.1, 0.5, -0.3, 2.0};
  const auto probs = softmax(values, 0.9);
  double total = 0.0;
  for (const double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Softmax, EqualValuesGiveUniform) {
  const std::vector<double> values(5, 0.3);
  const auto probs = softmax(values, 0.5);
  for (const double p : probs) EXPECT_NEAR(p, 0.2, 1e-12);
}

TEST(Softmax, HighTemperatureApproachesUniform) {
  const std::vector<double> values = {0.0, 1.0};
  const auto probs = softmax(values, 100.0);
  EXPECT_NEAR(probs[0], 0.5, 0.01);
}

TEST(Softmax, LowTemperatureApproachesArgmax) {
  const std::vector<double> values = {0.0, 1.0, 0.5};
  const auto probs = softmax(values, 0.01);
  EXPECT_GT(probs[1], 0.999);
}

TEST(Softmax, NumericallyStableForLargeValues) {
  const std::vector<double> values = {1000.0, 1001.0};
  const auto probs = softmax(values, 1.0);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_NEAR(probs[1] / probs[0], std::exp(1.0), 1e-9);
}

TEST(Softmax, KnownTwoActionDistribution) {
  const std::vector<double> values = {0.0, 1.0};
  const auto probs = softmax(values, 1.0);
  const double expected = 1.0 / (1.0 + std::exp(-1.0));
  EXPECT_NEAR(probs[1], expected, 1e-12);
}

TEST(Softmax, TemperatureMatchesPaperEquation3) {
  // pi(a|s) = exp(mu_a / tau) / sum exp(mu_a' / tau)
  const std::vector<double> mu = {0.2, 0.8, -0.1};
  const double tau = 0.35;
  const auto probs = softmax(mu, tau);
  double denom = 0.0;
  for (const double m : mu) denom += std::exp(m / tau);
  for (std::size_t i = 0; i < mu.size(); ++i)
    EXPECT_NEAR(probs[i], std::exp(mu[i] / tau) / denom, 1e-12);
}

TEST(SampleSoftmax, RespectsDistribution) {
  const std::vector<double> values = {0.0, 1.0};
  util::Rng rng(1);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (sample_softmax(values, 1.0, rng) == 1) ++ones;
  const double expected = 1.0 / (1.0 + std::exp(-1.0));
  EXPECT_NEAR(static_cast<double>(ones) / n, expected, 0.02);
}

TEST(Argmax, FindsLargest) {
  EXPECT_EQ(argmax(std::vector<double>{1.0, 3.0, 2.0}), 1u);
}

TEST(Argmax, FirstOnTies) {
  EXPECT_EQ(argmax(std::vector<double>{2.0, 2.0, 1.0}), 0u);
}

TEST(Argmax, SingleElement) {
  EXPECT_EQ(argmax(std::vector<double>{-5.0}), 0u);
}

TEST(EpsilonGreedy, ZeroEpsilonIsGreedy) {
  util::Rng rng(2);
  const std::vector<double> values = {0.0, 5.0, 1.0};
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(epsilon_greedy(values, 0.0, rng), 1u);
}

TEST(EpsilonGreedy, FullEpsilonIsUniform) {
  util::Rng rng(3);
  const std::vector<double> values = {0.0, 5.0, 1.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[epsilon_greedy(values, 1.0, rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 3, 500);
}

TEST(EpsilonGreedy, IntermediateEpsilonMix) {
  util::Rng rng(4);
  const std::vector<double> values = {0.0, 5.0};
  int greedy_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (epsilon_greedy(values, 0.2, rng) == 1) ++greedy_hits;
  // P(best) = 0.8 + 0.2*0.5 = 0.9.
  EXPECT_NEAR(static_cast<double>(greedy_hits) / n, 0.9, 0.01);
}

TEST(Entropy, UniformIsLogN) {
  const std::vector<double> probs(4, 0.25);
  EXPECT_NEAR(entropy(probs), std::log(4.0), 1e-12);
}

TEST(Entropy, DeterministicIsZero) {
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{1.0, 0.0, 0.0}), 0.0);
}

TEST(Entropy, DecreasesAsTemperatureDecays) {
  // The paper's exploration story: entropy of the softmax policy must fall
  // monotonically as tau decays from tau_max to tau_min.
  const std::vector<double> mu = {0.2, 0.5, 0.35, 0.1, 0.6};
  double previous = 1e9;
  for (const double tau : {0.9, 0.5, 0.25, 0.1, 0.05, 0.01}) {
    const double h = entropy(softmax(mu, tau));
    EXPECT_LT(h, previous);
    previous = h;
  }
}

}  // namespace
}  // namespace fedpower::rl
