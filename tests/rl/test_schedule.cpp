#include "rl/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::rl {
namespace {

TEST(ExponentialDecay, InitialValueAtStepZero) {
  ExponentialDecay schedule(0.9, 0.0005, 0.01);
  EXPECT_DOUBLE_EQ(schedule.value(0), 0.9);
}

TEST(ExponentialDecay, FollowsExponential) {
  ExponentialDecay schedule(0.9, 0.0005, 0.01);
  EXPECT_NEAR(schedule.value(1000), 0.9 * std::exp(-0.5), 1e-12);
}

TEST(ExponentialDecay, ClampsAtFloor) {
  ExponentialDecay schedule(0.9, 0.0005, 0.01);
  EXPECT_DOUBLE_EQ(schedule.value(1000000), 0.01);
}

TEST(ExponentialDecay, MonotoneNonIncreasing) {
  ExponentialDecay schedule(0.9, 0.0005, 0.01);
  double previous = schedule.value(0);
  for (std::size_t t = 1; t < 20000; t += 137) {
    const double v = schedule.value(t);
    EXPECT_LE(v, previous);
    previous = v;
  }
}

TEST(ExponentialDecay, PaperScheduleReachesFloorWithinTraining) {
  // tau_max=0.9, decay=5e-4, tau_min=0.01: floor reached at step ~9000,
  // within the paper's 100 rounds x 100 steps = 10000 total steps.
  ExponentialDecay schedule(0.9, 0.0005, 0.01);
  const std::size_t at = schedule.steps_to_floor();
  EXPECT_GT(at, 8000u);
  EXPECT_LT(at, 10000u);
  EXPECT_DOUBLE_EQ(schedule.value(at), 0.01);
  EXPECT_GT(schedule.value(at - 100), 0.01);
}

TEST(ExponentialDecay, ZeroDecayIsConstant) {
  ExponentialDecay schedule(0.5, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(schedule.value(0), 0.5);
  EXPECT_DOUBLE_EQ(schedule.value(100000), 0.5);
  EXPECT_EQ(schedule.steps_to_floor(), 0u);
}

TEST(ExponentialDecay, Accessors) {
  ExponentialDecay schedule(0.9, 0.0005, 0.01);
  EXPECT_DOUBLE_EQ(schedule.initial(), 0.9);
  EXPECT_DOUBLE_EQ(schedule.decay(), 0.0005);
  EXPECT_DOUBLE_EQ(schedule.floor(), 0.01);
}

TEST(ExponentialDecayDeathTest, RejectsFloorAboveInitial) {
  EXPECT_DEATH(ExponentialDecay(0.1, 0.01, 0.5), "precondition");
}

TEST(LinearDecay, Slope) {
  LinearDecay schedule(1.0, 0.1, 0.2);
  EXPECT_DOUBLE_EQ(schedule.value(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.value(5), 0.5);
  EXPECT_DOUBLE_EQ(schedule.value(100), 0.2);  // clamped
}

TEST(LinearDecay, ZeroSlopeIsConstant) {
  LinearDecay schedule(0.7, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(schedule.value(1000), 0.7);
}

}  // namespace
}  // namespace fedpower::rl
