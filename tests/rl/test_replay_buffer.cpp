#include "rl/replay_buffer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fedpower::rl {
namespace {

std::vector<double> state_of(double x) { return {x, x + 1.0, x + 2.0}; }

TEST(ReplayBuffer, StartsEmpty) {
  ReplayBuffer buffer(10, 3);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 10u);
  EXPECT_EQ(buffer.state_dim(), 3u);
}

TEST(ReplayBuffer, PushAndRetrieve) {
  ReplayBuffer buffer(10, 3);
  buffer.push(state_of(1.0), 4, 0.5);
  ASSERT_EQ(buffer.size(), 1u);
  const Transition t = buffer.at(0);
  EXPECT_EQ(t.state, state_of(1.0));
  EXPECT_EQ(t.action, 4u);
  EXPECT_DOUBLE_EQ(t.reward, 0.5);
}

TEST(ReplayBuffer, KeepsMostRecentAtCapacity) {
  ReplayBuffer buffer(3, 3);
  for (int i = 0; i < 5; ++i)
    buffer.push(state_of(i), static_cast<std::size_t>(i % 3),
                static_cast<double>(i));
  EXPECT_EQ(buffer.size(), 3u);
  // Oldest retained is i=2.
  EXPECT_DOUBLE_EQ(buffer.at(0).reward, 2.0);
  EXPECT_DOUBLE_EQ(buffer.at(1).reward, 3.0);
  EXPECT_DOUBLE_EQ(buffer.at(2).reward, 4.0);
}

TEST(ReplayBuffer, AgeOrderBeforeWraparound) {
  ReplayBuffer buffer(5, 3);
  for (int i = 0; i < 3; ++i)
    buffer.push(state_of(i), 0, static_cast<double>(i));
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(buffer.at(i).reward, static_cast<double>(i));
}

TEST(ReplayBuffer, SampleWithoutReplacement) {
  ReplayBuffer buffer(20, 3);
  for (int i = 0; i < 20; ++i)
    buffer.push(state_of(i), 0, static_cast<double>(i));
  util::Rng rng(1);
  const auto batch = buffer.sample(10, rng);
  ASSERT_EQ(batch.size(), 10u);
  std::set<double> rewards;
  for (const auto& t : batch) rewards.insert(t.reward);
  EXPECT_EQ(rewards.size(), 10u);  // all distinct
}

TEST(ReplayBuffer, SampleClampsToSize) {
  ReplayBuffer buffer(100, 3);
  buffer.push(state_of(1.0), 0, 1.0);
  buffer.push(state_of(2.0), 1, 2.0);
  util::Rng rng(2);
  EXPECT_EQ(buffer.sample(128, rng).size(), 2u);
}

TEST(ReplayBuffer, SampleFromEmptyIsEmpty) {
  ReplayBuffer buffer(10, 3);
  util::Rng rng(3);
  EXPECT_TRUE(buffer.sample(5, rng).empty());
}

TEST(ReplayBuffer, SamplingIsUniformish) {
  ReplayBuffer buffer(10, 3);
  for (int i = 0; i < 10; ++i)
    buffer.push(state_of(i), 0, static_cast<double>(i));
  util::Rng rng(4);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto batch = buffer.sample(3, rng);
    for (const auto& t : batch)
      ++counts[static_cast<std::size_t>(t.reward)];
  }
  // Each element expected 1500 times; allow generous tolerance.
  for (const int c : counts) EXPECT_NEAR(c, 1500, 200);
}

TEST(ReplayBuffer, Float32QuantizationIsLossyButClose) {
  ReplayBuffer buffer(4, 1);
  const double value = 0.1234567890123;
  buffer.push(std::vector<double>{value}, 0, value);
  const Transition t = buffer.at(0);
  EXPECT_NE(t.state[0], value);               // float32 storage is lossy
  EXPECT_NEAR(t.state[0], value, 1e-7);       // but close
  EXPECT_NEAR(t.reward, value, 1e-7);
}

TEST(ReplayBuffer, StorageBytesMatchesPaperScale) {
  // Paper §IV-C: the replay buffer requires ~100 kB of storage.
  // 4000 entries * (5 floats + action byte + reward float) = 100 kB.
  ReplayBuffer buffer(4000, 5);
  EXPECT_EQ(buffer.storage_bytes(), 4000u * 25u);
  EXPECT_NEAR(static_cast<double>(buffer.storage_bytes()) / 1024.0, 97.7,
              1.0);
}

TEST(ReplayBuffer, ClearEmptiesButKeepsCapacity) {
  ReplayBuffer buffer(10, 2);
  buffer.push(std::vector<double>{1.0, 2.0}, 0, 1.0);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.capacity(), 10u);
  buffer.push(std::vector<double>{3.0, 4.0}, 1, 2.0);
  EXPECT_DOUBLE_EQ(buffer.at(0).reward, 2.0);
}

TEST(ReplayBufferDeathTest, RejectsWrongStateDim) {
  ReplayBuffer buffer(10, 3);
  EXPECT_DEATH(buffer.push(std::vector<double>{1.0}, 0, 0.0), "precondition");
}

TEST(ReplayBufferDeathTest, RejectsOutOfRangeAt) {
  ReplayBuffer buffer(10, 3);
  buffer.push(state_of(0.0), 0, 0.0);
  EXPECT_DEATH(buffer.at(1), "precondition");
}

TEST(ReplayBufferDeathTest, RejectsZeroCapacity) {
  EXPECT_DEATH(ReplayBuffer(0, 3), "precondition");
}

}  // namespace
}  // namespace fedpower::rl
