#include "rl/state.hpp"

#include <gtest/gtest.h>

namespace fedpower::rl {
namespace {

sim::TelemetrySample sample() {
  sim::TelemetrySample s;
  s.freq_mhz = 739.5;
  s.power_w = 0.45;
  s.ipc = 0.75;
  s.miss_rate = 0.3;
  s.mpki = 25.0;
  return s;
}

TEST(StateFeaturizer, ProducesFiveFeatures) {
  StateFeaturizer featurizer;
  EXPECT_EQ(featurizer.featurize(sample()).size(),
            StateFeaturizer::kStateDim);
  EXPECT_EQ(StateFeaturizer::kStateDim, 5u);
}

TEST(StateFeaturizer, NormalizesEachDimension) {
  StateFeaturizer featurizer;
  const auto f = featurizer.featurize(sample());
  EXPECT_NEAR(f[0], 739.5 / 1479.0, 1e-12);  // frequency
  EXPECT_DOUBLE_EQ(f[1], 0.45);              // power in watts
  EXPECT_DOUBLE_EQ(f[2], 0.75 / 1.5);        // ipc
  EXPECT_DOUBLE_EQ(f[3], 0.3);               // miss rate unscaled
  EXPECT_DOUBLE_EQ(f[4], 0.5);               // mpki / 50
}

TEST(StateFeaturizer, FeaturesAreOrderOne) {
  // Realistic telemetry across the operating range must map to features in
  // roughly [0, 1.5] so the network trains without input whitening.
  StateFeaturizer featurizer;
  sim::TelemetrySample extreme;
  extreme.freq_mhz = 1479.0;
  extreme.power_w = 1.3;
  extreme.ipc = 1.5;
  extreme.miss_rate = 1.0;
  extreme.mpki = 60.0;
  for (const double f : featurizer.featurize(extreme)) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.5);
  }
}

TEST(StateFeaturizer, CustomConfig) {
  FeaturizerConfig config;
  config.f_max_mhz = 2000.0;
  config.mpki_scale = 100.0;
  StateFeaturizer featurizer(config);
  const auto f = featurizer.featurize(sample());
  EXPECT_NEAR(f[0], 739.5 / 2000.0, 1e-12);
  EXPECT_DOUBLE_EQ(f[4], 0.25);
}

TEST(StateFeaturizer, DeterministicForSameSample) {
  StateFeaturizer featurizer;
  EXPECT_EQ(featurizer.featurize(sample()), featurizer.featurize(sample()));
}

TEST(StateFeaturizerDeathTest, RejectsNonPositiveScales) {
  FeaturizerConfig config;
  config.ipc_scale = 0.0;
  EXPECT_DEATH(StateFeaturizer{config}, "precondition");
}

}  // namespace
}  // namespace fedpower::rl
