#include "rl/neural_agent.hpp"

#include <gtest/gtest.h>

#include "rl/policy.hpp"

namespace fedpower::rl {
namespace {

NeuralAgentConfig small_config() {
  NeuralAgentConfig config;
  config.state_dim = 3;
  config.action_count = 4;
  config.hidden_sizes = {8};
  config.replay_capacity = 256;
  config.batch_size = 32;
  config.optimize_interval = 5;
  return config;
}

TEST(NeuralAgent, PaperConfigParamCount) {
  NeuralAgentConfig config;  // defaults are Table I
  NeuralBanditAgent agent(config, util::Rng{1});
  EXPECT_EQ(agent.param_count(), 687u);
}

TEST(NeuralAgent, PredictReturnsOneValuePerAction) {
  NeuralBanditAgent agent(small_config(), util::Rng{2});
  EXPECT_EQ(agent.predict(std::vector<double>{0.1, 0.2, 0.3}).size(), 4u);
}

TEST(NeuralAgent, TemperatureStartsAtMaxAndDecays) {
  NeuralBanditAgent agent(small_config(), util::Rng{3});
  EXPECT_DOUBLE_EQ(agent.temperature(), 0.9);
  const std::vector<double> state = {0.1, 0.2, 0.3};
  for (int i = 0; i < 100; ++i) agent.record(state, 0, 0.5);
  EXPECT_LT(agent.temperature(), 0.9);
}

TEST(NeuralAgent, RecordTriggersTrainingEveryH) {
  NeuralBanditAgent agent(small_config(), util::Rng{4});
  const std::vector<double> state = {0.1, 0.2, 0.3};
  for (int i = 0; i < 4; ++i) agent.record(state, 1, 0.5);
  EXPECT_EQ(agent.update_count(), 0u);
  agent.record(state, 1, 0.5);  // 5th step, H = 5
  EXPECT_EQ(agent.update_count(), 1u);
  for (int i = 0; i < 5; ++i) agent.record(state, 1, 0.5);
  EXPECT_EQ(agent.update_count(), 2u);
}

TEST(NeuralAgent, TrainStepOnEmptyBufferIsNoop) {
  NeuralBanditAgent agent(small_config(), util::Rng{5});
  const std::vector<double> before = agent.parameters();
  EXPECT_DOUBLE_EQ(agent.train_step(), 0.0);
  EXPECT_EQ(agent.parameters(), before);
  EXPECT_EQ(agent.update_count(), 0u);
}

TEST(NeuralAgent, LearnsActionValuesInFixedState) {
  // Contextual-bandit sanity: in a single state with rewards fixed per
  // action, the greedy action must converge to the best one.
  NeuralAgentConfig config = small_config();
  config.tau_decay = 0.003;
  NeuralBanditAgent agent(config, util::Rng{6});
  const std::vector<double> state = {0.5, 0.5, 0.5};
  const std::vector<double> action_rewards = {0.1, 0.9, 0.3, -0.5};
  for (int t = 0; t < 2000; ++t) {
    const std::size_t a = agent.select_action(state);
    agent.record(state, a, action_rewards[a]);
  }
  EXPECT_EQ(agent.greedy_action(state), 1u);
  const auto mu = agent.predict(state);
  EXPECT_NEAR(mu[1], 0.9, 0.15);
}

TEST(NeuralAgent, LearnsStateDependentPolicy) {
  // Two states with opposite optimal actions — this is what tabular
  // approaches struggle with and NNs generalize over. Data is collected
  // with uniform random actions so every (state, action) pair is densely
  // covered and the test isolates the representation question from the
  // exploration schedule.
  NeuralAgentConfig config = small_config();
  config.replay_capacity = 4096;
  NeuralBanditAgent agent(config, util::Rng{7});
  const std::vector<double> s0 = {0.0, 0.2, 0.9};
  const std::vector<double> s1 = {1.0, 0.8, 0.1};
  const std::vector<double> rewards_s0 = {1.0, 0.6, 0.3, 0.0};
  const std::vector<double> rewards_s1 = {0.0, 0.3, 0.6, 1.0};
  util::Rng env(8);
  for (int t = 0; t < 3000; ++t) {
    const bool in_s0 = env.bernoulli(0.5);
    const auto& s = in_s0 ? s0 : s1;
    const std::size_t a = env.uniform_index(4);
    agent.record(s, a, (in_s0 ? rewards_s0 : rewards_s1)[a]);
  }
  EXPECT_EQ(agent.greedy_action(s0), 0u);
  EXPECT_EQ(agent.greedy_action(s1), 3u);
  // And the value estimates themselves separate the states.
  EXPECT_NEAR(agent.predict(s0)[0], 1.0, 0.2);
  EXPECT_NEAR(agent.predict(s1)[0], 0.0, 0.2);
}

TEST(NeuralAgent, GreedyIsArgmaxOfPredict) {
  NeuralBanditAgent agent(small_config(), util::Rng{9});
  const std::vector<double> state = {0.3, -0.2, 0.8};
  EXPECT_EQ(agent.greedy_action(state), argmax(agent.predict(state)));
}

TEST(NeuralAgent, ParametersRoundTripThroughFederationInterface) {
  NeuralBanditAgent a(small_config(), util::Rng{10});
  NeuralBanditAgent b(small_config(), util::Rng{11});
  b.set_parameters(a.parameters());
  const std::vector<double> state = {0.1, 0.9, 0.4};
  EXPECT_EQ(a.predict(state), b.predict(state));
}

TEST(NeuralAgent, SelectActionExploresAtHighTemperature) {
  NeuralAgentConfig config = small_config();
  config.tau_decay = 0.0;  // stay at tau_max
  NeuralBanditAgent agent(config, util::Rng{12});
  const std::vector<double> state = {0.5, 0.5, 0.5};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 2000; ++i) ++counts[agent.select_action(state)];
  for (const int c : counts) EXPECT_GT(c, 100);  // all actions explored
}

TEST(NeuralAgent, LossDecreasesOnStationaryProblem) {
  NeuralAgentConfig config = small_config();
  NeuralBanditAgent agent(config, util::Rng{13});
  const std::vector<double> state = {0.5, 0.5, 0.5};
  util::Rng env(14);
  for (int i = 0; i < 64; ++i)
    agent.record(state, env.uniform_index(4), 0.7);
  const double early = agent.train_step();
  for (int i = 0; i < 400; ++i) agent.train_step();
  const double late = agent.train_step();
  EXPECT_LT(late, early);
  EXPECT_LT(late, 0.01);
}

TEST(NeuralAgent, ReplayBufferFillsAndCaps) {
  NeuralAgentConfig config = small_config();
  NeuralBanditAgent agent(config, util::Rng{15});
  const std::vector<double> state = {0.1, 0.2, 0.3};
  for (int i = 0; i < 300; ++i) agent.record(state, 0, 0.0);
  EXPECT_EQ(agent.replay().size(), 256u);
  EXPECT_EQ(agent.step_count(), 300u);
}

TEST(NeuralAgent, ProxTermPullsTowardAnchor) {
  // With a huge prox coefficient, training barely moves parameters away
  // from the installed global model.
  NeuralAgentConfig free_config = small_config();
  NeuralAgentConfig prox_config = small_config();
  prox_config.prox_mu = 100.0;
  NeuralBanditAgent free_agent(free_config, util::Rng{16});
  NeuralBanditAgent prox_agent(prox_config, util::Rng{16});
  const std::vector<double> anchor = free_agent.parameters();
  prox_agent.set_parameters(anchor);
  free_agent.set_parameters(anchor);
  const std::vector<double> state = {0.5, 0.5, 0.5};
  util::Rng env(17);
  for (int i = 0; i < 200; ++i) {
    const std::size_t a = env.uniform_index(4);
    free_agent.record(state, a, 1.0);
    prox_agent.record(state, a, 1.0);
  }
  double free_drift = 0.0;
  double prox_drift = 0.0;
  const auto fp = free_agent.parameters();
  const auto pp = prox_agent.parameters();
  for (std::size_t i = 0; i < anchor.size(); ++i) {
    free_drift += std::abs(fp[i] - anchor[i]);
    prox_drift += std::abs(pp[i] - anchor[i]);
  }
  EXPECT_LT(prox_drift, free_drift);
}

TEST(NeuralAgentDeathTest, RejectsWrongStateSize) {
  NeuralBanditAgent agent(small_config(), util::Rng{18});
  EXPECT_DEATH(agent.predict(std::vector<double>{0.1}), "precondition");
}

TEST(NeuralAgentDeathTest, RejectsOutOfRangeAction) {
  NeuralBanditAgent agent(small_config(), util::Rng{19});
  EXPECT_DEATH(agent.record(std::vector<double>{0.1, 0.2, 0.3}, 4, 0.0),
               "precondition");
}

}  // namespace
}  // namespace fedpower::rl
