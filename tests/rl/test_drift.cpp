#include "rl/drift.hpp"

#include <gtest/gtest.h>

#include "rl/neural_agent.hpp"

namespace fedpower::rl {
namespace {

DriftConfig fast_config() {
  DriftConfig config;
  config.warmup = 10;
  config.cooldown = 20;
  config.drop_threshold = 0.3;
  return config;
}

TEST(DriftMonitor, NoDetectionOnStableReward) {
  DriftMonitor monitor(fast_config());
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(monitor.observe(0.6));
  EXPECT_EQ(monitor.detections(), 0u);
}

TEST(DriftMonitor, NoDetectionOnSlowImprovement) {
  DriftMonitor monitor(fast_config());
  for (int i = 0; i < 500; ++i)
    EXPECT_FALSE(monitor.observe(0.1 + 0.001 * i));
}

TEST(DriftMonitor, DetectsSuddenDrop) {
  DriftMonitor monitor(fast_config());
  for (int i = 0; i < 100; ++i) monitor.observe(0.6);
  bool detected = false;
  for (int i = 0; i < 30; ++i) detected |= monitor.observe(-0.8);
  EXPECT_TRUE(detected);
  // The re-anchored slow tracker may legitimately fire once more while the
  // fast tracker is still converging to the new level.
  EXPECT_GE(monitor.detections(), 1u);
  EXPECT_LE(monitor.detections(), 2u);
}

TEST(DriftMonitor, WarmupSuppressesEarlyNoise) {
  DriftConfig config = fast_config();
  config.warmup = 50;
  DriftMonitor monitor(config);
  // Violent swings inside the warmup window must not trigger.
  for (int i = 0; i < 49; ++i)
    EXPECT_FALSE(monitor.observe(i % 2 == 0 ? 1.0 : -1.0));
}

TEST(DriftMonitor, CooldownLimitsTriggerRate) {
  DriftConfig config = fast_config();
  config.cooldown = 100;
  DriftMonitor monitor(config);
  for (int i = 0; i < 50; ++i) monitor.observe(0.8);
  int triggers = 0;
  for (int i = 0; i < 90; ++i)
    if (monitor.observe(-1.0)) ++triggers;
  EXPECT_EQ(triggers, 1);  // second trigger blocked by cooldown
}

TEST(DriftMonitor, ReanchorsAfterDetection) {
  DriftMonitor monitor(fast_config());
  for (int i = 0; i < 100; ++i) monitor.observe(0.8);
  bool detected = false;
  for (int i = 0; i < 200; ++i) detected |= monitor.observe(-0.5);
  EXPECT_TRUE(detected);
  // Reward is now stably -0.5: the monitor must settle, not re-fire
  // forever on the same (old) drop.
  for (int i = 0; i < 300; ++i) monitor.observe(-0.5);
  EXPECT_LE(monitor.detections(), 2u);
}

TEST(DriftMonitor, TracksBothAverages) {
  DriftMonitor monitor(fast_config());
  monitor.observe(1.0);
  EXPECT_DOUBLE_EQ(monitor.fast(), 1.0);
  EXPECT_DOUBLE_EQ(monitor.slow(), 1.0);
  monitor.observe(0.0);
  EXPECT_LT(monitor.fast(), monitor.slow());  // fast falls quicker
}

TEST(DriftMonitor, ResetClearsState) {
  DriftMonitor monitor(fast_config());
  for (int i = 0; i < 50; ++i) monitor.observe(0.5);
  monitor.reset();
  EXPECT_EQ(monitor.samples(), 0u);
  EXPECT_EQ(monitor.detections(), 0u);
}

TEST(DriftMonitorDeathTest, FastMustBeFasterThanSlow) {
  DriftConfig config;
  config.fast_alpha = 0.01;
  config.slow_alpha = 0.2;
  EXPECT_DEATH(DriftMonitor{config}, "precondition");
}

// --- agent reheat -------------------------------------------------------

TEST(Reheat, RestoresTargetTemperature) {
  NeuralAgentConfig config;
  config.state_dim = 3;
  config.action_count = 4;
  config.hidden_sizes = {8};
  NeuralBanditAgent agent(config, util::Rng{1});
  const std::vector<double> state = {0.5, 0.5, 0.5};
  for (int i = 0; i < 4000; ++i) agent.record(state, 0, 0.5);
  ASSERT_LT(agent.temperature(), 0.2);
  agent.reheat(0.45);
  EXPECT_NEAR(agent.temperature(), 0.45, 0.01);
}

TEST(Reheat, ClampsToScheduleBounds) {
  NeuralAgentConfig config;
  config.state_dim = 3;
  config.action_count = 4;
  config.hidden_sizes = {8};
  NeuralBanditAgent agent(config, util::Rng{2});
  agent.reheat(99.0);  // above tau_max -> clamp to tau_max (step 0)
  EXPECT_DOUBLE_EQ(agent.temperature(), 0.9);
}

TEST(Reheat, NoopWithoutDecay) {
  NeuralAgentConfig config;
  config.state_dim = 3;
  config.action_count = 4;
  config.hidden_sizes = {8};
  config.tau_decay = 0.0;
  NeuralBanditAgent agent(config, util::Rng{3});
  agent.reheat(0.1);
  EXPECT_DOUBLE_EQ(agent.temperature(), 0.9);
}

}  // namespace
}  // namespace fedpower::rl
