#include "rl/neural_q_agent.hpp"

#include "rl/policy.hpp"

#include <gtest/gtest.h>

namespace fedpower::rl {
namespace {

NeuralQConfig small_config(double gamma = 0.9) {
  NeuralQConfig config;
  config.base.state_dim = 2;
  config.base.action_count = 2;
  config.base.hidden_sizes = {8};
  config.base.replay_capacity = 2048;
  config.base.batch_size = 32;
  config.base.optimize_interval = 4;
  config.gamma = gamma;
  return config;
}

TEST(QReplayBuffer, StoresSuccessorStates) {
  QReplayBuffer buffer(4, 2);
  buffer.push(std::vector<double>{1.0, 2.0}, 1, 0.5,
              std::vector<double>{3.0, 4.0});
  const QTransition t = buffer.at(0);
  EXPECT_EQ(t.state, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(t.next_state, (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(t.action, 1u);
  EXPECT_DOUBLE_EQ(t.reward, 0.5);
}

TEST(QReplayBuffer, EvictsOldest) {
  QReplayBuffer buffer(2, 1);
  for (int i = 0; i < 4; ++i)
    buffer.push(std::vector<double>{static_cast<double>(i)}, 0, i,
                std::vector<double>{0.0});
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_DOUBLE_EQ(buffer.at(0).reward, 2.0);
  EXPECT_DOUBLE_EQ(buffer.at(1).reward, 3.0);
}

TEST(QReplayBuffer, SampleClampsToSize) {
  QReplayBuffer buffer(16, 1);
  buffer.push(std::vector<double>{0.0}, 0, 0.0, std::vector<double>{0.0});
  util::Rng rng(1);
  EXPECT_EQ(buffer.sample(8, rng).size(), 1u);
}

TEST(QAgent, ParamCountMatchesBandit) {
  NeuralQConfig config;
  NeuralQAgent agent(config, util::Rng{1});
  EXPECT_EQ(agent.param_count(), 687u);
}

TEST(QAgent, GammaZeroLearnsImmediateRewards) {
  // gamma = 0: exactly the bandit objective.
  NeuralQAgent agent(small_config(0.0), util::Rng{2});
  const std::vector<double> s = {0.5, 0.5};
  const std::vector<double> rewards = {0.2, 0.8};
  util::Rng env(3);
  for (int t = 0; t < 1500; ++t) {
    const std::size_t a = env.uniform_index(2);
    agent.record(s, a, rewards[a], s);
  }
  EXPECT_EQ(agent.greedy_action(s), 1u);
  EXPECT_NEAR(agent.predict(s)[1], 0.8, 0.15);
}

TEST(QAgent, BootstrapsValueThroughSuccessorStates) {
  // Two-state chain: s0 --any action--> s1 with reward 0;
  // s1 --any action--> s1 with reward 1. With gamma = 0.5 the value of
  // acting in s0 must approach 0 + 0.5 * V(s1) where V(s1) -> 2 (geometric
  // series 1/(1-gamma)).
  NeuralQConfig config = small_config(0.5);
  config.target_sync_interval = 5;
  NeuralQAgent agent(config, util::Rng{4});
  const std::vector<double> s0 = {0.0, 1.0};
  const std::vector<double> s1 = {1.0, 0.0};
  util::Rng env(5);
  for (int t = 0; t < 4000; ++t) {
    const bool in_s0 = env.bernoulli(0.5);
    const std::size_t a = env.uniform_index(2);
    if (in_s0)
      agent.record(s0, a, 0.0, s1);
    else
      agent.record(s1, a, 1.0, s1);
  }
  // V(s1) = 1 + 0.5 * V(s1) -> 2; Q(s0, a) = 0 + 0.5 * 2 = 1.
  EXPECT_NEAR(agent.predict(s1)[agent.greedy_action(s1)], 2.0, 0.35);
  EXPECT_NEAR(agent.predict(s0)[agent.greedy_action(s0)], 1.0, 0.35);
}

TEST(QAgent, TemperatureDecays) {
  NeuralQAgent agent(small_config(), util::Rng{6});
  EXPECT_DOUBLE_EQ(agent.temperature(), 0.9);
  const std::vector<double> s = {0.1, 0.2};
  for (int i = 0; i < 2000; ++i) agent.record(s, 0, 0.0, s);
  EXPECT_LT(agent.temperature(), 0.9);
}

TEST(QAgent, TrainingTriggersEveryInterval) {
  NeuralQAgent agent(small_config(), util::Rng{7});
  const std::vector<double> s = {0.1, 0.2};
  for (int i = 0; i < 3; ++i) agent.record(s, 0, 0.0, s);
  EXPECT_EQ(agent.update_count(), 0u);
  agent.record(s, 0, 0.0, s);
  EXPECT_EQ(agent.update_count(), 1u);
}

TEST(QAgent, FederationRoundTrip) {
  NeuralQAgent a(small_config(), util::Rng{8});
  NeuralQAgent b(small_config(), util::Rng{9});
  b.set_parameters(a.parameters());
  const std::vector<double> s = {0.4, 0.6};
  EXPECT_EQ(a.predict(s), b.predict(s));
}

TEST(QAgent, GreedyIsArgmax) {
  NeuralQAgent agent(small_config(), util::Rng{10});
  const std::vector<double> s = {0.9, 0.1};
  const auto q = agent.predict(s);
  EXPECT_EQ(agent.greedy_action(s), argmax(q));
}

TEST(QAgentDeathTest, RejectsBadGamma) {
  NeuralQConfig config = small_config();
  config.gamma = 1.0;
  EXPECT_DEATH(NeuralQAgent(config, util::Rng{11}), "precondition");
}

}  // namespace
}  // namespace fedpower::rl
