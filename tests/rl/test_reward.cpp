#include "rl/reward.hpp"

#include <gtest/gtest.h>

namespace fedpower::rl {
namespace {

// Paper parameters: P_crit = 0.6 W, k_offset = 0.05 W, f_max = 1479 MHz.
PaperReward paper_reward() { return PaperReward(0.6, 0.05, 1479.0); }

TEST(PaperReward, NormalizedFrequencyUnderConstraint) {
  const PaperReward r = paper_reward();
  EXPECT_DOUBLE_EQ(r.evaluate(1479.0, 0.5), 1.0);
  EXPECT_NEAR(r.evaluate(739.5, 0.5), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.evaluate(1479.0, 0.6), 1.0);  // boundary inclusive
}

TEST(PaperReward, FirstRampScalesFrequencyTerm) {
  const PaperReward r = paper_reward();
  // At P = P_crit + k/2 the ramp factor is 0.5.
  EXPECT_NEAR(r.evaluate(1479.0, 0.625), 0.5, 1e-12);
  EXPECT_NEAR(r.evaluate(739.5, 0.625), 0.25, 1e-12);
}

TEST(PaperReward, ZeroAtPcritPlusOffset) {
  const PaperReward r = paper_reward();
  EXPECT_NEAR(r.evaluate(1479.0, 0.65), 0.0, 1e-12);
}

TEST(PaperReward, SecondRampIsFrequencyIndependent) {
  const PaperReward r = paper_reward();
  // Between P_crit+k and P_crit+2k the reward is the bare ramp.
  EXPECT_NEAR(r.evaluate(1479.0, 0.675), -0.5, 1e-12);
  EXPECT_NEAR(r.evaluate(102.0, 0.675), -0.5, 1e-12);
}

TEST(PaperReward, MinusOneAtAndBeyondPcritPlus2k) {
  const PaperReward r = paper_reward();
  EXPECT_NEAR(r.evaluate(1000.0, 0.7), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.evaluate(1000.0, 5.0), -1.0);
}

TEST(PaperReward, ContinuousAcrossAllBreakpoints) {
  const PaperReward r = paper_reward();
  const double f = 1036.8;
  for (const double p : {0.6, 0.65, 0.7}) {
    const double below = r.evaluate(f, p - 1e-9);
    const double above = r.evaluate(f, p + 1e-9);
    EXPECT_NEAR(below, above, 1e-6) << "discontinuity at P=" << p;
  }
}

TEST(PaperReward, MonotoneDecreasingInPowerBeyondConstraint) {
  const PaperReward r = paper_reward();
  double previous = 2.0;
  for (double p = 0.6; p <= 0.75; p += 0.005) {
    const double value = r.evaluate(1200.0, p);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST(PaperReward, MonotoneIncreasingInFrequencyUnderConstraint) {
  const PaperReward r = paper_reward();
  EXPECT_LT(r.evaluate(500.0, 0.4), r.evaluate(1000.0, 0.4));
}

TEST(PaperReward, BoundedInMinusOneOne) {
  const PaperReward r = paper_reward();
  for (double f = 102.0; f <= 1479.0; f += 137.0)
    for (double p = 0.0; p <= 2.0; p += 0.03) {
      const double value = r.evaluate(f, p);
      EXPECT_GE(value, -1.0);
      EXPECT_LE(value, 1.0);
    }
}

TEST(PaperReward, OperatesOnTelemetry) {
  const PaperReward r = paper_reward();
  sim::TelemetrySample sample;
  sample.freq_mhz = 1479.0;
  sample.power_w = 0.5;
  EXPECT_DOUBLE_EQ(r(sample), 1.0);
}

TEST(PaperReward, Accessors) {
  const PaperReward r = paper_reward();
  EXPECT_DOUBLE_EQ(r.p_crit(), 0.6);
  EXPECT_DOUBLE_EQ(r.k_offset(), 0.05);
  EXPECT_DOUBLE_EQ(r.f_max_mhz(), 1479.0);
}

TEST(ProfitReward, IpsUnderConstraint) {
  const ProfitReward r(0.6, 1e9);
  EXPECT_DOUBLE_EQ(r.evaluate(1.5e9, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(r.evaluate(1.5e9, 0.6), 1.5);  // boundary inclusive
}

TEST(ProfitReward, PenaltyProportionalToViolation) {
  const ProfitReward r(0.6, 1e9);
  EXPECT_NEAR(r.evaluate(2e9, 0.7), -0.5, 1e-12);   // -5 * 0.1
  EXPECT_NEAR(r.evaluate(2e9, 1.0), -2.0, 1e-12);   // -5 * 0.4
}

TEST(ProfitReward, PenaltyIgnoresIps) {
  const ProfitReward r(0.6, 1e9);
  EXPECT_DOUBLE_EQ(r.evaluate(1e6, 0.8), r.evaluate(9e9, 0.8));
}

TEST(ProfitReward, TelemetryOverload) {
  const ProfitReward r(0.6, 1e9);
  sim::TelemetrySample sample;
  sample.ips = 8e8;
  sample.power_w = 0.4;
  EXPECT_DOUBLE_EQ(r(sample), 0.8);
}

TEST(RewardDeathTest, RejectsNonPositiveParameters) {
  EXPECT_DEATH(PaperReward(0.0, 0.05, 1479.0), "precondition");
  EXPECT_DEATH(PaperReward(0.6, 0.0, 1479.0), "precondition");
  EXPECT_DEATH(ProfitReward(0.0), "precondition");
}

}  // namespace
}  // namespace fedpower::rl
