#include "baselines/profit.hpp"

#include <gtest/gtest.h>

namespace fedpower::baselines {
namespace {

ProfitConfig small_config() {
  ProfitConfig config;
  config.action_count = 4;
  config.epsilon_decay = 0.01;
  return config;
}

TEST(ProfitFeatures, ExtractsFourDimensions) {
  sim::TelemetrySample sample;
  sample.freq_mhz = 739.5;
  sample.power_w = 0.5;
  sample.ipc = 0.8;
  sample.mpki = 20.0;
  const auto features = profit_features(sample, 1479.0);
  ASSERT_EQ(features.size(), 4u);
  EXPECT_NEAR(features[0], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(features[1], 0.5);
  EXPECT_DOUBLE_EQ(features[2], 0.8);
  EXPECT_DOUBLE_EQ(features[3], 20.0);
}

TEST(ProfitDiscretizer, StateCountMatchesBins) {
  ProfitConfig config;  // 5*6*5*5
  EXPECT_EQ(profit_discretizer(config).state_count(), 750u);
}

TEST(ProfitAgent, EpsilonStartsHighAndDecays) {
  ProfitAgent agent(small_config(), util::Rng{1});
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.9);
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  for (int i = 0; i < 500; ++i) agent.record(f, 0, 0.1);
  EXPECT_LT(agent.epsilon(), 0.1);
}

TEST(ProfitAgent, EpsilonFloorsAtPaperMinimum) {
  ProfitAgent agent(small_config(), util::Rng{2});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  for (int i = 0; i < 2000; ++i) agent.record(f, 0, 0.1);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.01);
}

TEST(ProfitAgent, LearnsBestActionInState) {
  ProfitConfig config = small_config();
  ProfitAgent agent(config, util::Rng{3});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  const std::vector<double> rewards = {0.1, 0.9, 0.4, -0.2};
  for (int t = 0; t < 800; ++t) {
    const std::size_t a = agent.select_action(f);
    agent.record(f, a, rewards[a]);
  }
  EXPECT_EQ(agent.greedy_action(f), 1u);
}

TEST(ProfitAgent, StatesAreIndependent) {
  // Tabular: learning in one state must not change another — the
  // no-generalization property the paper contrasts with NNs.
  ProfitAgent agent(small_config(), util::Rng{4});
  const std::vector<double> s1 = {0.1, 0.2, 0.3, 5.0};
  const std::vector<double> s2 = {0.9, 1.1, 1.3, 45.0};
  for (int i = 0; i < 100; ++i) agent.record(s1, 2, 1.0);
  const std::size_t s2_index = agent.discretizer().index(s2);
  for (std::size_t a = 0; a < 4; ++a)
    EXPECT_DOUBLE_EQ(agent.table().value(s2_index, a), 0.0);
}

TEST(ProfitAgent, NearbyStatesShareBin) {
  ProfitAgent agent(small_config(), util::Rng{5});
  const std::vector<double> a = {0.50, 0.50, 0.80, 20.0};
  const std::vector<double> b = {0.51, 0.51, 0.81, 20.5};
  EXPECT_EQ(agent.discretizer().index(a), agent.discretizer().index(b));
}

TEST(ProfitAgent, RewardSignalMatchesPaperDescription) {
  ProfitAgent agent(small_config(), util::Rng{6});
  sim::TelemetrySample under;
  under.ips = 1.2e9;
  under.power_w = 0.5;
  EXPECT_DOUBLE_EQ(agent.reward()(under), 1.2);
  sim::TelemetrySample over;
  over.ips = 1.2e9;
  over.power_w = 0.8;
  EXPECT_NEAR(agent.reward()(over), -1.0, 1e-12);  // -5 * 0.2
}

TEST(ProfitAgent, GreedyDoesNotMutateState) {
  ProfitAgent agent(small_config(), util::Rng{7});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  const std::size_t steps_before = agent.step_count();
  agent.greedy_action(f);
  agent.greedy_action(f);
  EXPECT_EQ(agent.step_count(), steps_before);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.9);
}

TEST(ProfitAgent, SelectActionExploresInitially) {
  ProfitAgent agent(small_config(), util::Rng{8});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) ++counts[agent.select_action(f)];
  int covered = 0;
  for (const int c : counts)
    if (c > 0) ++covered;
  EXPECT_EQ(covered, 4);
}

TEST(ProfitAgentDeathTest, RejectsOutOfRangeAction) {
  ProfitAgent agent(small_config(), util::Rng{9});
  EXPECT_DEATH(agent.record(std::vector<double>{0.5, 0.5, 0.8, 20.0}, 4, 0.0), "precondition");
}

}  // namespace
}  // namespace fedpower::baselines
