#include "baselines/collab_policy.hpp"

#include <gtest/gtest.h>

namespace fedpower::baselines {
namespace {

ProfitConfig small_config() {
  ProfitConfig config;
  config.action_count = 4;
  config.epsilon_decay = 0.05;
  return config;
}

TEST(PolicyTableBytes, Formula) {
  // 1 action byte + 4-byte reward + 4-byte count per state.
  EXPECT_EQ(policy_table_bytes(750), 750u * 9u);
}

TEST(CollabPolicyServer, StartsEmpty) {
  CollabPolicyServer server(10);
  EXPECT_EQ(server.state_count(), 10u);
  for (const auto& entry : server.global()) EXPECT_EQ(entry.visits, 0u);
}

TEST(CollabPolicyServer, MergesVisitCounts) {
  CollabPolicyServer server(2);
  std::vector<PolicyEntry> a(2);
  std::vector<PolicyEntry> b(2);
  a[0] = {1, 0.5F, 10};
  b[0] = {2, 0.7F, 30};
  server.aggregate({a, b});
  EXPECT_EQ(server.global()[0].visits, 40u);
  // Weighted mean reward: (0.5*10 + 0.7*30)/40 = 0.65.
  EXPECT_NEAR(server.global()[0].mean_reward, 0.65, 1e-6);
  // Best action from the higher-reward client.
  EXPECT_EQ(server.global()[0].best_action, 2);
}

TEST(CollabPolicyServer, UnvisitedStatesKeepPreviousEntry) {
  CollabPolicyServer server(1);
  std::vector<PolicyEntry> a(1);
  a[0] = {3, 0.9F, 5};
  server.aggregate({a});
  std::vector<PolicyEntry> empty(1);  // no visits this round
  server.aggregate({empty});
  EXPECT_EQ(server.global()[0].best_action, 3);
  EXPECT_EQ(server.global()[0].visits, 5u);
}

TEST(CollabPolicyServer, SingleClientPassesThrough) {
  CollabPolicyServer server(3);
  std::vector<PolicyEntry> a(3);
  a[1] = {2, 0.4F, 7};
  server.aggregate({a});
  EXPECT_EQ(server.global()[1].best_action, 2);
  EXPECT_EQ(server.global()[1].visits, 7u);
  EXPECT_NEAR(server.global()[1].mean_reward, 0.4, 1e-6);
}

TEST(CollabProfitClient, FallsBackToLocalWithoutGlobal) {
  CollabProfitClient client(small_config(), util::Rng{1});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  client.greedy_action(f);
  EXPECT_FALSE(client.used_global());
}

TEST(CollabProfitClient, UsesGlobalForUnknownState) {
  CollabProfitClient client(small_config(), util::Rng{2});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  const std::size_t s = client.local_agent().discretizer().index(f);
  std::vector<PolicyEntry> global(
      client.local_agent().discretizer().state_count());
  global[s] = {3, 0.8F, 50};
  client.receive_global(std::move(global));
  EXPECT_EQ(client.greedy_action(f), 3u);
  EXPECT_TRUE(client.used_global());
}

TEST(CollabProfitClient, PrefersLocalWhenItKnowsBetter) {
  CollabProfitClient client(small_config(), util::Rng{3});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  // Give the local table strong experience with high rewards.
  for (int i = 0; i < 50; ++i) client.record(f, 1, 0.9);
  const std::size_t s = client.local_agent().discretizer().index(f);
  std::vector<PolicyEntry> global(
      client.local_agent().discretizer().state_count());
  global[s] = {3, 0.2F, 100};  // global knows the state but with low reward
  client.receive_global(std::move(global));
  EXPECT_EQ(client.greedy_action(f), 1u);
  EXPECT_FALSE(client.used_global());
}

TEST(CollabProfitClient, PrefersGlobalWhenItKnowsBetter) {
  CollabProfitClient client(small_config(), util::Rng{4});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  for (int i = 0; i < 50; ++i) client.record(f, 1, 0.1);  // weak local
  const std::size_t s = client.local_agent().discretizer().index(f);
  std::vector<PolicyEntry> global(
      client.local_agent().discretizer().state_count());
  global[s] = {2, 0.9F, 100};
  client.receive_global(std::move(global));
  EXPECT_EQ(client.greedy_action(f), 2u);
  EXPECT_TRUE(client.used_global());
}

TEST(CollabProfitClient, ExportReflectsLocalTable) {
  CollabProfitClient client(small_config(), util::Rng{5});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  for (int i = 0; i < 20; ++i) client.record(f, 2, 0.6);
  const auto summary = client.export_policy();
  const std::size_t s = client.local_agent().discretizer().index(f);
  EXPECT_EQ(summary[s].best_action, 2);
  EXPECT_EQ(summary[s].visits, 20u);
  EXPECT_NEAR(summary[s].mean_reward, 0.6, 1e-5);
}

TEST(CollabProfitClient, ExportSkipsUnvisitedStates) {
  CollabProfitClient client(small_config(), util::Rng{6});
  const auto summary = client.export_policy();
  for (const auto& entry : summary) EXPECT_EQ(entry.visits, 0u);
}

TEST(CollabRoundTrip, TwoClientsShareKnowledge) {
  // Client A learns a state; after aggregation client B acts on it without
  // ever visiting it — the knowledge-sharing mechanism of [11].
  CollabProfitClient a(small_config(), util::Rng{7});
  CollabProfitClient b(small_config(), util::Rng{8});
  const std::vector<double> f = {0.5, 0.5, 0.8, 20.0};
  for (int i = 0; i < 40; ++i) a.record(f, 3, 0.8);
  CollabPolicyServer server(a.local_agent().discretizer().state_count());
  server.aggregate({a.export_policy(), b.export_policy()});
  b.receive_global(server.global());
  EXPECT_EQ(b.greedy_action(f), 3u);
  EXPECT_TRUE(b.used_global());
}

TEST(CollabPolicyDeathTest, ServerRejectsSizeMismatch) {
  CollabPolicyServer server(5);
  std::vector<PolicyEntry> wrong(4);
  EXPECT_DEATH(server.aggregate({wrong}), "precondition");
}

TEST(CollabPolicyDeathTest, ClientRejectsWrongGlobalSize) {
  CollabProfitClient client(small_config(), util::Rng{9});
  EXPECT_DEATH(client.receive_global(std::vector<PolicyEntry>(3)),
               "precondition");
}

}  // namespace
}  // namespace fedpower::baselines
