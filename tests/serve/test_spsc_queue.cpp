// The SPSC ring under the serve subsystem (DESIGN.md §12): FIFO order,
// bounded capacity with non-consuming try_push, batched dequeue, and a
// producer/consumer stress run across real threads.
#include "serve/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace fedpower::serve {
namespace {

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, CapacityBoundAndSize) {
  SpscQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.try_push(10));
  EXPECT_TRUE(q.try_push(20));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.try_push(30));  // full: backpressure, never drop
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.try_push(30));  // slot freed
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 20);
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 30);
}

TEST(SpscQueue, FailedPushDoesNotConsumeMoveOnlyValue) {
  SpscQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  auto second = std::make_unique<int>(2);
  EXPECT_FALSE(q.try_push(std::move(second)));
  ASSERT_NE(second, nullptr);  // rejected value stays with the caller
  EXPECT_EQ(*second, 2);
}

TEST(SpscQueue, PopBatchHonoursLimitAndAppends) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::vector<int> out{-1};  // pre-existing content must survive
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2, 3}));
  EXPECT_EQ(q.pop_batch(out, 16), 2u);
  EXPECT_EQ(out.size(), 7u);
  EXPECT_EQ(q.pop_batch(out, 16), 0u);
}

TEST(SpscQueue, CursorsSurviveWraparound) {
  SpscQueue<std::size_t> q(3);
  std::size_t out = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(std::size_t{i}));
    ASSERT_TRUE(q.try_pop(out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscQueue, ProducerConsumerStressKeepsOrderAndCount) {
  // One producer, one consumer, a deliberately tiny ring: the consumer
  // must see exactly 0..N-1 in order with both blocking helpers in play.
  constexpr std::uint64_t kItems = 50000;
  SpscQueue<std::uint64_t> q(4);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!q.try_push(std::uint64_t{i})) q.wait_for_space();
    }
  });
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> batch;
  while (expected < kItems) {
    batch.clear();
    if (q.pop_batch(batch, 16) == 0) {
      q.wait_for_item();
      continue;
    }
    for (const std::uint64_t v : batch) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(SpscQueueDeathTest, ZeroCapacityIsAPreconditionViolation) {
  EXPECT_DEATH(SpscQueue<int>(0), "precondition");
}

}  // namespace
}  // namespace fedpower::serve
