// ShardedServer contracts (DESIGN.md §12): verdict classification and
// reputation, injector-side backpressure that defers but never drops,
// quorum failure leaving committed state untouched, duplicate-upload
// dedup, throughput-mode staleness math, and the worker-count-invariant
// SRVR checkpoint section.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "ckpt/errors.hpp"
#include "fed/codec.hpp"
#include "fed/federation.hpp"

namespace fedpower::serve {
namespace {

std::vector<std::uint8_t> enc(const std::vector<double>& params) {
  return fed::Float32Codec::instance().encode(params);
}

TEST(ShardedServer, DeterministicCommitAveragesInClientOrder) {
  ServeConfig config;
  config.workers = 2;
  ShardedServer server(3, config);
  server.initialize({0.0, 0.0});
  server.begin_round({0, 1, 2});
  // Submit out of client order: commit must sort by client index anyway.
  server.submit(2, 0, enc({3.0, 6.0}), 1.0);
  server.submit(0, 0, enc({1.0, 2.0}), 1.0);
  server.submit(1, 0, enc({2.0, 4.0}), 1.0);
  server.drain();
  const fed::RoundResult result = server.commit_round(3);
  EXPECT_EQ(result.participants, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_TRUE(result.rejected.empty());
  EXPECT_EQ(result.effective_clients(), 3u);
  ASSERT_EQ(server.global_model().size(), 2u);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
  EXPECT_DOUBLE_EQ(server.global_model()[1], 4.0);
  EXPECT_EQ(server.version(), 1u);
  EXPECT_EQ(server.rounds_committed(), 1u);
  EXPECT_EQ(server.stats().uplinks_accepted, 3u);
}

TEST(ShardedServer, SampleWeightedCommitUsesSubmittedWeights) {
  ServeConfig config;
  config.aggregation = fed::AggregationMode::kSampleWeighted;
  ShardedServer server(2, config);
  server.initialize({0.0});
  server.begin_round({0, 1});
  server.submit(0, 0, enc({1.0}), 1.0);
  server.submit(1, 0, enc({5.0}), 3.0);
  server.drain();
  server.commit_round(2);
  // (1*1 + 5*3) / 4 = 4.
  EXPECT_DOUBLE_EQ(server.global_model()[0], 4.0);
}

TEST(ShardedServer, VerdictsClassifyCorruptWrongShapeAndNonFinite) {
  ServeConfig config;
  config.workers = 2;
  ShardedServer server(4, config);
  server.initialize({0.0});
  server.begin_round({0, 1, 2, 3});
  server.submit(0, 0, enc({2.0}), 1.0);              // clean
  server.submit(1, 0, {0x01}, 1.0);                  // undecodable: corrupt
  server.submit(2, 0, enc({1.0, 2.0}), 1.0);         // wrong shape: corrupt
  server.submit(3, 0,
                enc({std::numeric_limits<double>::infinity()}), 1.0);
  server.drain();
  const fed::RoundResult result = server.commit_round(1);
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(result.rejected, (std::vector<std::size_t>{3}));
  EXPECT_EQ(result.effective_clients(), 1u);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
  EXPECT_EQ(server.stats().uplinks_accepted, 1u);
  EXPECT_EQ(server.stats().uplinks_corrupt, 2u);
  EXPECT_EQ(server.stats().uplinks_rejected, 1u);
}

TEST(ShardedServer, ReputationCreditsAcceptsAndDebitsBadUploads) {
  ShardedServer server(2);
  server.initialize({0.0});
  server.begin_round({0, 1});
  server.submit(0, 0, enc({1.0}), 1.0);  // credit, already at the 1.0 cap
  server.submit(1, 0, {0xFF}, 1.0);      // debit 0.25
  server.drain();
  server.commit_round(1);
  EXPECT_DOUBLE_EQ(server.client_record(0).reputation, 1.0);
  EXPECT_DOUBLE_EQ(server.client_record(1).reputation, 0.75);
  EXPECT_EQ(server.client_record(0).accepted, 1u);
  EXPECT_EQ(server.client_record(1).corrupt, 1u);
  // Five more debits floor at zero rather than going negative. Base must
  // track the committed version: a lower base is a §14 stale replay and
  // would be dropped before the corruption check.
  for (int i = 0; i < 5; ++i) {
    server.begin_round({1});
    server.submit(1, 1, {0xFF}, 1.0);
    server.drain();
    EXPECT_THROW(server.commit_round(1), fed::QuorumError);
  }
  EXPECT_DOUBLE_EQ(server.client_record(1).reputation, 0.0);
  // A clean upload earns the credit back.
  server.begin_round({1});
  server.submit(1, 1, enc({1.0}), 1.0);
  server.drain();
  server.commit_round(1);
  EXPECT_DOUBLE_EQ(server.client_record(1).reputation, 0.05);
}

TEST(ShardedServer, BackpressureDefersButProcessesEveryFrame) {
  // A two-slot shard queue cannot absorb a 32-frame burst submitted with
  // no poll in between: the injector must defer the excess (never drop)
  // and flush it during drain. Every frame still gets a verdict.
  ServeConfig config;
  config.workers = 1;
  config.queue_depth = 2;
  config.batch_max = 2;
  ShardedServer server(1, config);
  server.initialize({0.0});
  server.begin_round({0});
  for (int i = 0; i < 32; ++i)
    server.submit(0, 0, enc({static_cast<double>(i + 1)}), 1.0);
  server.drain();
  EXPECT_GT(server.stats().deferred, 0u);
  EXPECT_EQ(server.stats().uplinks_accepted, 32u);
  EXPECT_EQ(server.client_record(0).accepted, 32u);
  server.commit_round(1);
  // Duplicate submissions in one round: first arrival wins the commit.
  EXPECT_DOUBLE_EQ(server.global_model()[0], 1.0);
}

TEST(ShardedServer, QuorumFailureLeavesCommittedStateUntouched) {
  ShardedServer server(2);
  server.initialize({7.0});
  server.begin_round({0, 1});
  server.submit(0, 0, enc({1.0}), 1.0);
  server.drain();
  try {
    server.commit_round(2);
    FAIL() << "commit below quorum must throw";
  } catch (const fed::QuorumError& err) {
    EXPECT_EQ(err.survivors(), 1u);
    EXPECT_EQ(err.required(), 2u);
  }
  EXPECT_DOUBLE_EQ(server.global_model()[0], 7.0);
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(server.rounds_committed(), 0u);
  // The aborted round is fully closed: a fresh one can open and commit.
  server.begin_round({0, 1});
  server.submit(0, 0, enc({1.0}), 1.0);
  server.submit(1, 0, enc({3.0}), 1.0);
  server.drain();
  server.commit_round(2);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
  EXPECT_EQ(server.rounds_committed(), 1u);
}

TEST(ShardedServer, QuorumClampsToParticipantCount) {
  // quorum larger than the draw clamps: a full house of 2 commits even
  // with quorum 10.
  ShardedServer server(2);
  server.initialize({0.0});
  server.begin_round({0, 1});
  server.submit(0, 0, enc({2.0}), 1.0);
  server.submit(1, 0, enc({4.0}), 1.0);
  server.drain();
  const fed::RoundResult result = server.commit_round(10);
  EXPECT_EQ(result.effective_clients(), 2u);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 3.0);
}

TEST(ShardedServer, FramesOutsideTheRoundAreCountedButNotCommitted) {
  ShardedServer server(3);
  server.initialize({0.0});
  // No round open: the frame is processed and counted, owned by no round.
  server.submit(2, 0, enc({100.0}), 1.0);
  server.drain();
  EXPECT_EQ(server.stats().uplinks_accepted, 1u);
  server.begin_round({0, 1});
  server.submit(0, 0, enc({1.0}), 1.0);
  server.submit(2, 0, enc({100.0}), 1.0);  // not drawn this round
  server.submit(1, 0, enc({3.0}), 1.0);
  server.drain();
  const fed::RoundResult result = server.commit_round(2);
  EXPECT_EQ(result.participants, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(result.effective_clients(), 2u);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
  EXPECT_EQ(server.stats().uplinks_accepted, 4u);
  EXPECT_EQ(server.client_record(2).accepted, 2u);
}

TEST(ShardedServer, AbsentParticipantsAreReportedDropped) {
  ShardedServer server(3);
  server.initialize({0.0});
  server.begin_round({0, 1, 2});
  server.submit(1, 0, enc({5.0}), 1.0);
  server.drain();
  const fed::RoundResult result = server.commit_round(1);
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(result.effective_clients(), 1u);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 5.0);
}

TEST(ShardedServer, ThroughputModeDiscountsByStaleness) {
  ServeConfig config;
  config.mode = CommitMode::kThroughput;
  config.mixing_rate = 0.5;
  config.staleness_power = 1.0;
  ShardedServer server(1, config);
  server.initialize({0.0});
  server.begin_round({0});
  server.submit(0, 0, enc({1.0}), 1.0);
  server.drain();  // merge #1: staleness 0, w = 0.5 -> global 0.5, v1
  EXPECT_DOUBLE_EQ(server.global_model()[0], 0.5);
  EXPECT_EQ(server.version(), 1u);
  server.submit(0, 0, enc({1.0}), 1.0);  // still trained from version 0
  server.drain();  // merge #2: staleness 1, w = 0.25 -> 0.75*0.5 + 0.25
  EXPECT_DOUBLE_EQ(server.global_model()[0], 0.625);
  EXPECT_EQ(server.version(), 2u);
  const fed::RoundResult result = server.commit_round(1);
  EXPECT_EQ(result.effective_clients(), 1u);
  EXPECT_EQ(server.stats().merges, 2u);
  EXPECT_DOUBLE_EQ(server.stats().max_staleness, 1.0);
  EXPECT_DOUBLE_EQ(server.stats().mean_staleness, 0.5);
  // Committing a throughput round reports but does not re-aggregate.
  EXPECT_DOUBLE_EQ(server.global_model()[0], 0.625);
}

TEST(ShardedServer, ThroughputModeClampsAheadOfTimeBaseVersions) {
  // A client claiming a base version newer than the server's cannot
  // produce negative staleness: the base clamps to the current version.
  ServeConfig config;
  config.mode = CommitMode::kThroughput;
  config.mixing_rate = 0.5;
  ShardedServer server(1, config);
  server.initialize({0.0});
  server.begin_round({0});
  server.submit(0, 99, enc({1.0}), 1.0);
  server.drain();
  server.commit_round(1);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 0.5);  // staleness clamped to 0
  EXPECT_DOUBLE_EQ(server.stats().max_staleness, 0.0);
}

// Drives the same upload sequence into a server built with `workers`
// shards; returns the SRVR section bytes at quiescence.
std::vector<std::uint8_t> snapshot_after_traffic(std::size_t workers) {
  ServeConfig config;
  config.workers = workers;
  ShardedServer server(5, config);
  server.initialize({1.0, 2.0});
  server.begin_round({0, 1, 2, 3, 4});
  server.submit(0, 0, enc({1.0, 1.0}), 1.0);
  server.submit(1, 0, enc({3.0, 5.0}), 1.0);
  server.submit(2, 0, {0xAB}, 1.0);  // corrupt
  server.submit(3, 0, enc({std::numeric_limits<double>::quiet_NaN(), 0.0}),
                1.0);                // rejected
  server.submit(4, 0, enc({2.0, 0.0}), 1.0);
  server.drain();
  server.commit_round(2);
  server.begin_round({0, 1});
  server.submit(0, 1, enc({4.0, 4.0}), 1.0);
  server.submit(1, 1, enc({6.0, 8.0}), 1.0);
  server.drain();
  server.commit_round(2);
  ckpt::Writer out;
  server.save_state(out);
  return out.take();
}

TEST(ShardedServer, CheckpointBytesAreWorkerCountInvariant) {
  const std::vector<std::uint8_t> one = snapshot_after_traffic(1);
  EXPECT_EQ(one, snapshot_after_traffic(2));
  EXPECT_EQ(one, snapshot_after_traffic(4));
}

TEST(ShardedServer, CheckpointRoundtripRestoresEveryField) {
  const std::vector<std::uint8_t> bytes = snapshot_after_traffic(2);
  ServeConfig config;
  config.workers = 3;  // worker count is runtime-only, not snapshot state
  ShardedServer restored(5, config);
  restored.initialize({0.0, 0.0});
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(restored.version(), 2u);
  EXPECT_EQ(restored.rounds_committed(), 2u);
  EXPECT_EQ(restored.stats().uplinks_accepted, 5u);
  EXPECT_EQ(restored.stats().uplinks_corrupt, 1u);
  EXPECT_EQ(restored.stats().uplinks_rejected, 1u);
  EXPECT_EQ(restored.client_record(0).accepted, 2u);
  EXPECT_DOUBLE_EQ(restored.client_record(2).reputation, 0.75);
  // Round 1 aggregate: mean of {1,1},{3,5},{2,0} = {2,2}; round 2: mean of
  // {4,4},{6,8} = {5,6}.
  EXPECT_DOUBLE_EQ(restored.global_model()[0], 5.0);
  EXPECT_DOUBLE_EQ(restored.global_model()[1], 6.0);
  // The restored server serves rounds again, byte-for-byte equivalent.
  ckpt::Writer again;
  restored.save_state(again);
  EXPECT_EQ(again.data(), bytes);
}

TEST(ShardedServer, RestoreRejectsClientCountMismatch) {
  const std::vector<std::uint8_t> bytes = snapshot_after_traffic(1);
  ShardedServer other(4);
  other.initialize({0.0, 0.0});
  ckpt::Reader in(bytes);
  EXPECT_THROW(other.restore_state(in), ckpt::StateMismatchError);
}

TEST(ShardedServerDeathTest, Preconditions) {
  EXPECT_DEATH(ShardedServer(0), "precondition");
  {
    ServeConfig bad;
    bad.mixing_rate = 0.0;
    EXPECT_DEATH(ShardedServer(1, bad), "precondition");
  }
  {
    ServeConfig bad;
    bad.staleness_power = -1.0;
    EXPECT_DEATH(ShardedServer(1, bad), "precondition");
  }
  EXPECT_DEATH(
      {
        ShardedServer s(1);
        s.submit(0, 0, {}, 1.0);  // not initialized
      },
      "precondition");
  EXPECT_DEATH(
      {
        ShardedServer s(2);
        s.initialize({0.0});
        s.submit(2, 0, {}, 1.0);  // client out of range
      },
      "precondition");
}

}  // namespace
}  // namespace fedpower::serve
