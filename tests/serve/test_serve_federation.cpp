// The PR's headline contract (DESIGN.md §12): ServeFederation in
// deterministic commit mode is bit-identical to the synchronous
// FederatedAveraging server at any worker count — same globals, same
// RoundResult verdicts, same QuorumError pattern — including under
// client sampling, robust aggregation and seeded transport faults. Plus
// the SFED+SRVR checkpoint resume equivalence.
#include "serve/serve_federation.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/fault_injection.hpp"
#include "fed/federation.hpp"

namespace fedpower::serve {
namespace {

/// Deterministic client: adds its fixed delta each local round. Two
/// fleets built from the same deltas behave identically, which is what
/// lets the sync and serve paths run side by side.
class ScriptedClient final : public fed::FederatedClient {
 public:
  explicit ScriptedClient(double delta, std::size_t samples = 1)
      : delta_(delta), samples_(samples) {}

  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }
  std::size_t local_sample_count() const override { return samples_; }

 private:
  double delta_;
  std::size_t samples_;
  std::vector<double> params_;
};

using Fleet = std::vector<std::unique_ptr<ScriptedClient>>;

Fleet make_fleet(const std::vector<double>& deltas,
                 const std::vector<std::size_t>& samples = {}) {
  Fleet fleet;
  for (std::size_t i = 0; i < deltas.size(); ++i)
    fleet.push_back(std::make_unique<ScriptedClient>(
        deltas[i], samples.empty() ? 1 : samples[i]));
  return fleet;
}

std::vector<fed::FederatedClient*> ptrs(const Fleet& fleet) {
  std::vector<fed::FederatedClient*> out;
  for (const auto& client : fleet) out.push_back(client.get());
  return out;
}

void expect_round_parity(const fed::RoundResult& sync_round,
                         const fed::RoundResult& serve_round) {
  EXPECT_EQ(sync_round.participants, serve_round.participants);
  EXPECT_EQ(sync_round.dropped, serve_round.dropped);
  EXPECT_EQ(sync_round.rejected, serve_round.rejected);
  EXPECT_EQ(sync_round.effective_clients(),
            serve_round.effective_clients());
}

const std::vector<double> kDeltas{0.5, -1.0, 2.0, 0.25, -0.75, 1.5};
const std::vector<double> kInit{0.0, 10.0, -5.0};

TEST(ServeFederation, BitIdenticalToSyncAtOneTwoFourWorkers) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    Fleet sync_fleet = make_fleet(kDeltas);
    Fleet serve_fleet = make_fleet(kDeltas);
    fed::InProcessTransport sync_transport;
    fed::InProcessTransport serve_transport;
    fed::FederatedAveraging sync_server(ptrs(sync_fleet), &sync_transport);
    ServeConfig config;
    config.workers = workers;
    ServeFederation serve(ptrs(serve_fleet), &serve_transport, config);
    sync_server.initialize(kInit);
    serve.initialize(kInit);
    for (int round = 0; round < 5; ++round) {
      const fed::RoundResult s = sync_server.run_round();
      const fed::RoundResult v = serve.run_round();
      expect_round_parity(s, v);
      // Exact, not approximate: the commit runs the same aggregation
      // code over the same survivor order.
      EXPECT_EQ(sync_server.global_model(), serve.global_model())
          << "diverged at round " << round << " with " << workers
          << " workers";
    }
  }
}

TEST(ServeFederation, BitIdenticalUnderClientSampling) {
  fed::SamplingConfig sampling;
  sampling.fraction = 0.5;
  sampling.min_clients = 2;
  sampling.seed = 7;
  Fleet sync_fleet = make_fleet(kDeltas);
  Fleet serve_fleet = make_fleet(kDeltas);
  fed::InProcessTransport sync_transport;
  fed::InProcessTransport serve_transport;
  fed::FederatedAveraging sync_server(ptrs(sync_fleet), &sync_transport);
  ServeConfig config;
  config.workers = 2;
  ServeFederation serve(ptrs(serve_fleet), &serve_transport, config);
  sync_server.set_sampling(sampling);
  serve.set_sampling(sampling);
  sync_server.initialize(kInit);
  serve.initialize(kInit);
  for (int round = 0; round < 8; ++round) {
    const fed::RoundResult s = sync_server.run_round();
    const fed::RoundResult v = serve.run_round();
    // Same RNG stream: the drawn participants must match exactly.
    EXPECT_EQ(s.participants, v.participants);
    EXPECT_EQ(sync_server.global_model(), serve.global_model());
  }
  EXPECT_EQ(serve.rounds_completed(), 8u);
}

TEST(ServeFederation, BitIdenticalWithRobustAggregation) {
  struct Case {
    fed::AggregationMode mode;
    std::optional<std::size_t> trim_override;
  };
  const std::vector<Case> cases{
      {fed::AggregationMode::kCoordinateMedian, std::nullopt},
      {fed::AggregationMode::kTrimmedMean, std::nullopt},
      {fed::AggregationMode::kTrimmedMean, std::size_t{1}},
      {fed::AggregationMode::kSampleWeighted, std::nullopt},
  };
  const std::vector<std::size_t> samples{4, 1, 2, 7, 1, 3};
  for (const Case& c : cases) {
    Fleet sync_fleet = make_fleet(kDeltas, samples);
    Fleet serve_fleet = make_fleet(kDeltas, samples);
    fed::InProcessTransport sync_transport;
    fed::InProcessTransport serve_transport;
    fed::FederatedAveraging sync_server(ptrs(sync_fleet), &sync_transport,
                                        c.mode);
    ServeConfig config;
    config.workers = 4;
    config.aggregation = c.mode;
    config.trim_override = c.trim_override;
    ServeFederation serve(ptrs(serve_fleet), &serve_transport, config);
    if (c.trim_override) sync_server.set_trim_count(*c.trim_override);
    sync_server.initialize(kInit);
    serve.initialize(kInit);
    for (int round = 0; round < 4; ++round) {
      sync_server.run_round();
      serve.run_round();
      EXPECT_EQ(sync_server.global_model(), serve.global_model());
    }
  }
}

TEST(ServeFederation, BitIdenticalUnderSeededTransportFaults) {
  // Both paths issue the same transfer sequence call-for-call, so two
  // fault injectors with the same seed fire on the same transfers — the
  // dropout pattern, verdicts and committed models all line up.
  fed::FaultInjectionConfig faults;
  faults.drop_probability = 0.2;
  faults.truncate_probability = 0.15;
  faults.seed = 3;
  Fleet sync_fleet = make_fleet(kDeltas);
  Fleet serve_fleet = make_fleet(kDeltas);
  fed::InProcessTransport sync_inner;
  fed::InProcessTransport serve_inner;
  fed::FaultInjectingTransport sync_faulty(&sync_inner, faults);
  fed::FaultInjectingTransport serve_faulty(&serve_inner, faults);
  fed::FederatedAveraging sync_server(ptrs(sync_fleet), &sync_faulty);
  ServeConfig config;
  config.workers = 2;
  ServeFederation serve(ptrs(serve_fleet), &serve_faulty, config);
  sync_server.initialize(kInit);
  serve.initialize(kInit);
  std::size_t committed = 0;
  std::size_t aborted = 0;
  for (int round = 0; round < 10; ++round) {
    std::optional<fed::RoundResult> s;
    std::optional<fed::RoundResult> v;
    try {
      s = sync_server.run_round();
    } catch (const fed::QuorumError&) {}
    try {
      v = serve.run_round();
    } catch (const fed::QuorumError&) {}
    ASSERT_EQ(s.has_value(), v.has_value())
        << "quorum divergence at round " << round;
    if (s) {
      expect_round_parity(*s, *v);
      ++committed;
    } else {
      ++aborted;
    }
    EXPECT_EQ(sync_server.global_model(), serve.global_model());
  }
  // The fault rates above make both outcomes plausible; what matters is
  // that the two paths agreed on every single round.
  EXPECT_EQ(committed + aborted, 10u);
  EXPECT_GT(committed, 0u);
}

TEST(ServeFederation, QuorumErrorLeavesRoundCounterAndGlobalUntouched) {
  Fleet fleet = make_fleet({1.0, 1.0});
  fed::InProcessTransport inner;
  fed::FaultInjectionConfig faults;
  faults.drop_probability = 1.0;  // every transfer dies
  fed::FaultInjectingTransport faulty(&inner, faults);
  ServeFederation serve(ptrs(fleet), &faulty);
  serve.set_quorum(2);
  serve.initialize({4.0});
  EXPECT_THROW(serve.run_round(), fed::QuorumError);
  EXPECT_EQ(serve.rounds_completed(), 0u);
  EXPECT_DOUBLE_EQ(serve.global_model()[0], 4.0);
}

TEST(ServeFederation, CheckpointResumeMatchesUninterruptedRun) {
  fed::SamplingConfig sampling;
  sampling.fraction = 0.5;
  sampling.min_clients = 2;
  sampling.seed = 11;
  const auto build = [&](Fleet& fleet, fed::Transport* transport) {
    ServeConfig config;
    config.workers = 2;
    auto serve =
        std::make_unique<ServeFederation>(ptrs(fleet), transport, config);
    serve->set_sampling(sampling);
    serve->initialize(kInit);
    return serve;
  };
  // Reference: 6 uninterrupted rounds.
  Fleet fleet_a = make_fleet(kDeltas);
  fed::InProcessTransport transport_a;
  auto reference = build(fleet_a, &transport_a);
  reference->run(6);
  // Interrupted: 3 rounds, snapshot, restore into a fresh federation
  // (fresh clients too — their state is rebuilt by the next broadcast),
  // then 3 more rounds.
  Fleet fleet_b = make_fleet(kDeltas);
  fed::InProcessTransport transport_b;
  auto first_half = build(fleet_b, &transport_b);
  first_half->run(3);
  ckpt::Writer snapshot;
  first_half->save_state(snapshot);
  Fleet fleet_c = make_fleet(kDeltas);
  fed::InProcessTransport transport_c;
  auto resumed = build(fleet_c, &transport_c);
  ckpt::Reader in(snapshot.data());
  resumed->restore_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(resumed->rounds_completed(), 3u);
  resumed->run(3);
  EXPECT_EQ(resumed->rounds_completed(), 6u);
  // Bit-identical to the uninterrupted run: global model AND the
  // participation stream (a drifted stream would pick other clients).
  EXPECT_EQ(resumed->global_model(), reference->global_model());
  ckpt::Writer resumed_bytes;
  ckpt::Writer reference_bytes;
  resumed->save_state(resumed_bytes);
  reference->save_state(reference_bytes);
  EXPECT_EQ(resumed_bytes.data(), reference_bytes.data());
}

TEST(ServeFederation, ThroughputModeMergesEveryAcceptedUpload) {
  Fleet fleet = make_fleet(kDeltas);
  fed::InProcessTransport transport;
  ServeConfig config;
  config.mode = CommitMode::kThroughput;
  config.workers = 2;
  config.mixing_rate = 0.5;
  ServeFederation serve(ptrs(fleet), &transport, config);
  serve.initialize(kInit);
  serve.run(3);
  EXPECT_EQ(serve.rounds_completed(), 3u);
  EXPECT_EQ(serve.server_stats().merges, 18u);  // 6 clients x 3 rounds
  EXPECT_EQ(serve.server().version(), 18u);     // one bump per merge
}

}  // namespace
}  // namespace fedpower::serve
