// Serve-path screening parity (DESIGN.md §13): both federation servers
// route uploads through the same fed:: screening primitives, so the
// synchronous server and the sharded serve pipeline hand down identical
// verdicts under identical fault schedules — and the serve-side norm
// screen, built on per-client history only, is worker-count invariant and
// survives an SRVR checkpoint roundtrip.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/fault_injection.hpp"
#include "fed/federation.hpp"
#include "fed/transport.hpp"
#include "serve/serve_federation.hpp"

namespace fedpower::serve {
namespace {

/// Honest client: installs the broadcast, adds `delta` per local round.
class ScriptedClient final : public fed::FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

/// Uploads NaN every round — the shape the shared non-finite screen must
/// reject on both federation paths.
class NanClient final : public fed::FederatedClient {
 public:
  void receive_global(std::span<const double> params) override {
    width_ = params.size();
  }
  std::vector<double> local_parameters() const override {
    return std::vector<double>(width_,
                               std::numeric_limits<double>::quiet_NaN());
  }
  void run_local_round() override {}

 private:
  std::size_t width_ = 0;
};

/// Honest until upload number `inflate_from`, then its uploads blow up by
/// `factor` — the envelope jump the serve-side norm screen exists for.
class InflatingClient final : public fed::FederatedClient {
 public:
  InflatingClient(double delta, std::size_t inflate_from, double factor)
      : delta_(delta), inflate_from_(inflate_from), factor_(factor) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override {
    std::vector<double> out = params_;
    if (rounds_ >= inflate_from_)
      for (double& p : out) p *= factor_;
    return out;
  }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::size_t inflate_from_;
  double factor_;
  std::size_t rounds_ = 0;
  std::vector<double> params_;
};

const std::vector<double> kInit{1.0, -2.0, 4.0};

TEST(ScreeningParity, NonFiniteVerdictsMatchTheSyncServerAtAnyWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ScriptedClient sync_a(0.5), sync_b(-0.25);
    NanClient sync_nan;
    ScriptedClient serve_a(0.5), serve_b(-0.25);
    NanClient serve_nan;
    fed::InProcessTransport sync_wire;
    fed::InProcessTransport serve_wire;
    fed::FederatedAveraging sync_server({&sync_a, &sync_nan, &sync_b},
                                        &sync_wire);
    ServeConfig config;
    config.workers = workers;
    ServeFederation serve({&serve_a, &serve_nan, &serve_b}, &serve_wire,
                          config);
    sync_server.initialize(kInit);
    serve.initialize(kInit);
    for (int round = 0; round < 5; ++round) {
      const fed::RoundResult s = sync_server.run_round();
      const fed::RoundResult v = serve.run_round();
      // Both paths screen through fed::any_non_finite: same verdict list.
      EXPECT_EQ(s.rejected, (std::vector<std::size_t>{1}));
      EXPECT_EQ(v.rejected, s.rejected);
      EXPECT_EQ(v.dropped, s.dropped);
      EXPECT_EQ(sync_server.global_model(), serve.global_model());
    }
    EXPECT_EQ(serve.server_stats().uplinks_rejected, 5u);
  }
}

TEST(ScreeningParity, VerdictsMatchUnderSeededFaultsWithANanClient) {
  // Transport faults and the non-finite screen at once: the two paths see
  // the same fault schedule (same seed, same transfer sequence), so every
  // exclusion list matches round for round.
  fed::FaultInjectionConfig faults;
  faults.drop_probability = 0.15;
  faults.truncate_probability = 0.1;
  faults.seed = 11;
  ScriptedClient sync_a(0.5), sync_b(-0.25), sync_c(1.0);
  NanClient sync_nan;
  ScriptedClient serve_a(0.5), serve_b(-0.25), serve_c(1.0);
  NanClient serve_nan;
  fed::InProcessTransport sync_inner;
  fed::InProcessTransport serve_inner;
  fed::FaultInjectingTransport sync_faulty(&sync_inner, faults);
  fed::FaultInjectingTransport serve_faulty(&serve_inner, faults);
  fed::FederatedAveraging sync_server(
      {&sync_a, &sync_nan, &sync_b, &sync_c}, &sync_faulty);
  ServeConfig config;
  config.workers = 2;
  ServeFederation serve({&serve_a, &serve_nan, &serve_b, &serve_c},
                        &serve_faulty, config);
  sync_server.initialize(kInit);
  serve.initialize(kInit);
  std::size_t committed = 0;
  for (int round = 0; round < 12; ++round) {
    std::optional<fed::RoundResult> s;
    std::optional<fed::RoundResult> v;
    try {
      s = sync_server.run_round();
    } catch (const fed::QuorumError&) {}
    try {
      v = serve.run_round();
    } catch (const fed::QuorumError&) {}
    ASSERT_EQ(s.has_value(), v.has_value()) << "round " << round;
    if (s) {
      EXPECT_EQ(v->rejected, s->rejected) << "round " << round;
      EXPECT_EQ(v->dropped, s->dropped) << "round " << round;
      ++committed;
    }
    EXPECT_EQ(sync_server.global_model(), serve.global_model());
  }
  EXPECT_GT(committed, 0u);
}

TEST(NormScreen, DisarmedByDefaultAndBlindBeforeHistoryArms) {
  // Default config: multiplier 0, screen off — the PR 7 verdict taxonomy
  // is untouched and even a 50x upload sails through.
  ScriptedClient a(0.01), b(0.01);
  InflatingClient bloated(0.01, /*inflate_from=*/2, /*factor=*/50.0);
  fed::InProcessTransport wire;
  ServeFederation serve({&a, &b, &bloated}, &wire);
  serve.initialize(kInit);
  for (int round = 0; round < 6; ++round) {
    const fed::RoundResult result = serve.run_round();
    EXPECT_TRUE(result.screened.empty());
  }
  EXPECT_EQ(serve.server_stats().uplinks_screened, 0u);
}

TEST(NormScreen, ScreensTheEnvelopeJumpOnceHistoryArms) {
  ScriptedClient a(0.01), b(0.01);
  InflatingClient bloated(0.01, /*inflate_from=*/6, /*factor=*/50.0);
  fed::InProcessTransport wire;
  ServeConfig config;
  config.norm_screen_multiplier = 3.0;
  config.norm_min_samples = 4;
  ServeFederation serve({&a, &b, &bloated}, &wire, config);
  serve.initialize(kInit);
  // Rounds 1-5: honest uploads bank norm history; nothing screens.
  for (int round = 1; round <= 5; ++round)
    EXPECT_TRUE(serve.run_round().screened.empty()) << "round " << round;
  // Round 6 on: the 50x upload towers over the client's own median.
  for (int round = 6; round <= 8; ++round) {
    const fed::RoundResult result = serve.run_round();
    EXPECT_EQ(result.screened, (std::vector<std::size_t>{2}))
        << "round " << round;
  }
  EXPECT_EQ(serve.server_stats().uplinks_screened, 3u);
  EXPECT_EQ(serve.server().client_record(2).screened, 3u);
  // The screened uploads never reached the aggregate: both honest clients
  // drift identically, so the global tracks them exactly.
  EXPECT_EQ(serve.server().client_record(2).accepted, 5u);
}

TEST(NormScreen, VerdictsAndModelAreWorkerCountInvariant) {
  // The screen reads only the client's own ring — never cross-shard state
  // — so re-sharding the fleet cannot move a verdict.
  std::vector<std::vector<std::size_t>> reference_screened;
  std::vector<double> reference_global;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ScriptedClient a(0.01), b(0.02), c(-0.01);
    InflatingClient bloated(0.01, /*inflate_from=*/6, /*factor=*/50.0);
    fed::InProcessTransport wire;
    ServeConfig config;
    config.workers = workers;
    config.norm_screen_multiplier = 3.0;
    config.norm_min_samples = 4;
    ServeFederation serve({&a, &b, &bloated, &c}, &wire, config);
    serve.initialize(kInit);
    std::vector<std::vector<std::size_t>> screened;
    for (int round = 0; round < 9; ++round)
      screened.push_back(serve.run_round().screened);
    if (workers == 1) {
      reference_screened = screened;
      reference_global = serve.global_model();
      // The scenario actually fires: at least one screened round.
      EXPECT_FALSE(screened[6].empty());
    } else {
      EXPECT_EQ(screened, reference_screened) << workers << " workers";
      EXPECT_EQ(serve.global_model(), reference_global)
          << workers << " workers";
    }
  }
}

TEST(NormScreen, ScreeningCountersSurviveACheckpointRoundtrip) {
  const auto build = [](std::vector<fed::FederatedClient*> clients,
                        fed::Transport* wire) {
    ServeConfig config;
    config.workers = 2;
    config.norm_screen_multiplier = 3.0;
    config.norm_min_samples = 4;
    auto serve = std::make_unique<ServeFederation>(std::move(clients), wire,
                                                   config);
    serve->initialize(kInit);
    return serve;
  };
  ScriptedClient a(0.01), b(0.01);
  InflatingClient bloated(0.01, /*inflate_from=*/6, /*factor=*/50.0);
  fed::InProcessTransport wire;
  auto serve = build({&a, &b, &bloated}, &wire);
  serve->run(7);  // through the first screened round
  ASSERT_GT(serve->server_stats().uplinks_screened, 0u);
  ckpt::Writer snapshot;
  serve->save_state(snapshot);

  ScriptedClient a2(0.01), b2(0.01);
  InflatingClient bloated2(0.01, 6, 50.0);
  fed::InProcessTransport wire2;
  auto resumed = build({&a2, &b2, &bloated2}, &wire2);
  ckpt::Reader in(snapshot.data());
  resumed->restore_state(in);
  EXPECT_TRUE(in.exhausted());
  // The new counters rode the SRVR section: stats, per-client record and
  // a bit-identical re-serialization.
  EXPECT_EQ(resumed->server_stats().uplinks_screened,
            serve->server_stats().uplinks_screened);
  EXPECT_EQ(resumed->server().client_record(2).screened,
            serve->server().client_record(2).screened);
  ckpt::Writer again;
  resumed->save_state(again);
  EXPECT_EQ(again.data(), snapshot.data());
}

}  // namespace
}  // namespace fedpower::serve
