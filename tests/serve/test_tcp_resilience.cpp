// TCP resilience surface (DESIGN.md §14): uplink re-send idempotence at
// 1/2/4 workers, the deterministic-mode stale-replay guard, the
// session-resume handshake (valid + malformed), idle half-open reaping,
// the commit_then_begin no-gap contract, and client reconnect through a
// scheduled connection reset.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chaos/tcp_chaos_proxy.hpp"
#include "fed/codec.hpp"
#include "fed/tcp_transport.hpp"
#include "serve/client.hpp"
#include "serve/epoll_server.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace fedpower::serve {
namespace {

/// Minimal blocking client speaking raw frames (the front end is not an
/// echo peer, so TcpTransport cannot drive it).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("raw client: socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0)
      throw std::runtime_error("raw client: connect");
  }
  ~RawClient() { close(); }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_bytes(std::span<const std::uint8_t> data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) throw std::runtime_error("raw client: send");
      sent += static_cast<std::size_t>(n);
    }
  }

  std::vector<std::uint8_t> recv_frame(std::uint8_t& direction) {
    std::array<std::uint8_t, 4> head{};
    recv_exact(head.data(), head.size());
    const std::uint32_t len = fed::load_u32_le(head.data());
    if (len == 0) throw std::runtime_error("raw client: zero frame");
    std::vector<std::uint8_t> body(len);
    recv_exact(body.data(), body.size());
    direction = body[0];
    return {body.begin() + 1, body.end()};
  }

  bool peer_closed() {
    std::uint8_t byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  void recv_exact(std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) throw std::runtime_error("raw client: recv");
      got += static_cast<std::size_t>(r);
    }
  }

  int fd_ = -1;
};

std::vector<std::uint8_t> uplink_frame(std::uint32_t client,
                                       std::uint64_t base_version,
                                       const std::vector<double>& model) {
  UplinkHeader header;
  header.client = client;
  header.base_version = base_version;
  return fed::encode_frame(
      fed::Direction::kUplink,
      encode_uplink(header, fed::Float32Codec::instance().encode(model)));
}

void upload_and_ack(RawClient& client, std::uint32_t index,
                    std::uint64_t base_version,
                    const std::vector<double>& model) {
  client.send_bytes(uplink_frame(index, base_version, model));
  std::uint8_t direction = 0xFF;
  const std::vector<std::uint8_t> ack = client.recv_frame(direction);
  ASSERT_EQ(direction, 0);
  ASSERT_EQ(ack, (std::vector<std::uint8_t>{0}));
}

template <typename Predicate>
bool eventually(Predicate&& pred) {
  for (int i = 0; i < 800; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// A re-sent uplink (the reconnect protocol re-sends after a mid-ack
// transport error) folds to the first arrival: one verdict, the dedup
// counter ticks, and the committed bytes match the single-send model at
// every worker count.
TEST(TcpResilience, ResendIsIdempotentAtAnyWorkerCount) {
  std::vector<std::vector<double>> globals;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ServeConfig config;
    config.workers = workers;
    ShardedServer server(2, config);
    server.initialize({0.0, 0.0});
    EpollFrontEnd front(&server);
    front.begin_round({0, 1});
    RawClient a(front.port());
    RawClient b(front.port());
    upload_and_ack(a, 0, 0, {1.0, 2.0});
    upload_and_ack(a, 0, 0, {1.0, 2.0});  // identical re-send, also acked
    upload_and_ack(b, 1, 0, {3.0, 6.0});
    const fed::RoundResult result = front.commit_round(2);
    EXPECT_EQ(result.effective_clients(), 2u);  // not 3
    EXPECT_EQ(server.stats().duplicates, 1u) << workers << " workers";
    globals.push_back(server.global_model());
    EXPECT_DOUBLE_EQ(globals.back()[0], 2.0);
    EXPECT_DOUBLE_EQ(globals.back()[1], 4.0);
    // A clean, fully-acked round leaves reputations at the cap.
    front.stop();
    EXPECT_DOUBLE_EQ(server.client_record(0).reputation, 1.0);
    EXPECT_DOUBLE_EQ(server.client_record(1).reputation, 1.0);
  }
  EXPECT_EQ(globals[0], globals[1]);  // exact bytes, not approximate
  EXPECT_EQ(globals[0], globals[2]);
}

// A re-send that lands AFTER its round committed (the other failure
// window of the reconnect protocol) must not pollute the next round: in
// deterministic mode it is dropped as a replay, not absorbed.
TEST(TcpResilience, StaleReplayIsDroppedNotAggregated) {
  ShardedServer server(2);
  server.initialize({0.0});
  const fed::ModelCodec& codec = server.codec();
  server.begin_round({0});
  server.submit(0, 0, codec.encode(std::vector<double>{2.0}), 1.0);
  server.drain();
  server.commit_round(1);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);

  server.begin_round({0, 1});
  // The replay: client 0's round-0 uplink arriving again after commit.
  server.submit(0, 0, codec.encode(std::vector<double>{2.0}), 1.0);
  server.drain();
  EXPECT_EQ(server.stats().duplicates, 1u);
  EXPECT_EQ(server.round_distinct_arrivals(), 0u);  // never joined round 1
  server.submit(0, 1, codec.encode(std::vector<double>{4.0}), 1.0);
  server.submit(1, 1, codec.encode(std::vector<double>{8.0}), 1.0);
  server.drain();
  server.commit_round(2);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 6.0);  // mean(4, 8); no ghost
  EXPECT_EQ(server.stats().duplicates, 1u);
}

TEST(TcpResilience, ResumeHandshakeIsServedAndCounted) {
  ShardedServer server(3);
  server.initialize({1.0});
  EpollFrontEnd front(&server);
  RawClient client(front.port());
  ResumeRequest request;
  request.client = 2;
  request.last_acked_round = 0;
  client.send_bytes(
      encode_serve_frame(kResumeDirection, encode_resume_request(request)));
  std::uint8_t direction = 0xFF;
  const std::vector<std::uint8_t> payload = client.recv_frame(direction);
  EXPECT_EQ(direction, kResumeDirection);
  ResumeReply reply;
  ASSERT_TRUE(decode_resume_reply(payload, reply));
  EXPECT_EQ(reply.version, 0u);
  EXPECT_EQ(reply.rounds_committed, 0u);
  EXPECT_EQ(front.sessions_resumed(), 1u);
  front.stop();
  EXPECT_EQ(server.client_resumes(2), 1u);
  EXPECT_EQ(server.client_resumes(0), 0u);
}

TEST(TcpResilience, MalformedResumeFramesAreProtocolErrors) {
  ShardedServer server(2);
  server.initialize({1.0});
  EpollFrontEnd front(&server);
  {  // wrong payload size: strict decode rejects it
    RawClient client(front.port());
    client.send_bytes(encode_serve_frame(kResumeDirection, {}));
    EXPECT_TRUE(client.peer_closed());
  }
  EXPECT_TRUE(eventually([&] { return front.protocol_errors() == 1; }));
  {  // unknown client id
    RawClient client(front.port());
    ResumeRequest request;
    request.client = 99;
    client.send_bytes(
        encode_serve_frame(kResumeDirection, encode_resume_request(request)));
    EXPECT_TRUE(client.peer_closed());
  }
  EXPECT_TRUE(eventually([&] { return front.protocol_errors() == 2; }));
  EXPECT_EQ(front.sessions_resumed(), 0u);
}

// The half-open slot leak: a client that dies without FIN used to hold
// its connection slot forever. With serve.idle_timeout_s armed the loop
// reaps it (counting the buffered partial frame as truncated) and keeps
// serving.
TEST(TcpResilience, IdleHalfOpenConnectionIsReaped) {
  ServeConfig config;
  config.idle_timeout_s = 0.05;
  ShardedServer server(1, config);
  server.initialize({0.0});
  EpollFrontEnd front(&server);
  RawClient half_open(front.port());
  // Header promising 100 bytes, then silence — no FIN, no data.
  half_open.send_bytes(std::vector<std::uint8_t>{100, 0, 0, 0, 0, 0xAB});
  EXPECT_TRUE(eventually([&] { return front.idle_reaped() == 1; }));
  EXPECT_EQ(front.truncated_frames(), 1u);
  EXPECT_EQ(front.protocol_errors(), 0u);
  // The slot is free and the loop is healthy: a live client still works.
  front.begin_round({0});
  RawClient live(front.port());
  upload_and_ack(live, 0, 0, {7.0});
  front.commit_round(1);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 7.0);
  front.stop();
  EXPECT_EQ(server.stats().idle_reaped, 1u);
}

// commit_then_begin leaves no window in which the bumped version is
// visible with no round open — an upload for the new round is accepted
// immediately after it returns, and the distinct-arrival mirror is fresh.
TEST(TcpResilience, CommitThenBeginLeavesNoVersionGap) {
  ShardedServer server(2);
  server.initialize({0.0});
  EpollFrontEnd front(&server);
  front.begin_round({0, 1});
  RawClient a(front.port());
  RawClient b(front.port());
  upload_and_ack(a, 0, 0, {1.0});
  upload_and_ack(b, 1, 0, {3.0});
  EXPECT_TRUE(eventually([&] { return front.round_distinct() == 2; }));
  const fed::RoundResult first = front.commit_then_begin(2, {0, 1});
  EXPECT_EQ(first.effective_clients(), 2u);
  // The mirror was refreshed inside the same command: no stale full-draw
  // reading can trick a driver into committing the next round empty.
  EXPECT_EQ(front.round_distinct(), 0u);
  upload_and_ack(a, 0, 1, {5.0});
  upload_and_ack(b, 1, 1, {7.0});
  front.commit_round(2);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 6.0);
  EXPECT_EQ(server.version(), 2u);
}

// On a QuorumError the next round is NOT begun: the round state is left
// for the driver to decide, exactly like a failed commit_round.
TEST(TcpResilience, CommitThenBeginDoesNotBeginAfterQuorumFailure) {
  ShardedServer server(2);
  server.initialize({5.0});
  EpollFrontEnd front(&server);
  front.begin_round({0, 1});
  RawClient a(front.port());
  upload_and_ack(a, 0, 0, {1.0});
  EXPECT_THROW(front.commit_then_begin(2, {0, 1}), fed::QuorumError);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 5.0);
  // Recovery is explicit: begin again, meet quorum, commit.
  front.begin_round({0, 1});
  RawClient b(front.port());
  RawClient c(front.port());
  upload_and_ack(b, 0, 0, {1.0});
  upload_and_ack(c, 1, 0, {3.0});
  front.commit_round(2);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
}

// End to end through the chaos proxy: the first scheduled connection is a
// mid-stream reset, the retry loop backs off, reconnects and delivers —
// one verdict, correct bytes, reputation untouched.
TEST(TcpResilience, ClientReconnectsThroughAScheduledReset) {
  chaos::TcpChaosConfig config;
  config.reset_probability = 0.5;
  config.reset_min_bytes = 5;
  config.reset_window_bytes = 8;  // cut inside the resume handshake frame
  bool found = false;
  for (std::uint64_t seed = 1; seed < 4096 && !found; ++seed) {
    config.seed = seed;
    const chaos::TcpChaosSchedule schedule(config);
    found = schedule.at(0).fault == chaos::SocketFault::kReset &&
            schedule.at(1).fault == chaos::SocketFault::kClean &&
            schedule.at(2).fault == chaos::SocketFault::kClean;
  }
  ASSERT_TRUE(found);  // a seed with reset-then-clean exists in range

  ShardedServer server(1);
  server.initialize({0.0, 0.0});
  EpollFrontEnd front(&server);
  front.begin_round({0});
  chaos::TcpChaosProxy proxy(front.port(), config);

  ServeClientConfig client_config;
  client_config.port = proxy.port();
  client_config.client_id = 0;
  client_config.max_attempts = 50;
  client_config.backoff_initial_s = 0.001;
  client_config.backoff_max_s = 0.01;
  ServeClient client(client_config);
  client.set_last_acked_round(0);
  EXPECT_TRUE(
      client.upload(0, 1, fed::Float32Codec::instance().encode(std::vector<double>{1.0, 2.0})));
  EXPECT_GE(client.reconnects() + client.retries(), 1u);
  front.commit_round(1);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 1.0);
  EXPECT_DOUBLE_EQ(server.global_model()[1], 2.0);
  proxy.stop();
  EXPECT_GE(proxy.resets(), 1u);
  front.stop();
  EXPECT_DOUBLE_EQ(server.client_record(0).reputation, 1.0);
}

// upload() reports (not throws) when the round moved on while the client
// was away: the reconnect protocol's "your send already landed" signal.
TEST(TcpResilience, UploadReportsAnObsoleteBaseVersion) {
  ShardedServer server(1);
  server.initialize({0.0});
  EpollFrontEnd front(&server);
  front.begin_round({0});
  RawClient raw(front.port());
  upload_and_ack(raw, 0, 0, {9.0});
  front.commit_round(1);  // version is now 1

  ServeClient client([&] {
    ServeClientConfig config;
    config.port = front.port();
    config.client_id = 0;
    return config;
  }());
  EXPECT_FALSE(
      client.upload(0, 1, fed::Float32Codec::instance().encode(std::vector<double>{1.0})));
  EXPECT_DOUBLE_EQ(server.global_model()[0], 9.0);  // nothing was sent
}

}  // namespace
}  // namespace fedpower::serve
