// EpollFrontEnd over real loopback sockets (DESIGN.md §12): uplink
// routing + acks, fetch replies, the oversized/zero-length and truncated
// frame police, QuorumError propagation through the command queue, and
// identical committed models at 1/2/4 workers.
#include "serve/epoll_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fed/codec.hpp"
#include "fed/federation.hpp"
#include "fed/tcp_transport.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace fedpower::serve {
namespace {

/// Minimal blocking TCP client speaking the raw frame protocol — the
/// front end is not an echo peer, so TcpTransport cannot drive it.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("raw client: socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0)
      throw std::runtime_error("raw client: connect");
  }
  ~RawClient() { close(); }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_bytes(std::span<const std::uint8_t> data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) throw std::runtime_error("raw client: send");
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads one reply frame; returns its payload (direction byte stripped).
  std::vector<std::uint8_t> recv_frame(std::uint8_t& direction) {
    std::array<std::uint8_t, 4> head{};
    recv_exact(head.data(), head.size());
    const std::uint32_t len = fed::load_u32_le(head.data());
    if (len == 0) throw std::runtime_error("raw client: zero frame");
    std::vector<std::uint8_t> body(len);
    recv_exact(body.data(), body.size());
    direction = body[0];
    return {body.begin() + 1, body.end()};
  }

  /// Blocks until the peer closes the connection (EOF).
  bool peer_closed() {
    std::uint8_t byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  void recv_exact(std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) throw std::runtime_error("raw client: recv");
      got += static_cast<std::size_t>(r);
    }
  }

  int fd_ = -1;
};

std::vector<std::uint8_t> uplink_frame(std::uint32_t client,
                                       std::uint64_t base_version,
                                       const std::vector<double>& model,
                                       std::uint32_t weight = 1) {
  UplinkHeader header;
  header.client = client;
  header.base_version = base_version;
  header.weight = weight;
  return fed::encode_frame(
      fed::Direction::kUplink,
      encode_uplink(header, fed::Float32Codec::instance().encode(model)));
}

std::vector<std::uint8_t> fetch_frame() {
  return fed::encode_frame(fed::Direction::kDownlink, {});
}

/// Sends one uplink and waits for the 1-byte enqueue ack, which the loop
/// writes only after the frame reached the shard queues.
void upload_and_ack(RawClient& client, std::uint32_t index,
                    std::uint64_t base_version,
                    const std::vector<double>& model) {
  client.send_bytes(uplink_frame(index, base_version, model));
  std::uint8_t direction = 0xFF;
  const std::vector<std::uint8_t> ack = client.recv_frame(direction);
  ASSERT_EQ(direction, 0);
  ASSERT_EQ(ack, (std::vector<std::uint8_t>{0}));
}

template <typename Predicate>
bool eventually(Predicate&& pred) {
  for (int i = 0; i < 800; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(EpollFrontEnd, UplinksAreAckedRoutedAndCommitted) {
  ShardedServer server(2);
  server.initialize({0.0, 0.0});
  EpollFrontEnd front(&server);
  front.begin_round({0, 1});
  RawClient a(front.port());
  RawClient b(front.port());
  upload_and_ack(a, 0, 0, {1.0, 2.0});
  upload_and_ack(b, 1, 0, {3.0, 6.0});
  const fed::RoundResult result = front.commit_round(2);
  EXPECT_EQ(result.effective_clients(), 2u);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
  EXPECT_DOUBLE_EQ(server.global_model()[1], 4.0);
  EXPECT_EQ(front.connections_accepted(), 2u);
  EXPECT_EQ(front.uplinks_received(), 2u);
  EXPECT_EQ(front.protocol_errors(), 0u);
  EXPECT_EQ(front.truncated_frames(), 0u);
}

TEST(EpollFrontEnd, FetchRepliesWithVersionAndGlobalModel) {
  ShardedServer server(1);
  server.initialize({1.5, -2.5});
  EpollFrontEnd front(&server);
  front.begin_round({0});
  RawClient client(front.port());
  upload_and_ack(client, 0, 0, {3.5, -4.5});
  front.commit_round(1);
  client.send_bytes(fetch_frame());
  std::uint8_t direction = 0xFF;
  const std::vector<std::uint8_t> reply = client.recv_frame(direction);
  EXPECT_EQ(direction, 1);
  ASSERT_GE(reply.size(), 8u);
  EXPECT_EQ(load_u64_le(reply.data()), 1u);  // version after one commit
  const std::vector<double> model = fed::Float32Codec::instance().decode(
      {reply.data() + 8, reply.size() - 8});
  ASSERT_EQ(model.size(), 2u);
  EXPECT_DOUBLE_EQ(model[0], 3.5);
  EXPECT_DOUBLE_EQ(model[1], -4.5);
  EXPECT_EQ(front.fetches_served(), 1u);
  // A second fetch at the same version is served from the cached bytes.
  client.send_bytes(fetch_frame());
  const std::vector<std::uint8_t> again = client.recv_frame(direction);
  EXPECT_EQ(again, reply);
  EXPECT_EQ(front.fetches_served(), 2u);
}

TEST(EpollFrontEnd, OversizedAndZeroLengthFramesCloseTheConnection) {
  ShardedServer server(1);
  server.initialize({0.0});
  EpollFrontEnd front(&server);
  {
    RawClient client(front.port());
    client.send_bytes(std::vector<std::uint8_t>{0xFF, 0xFF, 0xFF, 0xFF});
    EXPECT_TRUE(client.peer_closed());
  }
  EXPECT_TRUE(eventually([&] { return front.protocol_errors() == 1; }));
  {
    RawClient client(front.port());
    client.send_bytes(std::vector<std::uint8_t>{0x00, 0x00, 0x00, 0x00});
    EXPECT_TRUE(client.peer_closed());
  }
  EXPECT_TRUE(eventually([&] { return front.protocol_errors() == 2; }));
  EXPECT_EQ(front.truncated_frames(), 0u);
  EXPECT_EQ(front.uplinks_received(), 0u);
}

TEST(EpollFrontEnd, ClientDyingMidFrameCountsTruncated) {
  ShardedServer server(1);
  server.initialize({0.0});
  EpollFrontEnd front(&server);
  {
    RawClient client(front.port());
    // Advertise a 10-byte frame, deliver only a direction byte + 1, die.
    client.send_bytes(std::vector<std::uint8_t>{0x0A, 0x00, 0x00, 0x00,
                                                0x00, 0x01});
  }  // destructor closes the socket mid-frame
  EXPECT_TRUE(eventually([&] { return front.truncated_frames() == 1; }));
  EXPECT_EQ(front.protocol_errors(), 0u);
}

TEST(EpollFrontEnd, QuorumErrorCrossesTheCommandQueue) {
  ShardedServer server(2);
  server.initialize({5.0});
  EpollFrontEnd front(&server);
  front.begin_round({0, 1});
  RawClient a(front.port());
  upload_and_ack(a, 0, 0, {1.0});
  EXPECT_THROW(front.commit_round(2), fed::QuorumError);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 5.0);
  // The front end keeps serving: the next round commits normally.
  front.begin_round({0, 1});
  RawClient b(front.port());
  RawClient c(front.port());
  upload_and_ack(b, 0, 0, {1.0});
  upload_and_ack(c, 1, 0, {3.0});
  front.commit_round(2);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
}

TEST(EpollFrontEnd, CommittedModelIsIdenticalAtAnyWorkerCount) {
  std::vector<std::vector<double>> globals;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ServeConfig config;
    config.workers = workers;
    ShardedServer server(8, config);
    server.initialize({0.0, 0.0, 0.0});
    EpollFrontEnd front(&server);
    for (std::uint64_t round = 0; round < 3; ++round) {
      front.begin_round({0, 1, 2, 3, 4, 5, 6, 7});
      std::vector<std::unique_ptr<RawClient>> clients;
      for (std::uint32_t i = 0; i < 8; ++i)
        clients.push_back(std::make_unique<RawClient>(front.port()));
      // Connect order != upload order: reverse to stress shard routing.
      for (std::uint32_t i = 8; i-- > 0;) {
        const double v = static_cast<double>(i + 1) * 0.25;
        upload_and_ack(*clients[i], i, round, {v, -v, v * 2.0});
      }
      front.commit_round(8);
    }
    globals.push_back(server.global_model());
  }
  EXPECT_EQ(globals[0], globals[1]);  // exact, not approximate
  EXPECT_EQ(globals[0], globals[2]);
}

TEST(EpollFrontEndDeathTest, RequiresAnInitializedServer) {
  EXPECT_DEATH(
      {
        ShardedServer s(1);
        EpollFrontEnd front(&s);
      },
      "precondition");
  EXPECT_DEATH(EpollFrontEnd(nullptr), "precondition");
}

}  // namespace
}  // namespace fedpower::serve
