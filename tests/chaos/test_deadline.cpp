// Round-deadline straggler demotion (DESIGN.md §13): a client whose
// downlink + uplink transport latency blows the per-round budget is
// demoted to a dropout before its upload is decoded — excluded from the
// aggregate, counted against the quorum, invisible to the defense
// pipeline — and the serve pipeline demotes the exact same clients at
// every worker count.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fed/federation.hpp"
#include "fed/transport.hpp"
#include "serve/serve_federation.hpp"

namespace fedpower::fed {
namespace {

/// Honest client: installs the broadcast, adds `delta` per local round.
class ScriptedClient final : public FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

/// Delivers every payload intact but bills a configurable number of
/// simulated seconds per transfer — the knob the deadline reads.
class MeteredTransport final : public Transport {
 public:
  explicit MeteredTransport(double per_transfer_s)
      : per_transfer_s_(per_transfer_s) {}

  void set_per_transfer_latency(double seconds) { per_transfer_s_ = seconds; }

  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override {
    cumulative_s_ += per_transfer_s_;
    return inner_.transfer(direction, std::move(payload));
  }
  const TrafficStats& stats() const noexcept override {
    return inner_.stats();
  }
  double cumulative_latency_s() const noexcept override {
    return inner_.cumulative_latency_s() + cumulative_s_;
  }

 private:
  InProcessTransport inner_;
  double per_transfer_s_;
  double cumulative_s_ = 0.0;
};

const std::vector<double> kInit{0.0, 1.0, -1.0};

TEST(RoundDeadline, SlowClientIsDemotedNotAggregated) {
  ScriptedClient fast_a(0.5);
  ScriptedClient slow(100.0);  // its delta would dominate the mean
  ScriptedClient fast_b(0.5);
  InProcessTransport wire;
  MeteredTransport slow_link(/*per_transfer_s=*/0.04);  // 0.08 s per round
  FederatedAveraging server({&fast_a, &slow, &fast_b}, &wire);
  server.set_client_transport(1, &slow_link);
  server.set_round_deadline(0.05);
  server.initialize(kInit);

  const RoundResult result = server.run_round();
  EXPECT_EQ(result.stragglers, (std::vector<std::size_t>{1}));
  // A straggler is a dropout: it appears in both lists and in neither
  // aggregate nor effective count.
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{1}));
  EXPECT_EQ(result.effective_clients(), 2u);
  // Only the two fast clients' +0.5 moved the model.
  EXPECT_DOUBLE_EQ(server.global_model()[0], 0.5);
  EXPECT_DOUBLE_EQ(server.global_model()[1], 1.5);
}

TEST(RoundDeadline, ZeroDeadlineDisablesDemotion) {
  ScriptedClient a(0.5);
  ScriptedClient b(0.5);
  InProcessTransport wire;
  MeteredTransport glacial(/*per_transfer_s=*/1000.0);
  FederatedAveraging server({&a, &b}, &wire);
  server.set_client_transport(1, &glacial);
  server.initialize(kInit);  // deadline never set: latency is unmetered
  const RoundResult result = server.run_round();
  EXPECT_TRUE(result.stragglers.empty());
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_EQ(result.effective_clients(), 2u);
}

TEST(RoundDeadline, DemotionReadsPerRoundLatencyNotLifetimeTotals) {
  // The budget must compare this round's latency delta, not the link's
  // cumulative account — a client that was slow once is not slow forever.
  ScriptedClient a(0.5);
  ScriptedClient b(0.5);
  InProcessTransport wire;
  MeteredTransport link(/*per_transfer_s=*/0.04);
  FederatedAveraging server({&a, &b}, &wire);
  server.set_client_transport(1, &link);
  server.set_round_deadline(0.05);
  server.initialize(kInit);
  EXPECT_EQ(server.run_round().stragglers, (std::vector<std::size_t>{1}));
  // The link heals; the cumulative account still reads 0.08+ s.
  link.set_per_transfer_latency(0.001);
  const RoundResult healed = server.run_round();
  EXPECT_TRUE(healed.stragglers.empty());
  EXPECT_EQ(healed.effective_clients(), 2u);
}

TEST(RoundDeadline, StragglerLeavesDefenseReputationUntouched) {
  // An honest-but-slow client must not bleed reputation: its upload is
  // discarded before screening, so the defense records no observation —
  // unlike a NaN or screened upload, which costs fail_penalty.
  ScriptedClient fast_a(0.01);
  ScriptedClient slow(0.01);
  ScriptedClient fast_b(0.01);
  InProcessTransport wire;
  MeteredTransport slow_link(/*per_transfer_s=*/0.04);
  FederatedAveraging server({&fast_a, &slow, &fast_b}, &wire);
  server.set_client_transport(1, &slow_link);
  server.set_round_deadline(0.05);
  DefenseConfig defense;
  defense.enabled = true;
  defense.initial_reputation = 0.8;  // headroom so pass credit is visible
  server.enable_defense(defense);
  server.initialize(kInit);

  for (int round = 0; round < 4; ++round) {
    const RoundResult result = server.run_round();
    EXPECT_EQ(result.stragglers, (std::vector<std::size_t>{1}));
  }
  ASSERT_NE(server.defense(), nullptr);
  // Punctual clients earned 4 rounds of pass credit; the straggler's
  // reputation never moved in either direction.
  EXPECT_GT(server.defense()->reputation(0), 0.95);
  EXPECT_DOUBLE_EQ(server.defense()->reputation(1), 0.8);
  EXPECT_GT(server.defense()->reputation(2), 0.95);
  EXPECT_FALSE(server.defense()->quarantined(1));
}

TEST(RoundDeadline, StragglersCountAgainstTheQuorum) {
  ScriptedClient a(0.5);
  ScriptedClient b(0.5);
  InProcessTransport wire;
  MeteredTransport slow_a(0.04);
  MeteredTransport slow_b(0.04);
  FederatedAveraging server({&a, &b}, &wire);
  server.set_client_transport(0, &slow_a);
  server.set_client_transport(1, &slow_b);
  server.set_round_deadline(0.05);
  server.set_quorum(2);
  server.initialize(kInit);
  // Both participants blow the budget: zero survivors, round aborts, and
  // the abort leaves the round counter and model untouched.
  try {
    server.run_round();
    FAIL() << "expected QuorumError";
  } catch (const QuorumError& error) {
    EXPECT_EQ(error.survivors(), 0u);
  }
  EXPECT_EQ(server.rounds_completed(), 0u);
  EXPECT_EQ(server.global_model(), kInit);
}

// --- serve-path parity ---------------------------------------------------

TEST(RoundDeadline, ServePipelineDemotesTheSameClientsAtEveryWorkerCount) {
  const std::vector<double> deltas{0.5, 100.0, -0.25, 0.5};
  for (const std::size_t workers : {1u, 2u, 4u}) {
    std::vector<ScriptedClient> sync_fleet;
    std::vector<ScriptedClient> serve_fleet;
    sync_fleet.reserve(deltas.size());
    serve_fleet.reserve(deltas.size());
    for (const double d : deltas) {
      sync_fleet.emplace_back(d);
      serve_fleet.emplace_back(d);
    }
    InProcessTransport sync_wire;
    InProcessTransport serve_wire;
    MeteredTransport sync_slow(0.04);
    MeteredTransport serve_slow(0.04);
    FederatedAveraging sync_server(
        {&sync_fleet[0], &sync_fleet[1], &sync_fleet[2], &sync_fleet[3]},
        &sync_wire);
    serve::ServeConfig config;
    config.workers = workers;
    serve::ServeFederation serve(
        {&serve_fleet[0], &serve_fleet[1], &serve_fleet[2], &serve_fleet[3]},
        &serve_wire, config);
    sync_server.set_client_transport(1, &sync_slow);
    serve.set_client_transport(1, &serve_slow);
    sync_server.set_round_deadline(0.05);
    serve.set_round_deadline(0.05);
    sync_server.initialize(kInit);
    serve.initialize(kInit);
    for (int round = 0; round < 5; ++round) {
      const RoundResult s = sync_server.run_round();
      const RoundResult v = serve.run_round();
      EXPECT_EQ(s.stragglers, v.stragglers);
      EXPECT_EQ(s.dropped, v.dropped);
      EXPECT_EQ(v.stragglers, (std::vector<std::size_t>{1}));
      EXPECT_EQ(sync_server.global_model(), serve.global_model())
          << "diverged at round " << round << " with " << workers
          << " workers";
    }
  }
}

}  // namespace
}  // namespace fedpower::fed
