// Quarantine re-admission under availability churn (DESIGN.md §13): a
// quarantined client that disappears mid-probation must neither lose its
// clean streak nor bleed reputation while unreachable — absence produces
// no defense observation — so it earns re-admission as soon as it has
// delivered probation_rounds clean uploads, however they interleave with
// churn. The whole trajectory is bit-identical at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "chaos/churn_transport.hpp"
#include "fed/federation.hpp"
#include "fed/transport.hpp"
#include "runtime/thread_pool.hpp"

namespace fedpower::chaos {
namespace {

/// Honest client: installs the broadcast, adds `delta` per local round.
class ScriptedClient final : public fed::FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

/// Uploads NaN for its first `recover_after` local rounds, then behaves —
/// the honest-but-faulty shape that earns quarantine and later returns.
class FlakyClient final : public fed::FederatedClient {
 public:
  FlakyClient(double delta, std::size_t recover_after)
      : delta_(delta), recover_after_(recover_after) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override {
    if (rounds_ <= recover_after_)
      return std::vector<double>(params_.size(),
                                 std::numeric_limits<double>::quiet_NaN());
    return params_;
  }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::size_t recover_after_;
  std::size_t rounds_ = 0;
  std::vector<double> params_;
};

fed::DefenseConfig fast_defense() {
  fed::DefenseConfig config;
  config.enabled = true;
  config.warmup_rounds = 1;
  config.norm_min_samples = 4;
  return config;
}

/// Everything the scenario observes, for bitwise cross-thread comparison.
struct Trajectory {
  std::vector<std::vector<std::size_t>> dropped;
  std::vector<std::vector<std::size_t>> rejected;
  std::vector<std::vector<std::size_t>> readmitted;
  std::vector<double> reputation;
  std::vector<double> global;
};

/// Rounds 1-3: NaN uploads quarantine client 3. Rounds 4-5: two clean
/// probation uploads. Rounds 6-8: churn takes the client offline
/// mid-probation. Round 9: back online, one more clean upload completes
/// the streak and re-admits it. Rounds 10-12: full participation again.
Trajectory run_scenario(std::size_t threads) {
  std::vector<ScriptedClient> honest;
  honest.reserve(3);
  for (int c = 0; c < 3; ++c) honest.emplace_back(0.01);
  FlakyClient flaky(0.01, /*recover_after=*/3);
  fed::InProcessTransport wire;
  ChurnTransport flaky_link(&wire);
  fed::FederatedAveraging server(
      {&honest[0], &honest[1], &honest[2], &flaky}, &wire);
  server.set_client_transport(3, &flaky_link);
  server.enable_defense(fast_defense());
  server.initialize({0.5, 0.5, 0.5, 0.5});

  runtime::ThreadPool pool(threads);
  if (threads > 1) server.set_local_executor(pool.executor());

  Trajectory trajectory;
  for (int round = 1; round <= 12; ++round) {
    flaky_link.set_online(round < 6 || round > 8);
    const fed::RoundResult result = server.run_round();
    trajectory.dropped.push_back(result.dropped);
    trajectory.rejected.push_back(result.rejected);
    trajectory.readmitted.push_back(result.readmitted);
  }
  for (std::size_t c = 0; c < server.client_count(); ++c)
    trajectory.reputation.push_back(server.defense()->reputation(c));
  trajectory.global = server.global_model();
  return trajectory;
}

TEST(ChurnReadmission, ProbationStreakSurvivesAnOfflineSpell) {
  const Trajectory t = run_scenario(1);
  // Rounds 1-3 (indices 0-2): the NaN uploads are rejected server-side.
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(t.rejected[r], (std::vector<std::size_t>{3})) << "round " << r + 1;
  // Rounds 6-8 (indices 5-7): churn makes the client a plain dropout —
  // no rejection, no observation, nothing for the defense to punish.
  for (int r = 5; r < 8; ++r) {
    EXPECT_EQ(t.dropped[r], (std::vector<std::size_t>{3})) << "round " << r + 1;
    EXPECT_TRUE(t.rejected[r].empty());
  }
  // Two clean uploads before the spell (rounds 4-5) plus one after
  // (round 9, index 8) complete probation_rounds = 3: the streak was not
  // reset by absence, so re-admission lands in round 9, not round 11.
  for (int r = 0; r < 8; ++r) EXPECT_TRUE(t.readmitted[r].empty());
  EXPECT_EQ(t.readmitted[8], (std::vector<std::size_t>{3}));
  // Re-admission granted the fresh-start reputation (0.6), and the three
  // clean aggregated rounds 10-12 each earned pass credit on top.
  EXPECT_NEAR(t.reputation[3], 0.6 + 3 * 0.05, 1e-12);
}

TEST(ChurnReadmission, HonestClientsNeverTouchQuarantine) {
  const Trajectory t = run_scenario(1);
  // Bounded honest-client quarantine (the soak invariant, in miniature):
  // clients that always upload clean stay at full reputation throughout.
  EXPECT_DOUBLE_EQ(t.reputation[0], 1.0);
  EXPECT_DOUBLE_EQ(t.reputation[1], 1.0);
  EXPECT_DOUBLE_EQ(t.reputation[2], 1.0);
}

TEST(ChurnReadmission, TrajectoryIsBitIdenticalAcrossThreadCounts) {
  const Trajectory serial = run_scenario(1);
  const Trajectory parallel = run_scenario(4);
  EXPECT_EQ(parallel.dropped, serial.dropped);
  EXPECT_EQ(parallel.rejected, serial.rejected);
  EXPECT_EQ(parallel.readmitted, serial.readmitted);
  EXPECT_EQ(parallel.reputation, serial.reputation);
  EXPECT_EQ(parallel.global, serial.global);
}

}  // namespace
}  // namespace fedpower::chaos
