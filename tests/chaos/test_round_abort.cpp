// Under-quorum rounds abort and retry instead of killing the run
// (DESIGN.md §13): a chaos draw can demote or disconnect every sampled
// client at once, and the soak driver's answer is the one a real server
// gives — commit nothing, let simulated time advance, run the round again.
// Only a config whose quorum can never hold may escalate to QuorumError.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "fed/federation.hpp"
#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

ExperimentConfig stormy_config() {
  ExperimentConfig config;
  config.rounds = 6;
  config.controller.steps_per_round = 20;
  config.seed = 11;
  // Quorum = fleet size with a drop-heavy link: most attempts lose at
  // least one of the two clients and abort; retries eventually land a
  // round where both survive.
  config.quorum = 2;
  config.faults.transport.drop_probability = 0.35;
  config.faults.transport.seed = 5;
  return config;
}

std::vector<std::vector<sim::AppProfile>> two_device_apps() {
  return resolve(table2_scenarios()[1]);
}

TEST(RoundAbort, UnderQuorumRoundsRetryUntilTheQuorumHolds) {
  const FederatedRunResult result = run_federated(
      stormy_config(), two_device_apps(), {}, /*eval_each_round=*/false);
  // Every target round eventually committed; the retries left their count.
  EXPECT_EQ(result.robustness.screened_per_round.size(), 6u);
  EXPECT_GT(result.robustness.aborted_rounds, 0u);
}

TEST(RoundAbort, AbortsAndResultAreDeterministic) {
  const FederatedRunResult a = run_federated(
      stormy_config(), two_device_apps(), {}, /*eval_each_round=*/false);
  const FederatedRunResult b = run_federated(
      stormy_config(), two_device_apps(), {}, /*eval_each_round=*/false);
  EXPECT_EQ(a.robustness.aborted_rounds, b.robustness.aborted_rounds);
  EXPECT_EQ(a.global_params, b.global_params);
}

TEST(RoundAbort, AHopelessQuorumStillFailsLoudly) {
  ExperimentConfig config = stormy_config();
  // Every transfer drops: no retry can ever assemble a quorum, and the
  // consecutive-abort cap must surface the error instead of spinning.
  config.faults.transport.drop_probability = 1.0;
  EXPECT_THROW(run_federated(config, two_device_apps(), {},
                             /*eval_each_round=*/false),
               fed::QuorumError);
}

}  // namespace
}  // namespace fedpower::core
