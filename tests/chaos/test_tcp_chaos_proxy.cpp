// Seeded TCP fault-injection proxy (DESIGN.md §14): the fixed-draw
// schedule contract (same-seed replay, random access, probability-
// independent stream offsets, agreement with the raw rng stream), fate
// bookkeeping, and a live proxy forwarding clean / stalled / refused
// connections in front of a real EpollFrontEnd.
#include "chaos/tcp_chaos_proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fed/codec.hpp"
#include "serve/client.hpp"
#include "serve/epoll_server.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace fedpower::chaos {
namespace {

TcpChaosConfig mixed_config(std::uint64_t seed) {
  TcpChaosConfig config;
  config.seed = seed;
  config.refuse_probability = 0.25;
  config.reset_probability = 0.25;
  config.truncate_probability = 0.25;
  config.stall_probability = 0.15;
  config.reset_min_bytes = 7;
  config.reset_window_bytes = 100;
  config.stall_min_s = 0.001;
  config.stall_max_s = 0.004;
  return config;
}

TEST(TcpChaosSchedule, SameSeedReplaysTheSameSchedule) {
  TcpChaosSchedule a(mixed_config(31));
  TcpChaosSchedule b(mixed_config(31));
  for (int i = 0; i < 64; ++i) {
    const ConnectionPlan pa = a.next();
    const ConnectionPlan pb = b.next();
    EXPECT_EQ(pa.fault, pb.fault);
    EXPECT_EQ(pa.fault_after_bytes, pb.fault_after_bytes);
    EXPECT_DOUBLE_EQ(pa.stall_s, pb.stall_s);
  }
  EXPECT_EQ(a.drawn(), 64u);
}

TEST(TcpChaosSchedule, RandomAccessAgreesWithSequentialDraws) {
  TcpChaosSchedule sequential(mixed_config(7));
  const TcpChaosSchedule oracle(mixed_config(7));
  for (std::size_t k = 0; k < 32; ++k) {
    const ConnectionPlan step = sequential.next();
    const ConnectionPlan jump = oracle.at(k);
    EXPECT_EQ(step.fault, jump.fault) << "connection " << k;
    EXPECT_EQ(step.fault_after_bytes, jump.fault_after_bytes);
    EXPECT_DOUBLE_EQ(step.stall_s, jump.stall_s);
  }
  // Random access never advances the sequential cursor.
  EXPECT_EQ(oracle.drawn(), 0u);
}

// The fixed-draw contract: every connection consumes exactly
// kDrawsPerConnection stream draws whether its fault fires or not, so the
// offset/stall parameters of connection k are a function of (seed, k)
// alone — changing the fate probabilities must not shift them.
TEST(TcpChaosSchedule, StreamOffsetsAreProbabilityIndependent) {
  TcpChaosConfig quiet = mixed_config(99);
  quiet.refuse_probability = 0.0;
  quiet.reset_probability = 0.0;
  quiet.truncate_probability = 0.0;
  quiet.stall_probability = 0.0;
  const TcpChaosSchedule noisy(mixed_config(99));
  const TcpChaosSchedule calm(quiet);
  for (std::size_t k = 0; k < 48; ++k) {
    const ConnectionPlan a = noisy.at(k);
    const ConnectionPlan b = calm.at(k);
    EXPECT_EQ(a.fault_after_bytes, b.fault_after_bytes) << "connection " << k;
    EXPECT_DOUBLE_EQ(a.stall_s, b.stall_s);
    EXPECT_EQ(b.fault, SocketFault::kClean);  // zero mass => always clean
  }
}

// The schedule is pinned to the raw xoshiro stream: connection k's plan is
// computed from uniforms 3k, 3k+1, 3k+2 and nothing else.
TEST(TcpChaosSchedule, DrawsMatchTheRawRngStream) {
  const TcpChaosConfig config = mixed_config(1234);
  const TcpChaosSchedule schedule(config);
  util::Rng rng(config.seed);
  for (std::size_t k = 0; k < 24; ++k) {
    const double fate = rng.uniform();
    const double offset = rng.uniform();
    const double stall = rng.uniform();
    SocketFault expected = SocketFault::kClean;
    double edge = config.refuse_probability;
    if (fate < edge) {
      expected = SocketFault::kRefuse;
    } else if (fate < (edge += config.reset_probability)) {
      expected = SocketFault::kReset;
    } else if (fate < (edge += config.truncate_probability)) {
      expected = SocketFault::kTruncate;
    } else if (fate < (edge += config.stall_probability)) {
      expected = SocketFault::kStall;
    }
    const ConnectionPlan plan = schedule.at(k);
    EXPECT_EQ(plan.fault, expected) << "connection " << k;
    EXPECT_EQ(plan.fault_after_bytes,
              config.reset_min_bytes +
                  static_cast<std::uint64_t>(
                      offset * static_cast<double>(config.reset_window_bytes)));
    EXPECT_DOUBLE_EQ(plan.stall_s,
                     config.stall_min_s +
                         stall * (config.stall_max_s - config.stall_min_s));
  }
}

TEST(TcpChaosScheduleDeathTest, RejectsImpossibleProbabilityMass) {
  TcpChaosConfig config;
  config.refuse_probability = 0.6;
  config.reset_probability = 0.6;
  EXPECT_DEATH(TcpChaosSchedule{config}, "precondition");
}

// --- live proxy in front of a real front end ------------------------------

serve::ServeClientConfig client_config(std::uint16_t port) {
  serve::ServeClientConfig config;
  config.port = port;
  config.client_id = 0;
  config.max_attempts = 32;
  config.backoff_initial_s = 0.001;
  config.backoff_max_s = 0.01;
  return config;
}

TEST(TcpChaosProxy, CleanScheduleForwardsTrafficTransparently) {
  serve::ShardedServer server(1);
  server.initialize({0.0, 0.0});
  serve::EpollFrontEnd front(&server);
  front.begin_round({0});
  TcpChaosConfig config;  // all probabilities zero: a pure relay
  config.seed = 5;
  TcpChaosProxy proxy(front.port(), config);

  serve::ServeClient client(client_config(proxy.port()));
  const serve::FetchResult fetched = client.fetch();
  EXPECT_EQ(fetched.version, 0u);
  const fed::ModelCodec& codec = fed::Float32Codec::instance();
  EXPECT_TRUE(client.upload(0, 1, codec.encode(std::vector<double>{1.5, -2.5})));
  front.commit_round(1);
  const serve::FetchResult after = client.fetch();
  EXPECT_EQ(after.version, 1u);
  const std::vector<double> model = codec.decode(after.model);
  ASSERT_EQ(model.size(), 2u);
  EXPECT_DOUBLE_EQ(model[0], 1.5);
  EXPECT_DOUBLE_EQ(model[1], -2.5);
  EXPECT_EQ(client.reconnects(), 0u);

  proxy.stop();
  EXPECT_GE(proxy.connections(), 1u);
  EXPECT_EQ(proxy.refusals(), 0u);
  EXPECT_EQ(proxy.resets(), 0u);
  EXPECT_EQ(proxy.truncations(), 0u);
  EXPECT_EQ(proxy.stalls(), 0u);
  for (const SocketFault fate : proxy.scheduled_fates())
    EXPECT_EQ(fate, SocketFault::kClean);
}

TEST(TcpChaosProxy, StallsDelayButStillDeliver) {
  serve::ShardedServer server(1);
  server.initialize({0.0});
  serve::EpollFrontEnd front(&server);
  front.begin_round({0});
  TcpChaosConfig config;
  config.seed = 11;
  config.stall_probability = 1.0;  // every connection stalls...
  config.stall_min_s = 0.001;      // ...briefly
  config.stall_max_s = 0.003;
  config.reset_min_bytes = 1;  // arm within the resume handshake so the
  config.reset_window_bytes = 4;  // stall provably fires before delivery
  TcpChaosProxy proxy(front.port(), config);

  serve::ServeClient client(client_config(proxy.port()));
  EXPECT_TRUE(
      client.upload(0, 1, fed::Float32Codec::instance().encode(std::vector<double>{4.0})));
  front.commit_round(1);
  EXPECT_DOUBLE_EQ(server.global_model()[0], 4.0);
  proxy.stop();
  EXPECT_GE(proxy.stalls(), 1u);
  EXPECT_EQ(proxy.resets(), 0u);
}

TEST(TcpChaosProxy, RefusalClosesWithoutTouchingTheUpstream) {
  serve::ShardedServer server(1);
  server.initialize({0.0});
  serve::EpollFrontEnd front(&server);
  TcpChaosConfig config;
  config.seed = 3;
  config.refuse_probability = 1.0;
  TcpChaosProxy proxy(front.port(), config);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(proxy.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0);
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // immediate orderly close
  ::close(fd);

  proxy.stop();
  EXPECT_EQ(proxy.refusals(), 1u);
  EXPECT_EQ(proxy.connections(), 1u);
  EXPECT_EQ(front.connections_accepted(), 0u);  // upstream never dialed
  ASSERT_EQ(proxy.scheduled_fates().size(), 1u);
  EXPECT_EQ(proxy.scheduled_fates()[0], SocketFault::kRefuse);
}

}  // namespace
}  // namespace fedpower::chaos
