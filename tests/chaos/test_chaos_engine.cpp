// The chaos engine's schedule contract (DESIGN.md §13): one seeded stream,
// a fixed number of draws per round, so the same seed replays the same
// fault schedule bit for bit — including across a save/restore boundary —
// and the availability mask the driver applies is exactly the one the
// engine accounts in its stats. Plus the ChurnTransport decorator the
// schedule drives.
#include "chaos/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "chaos/churn_transport.hpp"
#include "ckpt/binary_io.hpp"
#include "ckpt/errors.hpp"
#include "fed/transport.hpp"

namespace fedpower::chaos {
namespace {

ChaosConfig churny_config() {
  ChaosConfig config;
  config.enabled = true;
  config.seed = 2026;
  config.leave_probability = 0.2;
  config.rejoin_probability = 0.5;
  config.shock_probability = 0.3;
  return config;
}

/// Flattens one plan into a comparable record.
struct PlanRecord {
  std::vector<std::size_t> went_offline;
  std::vector<std::size_t> came_online;
  std::vector<char> offline;
  bool has_shock = false;
  std::size_t shock_device = 0;

  explicit PlanRecord(const RoundPlan& plan)
      : went_offline(plan.went_offline),
        came_online(plan.came_online),
        offline(plan.offline),
        has_shock(plan.shock_device.has_value()),
        shock_device(plan.shock_device.value_or(0)) {}

  bool operator==(const PlanRecord&) const = default;
};

std::vector<PlanRecord> schedule(ChaosEngine& engine, std::size_t rounds) {
  std::vector<PlanRecord> plans;
  for (std::size_t r = 0; r < rounds; ++r)
    plans.emplace_back(engine.begin_round());
  return plans;
}

TEST(ChaosEngine, SameSeedReplaysTheExactSchedule) {
  ChaosEngine first(churny_config(), 8);
  ChaosEngine second(churny_config(), 8);
  EXPECT_EQ(schedule(first, 50), schedule(second, 50));
  // And the cumulative accounting matches too.
  EXPECT_EQ(first.stats().departures, second.stats().departures);
  EXPECT_EQ(first.stats().rejoins, second.stats().rejoins);
  EXPECT_EQ(first.stats().shocks, second.stats().shocks);
  EXPECT_EQ(first.stats().max_offline, second.stats().max_offline);
}

TEST(ChaosEngine, DifferentSeedsDivergeAndSomethingActuallyHappens) {
  ChaosConfig other = churny_config();
  other.seed = 7;
  ChaosEngine first(churny_config(), 8);
  ChaosEngine second(other, 8);
  const auto a = schedule(first, 50);
  const auto b = schedule(second, 50);
  EXPECT_NE(a, b);
  // The probabilities above make an eventless 50-round run implausible;
  // an engine that never schedules anything would vacuously pass replay.
  EXPECT_GT(first.stats().departures, 0u);
  EXPECT_GT(first.stats().rejoins, 0u);
  EXPECT_GT(first.stats().shocks, 0u);
}

TEST(ChaosEngine, MaskTransitionsAndStatsStayCoherent) {
  ChaosEngine engine(churny_config(), 6);
  std::vector<char> previous(6, 0);  // everyone starts online
  std::uint64_t departures = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t peak = 0;
  for (int round = 0; round < 80; ++round) {
    const RoundPlan plan = engine.begin_round();
    ASSERT_EQ(plan.offline.size(), 6u);
    // went_offline/came_online are exactly the mask's delta vs last round.
    std::vector<std::size_t> expected_down;
    std::vector<std::size_t> expected_up;
    for (std::size_t c = 0; c < 6; ++c) {
      if (previous[c] == 0 && plan.offline[c] != 0) expected_down.push_back(c);
      if (previous[c] != 0 && plan.offline[c] == 0) expected_up.push_back(c);
    }
    EXPECT_EQ(plan.went_offline, expected_down);
    EXPECT_EQ(plan.came_online, expected_up);
    // The accessor view agrees with the returned mask.
    std::size_t down = 0;
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(engine.offline(c), plan.offline[c] != 0);
      if (plan.offline[c] != 0) ++down;
    }
    EXPECT_EQ(engine.offline_count(), down);
    if (plan.shock_device) {
      EXPECT_LT(*plan.shock_device, 6u);
    }
    departures += expected_down.size();
    rejoins += expected_up.size();
    peak = std::max<std::uint64_t>(peak, down);
    previous = plan.offline;
  }
  EXPECT_EQ(engine.stats().rounds, 80u);
  EXPECT_EQ(engine.stats().departures, departures);
  EXPECT_EQ(engine.stats().rejoins, rejoins);
  EXPECT_EQ(engine.stats().max_offline, peak);
}

TEST(ChaosEngine, ZeroProbabilitiesScheduleNothing) {
  ChaosConfig calm;
  calm.enabled = true;
  calm.leave_probability = 0.0;
  calm.shock_probability = 0.0;
  ChaosEngine engine(calm, 4);
  for (int round = 0; round < 20; ++round) {
    const RoundPlan plan = engine.begin_round();
    EXPECT_TRUE(plan.went_offline.empty());
    EXPECT_FALSE(plan.shock_device.has_value());
  }
  EXPECT_EQ(engine.offline_count(), 0u);
  EXPECT_EQ(engine.stats().departures, 0u);
  EXPECT_EQ(engine.stats().shocks, 0u);
}

TEST(ChaosEngine, SaveRestoreResumesTheExactMidStreamSchedule) {
  // Reference: 60 uninterrupted rounds.
  ChaosEngine reference(churny_config(), 8);
  schedule(reference, 25);
  const auto tail_expected = schedule(reference, 35);

  // Interrupted twin: snapshot at round 25, restore into a fresh engine.
  ChaosEngine first_half(churny_config(), 8);
  schedule(first_half, 25);
  ckpt::Writer snapshot;
  first_half.save_state(snapshot);

  ChaosEngine resumed(churny_config(), 8);
  ckpt::Reader in(snapshot.data());
  resumed.restore_state(in);
  EXPECT_TRUE(in.exhausted());
  // The availability mask survived the boundary...
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_EQ(resumed.offline(c), first_half.offline(c));
  // ...and the remaining schedule is the one the killed run would have
  // produced, transition lists and all (so max_offline keeps accumulating
  // against the right baseline).
  EXPECT_EQ(schedule(resumed, 35), tail_expected);
  EXPECT_EQ(resumed.stats().departures, reference.stats().departures);
  EXPECT_EQ(resumed.stats().max_offline, reference.stats().max_offline);
}

TEST(ChaosEngine, RestoreRejectsAForeignClientCount) {
  ChaosEngine engine(churny_config(), 8);
  engine.begin_round();
  ckpt::Writer snapshot;
  engine.save_state(snapshot);
  ChaosEngine smaller(churny_config(), 4);
  ckpt::Reader in(snapshot.data());
  EXPECT_THROW(smaller.restore_state(in), ckpt::StateMismatchError);
}

// --- ChurnTransport ------------------------------------------------------

TEST(ChurnTransport, OfflineLinkFailsLikeAnyTransportFault) {
  fed::InProcessTransport inner;
  ChurnTransport link(&inner);
  const std::vector<std::uint8_t> payload(16, 0x5A);
  EXPECT_EQ(link.transfer(fed::Direction::kUplink, payload), payload);
  link.set_online(false);
  EXPECT_FALSE(link.online());
  EXPECT_THROW(link.transfer(fed::Direction::kUplink, payload),
               fed::TransportError);
  EXPECT_THROW(link.transfer(fed::Direction::kDownlink, payload),
               fed::TransportError);
  EXPECT_EQ(link.blocked_transfers(), 2u);
  // A blocked transfer never reaches the wrapped link.
  EXPECT_EQ(inner.stats().total_transfers(), 1u);
  link.set_online(true);
  EXPECT_EQ(link.transfer(fed::Direction::kUplink, payload), payload);
  EXPECT_EQ(inner.stats().total_transfers(), 2u);
}

TEST(ChurnTransport, OfflineFailuresAccrueNoLatency) {
  fed::InProcessTransport inner;
  ChurnTransport link(&inner);
  link.transfer(fed::Direction::kUplink, std::vector<std::uint8_t>(64, 1));
  const double online_latency = link.cumulative_latency_s();
  EXPECT_GT(online_latency, 0.0);
  link.set_online(false);
  EXPECT_THROW(
      link.transfer(fed::Direction::kUplink, std::vector<std::uint8_t>(64, 1)),
      fed::TransportError);
  // The refusal is immediate: deadline accounting must not see phantom
  // seconds from a link that never carried the bytes.
  EXPECT_EQ(link.cumulative_latency_s(), online_latency);
}

}  // namespace
}  // namespace fedpower::chaos
