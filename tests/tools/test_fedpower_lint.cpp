// Unit tests for the fedpower-lint rule engine (DESIGN.md §8): crafted
// snippets go through lint_source() and we assert rule ids, line numbers,
// waiver handling, allowlisting and the JSON output shape.
#include "fedpower_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace fedpower::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

bool has_rule_at(const std::vector<Finding>& fs, const std::string& rule,
                 std::size_t line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ---------------------------------------------------------------------------
// L1: nondeterminism sources
// ---------------------------------------------------------------------------

TEST(LintNondet, FlagsEveryForbiddenSource) {
  const std::string src =
      "#include <cstdlib>\n"                                   // 1
      "int a() { return rand(); }\n"                           // 2
      "void b() { srand(1); }\n"                               // 3
      "int c() { std::random_device rd; return rd(); }\n"      // 4
      "long d() { return time(nullptr); }\n"                   // 5
      "auto e() { return std::chrono::steady_clock::now(); }\n"  // 6
      "const char* f() { return std::getenv(\"X\"); }\n";      // 7
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 2));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 3));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 4));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 5));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 6));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 7));
  EXPECT_EQ(fs.size(), 6u);
}

TEST(LintNondet, MemberFunctionsNamedLikeSourcesAreClean) {
  const std::string src =
      "double t(const Sample& s) { return s.time(); }\n"
      "double u(Telemetry* t) { return t->rand(); }\n"
      "int v() { return my.getenv(); }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintNondet, IdentifiersContainingKeywordsAreClean) {
  const std::string src =
      "double io_timeout(double io_time) { return io_time; }\n"
      "int strand_count = 0;\n"
      "double now_seconds = 1.0;\n";
  EXPECT_TRUE(lint_source("src/fed/y.cpp", src).empty());
}

TEST(LintNondet, AllowlistedFilesAreExempt) {
  const std::string src = "int a() { return rand(); }\n";
  EXPECT_FALSE(lint_source("src/core/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/util/rng.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/fed/tcp_transport.cpp", src).empty());
}

TEST(LintNondet, SameLineWaiverSuppresses) {
  const std::string src =
      "int a() { return rand(); }  // lint: nondet-ok(test stub)\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintNondet, CommentOnlyLineWaiverCoversNextLine) {
  const std::string src =
      "// lint: nondet-ok(wall-clock timing, never a seed)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("bench/x.cpp", src).empty());
}

TEST(LintNondet, WaiverRequiresNonEmptyReason) {
  const std::string src = "int a() { return rand(); }  // lint: nondet-ok()\n";
  EXPECT_TRUE(has_rule_at(lint_source("src/core/x.cpp", src), "L1-nondet", 1));
}

TEST(LintNondet, SourcesInsideStringsAndCommentsAreIgnored) {
  const std::string src =
      "const char* s = \"rand() time(nullptr)\";\n"
      "// rand() in a comment\n"
      "/* srand(42) */\n"
      "const char* r = R\"(std::random_device)\";\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// L2: unordered-container iteration in determinism-critical dirs
// ---------------------------------------------------------------------------

TEST(LintUnordered, FlagsRangeForOverMemberAndParameter) {
  const std::string src =
      "#include <unordered_map>\n"                                        // 1
      "std::unordered_map<int, double> weights_;\n"                       // 2
      "double f() {\n"                                                    // 3
      "  double s = 0;\n"                                                 // 4
      "  for (const auto& kv : weights_) s += kv.second;\n"               // 5
      "  return s;\n"                                                     // 6
      "}\n"                                                               // 7
      "double g(const std::unordered_map<int, double>& m) {\n"            // 8
      "  double s = 0;\n"                                                 // 9
      "  for (const auto& kv : m) s += kv.second;\n"                      // 10
      "  return s;\n"                                                     // 11
      "}\n";
  const auto fs = lint_source("src/fed/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L2-unordered-iter", 5));
  EXPECT_TRUE(has_rule_at(fs, "L2-unordered-iter", 10));
  EXPECT_EQ(fs.size(), 2u);
}

TEST(LintUnordered, FlagsExplicitBeginIteration) {
  const std::string src =
      "std::unordered_set<int> seen_;\n"
      "int f() { return *seen_.begin(); }\n";
  EXPECT_TRUE(has_rule_at(lint_source("src/runtime/x.cpp", src),
                          "L2-unordered-iter", 2));
}

TEST(LintUnordered, LookupWithoutIterationIsClean) {
  const std::string src =
      "std::unordered_map<int, double> cache_;\n"
      "double f(int k) { return cache_.at(k); }\n"
      "bool g(int k) { return cache_.count(k) != 0; }\n";
  EXPECT_TRUE(lint_source("src/nn/x.cpp", src).empty());
}

TEST(LintUnordered, OutsideDeterminismDirsIsClean) {
  const std::string src =
      "std::unordered_map<int, double> m_;\n"
      "double f() { double s = 0; for (auto& kv : m_) s += kv.second; "
      "return s; }\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/x.cpp", src).empty());
}

TEST(LintUnordered, OrderedOkWaiverSuppresses) {
  const std::string src =
      "std::unordered_map<int, double> m_;\n"
      "double f() {\n"
      "  double s = 0;\n"
      "  // lint: ordered-ok(order-insensitive count)\n"
      "  for (auto& kv : m_) s += 1.0;\n"
      "  return s;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/fed/x.cpp", src).empty());
}

TEST(LintUnordered, OrderedContainersAreClean) {
  const std::string src =
      "std::map<int, double> m_;\n"
      "double f() { double s = 0; for (auto& kv : m_) s += kv.second; "
      "return s; }\n";
  EXPECT_TRUE(lint_source("src/fed/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// L3: FP reductions in src/fed
// ---------------------------------------------------------------------------

TEST(LintFpReduce, FlagsAccumulateAndReduceInFedOnly) {
  const std::string src =
      "#include <numeric>\n"                                         // 1
      "double f(const std::vector<double>& v) {\n"                   // 2
      "  return std::accumulate(v.begin(), v.end(), 0.0);\n"         // 3
      "}\n"                                                          // 4
      "double g(const std::vector<double>& v) {\n"                   // 5
      "  return std::reduce(v.begin(), v.end());\n"                  // 6
      "}\n";
  const auto fed = lint_source("src/fed/agg.cpp", src);
  EXPECT_TRUE(has_rule_at(fed, "L3-fp-reduce", 3));
  EXPECT_TRUE(has_rule_at(fed, "L3-fp-reduce", 6));
  EXPECT_EQ(fed.size(), 2u);
  EXPECT_TRUE(lint_source("src/nn/agg.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/fed/agg.cpp", src).empty());
}

TEST(LintFpReduce, FpreduceOkWaiverSuppresses) {
  const std::string src =
      "double f(const std::vector<double>& v) {\n"
      "  // lint: fpreduce-ok(integer counts, order-exact)\n"
      "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/fed/agg.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// L4: header hygiene
// ---------------------------------------------------------------------------

TEST(LintHeader, MissingGuardFlaggedAtFirstCodeLine) {
  const std::string src =
      "// a comment is fine\n"
      "#include <vector>\n"
      "int x;\n";
  const auto fs = lint_source("src/nn/x.hpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L4-header-guard", 2));
}

TEST(LintHeader, PragmaOnceAndIfndefGuardsAccepted) {
  EXPECT_TRUE(
      lint_source("src/nn/a.hpp", "#pragma once\nint x;\n").empty());
  EXPECT_TRUE(lint_source("src/nn/b.hpp",
                          "#ifndef B_HPP\n#define B_HPP\nint x;\n#endif\n")
                  .empty());
}

TEST(LintHeader, UsingNamespaceInHeaderFlaggedNotInCpp) {
  const std::string src = "#pragma once\nusing namespace std;\n";
  EXPECT_TRUE(
      has_rule_at(lint_source("src/nn/x.hpp", src), "L4-using-namespace", 2));
  EXPECT_TRUE(lint_source("src/nn/x.cpp", "using namespace std;\n").empty());
}

TEST(LintHeader, CppFilesNeedNoGuard) {
  EXPECT_TRUE(lint_source("src/nn/x.cpp", "#include <vector>\n").empty());
}

// ---------------------------------------------------------------------------
// L5: threading rules in src/
// ---------------------------------------------------------------------------

TEST(LintThreading, FlagsDetachAndRawMutexLock) {
  const std::string src =
      "#include <thread>\n"                            // 1
      "void f() { std::thread([] {}).detach(); }\n"    // 2
      "std::mutex mutex_;\n"                           // 3
      "void g() { mutex_.lock(); mutex_.unlock(); }\n" // 4
      "void h(std::mutex* mtx) { mtx->lock(); }\n";    // 5
  const auto fs = lint_source("src/runtime/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L5-thread-detach", 2));
  EXPECT_TRUE(has_rule_at(fs, "L5-raw-mutex-lock", 4));
  EXPECT_TRUE(has_rule_at(fs, "L5-raw-mutex-lock", 5));
  EXPECT_EQ(fs.size(), 4u);  // lock + unlock both flagged on line 4
}

TEST(LintThreading, GuardTypesAndUniqueLockMethodsAreClean) {
  const std::string src =
      "void f() {\n"
      "  const std::lock_guard<std::mutex> lock(mutex_);\n"
      "}\n"
      "void g() {\n"
      "  std::unique_lock<std::mutex> lock(mutex_);\n"
      "  lock.unlock();\n"  // unlocking the *guard* is fine
      "  lock.lock();\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/runtime/x.cpp", src).empty());
}

TEST(LintThreading, OutsideSrcIsClean) {
  const std::string src = "void f() { std::thread([] {}).detach(); }\n";
  EXPECT_TRUE(lint_source("tests/runtime/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// L6: ad-hoc file writes in src/
// ---------------------------------------------------------------------------

TEST(LintFsWrite, FlagsOfstreamAndFopenFamily) {
  const std::string src =
      "#include <fstream>\n"                                  // 1
      "void f(const char* p) { std::ofstream out(p); }\n"     // 2
      "void g(const char* p) { std::FILE* x = fopen(p, \"wb\"); }\n"  // 3
      "void h(const char* p) { std::freopen(p, \"w\", stdout); }\n";  // 4
  const auto fs = lint_source("src/sim/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L6-fs-write", 2));
  EXPECT_TRUE(has_rule_at(fs, "L6-fs-write", 3));
  EXPECT_TRUE(has_rule_at(fs, "L6-fs-write", 4));
  EXPECT_EQ(fs.size(), 3u);
}

TEST(LintFsWrite, AllowlistedWritersAreExempt) {
  const std::string src = "void f(const char* p) { std::ofstream out(p); }\n";
  EXPECT_FALSE(lint_source("src/core/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/ckpt/snapshot.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/sim/trace_io.cpp", src).empty());
  // The header allowlist entry still obeys the L4 guard rule — only L6 is
  // waived for it.
  const std::string hdr = "#pragma once\nstd::ofstream file_;\n";
  EXPECT_TRUE(lint_source("src/util/csv.hpp", hdr).empty());
}

TEST(LintFsWrite, OutsideSrcIsClean) {
  const std::string src = "void f(const char* p) { std::ofstream out(p); }\n";
  EXPECT_TRUE(lint_source("tests/sim/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/x.cpp", src).empty());
}

TEST(LintFsWrite, MemberFunctionsAndReadsAreClean) {
  const std::string src =
      "void f(Codec* c, const char* p) { c->fopen(p); }\n"
      "void g(const char* p) { std::ifstream in(p); }\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src).empty());
}

TEST(LintFsWrite, FsOkWaiverSuppresses) {
  const std::string src =
      "// lint: fs-ok(debug dump, never durable state)\n"
      "void f(const char* p) { std::ofstream out(p); }\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// L7: raw event-loop syscalls in src/
// ---------------------------------------------------------------------------

TEST(LintSyscall, FlagsEpollFamilyEventfdAndAccept4) {
  const std::string src =
      "#include <sys/epoll.h>\n"                                  // 1
      "int a() { return epoll_create1(0); }\n"                    // 2
      "int b() { return epoll_create(8); }\n"                     // 3
      "void c(int e, int fd, epoll_event* ev) {\n"                // 4
      "  epoll_ctl(e, 1, fd, ev);\n"                              // 5
      "  epoll_wait(e, ev, 1, -1);\n"                             // 6
      "  epoll_pwait(e, ev, 1, -1, nullptr);\n"                   // 7
      "}\n"                                                       // 8
      "int d() { return eventfd(0, 0); }\n"                       // 9
      "int e(int s) { return accept4(s, nullptr, nullptr, 0); }\n";  // 10
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 2));
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 3));
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 5));
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 6));
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 7));
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 9));
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 10));
  EXPECT_EQ(fs.size(), 7u);
}

TEST(LintSyscall, EventLoopTranslationUnitsAreExempt) {
  const std::string src = "int a() { return epoll_create1(0); }\n";
  EXPECT_FALSE(lint_source("src/serve/server.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/serve/epoll_server.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/fed/tcp_transport.cpp", src).empty());
}

TEST(LintSyscall, OutsideSrcAndMembersAndMentionsAreClean) {
  const std::string src =
      "int a() { return epoll_create1(0); }\n"
      "void b(Loop* l) { l->epoll_wait(); }\n"
      "const char* s = \"epoll_ctl(fd)\";\n";
  EXPECT_TRUE(lint_source("tests/serve/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/x.cpp", src).empty());
  const auto fs = lint_source("src/serve/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L7-raw-syscall", 1));
  EXPECT_EQ(fs.size(), 1u);  // member call and string literal stay clean
}

TEST(LintSyscall, SyscallOkWaiverSuppresses) {
  const std::string src =
      "// lint: syscall-ok(platform probe, no event loop)\n"
      "int a() { return eventfd(0, 0); }\n";
  EXPECT_TRUE(lint_source("src/runtime/x.cpp", src).empty());
}

TEST(LintSyscall, ServeDirIsDeterminismAndFpReduceCovered) {
  const std::string unordered =
      "std::unordered_map<int, double> m_;\n"
      "double f() { double s = 0; for (auto& kv : m_) s += kv.second; "
      "return s; }\n";
  EXPECT_TRUE(has_rule_at(lint_source("src/serve/x.cpp", unordered),
                          "L2-unordered-iter", 2));
  const std::string reduce =
      "double f(const std::vector<double>& v) {\n"
      "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
      "}\n";
  EXPECT_TRUE(has_rule_at(lint_source("src/serve/x.cpp", reduce),
                          "L3-fp-reduce", 2));
}

// ---------------------------------------------------------------------------
// Output formats & ordering
// ---------------------------------------------------------------------------

TEST(LintOutput, TextFormatIsFileLineRuleMessage) {
  const auto fs =
      lint_source("src/core/x.cpp", "int a() { return rand(); }\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string text = to_text(fs);
  EXPECT_EQ(text.rfind("src/core/x.cpp:1: L1-nondet ", 0), 0u) << text;
}

TEST(LintOutput, JsonShapeAndEscaping) {
  std::vector<Finding> fs = {
      {"src/a.cpp", 3, "L1-nondet", "uses \"rand\"\\path"}};
  const std::string json = to_json(fs);
  EXPECT_EQ(json.rfind("[\n", 0), 0u);
  EXPECT_NE(json.find("\"file\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"L1-nondet\""), std::string::npos);
  EXPECT_NE(json.find("uses \\\"rand\\\"\\\\path"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  EXPECT_EQ(to_json({}), "[]\n");
}

TEST(LintOutput, FindingsSortedByLineThenRule) {
  const std::string src =
      "std::unordered_map<int, double> m_;\n"
      "double f() { double s = 0; for (auto& kv : m_) s += kv.second; "
      "return s; }\n"
      "int a() { return rand(); }\n";
  const auto fs = lint_source("src/fed/x.cpp", src);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "L2-unordered-iter");
  EXPECT_EQ(fs[1].rule, "L1-nondet");
  EXPECT_LT(fs[0].line, fs[1].line);
}

// ---------------------------------------------------------------------------
// Tokenizer hardening: raw strings and digit separators
// ---------------------------------------------------------------------------

TEST(LintScrub, RawStringContentsAreNotMatched) {
  const std::string src =
      "const char* a = R\"(rand() time(nullptr))\";\n"
      "int live() { return rand(); }\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_FALSE(has_rule_at(fs, "L1-nondet", 1));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 2));
}

TEST(LintScrub, EncodingPrefixedRawStringsDoNotDesync) {
  // The '"' inside LR"(...)" must not open an ordinary string — that would
  // swallow the rest of the file and hide the rand() below.
  const std::string src =
      "const wchar_t* w = LR\"(a \" b)\";\n"
      "const char8_t* u = u8R\"(c \" d)\";\n"
      "int live() { return rand(); }\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 3));
  EXPECT_EQ(fs.size(), 1u);
}

TEST(LintScrub, CustomDelimiterRawStringEndsAtItsDelimiter) {
  const std::string src =
      "const char* s = R\"xx(plain ) \" close)xx\";\n"
      "int live() { return rand(); }\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 2));
  EXPECT_EQ(fs.size(), 1u);
}

TEST(LintScrub, IdentifierEndingInRIsNotARawStringPrefix) {
  // fooR"..." is an identifier next to an ordinary string; the string must
  // still be scrubbed as a string (ending at its closing quote).
  const std::string src =
      "auto v = fooR\"bar\";\n"
      "int live() { return rand(); }\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 2));
}

TEST(LintScrub, DigitSeparatorsAreNotCharLiterals) {
  // 1'000'000 and hex 0xFF'FF must not open a char literal — that would
  // swallow code until the next apostrophe and hide real findings.
  const std::string src =
      "constexpr long big = 1'000'000;\n"
      "constexpr int mask = 0xFF'FF;\n"
      "constexpr int bits = 0b1010'1010;\n"
      "int live() { return rand(); }\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 4));
  EXPECT_EQ(fs.size(), 1u);
}

TEST(LintScrub, CharLiteralsAfterIdentifiersStayCharLiterals) {
  // `return'a'` — the run before the quote is not a numeric literal, so
  // this is a char literal and its contents stay scrubbed.
  const std::string src =
      "char f() { return'r'; }\n"
      "int live() { return rand(); }\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  EXPECT_FALSE(has_rule_at(fs, "L1-nondet", 1));
  EXPECT_TRUE(has_rule_at(fs, "L1-nondet", 2));
}

TEST(LintOutput, MultipleRulesReportTogether) {
  const std::string src =
      "using namespace std;\n"
      "int a() { return rand(); }\n";
  const auto fs = lint_source("src/nn/bad.hpp", src);
  const auto rules = rules_of(fs);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "L4-header-guard"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "L4-using-namespace"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "L1-nondet"), rules.end());
}

}  // namespace
}  // namespace fedpower::lint
