// Unit tests for the declaration-aware contract analyzer (DESIGN.md §8):
// the pass-1 model builder (build_file_model) on nested classes, NSDMIs,
// templated members and out-of-line definitions, and the pass-2 rules
// L8-ckpt-coverage, L9-ckpt-symmetry and L10-shard-ownership plus the
// W1-stale-waiver tree pass, driven through lint_source()/lint_tree().
#include "fedpower_lint/analyze.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fedpower_lint/lint.hpp"
#include "fedpower_lint/scrub.hpp"

namespace fedpower::lint {
namespace {

FileModel model_of(const std::string& path, const std::string& src) {
  return build_file_model(path, scrub(src));
}

const ClassModel* find_class(const FileModel& model,
                             const std::string& qualified) {
  for (const ClassModel& cls : model.classes)
    if (cls.qualified == qualified) return &cls;
  return nullptr;
}

const MemberModel* find_member(const ClassModel& cls,
                               const std::string& name) {
  for (const MemberModel& member : cls.members)
    if (member.name == name) return &member;
  return nullptr;
}

const MethodModel* find_method(const ClassModel& cls,
                               const std::string& name) {
  for (const MethodModel& method : cls.methods)
    if (method.name == name) return &method;
  return nullptr;
}

bool has_rule_at(const std::vector<Finding>& fs, const std::string& rule,
                 std::size_t line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

std::size_t count_rule(const std::vector<Finding>& fs,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Pass 1: model builder
// ---------------------------------------------------------------------------

TEST(AnalyzeModel, TemplatedMembersKeepNameAndType) {
  const auto m = model_of("src/core/box.hpp",
                          "#pragma once\n"
                          "struct Box {\n"
                          "  std::vector<std::unique_ptr<int>> items_;\n"
                          "  std::array<double, 4> norms_{};\n"
                          "  std::map<std::string, int> index_;\n"
                          "  std::atomic<bool> stopped_{false};\n"
                          "};\n");
  const ClassModel* box = find_class(m, "Box");
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->members.size(), 4u);
  ASSERT_NE(find_member(*box, "items_"), nullptr);
  ASSERT_NE(find_member(*box, "norms_"), nullptr);
  ASSERT_NE(find_member(*box, "index_"), nullptr);
  const MemberModel* stopped = find_member(*box, "stopped_");
  ASSERT_NE(stopped, nullptr);
  EXPECT_NE(stopped->type.find("atomic"), std::string::npos);
  EXPECT_EQ(stopped->line, 5u);  // 0-based
}

TEST(AnalyzeModel, NestedClassesGetQualifiedNamesAndOwnMembers) {
  const auto m = model_of("src/core/outer.hpp",
                          "#pragma once\n"
                          "class Outer {\n"
                          " public:\n"
                          "  struct Inner {\n"
                          "    int depth = 0;\n"
                          "    void poke() { ++depth; }\n"
                          "  };\n"
                          "  Inner inner_;\n"
                          "  int count_ = 0;\n"
                          "};\n");
  const ClassModel* inner = find_class(m, "Outer::Inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->members.size(), 1u);
  EXPECT_NE(find_member(*inner, "depth"), nullptr);
  const MethodModel* poke = find_method(*inner, "poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_TRUE(poke->has_body);

  const ClassModel* outer = find_class(m, "Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->members.size(), 2u);
  EXPECT_NE(find_member(*outer, "inner_"), nullptr);
  EXPECT_NE(find_member(*outer, "count_"), nullptr);
}

TEST(AnalyzeModel, CtorInitListAndInClassBodies) {
  const auto m = model_of("src/core/gizmo.hpp",
                          "#pragma once\n"
                          "class Gizmo {\n"
                          " public:\n"
                          "  explicit Gizmo(int n) : total_(n), tags_{1, 2} "
                          "{ ping(); }\n"
                          "  void ping();\n"
                          " private:\n"
                          "  int total_;\n"
                          "  std::vector<int> tags_;\n"
                          "};\n");
  const ClassModel* gizmo = find_class(m, "Gizmo");
  ASSERT_NE(gizmo, nullptr);
  const MethodModel* ctor = find_method(*gizmo, "Gizmo");
  ASSERT_NE(ctor, nullptr);
  EXPECT_TRUE(ctor->is_ctor);
  EXPECT_TRUE(ctor->has_body);
  const MethodModel* ping = find_method(*gizmo, "ping");
  ASSERT_NE(ping, nullptr);
  EXPECT_FALSE(ping->has_body);
  EXPECT_EQ(gizmo->members.size(), 2u);
}

TEST(AnalyzeModel, TemplateClassAndTemplateMethod) {
  const auto m = model_of("src/core/slot.hpp",
                          "#pragma once\n"
                          "template <typename T>\n"
                          "class Slot {\n"
                          "  T value_{};\n"
                          "  template <typename U>\n"
                          "  void set(U u) { value_ = u; }\n"
                          "};\n");
  const ClassModel* slot = find_class(m, "Slot");
  ASSERT_NE(slot, nullptr);
  EXPECT_TRUE(slot->templated);
  EXPECT_NE(find_member(*slot, "value_"), nullptr);
  const MethodModel* set = find_method(*slot, "set");
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->has_body);
}

TEST(AnalyzeModel, OutOfLineDefinitionsRecordClassAndParams) {
  const auto m = model_of(
      "src/core/gadget.cpp",
      "#include \"gadget.hpp\"\n"
      "namespace demo {\n"
      "void Gadget::save_state(ckpt::Writer& out) const { out.u64(n_); }\n"
      "Gadget::~Gadget() { release(); }\n"
      "}  // namespace demo\n");
  ASSERT_EQ(m.out_of_line.size(), 2u);
  EXPECT_EQ(m.out_of_line[0].class_name, "demo::Gadget");
  EXPECT_EQ(m.out_of_line[0].method.name, "save_state");
  EXPECT_TRUE(m.out_of_line[0].method.has_body);
  ASSERT_EQ(m.out_of_line[0].method.param_types.size(), 1u);
  EXPECT_NE(m.out_of_line[0].method.param_types[0].find("Writer"),
            std::string::npos);
  EXPECT_EQ(m.out_of_line[0].method.param_names[0], "out");
  EXPECT_TRUE(m.out_of_line[1].method.is_dtor);
}

TEST(AnalyzeModel, StaticMembersAreMarked) {
  const auto m = model_of("src/core/k.hpp",
                          "#pragma once\n"
                          "struct K {\n"
                          "  static constexpr int kMax = 4;\n"
                          "  int live_ = 0;\n"
                          "};\n");
  const ClassModel* k = find_class(m, "K");
  ASSERT_NE(k, nullptr);
  const MemberModel* max = find_member(*k, "kMax");
  ASSERT_NE(max, nullptr);
  EXPECT_TRUE(max->is_static);
  const MemberModel* live = find_member(*k, "live_");
  ASSERT_NE(live, nullptr);
  EXPECT_FALSE(live->is_static);
}

// ---------------------------------------------------------------------------
// L8: checkpoint coverage
// ---------------------------------------------------------------------------

TEST(AnalyzeCkptCoverage, CoveredClassIsClean) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const { out.u64(n_); }\n"
      "  void restore_state(ckpt::Reader& in) { n_ = in.u64(); }\n"
      " private:\n"
      "  std::uint64_t n_ = 0;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/rl/a.cpp", src), "L8-ckpt-coverage"),
            0u);
}

TEST(AnalyzeCkptCoverage, FlagsMemberMissingFromBothBodies) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const { out.u64(n_); }\n"
      "  void restore_state(ckpt::Reader& in) { n_ = in.u64(); }\n"
      " private:\n"
      "  std::uint64_t n_ = 0;\n"
      "  double x_ = 0.0;\n"
      "};\n";
  const auto fs = lint_source("src/rl/a.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L8-ckpt-coverage", 7));
}

TEST(AnalyzeCkptCoverage, FlagsMemberMissingFromRestoreOnly) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const {\n"
      "    out.u64(n_);\n"
      "    out.f64(x_);\n"
      "  }\n"
      "  void restore_state(ckpt::Reader& in) { n_ = in.u64(); }\n"
      " private:\n"
      "  std::uint64_t n_ = 0;\n"
      "  double x_ = 0.0;\n"
      "};\n";
  const auto fs = lint_source("src/rl/a.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L8-ckpt-coverage", 10));
  // The restore side is also asymmetric; only coverage is asserted here.
}

TEST(AnalyzeCkptCoverage, CkptSkipWaiverSuppresses) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const { out.u64(n_); }\n"
      "  void restore_state(ckpt::Reader& in) { n_ = in.u64(); }\n"
      " private:\n"
      "  std::uint64_t n_ = 0;\n"
      "  double x_ = 0.0;  // lint: ckpt-skip(scratch, rebuilt per round)\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/rl/a.cpp", src), "L8-ckpt-coverage"),
            0u);
}

TEST(AnalyzeCkptCoverage, MergesOutOfLineBodies) {
  const std::string src =
      "class B {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const;\n"
      "  void restore_state(ckpt::Reader& in);\n"
      " private:\n"
      "  std::uint32_t v_ = 0;\n"
      "  double lost_ = 0.0;\n"
      "};\n"
      "void B::save_state(ckpt::Writer& out) const { out.u32(v_); }\n"
      "void B::restore_state(ckpt::Reader& in) { v_ = in.u32(); }\n";
  const auto fs = lint_source("src/rl/b.cpp", src);
  EXPECT_FALSE(has_rule_at(fs, "L8-ckpt-coverage", 6));
  EXPECT_TRUE(has_rule_at(fs, "L8-ckpt-coverage", 7));
}

// Regression: a same-named class in a namespace-free bench/test file must
// not donate its save/restore bodies to the namespaced src class (that used
// to mask genuine coverage gaps in multi-directory scans).
TEST(AnalyzeCkptCoverage, SameNameInOtherNamespaceDoesNotMask) {
  const Scrubbed decl_scrub = scrub(
      "namespace fedpower::fed {\n"
      "class Wrap {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const;\n"
      "  void restore_state(ckpt::Reader& in);\n"
      " private:\n"
      "  Client* inner_;\n"
      "  std::uint64_t n_ = 0;\n"
      "};\n"
      "void Wrap::save_state(ckpt::Writer& out) const { out.u64(n_); }\n"
      "void Wrap::restore_state(ckpt::Reader& in) { n_ = in.u64(); }\n"
      "}  // namespace fedpower::fed\n");
  const Scrubbed bench_scrub = scrub(
      "class Wrap {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const { out.raw(inner_, 8); }\n"
      "  void restore_state(ckpt::Reader& in) { in.raw(inner_, 8); }\n"
      " private:\n"
      "  char inner_[8];\n"
      "};\n");
  std::vector<FileModel> models;
  models.push_back(build_file_model("src/fed/wrap.hpp", decl_scrub));
  models.push_back(build_file_model("bench/bench_wrap.cpp", bench_scrub));
  WaiverSet decl_waivers(decl_scrub);
  WaiverSet bench_waivers(bench_scrub);
  std::vector<WaiverSet*> waivers{&decl_waivers, &bench_waivers};
  const auto fs = analyze(models, waivers, Options{});
  EXPECT_TRUE(has_rule_at(fs, "L8-ckpt-coverage", 7));  // inner_ uncovered
}

TEST(AnalyzeCkptCoverage, ClassesOutsideContractDirsAreIgnored) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const { out.u64(n_); }\n"
      "  void restore_state(ckpt::Reader& in) { n_ = in.u64(); }\n"
      " private:\n"
      "  std::uint64_t n_ = 0;\n"
      "  double x_ = 0.0;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("tests/a.cpp", src), "L8-ckpt-coverage"),
            0u);
}

// ---------------------------------------------------------------------------
// L9: save/restore symmetry
// ---------------------------------------------------------------------------

TEST(AnalyzeCkptSymmetry, KindSkewIsFlagged) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const {\n"
      "    out.u32(epoch_);\n"
      "    out.f64(temp_);\n"
      "  }\n"
      "  void restore_state(ckpt::Reader& in) {\n"
      "    epoch_ = static_cast<std::uint32_t>(in.u64());\n"
      "    temp_ = in.f64();\n"
      "  }\n"
      " private:\n"
      "  std::uint32_t epoch_ = 0;\n"
      "  double temp_ = 0.0;\n"
      "};\n";
  const auto fs = lint_source("src/rl/a.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L9-ckpt-symmetry", 4));
}

TEST(AnalyzeCkptSymmetry, CountSkewIsFlagged) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const {\n"
      "    out.u64(n_);\n"
      "    out.f64(x_);\n"
      "  }\n"
      "  void restore_state(ckpt::Reader& in) {\n"
      "    n_ = in.u64();\n"
      "    x_ = 0.0;\n"
      "  }\n"
      " private:\n"
      "  std::uint64_t n_ = 0;\n"
      "  double x_ = 0.0;\n"
      "};\n";
  const auto fs = lint_source("src/rl/a.cpp", src);
  EXPECT_EQ(count_rule(fs, "L9-ckpt-symmetry"), 1u);
}

TEST(AnalyzeCkptSymmetry, LoopPairedVectorIdiomIsClean) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const {\n"
      "    ckpt::write_tag(out, kTag);\n"
      "    out.u64(items_.size());\n"
      "    for (double v : items_) out.f64(v);\n"
      "    ckpt::save_rng(out, rng_);\n"
      "  }\n"
      "  void restore_state(ckpt::Reader& in) {\n"
      "    ckpt::expect_tag(in, kTag);\n"
      "    items_.resize(in.u64());\n"
      "    for (double& v : items_) v = in.f64();\n"
      "    ckpt::restore_rng(in, rng_);\n"
      "  }\n"
      " private:\n"
      "  static const ckpt::Tag kTag;\n"
      "  std::vector<double> items_;\n"
      "  util::Rng rng_;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/rl/a.cpp", src), "L9-ckpt-symmetry"),
            0u);
}

TEST(AnalyzeCkptSymmetry, LoopDepthSkewIsFlagged) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const {\n"
      "    out.u64(items_.size());\n"
      "    for (double v : items_) out.f64(v);\n"
      "  }\n"
      "  void restore_state(ckpt::Reader& in) {\n"
      "    items_.resize(in.u64());\n"
      "    items_[0] = in.f64();\n"
      "  }\n"
      " private:\n"
      "  std::vector<double> items_;\n"
      "};\n";
  const auto fs = lint_source("src/rl/a.cpp", src);
  EXPECT_EQ(count_rule(fs, "L9-ckpt-symmetry"), 1u);
}

TEST(AnalyzeCkptSymmetry, NestedMemberPairsByReceiver) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  void save_state(ckpt::Writer& out) const {\n"
      "    opt_.save_state(out);\n"
      "    buf_.save_state(out);\n"
      "  }\n"
      "  void restore_state(ckpt::Reader& in) {\n"
      "    buf_.restore_state(in);\n"
      "    opt_.restore_state(in);\n"
      "  }\n"
      " private:\n"
      "  Opt opt_;\n"
      "  Buf buf_;\n"
      "};\n";
  const auto fs = lint_source("src/rl/a.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L9-ckpt-symmetry", 4));
}

TEST(AnalyzeCkptSymmetry, WaiverOnDefinitionLineSuppresses) {
  const std::string src =
      "class A {\n"
      " public:\n"
      "  // lint: ckpt-sym-ok(dual-format reader keeps legacy support)\n"
      "  void save_state(ckpt::Writer& out) const { out.u32(n_); }\n"
      "  void restore_state(ckpt::Reader& in) {\n"
      "    n_ = static_cast<std::uint32_t>(in.u64());\n"
      "  }\n"
      " private:\n"
      "  std::uint32_t n_ = 0;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_source("src/rl/a.cpp", src), "L9-ckpt-symmetry"),
            0u);
}

// ---------------------------------------------------------------------------
// L10: shard ownership
// ---------------------------------------------------------------------------

const char* kPoolHeader =
    "class Pool {\n"
    " public:\n"
    "  void start() { worker_ = std::thread([this] { worker_main(); }); }\n"
    "  std::size_t drain() {\n"
    "    const std::size_t n = backlog_.size();\n"
    "    return n;\n"
    "  }\n"
    " private:\n"
    "  void worker_main() { backlog_.push_back(1); }\n"
    "  std::thread worker_;\n";

TEST(AnalyzeShardOwnership, UnsafeCrossingMemberIsFlagged) {
  const std::string src =
      std::string(kPoolHeader) + "  std::vector<std::size_t> backlog_;\n};\n";
  const auto fs = lint_source("src/serve/pool.cpp", src);
  EXPECT_TRUE(has_rule_at(fs, "L10-shard-ownership", 11));
}

TEST(AnalyzeShardOwnership, SpscQueueAndAtomicCrossingsAreClean) {
  const std::string src =
      "class Pool {\n"
      " public:\n"
      "  void start() { worker_ = std::thread([this] { worker_main(); }); }\n"
      "  std::size_t drained() const { return done_.load(); }\n"
      "  bool push(int v) { return inbox_.try_push(v); }\n"
      " private:\n"
      "  void worker_main() {\n"
      "    int v;\n"
      "    if (inbox_.try_pop(v)) done_.fetch_add(1);\n"
      "  }\n"
      "  std::thread worker_;\n"
      "  SpscQueue<int> inbox_;\n"
      "  std::atomic<std::size_t> done_{0};\n"
      "};\n";
  EXPECT_EQ(
      count_rule(lint_source("src/serve/pool.cpp", src), "L10-shard-ownership"),
      0u);
}

TEST(AnalyzeShardOwnership, ShardWaiverSuppresses) {
  const std::string src =
      std::string(kPoolHeader) +
      "  // lint: shard-ok(drain only runs after join, at quiescence)\n"
      "  std::vector<std::size_t> backlog_;\n};\n";
  EXPECT_EQ(
      count_rule(lint_source("src/serve/pool.cpp", src), "L10-shard-ownership"),
      0u);
}

TEST(AnalyzeShardOwnership, CtorWritesDoNotCountAsCrossing) {
  const std::string src =
      "class Pool {\n"
      " public:\n"
      "  Pool() { backlog_.reserve(8); }\n"
      "  void start() { worker_ = std::thread([this] { worker_main(); }); }\n"
      " private:\n"
      "  void worker_main() { backlog_.push_back(1); }\n"
      "  std::thread worker_;\n"
      "  std::vector<std::size_t> backlog_;\n"
      "};\n";
  EXPECT_EQ(
      count_rule(lint_source("src/serve/pool.cpp", src), "L10-shard-ownership"),
      0u);
}

TEST(AnalyzeShardOwnership, OutsideServeDirsIsIgnored) {
  const std::string src =
      std::string(kPoolHeader) + "  std::vector<std::size_t> backlog_;\n};\n";
  EXPECT_EQ(
      count_rule(lint_source("src/fed/pool.cpp", src), "L10-shard-ownership"),
      0u);
}

// ---------------------------------------------------------------------------
// W1: stale waivers (tree-level) and severity plumbing
// ---------------------------------------------------------------------------

class StaleWaiverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    namespace fs = std::filesystem;
    dir_ = fs::current_path() / "fedpower_lint_stale_tmp";
    fs::create_directories(dir_ / "src" / "fed");
    std::ofstream out(dir_ / "src" / "fed" / "x.cpp");
    out << "// lint: nondet-ok(this waiver excuses nothing)\n"
           "int live() { return 1; }\n"
           "int seeded() { return rand(); }  // lint: nondet-ok(stub)\n";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(StaleWaiverTest, TreeReportsOnlyUnusedWaiverAsWarning) {
  const auto fs = lint_tree(dir_.string(), {"src"});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "W1-stale-waiver");
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_EQ(fs[0].severity, Severity::kWarning);
  EXPECT_FALSE(has_errors(fs));
}

TEST_F(StaleWaiverTest, StrictPromotesStaleWaiversToErrors) {
  Options options;
  options.strict_waivers = true;
  const auto fs = lint_tree(dir_.string(), {"src"}, options);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].severity, Severity::kError);
  EXPECT_TRUE(has_errors(fs));
}

TEST(AnalyzeOutput, SarifCarriesRulesLevelsAndLocations) {
  std::vector<Finding> findings = {
      {"src/a.cpp", 3, "L8-ckpt-coverage", "member 'x_' not serialized",
       Severity::kError},
      {"src/b.cpp", 9, "W1-stale-waiver", "waiver unused",
       Severity::kWarning},
  };
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"fedpower-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"L8-ckpt-coverage\"}"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/b.cpp\""), std::string::npos);
}

TEST(AnalyzeOutput, JsonCarriesSeverity) {
  std::vector<Finding> findings = {
      {"src/a.cpp", 1, "W1-stale-waiver", "waiver unused",
       Severity::kWarning}};
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
}

}  // namespace
}  // namespace fedpower::lint
