#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fedpower::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would catastrophically cancel here.
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + 1.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(RunningStats, MergeIntoEmptyCopies) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(VectorStats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(VectorStats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> xs = {1.0, 5.0, 3.0};
  EXPECT_EQ(moving_average(xs, 1), xs);
}

TEST(MovingAverage, SmoothsWithGrowingPrefix) {
  const std::vector<double> xs = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> smoothed = moving_average(xs, 2);
  ASSERT_EQ(smoothed.size(), 4u);
  EXPECT_DOUBLE_EQ(smoothed[0], 2.0);   // window has one element
  EXPECT_DOUBLE_EQ(smoothed[1], 3.0);
  EXPECT_DOUBLE_EQ(smoothed[2], 5.0);
  EXPECT_DOUBLE_EQ(smoothed[3], 7.0);
}

TEST(MovingAverage, EmptyInput) {
  EXPECT_TRUE(moving_average({}, 3).empty());
}

TEST(PercentChange, Basics) {
  EXPECT_DOUBLE_EQ(percent_change(10.0, 12.0), 20.0);
  EXPECT_DOUBLE_EQ(percent_change(10.0, 8.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_change(-10.0, -5.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_change(0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace fedpower::util
