#include "util/log.hpp"

#include <gtest/gtest.h>

namespace fedpower::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  log_error("dropped");
}

TEST(Log, EmittingMessagesDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  log_debug("visible debug (expected in test output)");
}

}  // namespace
}  // namespace fedpower::util
