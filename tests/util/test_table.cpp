#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fedpower::util {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("| name "), std::string::npos);
  EXPECT_NE(rendered.find("| alpha "), std::string::npos);
  EXPECT_NE(rendered.find("| beta "), std::string::npos);
}

TEST(AsciiTable, ColumnsAlignToWidestCell) {
  AsciiTable t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string rendered = t.to_string();
  // Every line must have the same length for a single-column table.
  std::istringstream in(rendered);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(AsciiTable, NumericRowFormatting) {
  AsciiTable t({"label", "x"});
  t.add_row("pi", {3.14159}, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(AsciiTable, FormatPrecision) {
  EXPECT_EQ(AsciiTable::format(1.0, 3), "1.000");
  EXPECT_EQ(AsciiTable::format(-0.5, 1), "-0.5");
}

TEST(AsciiTable, ShortRowsPadWithEmptyCells) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string rendered = t.to_string();
  // Must not crash and must still have 3 columns' worth of separators.
  std::istringstream in(rendered);
  std::string line;
  std::getline(in, line);  // rule
  std::getline(in, line);  // header
  EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 4);
}

TEST(AsciiTable, StreamsViaOperator) {
  AsciiTable t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace fedpower::util
