#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedpower::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesCellsWithCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"x,y", "z"});
  EXPECT_EQ(out.str(), "\"x,y\",z\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, NumericRowWithLabel) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row("row", {1.0, 2.5, 0.125});
  EXPECT_EQ(out.str(), "row,1,2.5,0.125\n");
}

TEST(CsvWriter, FormatUsesSixSignificantDigits) {
  EXPECT_EQ(CsvWriter::format(1234567.0), "1.23457e+06");
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
}

TEST(CsvWriter, EmptyRowIsJustNewline) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row(std::vector<std::string>{});
  EXPECT_EQ(out.str(), "\n");
}

TEST(CsvWriter, WritesToFile) {
  const std::string path = ::testing::TempDir() + "fedpower_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"h1", "h2"});
    csv.write_row("r", {3.0});
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "h1,h2\nr,3\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace fedpower::util
