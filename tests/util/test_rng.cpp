#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace fedpower::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    if (a.next_u64() != b.next_u64()) ++differing;
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.0);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::array<int, 7> counts{};
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) EXPECT_GT(c, 700);  // ~1000 expected each
}

TEST(Rng, UniformIndexUnbiased) {
  // With n = 3 a naive modulo approach would bias low indices; Lemire's
  // method must keep all bins within a few sigma of uniform.
  Rng rng(13);
  std::array<int, 3> counts{};
  const int draws = 90000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(3)];
  for (const int c : counts) EXPECT_NEAR(c, draws / 3, 600);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.01);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(31);
  EXPECT_DOUBLE_EQ(rng.normal(1.5, 0.0), 1.5);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(37);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(43);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(47);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(59);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 16; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

TEST(Rng, StateRoundTripResumesGoldenSequence) {
  // Checkpoint contract: capturing state() mid-stream and restoring it into
  // a fresh generator must reproduce the continuation draw-for-draw across
  // every distribution (normal() caches no spare, so the four state words
  // are the complete generator state).
  Rng original(977);
  for (int i = 0; i < 100; ++i) (void)original.next_u64();
  const auto saved = original.state();

  Rng restored(1);  // deliberately different seed; state replaces it
  restored.set_state(saved);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(original.next_u64(), restored.next_u64());
    EXPECT_DOUBLE_EQ(original.uniform(), restored.uniform());
    EXPECT_DOUBLE_EQ(original.normal(), restored.normal());
    EXPECT_EQ(original.uniform_index(17), restored.uniform_index(17));
  }
  // Children split after restore continue the same derivation sequence.
  Rng child_a = original.split();
  Rng child_b = restored.split();
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123;
  std::uint64_t s2 = 123;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace fedpower::util
