#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedpower::util {
namespace {

Config parse_str(const std::string& text) {
  std::istringstream in(text);
  return Config::parse(in);
}

TEST(Config, ParsesKeyValuePairs) {
  const Config c = parse_str("alpha = 0.005\nname = fedpower\n");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.get_string("name"), "fedpower");
  EXPECT_DOUBLE_EQ(c.get_double("alpha", 0.0), 0.005);
}

TEST(Config, SectionsPrefixKeys) {
  const Config c = parse_str("[agent]\nlr = 0.1\n[fed]\nrounds = 100\n");
  EXPECT_TRUE(c.has("agent.lr"));
  EXPECT_TRUE(c.has("fed.rounds"));
  EXPECT_FALSE(c.has("lr"));
  EXPECT_EQ(c.get_int("fed.rounds", 0), 100);
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const Config c = parse_str(
      "# full line comment\n"
      "\n"
      "key = value   # trailing comment\n"
      "other = 1     ; ini-style comment\n");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.get_string("key"), "value");
}

TEST(Config, WhitespaceTrimmed) {
  const Config c = parse_str("   spaced   =    hello world   \n");
  EXPECT_EQ(c.get_string("spaced"), "hello world");
}

TEST(Config, LaterAssignmentWins) {
  const Config c = parse_str("x = 1\nx = 2\n");
  EXPECT_EQ(c.get_int("x", 0), 2);
}

TEST(Config, FallbacksForMissingKeys) {
  const Config c = parse_str("present = 1\n");
  EXPECT_EQ(c.get_string("absent", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(c.get_double("absent", 2.5), 2.5);
  EXPECT_EQ(c.get_int("absent", -3), -3);
  EXPECT_TRUE(c.get_bool("absent", true));
  EXPECT_TRUE(c.get_list("absent").empty());
}

TEST(Config, BoolSpellings) {
  const Config c = parse_str(
      "a = true\nb = FALSE\nc = Yes\nd = off\ne = 1\nf = 0\n");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(Config, Lists) {
  const Config c = parse_str("apps = fft, lu ,radix,,\nsolo = one\n");
  EXPECT_EQ(c.get_list("apps"),
            (std::vector<std::string>{"fft", "lu", "radix"}));
  EXPECT_EQ(c.get_list("solo"), (std::vector<std::string>{"one"}));
}

TEST(Config, ScientificNotation) {
  const Config c = parse_str("decay = 5e-4\n");
  EXPECT_DOUBLE_EQ(c.get_double("decay", 0.0), 5e-4);
}

TEST(Config, KeysSorted) {
  const Config c = parse_str("b = 1\na = 2\n");
  EXPECT_EQ(c.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(Config, SetOverrides) {
  Config c = parse_str("x = 1\n");
  c.set("x", "9");
  c.set("fresh", "new");
  EXPECT_EQ(c.get_int("x", 0), 9);
  EXPECT_EQ(c.get_string("fresh"), "new");
}

TEST(Config, SyntaxErrors) {
  EXPECT_THROW(parse_str("no equals sign\n"), std::invalid_argument);
  EXPECT_THROW(parse_str("[unterminated\n"), std::invalid_argument);
  EXPECT_THROW(parse_str("[]\nx = 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_str("= nokey\n"), std::invalid_argument);
}

TEST(Config, SyntaxErrorReportsLineNumber) {
  try {
    parse_str("ok = 1\nbroken line\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Config, TypeErrors) {
  const Config c = parse_str("word = hello\npartial = 12abc\n");
  EXPECT_THROW(c.get_double("word", 0.0), std::invalid_argument);
  EXPECT_THROW(c.get_int("partial", 0), std::invalid_argument);
  EXPECT_THROW(c.get_bool("word", false), std::invalid_argument);
}

TEST(Config, LoadsFromFile) {
  const std::string path = ::testing::TempDir() + "fp_config_test.ini";
  {
    std::ofstream out(path);
    out << "[run]\nrounds = 42\n";
  }
  const Config c = Config::load(path);
  EXPECT_EQ(c.get_int("run.rounds", 0), 42);
  std::remove(path.c_str());
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/f.ini"), std::runtime_error);
}

}  // namespace
}  // namespace fedpower::util
