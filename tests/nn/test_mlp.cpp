#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace fedpower::nn {
namespace {

TEST(Mlp, PaperTopologyParamCount) {
  // 5 inputs -> 32 hidden (ReLU) -> 15 outputs: 5*32+32 + 32*15+15 = 687.
  util::Rng rng(1);
  Mlp mlp = make_mlp(5, {32}, 15, rng);
  EXPECT_EQ(mlp.param_count(), 687u);
  EXPECT_EQ(mlp.layer_count(), 3u);  // dense, relu, dense
}

TEST(Mlp, LinearModelWhenNoHiddenLayers) {
  util::Rng rng(2);
  Mlp mlp = make_mlp(4, {}, 3, rng);
  EXPECT_EQ(mlp.param_count(), 4u * 3u + 3u);
  EXPECT_EQ(mlp.layer_count(), 1u);
}

TEST(Mlp, ForwardShape) {
  util::Rng rng(3);
  Mlp mlp = make_mlp(5, {32}, 15, rng);
  const Matrix out = mlp.forward(Matrix(7, 5, 0.1));
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 15u);
}

TEST(Mlp, ParametersRoundTrip) {
  util::Rng rng(4);
  Mlp mlp = make_mlp(3, {8}, 2, rng);
  const std::vector<double> params = mlp.parameters();
  Mlp other = make_mlp(3, {8}, 2, rng);
  other.set_parameters(params);
  EXPECT_EQ(other.parameters(), params);
}

TEST(Mlp, SetParametersChangesOutput) {
  util::Rng rng(5);
  Mlp mlp = make_mlp(2, {4}, 1, rng);
  const Matrix input{{1.0, -0.5}};
  const double before = mlp.forward(input)(0, 0);
  std::vector<double> params(mlp.param_count(), 0.0);
  mlp.set_parameters(params);
  const double after = mlp.forward(input)(0, 0);
  EXPECT_NE(before, after);
  EXPECT_DOUBLE_EQ(after, 0.0);
}

TEST(Mlp, CopyIsDeep) {
  util::Rng rng(6);
  Mlp a = make_mlp(2, {4}, 2, rng);
  Mlp b = a;
  std::vector<double> zeros(a.param_count(), 0.0);
  a.set_parameters(zeros);
  bool any_nonzero = false;
  for (const double p : b.parameters()) any_nonzero |= (p != 0.0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Mlp, AssignmentIsDeep) {
  util::Rng rng(7);
  Mlp a = make_mlp(2, {3}, 1, rng);
  Mlp b = make_mlp(2, {3}, 1, rng);
  b = a;
  EXPECT_EQ(a.parameters(), b.parameters());
  std::vector<double> zeros(a.param_count(), 0.0);
  a.set_parameters(zeros);
  EXPECT_NE(a.parameters(), b.parameters());
}

TEST(Mlp, ZeroGradientsClearsAllLayers) {
  util::Rng rng(8);
  Mlp mlp = make_mlp(2, {4}, 2, rng);
  const Matrix out = mlp.forward(Matrix{{1.0, 1.0}});
  mlp.backward(Matrix(1, 2, 1.0));
  mlp.zero_gradients();
  for (const double g : mlp.gradients()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Mlp, TrainsToFitSimpleFunction) {
  // Supervised sanity check: regress y = [x0 + x1, x0 - x1].
  util::Rng rng(9);
  Mlp mlp = make_mlp(2, {16}, 2, rng);
  MseLoss loss;
  Adam adam(0.01);
  util::Rng data_rng(10);
  double final_loss = 1e9;
  for (int iter = 0; iter < 2000; ++iter) {
    Matrix input(16, 2);
    Matrix target(16, 2);
    for (std::size_t r = 0; r < 16; ++r) {
      const double x0 = data_rng.uniform(-1.0, 1.0);
      const double x1 = data_rng.uniform(-1.0, 1.0);
      input(r, 0) = x0;
      input(r, 1) = x1;
      target(r, 0) = x0 + x1;
      target(r, 1) = x0 - x1;
    }
    const Matrix prediction = mlp.forward(input);
    const LossResult result = loss.evaluate(prediction, target);
    mlp.zero_gradients();
    mlp.backward(result.grad);
    std::vector<double> params = mlp.parameters();
    adam.step(params, mlp.gradients());
    mlp.set_parameters(params);
    final_loss = result.value;
  }
  EXPECT_LT(final_loss, 1e-3);
}

TEST(Mlp, ReluNetworkIsPiecewiseLinear) {
  // Scaling a positive-activation input scales the (bias-free) output.
  util::Rng rng(11);
  Mlp mlp = make_mlp(1, {4}, 1, rng);
  std::vector<double> params = mlp.parameters();
  // Zero all biases: layout is [W1 (1x4), b1 (4), W2 (4x1), b2 (1)].
  for (std::size_t i = 4; i < 8; ++i) params[i] = 0.0;
  params[12] = 0.0;
  mlp.set_parameters(params);
  const double y1 = mlp.forward(Matrix{{1.0}})(0, 0);
  const double y2 = mlp.forward(Matrix{{2.0}})(0, 0);
  EXPECT_NEAR(y2, 2.0 * y1, 1e-9);
}

}  // namespace
}  // namespace fedpower::nn
