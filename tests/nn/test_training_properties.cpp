// Parameterized training properties across network shapes and losses:
// every configuration we might instantiate must backprop correctly and fit
// a simple function.
#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/optimizer.hpp"

namespace fedpower::nn {
namespace {

struct Shape {
  std::size_t input;
  std::vector<std::size_t> hidden;
  std::size_t output;
};

class NetworkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(NetworkShapes, GradientsMatchFiniteDifferences) {
  const Shape& shape = GetParam();
  util::Rng rng(1);
  Mlp mlp = make_mlp(shape.input, shape.hidden, shape.output, rng);
  MseLoss loss;
  Matrix input(4, shape.input);
  Matrix target(4, shape.output);
  util::Rng data(2);
  for (double& x : input.data()) x = data.uniform(-1.0, 1.0);
  for (double& x : target.data()) x = data.uniform(-1.0, 1.0);
  const GradCheckResult result = check_gradients(mlp, loss, input, target);
  EXPECT_LT(result.max_rel_error, 1e-4);
}

TEST_P(NetworkShapes, ParamCountMatchesFormula) {
  const Shape& shape = GetParam();
  util::Rng rng(3);
  Mlp mlp = make_mlp(shape.input, shape.hidden, shape.output, rng);
  std::size_t expected = 0;
  std::size_t in = shape.input;
  for (const std::size_t h : shape.hidden) {
    expected += in * h + h;
    in = h;
  }
  expected += in * shape.output + shape.output;
  EXPECT_EQ(mlp.param_count(), expected);
}

TEST_P(NetworkShapes, FitsLinearTarget) {
  const Shape& shape = GetParam();
  util::Rng rng(4);
  Mlp mlp = make_mlp(shape.input, shape.hidden, shape.output, rng);
  MseLoss loss;
  Adam adam(0.02);
  util::Rng data(5);
  double final_loss = 1e9;
  for (int iter = 0; iter < 1200; ++iter) {
    Matrix input(8, shape.input);
    Matrix target(8, shape.output);
    for (std::size_t r = 0; r < 8; ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < shape.input; ++c) {
        input(r, c) = data.uniform(-1.0, 1.0);
        sum += input(r, c);
      }
      for (std::size_t c = 0; c < shape.output; ++c)
        target(r, c) = 0.5 * sum;
    }
    const Matrix prediction = mlp.forward(input);
    const LossResult result = loss.evaluate(prediction, target);
    mlp.zero_gradients();
    mlp.backward(result.grad);
    std::vector<double> params = mlp.parameters();
    adam.step(params, mlp.gradients());
    mlp.set_parameters(params);
    final_loss = result.value;
  }
  EXPECT_LT(final_loss, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetworkShapes,
    ::testing::Values(Shape{5, {32}, 15},    // the paper's policy network
                      Shape{5, {}, 15},      // linear baseline
                      Shape{3, {8}, 4},      // small test network
                      Shape{5, {16, 16}, 15},// deeper variant
                      Shape{2, {4, 4, 4}, 1}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      std::string name = "in" + std::to_string(param_info.param.input);
      for (const std::size_t h : param_info.param.hidden)
        name += "_h" + std::to_string(h);
      name += "_out" + std::to_string(param_info.param.output);
      return name;
    });

class LossFamilies : public ::testing::TestWithParam<double> {};

TEST_P(LossFamilies, HuberGradCheckAcrossDeltas) {
  util::Rng rng(6);
  Mlp mlp = make_mlp(4, {8}, 3, rng);
  // Keep errors in the smooth region for the finite-difference check.
  std::vector<double> params = mlp.parameters();
  for (double& p : params) p *= 0.05;
  mlp.set_parameters(params);
  HuberLoss loss(GetParam());
  Matrix input(3, 4);
  Matrix target(3, 3);
  util::Rng data(7);
  for (double& x : input.data()) x = data.uniform(-0.5, 0.5);
  for (double& x : target.data()) x = data.uniform(-0.05, 0.05);
  const GradCheckResult result = check_gradients(mlp, loss, input, target);
  EXPECT_LT(result.max_rel_error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Deltas, LossFamilies,
                         ::testing::Values(0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace fedpower::nn
