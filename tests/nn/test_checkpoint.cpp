#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "ckpt/errors.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"

namespace fedpower::nn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Checkpoint, RoundTripsFloat32Values) {
  const std::string path = temp_path("fp_ckpt_roundtrip.bin");
  const std::vector<double> params = {0.5, -1.25, 3.0};
  save_parameters(path, params);
  EXPECT_EQ(load_parameters(path), params);
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoredModelPredictsIdentically) {
  const std::string path = temp_path("fp_ckpt_model.bin");
  util::Rng rng(1);
  Mlp original = make_mlp(5, {32}, 15, rng);
  save_parameters(path, original.parameters());

  Mlp restored = make_mlp(5, {32}, 15, rng);
  restored.set_parameters(load_parameters(path));
  const Matrix input{{0.5, 0.4, 0.7, 0.3, 0.2}};
  const Matrix a = original.forward(input);
  const Matrix b = restored.forward(input);
  for (std::size_t c = 0; c < 15; ++c) EXPECT_NEAR(a(0, c), b(0, c), 1e-6);
  std::remove(path.c_str());
}

TEST(Checkpoint, ThrowsOnUnwritablePath) {
  EXPECT_THROW(save_parameters("/nonexistent-dir/x.bin", std::vector<double>{1.0}),
               std::runtime_error);
}

TEST(Checkpoint, ThrowsOnMissingFile) {
  EXPECT_THROW(load_parameters(temp_path("fp_ckpt_missing.bin")),
               std::runtime_error);
}

TEST(Checkpoint, ThrowsOnCorruptContent) {
  const std::string path = temp_path("fp_ckpt_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_THROW(load_parameters(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Checkpoint, SavedFilesAreFpckWrappedAndChecksummed) {
  const std::string path = temp_path("fp_ckpt_wrapped.bin");
  save_parameters(path, std::vector<double>{1.0, 2.0});
  {
    std::ifstream in(path, std::ios::binary);
    char magic[4] = {};
    in.read(magic, 4);
    EXPECT_EQ(std::string(magic, 4), "FPCK");
  }
  // A flipped payload byte fails the container CRC before the FPNN decoder
  // ever sees the bytes.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\xff');
  }
  EXPECT_THROW(load_parameters(path), ckpt::CorruptSnapshotError);
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadsBareWirePayloads) {
  // A captured federated upload (bare FPNN, no container) stays loadable.
  const std::string path = temp_path("fp_ckpt_bare.bin");
  const std::vector<double> params = {0.5, -1.5};
  const auto payload = encode_parameters(params);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  EXPECT_EQ(load_parameters(path), params);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationAndTrailingGarbageReportDistinctly) {
  const auto payload = encode_parameters(std::vector<double>{1.0, 2.0, 3.0});

  auto truncated = payload;
  truncated.resize(truncated.size() - 4);
  try {
    (void)decode_parameters(truncated);
    FAIL() << "truncated payload should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }

  auto oversized = payload;
  oversized.push_back(0x00);
  try {
    (void)decode_parameters(oversized);
    FAIL() << "oversized payload should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trailing garbage"),
              std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, SaveLeavesNoTempFileBehind) {
  const std::string path = temp_path("fp_ckpt_atomic.bin");
  save_parameters(path, std::vector<double>{1.0});
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptyParameterVector) {
  const std::string path = temp_path("fp_ckpt_empty.bin");
  save_parameters(path, std::vector<double>{});
  EXPECT_TRUE(load_parameters(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedpower::nn
