#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

namespace fedpower::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(GradCheck, LinearModelWithMse) {
  util::Rng rng(1);
  Mlp mlp = make_mlp(3, {}, 2, rng);
  MseLoss loss;
  const Matrix input = random_matrix(4, 3, rng);
  const Matrix target = random_matrix(4, 2, rng);
  const GradCheckResult r = check_gradients(mlp, loss, input, target);
  EXPECT_LT(r.max_rel_error, 1e-5);
}

TEST(GradCheck, ReluNetworkWithMse) {
  util::Rng rng(2);
  Mlp mlp = make_mlp(4, {8}, 3, rng);
  MseLoss loss;
  const Matrix input = random_matrix(6, 4, rng);
  const Matrix target = random_matrix(6, 3, rng);
  const GradCheckResult r = check_gradients(mlp, loss, input, target);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheck, DeepNetwork) {
  util::Rng rng(3);
  Mlp mlp = make_mlp(3, {8, 8}, 2, rng);
  MseLoss loss;
  const Matrix input = random_matrix(5, 3, rng);
  const Matrix target = random_matrix(5, 2, rng);
  const GradCheckResult r = check_gradients(mlp, loss, input, target);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheck, HuberLossInsideQuadraticRegion) {
  util::Rng rng(4);
  Mlp mlp = make_mlp(3, {8}, 2, rng);
  // Scale parameters down so errors stay within delta (smooth region).
  std::vector<double> params = mlp.parameters();
  for (double& p : params) p *= 0.1;
  mlp.set_parameters(params);
  HuberLoss loss(5.0);
  const Matrix input = random_matrix(4, 3, rng);
  const Matrix target = random_matrix(4, 2, rng);
  const GradCheckResult r = check_gradients(mlp, loss, input, target);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheck, MaskedBanditLoss) {
  // The exact training configuration of the paper: masked Huber loss on a
  // 5 -> 32 -> 15 network.
  util::Rng rng(5);
  Mlp mlp = make_mlp(5, {32}, 15, rng);
  HuberLoss loss(10.0);  // large delta keeps the check in the smooth region
  const Matrix input = random_matrix(8, 5, rng);
  std::vector<std::size_t> actions;
  std::vector<double> targets;
  for (std::size_t i = 0; i < 8; ++i) {
    actions.push_back(rng.uniform_index(15));
    targets.push_back(rng.uniform(-1.0, 1.0));
  }
  const GradCheckResult r =
      check_gradients_masked(mlp, loss, input, actions, targets);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheck, MaskedMseLoss) {
  util::Rng rng(6);
  Mlp mlp = make_mlp(4, {6}, 5, rng);
  MseLoss loss;
  const Matrix input = random_matrix(3, 4, rng);
  const GradCheckResult r = check_gradients_masked(
      mlp, loss, input, {0, 2, 4}, {0.5, -0.5, 1.0});
  EXPECT_LT(r.max_rel_error, 1e-4);
}

}  // namespace
}  // namespace fedpower::nn
