#include "nn/matrix.hpp"

#include <gtest/gtest.h>

namespace fedpower::nn {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
}

TEST(Matrix, BraceConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RowVector) {
  const Matrix v = Matrix::row_vector({1.0, 2.0, 3.0});
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 3u);
  EXPECT_DOUBLE_EQ(v(0, 2), 3.0);
}

TEST(Matrix, MatmulKnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulRectangular) {
  const Matrix a{{1.0, 0.0, 2.0}};          // 1x3
  const Matrix b{{1.0}, {2.0}, {3.0}};      // 3x1
  const Matrix c = a.matmul(b);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
}

TEST(Matrix, TransposeMatmulEqualsExplicitTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};  // 3x2
  const Matrix b{{1.0, 0.5}, {2.0, 1.5}, {3.0, 2.5}};  // 3x2
  const Matrix expected = a.transpose().matmul(b);
  const Matrix actual = a.transpose_matmul(b);
  EXPECT_EQ(actual, expected);
}

TEST(Matrix, MatmulTransposeEqualsExplicitTranspose) {
  const Matrix a{{1.0, 2.0, 3.0}};                      // 1x3
  const Matrix b{{0.5, 1.0, 1.5}, {2.0, 2.5, 3.0}};     // 2x3
  const Matrix expected = a.matmul(b.transpose());
  const Matrix actual = a.matmul_transpose(b);
  EXPECT_EQ(actual, expected);
}

TEST(Matrix, TransposeShapeAndValues) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, ElementwiseAddSubScale) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{0.5, 1.0}};
  EXPECT_EQ(a + b, (Matrix{{1.5, 3.0}}));
  EXPECT_EQ(a - b, (Matrix{{0.5, 1.0}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2.0, 4.0}}));
  EXPECT_EQ(2.0 * a, (Matrix{{2.0, 4.0}}));
}

TEST(Matrix, Hadamard) {
  const Matrix a{{2.0, 3.0}};
  const Matrix b{{4.0, 5.0}};
  EXPECT_EQ(a.hadamard(b), (Matrix{{8.0, 15.0}}));
}

TEST(Matrix, AddRowBroadcast) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  m.add_row_broadcast(Matrix{{10.0, 20.0}});
  EXPECT_EQ(m, (Matrix{{11.0, 22.0}, {13.0, 24.0}}));
}

TEST(Matrix, ColumnSums) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.column_sums(), (Matrix{{4.0, 6.0}}));
}

TEST(Matrix, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).same_shape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).same_shape(Matrix(3, 2)));
}

TEST(Matrix, MatmulAssociativity) {
  // (A*B)*C == A*(B*C) for compatible shapes — exercises accumulation order.
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.5, 1.0}, {1.5, 2.0}};
  const Matrix c{{2.0, 0.0}, {0.0, 2.0}};
  const Matrix lhs = a.matmul(b).matmul(c);
  const Matrix rhs = a.matmul(b.matmul(c));
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t col = 0; col < 2; ++col)
      EXPECT_NEAR(lhs(r, col), rhs(r, col), 1e-12);
}

}  // namespace
}  // namespace fedpower::nn
