#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/mlp.hpp"

namespace fedpower::nn {
namespace {

TEST(Serialize, RoundTripPreservesFloat32Values) {
  const std::vector<double> params = {0.5, -1.25, 3.0, 0.0, 1e-3};
  const auto payload = encode_parameters(params);
  const auto decoded = decode_parameters(payload);
  ASSERT_EQ(decoded.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_FLOAT_EQ(static_cast<float>(decoded[i]),
                    static_cast<float>(params[i]));
}

TEST(Serialize, ExactForFloat32RepresentableValues) {
  const std::vector<double> params = {0.5, -0.25, 2.0};
  const auto decoded = decode_parameters(encode_parameters(params));
  EXPECT_EQ(decoded, params);
}

TEST(Serialize, PayloadSizeMatchesFormula) {
  const std::vector<double> params(719, 1.0);
  const auto payload = encode_parameters(params);
  EXPECT_EQ(payload.size(), payload_size(719));
  EXPECT_EQ(payload.size(), 12u + 719u * 4u);
}

TEST(Serialize, PaperPolicyNetworkIsAbout2point8kB) {
  // The paper reports 2.8 kB per transfer (§IV-C); our 687-parameter policy
  // network serializes to 2760 bytes = 2.76 kB.
  util::Rng rng(1);
  Mlp mlp = make_mlp(5, {32}, 15, rng);
  const auto payload = encode_parameters(mlp.parameters());
  EXPECT_EQ(payload.size(), 2760u);
  EXPECT_NEAR(static_cast<double>(payload.size()) / 1000.0, 2.8, 0.1);
}

TEST(Serialize, EmptyParameterVector) {
  const auto payload = encode_parameters(std::vector<double>{});
  EXPECT_EQ(payload.size(), kPayloadHeaderBytes);
  EXPECT_TRUE(decode_parameters(payload).empty());
}

TEST(Serialize, RejectsTruncatedHeader) {
  EXPECT_THROW(decode_parameters(std::vector<std::uint8_t>(5, 0)),
               std::invalid_argument);
}

TEST(Serialize, RejectsBadMagic) {
  auto payload = encode_parameters(std::vector<double>{1.0});
  payload[0] = 'X';
  EXPECT_THROW(decode_parameters(payload), std::invalid_argument);
}

TEST(Serialize, RejectsWrongVersion) {
  auto payload = encode_parameters(std::vector<double>{1.0});
  payload[4] = 99;
  EXPECT_THROW(decode_parameters(payload), std::invalid_argument);
}

TEST(Serialize, RejectsLengthMismatch) {
  auto payload = encode_parameters(std::vector<double>{1.0, 2.0});
  payload.pop_back();
  EXPECT_THROW(decode_parameters(payload), std::invalid_argument);
  payload.push_back(0);
  payload.push_back(0);
  EXPECT_THROW(decode_parameters(payload), std::invalid_argument);
}

TEST(Serialize, ModelSurvivesWireRoundTrip) {
  // A model encoded, decoded and re-installed must produce (float-rounded)
  // identical predictions — this is what federation relies on.
  util::Rng rng(2);
  Mlp original = make_mlp(5, {32}, 15, rng);
  Mlp restored = make_mlp(5, {32}, 15, rng);
  restored.set_parameters(
      decode_parameters(encode_parameters(original.parameters())));
  const Matrix input{{0.5, 0.4, 0.7, 0.3, 0.2}};
  const Matrix a = original.forward(input);
  const Matrix b = restored.forward(input);
  for (std::size_t c = 0; c < 15; ++c) EXPECT_NEAR(a(0, c), b(0, c), 1e-5);
}

TEST(Serialize, NegativeAndSpecialValues) {
  const std::vector<double> params = {-0.0, 1e38, -1e38};
  const auto decoded = decode_parameters(encode_parameters(params));
  EXPECT_EQ(decoded[0], 0.0);
  EXPECT_NEAR(decoded[1], 1e38, 1e32);
  EXPECT_NEAR(decoded[2], -1e38, 1e32);
}

}  // namespace
}  // namespace fedpower::nn
