#include "nn/activation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::nn {
namespace {

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  const Matrix out = relu.forward(Matrix{{-1.0, 0.0, 2.5}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 2.5);
}

TEST(Relu, BackwardMasksByInputSign) {
  Relu relu;
  relu.forward(Matrix{{-1.0, 0.0, 2.5}});
  const Matrix grad = relu.backward(Matrix{{1.0, 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 0.0);  // derivative at 0 defined as 0
  EXPECT_DOUBLE_EQ(grad(0, 2), 1.0);
}

TEST(Relu, HasNoParameters) {
  Relu relu;
  EXPECT_EQ(relu.param_count(), 0u);
}

TEST(Relu, BatchedBackwardShape) {
  Relu relu;
  relu.forward(Matrix(3, 4, -1.0));
  const Matrix grad = relu.backward(Matrix(3, 4, 1.0));
  EXPECT_EQ(grad.rows(), 3u);
  EXPECT_EQ(grad.cols(), 4u);
}

TEST(Tanh, ForwardValues) {
  Tanh tanh_layer;
  const Matrix out = tanh_layer.forward(Matrix{{0.0, 1.0, -1.0}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_NEAR(out(0, 1), std::tanh(1.0), 1e-12);
  EXPECT_NEAR(out(0, 2), -std::tanh(1.0), 1e-12);
}

TEST(Tanh, BackwardDerivative) {
  Tanh tanh_layer;
  tanh_layer.forward(Matrix{{0.5}});
  const Matrix grad = tanh_layer.backward(Matrix{{1.0}});
  const double y = std::tanh(0.5);
  EXPECT_NEAR(grad(0, 0), 1.0 - y * y, 1e-12);
}

TEST(Tanh, SaturatesGradientsAtExtremes) {
  Tanh tanh_layer;
  tanh_layer.forward(Matrix{{20.0}});
  const Matrix grad = tanh_layer.backward(Matrix{{1.0}});
  EXPECT_NEAR(grad(0, 0), 0.0, 1e-12);
}

TEST(Activations, CloneIsIndependent) {
  Relu relu;
  auto clone = relu.clone();
  EXPECT_NE(clone.get(), static_cast<Layer*>(&relu));
  EXPECT_EQ(clone->param_count(), 0u);
}

}  // namespace
}  // namespace fedpower::nn
