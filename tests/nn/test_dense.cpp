#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::nn {
namespace {

TEST(Dense, ForwardComputesAffineMap) {
  util::Rng rng(1);
  Dense layer(2, 3, Init::kZero, rng);
  std::vector<double> params = {
      // W (2x3, row-major)
      1.0, 2.0, 3.0,
      4.0, 5.0, 6.0,
      // b
      0.1, 0.2, 0.3};
  layer.set_params_from(params);
  const Matrix out = layer.forward(Matrix{{1.0, 1.0}});
  EXPECT_NEAR(out(0, 0), 5.1, 1e-12);
  EXPECT_NEAR(out(0, 1), 7.2, 1e-12);
  EXPECT_NEAR(out(0, 2), 9.3, 1e-12);
}

TEST(Dense, ParamCount) {
  util::Rng rng(2);
  Dense layer(5, 32, Init::kHe, rng);
  EXPECT_EQ(layer.param_count(), 5u * 32u + 32u);
}

TEST(Dense, ParamsRoundTrip) {
  util::Rng rng(3);
  Dense layer(3, 4, Init::kHe, rng);
  std::vector<double> params(layer.param_count());
  layer.copy_params_to(params);
  Dense other(3, 4, Init::kZero, rng);
  other.set_params_from(params);
  std::vector<double> copied(other.param_count());
  other.copy_params_to(copied);
  EXPECT_EQ(params, copied);
}

TEST(Dense, HeInitHasExpectedScale) {
  util::Rng rng(4);
  Dense layer(100, 200, Init::kHe, rng);
  std::vector<double> params(layer.param_count());
  layer.copy_params_to(params);
  double sum_sq = 0.0;
  const std::size_t weight_count = 100 * 200;
  for (std::size_t i = 0; i < weight_count; ++i)
    sum_sq += params[i] * params[i];
  const double observed_var = sum_sq / static_cast<double>(weight_count);
  EXPECT_NEAR(observed_var, 2.0 / 100.0, 0.002);
  // Biases are zero-initialized.
  for (std::size_t i = weight_count; i < params.size(); ++i)
    EXPECT_DOUBLE_EQ(params[i], 0.0);
}

TEST(Dense, XavierInitHasExpectedScale) {
  util::Rng rng(5);
  Dense layer(100, 100, Init::kXavier, rng);
  std::vector<double> params(layer.param_count());
  layer.copy_params_to(params);
  double sum_sq = 0.0;
  const std::size_t weight_count = 100 * 100;
  for (std::size_t i = 0; i < weight_count; ++i)
    sum_sq += params[i] * params[i];
  EXPECT_NEAR(sum_sq / static_cast<double>(weight_count), 0.01, 0.001);
}

TEST(Dense, BackwardInputGradient) {
  util::Rng rng(6);
  Dense layer(2, 2, Init::kZero, rng);
  layer.set_params_from(std::vector<double>{1.0, 2.0, 3.0, 4.0, 0.0, 0.0});
  layer.forward(Matrix{{1.0, 1.0}});
  // grad_in = grad_out * W^T
  const Matrix grad_in = layer.backward(Matrix{{1.0, 0.0}});
  EXPECT_DOUBLE_EQ(grad_in(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grad_in(0, 1), 3.0);
}

TEST(Dense, BackwardAccumulatesWeightGradients) {
  util::Rng rng(7);
  Dense layer(2, 1, Init::kZero, rng);
  layer.forward(Matrix{{2.0, 3.0}});
  layer.backward(Matrix{{1.0}});
  // dL/dW = x^T * grad_out
  EXPECT_DOUBLE_EQ(layer.weight_grads()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(layer.weight_grads()(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(layer.bias_grads()(0, 0), 1.0);
  // A second backward accumulates.
  layer.forward(Matrix{{2.0, 3.0}});
  layer.backward(Matrix{{1.0}});
  EXPECT_DOUBLE_EQ(layer.weight_grads()(0, 0), 4.0);
}

TEST(Dense, ZeroGradsClears) {
  util::Rng rng(8);
  Dense layer(2, 1, Init::kHe, rng);
  layer.forward(Matrix{{1.0, 1.0}});
  layer.backward(Matrix{{1.0}});
  layer.zero_grads();
  std::vector<double> grads(layer.param_count());
  layer.copy_grads_to(grads);
  for (const double g : grads) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Dense, BatchForwardMatchesPerRow) {
  util::Rng rng(9);
  Dense layer(3, 2, Init::kHe, rng);
  const Matrix batch{{1.0, 0.5, -1.0}, {0.0, 2.0, 1.0}};
  const Matrix out = layer.forward(batch);
  Dense single = layer;
  const Matrix row0 = single.forward(Matrix{{1.0, 0.5, -1.0}});
  const Matrix row1 = single.forward(Matrix{{0.0, 2.0, 1.0}});
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(out(0, c), row0(0, c), 1e-12);
    EXPECT_NEAR(out(1, c), row1(0, c), 1e-12);
  }
}

TEST(Dense, CloneIsDeepCopy) {
  util::Rng rng(10);
  Dense layer(2, 2, Init::kHe, rng);
  auto clone = layer.clone();
  std::vector<double> zeros(layer.param_count(), 0.0);
  layer.set_params_from(zeros);
  std::vector<double> cloned(clone->param_count());
  clone->copy_grads_to(cloned);  // grads are zero either way
  std::vector<double> params(clone->param_count());
  clone->copy_params_to(params);
  bool any_nonzero = false;
  for (const double p : params) any_nonzero |= (p != 0.0);
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace fedpower::nn
