#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::nn {
namespace {

TEST(MseLoss, ValueAndGradient) {
  MseLoss loss;
  const Matrix prediction{{2.0, 0.0}};
  const Matrix target{{1.0, 0.0}};
  const LossResult r = loss.evaluate(prediction, target);
  // mean over 2 elements of 0.5*e^2: (0.5*1 + 0)/2 = 0.25
  EXPECT_DOUBLE_EQ(r.value, 0.25);
  EXPECT_DOUBLE_EQ(r.grad(0, 0), 0.5);  // e/n = 1/2
  EXPECT_DOUBLE_EQ(r.grad(0, 1), 0.0);
}

TEST(MseLoss, ZeroAtPerfectPrediction) {
  MseLoss loss;
  const Matrix p{{1.0, -2.0}, {0.5, 3.0}};
  const LossResult r = loss.evaluate(p, p);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  for (const double g : r.grad.data()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(HuberLoss, QuadraticInsideDelta) {
  HuberLoss loss(1.0);
  const Matrix p{{0.5}};
  const Matrix t{{0.0}};
  const LossResult r = loss.evaluate(p, t);
  EXPECT_DOUBLE_EQ(r.value, 0.125);      // 0.5 * 0.25
  EXPECT_DOUBLE_EQ(r.grad(0, 0), 0.5);   // e
}

TEST(HuberLoss, LinearOutsideDelta) {
  HuberLoss loss(1.0);
  const Matrix p{{3.0}};
  const Matrix t{{0.0}};
  const LossResult r = loss.evaluate(p, t);
  EXPECT_DOUBLE_EQ(r.value, 2.5);        // delta*(|e| - delta/2) = 1*(3-0.5)
  EXPECT_DOUBLE_EQ(r.grad(0, 0), 1.0);   // clipped at delta
}

TEST(HuberLoss, SymmetricInError) {
  HuberLoss loss(1.0);
  const Matrix t{{0.0}};
  const LossResult pos = loss.evaluate(Matrix{{2.0}}, t);
  const LossResult neg = loss.evaluate(Matrix{{-2.0}}, t);
  EXPECT_DOUBLE_EQ(pos.value, neg.value);
  EXPECT_DOUBLE_EQ(pos.grad(0, 0), -neg.grad(0, 0));
}

TEST(HuberLoss, ContinuousAtDelta) {
  HuberLoss loss(1.0);
  const Matrix t{{0.0}};
  const double just_inside =
      loss.evaluate(Matrix{{1.0 - 1e-9}}, t).value;
  const double just_outside =
      loss.evaluate(Matrix{{1.0 + 1e-9}}, t).value;
  EXPECT_NEAR(just_inside, just_outside, 1e-8);
}

TEST(HuberLoss, CustomDelta) {
  HuberLoss loss(2.0);
  const Matrix t{{0.0}};
  // |e| = 1.5 < delta=2 -> still quadratic.
  EXPECT_DOUBLE_EQ(loss.evaluate(Matrix{{1.5}}, t).value, 0.5 * 2.25);
  EXPECT_DOUBLE_EQ(loss.delta(), 2.0);
}

TEST(MaskedLoss, OnlyActionColumnContributes) {
  HuberLoss loss(1.0);
  const Matrix prediction{{0.5, 9.0, -3.0}};
  const LossResult r = loss.evaluate_masked(prediction, {0}, {0.0});
  EXPECT_DOUBLE_EQ(r.value, 0.125);   // only column 0: 0.5*0.5^2
  EXPECT_DOUBLE_EQ(r.grad(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(r.grad(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(r.grad(0, 2), 0.0);
}

TEST(MaskedLoss, AveragesOverRowsNotElements) {
  MseLoss loss;
  const Matrix prediction{{1.0, 0.0}, {0.0, 2.0}};
  const LossResult r =
      loss.evaluate_masked(prediction, {0, 1}, {0.0, 0.0});
  // Row errors 1 and 2 -> (0.5*1 + 0.5*4)/2 = 1.25
  EXPECT_DOUBLE_EQ(r.value, 1.25);
  EXPECT_DOUBLE_EQ(r.grad(0, 0), 0.5);   // e/rows = 1/2
  EXPECT_DOUBLE_EQ(r.grad(1, 1), 1.0);   // 2/2
}

TEST(MaskedLoss, DifferentActionsPerRow) {
  HuberLoss loss(1.0);
  const Matrix prediction{{1.0, 5.0}, {5.0, 1.0}};
  const LossResult r =
      loss.evaluate_masked(prediction, {0, 1}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  for (const double g : r.grad.data()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(MaskedLoss, HuberClipsLargeRewardErrors) {
  HuberLoss loss(1.0);
  // Reward outliers (e.g. first -1 rewards after a violation) must not
  // explode the gradient: it is clipped to delta/rows.
  const Matrix prediction{{10.0}};
  const LossResult r = loss.evaluate_masked(prediction, {0}, {-1.0});
  EXPECT_DOUBLE_EQ(r.grad(0, 0), 1.0);
}

}  // namespace
}  // namespace fedpower::nn
