#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fedpower::nn {
namespace {

TEST(Sgd, BasicStep) {
  Sgd sgd(0.1);
  std::vector<double> params = {1.0, -1.0};
  sgd.step(params, {1.0, -2.0});
  EXPECT_DOUBLE_EQ(params[0], 0.9);
  EXPECT_DOUBLE_EQ(params[1], -0.8);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd(0.1, 0.9);
  std::vector<double> params = {0.0};
  sgd.step(params, {1.0});   // v=1, p=-0.1
  EXPECT_DOUBLE_EQ(params[0], -0.1);
  sgd.step(params, {1.0});   // v=1.9, p=-0.1-0.19
  EXPECT_NEAR(params[0], -0.29, 1e-12);
}

TEST(Sgd, ResetClearsMomentum) {
  Sgd sgd(0.1, 0.9);
  std::vector<double> params = {0.0};
  sgd.step(params, {1.0});
  sgd.reset();
  params = {0.0};
  sgd.step(params, {1.0});
  EXPECT_DOUBLE_EQ(params[0], -0.1);  // same as first-ever step
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Adam adam(0.01);
  std::vector<double> params = {0.0, 0.0};
  adam.step(params, {1.0, -1000.0});
  EXPECT_NEAR(params[0], -0.01, 1e-6);
  EXPECT_NEAR(params[1], 0.01, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2.
  Adam adam(0.1);
  std::vector<double> params = {0.0};
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> grad = {2.0 * (params[0] - 3.0)};
    adam.step(params, grad);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-3);
}

TEST(Adam, ConvergesFasterThanSgdOnIllConditioned) {
  // f(x, y) = x^2 + 100 y^2 — pathological for plain SGD at usable rates.
  Adam adam(0.1);
  Sgd sgd(0.001);
  std::vector<double> pa = {5.0, 5.0};
  std::vector<double> ps = {5.0, 5.0};
  for (int i = 0; i < 300; ++i) {
    adam.step(pa, {2.0 * pa[0], 200.0 * pa[1]});
    sgd.step(ps, {2.0 * ps[0], 200.0 * ps[1]});
  }
  const double fa = pa[0] * pa[0] + 100.0 * pa[1] * pa[1];
  const double fs = ps[0] * ps[0] + 100.0 * ps[1] * ps[1];
  EXPECT_LT(fa, fs);
}

TEST(Adam, StepCountIncrements) {
  Adam adam(0.01);
  std::vector<double> params = {0.0};
  EXPECT_EQ(adam.step_count(), 0);
  adam.step(params, {1.0});
  adam.step(params, {1.0});
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(Adam, ResetRestartsBiasCorrection) {
  Adam adam(0.01);
  std::vector<double> params = {0.0};
  adam.step(params, {1.0});
  adam.reset();
  EXPECT_EQ(adam.step_count(), 0);
  std::vector<double> fresh = {0.0};
  adam.step(fresh, {1.0});
  EXPECT_NEAR(fresh[0], -0.01, 1e-6);
}

TEST(Adam, ZeroGradientLeavesParamsNearlyFixed) {
  Adam adam(0.01);
  std::vector<double> params = {1.0};
  adam.step(params, {0.0});
  EXPECT_NEAR(params[0], 1.0, 1e-9);
}

TEST(Adam, HandlesResize) {
  // State re-initializes if the parameter vector size changes.
  Adam adam(0.01);
  std::vector<double> small = {0.0};
  adam.step(small, {1.0});
  std::vector<double> large = {0.0, 0.0, 0.0};
  adam.step(large, {1.0, 1.0, 1.0});
  for (const double p : large) EXPECT_NEAR(p, -0.01, 1e-6);
}

}  // namespace
}  // namespace fedpower::nn
