// Parameterized property sweep over the entire SPLASH-2 suite: physical
// invariants that must hold for every application at every operating point.
#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

class AppProperties : public ::testing::TestWithParam<std::string> {
 protected:
  AppProfile app() const { return *splash2_app(GetParam()); }

  static ProcessorConfig quiet() {
    ProcessorConfig config;
    config.sensor_noise_w = 0.0;
    config.workload_jitter = 0.0;
    config.dvfs_transition_us = 0.0;
    return config;
  }
};

TEST_P(AppProperties, PowerIsMonotoneInLevel) {
  double previous = 0.0;
  for (std::size_t level = 0; level < 15; ++level) {
    SingleAppWorkload workload(app());
    Processor proc(quiet(), util::Rng{1});
    proc.set_workload(&workload);
    proc.set_level(level);
    const double power = proc.run_interval(0.5).true_power_w;
    EXPECT_GT(power, previous) << "level " << level;
    previous = power;
  }
}

TEST_P(AppProperties, ThroughputIsMonotoneInLevel) {
  double previous = 0.0;
  for (std::size_t level = 0; level < 15; ++level) {
    SingleAppWorkload workload(app());
    Processor proc(quiet(), util::Rng{2});
    proc.set_workload(&workload);
    proc.set_level(level);
    const double ips = proc.run_interval(0.5).ips;
    EXPECT_GT(ips, previous) << "level " << level;
    previous = ips;
  }
}

TEST_P(AppProperties, ExecutionTimeIsMonotoneInLevel) {
  core::ControllerConfig controller_config;
  core::EvalConfig eval_config;
  eval_config.processor = quiet();
  const core::Evaluator evaluator(controller_config, eval_config);
  double previous = 1e18;
  for (const std::size_t level : {0u, 4u, 9u, 14u}) {
    const auto result = evaluator.run_to_completion(
        [level](const TelemetrySample&) { return level; }, app(), 3);
    ASSERT_TRUE(result.completed) << "level " << level;
    EXPECT_LT(result.exec_time_s, previous) << "level " << level;
    previous = result.exec_time_s;
  }
}

TEST_P(AppProperties, EnergyEqualsPowerTimesTime) {
  SingleAppWorkload workload(app());
  Processor proc(quiet(), util::Rng{4});
  proc.set_workload(&workload);
  proc.set_level(8);
  double energy = 0.0;
  double weighted_power = 0.0;
  for (int i = 0; i < 20; ++i) {
    const TelemetrySample s = proc.run_interval(0.5);
    energy += s.energy_j;
    weighted_power += s.true_power_w * 0.5;
  }
  EXPECT_NEAR(energy, weighted_power, 1e-9);
}

TEST_P(AppProperties, CountersWithinPhysicalBounds) {
  SingleAppWorkload workload(app());
  ProcessorConfig config;  // noise and jitter on — the realistic setting
  Processor proc(config, util::Rng{5});
  proc.set_workload(&workload);
  for (const std::size_t level : {0u, 7u, 14u}) {
    proc.set_level(level);
    for (int i = 0; i < 10; ++i) {
      const TelemetrySample s = proc.run_interval(0.5);
      EXPECT_GT(s.ipc, 0.0);
      EXPECT_LT(s.ipc, 2.0);  // <= 1/base_cpi of the fastest phase
      EXPECT_GE(s.miss_rate, 0.0);
      EXPECT_LE(s.miss_rate, 1.0);
      EXPECT_GE(s.mpki, 0.0);
      EXPECT_LT(s.mpki, 100.0);
      EXPECT_GT(s.true_power_w, 0.05);
      EXPECT_LT(s.true_power_w, 1.6);
    }
  }
}

TEST_P(AppProperties, ConstrainedOptimumIsConsistent) {
  // The best level under the paper reward must be the highest level whose
  // steady-state power stays under the reward's zero-crossing region.
  const rl::PaperReward reward(0.6, 0.05, 1479.0);
  double best_reward = -2.0;
  std::size_t best_level = 0;
  std::vector<double> powers(15);
  for (std::size_t level = 0; level < 15; ++level) {
    SingleAppWorkload workload(app());
    Processor proc(quiet(), util::Rng{6});
    proc.set_workload(&workload);
    proc.set_level(level);
    // Average over several intervals to cover phases.
    double sum = 0.0;
    double r = 0.0;
    for (int i = 0; i < 30; ++i) {
      const TelemetrySample s = proc.run_interval(0.5);
      sum += s.true_power_w;
      r += reward.evaluate(s.freq_mhz, s.true_power_w);
    }
    powers[level] = sum / 30.0;
    if (r / 30.0 > best_reward) {
      best_reward = r / 30.0;
      best_level = level;
    }
  }
  // Sanity on both sides of the optimum.
  EXPECT_LT(powers[best_level], 0.7);
  if (best_level + 1 < 15) {
    EXPECT_GT(powers[best_level + 1], 0.5);
  }
  EXPECT_GT(best_reward, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Splash2, AppProperties,
    ::testing::Values("fft", "lu", "raytrace", "volrend", "water-ns",
                      "water-sp", "ocean", "radix", "fmm", "radiosity",
                      "barnes", "cholesky"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace fedpower::sim
