#include "sim/power_model.hpp"

#include <gtest/gtest.h>

#include "sim/perf_model.hpp"
#include "sim/vf_table.hpp"

namespace fedpower::sim {
namespace {

PhaseProfile busy_phase() { return PhaseProfile{0.7, 10.0, 0.2, 0.85, 1e9}; }

TEST(PowerModel, DynamicPowerFormula) {
  PowerModelParams params;
  params.c_eff_nf = 1.0;
  params.leakage_w_per_v = 0.0;
  params.stall_activity = 0.0;
  PowerModel model(params);
  const VfLevel level{0, 1000.0, 1.0};
  PhaseProfile phase = busy_phase();
  phase.activity = 0.5;
  // P = 1e-9 * 1^2 * 1e9 * 0.5 = 0.5 W at zero stall.
  EXPECT_DOUBLE_EQ(model.dynamic(level, phase, 0.0), 0.5);
}

TEST(PowerModel, LeakageProportionalToVoltage) {
  PowerModel model;
  const VfLevel lo{0, 102.0, 0.8};
  const VfLevel hi{14, 1479.0, 1.1};
  EXPECT_DOUBLE_EQ(model.leakage(lo), 0.136 * 0.8);
  EXPECT_DOUBLE_EQ(model.leakage(hi), 0.136 * 1.1);
}

TEST(PowerModel, TotalIsDynamicPlusLeakage) {
  PowerModel model;
  const VfLevel level{7, 825.6, 0.958};
  const PhaseProfile phase = busy_phase();
  EXPECT_DOUBLE_EQ(model.total(level, phase, 0.2),
                   model.dynamic(level, phase, 0.2) + model.leakage(level));
}

TEST(PowerModel, StallFractionReducesDynamicPower) {
  PowerModel model;
  const VfLevel level{14, 1479.0, 1.1};
  const PhaseProfile phase = busy_phase();
  EXPECT_GT(model.dynamic(level, phase, 0.0),
            model.dynamic(level, phase, 0.7));
}

TEST(PowerModel, FullStallUsesStallActivity) {
  PowerModelParams params;
  params.stall_activity = 0.08;
  PowerModel model(params);
  const VfLevel level{0, 1000.0, 1.0};
  PhaseProfile phase = busy_phase();
  const double expected =
      params.variation * params.c_eff_nf * 1e-9 * 1.0 * 1e9 * 0.08;
  EXPECT_DOUBLE_EQ(model.dynamic(level, phase, 1.0), expected);
}

TEST(PowerModel, PowerMonotoneInFrequencyOnVfCurve) {
  PowerModel model;
  const VfTable table = VfTable::jetson_nano();
  const PhaseProfile phase = busy_phase();
  double previous = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const double p = model.total(table.level(i), phase, 0.1);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

TEST(PowerModel, JetsonCalibrationStraddlesConstraint) {
  // The whole experiment depends on this: at 0.6 W, a compute-bound phase
  // must violate at f_max but fit at a mid frequency, while the idle floor
  // stays well below.
  PowerModel model;
  PerfModel perf;
  const VfTable table = VfTable::jetson_nano();
  PhaseProfile compute{0.65, 14.0, 0.22, 0.86, 1e9};
  const double stall_max =
      perf.evaluate(compute, table.f_max_mhz()).stall_fraction;
  const double p_max = model.total(table.max_level(), compute, stall_max);
  EXPECT_GT(p_max, 0.9);  // severe violation of the 0.6 W budget
  const double stall_mid = perf.evaluate(compute, 825.6).stall_fraction;
  const double p_mid = model.total(table.level(7), compute, stall_mid);
  EXPECT_LT(p_mid, 0.6);
  const double p_min = model.total(table.min_level(), compute, 0.0);
  EXPECT_LT(p_min, 0.25);
}

TEST(PowerModel, MemoryBoundStaysUnderConstraintAtMaxFrequency) {
  PowerModel model;
  PerfModel perf;
  const VfTable table = VfTable::jetson_nano();
  PhaseProfile memory{0.85, 62.0, 0.58, 0.55, 1e9};
  const double stall =
      perf.evaluate(memory, table.f_max_mhz()).stall_fraction;
  EXPECT_LT(model.total(table.max_level(), memory, stall), 0.6);
}

TEST(PowerModel, ProcessVariationScalesBothComponents) {
  PowerModelParams nominal;
  PowerModelParams fast = nominal;
  fast.variation = 1.05;
  PowerModel m_nom(nominal);
  PowerModel m_fast(fast);
  const VfLevel level{7, 825.6, 0.958};
  const PhaseProfile phase = busy_phase();
  EXPECT_NEAR(m_fast.total(level, phase, 0.1),
              1.05 * m_nom.total(level, phase, 0.1), 1e-12);
}

TEST(PowerModel, VoltageEntersQuadratically) {
  PowerModelParams params;
  params.leakage_w_per_v = 0.0;
  PowerModel model(params);
  const PhaseProfile phase = busy_phase();
  const VfLevel v1{0, 1000.0, 1.0};
  const VfLevel v2{0, 1000.0, 2.0};
  EXPECT_NEAR(model.dynamic(v2, phase, 0.0),
              4.0 * model.dynamic(v1, phase, 0.0), 1e-12);
}

}  // namespace
}  // namespace fedpower::sim
