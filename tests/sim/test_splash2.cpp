#include "sim/splash2.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/vf_table.hpp"

namespace fedpower::sim {
namespace {

TEST(Splash2, SuiteHasTwelveApps) {
  EXPECT_EQ(splash2_suite().size(), 12u);
}

TEST(Splash2, CanonicalNamesPresent) {
  const std::set<std::string> expected = {
      "fft",  "lu",    "raytrace", "volrend",   "water-ns", "water-sp",
      "ocean", "radix", "fmm",     "radiosity", "barnes",   "cholesky"};
  std::set<std::string> actual;
  for (const auto& app : splash2_suite()) actual.insert(app.name);
  EXPECT_EQ(actual, expected);
}

TEST(Splash2, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& app : splash2_suite()) {
    EXPECT_TRUE(names.insert(app.name).second) << app.name;
  }
}

TEST(Splash2, LookupByName) {
  const auto app = splash2_app("radix");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(app->name, "radix");
}

TEST(Splash2, LookupUnknownReturnsNullopt) {
  EXPECT_FALSE(splash2_app("doom").has_value());
}

TEST(Splash2, NamesMatchSuiteOrder) {
  const auto suite = splash2_suite();
  const auto names = splash2_names();
  ASSERT_EQ(names.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(names[i], suite[i].name);
}

TEST(Splash2, AllProfilesValidate) {
  for (const auto& app : splash2_suite()) validate(app);
}

TEST(Splash2, RadixAndOceanAreMemoryBound) {
  // The Fig. 3 collapse depends on it: the scenario-2 device-B training
  // apps must run safely at f_max.
  PerfModel perf;
  PowerModel power;
  const VfTable table = VfTable::jetson_nano();
  for (const char* name : {"radix", "ocean"}) {
    const auto app = splash2_app(name);
    ASSERT_TRUE(app.has_value());
    for (const auto& phase : app->phases) {
      const double stall =
          perf.evaluate(phase, table.f_max_mhz()).stall_fraction;
      EXPECT_LT(power.total(table.max_level(), phase, stall), 0.6)
          << name << " must stay under P_crit at f_max";
    }
  }
}

TEST(Splash2, WaterAndLuViolateAtMaxFrequency) {
  PerfModel perf;
  PowerModel power;
  const VfTable table = VfTable::jetson_nano();
  for (const char* name : {"lu", "water-ns", "water-sp"}) {
    const auto app = splash2_app(name);
    ASSERT_TRUE(app.has_value());
    double worst = 0.0;
    for (const auto& phase : app->phases) {
      const double stall =
          perf.evaluate(phase, table.f_max_mhz()).stall_fraction;
      worst = std::max(worst,
                       power.total(table.max_level(), phase, stall));
    }
    EXPECT_GT(worst, 0.7) << name << " must violate P_crit+2k at f_max";
  }
}

TEST(Splash2, SuiteSpansComputeToMemorySpectrum) {
  double min_apki = 1e9;
  double max_apki = 0.0;
  for (const auto& app : splash2_suite()) {
    min_apki = std::min(min_apki, app.weighted_llc_apki());
    max_apki = std::max(max_apki, app.weighted_llc_apki());
  }
  EXPECT_LT(min_apki, 15.0);
  EXPECT_GT(max_apki, 55.0);
}

TEST(Splash2, SeveralAppsHaveMultiplePhases) {
  std::size_t multi_phase = 0;
  for (const auto& app : splash2_suite())
    if (app.phases.size() >= 2) ++multi_phase;
  EXPECT_EQ(multi_phase, 12u);  // every app has phased behaviour
}

TEST(Splash2, ExecutionTimesAreTensOfSeconds) {
  // At the constrained-optimal frequency the paper's Table III execution
  // times are 24..30 s; our profiles must land in the same regime.
  PerfModel perf;
  for (const auto& app : splash2_suite()) {
    double t_at_mid = 0.0;  // 825.6 MHz as a representative frequency
    for (const auto& phase : app.phases)
      t_at_mid += phase.instructions / perf.evaluate(phase, 825.6).ips;
    EXPECT_GT(t_at_mid, 8.0) << app.name;
    EXPECT_LT(t_at_mid, 80.0) << app.name;
  }
}

TEST(Splash2, SuiteIsDeterministic) {
  const auto a = splash2_suite();
  const auto b = splash2_suite();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].total_instructions(), b[i].total_instructions());
  }
}

}  // namespace
}  // namespace fedpower::sim
