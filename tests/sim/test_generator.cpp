#include "sim/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/vf_table.hpp"

namespace fedpower::sim {
namespace {

TEST(Generator, ProducesValidApps) {
  util::Rng rng(1);
  const AppGeneratorParams params;
  for (int i = 0; i < 50; ++i) {
    const AppProfile app =
        generate_app("synth-" + std::to_string(i), params, rng);
    validate(app);  // must not abort
    EXPECT_GE(app.phases.size(), params.min_phases);
    EXPECT_LE(app.phases.size(), params.max_phases);
  }
}

TEST(Generator, RespectsParameterRanges) {
  util::Rng rng(2);
  AppGeneratorParams params;
  params.base_cpi_lo = 0.7;
  params.base_cpi_hi = 0.8;
  params.apki_lo = 20.0;
  params.apki_hi = 30.0;
  params.miss_rate_lo = 0.2;
  params.miss_rate_hi = 0.3;
  for (int i = 0; i < 20; ++i) {
    const AppProfile app = generate_app("x", params, rng);
    for (const PhaseProfile& phase : app.phases) {
      EXPECT_GE(phase.base_cpi, 0.7);
      EXPECT_LE(phase.base_cpi, 0.8);
      EXPECT_GE(phase.llc_apki, 20.0);
      EXPECT_LE(phase.llc_apki, 30.0);
      EXPECT_GE(phase.llc_miss_rate, 0.2);
      EXPECT_LE(phase.llc_miss_rate, 0.3);
      EXPECT_GE(phase.activity, params.activity_lo);
      EXPECT_LE(phase.activity, params.activity_hi);
    }
  }
}

TEST(Generator, DeterministicGivenSeed) {
  const AppGeneratorParams params;
  util::Rng a(7);
  util::Rng b(7);
  const AppProfile app_a = generate_app("a", params, a);
  const AppProfile app_b = generate_app("a", params, b);
  ASSERT_EQ(app_a.phases.size(), app_b.phases.size());
  for (std::size_t i = 0; i < app_a.phases.size(); ++i)
    EXPECT_DOUBLE_EQ(app_a.phases[i].llc_apki, app_b.phases[i].llc_apki);
}

TEST(Generator, SuiteNamesAreUniqueAndPrefixed) {
  util::Rng rng(3);
  const auto suite = generate_suite(10, "synthetic", {}, rng);
  ASSERT_EQ(suite.size(), 10u);
  std::set<std::string> names;
  for (const auto& app : suite) {
    EXPECT_TRUE(app.name.starts_with("synthetic-"));
    EXPECT_TRUE(names.insert(app.name).second);
  }
}

TEST(Generator, MemoryActivityCouplingIsNegative) {
  // With full coupling, high-traffic phases must have lower activity.
  util::Rng rng(4);
  AppGeneratorParams params;
  params.memory_activity_coupling = 1.0;
  params.min_phases = 1;
  params.max_phases = 1;
  double high_traffic_activity = 0.0;
  double low_traffic_activity = 0.0;
  int high = 0;
  int low = 0;
  for (int i = 0; i < 400; ++i) {
    const AppProfile app = generate_app("x", params, rng);
    const PhaseProfile& phase = app.phases.front();
    if (phase.llc_apki > 55.0) {
      high_traffic_activity += phase.activity;
      ++high;
    } else if (phase.llc_apki < 30.0) {
      low_traffic_activity += phase.activity;
      ++low;
    }
  }
  ASSERT_GT(high, 10);
  ASSERT_GT(low, 10);
  EXPECT_LT(high_traffic_activity / high, low_traffic_activity / low);
}

TEST(Generator, GeneratedSuiteSpansThePowerSpectrum) {
  // The generated population must include both budget-safe and
  // budget-violating apps at f_max, like the real suite does.
  util::Rng rng(5);
  const auto suite = generate_suite(120, "s", {}, rng);
  PerfModel perf;
  PowerModel power;
  const VfTable table = VfTable::jetson_nano();
  int safe = 0;
  int violating = 0;
  for (const auto& app : suite) {
    double t = 0.0;
    double e = 0.0;
    for (const auto& phase : app.phases) {
      const PhasePerf p = perf.evaluate(phase, table.f_max_mhz());
      const double dt = phase.instructions / p.ips;
      t += dt;
      e += power.total(table.max_level(), phase, p.stall_fraction) * dt;
    }
    ((e / t) <= 0.6 ? safe : violating) += 1;
  }
  // Fully budget-safe apps need every phase memory-bound, so they are the
  // rarer kind — but both kinds must exist in a 120-app population.
  EXPECT_GE(safe, 2);
  EXPECT_GT(violating, 20);
}

TEST(GeneratorDeathTest, RejectsBadRanges) {
  util::Rng rng(6);
  AppGeneratorParams params;
  params.min_phases = 0;
  EXPECT_DEATH(generate_app("x", params, rng), "precondition");
  params = {};
  params.miss_rate_hi = 1.5;
  EXPECT_DEATH(generate_app("x", params, rng), "precondition");
}

}  // namespace
}  // namespace fedpower::sim
