#include "sim/workload_extra.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

std::vector<AppProfile> three_apps() {
  return {*splash2_app("fft"), *splash2_app("lu"), *splash2_app("radix")};
}

TEST(ScriptedWorkload, FollowsScriptAndLoops) {
  ScriptedWorkload workload(three_apps(), {2, 0, 0, 1});
  util::Rng rng(1);
  EXPECT_EQ(workload.next(rng).name, "radix");
  EXPECT_EQ(workload.next(rng).name, "fft");
  EXPECT_EQ(workload.next(rng).name, "fft");
  EXPECT_EQ(workload.next(rng).name, "lu");
  EXPECT_EQ(workload.next(rng).name, "radix");  // wrapped
}

TEST(ScriptedWorkload, PositionTracks) {
  ScriptedWorkload workload(three_apps(), {0, 1});
  util::Rng rng(2);
  EXPECT_EQ(workload.position(), 0u);
  workload.next(rng);
  EXPECT_EQ(workload.position(), 1u);
  workload.next(rng);
  EXPECT_EQ(workload.position(), 0u);
}

TEST(ScriptedWorkload, IgnoresRngEntirely) {
  ScriptedWorkload w1(three_apps(), {0, 2, 1});
  ScriptedWorkload w2(three_apps(), {0, 2, 1});
  util::Rng r1(111);
  util::Rng r2(999);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(w1.next(r1).name, w2.next(r2).name);
}

TEST(ScriptedWorkloadDeathTest, RejectsOutOfRangeIndex) {
  EXPECT_DEATH(ScriptedWorkload(three_apps(), {0, 3}), "precondition");
}

TEST(ScriptedWorkloadDeathTest, RejectsEmptyScript) {
  EXPECT_DEATH(ScriptedWorkload(three_apps(), {}), "precondition");
}

TEST(WeightedWorkload, FollowsWeights) {
  WeightedWorkload workload(three_apps(), {8.0, 1.0, 1.0});
  util::Rng rng(3);
  std::map<std::string, int> counts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[workload.next(rng).name];
  EXPECT_NEAR(counts["fft"] / static_cast<double>(n), 0.8, 0.02);
  EXPECT_NEAR(counts["lu"] / static_cast<double>(n), 0.1, 0.02);
}

TEST(WeightedWorkload, ZeroWeightAppNeverRuns) {
  WeightedWorkload workload(three_apps(), {1.0, 0.0, 1.0});
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) EXPECT_NE(workload.next(rng).name, "lu");
}

TEST(WeightedWorkloadDeathTest, RejectsMismatchedWeights) {
  EXPECT_DEATH(WeightedWorkload(three_apps(), {1.0}), "precondition");
}

TEST(WeightedWorkloadDeathTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(WeightedWorkload(three_apps(), {0.0, 0.0, 0.0}),
               "precondition");
}

TEST(WeightedWorkloadDeathTest, RejectsNegativeWeights) {
  EXPECT_DEATH(WeightedWorkload(three_apps(), {1.0, -1.0, 1.0}),
               "precondition");
}

}  // namespace
}  // namespace fedpower::sim
