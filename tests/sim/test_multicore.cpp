#include "sim/multicore.hpp"

#include <gtest/gtest.h>

#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

MulticoreConfig quiet_4core() {
  MulticoreConfig config = MulticoreConfig::jetson_nano_4core();
  config.sensor_noise_w = 0.0;
  config.core_config.workload_jitter = 0.0;
  config.core_config.dvfs_transition_us = 0.0;
  return config;
}

TEST(Multicore, FourCoresByDefault) {
  MulticoreProcessor proc(MulticoreConfig::jetson_nano_4core(),
                          util::Rng{1});
  EXPECT_EQ(proc.core_count(), 4u);
  EXPECT_EQ(proc.vf_table().size(), 15u);
}

TEST(Multicore, SharedClockReachesEveryCore) {
  MulticoreProcessor proc(quiet_4core(), util::Rng{2});
  proc.set_level(9);
  proc.run_interval(0.5);
  for (std::size_t c = 0; c < proc.core_count(); ++c) {
    EXPECT_EQ(proc.core_sample(c).level, 9u);
    EXPECT_DOUBLE_EQ(proc.core_sample(c).freq_mhz, 1036.8);
  }
}

TEST(Multicore, OneBusyCoreMatchesSingleCoreCalibration) {
  // One app + three idle cores should consume roughly what the single-core
  // Processor consumes for the same app (rail leakage was split 4 ways and
  // the idle cores add only a little idle dynamic power).
  SingleAppWorkload workload(*splash2_app("lu"));
  MulticoreProcessor multi(quiet_4core(), util::Rng{3});
  multi.set_workload(0, &workload);
  multi.set_level(7);
  const double p_multi = multi.run_interval(0.5).true_power_w;

  ProcessorConfig single_config;
  single_config.sensor_noise_w = 0.0;
  single_config.workload_jitter = 0.0;
  single_config.dvfs_transition_us = 0.0;
  Processor single(single_config, util::Rng{4});
  SingleAppWorkload workload2(*splash2_app("lu"));
  single.set_workload(&workload2);
  single.set_level(7);
  const double p_single = single.run_interval(0.5).true_power_w;

  EXPECT_NEAR(p_multi, p_single, 0.08);
}

TEST(Multicore, PowerSumsAcrossBusyCores) {
  SingleAppWorkload w0(*splash2_app("lu"));
  SingleAppWorkload w1(*splash2_app("lu"));
  MulticoreProcessor one_busy(quiet_4core(), util::Rng{5});
  one_busy.set_workload(0, &w0);
  one_busy.set_level(7);
  const double p1 = one_busy.run_interval(0.5).true_power_w;

  MulticoreProcessor two_busy(quiet_4core(), util::Rng{5});
  SingleAppWorkload w2(*splash2_app("lu"));
  SingleAppWorkload w3(*splash2_app("lu"));
  two_busy.set_workload(0, &w2);
  two_busy.set_workload(1, &w3);
  two_busy.set_level(7);
  const double p2 = two_busy.run_interval(0.5).true_power_w;

  EXPECT_GT(p2, p1 + 0.1);  // the second core adds real dynamic power
}

TEST(Multicore, InstructionsAggregateOverCores) {
  SingleAppWorkload w0(*splash2_app("water-ns"));
  SingleAppWorkload w1(*splash2_app("water-ns"));
  MulticoreProcessor proc(quiet_4core(), util::Rng{6});
  proc.set_workload(0, &w0);
  proc.set_workload(1, &w1);
  proc.set_level(10);
  const TelemetrySample rail = proc.run_interval(0.5);
  const double core0 = proc.core_sample(0).instructions;
  const double core1 = proc.core_sample(1).instructions;
  EXPECT_GT(core0, 0.0);
  EXPECT_GT(core1, 0.0);
  // Rail instructions = busy cores + the two idle cores' trickle.
  EXPECT_GE(rail.instructions, core0 + core1);
}

TEST(Multicore, RailIpcReflectsIdleCores) {
  // With one busy core out of four, rail IPC (instr / (4 * f * dt)) is
  // about a quarter of the busy core's own IPC.
  SingleAppWorkload workload(*splash2_app("lu"));
  MulticoreProcessor proc(quiet_4core(), util::Rng{7});
  proc.set_workload(0, &workload);
  proc.set_level(10);
  const TelemetrySample rail = proc.run_interval(0.5);
  const double busy_ipc = proc.core_sample(0).ipc;
  EXPECT_NEAR(rail.ipc, busy_ipc / 4.0, 0.05);
}

TEST(Multicore, CacheStatsAggregate) {
  SingleAppWorkload w0(*splash2_app("radix"));   // high miss rate
  SingleAppWorkload w1(*splash2_app("water-ns"));  // low traffic
  MulticoreProcessor proc(quiet_4core(), util::Rng{8});
  proc.set_workload(0, &w0);
  proc.set_workload(1, &w1);
  proc.set_level(7);
  const TelemetrySample rail = proc.run_interval(0.5);
  const double radix_mr = proc.core_sample(0).miss_rate;
  const double water_mr = proc.core_sample(1).miss_rate;
  EXPECT_GT(rail.miss_rate, std::min(radix_mr, water_mr));
  EXPECT_LT(rail.miss_rate, std::max(radix_mr, water_mr));
  EXPECT_GT(rail.mpki, 0.0);
}

TEST(Multicore, PerCoreCompletionTracking) {
  AppProfile tiny = splash2_app("fft")->scaled(0.001);
  SingleAppWorkload workload(tiny);
  MulticoreProcessor proc(quiet_4core(), util::Rng{9});
  proc.set_workload(2, &workload);
  proc.set_level(14);
  proc.run_interval(0.5);
  EXPECT_FALSE(proc.completed_runs(2).empty());
  EXPECT_TRUE(proc.completed_runs(0).empty());
}

TEST(Multicore, RailSensorNoiseAppliedOnce) {
  MulticoreConfig config = quiet_4core();
  config.sensor_noise_w = 0.05;
  SingleAppWorkload workload(*splash2_app("fft"));
  MulticoreProcessor proc(config, util::Rng{10});
  proc.set_workload(0, &workload);
  proc.set_level(7);
  bool saw_noise = false;
  for (int i = 0; i < 20; ++i) {
    const TelemetrySample s = proc.run_interval(0.1);
    if (std::abs(s.power_w - s.true_power_w) > 1e-9) saw_noise = true;
    // Per-core samples stay noise-free.
    EXPECT_DOUBLE_EQ(proc.core_sample(0).power_w,
                     proc.core_sample(0).true_power_w);
  }
  EXPECT_TRUE(saw_noise);
}

TEST(Multicore, FourBusyComputeCoresBlowThePaperBudget) {
  // The shared-clock consequence: at a level that is safe for one core,
  // four busy compute cores far exceed the single-core 0.6 W budget.
  std::vector<std::unique_ptr<SingleAppWorkload>> workloads;
  MulticoreProcessor proc(quiet_4core(), util::Rng{11});
  for (std::size_t c = 0; c < 4; ++c) {
    workloads.push_back(
        std::make_unique<SingleAppWorkload>(*splash2_app("lu")));
    proc.set_workload(c, workloads.back().get());
  }
  proc.set_level(7);  // safe for one core (~0.55 W)
  EXPECT_GT(proc.run_interval(0.5).true_power_w, 1.2);
}

TEST(MulticoreDeathTest, BoundsChecked) {
  MulticoreProcessor proc(quiet_4core(), util::Rng{12});
  EXPECT_DEATH(proc.set_workload(4, nullptr), "precondition");
  EXPECT_DEATH(proc.set_level(15), "precondition");
  EXPECT_DEATH(proc.core_sample(4), "precondition");
}

}  // namespace
}  // namespace fedpower::sim
