#include "sim/governor.hpp"

#include <gtest/gtest.h>

#include "sim/processor.hpp"
#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

TelemetrySample sample_with(double power_w, double ipc) {
  TelemetrySample s;
  s.power_w = power_w;
  s.true_power_w = power_w;
  s.ipc = ipc;
  return s;
}

TEST(PerformanceGovernor, AlwaysMax) {
  PerformanceGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(governor.select_level(sample_with(0.1, 0.5), table), 14u);
  EXPECT_EQ(governor.select_level(sample_with(2.0, 1.5), table), 14u);
}

TEST(PowersaveGovernor, AlwaysMin) {
  PowersaveGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(governor.select_level(sample_with(0.1, 0.5), table), 0u);
}

TEST(UserspaceGovernor, FixedLevel) {
  UserspaceGovernor governor(7);
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(governor.select_level(sample_with(0.5, 1.0), table), 7u);
}

TEST(UserspaceGovernor, ClampsToTableSize) {
  UserspaceGovernor governor(99);
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(governor.select_level(sample_with(0.5, 1.0), table), 14u);
}

TEST(OndemandGovernor, FullyLoadedCoreGoesToMax) {
  OndemandGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  std::size_t level = 0;
  // Constant IPC == reference -> load 1.0 -> jump to max.
  for (int i = 0; i < 5; ++i)
    level = governor.select_level(sample_with(0.5, 1.2), table);
  EXPECT_EQ(level, 14u);
}

TEST(OndemandGovernor, StepsDownWhenLoadCollapses) {
  OndemandGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  for (int i = 0; i < 3; ++i)
    governor.select_level(sample_with(0.5, 1.2), table);
  // Load drops to ~8% of reference -> below down-threshold.
  std::size_t level = governor.select_level(sample_with(0.2, 0.1), table);
  EXPECT_LT(level, 14u);
}

TEST(OndemandGovernor, ResetRestoresInitialState) {
  OndemandGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  for (int i = 0; i < 3; ++i)
    governor.select_level(sample_with(0.5, 1.2), table);
  governor.reset();
  // After reset the first low-IPC sample sets the reference; load = 1 -> max.
  EXPECT_EQ(governor.select_level(sample_with(0.1, 0.05), table), 14u);
}

TEST(PowerCapGovernor, StartsMidTable) {
  PowerCapGovernor governor(0.6);
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(governor.select_level(sample_with(0.3, 1.0), table), 7u);
}

TEST(PowerCapGovernor, StepsDownOnViolation) {
  PowerCapGovernor governor(0.6);
  const VfTable table = VfTable::jetson_nano();
  governor.select_level(sample_with(0.3, 1.0), table);  // init -> 7
  EXPECT_EQ(governor.select_level(sample_with(0.9, 1.0), table), 6u);
  EXPECT_EQ(governor.select_level(sample_with(0.9, 1.0), table), 5u);
}

TEST(PowerCapGovernor, StepsUpWithHeadroom) {
  PowerCapGovernor governor(0.6, 0.05);
  const VfTable table = VfTable::jetson_nano();
  governor.select_level(sample_with(0.3, 1.0), table);  // init -> 7
  EXPECT_EQ(governor.select_level(sample_with(0.3, 1.0), table), 8u);
}

TEST(PowerCapGovernor, HoldsInsideHysteresisBand) {
  PowerCapGovernor governor(0.6, 0.05);
  const VfTable table = VfTable::jetson_nano();
  governor.select_level(sample_with(0.57, 1.0), table);  // init -> 7
  EXPECT_EQ(governor.select_level(sample_with(0.57, 1.0), table), 7u);
  EXPECT_EQ(governor.select_level(sample_with(0.57, 1.0), table), 7u);
}

TEST(PowerCapGovernor, SaturatesAtTableEnds) {
  PowerCapGovernor governor(0.6);
  const VfTable table = VfTable::jetson_nano();
  governor.select_level(sample_with(0.3, 1.0), table);
  for (int i = 0; i < 30; ++i)
    governor.select_level(sample_with(2.0, 1.0), table);
  EXPECT_EQ(governor.select_level(sample_with(2.0, 1.0), table), 0u);
  for (int i = 0; i < 30; ++i)
    governor.select_level(sample_with(0.1, 1.0), table);
  EXPECT_EQ(governor.select_level(sample_with(0.1, 1.0), table), 14u);
}

TEST(PowerCapGovernor, KeepsComputeAppNearBudgetOnProcessor) {
  // Closed loop: the reactive controller should keep lu near but mostly
  // under the cap once settled.
  ProcessorConfig config;
  config.sensor_noise_w = 0.0;
  config.workload_jitter = 0.0;
  SingleAppWorkload workload(*splash2_app("lu"));
  Processor proc(config, util::Rng{1});
  proc.set_workload(&workload);
  PowerCapGovernor governor(0.6, 0.05);
  TelemetrySample sample = proc.run_interval(0.5);
  double settled_power = 0.0;
  for (int i = 0; i < 60; ++i) {
    proc.set_level(governor.select_level(sample, proc.vf_table()));
    sample = proc.run_interval(0.5);
    if (i >= 40) settled_power += sample.true_power_w / 20.0;
  }
  EXPECT_GT(settled_power, 0.35);
  EXPECT_LT(settled_power, 0.68);
}

}  // namespace
}  // namespace fedpower::sim
