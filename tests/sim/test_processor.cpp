#include "sim/processor.hpp"

#include <gtest/gtest.h>

#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

ProcessorConfig quiet_config() {
  ProcessorConfig config;
  config.sensor_noise_w = 0.0;
  config.workload_jitter = 0.0;
  config.dvfs_transition_us = 0.0;
  return config;
}

TEST(Processor, IdleWithoutWorkload) {
  Processor proc(quiet_config(), util::Rng{1});
  proc.set_level(0);
  const TelemetrySample sample = proc.run_interval(0.5);
  EXPECT_EQ(sample.app_name, "<idle>");
  EXPECT_LT(sample.true_power_w, 0.2);
  EXPECT_GT(sample.instructions, 0.0);
}

TEST(Processor, TimeAdvancesByInterval) {
  Processor proc(quiet_config(), util::Rng{2});
  EXPECT_DOUBLE_EQ(proc.time_s(), 0.0);
  proc.run_interval(0.5);
  proc.run_interval(0.25);
  EXPECT_DOUBLE_EQ(proc.time_s(), 0.75);
}

TEST(Processor, TelemetryReflectsSelectedLevel) {
  Processor proc(quiet_config(), util::Rng{3});
  SingleAppWorkload workload(*splash2_app("fft"));
  proc.set_workload(&workload);
  proc.set_level(7);
  const TelemetrySample sample = proc.run_interval(0.5);
  EXPECT_EQ(sample.level, 7u);
  EXPECT_DOUBLE_EQ(sample.freq_mhz, 825.6);
  EXPECT_NEAR(sample.voltage_v, 0.958, 0.01);
}

TEST(Processor, PowerIncreasesWithFrequency) {
  SingleAppWorkload workload(*splash2_app("lu"));
  Processor proc(quiet_config(), util::Rng{4});
  proc.set_workload(&workload);
  proc.set_level(0);
  const double p_low = proc.run_interval(0.5).true_power_w;
  proc.set_level(14);
  const double p_high = proc.run_interval(0.5).true_power_w;
  EXPECT_GT(p_high, 2.0 * p_low);
}

TEST(Processor, ComputeAppViolatesBudgetAtMaxFreq) {
  SingleAppWorkload workload(*splash2_app("water-ns"));
  Processor proc(quiet_config(), util::Rng{5});
  proc.set_workload(&workload);
  proc.set_level(14);
  EXPECT_GT(proc.run_interval(0.5).true_power_w, 0.9);
}

TEST(Processor, MemoryAppStaysUnderBudgetAtMaxFreq) {
  SingleAppWorkload workload(*splash2_app("radix"));
  Processor proc(quiet_config(), util::Rng{6});
  proc.set_workload(&workload);
  proc.set_level(14);
  EXPECT_LT(proc.run_interval(0.5).true_power_w, 0.6);
}

TEST(Processor, CountersAreConsistent) {
  SingleAppWorkload workload(*splash2_app("barnes"));
  Processor proc(quiet_config(), util::Rng{7});
  proc.set_workload(&workload);
  proc.set_level(10);
  const TelemetrySample s = proc.run_interval(0.5);
  EXPECT_NEAR(s.ipc, s.instructions / s.cycles, 1e-12);
  EXPECT_NEAR(s.ips, s.instructions / 0.5, 1e-6);
  EXPECT_GT(s.miss_rate, 0.0);
  EXPECT_LT(s.miss_rate, 1.0);
  EXPECT_GT(s.mpki, 0.0);
  EXPECT_NEAR(s.energy_j, s.true_power_w * 0.5, 1e-9);
}

TEST(Processor, AppRunsToCompletionAndIsRecorded) {
  AppProfile tiny = splash2_app("fft")->scaled(0.001);  // ~25 ms of work
  SingleAppWorkload workload(tiny);
  Processor proc(quiet_config(), util::Rng{8});
  proc.set_workload(&workload);
  proc.set_level(14);
  proc.run_interval(0.5);
  ASSERT_FALSE(proc.completed_runs().empty());
  const AppExecution& done = proc.completed_runs().front();
  EXPECT_EQ(done.name, "fft");
  EXPECT_GT(done.exec_time_s, 0.0);
  EXPECT_LT(done.exec_time_s, 0.5);
  EXPECT_NEAR(done.instructions, tiny.total_instructions(),
              tiny.total_instructions() * 1e-6);
  EXPECT_NEAR(done.avg_ips, done.instructions / done.exec_time_s, 1.0);
}

TEST(Processor, BackToBackAppsWithinOneInterval) {
  AppProfile tiny = splash2_app("lu")->scaled(0.0005);
  SingleAppWorkload workload(tiny);
  Processor proc(quiet_config(), util::Rng{9});
  proc.set_workload(&workload);
  proc.set_level(14);
  proc.run_interval(0.5);
  // Several instances of the tiny app must have completed.
  EXPECT_GT(proc.completed_runs().size(), 3u);
}

TEST(Processor, ExecTimeMatchesAnalyticPrediction) {
  // Single-phase app, no jitter: exec time = instructions / ips(f).
  AppProfile app{"single", {PhaseProfile{1.0, 0.0, 0.0, 0.5, 5e8}}};
  SingleAppWorkload workload(app);
  Processor proc(quiet_config(), util::Rng{10});
  proc.set_workload(&workload);
  proc.set_level(9);  // 1036.8 MHz -> ips = 1.0368e9, t = 0.482 s
  proc.run_interval(0.5);
  ASSERT_FALSE(proc.completed_runs().empty());
  EXPECT_NEAR(proc.completed_runs().front().exec_time_s, 5e8 / 1.0368e9,
              1e-6);
}

TEST(Processor, ClearCompletedRuns) {
  AppProfile tiny = splash2_app("fft")->scaled(0.001);
  SingleAppWorkload workload(tiny);
  Processor proc(quiet_config(), util::Rng{11});
  proc.set_workload(&workload);
  proc.set_level(14);
  proc.run_interval(0.5);
  EXPECT_FALSE(proc.completed_runs().empty());
  proc.clear_completed_runs();
  EXPECT_TRUE(proc.completed_runs().empty());
}

TEST(Processor, SensorNoiseAffectsMeasuredNotTruePower) {
  ProcessorConfig config = quiet_config();
  config.sensor_noise_w = 0.05;
  SingleAppWorkload workload(*splash2_app("fft"));
  Processor proc(config, util::Rng{12});
  proc.set_workload(&workload);
  proc.set_level(7);
  double max_dev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const TelemetrySample s = proc.run_interval(0.1);
    max_dev = std::max(max_dev, std::abs(s.power_w - s.true_power_w));
  }
  EXPECT_GT(max_dev, 0.01);   // noise present
  EXPECT_LT(max_dev, 0.5);    // but bounded
}

TEST(Processor, MeasuredPowerNeverNegative) {
  ProcessorConfig config = quiet_config();
  config.sensor_noise_w = 0.5;  // absurd noise to hit the clamp
  Processor proc(config, util::Rng{13});
  proc.set_level(0);
  for (int i = 0; i < 100; ++i)
    EXPECT_GE(proc.run_interval(0.1).power_w, 0.0);
}

TEST(Processor, WorkloadJitterPerturbsCounters) {
  ProcessorConfig config = quiet_config();
  config.workload_jitter = 0.05;
  SingleAppWorkload workload(*splash2_app("ocean"));
  Processor proc(config, util::Rng{14});
  proc.set_workload(&workload);
  proc.set_level(7);
  std::vector<double> miss_rates;
  for (int i = 0; i < 20; ++i)
    miss_rates.push_back(proc.run_interval(0.1).miss_rate);
  double lo = miss_rates[0];
  double hi = miss_rates[0];
  for (const double m : miss_rates) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 1e-4);
}

TEST(Processor, DvfsTransitionCostsTime) {
  ProcessorConfig with_cost = quiet_config();
  with_cost.dvfs_transition_us = 1000.0;  // exaggerated 1 ms
  SingleAppWorkload w1(*splash2_app("lu"));
  SingleAppWorkload w2(*splash2_app("lu"));
  Processor switching(with_cost, util::Rng{15});
  Processor steady(with_cost, util::Rng{15});
  switching.set_workload(&w1);
  steady.set_workload(&w2);
  steady.set_level(10);
  double instr_switching = 0.0;
  double instr_steady = 0.0;
  for (int i = 0; i < 20; ++i) {
    switching.set_level(i % 2 == 0 ? 10 : 9);
    instr_switching += switching.run_interval(0.1).instructions;
    steady.set_level(10);
    instr_steady += steady.run_interval(0.1).instructions;
  }
  EXPECT_LT(instr_switching, instr_steady);
}

TEST(Processor, ThermalModelHeatsUpUnderLoad) {
  ProcessorConfig config = quiet_config();
  config.enable_thermal = true;
  SingleAppWorkload workload(*splash2_app("water-ns"));
  Processor proc(config, util::Rng{16});
  proc.set_workload(&workload);
  proc.set_level(14);
  const double t0 = proc.temperature_c();
  for (int i = 0; i < 100; ++i) proc.run_interval(0.5);
  EXPECT_GT(proc.temperature_c(), t0 + 5.0);
}

TEST(Processor, ThermalLeakageRaisesPower) {
  ProcessorConfig hot = quiet_config();
  hot.enable_thermal = true;
  ProcessorConfig cold = quiet_config();
  SingleAppWorkload w1(*splash2_app("water-ns"));
  SingleAppWorkload w2(*splash2_app("water-ns"));
  Processor proc_hot(hot, util::Rng{17});
  Processor proc_cold(cold, util::Rng{17});
  proc_hot.set_workload(&w1);
  proc_cold.set_workload(&w2);
  proc_hot.set_level(14);
  proc_cold.set_level(14);
  double p_hot = 0.0;
  double p_cold = 0.0;
  for (int i = 0; i < 200; ++i) {
    p_hot = proc_hot.run_interval(0.5).true_power_w;
    p_cold = proc_cold.run_interval(0.5).true_power_w;
  }
  EXPECT_GT(p_hot, p_cold);
}

TEST(Processor, ResetAppDropsInFlightRun) {
  SingleAppWorkload workload(*splash2_app("fft"));
  Processor proc(quiet_config(), util::Rng{18});
  proc.set_workload(&workload);
  proc.set_level(7);
  proc.run_interval(0.5);
  EXPECT_EQ(proc.current_app_name(), "fft");
  proc.reset_app();
  EXPECT_EQ(proc.current_app_name(), "<idle>");
}

TEST(Processor, DeterministicGivenSeed) {
  for (int repeat = 0; repeat < 2; ++repeat) {
    ProcessorConfig config;  // noise + jitter enabled
    SingleAppWorkload workload(*splash2_app("cholesky"));
    Processor a(config, util::Rng{99});
    Processor b(config, util::Rng{99});
    SingleAppWorkload wb(*splash2_app("cholesky"));
    a.set_workload(&workload);
    b.set_workload(&wb);
    a.set_level(8);
    b.set_level(8);
    for (int i = 0; i < 10; ++i) {
      const TelemetrySample sa = a.run_interval(0.5);
      const TelemetrySample sb = b.run_interval(0.5);
      EXPECT_DOUBLE_EQ(sa.power_w, sb.power_w);
      EXPECT_DOUBLE_EQ(sa.instructions, sb.instructions);
    }
  }
}

TEST(ProcessorDeathTest, RejectsOutOfRangeLevel) {
  Processor proc(quiet_config(), util::Rng{20});
  EXPECT_DEATH(proc.set_level(15), "precondition");
}

TEST(ProcessorDeathTest, RejectsNonPositiveInterval) {
  Processor proc(quiet_config(), util::Rng{21});
  EXPECT_DEATH(proc.run_interval(0.0), "precondition");
}

}  // namespace
}  // namespace fedpower::sim
