// Shared-DRAM contention in the multicore model and the per-core latency
// scaling hook it builds on.
#include <gtest/gtest.h>

#include "sim/governor.hpp"
#include "sim/multicore.hpp"
#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

MulticoreConfig contended_config() {
  MulticoreConfig config = MulticoreConfig::jetson_nano_4core();
  config.sensor_noise_w = 0.0;
  config.core_config.workload_jitter = 0.0;
  config.core_config.dvfs_transition_us = 0.0;
  return config;
}

TEST(LatencyScale, SlowsMemoryBoundPhases) {
  PerfModel model;
  PhaseProfile memory{0.85, 62.0, 0.58, 0.55, 1e9};
  const PhasePerf clean = model.evaluate(memory, 1479.0, 1.0);
  const PhasePerf contended = model.evaluate(memory, 1479.0, 2.0);
  EXPECT_GT(contended.cpi, clean.cpi);
  EXPECT_LT(contended.ips, clean.ips);
}

TEST(LatencyScale, NoEffectOnComputeBoundPhases) {
  PerfModel model;
  PhaseProfile compute{0.65, 0.0, 0.0, 0.86, 1e9};
  EXPECT_DOUBLE_EQ(model.evaluate(compute, 1000.0, 1.0).cpi,
                   model.evaluate(compute, 1000.0, 3.0).cpi);
}

TEST(LatencyScale, ProcessorHookApplies) {
  ProcessorConfig config;
  config.sensor_noise_w = 0.0;
  config.workload_jitter = 0.0;
  SingleAppWorkload w1(*splash2_app("radix"));
  SingleAppWorkload w2(*splash2_app("radix"));
  Processor clean(config, util::Rng{1});
  Processor contended(config, util::Rng{1});
  clean.set_workload(&w1);
  contended.set_workload(&w2);
  contended.set_memory_latency_scale(2.0);
  clean.set_level(14);
  contended.set_level(14);
  EXPECT_GT(clean.run_interval(0.5).ips,
            contended.run_interval(0.5).ips * 1.2);
}

TEST(LatencyScaleDeathTest, RejectsBelowOne) {
  Processor proc(ProcessorConfig{}, util::Rng{2});
  EXPECT_DEATH(proc.set_memory_latency_scale(0.5), "precondition");
}

TEST(Contention, ScaleGrowsWithMemoryTraffic) {
  MulticoreProcessor proc(contended_config(), util::Rng{3});
  std::vector<std::unique_ptr<SingleAppWorkload>> workloads;
  for (std::size_t c = 0; c < 4; ++c) {
    workloads.push_back(
        std::make_unique<SingleAppWorkload>(*splash2_app("radix")));
    proc.set_workload(c, workloads.back().get());
  }
  proc.set_level(14);
  EXPECT_DOUBLE_EQ(proc.contention_scale(), 1.0);  // before any traffic
  proc.run_interval(0.5);
  EXPECT_GT(proc.contention_scale(), 1.3);  // 4x radix saturates DRAM
}

TEST(Contention, ComputeWorkloadsBarelyContend) {
  MulticoreProcessor proc(contended_config(), util::Rng{4});
  std::vector<std::unique_ptr<SingleAppWorkload>> workloads;
  for (std::size_t c = 0; c < 4; ++c) {
    workloads.push_back(
        std::make_unique<SingleAppWorkload>(*splash2_app("water-ns")));
    proc.set_workload(c, workloads.back().get());
  }
  proc.set_level(14);
  proc.run_interval(0.5);
  EXPECT_LT(proc.contention_scale(), 1.25);
}

TEST(Contention, FourMemoryCoresRunSlowerThanSolo) {
  // Per-core throughput with four radix instances must be lower than a
  // single radix on an otherwise idle device.
  MulticoreProcessor crowded(contended_config(), util::Rng{5});
  std::vector<std::unique_ptr<SingleAppWorkload>> workloads;
  for (std::size_t c = 0; c < 4; ++c) {
    workloads.push_back(
        std::make_unique<SingleAppWorkload>(*splash2_app("radix")));
    crowded.set_workload(c, workloads.back().get());
  }
  crowded.set_level(14);
  crowded.run_interval(0.5);  // builds up the contention estimate
  crowded.run_interval(0.5);
  const double crowded_core_ips = crowded.core_sample(0).ips;

  MulticoreProcessor solo(contended_config(), util::Rng{5});
  SingleAppWorkload solo_workload(*splash2_app("radix"));
  solo.set_workload(0, &solo_workload);
  solo.set_level(14);
  solo.run_interval(0.5);
  solo.run_interval(0.5);
  EXPECT_LT(crowded_core_ips, solo.core_sample(0).ips * 0.85);
}

TEST(Contention, DisabledWithZeroCoefficient) {
  MulticoreConfig config = contended_config();
  config.contention_coeff = 0.0;
  MulticoreProcessor proc(config, util::Rng{6});
  std::vector<std::unique_ptr<SingleAppWorkload>> workloads;
  for (std::size_t c = 0; c < 4; ++c) {
    workloads.push_back(
        std::make_unique<SingleAppWorkload>(*splash2_app("radix")));
    proc.set_workload(c, workloads.back().get());
  }
  proc.set_level(14);
  proc.run_interval(0.5);
  proc.run_interval(0.5);
  EXPECT_DOUBLE_EQ(proc.contention_scale(), 1.0);
}

TEST(ConservativeGovernor, StepsOneLevelAtATime) {
  ConservativeGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  TelemetrySample busy;
  busy.ipc = 1.2;
  std::size_t previous = 0;
  for (int i = 0; i < 14; ++i) {
    const std::size_t level = governor.select_level(busy, table);
    EXPECT_LE(level, previous + 1);
    previous = level;
  }
  EXPECT_EQ(previous, 14u);  // eventually reaches max, one step per call
}

TEST(ConservativeGovernor, StepsDownOnLowLoad) {
  ConservativeGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  TelemetrySample busy;
  busy.ipc = 1.2;
  for (int i = 0; i < 6; ++i) governor.select_level(busy, table);
  TelemetrySample idle;
  idle.ipc = 0.05;
  const std::size_t before = governor.select_level(idle, table);
  const std::size_t after = governor.select_level(idle, table);
  EXPECT_EQ(after + 1, before);
}

TEST(ConservativeGovernor, ResetReturnsToBottom) {
  ConservativeGovernor governor;
  const VfTable table = VfTable::jetson_nano();
  TelemetrySample busy;
  busy.ipc = 1.0;
  for (int i = 0; i < 5; ++i) governor.select_level(busy, table);
  governor.reset();
  EXPECT_LE(governor.select_level(busy, table), 1u);
}

}  // namespace
}  // namespace fedpower::sim
