// Hardware fault injection: stuck power sensor, frozen performance
// counters and a stuck DVFS actuator corrupt only what the controller
// observes or commands — execution, energy accounting and the RNG draw
// sequence stay honest (DESIGN.md §10).
#include "sim/processor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "ckpt/errors.hpp"
#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

ProcessorConfig quiet_config() {
  ProcessorConfig config;
  config.sensor_noise_w = 0.0;
  config.workload_jitter = 0.0;
  config.dvfs_transition_us = 0.0;
  return config;
}

TEST(HardwareFaults, StuckSensorLiesOnlyToTheController) {
  SingleAppWorkload workload(*splash2_app("fft"));
  Processor proc(quiet_config(), util::Rng{11});
  proc.set_workload(&workload);
  proc.set_level(10);
  HardwareFaultConfig faults;
  faults.stuck_power_sensor = true;
  faults.stuck_power_w = 0.123;
  proc.inject_faults(faults);
  const TelemetrySample sample = proc.run_interval(0.5);
  EXPECT_DOUBLE_EQ(sample.power_w, 0.123);
  EXPECT_GT(sample.true_power_w, 0.3);  // the honest reading survives
  EXPECT_NE(sample.true_power_w, sample.power_w);
}

TEST(HardwareFaults, FrozenCountersRepeatTheFirstFaultedSample) {
  SingleAppWorkload workload(*splash2_app("lu"));
  Processor proc(quiet_config(), util::Rng{12});
  proc.set_workload(&workload);
  proc.set_level(4);
  HardwareFaultConfig faults;
  faults.frozen_counters = true;
  proc.inject_faults(faults);
  const TelemetrySample first = proc.run_interval(0.5);
  proc.set_level(14);  // a level jump would normally move every counter
  const TelemetrySample second = proc.run_interval(0.5);
  EXPECT_DOUBLE_EQ(second.instructions, first.instructions);
  EXPECT_DOUBLE_EQ(second.cycles, first.cycles);
  EXPECT_DOUBLE_EQ(second.ipc, first.ipc);
  EXPECT_DOUBLE_EQ(second.miss_rate, first.miss_rate);
  EXPECT_DOUBLE_EQ(second.mpki, first.mpki);
  EXPECT_DOUBLE_EQ(second.ips, first.ips);
  // Non-counter channels keep moving: power follows the real level change.
  EXPECT_GT(second.true_power_w, 1.5 * first.true_power_w);
}

TEST(HardwareFaults, StuckDvfsIgnoresLevelRequests) {
  SingleAppWorkload workload(*splash2_app("radix"));
  Processor proc(quiet_config(), util::Rng{13});
  proc.set_workload(&workload);
  proc.set_level(3);
  HardwareFaultConfig faults;
  faults.dvfs_stuck = true;
  proc.inject_faults(faults);
  proc.set_level(14);  // silently ignored
  const TelemetrySample sample = proc.run_interval(0.5);
  EXPECT_EQ(sample.level, 3u);
}

TEST(HardwareFaultsDeathTest, StuckDvfsStillValidatesTheRequest) {
  Processor proc(quiet_config(), util::Rng{14});
  HardwareFaultConfig faults;
  faults.dvfs_stuck = true;
  proc.inject_faults(faults);
  EXPECT_DEATH(proc.set_level(1000), "precondition");
}

TEST(HardwareFaults, FaultsDoNotPerturbTheRngStream) {
  // Faults are applied to the finished sample, after every honest draw.
  // A faulted device must therefore execute the exact same trajectory —
  // same energy, same time, same app progress — as its healthy twin.
  SingleAppWorkload workload_a(*splash2_app("ocean"));
  SingleAppWorkload workload_b(*splash2_app("ocean"));
  ProcessorConfig noisy = quiet_config();
  noisy.sensor_noise_w = 0.02;  // exercises the RNG every interval
  noisy.workload_jitter = 0.05;
  Processor honest(noisy, util::Rng{15});
  Processor faulted(noisy, util::Rng{15});
  honest.set_workload(&workload_a);
  faulted.set_workload(&workload_b);
  HardwareFaultConfig faults;
  faults.stuck_power_sensor = true;
  faults.stuck_power_w = 0.2;
  faults.frozen_counters = true;
  faulted.inject_faults(faults);
  for (int interval = 0; interval < 20; ++interval) {
    honest.set_level(static_cast<std::size_t>(interval) % 15);
    faulted.set_level(static_cast<std::size_t>(interval) % 15);
    const TelemetrySample h = honest.run_interval(0.25);
    const TelemetrySample f = faulted.run_interval(0.25);
    EXPECT_EQ(f.true_power_w, h.true_power_w);
    EXPECT_EQ(f.energy_j, h.energy_j);
    EXPECT_EQ(f.time_s, h.time_s);
  }
}

TEST(HardwareFaults, CheckpointRoundtripKeepsFrozenCounters) {
  SingleAppWorkload workload(*splash2_app("fmm"));
  Processor original(quiet_config(), util::Rng{16});
  original.set_workload(&workload);
  original.set_level(6);
  HardwareFaultConfig faults;
  faults.frozen_counters = true;
  original.inject_faults(faults);
  const TelemetrySample frozen = original.run_interval(0.5);

  ckpt::Writer out;
  original.save_state(out);
  const std::vector<std::uint8_t> bytes = out.take();

  SingleAppWorkload workload_restored(*splash2_app("fmm"));
  Processor restored(quiet_config(), util::Rng{999});
  restored.set_workload(&workload_restored);
  restored.inject_faults(faults);  // config is re-armed, state is restored
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());

  const TelemetrySample a = original.run_interval(0.5);
  const TelemetrySample b = restored.run_interval(0.5);
  EXPECT_EQ(a.instructions, frozen.instructions);
  EXPECT_EQ(b.instructions, a.instructions);
  EXPECT_EQ(b.power_w, a.power_w);
  EXPECT_EQ(b.true_power_w, a.true_power_w);
}

}  // namespace
}  // namespace fedpower::sim
