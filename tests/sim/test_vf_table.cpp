#include "sim/vf_table.hpp"

#include <gtest/gtest.h>

namespace fedpower::sim {
namespace {

TEST(VfTable, JetsonNanoHas15Levels) {
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(table.size(), 15u);
  EXPECT_DOUBLE_EQ(table.f_min_mhz(), 102.0);
  EXPECT_DOUBLE_EQ(table.f_max_mhz(), 1479.0);
}

TEST(VfTable, FrequenciesStrictlyIncreasing) {
  const VfTable table = VfTable::jetson_nano();
  for (std::size_t i = 1; i < table.size(); ++i)
    EXPECT_GT(table.level(i).freq_mhz, table.level(i - 1).freq_mhz);
}

TEST(VfTable, VoltagesMonotonicallyIncrease) {
  const VfTable table = VfTable::jetson_nano();
  for (std::size_t i = 1; i < table.size(); ++i)
    EXPECT_GE(table.level(i).voltage_v, table.level(i - 1).voltage_v);
  EXPECT_DOUBLE_EQ(table.min_level().voltage_v, 0.80);
  EXPECT_DOUBLE_EQ(table.max_level().voltage_v, 1.10);
}

TEST(VfTable, IndicesAreConsecutive) {
  const VfTable table = VfTable::jetson_nano();
  for (std::size_t i = 0; i < table.size(); ++i)
    EXPECT_EQ(table.level(i).index, static_cast<int>(i));
}

TEST(VfTable, NearestLevelExactMatch) {
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(table.nearest_level(825.6), 7u);
  EXPECT_EQ(table.nearest_level(1479.0), 14u);
  EXPECT_EQ(table.nearest_level(102.0), 0u);
}

TEST(VfTable, NearestLevelRounds) {
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(table.nearest_level(150.0), 0u);    // closer to 102 than 204
  EXPECT_EQ(table.nearest_level(160.0), 1u);    // closer to 204
  EXPECT_EQ(table.nearest_level(5000.0), 14u);  // clamps above
  EXPECT_EQ(table.nearest_level(1.0), 0u);      // clamps below
}

TEST(VfTable, LinearFactory) {
  const VfTable table = VfTable::linear(5, 100.0, 500.0, 0.7, 1.1);
  EXPECT_EQ(table.size(), 5u);
  EXPECT_DOUBLE_EQ(table.level(0).freq_mhz, 100.0);
  EXPECT_DOUBLE_EQ(table.level(4).freq_mhz, 500.0);
  EXPECT_DOUBLE_EQ(table.level(2).freq_mhz, 300.0);
  EXPECT_DOUBLE_EQ(table.level(2).voltage_v, 0.9);
}

TEST(VfTable, MinMaxLevelAccessors) {
  const VfTable table = VfTable::jetson_nano();
  EXPECT_EQ(table.min_level().index, 0);
  EXPECT_EQ(table.max_level().index, 14);
}

TEST(VfTableDeathTest, RejectsEmptyTable) {
  EXPECT_DEATH(VfTable{std::vector<VfLevel>{}}, "precondition");
}

TEST(VfTableDeathTest, RejectsNonMonotonicFrequencies) {
  std::vector<VfLevel> levels = {{0, 200.0, 0.8}, {0, 100.0, 0.9}};
  EXPECT_DEATH(VfTable{std::move(levels)}, "precondition");
}

}  // namespace
}  // namespace fedpower::sim
