#include "sim/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::sim {
namespace {

TEST(Thermal, StartsAtAmbient) {
  ThermalModel model;
  EXPECT_DOUBLE_EQ(model.temperature_c(), 25.0);
}

TEST(Thermal, SteadyStateFollowsOhmsLawAnalog) {
  ThermalModel model;  // R = 25 K/W
  EXPECT_DOUBLE_EQ(model.steady_state_c(1.0), 50.0);
  EXPECT_DOUBLE_EQ(model.steady_state_c(0.0), 25.0);
}

TEST(Thermal, ConvergesToSteadyState) {
  ThermalModel model;
  for (int i = 0; i < 10000; ++i) model.step(0.8, 0.5);
  EXPECT_NEAR(model.temperature_c(), model.steady_state_c(0.8), 0.01);
}

TEST(Thermal, ExactExponentialStep) {
  ThermalParams params;
  ThermalModel model(params);
  const double tau = params.r_thermal_k_per_w * params.c_thermal_j_per_k;
  model.step(1.0, tau);  // one time constant towards 50 C
  const double expected = 50.0 + (25.0 - 50.0) * std::exp(-1.0);
  EXPECT_NEAR(model.temperature_c(), expected, 1e-9);
}

TEST(Thermal, StepIsTimeAdditive) {
  // Two half steps must equal one full step (exact ODE solution property).
  ThermalModel a;
  ThermalModel b;
  a.step(0.7, 1.0);
  b.step(0.7, 0.5);
  b.step(0.7, 0.5);
  EXPECT_NEAR(a.temperature_c(), b.temperature_c(), 1e-12);
}

TEST(Thermal, CoolsWhenPowerDrops) {
  ThermalModel model;
  for (int i = 0; i < 1000; ++i) model.step(1.2, 0.5);
  const double hot = model.temperature_c();
  for (int i = 0; i < 1000; ++i) model.step(0.1, 0.5);
  EXPECT_LT(model.temperature_c(), hot);
}

TEST(Thermal, LeakageMultiplierAtAmbientIsOne) {
  ThermalModel model;
  EXPECT_DOUBLE_EQ(model.leakage_multiplier(), 1.0);
}

TEST(Thermal, LeakageMultiplierGrowsWithTemperature) {
  ThermalModel model;
  for (int i = 0; i < 2000; ++i) model.step(1.0, 0.5);
  // 25 K above ambient at 0.006/K -> 1.15x.
  EXPECT_NEAR(model.leakage_multiplier(), 1.15, 0.01);
}

TEST(Thermal, ResetReturnsToAmbient) {
  ThermalModel model;
  model.step(2.0, 100.0);
  model.reset();
  EXPECT_DOUBLE_EQ(model.temperature_c(), 25.0);
}

TEST(Thermal, ZeroDtIsNoop) {
  ThermalModel model;
  model.step(1.0, 10.0);
  const double t = model.temperature_c();
  model.step(1.0, 0.0);
  EXPECT_DOUBLE_EQ(model.temperature_c(), t);
}

}  // namespace
}  // namespace fedpower::sim
