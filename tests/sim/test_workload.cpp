#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

std::vector<AppProfile> two_apps() {
  return {*splash2_app("fft"), *splash2_app("lu")};
}

TEST(RotationWorkload, CyclesInOrder) {
  RotationWorkload workload(two_apps());
  util::Rng rng(1);
  EXPECT_EQ(workload.next(rng).name, "fft");
  EXPECT_EQ(workload.next(rng).name, "lu");
  EXPECT_EQ(workload.next(rng).name, "fft");
}

TEST(RotationWorkload, SingleAppRepeats) {
  RotationWorkload workload({*splash2_app("radix")});
  util::Rng rng(2);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(workload.next(rng).name, "radix");
}

TEST(RotationWorkload, ExposesApps) {
  RotationWorkload workload(two_apps());
  EXPECT_EQ(workload.apps().size(), 2u);
}

TEST(RandomWorkload, DrawsAllAppsEventually) {
  RandomWorkload workload(two_apps());
  util::Rng rng(3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 1000; ++i) ++counts[workload.next(rng).name];
  EXPECT_GT(counts["fft"], 400);
  EXPECT_GT(counts["lu"], 400);
}

TEST(RandomWorkload, DeterministicGivenSeed) {
  RandomWorkload w1(two_apps());
  RandomWorkload w2(two_apps());
  util::Rng r1(7);
  util::Rng r2(7);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(w1.next(r1).name, w2.next(r2).name);
}

TEST(SingleAppWorkload, AlwaysSameApp) {
  SingleAppWorkload workload(*splash2_app("ocean"));
  util::Rng rng(4);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(workload.next(rng).name, "ocean");
  EXPECT_EQ(workload.apps().size(), 1u);
}

TEST(WorkloadDeathTest, RejectsEmptyAppSet) {
  EXPECT_DEATH(RotationWorkload{std::vector<AppProfile>{}}, "precondition");
  EXPECT_DEATH(RandomWorkload{std::vector<AppProfile>{}}, "precondition");
}

TEST(WorkloadDeathTest, RejectsInvalidApp) {
  AppProfile bad{"bad", {}};
  EXPECT_DEATH(SingleAppWorkload{bad}, "precondition");
}

}  // namespace
}  // namespace fedpower::sim
