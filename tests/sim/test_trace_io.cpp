#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/processor.hpp"
#include "sim/splash2.hpp"

namespace fedpower::sim {
namespace {

TraceRecorder sample_trace() {
  ProcessorConfig config;
  config.sensor_noise_w = 0.0;
  Processor processor(config, util::Rng{1});
  SingleAppWorkload workload(*splash2_app("fft"));
  processor.set_workload(&workload);
  TraceRecorder trace;
  for (std::size_t level : {0u, 7u, 14u, 7u}) {
    processor.set_level(level);
    trace.record(processor.run_interval(0.5));
  }
  return trace;
}

TEST(TraceIo, WriteProducesHeaderAndRows) {
  std::ostringstream out;
  write_trace_csv(sample_trace(), out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_TRUE(line.starts_with("time_s,level,freq_mhz"));
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4u);
}

TEST(TraceIo, RoundTripPreservesKeyFields) {
  const TraceRecorder trace = sample_trace();
  std::ostringstream out;
  write_trace_csv(trace, out);
  std::istringstream in(out.str());
  const auto samples = read_trace_csv(in);
  ASSERT_EQ(samples.size(), trace.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].level, trace.samples()[i].level);
    EXPECT_EQ(samples[i].app_name, trace.samples()[i].app_name);
    // Values go through "%.6g" formatting: 6 significant digits.
    EXPECT_NEAR(samples[i].power_w, trace.samples()[i].power_w,
                1e-5 * std::max(1.0, trace.samples()[i].power_w));
    EXPECT_NEAR(samples[i].freq_mhz, trace.samples()[i].freq_mhz, 0.1);
    EXPECT_NEAR(samples[i].ipc, trace.samples()[i].ipc, 1e-4);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  TraceRecorder empty;
  std::ostringstream out;
  write_trace_csv(empty, out);
  std::istringstream in(out.str());
  EXPECT_TRUE(read_trace_csv(in).empty());
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "fp_trace.csv";
  write_trace_csv(sample_trace(), path);
  std::ifstream in(path);
  EXPECT_EQ(read_trace_csv(in).size(), 4u);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::istringstream in("1,2,3\n");
  EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
}

TEST(TraceIo, RejectsShortRows) {
  std::ostringstream out;
  write_trace_csv(TraceRecorder{}, out);
  std::istringstream in(out.str() + "1,2,3\n");
  EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
}

TEST(TraceIo, RejectsNonNumericCells) {
  std::ostringstream out;
  write_trace_csv(TraceRecorder{}, out);
  std::istringstream in(out.str() +
                        "x,0,102,0.8,0.1,0.1,0.05,1,2,0.5,0.3,10,1e8,25,app\n");
  EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
}

TEST(TraceIo, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_trace_csv(TraceRecorder{}, "/nonexistent-dir/t.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace fedpower::sim
