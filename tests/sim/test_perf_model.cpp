#include "sim/perf_model.hpp"

#include <gtest/gtest.h>

namespace fedpower::sim {
namespace {

PhaseProfile compute_phase() {
  return PhaseProfile{0.65, 14.0, 0.22, 0.86, 1e9};
}

PhaseProfile memory_phase() {
  return PhaseProfile{0.85, 62.0, 0.58, 0.55, 1e9};
}

TEST(PerfModel, NoMemoryTrafficMeansBaseCpi) {
  PerfModel model;
  PhaseProfile phase{1.2, 0.0, 0.0, 0.5, 1e9};
  const PhasePerf perf = model.evaluate(phase, 1000.0);
  EXPECT_DOUBLE_EQ(perf.cpi, 1.2);
  EXPECT_DOUBLE_EQ(perf.stall_fraction, 0.0);
  EXPECT_DOUBLE_EQ(perf.mpki, 0.0);
}

TEST(PerfModel, IpsIsFrequencyOverCpi) {
  PerfModel model;
  PhaseProfile phase{2.0, 0.0, 0.0, 0.5, 1e9};
  const PhasePerf perf = model.evaluate(phase, 1000.0);
  EXPECT_DOUBLE_EQ(perf.ips, 1000.0 * 1e6 / 2.0);
}

TEST(PerfModel, StallCpiGrowsWithFrequency) {
  // Fixed-latency DRAM: the cycle cost of a miss scales with f.
  PerfModel model;
  const PhasePerf slow = model.evaluate(memory_phase(), 102.0);
  const PhasePerf fast = model.evaluate(memory_phase(), 1479.0);
  EXPECT_GT(fast.cpi, slow.cpi);
  EXPECT_GT(fast.stall_fraction, slow.stall_fraction);
}

TEST(PerfModel, MemoryBoundPerformanceSaturates) {
  // Going from 102 to 1479 MHz is a 14.5x clock boost but must yield far
  // less than 14.5x IPS for a memory-bound phase.
  PerfModel model;
  const PhasePerf slow = model.evaluate(memory_phase(), 102.0);
  const PhasePerf fast = model.evaluate(memory_phase(), 1479.0);
  EXPECT_LT(fast.ips / slow.ips, 8.0);
  EXPECT_GT(fast.ips, slow.ips);  // still monotone
}

TEST(PerfModel, ComputeBoundScalesNearlyLinearly) {
  PerfModel model;
  const PhasePerf slow = model.evaluate(compute_phase(), 102.0);
  const PhasePerf fast = model.evaluate(compute_phase(), 1479.0);
  EXPECT_GT(fast.ips / slow.ips, 11.0);  // close to the 14.5x clock ratio
}

TEST(PerfModel, MpkiIndependentOfFrequency) {
  PerfModel model;
  const PhasePerf slow = model.evaluate(memory_phase(), 204.0);
  const PhasePerf fast = model.evaluate(memory_phase(), 1326.0);
  EXPECT_DOUBLE_EQ(slow.mpki, fast.mpki);
  EXPECT_DOUBLE_EQ(slow.mpki, 62.0 * 0.58);
}

TEST(PerfModel, MissRatePassedThrough) {
  PerfModel model;
  EXPECT_DOUBLE_EQ(model.evaluate(memory_phase(), 500.0).miss_rate, 0.58);
}

TEST(PerfModel, IpcIsInverseCpi) {
  PerfModel model;
  const PhasePerf perf = model.evaluate(memory_phase(), 700.0);
  EXPECT_DOUBLE_EQ(perf.ipc, 1.0 / perf.cpi);
}

TEST(PerfModel, HigherMlpFactorReducesStalls) {
  PerfModel narrow(PerfModelParams{80.0, 1.0});
  PerfModel wide(PerfModelParams{80.0, 8.0});
  const PhasePerf n = narrow.evaluate(memory_phase(), 1000.0);
  const PhasePerf w = wide.evaluate(memory_phase(), 1000.0);
  EXPECT_GT(n.cpi, w.cpi);
}

TEST(PerfModel, LongerMemoryLatencyHurts) {
  PerfModel fast_mem(PerfModelParams{40.0, 4.0});
  PerfModel slow_mem(PerfModelParams{160.0, 4.0});
  EXPECT_LT(fast_mem.evaluate(memory_phase(), 1000.0).cpi,
            slow_mem.evaluate(memory_phase(), 1000.0).cpi);
}

TEST(PerfModel, StallMathIsExact) {
  PerfModelParams params{100.0, 2.0};
  PerfModel model(params);
  PhaseProfile phase{1.0, 10.0, 0.5, 0.5, 1e9};
  // misses/instr = 0.01*0.5 = 0.005; penalty at 1 GHz = 100 cycles;
  // stall_cpi = 0.005*100/2 = 0.25.
  const PhasePerf perf = model.evaluate(phase, 1000.0);
  EXPECT_DOUBLE_EQ(perf.cpi, 1.25);
  EXPECT_DOUBLE_EQ(perf.stall_fraction, 0.25 / 1.25);
}

class PerfAcrossLevels : public ::testing::TestWithParam<double> {};

TEST_P(PerfAcrossLevels, InvariantsHoldAtEveryFrequency) {
  PerfModel model;
  for (const PhaseProfile& phase : {compute_phase(), memory_phase()}) {
    const PhasePerf perf = model.evaluate(phase, GetParam());
    EXPECT_GT(perf.cpi, 0.0);
    EXPECT_GT(perf.ips, 0.0);
    EXPECT_GE(perf.stall_fraction, 0.0);
    EXPECT_LT(perf.stall_fraction, 1.0);
    EXPECT_NEAR(perf.ipc * perf.cpi, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(JetsonFrequencies, PerfAcrossLevels,
                         ::testing::Values(102.0, 204.0, 307.2, 518.4, 825.6,
                                           1036.8, 1224.0, 1479.0));

}  // namespace
}  // namespace fedpower::sim
