#include "sim/application.hpp"

#include <gtest/gtest.h>

namespace fedpower::sim {
namespace {

AppProfile two_phase_app() {
  return AppProfile{"test",
                    {PhaseProfile{0.5, 10.0, 0.2, 0.8, 1e9},
                     PhaseProfile{1.5, 30.0, 0.4, 0.4, 3e9}}};
}

TEST(AppProfile, TotalInstructionsSumsPhases) {
  EXPECT_DOUBLE_EQ(two_phase_app().total_instructions(), 4e9);
}

TEST(AppProfile, ScaledMultipliesInstructionCounts) {
  const AppProfile scaled = two_phase_app().scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.total_instructions(), 2e9);
  EXPECT_DOUBLE_EQ(scaled.phases[0].instructions, 5e8);
  // Non-instruction fields untouched.
  EXPECT_DOUBLE_EQ(scaled.phases[0].base_cpi, 0.5);
}

TEST(AppProfile, WeightedAveragesUseInstructionWeights) {
  const AppProfile app = two_phase_app();
  // weights: 1e9 and 3e9 -> 0.25 / 0.75.
  EXPECT_DOUBLE_EQ(app.weighted_base_cpi(), 0.25 * 0.5 + 0.75 * 1.5);
  EXPECT_DOUBLE_EQ(app.weighted_llc_apki(), 0.25 * 10.0 + 0.75 * 30.0);
  EXPECT_DOUBLE_EQ(app.weighted_miss_rate(), 0.25 * 0.2 + 0.75 * 0.4);
  EXPECT_DOUBLE_EQ(app.weighted_activity(), 0.25 * 0.8 + 0.75 * 0.4);
}

TEST(AppProfile, WeightedAveragesOfEmptyAppAreZero) {
  const AppProfile app{"empty", {}};
  EXPECT_DOUBLE_EQ(app.weighted_base_cpi(), 0.0);
}

TEST(AppProfile, ValidateAcceptsWellFormed) {
  validate(two_phase_app());  // must not abort
}

TEST(AppProfileDeathTest, ValidateRejectsEmptyName) {
  AppProfile app = two_phase_app();
  app.name.clear();
  EXPECT_DEATH(validate(app), "precondition");
}

TEST(AppProfileDeathTest, ValidateRejectsNoPhases) {
  AppProfile app{"x", {}};
  EXPECT_DEATH(validate(app), "precondition");
}

TEST(AppProfileDeathTest, ValidateRejectsBadMissRate) {
  AppProfile app = two_phase_app();
  app.phases[0].llc_miss_rate = 1.5;
  EXPECT_DEATH(validate(app), "precondition");
}

TEST(AppProfileDeathTest, ValidateRejectsNonPositiveInstructions) {
  AppProfile app = two_phase_app();
  app.phases[1].instructions = 0.0;
  EXPECT_DEATH(validate(app), "precondition");
}

}  // namespace
}  // namespace fedpower::sim
