#include "ckpt/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "ckpt/crc32.hpp"
#include "ckpt/rotation.hpp"

namespace fedpower::ckpt {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> payload_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// Overwrites a file with exact bytes, bypassing the atomic writer — the
/// tests use this to plant deliberately damaged containers on disk.
void write_raw(const std::string& path,
               const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / ("fedpower_ckpt_" + name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& leaf) const {
    return (path / leaf).string();
  }
};

TEST(Snapshot, RoundTripsPayload) {
  const auto payload = payload_of({1, 2, 3, 4, 5});
  const auto container = encode_snapshot(payload);
  EXPECT_EQ(container.size(),
            kSnapshotHeaderBytes + payload.size() + kSnapshotTrailerBytes);
  EXPECT_EQ(decode_snapshot(container), payload);
}

TEST(Snapshot, EmptyPayloadRoundTrips) {
  const auto container = encode_snapshot(std::vector<std::uint8_t>{});
  EXPECT_EQ(decode_snapshot(container), std::vector<std::uint8_t>{});
}

TEST(Snapshot, EverySingleByteFlipIsDetected) {
  // The container guarantee: no single-byte corruption anywhere — header,
  // payload or trailer — restores silently. Magic damage and CRC-detected
  // damage both surface as CorruptSnapshotError; flipping the version bytes
  // also breaks the CRC (which covers them), so it too reads as corruption.
  const auto payload = payload_of({10, 20, 30, 40});
  const auto container = encode_snapshot(payload);
  for (std::size_t i = 0; i < container.size(); ++i) {
    auto damaged = container;
    damaged[i] ^= 0x01;
    EXPECT_THROW((void)decode_snapshot(damaged), CorruptSnapshotError)
        << "byte " << i;
  }
}

TEST(Snapshot, TruncationIsDetected) {
  const auto container = encode_snapshot(payload_of({1, 2, 3}));
  for (std::size_t keep = 0; keep < container.size(); ++keep) {
    const std::vector<std::uint8_t> cut(container.begin(),
                                        container.begin() + keep);
    EXPECT_THROW((void)decode_snapshot(cut), CorruptSnapshotError)
        << "kept " << keep;
  }
}

TEST(Snapshot, TrailingGarbageIsDetected) {
  auto container = encode_snapshot(payload_of({1, 2, 3}));
  container.push_back(0x00);
  EXPECT_THROW((void)decode_snapshot(container), CorruptSnapshotError);
}

TEST(Snapshot, FutureVersionWithValidCrcIsVersionMismatch) {
  // A genuinely newer format revision has an intact CRC over its (changed)
  // version bytes — distinguish that from damage. Recompute the CRC the
  // same way the encoder does after bumping the version field.
  auto container = encode_snapshot(payload_of({5, 6}));
  container[4] = 0x02;  // version -> 2, little-endian low byte
  // Strip the old trailer, recompute over bytes 4..end.
  container.resize(container.size() - kSnapshotTrailerBytes);
  const std::uint32_t crc =
      crc32(std::span(container).subspan(4));
  for (int shift = 0; shift < 32; shift += 8)
    container.push_back(static_cast<std::uint8_t>((crc >> shift) & 0xff));
  EXPECT_THROW((void)decode_snapshot(container), VersionMismatchError);
}

TEST(SnapshotFile, WriteReadRoundTripsAndLeavesNoTempFile) {
  const TempDir dir("file_roundtrip");
  const std::string path = dir.file("model.fpck");
  const auto payload = payload_of({9, 8, 7});
  write_snapshot_file(path, payload);
  EXPECT_EQ(read_snapshot_file(path), payload);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SnapshotFile, OverwriteReplacesAtomically) {
  const TempDir dir("file_overwrite");
  const std::string path = dir.file("model.fpck");
  write_snapshot_file(path, payload_of({1}));
  write_snapshot_file(path, payload_of({2, 3}));
  EXPECT_EQ(read_snapshot_file(path), payload_of({2, 3}));
}

TEST(SnapshotFile, MissingFileIsNotFound) {
  const TempDir dir("file_missing");
  EXPECT_THROW((void)read_snapshot_file(dir.file("absent.fpck")),
               SnapshotNotFoundError);
}

TEST(SnapshotFile, UnwritableDirectoryThrowsCkptError) {
  EXPECT_THROW(
      write_snapshot_file("/nonexistent_dir_fedpower/x.fpck",
                          payload_of({1})),
      CkptError);
}

TEST(Rotation, SavePrunesBeyondKeepDepth) {
  const TempDir dir("rotation_prune");
  const SnapshotRotation rotation(dir.path.string(), 3);
  for (int i = 1; i <= 5; ++i)
    rotation.save(payload_of({i}));
  EXPECT_EQ(rotation.sequences(),
            (std::vector<std::uint64_t>{3, 4, 5}));
  const LoadedSnapshot latest = rotation.load_latest();
  EXPECT_EQ(latest.payload, payload_of({5}));
  EXPECT_EQ(latest.sequence, 5u);
}

TEST(Rotation, LoadLatestFallsBackPastCorruptEntry) {
  const TempDir dir("rotation_fallback");
  const SnapshotRotation rotation(dir.path.string(), 3);
  rotation.save(payload_of({1}));
  rotation.save(payload_of({2}));
  // Single-byte damage to the newest entry: recovery must land on the
  // previous one, silently.
  const std::string newest = rotation.path_for(2);
  auto bytes = read_file_bytes(newest);
  bytes[bytes.size() / 2] ^= 0x40;
  write_raw(newest, bytes);
  const LoadedSnapshot loaded = rotation.load_latest();
  EXPECT_EQ(loaded.payload, payload_of({1}));
  EXPECT_EQ(loaded.sequence, 1u);
}

TEST(Rotation, EmptyDirectoryIsNotFound) {
  const TempDir dir("rotation_empty");
  const SnapshotRotation rotation(dir.path.string(), 2);
  EXPECT_THROW((void)rotation.load_latest(), SnapshotNotFoundError);
  EXPECT_TRUE(rotation.sequences().empty());
}

TEST(Rotation, AllEntriesDamagedIsCorrupt) {
  const TempDir dir("rotation_all_bad");
  const SnapshotRotation rotation(dir.path.string(), 2);
  rotation.save(payload_of({1}));
  rotation.save(payload_of({2}));
  for (const std::uint64_t seq : rotation.sequences()) {
    auto bytes = read_file_bytes(rotation.path_for(seq));
    bytes[bytes.size() - 1] ^= 0xff;
    write_raw(rotation.path_for(seq), bytes);
  }
  EXPECT_THROW((void)rotation.load_latest(), CorruptSnapshotError);
}

TEST(Rotation, ForeignFilesAreIgnored) {
  const TempDir dir("rotation_foreign");
  const SnapshotRotation rotation(dir.path.string(), 2);
  rotation.save(payload_of({1}));
  write_snapshot_file(dir.file("notes.fpck"), payload_of({99}));
  write_snapshot_file(dir.file("snapshot-junk.fpck"), payload_of({98}));
  EXPECT_EQ(rotation.sequences(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(rotation.load_latest().payload, payload_of({1}));
}

}  // namespace
}  // namespace fedpower::ckpt
