#include "ckpt/binary_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fedpower::ckpt {
namespace {

TEST(BinaryIo, ScalarsRoundTrip) {
  Writer out;
  out.u8(0xab);
  out.u16(0xbeef);
  out.u32(0xdeadbeefu);
  out.u64(0x0123456789abcdefULL);
  out.f64(-1.5e300);
  out.f32(2.25f);
  const auto bytes = out.data();

  Reader in(bytes);
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u16(), 0xbeef);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(in.f64(), -1.5e300);
  EXPECT_FLOAT_EQ(in.f32(), 2.25f);
  EXPECT_TRUE(in.exhausted());
}

TEST(BinaryIo, MultiByteValuesAreLittleEndian) {
  Writer out;
  out.u32(0x04030201u);
  const auto& bytes = out.data();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
  EXPECT_EQ(bytes[2], 0x03);
  EXPECT_EQ(bytes[3], 0x04);
}

TEST(BinaryIo, NonFiniteDoublesRoundTripBitExact) {
  Writer out;
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.f64(std::numeric_limits<double>::infinity());
  out.f64(-0.0);
  Reader in(out.data());
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_EQ(in.f64(), std::numeric_limits<double>::infinity());
  const double neg_zero = in.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
}

TEST(BinaryIo, StringsAndVectorsRoundTrip) {
  Writer out;
  out.str("water-ns");
  out.str("");
  out.vec_f64(std::vector<double>{1.0, -2.5, 3.75});
  out.vec_u64(std::vector<std::uint64_t>{7, 0, 42});
  out.vec_u8(std::vector<std::uint8_t>{9, 8});
  Reader in(out.data());
  EXPECT_EQ(in.str(), "water-ns");
  EXPECT_EQ(in.str(), "");
  EXPECT_EQ(in.vec_f64(), (std::vector<double>{1.0, -2.5, 3.75}));
  EXPECT_EQ(in.vec_u64(), (std::vector<std::uint64_t>{7, 0, 42}));
  EXPECT_EQ(in.vec_u8(), (std::vector<std::uint8_t>{9, 8}));
  EXPECT_TRUE(in.exhausted());
}

TEST(BinaryIo, RawBytesHaveNoFraming) {
  Writer out;
  out.raw(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(out.size(), 3u);  // verbatim, no length prefix
  Reader in(out.data());
  EXPECT_EQ(in.raw(3), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(BinaryIo, ReadingPastEndThrowsCorrupt) {
  Writer out;
  out.u16(1);
  Reader in(out.data());
  (void)in.u8();
  EXPECT_THROW((void)in.u16(), CorruptSnapshotError);
  Reader in2(out.data());
  EXPECT_THROW((void)in2.u64(), CorruptSnapshotError);
  Reader in3(out.data());
  EXPECT_THROW((void)in3.raw(3), CorruptSnapshotError);
}

TEST(BinaryIo, TruncatedStringThrowsCorrupt) {
  Writer out;
  out.str("federated");
  auto bytes = out.take();
  bytes.resize(bytes.size() - 3);
  Reader in(bytes);
  EXPECT_THROW((void)in.str(), CorruptSnapshotError);
}

TEST(BinaryIo, ForgedHugeVectorCountThrowsInsteadOfAllocating) {
  // A forged count of 2^61 elements times 8 bytes overflows u64 into a
  // small number; the division-based guard must reject it before any
  // allocation happens.
  Writer out;
  out.u64(0x2000000000000000ULL);
  out.f64(1.0);
  Reader in(out.data());
  EXPECT_THROW((void)in.vec_f64(), CorruptSnapshotError);
}

TEST(BinaryIo, TagMismatchNamesComponent) {
  Writer out;
  write_tag(out, Tag{'A', 'D', 'A', 'M'});
  Reader good(out.data());
  EXPECT_NO_THROW(expect_tag(good, Tag{'A', 'D', 'A', 'M'}, "Adam"));
  Reader bad(out.data());
  try {
    expect_tag(bad, Tag{'S', 'G', 'D', '0'}, "Sgd");
    FAIL() << "expect_tag should have thrown";
  } catch (const CorruptSnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("Sgd"), std::string::npos);
  }
}

}  // namespace
}  // namespace fedpower::ckpt
