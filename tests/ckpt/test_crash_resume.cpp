// The tentpole acceptance test (DESIGN.md §9): a federated run killed at
// round k and resumed from its durable snapshot finishes bit-identical to
// the run that was never interrupted — same global model, same per-device
// and fleet curves, same traffic totals — at every thread count. Corruption
// of the newest rotation entry silently falls back to the previous one.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/errors.hpp"
#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / ("fedpower_resume_" + name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

ExperimentConfig resume_config() {
  ExperimentConfig config;
  config.rounds = 20;
  config.controller.steps_per_round = 10;
  config.eval.episode_intervals = 6;
  config.seed = 5;
  return config;
}

std::vector<std::vector<sim::AppProfile>> two_devices() {
  return {{*sim::splash2_app("fft")}, {*sim::splash2_app("radix")}};
}

void expect_same_curve(const RoundCurve& a, const RoundCurve& b,
                       const char* what) {
  EXPECT_EQ(a.reward, b.reward) << what;
  EXPECT_EQ(a.mean_freq_mhz, b.mean_freq_mhz) << what;
  EXPECT_EQ(a.stddev_freq_mhz, b.stddev_freq_mhz) << what;
  EXPECT_EQ(a.mean_power_w, b.mean_power_w) << what;
  EXPECT_EQ(a.violation_rate, b.violation_rate) << what;
}

void expect_same_result(const FederatedRunResult& a,
                        const FederatedRunResult& b) {
  // Guard against a vacuous pass: the runs must have produced real output.
  ASSERT_FALSE(b.global_params.empty());
  ASSERT_FALSE(b.fleet.reward.empty());
  EXPECT_EQ(a.global_params, b.global_params);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t d = 0; d < a.devices.size(); ++d)
    expect_same_curve(a.devices[d], b.devices[d], "device curve");
  expect_same_curve(a.fleet, b.fleet, "fleet curve");
  EXPECT_EQ(a.eval_app_per_round, b.eval_app_per_round);
  EXPECT_EQ(a.traffic.uplink_transfers, b.traffic.uplink_transfers);
  EXPECT_EQ(a.traffic.uplink_bytes, b.traffic.uplink_bytes);
  EXPECT_EQ(a.traffic.downlink_transfers, b.traffic.downlink_transfers);
  EXPECT_EQ(a.traffic.downlink_bytes, b.traffic.downlink_bytes);
}

/// Runs 8 rounds with snapshots, then resumes to 20, at the given thread
/// count, and compares against the uninterrupted 20-round run.
void check_resume_bit_identical(std::size_t num_threads) {
  const TempDir dir("fed_" + std::to_string(num_threads));
  ExperimentConfig config = resume_config();
  config.num_threads = num_threads;
  const auto straight = run_federated(config, two_devices(),
                                      sim::splash2_suite(), true);

  ExperimentConfig first = config;
  first.rounds = 8;
  first.checkpoint.every_rounds = 4;
  first.checkpoint.dir = dir.path.string();
  (void)run_federated(first, two_devices(), sim::splash2_suite(), true);
  // Snapshots after rounds 4 and 8.
  EXPECT_EQ(ckpt::SnapshotRotation(dir.path.string(), 3).sequences(),
            (std::vector<std::uint64_t>{1, 2}));

  ExperimentConfig second = config;
  second.checkpoint.resume_from = dir.path.string();
  const auto resumed = run_federated(second, two_devices(),
                                     sim::splash2_suite(), true);
  expect_same_result(resumed, straight);
}

TEST(CrashResume, FederatedResumeIsBitIdenticalSerial) {
  check_resume_bit_identical(1);
}

TEST(CrashResume, FederatedResumeIsBitIdenticalFourThreads) {
  check_resume_bit_identical(4);
}

TEST(CrashResume, CorruptNewestSnapshotFallsBackToOlderEntry) {
  const TempDir dir("fed_corrupt");
  const ExperimentConfig config = resume_config();
  const auto straight = run_federated(config, two_devices(),
                                      sim::splash2_suite(), true);

  ExperimentConfig first = config;
  first.rounds = 8;
  first.checkpoint.every_rounds = 4;
  first.checkpoint.dir = dir.path.string();
  (void)run_federated(first, two_devices(), sim::splash2_suite(), true);

  // Single-byte damage to the newest snapshot (round 8): the resume must
  // silently fall back to the round-4 entry and still reproduce the
  // uninterrupted run exactly — just redoing more rounds.
  const ckpt::SnapshotRotation rotation(dir.path.string(), 3);
  const std::string newest = rotation.path_for(2);
  auto bytes = ckpt::read_file_bytes(newest);
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  ExperimentConfig second = config;
  second.checkpoint.resume_from = dir.path.string();
  const auto resumed = run_federated(second, two_devices(),
                                     sim::splash2_suite(), true);
  expect_same_result(resumed, straight);
}

TEST(CrashResume, LocalOnlyResumeIsBitIdentical) {
  const TempDir dir("local");
  ExperimentConfig config = resume_config();
  config.rounds = 10;
  const auto straight = run_local_only(config, two_devices(),
                                       sim::splash2_suite(), true);

  ExperimentConfig first = config;
  first.rounds = 4;
  first.checkpoint.every_rounds = 4;
  first.checkpoint.dir = dir.path.string();
  (void)run_local_only(first, two_devices(), sim::splash2_suite(), true);

  ExperimentConfig second = config;
  second.checkpoint.resume_from = dir.path.string();
  const auto resumed = run_local_only(second, two_devices(),
                                      sim::splash2_suite(), true);
  EXPECT_EQ(resumed.final_params, straight.final_params);
  ASSERT_EQ(resumed.devices.size(), straight.devices.size());
  for (std::size_t d = 0; d < straight.devices.size(); ++d)
    expect_same_curve(resumed.devices[d], straight.devices[d],
                      "local device curve");
  expect_same_curve(resumed.fleet, straight.fleet, "local fleet curve");
}

TEST(CrashResume, ResumeFromMissingPathThrowsNotFound) {
  ExperimentConfig config = resume_config();
  config.rounds = 2;
  config.checkpoint.resume_from = "/nonexistent_fedpower_snapshot.fpck";
  EXPECT_THROW((void)run_federated(config, two_devices(),
                                   sim::splash2_suite(), true),
               ckpt::SnapshotNotFoundError);
}

TEST(CrashResume, CheckpointingWithoutDirIsAConfigError) {
  ExperimentConfig config = resume_config();
  config.rounds = 2;
  config.checkpoint.every_rounds = 1;  // dir left empty
  EXPECT_THROW((void)run_federated(config, two_devices(),
                                   sim::splash2_suite(), true),
               ckpt::CkptError);
}

TEST(CrashResume, FederatedSnapshotRejectedByLocalRunner) {
  const TempDir dir("cross_mode");
  ExperimentConfig first = resume_config();
  first.rounds = 4;
  first.checkpoint.every_rounds = 4;
  first.checkpoint.dir = dir.path.string();
  (void)run_federated(first, two_devices(), sim::splash2_suite(), true);

  ExperimentConfig second = resume_config();
  second.rounds = 8;
  second.checkpoint.resume_from = dir.path.string();
  // The section tag names the experiment type; a federated snapshot cannot
  // silently restore into a local-only run.
  EXPECT_THROW((void)run_local_only(second, two_devices(),
                                    sim::splash2_suite(), true),
               ckpt::CorruptSnapshotError);
}

TEST(CrashResume, ResumeFromExplicitSnapshotFile) {
  const TempDir dir("explicit_file");
  ExperimentConfig config = resume_config();
  config.rounds = 12;
  const auto straight = run_federated(config, two_devices(),
                                      sim::splash2_suite(), true);

  ExperimentConfig first = config;
  first.rounds = 6;
  first.checkpoint.every_rounds = 6;
  first.checkpoint.dir = dir.path.string();
  (void)run_federated(first, two_devices(), sim::splash2_suite(), true);

  ExperimentConfig second = config;
  second.checkpoint.resume_from =
      ckpt::SnapshotRotation(dir.path.string(), 3).path_for(1);
  const auto resumed = run_federated(second, two_devices(),
                                     sim::splash2_suite(), true);
  expect_same_result(resumed, straight);
}

}  // namespace
}  // namespace fedpower::core
