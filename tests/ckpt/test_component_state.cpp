// Save/restore equivalence per stateful component: serialize mid-stream,
// restore into a freshly built (differently seeded) instance, drive both
// with identical inputs and require bit-identical behaviour — the unit-level
// version of the crash-resume guarantee (DESIGN.md §9).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "ckpt/errors.hpp"
#include "fed/federation.hpp"
#include "nn/optimizer.hpp"
#include "rl/drift.hpp"
#include "rl/neural_agent.hpp"
#include "rl/replay_buffer.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"

namespace fedpower {
namespace {

std::vector<std::uint8_t> saved_bytes(const auto& component) {
  ckpt::Writer out;
  component.save_state(out);
  return out.take();
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(ComponentState, SgdResumesMomentumExactly) {
  nn::Sgd original(0.1, 0.9);
  std::vector<double> params = {0.0, 1.0};
  for (int i = 0; i < 7; ++i) original.step(params, {1.0, -0.5});

  const auto bytes = saved_bytes(original);
  nn::Sgd restored(0.1, 0.9);
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());

  std::vector<double> params_restored = params;
  for (int i = 0; i < 20; ++i) {
    original.step(params, {0.3, 0.3});
    restored.step(params_restored, {0.3, 0.3});
  }
  EXPECT_EQ(params, params_restored);
}

TEST(ComponentState, AdamResumesMomentsAndTimestepExactly) {
  nn::Adam original(0.01);
  std::vector<double> params = {1.0, -2.0, 0.5};
  for (int i = 0; i < 13; ++i)
    original.step(params, {0.1, -0.2, 0.05});

  const auto bytes = saved_bytes(original);
  nn::Adam restored(0.01);
  ckpt::Reader in(bytes);
  restored.restore_state(in);

  std::vector<double> params_restored = params;
  for (int i = 0; i < 50; ++i) {
    original.step(params, {-0.05, 0.1, 0.2});
    restored.step(params_restored, {-0.05, 0.1, 0.2});
  }
  EXPECT_EQ(params, params_restored);
}

TEST(ComponentState, AdamRejectsWrongDimensionSnapshot) {
  nn::Adam two_dim(0.01);
  std::vector<double> params = {1.0, 2.0};
  two_dim.step(params, {0.1, 0.1});
  const auto bytes = saved_bytes(two_dim);

  nn::Adam three_dim(0.01);
  std::vector<double> other = {1.0, 2.0, 3.0};
  three_dim.step(other, {0.1, 0.1, 0.1});
  ckpt::Reader in(bytes);
  EXPECT_THROW(three_dim.restore_state(in), ckpt::StateMismatchError);
}

TEST(ComponentState, OptimizerSnapshotsAreNotInterchangeable) {
  nn::Adam adam(0.01);
  std::vector<double> params = {1.0};
  adam.step(params, {0.1});
  const auto bytes = saved_bytes(adam);
  nn::Sgd sgd(0.01);
  ckpt::Reader in(bytes);
  EXPECT_THROW(sgd.restore_state(in), ckpt::CorruptSnapshotError);
}

// ---------------------------------------------------------------------------
// Replay buffer
// ---------------------------------------------------------------------------

TEST(ComponentState, ReplayBufferRoundTripsContentsAndWritePosition) {
  rl::ReplayBuffer original(4, 2);
  for (int i = 0; i < 6; ++i)  // wraps around: head mid-buffer
    original.push(std::vector<double>{1.0 * i, 2.0 * i}, static_cast<std::size_t>(i % 3),
                  0.1 * i);

  const auto bytes = saved_bytes(original);
  rl::ReplayBuffer restored(4, 2);
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());

  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.at(i).state, original.at(i).state);
    EXPECT_EQ(restored.at(i).action, original.at(i).action);
    EXPECT_EQ(restored.at(i).reward, original.at(i).reward);
  }
  // Both evict the same slot on the next push.
  original.push(std::vector<double>{9.0, 9.0}, 0, 9.0);
  restored.push(std::vector<double>{9.0, 9.0}, 0, 9.0);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(restored.at(i).reward, original.at(i).reward);
}

TEST(ComponentState, ReplayBufferRejectsWrongGeometry) {
  rl::ReplayBuffer original(4, 2);
  original.push(std::vector<double>{1.0, 2.0}, 0, 0.5);
  const auto bytes = saved_bytes(original);

  rl::ReplayBuffer wrong_capacity(8, 2);
  ckpt::Reader in1(bytes);
  EXPECT_THROW(wrong_capacity.restore_state(in1), ckpt::StateMismatchError);

  rl::ReplayBuffer wrong_dim(4, 3);
  ckpt::Reader in2(bytes);
  EXPECT_THROW(wrong_dim.restore_state(in2), ckpt::StateMismatchError);
}

// ---------------------------------------------------------------------------
// Drift monitor
// ---------------------------------------------------------------------------

TEST(ComponentState, DriftMonitorResumesTrackersExactly) {
  rl::DriftConfig config;
  config.warmup = 10;
  config.cooldown = 20;
  config.drop_threshold = 0.3;

  rl::DriftMonitor original(config);
  for (int i = 0; i < 50; ++i) (void)original.observe(0.6);

  const auto bytes = saved_bytes(original);
  rl::DriftMonitor restored(config);
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());

  // A reward collapse right after the save point must trigger identically.
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(original.observe(-0.8), restored.observe(-0.8)) << i;
  EXPECT_EQ(original.detections(), restored.detections());
}

// ---------------------------------------------------------------------------
// Neural agent (model + optimizer + replay + exploration RNG)
// ---------------------------------------------------------------------------

rl::NeuralAgentConfig small_agent_config() {
  rl::NeuralAgentConfig config;
  config.state_dim = 3;
  config.action_count = 4;
  config.hidden_sizes = {8};
  config.replay_capacity = 64;
  config.batch_size = 16;
  config.optimize_interval = 5;
  return config;
}

TEST(ComponentState, NeuralAgentResumesTrainingBitIdentical) {
  const auto config = small_agent_config();
  rl::NeuralBanditAgent original(config, util::Rng{7});
  const std::vector<double> state = {0.4, -0.2, 0.9};
  for (int i = 0; i < 60; ++i) {
    const std::size_t a = original.select_action(state);
    original.record(state, a, a == 1 ? 0.8 : -0.1);
  }

  const auto bytes = saved_bytes(original);
  // Differently seeded construction: every word of restored state must come
  // from the snapshot, not survive from initialization.
  rl::NeuralBanditAgent restored(config, util::Rng{999});
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(restored.parameters(), original.parameters());
  EXPECT_EQ(restored.step_count(), original.step_count());

  for (int i = 0; i < 60; ++i) {
    const std::size_t a = original.select_action(state);
    const std::size_t b = restored.select_action(state);
    ASSERT_EQ(a, b) << "exploration diverged at step " << i;
    original.record(state, a, a == 1 ? 0.8 : -0.1);
    restored.record(state, b, b == 1 ? 0.8 : -0.1);
  }
  EXPECT_EQ(restored.parameters(), original.parameters());
  EXPECT_EQ(restored.update_count(), original.update_count());
}

TEST(ComponentState, NeuralAgentRejectsWrongArchitecture) {
  rl::NeuralBanditAgent original(small_agent_config(), util::Rng{7});
  const auto bytes = saved_bytes(original);

  auto bigger = small_agent_config();
  bigger.hidden_sizes = {16};
  rl::NeuralBanditAgent other(bigger, util::Rng{7});
  ckpt::Reader in(bytes);
  EXPECT_THROW(other.restore_state(in), ckpt::CkptError);
}

// ---------------------------------------------------------------------------
// Processor (simulated hardware: RNG, thermal, in-flight application)
// ---------------------------------------------------------------------------

TEST(ComponentState, ProcessorResumesMidApplicationBitIdentical) {
  sim::ProcessorConfig config;  // defaults: noise + jitter active
  sim::SingleAppWorkload workload_a(*sim::splash2_app("fft"));
  sim::SingleAppWorkload workload_b(*sim::splash2_app("fft"));

  sim::Processor original(config, util::Rng{11});
  original.set_workload(&workload_a);
  original.set_level(9);
  for (int i = 0; i < 25; ++i) (void)original.run_interval(0.5);

  const auto bytes = saved_bytes(original);
  sim::Processor restored(config, util::Rng{4242});
  restored.set_workload(&workload_b);
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(restored.time_s(), original.time_s());

  for (int i = 0; i < 25; ++i) {
    if (i == 10) {
      original.set_level(3);
      restored.set_level(3);
    }
    const sim::TelemetrySample a = original.run_interval(0.5);
    const sim::TelemetrySample b = restored.run_interval(0.5);
    EXPECT_EQ(a.app_name, b.app_name) << i;
    EXPECT_EQ(a.level, b.level) << i;
    EXPECT_EQ(a.freq_mhz, b.freq_mhz) << i;
    EXPECT_EQ(a.power_w, b.power_w) << i;
    EXPECT_EQ(a.true_power_w, b.true_power_w) << i;
    EXPECT_EQ(a.instructions, b.instructions) << i;
    EXPECT_EQ(a.ipc, b.ipc) << i;
    EXPECT_EQ(a.temperature_c, b.temperature_c) << i;
  }
}

// ---------------------------------------------------------------------------
// Federated averaging server
// ---------------------------------------------------------------------------

/// Deterministic test client: adds a fixed delta each local round.
class DeltaClient final : public fed::FederatedClient {
 public:
  explicit DeltaClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

TEST(ComponentState, FederationServerResumesRoundsAndParticipationStream) {
  DeltaClient a1(+1.0), a2(-0.5), a3(+0.25);
  fed::InProcessTransport transport_a;
  fed::FederatedAveraging original({&a1, &a2, &a3}, &transport_a);
  original.initialize({0.0, 10.0});
  original.set_participation(0.5, 77);  // 2 of 3 clients per round
  for (int i = 0; i < 4; ++i) (void)original.run_round();

  const auto bytes = saved_bytes(original);
  DeltaClient b1(+1.0), b2(-0.5), b3(+0.25);
  fed::InProcessTransport transport_b;
  fed::FederatedAveraging restored({&b1, &b2, &b3}, &transport_b);
  restored.initialize({99.0, 99.0});  // overwritten by the snapshot
  restored.set_participation(0.5, 1234);  // seed overwritten too
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(restored.rounds_completed(), original.rounds_completed());
  EXPECT_EQ(restored.global_model(), original.global_model());

  for (int i = 0; i < 6; ++i) {
    const fed::RoundResult ra = original.run_round();
    const fed::RoundResult rb = restored.run_round();
    EXPECT_EQ(ra.participants, rb.participants) << "round " << i;
  }
  EXPECT_EQ(restored.global_model(), original.global_model());
}

TEST(ComponentState, FederationServerRejectsWrongClientCount) {
  DeltaClient a1(1.0), a2(1.0);
  fed::InProcessTransport transport;
  fed::FederatedAveraging two({&a1, &a2}, &transport);
  two.initialize({0.0});
  const auto bytes = saved_bytes(two);

  DeltaClient b1(1.0);
  fed::FederatedAveraging one({&b1}, &transport);
  one.initialize({0.0});
  ckpt::Reader in(bytes);
  EXPECT_THROW(one.restore_state(in), ckpt::StateMismatchError);
}

}  // namespace
}  // namespace fedpower
