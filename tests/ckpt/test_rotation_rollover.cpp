// Sequence-number rollover regression for the snapshot rotation.
//
// The original path formatter used a fixed %06 width, so sequence numbers
// from 10^6 up (plausible in long soaks checkpointing every round) spilled
// past the padding: filename ordering and numeric ordering diverged, and a
// rotation directory could prune or resume against the wrong entry. The
// rotation now pads to 12 digits, parses any digit width, and always acts
// on the filenames actually present — these tests pin all three properties,
// including that legacy narrow-format snapshots keep loading and pruning.
#include "ckpt/rotation.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"

namespace fedpower::ckpt {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / ("fedpower_rollover_" + name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& leaf) const {
    return (path / leaf).string();
  }
};

std::vector<std::uint8_t> payload_of(std::uint8_t v) { return {v, v, v}; }

/// Plants a snapshot under the legacy 6-digit name for `sequence`.
std::string write_legacy(const TempDir& dir, std::uint64_t sequence,
                         std::uint8_t marker) {
  char name[32];
  std::snprintf(name, sizeof name, "snapshot-%06llu.fpck",
                static_cast<unsigned long long>(sequence));
  const std::string path = dir.file(name);
  write_snapshot_file(path, payload_of(marker));
  return path;
}

TEST(RotationRollover, SequencesPastMillionKeepNumericOrder) {
  TempDir dir("million");
  SnapshotRotation rotation(dir.path.string(), 10);
  // Legacy narrow names right at the rollover boundary: %06 of 999999 is
  // the last aligned name, 10^6 the first that overflowed the width.
  write_legacy(dir, 999998, 1);
  write_legacy(dir, 999999, 2);
  const std::string next = rotation.save(payload_of(3));

  const std::vector<std::uint64_t> seqs = rotation.sequences();
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{999998, 999999, 1000000}));

  // The newest entry is the numerically largest, not the lexicographically
  // largest name (pre-fix, "snapshot-999999.fpck" sorted after the
  // overflowed "snapshot-1000000.fpck" in name order).
  const LoadedSnapshot latest = rotation.load_latest();
  EXPECT_EQ(latest.sequence, 1000000u);
  EXPECT_EQ(latest.payload, payload_of(3));
  EXPECT_EQ(latest.path, next);
}

TEST(RotationRollover, PathForRoundTripsThroughParse) {
  TempDir dir("roundtrip");
  SnapshotRotation rotation(dir.path.string(), 3);
  // Write snapshots whose sequences straddle the old width limit; each must
  // be rediscovered under the exact sequence it was written as.
  for (const std::uint64_t seq :
       {std::uint64_t{999999}, std::uint64_t{1000000},
        std::uint64_t{123456789012345ULL}}) {
    write_snapshot_file(rotation.path_for(seq), payload_of(9));
  }
  EXPECT_EQ(rotation.sequences(),
            (std::vector<std::uint64_t>{999999, 1000000, 123456789012345ULL}));
}

TEST(RotationRollover, LegacyNarrowNamesStillLoadAndPrune) {
  TempDir dir("legacy");
  const std::string oldest = write_legacy(dir, 41, 1);
  write_legacy(dir, 42, 2);

  SnapshotRotation rotation(dir.path.string(), 2);
  // Resuming against a directory written by the narrow-format era works.
  EXPECT_EQ(rotation.load_latest().sequence, 42u);

  // A new save continues the sequence under the wide format and prunes the
  // oldest legacy file by its on-disk name (path_for would point at a
  // 12-digit name that never existed).
  rotation.save(payload_of(3));
  EXPECT_FALSE(fs::exists(oldest));
  EXPECT_EQ(rotation.sequences(), (std::vector<std::uint64_t>{42, 43}));
  EXPECT_TRUE(fs::exists(rotation.path_for(43)));
}

TEST(RotationRollover, MixedWidthDirectoryPrunesOldestFirst) {
  TempDir dir("mixed");
  SnapshotRotation rotation(dir.path.string(), 3);
  write_legacy(dir, 999999, 1);
  rotation.save(payload_of(2));  // 1000000, wide format
  rotation.save(payload_of(3));  // 1000001
  rotation.save(payload_of(4));  // 1000002 -> prunes 999999
  EXPECT_EQ(rotation.sequences(),
            (std::vector<std::uint64_t>{1000000, 1000001, 1000002}));
  EXPECT_EQ(rotation.load_latest().payload, payload_of(4));
}

TEST(RotationRollover, AbsurdDigitRunsAreIgnoredNotMisparsed) {
  TempDir dir("absurd");
  // 21 digits cannot fit a u64; the file must be ignored, not wrapped into
  // some small sequence that could shadow a real snapshot.
  write_snapshot_file(dir.file("snapshot-184467440737095516160.fpck"),
                      payload_of(7));
  SnapshotRotation rotation(dir.path.string(), 3);
  EXPECT_TRUE(rotation.sequences().empty());
}

}  // namespace
}  // namespace fedpower::ckpt
