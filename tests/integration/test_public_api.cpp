// Public-API smoke test: everything a downstream user reaches through the
// umbrella header works together in one translation unit — the compile
// test for the README's promises.
#include "fedpower.hpp"

#include <gtest/gtest.h>

namespace fedpower {
namespace {

TEST(PublicApi, UmbrellaHeaderCoversEverySubsystem) {
  // util
  util::Rng rng(1);
  util::RunningStats stats;
  stats.add(rng.uniform());
  std::istringstream ini("x = 1\n");
  EXPECT_EQ(util::Config::parse(ini).get_int("x", 0), 1);

  // nn
  nn::Mlp mlp = nn::make_mlp(5, {32}, 15, rng);
  const auto payload = nn::encode_parameters(mlp.parameters());
  EXPECT_EQ(nn::decode_parameters(payload).size(), mlp.param_count());

  // sim
  sim::Processor processor(sim::ProcessorConfig{}, util::Rng{2});
  sim::SingleAppWorkload workload(*sim::splash2_app("fft"));
  processor.set_workload(&workload);
  processor.set_level(7);
  const sim::TelemetrySample sample = processor.run_interval(0.5);
  EXPECT_GT(sample.true_power_w, 0.0);
  sim::MulticoreProcessor multicore(
      sim::MulticoreConfig::jetson_nano_4core(), util::Rng{3});
  EXPECT_EQ(multicore.core_count(), 4u);
  util::Rng gen(4);
  EXPECT_EQ(sim::generate_suite(3, "g", {}, gen).size(), 3u);

  // rl
  rl::NeuralBanditAgent agent(rl::NeuralAgentConfig{}, util::Rng{5});
  rl::StateFeaturizer featurizer;
  const auto features = featurizer.featurize(sample);
  EXPECT_LT(agent.greedy_action(features), 15u);
  rl::DriftMonitor drift;
  drift.observe(0.5);
  rl::NeuralQAgent q_agent(rl::NeuralQConfig{}, util::Rng{6});
  EXPECT_EQ(q_agent.param_count(), agent.param_count());

  // baselines
  baselines::ProfitAgent profit(baselines::ProfitConfig{}, util::Rng{7});
  EXPECT_LT(profit.greedy_action(
                baselines::profit_features(sample, 1479.0)),
            15u);

  // core + fed, end to end (tiny).
  core::ExperimentConfig experiment;
  experiment.rounds = 2;
  experiment.controller.steps_per_round = 10;
  experiment.eval.episode_intervals = 5;
  const auto result = core::run_federated(
      experiment, core::resolve(core::table2_scenarios()[0]),
      sim::splash2_suite(), true);
  EXPECT_EQ(result.devices.size(), 2u);
  EXPECT_EQ(result.global_params.size(), agent.param_count());
}

TEST(PublicApi, FederationVariantsShareTheClientInterface) {
  // One controller instance can be wrapped by every decorator the library
  // ships and driven by both server types.
  sim::Processor processor(sim::ProcessorConfig{}, util::Rng{8});
  sim::SingleAppWorkload workload(*sim::splash2_app("lu"));
  processor.set_workload(&workload);
  core::ControllerConfig config;
  config.steps_per_round = 5;
  core::PowerController controller(config, &processor, util::Rng{9});

  const std::size_t total = controller.agent().param_count();
  fed::PersonalizedClient personalized(
      &controller, fed::shared_body_mask(total, 495));
  fed::DpConfig dp;
  dp.clip_norm = 1.0;
  fed::DpClient private_client(&personalized, dp);

  sim::Processor peer_proc(sim::ProcessorConfig{}, util::Rng{10});
  sim::SingleAppWorkload peer_workload(*sim::splash2_app("radix"));
  peer_proc.set_workload(&peer_workload);
  core::PowerController peer(config, &peer_proc, util::Rng{11});

  fed::InProcessTransport transport;
  fed::FederatedAveraging sync_server({&private_client, &peer}, &transport);
  sync_server.initialize(controller.local_parameters());
  sync_server.run(2);
  EXPECT_EQ(sync_server.rounds_completed(), 2u);

  fed::AsyncFederation async_server({&private_client, &peer}, {1, 2},
                                    &transport);
  async_server.initialize(sync_server.global_model());
  async_server.run_ticks(4);
  EXPECT_GE(async_server.stats().merges, 4u);
}

}  // namespace
}  // namespace fedpower
