// Integration: the power controller driving the 4-core shared-clock device
// through the CpuDevice interface.
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "sim/multicore.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"

namespace fedpower::core {
namespace {

ControllerConfig rail_config() {
  ControllerConfig config;
  config.p_crit_w = 1.5;
  config.k_offset_w = 0.1;
  config.featurizer.power_scale_w = 3.0;
  config.agent.tau_decay = 0.003;
  return config;
}

TEST(MulticoreControl, ControllerAcceptsMulticoreDevice) {
  sim::MulticoreProcessor proc(sim::MulticoreConfig::jetson_nano_4core(),
                               util::Rng{1});
  sim::SingleAppWorkload workload(*sim::splash2_app("fft"));
  proc.set_workload(0, &workload);
  PowerController controller(rail_config(), &proc, util::Rng{2});
  const sim::TelemetrySample sample = controller.step();
  EXPECT_GT(sample.true_power_w, 0.0);
  EXPECT_EQ(controller.agent().replay().size(), 1u);
}

TEST(MulticoreControl, LearnsToHoldRailBudgetWithComputeMix) {
  sim::MulticoreProcessor proc(sim::MulticoreConfig::jetson_nano_4core(),
                               util::Rng{3});
  std::vector<std::unique_ptr<sim::SingleAppWorkload>> workloads;
  for (const char* name : {"lu", "water-ns", "water-sp"}) {
    workloads.push_back(
        std::make_unique<sim::SingleAppWorkload>(*sim::splash2_app(name)));
    proc.set_workload(workloads.size() - 1, workloads.back().get());
  }
  PowerController controller(rail_config(), &proc, util::Rng{4});
  controller.run_steps(2000);

  util::RunningStats power;
  std::size_t violations = 0;
  for (int i = 0; i < 30; ++i) {
    const sim::TelemetrySample s = controller.greedy_step();
    power.add(s.true_power_w);
    if (s.true_power_w > 1.5) ++violations;
  }
  EXPECT_LT(power.mean(), 1.55);
  EXPECT_GT(power.mean(), 1.0);  // uses most of the rail budget
  EXPECT_LE(violations, 4u);
}

TEST(MulticoreControl, MemoryMixRunsFasterThanComputeMix) {
  // The learned shared level must be higher for a memory-bound mix (cheap
  // cycles) than for a compute-bound mix under the same rail budget.
  const auto train = [](const std::vector<const char*>& names,
                        std::uint64_t seed) {
    sim::MulticoreProcessor proc(sim::MulticoreConfig::jetson_nano_4core(),
                                 util::Rng{seed});
    std::vector<std::unique_ptr<sim::SingleAppWorkload>> workloads;
    for (const char* name : names) {
      workloads.push_back(
          std::make_unique<sim::SingleAppWorkload>(*sim::splash2_app(name)));
      proc.set_workload(workloads.size() - 1, workloads.back().get());
    }
    PowerController controller(rail_config(), &proc, util::Rng{seed + 1});
    controller.run_steps(2000);
    util::RunningStats freq;
    for (int i = 0; i < 20; ++i)
      freq.add(controller.greedy_step().freq_mhz);
    return freq.mean();
  };
  const double memory_freq = train({"radix", "ocean", "radix"}, 10);
  const double compute_freq = train({"lu", "water-ns", "water-sp"}, 20);
  EXPECT_GT(memory_freq, compute_freq + 150.0);
}

}  // namespace
}  // namespace fedpower::core
