// Learning-behaviour properties of the power controller on the simulated
// processor: does the agent actually find per-application optimal
// frequencies, and does the exploration schedule behave as Algorithm 1
// prescribes?
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "rl/policy.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace fedpower::core {
namespace {

struct TrainedRig {
  sim::ProcessorConfig proc_config;
  sim::Processor processor;
  sim::SingleAppWorkload workload;
  PowerController controller;

  TrainedRig(const std::string& app, std::size_t steps, std::uint64_t seed)
      : proc_config(),
        processor(proc_config, util::Rng{seed}),
        workload(*sim::splash2_app(app)),
        controller(fast_controller_config(), &processor,
                   util::Rng{seed + 1}) {
    processor.set_workload(&workload);
    controller.run_steps(steps);
  }

  static ControllerConfig fast_controller_config() {
    ControllerConfig config;
    config.agent.tau_decay = 0.003;  // converge within ~1500 steps
    return config;
  }

  /// Greedy level for the steady state reached while running this app.
  std::size_t greedy_level() {
    const sim::TelemetrySample sample = controller.greedy_step();
    return sample.level;
  }
};

TEST(Learning, FindsHighFrequencyForMemoryBoundApp) {
  TrainedRig rig("radix", 1500, 1);
  // radix is safe at f_max; the learned greedy level must be near the top.
  std::size_t level = 0;
  for (int i = 0; i < 5; ++i) level = rig.greedy_level();
  EXPECT_GE(level, 12u);
}

TEST(Learning, ThrottlesComputeBoundApp) {
  TrainedRig rig("water-ns", 1500, 2);
  std::size_t level = 14;
  util::RunningStats power;
  for (int i = 0; i < 10; ++i) {
    level = rig.greedy_level();
    power.add(rig.controller.last_reward());
  }
  // water-ns violates the budget above ~level 8; the policy must throttle.
  EXPECT_LE(level, 9u);
  EXPECT_GE(level, 5u);
}

TEST(Learning, SteadyStateRewardIsNearOptimum) {
  TrainedRig rig("lu", 1500, 3);
  util::RunningStats reward;
  for (int i = 0; i < 20; ++i) {
    rig.controller.greedy_step();
    reward.add(rig.controller.last_reward());
  }
  // The analytic optimum for lu is ~0.56 (level 7, 825.6 MHz); the learned
  // policy should be within ~20% of it and must not violate.
  EXPECT_GT(reward.mean(), 0.4);
  EXPECT_LT(reward.mean(), 0.75);
}

TEST(Learning, ViolationRateDropsOverTraining) {
  sim::ProcessorConfig proc_config;
  sim::Processor processor(proc_config, util::Rng{4});
  sim::SingleAppWorkload workload(*sim::splash2_app("water-sp"));
  processor.set_workload(&workload);
  ControllerConfig config = TrainedRig::fast_controller_config();
  PowerController controller(config, &processor, util::Rng{5});

  std::size_t early_violations = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::TelemetrySample s = controller.step();
    if (s.true_power_w > 0.6) ++early_violations;
  }
  controller.run_steps(1200);
  std::size_t late_violations = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::TelemetrySample s = controller.step();
    if (s.true_power_w > 0.6) ++late_violations;
  }
  EXPECT_LT(late_violations, early_violations);
}

TEST(Learning, PredictedRewardsApproachObservedRewards) {
  TrainedRig rig("fft", 1500, 6);
  // In the converged regime the chosen action's predicted reward must track
  // the realized reward.
  util::RunningStats error;
  for (int i = 0; i < 20; ++i) {
    const sim::TelemetrySample before = rig.controller.greedy_step();
    const auto features = rig.controller.featurizer().featurize(before);
    const auto mu = rig.controller.agent().predict(features);
    const std::size_t a = rl::argmax(mu);
    const sim::TelemetrySample after = rig.controller.greedy_step();
    (void)a;
    error.add(std::abs(mu[after.level] - rig.controller.last_reward()));
  }
  EXPECT_LT(error.mean(), 0.25);
}

TEST(Learning, TemperatureDecaysDuringTraining) {
  TrainedRig rig("barnes", 800, 7);
  EXPECT_LT(rig.controller.agent().temperature(), 0.1);
  EXPECT_GE(rig.controller.agent().temperature(), 0.01);
}

TEST(Learning, AveragedModelOfTwoSpecialistsGeneralizes) {
  // Miniature federation argument: average the weights of two agents
  // trained on opposite workload types and check the averaged policy is
  // sane on both (no constraint violations at the greedy level).
  TrainedRig mem("radix", 1500, 8);
  TrainedRig cpu("water-ns", 1500, 9);
  std::vector<double> avg = mem.controller.local_parameters();
  const std::vector<double> other = cpu.controller.local_parameters();
  for (std::size_t i = 0; i < avg.size(); ++i)
    avg[i] = 0.5 * (avg[i] + other[i]);

  // Install the averaged model on both devices, then fine-tune briefly
  // (one federated round's worth) as FedAvg clients would.
  mem.controller.receive_global(avg);
  cpu.controller.receive_global(avg);
  mem.controller.run_steps(100);
  cpu.controller.run_steps(100);

  util::RunningStats mem_reward;
  util::RunningStats cpu_reward;
  for (int i = 0; i < 10; ++i) {
    mem.controller.greedy_step();
    mem_reward.add(mem.controller.last_reward());
    cpu.controller.greedy_step();
    cpu_reward.add(cpu.controller.last_reward());
  }
  EXPECT_GT(mem_reward.mean(), 0.3);
  EXPECT_GT(cpu_reward.mean(), 0.3);
}

}  // namespace
}  // namespace fedpower::core
