// Regression guards for the paper's qualitative claims at reduced scale:
// if a refactor breaks the physics or the learning dynamics behind any
// headline result, these fail before the benches would show it.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"

namespace fedpower::core {
namespace {

ExperimentConfig reduced(std::size_t rounds) {
  ExperimentConfig config;
  config.rounds = rounds;
  config.seed = 42;
  config.eval.episode_intervals = 30;
  return config;
}

TEST(PaperClaims, Fig4FrequencyOrderingScenario2) {
  // Local B (ocean/radix) must select higher frequencies than the
  // federated policy, which sits above local A (water codes).
  const auto apps = resolve(table2_scenarios()[1]);
  const auto suite = sim::splash2_suite();
  const auto fed = run_federated(reduced(40), apps, suite, true);
  const auto local = run_local_only(reduced(40), apps, suite, true);
  const double fed_freq = util::mean(fed.devices[0].mean_freq_mhz);
  const double local_a = util::mean(local.devices[0].mean_freq_mhz);
  const double local_b = util::mean(local.devices[1].mean_freq_mhz);
  EXPECT_GT(local_b, fed_freq);
  EXPECT_GT(local_b, local_a + 200.0);  // the aggressive device stands out
}

TEST(PaperClaims, FederatedRewardSimilarAcrossDevices) {
  // §IV-A: "In the federated setting, the reward is similar on both
  // devices."
  const auto apps = resolve(table2_scenarios()[0]);
  const auto fed = run_federated(reduced(30), apps, sim::splash2_suite(),
                                 true);
  const double a = util::mean(fed.devices[0].reward);
  const double b = util::mean(fed.devices[1].reward);
  EXPECT_NEAR(a, b, 0.1);
}

TEST(PaperClaims, BothTechniquesRespectTheConstraintOnAverage) {
  // Table III: "Both techniques keep the average power consumption below
  // the constraint."
  const auto apps = resolve(six_app_split());
  ExperimentConfig config = reduced(50);
  const auto ours = run_federated(config, apps, sim::splash2_suite(), false);
  const auto sota = run_collab_profit(config, apps);

  EvalConfig eval;
  eval.processor = config.processor;
  const Evaluator evaluator(config.controller, eval);
  util::RunningStats ours_power;
  util::RunningStats sota_power;
  for (const auto& m : evaluate_apps(
           evaluator, evaluator.neural_policy(ours.global_params),
           sim::splash2_suite(), 1))
    ours_power.add(m.power_w);
  for (const auto& m : evaluate_apps(
           evaluator,
           sota.policy(0, config.processor.vf_table.f_max_mhz()),
           sim::splash2_suite(), 1))
    sota_power.add(m.power_w);
  EXPECT_LT(ours_power.mean(), 0.6);
  EXPECT_LT(sota_power.mean(), 0.6);
  // And ours operates closer to the threshold (power-efficiency claim).
  EXPECT_GT(ours_power.mean(), sota_power.mean());
}

TEST(PaperClaims, CommunicationIsWeightsOnlyAndSmall) {
  // §IV-C: 2.8 kB per transfer; nothing but model payloads on the wire.
  const auto apps = resolve(table2_scenarios()[0]);
  const auto fed = run_federated(reduced(5), apps, sim::splash2_suite(),
                                 false);
  EXPECT_NEAR(fed.traffic.mean_transfer_bytes(), 2760.0, 1.0);
  // Total = rounds x clients x 2 directions x payload, nothing else.
  EXPECT_EQ(fed.traffic.total_bytes(), 5u * 2u * 2u * 2760u);
}

TEST(PaperClaims, NeuralPolicySeparatesMemoryFromComputeApps) {
  // The expressiveness claim: a single trained network must choose
  // clearly different frequencies for radix (memory) and water-ns
  // (compute) — that is the whole Fig. 4/Fig. 5 mechanism.
  const auto apps = resolve(six_app_split());
  const auto fed = run_federated(reduced(50), apps, sim::splash2_suite(),
                                 false);
  EvalConfig eval;
  eval.processor = ExperimentConfig{}.processor;
  const Evaluator evaluator(ControllerConfig{}, eval);
  const auto policy = evaluator.neural_policy(fed.global_params);
  const auto radix =
      evaluator.run_episode(policy, *sim::splash2_app("radix"), 3);
  const auto water =
      evaluator.run_episode(policy, *sim::splash2_app("water-ns"), 3);
  EXPECT_GT(radix.mean_freq_mhz, water.mean_freq_mhz + 300.0);
}

}  // namespace
}  // namespace fedpower::core
