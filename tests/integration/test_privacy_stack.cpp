// Integration: composing the privacy/robustness decorators — DP +
// personalization + robust aggregation + secure aggregation working
// together on real controllers.
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "fed/dp.hpp"
#include "fed/personalize.hpp"
#include "fed/secure_agg.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

struct Device {
  std::unique_ptr<sim::Processor> processor;
  std::unique_ptr<sim::Workload> workload;
  std::unique_ptr<PowerController> controller;
};

std::vector<Device> make_devices(std::size_t n, std::uint64_t seed) {
  util::Rng root(seed);
  const auto suite = sim::splash2_suite();
  std::vector<Device> devices;
  for (std::size_t d = 0; d < n; ++d) {
    Device device;
    device.processor = std::make_unique<sim::Processor>(
        sim::ProcessorConfig{}, root.split());
    device.workload = std::make_unique<sim::RandomWorkload>(
        std::vector<sim::AppProfile>{suite[d % 12], suite[(d + 6) % 12]});
    device.processor->set_workload(device.workload.get());
    ControllerConfig config;
    config.steps_per_round = 30;  // fast test rounds
    device.controller = std::make_unique<PowerController>(
        config, device.processor.get(), root.split());
    devices.push_back(std::move(device));
  }
  return devices;
}

TEST(PrivacyStack, DpDecoratedControllersFederate) {
  auto devices = make_devices(2, 1);
  fed::DpConfig dp;
  dp.clip_norm = 2.0;
  dp.noise_multiplier = 0.01;
  fed::DpClient a(devices[0].controller.get(), dp);
  fed::DpClient b(devices[1].controller.get(), dp);
  fed::InProcessTransport transport;
  fed::FederatedAveraging server({&a, &b}, &transport);
  server.initialize(devices[0].controller->local_parameters());
  server.run(3);
  EXPECT_EQ(server.rounds_completed(), 3u);
  // Training happened on the inner controllers.
  EXPECT_EQ(devices[0].controller->agent().step_count(), 90u);
  // Updates were clipped: norms are recorded.
  EXPECT_GT(a.last_update_norm(), 0.0);
}

TEST(PrivacyStack, DpPlusPersonalizationCompose) {
  auto devices = make_devices(2, 2);
  const std::size_t total = devices[0].controller->agent().param_count();
  const auto mask = fed::shared_body_mask(total, 32 * 15 + 15);
  fed::PersonalizedClient p0(devices[0].controller.get(), mask);
  fed::PersonalizedClient p1(devices[1].controller.get(), mask);
  fed::DpConfig dp;
  dp.clip_norm = 2.0;
  fed::DpClient d0(&p0, dp);
  fed::DpClient d1(&p1, dp);
  fed::InProcessTransport transport;
  fed::FederatedAveraging server({&d0, &d1}, &transport);
  server.initialize(devices[0].controller->local_parameters());
  server.run(2);
  // Both devices trained and have valid parameter vectors of full size.
  EXPECT_EQ(devices[0].controller->local_parameters().size(), total);
  EXPECT_EQ(devices[1].controller->local_parameters().size(), total);
}

TEST(PrivacyStack, SecureAggregationMatchesPlainMean) {
  // The masked path must produce (to fixed-point resolution) the same
  // global model as direct averaging of the same uploads.
  auto devices = make_devices(3, 3);
  for (auto& device : devices) device.controller->run_local_round();
  std::vector<std::vector<double>> models;
  for (auto& device : devices)
    models.push_back(device.controller->local_parameters());

  const std::size_t dim = models[0].size();
  fed::SecureAggregationSession session(3, dim, 77);
  std::vector<std::vector<std::uint64_t>> payloads;
  for (std::size_t d = 0; d < 3; ++d)
    payloads.push_back(session.masked_payload(d, models[d]));
  const std::vector<double> via_masks = session.unmask_mean(payloads);
  const std::vector<double> direct = fed::average_unweighted(models);
  for (std::size_t i = 0; i < dim; ++i)
    EXPECT_NEAR(via_masks[i], direct[i], 1e-5);
}

TEST(PrivacyStack, RobustAggregationWithRealControllers) {
  auto devices = make_devices(4, 4);
  std::vector<fed::FederatedClient*> clients;
  for (auto& device : devices) clients.push_back(device.controller.get());
  fed::InProcessTransport transport;
  fed::FederatedAveraging server(clients, &transport,
                                 fed::AggregationMode::kCoordinateMedian);
  server.initialize(devices[0].controller->local_parameters());
  server.run(3);
  EXPECT_EQ(server.global_model().size(),
            devices[0].controller->agent().param_count());
}

}  // namespace
}  // namespace fedpower::core
