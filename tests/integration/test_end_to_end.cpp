// End-to-end integration tests exercising the full federated power-control
// pipeline at reduced scale (fewer rounds than the paper's 100, same
// structure). The full-scale reproduction lives in bench/.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"

namespace fedpower::core {
namespace {

ExperimentConfig paper_config(std::size_t rounds) {
  ExperimentConfig config;  // ControllerConfig defaults are Table I
  config.rounds = rounds;
  config.eval.episode_intervals = 30;
  config.seed = 42;
  return config;
}

double tail_mean(const std::vector<double>& xs, std::size_t from) {
  util::RunningStats s;
  for (std::size_t i = from; i < xs.size(); ++i) s.add(xs[i]);
  return s.mean();
}

TEST(EndToEnd, FederatedPolicyIsStableAcrossApps) {
  const auto apps = resolve(table2_scenarios()[1]);
  const auto result = run_federated(paper_config(40), apps,
                                    sim::splash2_suite(), true);
  // After the first quarter of training, the global policy must hold a
  // clearly positive reward on *every* evaluation app (paper Fig. 3: the
  // federated curves are almost constant just below 0.5).
  const double late = tail_mean(result.devices[0].reward, 10);
  EXPECT_GT(late, 0.3);
  // And both devices see similar rewards.
  const double late_b = tail_mean(result.devices[1].reward, 10);
  EXPECT_NEAR(late, late_b, 0.15);
}

TEST(EndToEnd, LocalOnlyHasAStrugglingDevice) {
  // Scenario 2: the device trained on ocean+radix learns that f_max is safe
  // and then violates the budget on compute-bound evaluation apps.
  const auto apps = resolve(table2_scenarios()[1]);
  const auto local = run_local_only(paper_config(40), apps,
                                    sim::splash2_suite(), true);
  const double device_b = tail_mean(local.devices[1].reward, 10);
  EXPECT_LT(device_b, 0.1);  // clearly degraded vs the federated ~0.45
}

TEST(EndToEnd, FederatedBeatsMeanLocalReward) {
  const auto apps = resolve(table2_scenarios()[1]);
  const auto fed = run_federated(paper_config(40), apps,
                                 sim::splash2_suite(), true);
  const auto local = run_local_only(paper_config(40), apps,
                                    sim::splash2_suite(), true);
  const double fed_mean = (tail_mean(fed.devices[0].reward, 10) +
                           tail_mean(fed.devices[1].reward, 10)) /
                          2.0;
  const double local_mean = (tail_mean(local.devices[0].reward, 10) +
                             tail_mean(local.devices[1].reward, 10)) /
                            2.0;
  EXPECT_GT(fed_mean, local_mean);
}

TEST(EndToEnd, FederatedKeepsPowerNearButUnderBudget) {
  const auto apps = resolve(table2_scenarios()[0]);
  const auto fed = run_federated(paper_config(40), apps,
                                 sim::splash2_suite(), true);
  const double late_power = tail_mean(fed.devices[0].mean_power_w, 20);
  EXPECT_LT(late_power, 0.62);
  EXPECT_GT(late_power, 0.35);  // not sandbagging at the lowest levels
}

TEST(EndToEnd, PayloadSizeMatchesPaperClaim) {
  const auto apps = resolve(table2_scenarios()[0]);
  const auto fed = run_federated(paper_config(5), apps,
                                 sim::splash2_suite(), false);
  EXPECT_NEAR(fed.traffic.mean_transfer_bytes() / 1000.0, 2.8, 0.1);
}

TEST(EndToEnd, NeuralPolicyOutperformsCollabProfitOnExecTime) {
  // Reduced-scale Table III: same training protocol for both techniques,
  // then run every app to completion and compare mean execution time.
  const Scenario split = six_app_split();
  const auto apps = resolve(split);
  ExperimentConfig config = paper_config(60);

  const auto ours = run_federated(config, apps, sim::splash2_suite(), false);
  const auto sota = run_collab_profit(config, apps);

  EvalConfig eval;
  eval.processor = config.processor;
  const Evaluator evaluator(config.controller, eval);

  const auto our_metrics =
      evaluate_apps(evaluator, evaluator.neural_policy(ours.global_params),
                    sim::splash2_suite(), 5);
  const auto sota_metrics = evaluate_apps(
      evaluator, sota.policy(0, config.processor.vf_table.f_max_mhz()),
      sim::splash2_suite(), 5);

  util::RunningStats ours_time;
  util::RunningStats sota_time;
  util::RunningStats ours_power;
  for (const auto& m : our_metrics) {
    ours_time.add(m.exec_time_s);
    ours_power.add(m.power_w);
  }
  for (const auto& m : sota_metrics) sota_time.add(m.exec_time_s);

  EXPECT_LT(ours_time.mean(), sota_time.mean());
  EXPECT_LT(ours_power.mean(), 0.62);  // constraint respected on average
}

TEST(EndToEnd, MoreDevicesDoNotBreakConvergence) {
  ExperimentConfig config = paper_config(30);
  std::vector<std::vector<sim::AppProfile>> apps;
  const auto suite = sim::splash2_suite();
  for (std::size_t d = 0; d < 4; ++d)
    apps.push_back({suite[3 * d], suite[3 * d + 1], suite[3 * d + 2]});
  const auto fed = run_federated(config, apps, suite, true);
  const double late = tail_mean(fed.devices[0].reward, 10);
  EXPECT_GT(late, 0.3);
}

}  // namespace
}  // namespace fedpower::core
