// Lazy FleetRuntime (FleetOptions::lazy): cold construction, hydration
// bit-identity, between-round dehydration, and the FLT1/FLT2 snapshot
// matrix (DESIGN.md §11).
#include "runtime/fleet_runtime.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ckpt/binary_io.hpp"
#include "core/experiment.hpp"
#include "sim/splash2.hpp"

namespace fedpower::runtime {
namespace {

std::vector<std::vector<sim::AppProfile>> n_device_apps(std::size_t n) {
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < n; ++d)
    apps.push_back({suite[(2 * d) % suite.size()],
                    suite[(2 * d + 1) % suite.size()]});
  return apps;
}

core::ControllerConfig tiny_controller() {
  core::ControllerConfig config;
  config.steps_per_round = 10;
  return config;
}

FleetRuntime make(std::size_t n, std::uint64_t seed, bool lazy,
                  std::size_t threads = 1) {
  return FleetRuntime({tiny_controller()}, sim::ProcessorConfig{},
                      n_device_apps(n), seed, FleetOptions{threads, lazy});
}

TEST(LazyFleet, StartsColdAndClientsDoNotMaterialize) {
  FleetRuntime fleet = make(6, 7, /*lazy=*/true);
  EXPECT_TRUE(fleet.lazy());
  EXPECT_EQ(fleet.size(), 6u);
  EXPECT_EQ(fleet.hot_count(), 0u);
  // Handing the fleet to a federation must not materialize it: clients()
  // returns stable proxies.
  const auto clients = fleet.clients();
  EXPECT_EQ(clients.size(), 6u);
  EXPECT_EQ(fleet.hot_count(), 0u);
  // The same proxy objects on every call (the federation keeps pointers).
  EXPECT_EQ(fleet.clients(), clients);
}

TEST(LazyFleet, HydrationIsBitIdenticalToEagerConstruction) {
  FleetRuntime eager = make(4, 123, false);
  FleetRuntime lazy = make(4, 123, true);
  // Hydrate out of order: construction states were dealt at fleet build
  // time, so touch order cannot perturb the streams.
  for (const std::size_t d : {2u, 0u, 3u, 1u}) {
    EXPECT_FALSE(lazy.hot(d));
    EXPECT_EQ(lazy.controller(d).local_parameters(),
              eager.controller(d).local_parameters());
    EXPECT_TRUE(lazy.hot(d));
  }
  // And training stays in lockstep.
  eager.run_local_round();
  lazy.run_local_round();
  for (std::size_t d = 0; d < 4; ++d)
    EXPECT_EQ(lazy.controller(d).local_parameters(),
              eager.controller(d).local_parameters());
}

TEST(LazyFleet, DehydrateRehydrateRoundTripsTrainedState) {
  FleetRuntime fleet = make(3, 55, true);
  FleetRuntime witness = make(3, 55, true);
  fleet.run_local_round();
  witness.run_local_round();

  fleet.dehydrate(1);
  EXPECT_FALSE(fleet.hot(1));
  EXPECT_EQ(fleet.hot_count(), 2u);
  // Hydration restores the trained state bit for bit...
  EXPECT_EQ(fleet.controller(1).local_parameters(),
            witness.controller(1).local_parameters());
  // ...and the device trains on as if it had never been cold.
  fleet.run_local_round();
  witness.run_local_round();
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_EQ(fleet.controller(d).local_parameters(),
              witness.controller(d).local_parameters());
}

TEST(LazyFleet, DehydrateInactiveBoundsTheHotSet) {
  FleetRuntime fleet = make(8, 9, true);
  fleet.run_local_round();  // whole-fleet op: hydrates everyone
  EXPECT_EQ(fleet.hot_count(), 8u);
  const std::vector<std::size_t> keep = {1, 5};
  fleet.dehydrate_inactive(keep);
  EXPECT_EQ(fleet.hot_count(), 2u);
  EXPECT_TRUE(fleet.hot(1));
  EXPECT_TRUE(fleet.hot(5));
  EXPECT_FALSE(fleet.hot(0));
  // Dehydrating a pristine device is a no-op on an all-cold fleet.
  FleetRuntime cold = make(4, 9, true);
  cold.dehydrate_inactive({});
  EXPECT_EQ(cold.hot_count(), 0u);
}

TEST(LazyFleet, EagerFleetRejectsDehydration) {
  FleetRuntime fleet = make(2, 3, false);
  EXPECT_EQ(fleet.hot_count(), 2u);
  // Dehydration is a lazy-fleet concept; an eager fleet must stay hot.
  fleet.dehydrate_inactive({});
  EXPECT_EQ(fleet.hot_count(), 2u);
}

// --- snapshots -----------------------------------------------------------

TEST(LazyFleet, ColdSnapshotDoesNotHydrate) {
  FleetRuntime fleet = make(5, 77, true);
  ckpt::Writer out;
  fleet.save_state(out);
  // The whole-fleet snapshot was taken without materializing one device.
  EXPECT_EQ(fleet.hot_count(), 0u);

  // The FLT2 cold-pristine records restore into an eager fleet as real
  // devices, bit-identical to eager construction from the same seed.
  FleetRuntime eager = make(5, 77, false);
  FleetRuntime witness = make(5, 77, false);
  fleet.run_local_round();  // advance the donor: restore must roll back
  ckpt::Reader in(out.data());
  eager.restore_state(in);
  for (std::size_t d = 0; d < 5; ++d)
    EXPECT_EQ(eager.controller(d).local_parameters(),
              witness.controller(d).local_parameters());
}

TEST(LazyFleet, Flt1SnapshotRestoresIntoLazyFleet) {
  FleetRuntime eager = make(4, 42, false);
  eager.run_local_round();
  ckpt::Writer out;
  eager.save_state(out);  // historic FLT1 layout

  FleetRuntime lazy = make(4, 42, true);
  ckpt::Reader in(out.data());
  lazy.restore_state(in);
  for (std::size_t d = 0; d < 4; ++d)
    EXPECT_EQ(lazy.controller(d).local_parameters(),
              eager.controller(d).local_parameters());
}

TEST(LazyFleet, MixedHotColdSnapshotResumesBitIdentically) {
  // The FLT2 matrix in one fleet: device 0 hot (trained), device 1
  // dehydrated (trained, blob), devices 2/3 cold-pristine. The snapshot
  // must restore into BOTH a lazy and an eager fleet and train on in
  // lockstep with an uninterrupted witness.
  FleetRuntime donor = make(4, 2026, true);
  FleetRuntime witness = make(4, 2026, true);
  // Train only devices 0 and 1 (per-device touch, not the whole-fleet op).
  for (const std::size_t d : {0u, 1u}) {
    donor.controller(d).run_local_round();
    witness.controller(d).run_local_round();
  }
  donor.dehydrate(1);
  ASSERT_EQ(donor.hot_count(), 1u);

  ckpt::Writer out;
  donor.save_state(out);
  // Saving kept the hot/cold split: still exactly one hot device.
  EXPECT_EQ(donor.hot_count(), 1u);

  FleetRuntime lazy = make(4, 2026, true);
  FleetRuntime eager = make(4, 2026, false);
  {
    ckpt::Reader in(out.data());
    lazy.restore_state(in);
  }
  {
    ckpt::Reader in(out.data());
    eager.restore_state(in);
  }
  // Restoring into the lazy fleet kept cold records cold.
  EXPECT_LE(lazy.hot_count(), 1u);
  for (FleetRuntime* fleet : {&lazy, &eager}) {
    fleet->run_local_round();
  }
  witness.run_local_round();
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(lazy.controller(d).local_parameters(),
              witness.controller(d).local_parameters());
    EXPECT_EQ(eager.controller(d).local_parameters(),
              witness.controller(d).local_parameters());
  }
}

TEST(LazyFleet, SnapshotRestoresAcrossThreadCounts) {
  FleetRuntime serial = make(4, 8, true, 1);
  serial.run_local_round();
  const std::vector<std::size_t> keep = {0, 2};
  serial.dehydrate_inactive(keep);
  ckpt::Writer out;
  serial.save_state(out);

  FleetRuntime parallel = make(4, 8, true, 4);
  ckpt::Reader in(out.data());
  parallel.restore_state(in);
  serial.run_local_round();
  parallel.run_local_round();
  for (std::size_t d = 0; d < 4; ++d)
    EXPECT_EQ(parallel.controller(d).local_parameters(),
              serial.controller(d).local_parameters());
}

// --- experiment wiring ---------------------------------------------------

core::ExperimentConfig scale_config(bool lazy) {
  core::ExperimentConfig config;
  config.rounds = 4;
  config.controller.steps_per_round = 12;
  config.eval.episode_intervals = 8;
  config.seed = 19;
  config.sampling.fraction = 0.5;
  config.sampling.seed = 3;
  config.lazy_fleet = lazy;
  return config;
}

TEST(LazyFleet, FederatedExperimentBitIdenticalToEager) {
  // The end-to-end contract: run_federated with lazy_fleet = true (lazy
  // construction + between-round dehydration) reproduces the eager run bit
  // for bit, including under C-fraction sampling.
  const auto apps = n_device_apps(4);
  const auto suite = sim::splash2_suite();
  const auto eager = core::run_federated(scale_config(false), apps, suite,
                                         true);
  const auto lazy = core::run_federated(scale_config(true), apps, suite,
                                        true);
  EXPECT_EQ(eager.global_params, lazy.global_params);
  EXPECT_EQ(eager.traffic.uplink_bytes, lazy.traffic.uplink_bytes);
  ASSERT_EQ(eager.devices.size(), lazy.devices.size());
  for (std::size_t d = 0; d < eager.devices.size(); ++d) {
    EXPECT_EQ(eager.devices[d].reward, lazy.devices[d].reward);
    EXPECT_EQ(eager.devices[d].mean_power_w, lazy.devices[d].mean_power_w);
  }
}

}  // namespace
}  // namespace fedpower::runtime
