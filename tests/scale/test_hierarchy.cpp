// Two-tier edge aggregation (fed/hierarchy.hpp): the single-shard
// bit-identity contract, shard-local sampling/defense/quorum, edge-link
// faults and HIER checkpoint/resume (DESIGN.md §11).
#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/hierarchy.hpp"
#include "runtime/thread_pool.hpp"

namespace fedpower::fed {
namespace {

class ScriptedClient final : public FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

class PoisonClient final : public FederatedClient {
 public:
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override {
    return std::vector<double>(params_.size(),
                               std::numeric_limits<double>::quiet_NaN());
  }
  void run_local_round() override {}

 private:
  std::vector<double> params_;
};

/// Transport whose link can be cut and restored between rounds.
class ToggleFaultTransport final : public Transport {
 public:
  std::vector<std::uint8_t> transfer(Direction direction,
                                     std::vector<std::uint8_t> payload) override {
    if (down) throw TransportError("link down");
    return inner_.transfer(direction, std::move(payload));
  }
  const TrafficStats& stats() const noexcept override { return inner_.stats(); }

  bool down = false;

 private:
  InProcessTransport inner_;
};

DefenseConfig fast_defense() {
  DefenseConfig config;
  config.enabled = true;
  config.warmup_rounds = 1;
  config.norm_min_samples = 4;
  return config;
}

/// Builds delta clients 0.01, 0.02, ... so every client's model is
/// distinguishable in the aggregate.
std::vector<ScriptedClient> make_clients(std::size_t n) {
  std::vector<ScriptedClient> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    clients.emplace_back(0.01 * static_cast<double>(i + 1));
  return clients;
}

std::vector<FederatedClient*> pointers(std::vector<ScriptedClient>& clients) {
  std::vector<FederatedClient*> ptrs;
  for (auto& c : clients) ptrs.push_back(&c);
  return ptrs;
}

// --- single-shard bit-identity -------------------------------------------

TEST(Hierarchy, SingleShardReproducesFlatRunBitIdentically) {
  std::vector<ScriptedClient> flat_clients = make_clients(7);
  std::vector<ScriptedClient> hier_clients = make_clients(7);
  auto pf = pointers(flat_clients);
  auto ph = pointers(hier_clients);
  InProcessTransport tf, th;
  FederatedAveraging flat(pf, &tf);
  HierarchicalFederation hier(ph, &th, /*shard_count=*/1);

  SamplingConfig sampling;
  sampling.fraction = 0.5;
  sampling.seed = 303;
  flat.set_sampling(sampling);
  hier.set_sampling(sampling);
  flat.initialize({1.0, -2.0, 0.5});
  hier.initialize({1.0, -2.0, 0.5});

  for (int r = 0; r < 8; ++r) {
    const RoundResult expected = flat.run_round();
    const HierarchicalRoundResult actual = hier.run_round();
    ASSERT_EQ(actual.shards.size(), 1u);
    ASSERT_TRUE(actual.shards[0].result.has_value());
    EXPECT_EQ(actual.shards[0].result->participants, expected.participants);
    // Bit identity, not tolerance: the shard model crosses in process at
    // double precision and a single contributing shard is adopted by copy.
    ASSERT_EQ(hier.global_model().size(), flat.global_model().size());
    for (std::size_t i = 0; i < flat.global_model().size(); ++i)
      EXPECT_EQ(hier.global_model()[i], flat.global_model()[i]) << "coord " << i;
  }
  EXPECT_EQ(hier.rounds_completed(), flat.rounds_completed());
}

TEST(Hierarchy, SingleShardBitIdentityHoldsWithDefenseAndFaults) {
  // The contract must survive the full pipeline: defense armed, a poison
  // client earning quarantine, and a transport fault mid-run.
  std::vector<ScriptedClient> flat_honest = make_clients(5);
  std::vector<ScriptedClient> hier_honest = make_clients(5);
  PoisonClient flat_bad, hier_bad;
  auto pf = pointers(flat_honest);
  pf.push_back(&flat_bad);
  auto ph = pointers(hier_honest);
  ph.push_back(&hier_bad);
  InProcessTransport tf, th;
  ToggleFaultTransport flat_link, hier_link;
  FederatedAveraging flat(pf, &tf);
  HierarchicalFederation hier(ph, &th, 1);
  flat.enable_defense(fast_defense());
  hier.enable_defense(fast_defense());
  flat.set_client_transport(2, &flat_link);
  hier.set_client_transport(2, &hier_link);
  flat.initialize({0.25, 0.75});
  hier.initialize({0.25, 0.75});

  for (int r = 0; r < 6; ++r) {
    flat_link.down = hier_link.down = (r == 2 || r == 4);
    const RoundResult expected = flat.run_round();
    const HierarchicalRoundResult actual = hier.run_round();
    const RoundResult& got = *actual.shards[0].result;
    EXPECT_EQ(got.participants, expected.participants);
    EXPECT_EQ(got.dropped, expected.dropped);
    EXPECT_EQ(got.rejected, expected.rejected);
    EXPECT_EQ(got.quarantined, expected.quarantined);
    EXPECT_EQ(got.readmitted, expected.readmitted);
    for (std::size_t i = 0; i < flat.global_model().size(); ++i)
      EXPECT_EQ(hier.global_model()[i], flat.global_model()[i]);
  }
}

// --- sharding ------------------------------------------------------------

TEST(Hierarchy, ShardsAreContiguousAndBalanced) {
  std::vector<ScriptedClient> clients = make_clients(10);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  HierarchicalFederation hier(ptrs, &transport, 3);
  // 10 clients over 3 shards: 4, 3, 3.
  EXPECT_EQ(hier.shard(0).client_count(), 4u);
  EXPECT_EQ(hier.shard(1).client_count(), 3u);
  EXPECT_EQ(hier.shard(2).client_count(), 3u);
  EXPECT_EQ(hier.shard(0).first_client(), 0u);
  EXPECT_EQ(hier.shard(1).first_client(), 4u);
  EXPECT_EQ(hier.shard(2).first_client(), 7u);
  EXPECT_EQ(hier.shard_of(0), 0u);
  EXPECT_EQ(hier.shard_of(3), 0u);
  EXPECT_EQ(hier.shard_of(4), 1u);
  EXPECT_EQ(hier.shard_of(9), 2u);
}

TEST(Hierarchy, ShardSamplingStreamsAreIndependent) {
  // Shard 0 keeps the seed verbatim; further shards must not mirror its
  // draws (splitmix64-derived seeds).
  std::vector<ScriptedClient> clients = make_clients(12);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  HierarchicalFederation hier(ptrs, &transport, 2);
  SamplingConfig sampling;
  sampling.fraction = 0.5;
  sampling.seed = 99;
  hier.set_sampling(sampling);
  hier.initialize({1.0});
  bool any_divergence = false;
  for (int r = 0; r < 6; ++r) {
    const HierarchicalRoundResult result = hier.run_round();
    // Map shard 1's draws to shard-local indices and compare the pattern.
    std::vector<std::size_t> local0 = result.shards[0].result->participants;
    std::vector<std::size_t> local1 = result.shards[1].result->participants;
    for (std::size_t& i : local1) i -= hier.shard(1).first_client();
    if (local0 != local1) any_divergence = true;
  }
  EXPECT_TRUE(any_divergence);
}

// --- per-shard quorum and the contributing-shards floor ------------------

TEST(Hierarchy, ShardQuorumIsCheckedShardLocally) {
  // Global quorum 3 over 3-client shards: each shard demands
  // min(3, shard size) = 3 survivors. Cut one client's link: its shard
  // fails quorum, the other commits, the round completes with one
  // contributing shard.
  std::vector<ScriptedClient> clients = make_clients(6);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  ToggleFaultTransport dead;
  dead.down = true;
  HierarchicalFederation hier(ptrs, &transport, 2);
  hier.set_quorum(3);
  hier.set_client_transport(4, &dead);  // shard 1 local index 1
  hier.initialize({2.0});

  const HierarchicalRoundResult result = hier.run_round();
  EXPECT_TRUE(result.shards[0].contributed);
  EXPECT_FALSE(result.shards[0].quorum_failed);
  EXPECT_TRUE(result.shards[1].quorum_failed);
  EXPECT_FALSE(result.shards[1].result.has_value());
  EXPECT_EQ(result.contributing_shards, 1u);
  EXPECT_EQ(hier.rounds_completed(), 1u);
}

TEST(Hierarchy, MixedExclusionsCrossTheShardQuorum) {
  // The issue's scenario: ONE shard accumulates a dropped client, a
  // rejected (NaN) client and a quarantined client in the same round — its
  // survivor count crosses below the per-shard quorum while the sibling
  // shard commits normally.
  std::vector<ScriptedClient> honest = make_clients(6);
  PoisonClient nan_client;   // global 6: rejected every round
  PoisonClient quar_client;  // global 7: NaN too — quarantined first
  std::vector<FederatedClient*> ptrs = pointers(honest);
  ptrs.push_back(&nan_client);
  ptrs.push_back(&quar_client);
  // 8 clients, 2 shards of 4: shard 1 = {4, 5, 6, 7}.
  InProcessTransport transport;
  ToggleFaultTransport dead;
  HierarchicalFederation hier(ptrs, &transport, 2);
  hier.enable_defense(fast_defense());
  hier.set_quorum(2);
  hier.set_client_transport(5, &dead);
  hier.initialize({1.0, 1.0});

  // Warm-up: links up, the NaN pair burns reputation until quarantine.
  hier.run(3);
  ASSERT_TRUE(hier.shard(1).federation().defense()->quarantined(
      7 - hier.shard(1).first_client()));

  // Now cut client 5's link: shard 1's round has client 5 dropped, client
  // 6 rejected (or quarantined by now) and client 7 quarantined — only
  // client 4 survives, below quorum 2. Shard 0 is untouched.
  dead.down = true;
  const HierarchicalRoundResult result = hier.run_round();
  EXPECT_TRUE(result.shards[1].quorum_failed);
  EXPECT_TRUE(result.shards[0].contributed);
  EXPECT_EQ(result.contributing_shards, 1u);
}

TEST(Hierarchy, BelowMinContributingShardsAborts) {
  std::vector<ScriptedClient> clients = make_clients(6);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  HierarchicalFederation hier(ptrs, &transport, 2);
  hier.set_min_contributing_shards(2);
  ToggleFaultTransport edge1;
  hier.set_edge_transport(1, &edge1);
  hier.initialize({1.0});
  hier.run(2);
  const std::vector<double> before = hier.global_model();

  // Shard 1's edge uplink dies: only shard 0 contributes, below the floor.
  edge1.down = true;
  EXPECT_THROW(hier.run_round(), QuorumError);
  // Global state untouched by the aborted round.
  EXPECT_EQ(hier.global_model(), before);
  EXPECT_EQ(hier.rounds_completed(), 2u);
}

// --- edge links ----------------------------------------------------------

TEST(Hierarchy, EdgeDownlinkFaultRunsShardOnStaleGlobal) {
  /// Edge link that fails only the server -> edge broadcast direction.
  class DownlinkFaultTransport final : public Transport {
   public:
    std::vector<std::uint8_t> transfer(
        Direction direction, std::vector<std::uint8_t> payload) override {
      if (down && direction == Direction::kDownlink)
        throw TransportError("downlink down");
      return inner_.transfer(direction, std::move(payload));
    }
    const TrafficStats& stats() const noexcept override {
      return inner_.stats();
    }

    bool down = false;

   private:
    InProcessTransport inner_;
  };

  std::vector<ScriptedClient> clients = make_clients(4);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  DownlinkFaultTransport edge0;
  HierarchicalFederation hier(ptrs, &transport, 2);
  hier.set_edge_transport(0, &edge0);
  hier.initialize({1.0});
  hier.run(1);

  edge0.down = true;
  const HierarchicalRoundResult result = hier.run_round();
  EXPECT_TRUE(result.shards[0].downlink_stale);
  // The shard round itself still ran and its model still reached the
  // global aggregate: downlink and uplink fault independently, and the
  // in-process model path is not the faulted byte path.
  EXPECT_TRUE(result.shards[0].result.has_value());
  EXPECT_EQ(result.contributing_shards, 2u);
}

TEST(Hierarchy, EdgeTrafficIsAccounted) {
  std::vector<ScriptedClient> clients = make_clients(4);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  ToggleFaultTransport edge0, edge1;
  HierarchicalFederation hier(ptrs, &transport, 2);
  hier.set_edge_transport(0, &edge0);
  hier.set_edge_transport(1, &edge1);
  hier.initialize({1.0, 2.0, 3.0});
  const HierarchicalRoundResult result = hier.run_round();
  // Both edge links carried one downlink + one uplink model each.
  EXPECT_GT(result.downlink_bytes, 0u);
  EXPECT_GT(result.uplink_bytes, 0u);
  EXPECT_GT(edge0.stats().uplink_bytes, 0u);
  EXPECT_GT(edge1.stats().downlink_bytes, 0u);
}

// --- checkpoint/resume ---------------------------------------------------

TEST(Hierarchy, SaveRestoreResumesBitIdentically) {
  std::vector<ScriptedClient> run_clients = make_clients(9);
  std::vector<ScriptedClient> resume_clients = make_clients(9);
  auto pr = pointers(run_clients);
  auto pm = pointers(resume_clients);
  InProcessTransport tr, tm;
  HierarchicalFederation uninterrupted(pr, &tr, 3);
  HierarchicalFederation resumed(pm, &tm, 3);
  SamplingConfig sampling;
  sampling.fraction = 0.67;
  sampling.seed = 11;
  for (HierarchicalFederation* h : {&uninterrupted, &resumed}) {
    h->set_sampling(sampling);
    h->initialize({0.0, 1.0});
  }
  uninterrupted.run(4);
  resumed.run(4);
  ckpt::Writer out;
  uninterrupted.save_state(out);

  std::vector<ScriptedClient> fresh_clients = make_clients(9);
  auto pfresh = pointers(fresh_clients);
  InProcessTransport tfresh;
  HierarchicalFederation fresh(pfresh, &tfresh, 3);
  fresh.set_sampling(sampling);
  ckpt::Reader in(out.data());
  fresh.restore_state(in);
  EXPECT_EQ(fresh.rounds_completed(), 4u);
  EXPECT_EQ(fresh.global_model(), uninterrupted.global_model());
  // Restored clients have no local params yet — the next broadcast
  // installs the restored global, and ScriptedClient state is pure
  // broadcast + delta, so the trajectories must coincide.
  for (int r = 0; r < 4; ++r) {
    const HierarchicalRoundResult expected = resumed.run_round();
    const HierarchicalRoundResult actual = fresh.run_round();
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_EQ(actual.shards[s].result->participants,
                expected.shards[s].result->participants);
    EXPECT_EQ(fresh.global_model(), resumed.global_model());
  }
}

TEST(Hierarchy, RestoreRejectsShardCountMismatch) {
  std::vector<ScriptedClient> clients = make_clients(6);
  auto ptrs = pointers(clients);
  InProcessTransport transport;
  HierarchicalFederation two(ptrs, &transport, 2);
  two.initialize({1.0});
  two.run(1);
  ckpt::Writer out;
  two.save_state(out);

  HierarchicalFederation three(ptrs, &transport, 3);
  ckpt::Reader in(out.data());
  EXPECT_THROW(three.restore_state(in), std::exception);
}

TEST(Hierarchy, ExecutorDoesNotChangeTheTrajectory) {
  std::vector<ScriptedClient> serial_clients = make_clients(10);
  std::vector<ScriptedClient> parallel_clients = make_clients(10);
  auto ps = pointers(serial_clients);
  auto pp = pointers(parallel_clients);
  InProcessTransport ts, tp;
  HierarchicalFederation serial(ps, &ts, 2);
  HierarchicalFederation parallel(pp, &tp, 2);
  runtime::ThreadPool pool(4);
  parallel.set_local_executor(pool.executor());
  SamplingConfig sampling;
  sampling.fraction = 0.6;
  sampling.seed = 2026;
  for (HierarchicalFederation* h : {&serial, &parallel}) {
    h->set_sampling(sampling);
    h->initialize({1.0, -1.0, 3.0});
  }
  for (int r = 0; r < 6; ++r) {
    serial.run_round();
    parallel.run_round();
    EXPECT_EQ(serial.global_model(), parallel.global_model());
  }
}

}  // namespace
}  // namespace fedpower::fed
