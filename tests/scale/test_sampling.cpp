// Fleet-scale client sampling: SamplingConfig semantics, the
// quarantine-blind-draw and spurious-quorum regressions, and determinism
// of the participation stream across executors and checkpoint/resume
// (DESIGN.md §11).
#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/federation.hpp"
#include "runtime/thread_pool.hpp"

namespace fedpower::fed {
namespace {

/// Honest client: installs the broadcast, adds `delta` per local round.
class ScriptedClient final : public FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

/// Client that always uploads NaN: screened as non-finite every round, so
/// its reputation only falls — the fastest deterministic road into (and
/// never out of) quarantine.
class PoisonClient final : public FederatedClient {
 public:
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override {
    return std::vector<double>(params_.size(),
                               std::numeric_limits<double>::quiet_NaN());
  }
  void run_local_round() override {}

 private:
  std::vector<double> params_;
};

/// Uploads NaN for the first `recover_after` local rounds, then behaves
/// like an honest client (tests/fed/test_defense_federation.cpp idiom).
class FlakyClient final : public FederatedClient {
 public:
  FlakyClient(double delta, std::size_t recover_after)
      : delta_(delta), recover_after_(recover_after) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override {
    if (rounds_ <= recover_after_)
      return std::vector<double>(params_.size(),
                                 std::numeric_limits<double>::quiet_NaN());
    return params_;
  }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::size_t recover_after_;
  std::size_t rounds_ = 0;
  std::vector<double> params_;
};

DefenseConfig fast_defense() {
  DefenseConfig config;
  config.enabled = true;
  config.warmup_rounds = 1;
  config.norm_min_samples = 4;
  return config;
}

// --- quarantine-blind draw (regression) ----------------------------------
//
// Pre-fix, draw_participants shuffled the FULL fleet: a round could spend
// its whole C-fraction on quarantined clients, silently aggregate nothing
// and abort on the quorum with zero faults anywhere. Seed 15 is chosen so
// the historic algorithm's first draw over 6 clients at C = 1/3 selects
// exactly {4, 5} — the two quarantined clients — so this test throws
// QuorumError on the pre-fix code.

TEST(SamplingQuarantine, DrawIsSpentOnEligibleClientsOnly) {
  std::vector<ScriptedClient> honest(4, ScriptedClient(0.01));
  PoisonClient bad[2];
  InProcessTransport transport;
  FederatedAveraging server({&honest[0], &honest[1], &honest[2], &honest[3],
                             &bad[0], &bad[1]},
                            &transport);
  server.enable_defense(fast_defense());
  server.initialize({1.0, 1.0});

  // Full participation while the NaN uploads burn reputation: after three
  // strikes (1.0 - 3 * 0.25 < 0.5) both poison clients are quarantined.
  // fraction = 1 consumes no participation randomness, so the stream below
  // starts at the seed's first draw.
  server.run(3);
  ASSERT_TRUE(server.defense()->quarantined(4));
  ASSERT_TRUE(server.defense()->quarantined(5));

  SamplingConfig sampling;
  sampling.fraction = 1.0 / 3.0;
  sampling.seed = 15;
  server.set_sampling(sampling);

  const RoundResult result = server.run_round();  // pre-fix: QuorumError
  // ceil(1/3 * 4 eligible) = 2 drawn from {0..3}, plus both quarantined
  // clients riding along on probation.
  ASSERT_EQ(result.participants.size(), 4u);
  EXPECT_EQ(result.quarantined, (std::vector<std::size_t>{4, 5}));
  std::size_t eligible_drawn = 0;
  for (const std::size_t i : result.participants)
    if (i < 4) ++eligible_drawn;
  EXPECT_EQ(eligible_drawn, 2u);
  EXPECT_EQ(result.effective_clients(), 2u);
}

TEST(SamplingQuarantine, RidersKeepProbationMovingAtSmallFraction) {
  // A quarantined client must be able to earn re-admission even when the
  // C-fraction draw would essentially never select it by chance.
  std::vector<ScriptedClient> honest(4, ScriptedClient(0.01));
  FlakyClient bad(0.01, /*recover_after=*/3);
  InProcessTransport transport;
  FederatedAveraging server({&honest[0], &honest[1], &honest[2], &honest[3],
                             &bad},
                            &transport);
  server.enable_defense(fast_defense());
  server.initialize({1.0, 1.0});
  server.run(3);
  ASSERT_TRUE(server.defense()->quarantined(4));

  // From here the flaky client uploads clean models again. Every sampled
  // round it rides along on probation and its upload is screened; after
  // probation_rounds clean uploads it is re-admitted although the draw
  // itself (C = 0.25 over 4 eligible = 1 client) may never have picked it.
  SamplingConfig sampling;
  sampling.fraction = 0.25;
  sampling.seed = 7;
  server.set_sampling(sampling);
  bool readmitted = false;
  for (int r = 0; r < 8 && !readmitted; ++r) {
    const RoundResult result = server.run_round();
    if (!result.quarantined.empty()) {
      EXPECT_EQ(result.quarantined, (std::vector<std::size_t>{4}));
    }
    readmitted = !result.readmitted.empty();
  }
  EXPECT_TRUE(readmitted);
  EXPECT_FALSE(server.defense()->quarantined(4));
}

// --- quorum under partial participation (regression) ---------------------
//
// Pre-fix, run_round compared the survivor count against the absolute
// quorum: a 10-client federation with quorum 5 at C = 0.2 drew 2 clients
// and threw QuorumError on EVERY round, faults or not.

TEST(SamplingQuorum, QuorumIsCheckedAgainstTheRoundsDraw) {
  std::vector<ScriptedClient> clients(10, ScriptedClient(0.01));
  std::vector<FederatedClient*> ptrs;
  for (auto& c : clients) ptrs.push_back(&c);
  InProcessTransport transport;
  FederatedAveraging server(ptrs, &transport);
  server.set_quorum(5);
  server.set_participation(0.2, 21);
  server.initialize({1.0});
  // Draws 2 of 10; both survive, so the round must complete (pre-fix:
  // QuorumError, 2 survivors < quorum 5).
  for (int r = 0; r < 5; ++r) {
    const RoundResult result = server.run_round();
    EXPECT_EQ(result.participants.size(), 2u);
    EXPECT_EQ(result.effective_clients(), 2u);
  }
  EXPECT_EQ(server.rounds_completed(), 5u);
}

TEST(SamplingQuorum, FaultsWithinTheDrawStillAbort) {
  // The relaxed check still demands that every drawn client survive when
  // the draw is below the configured quorum: one dropout in a 2-client
  // draw aborts the round.
  std::vector<ScriptedClient> clients(10, ScriptedClient(0.01));
  std::vector<FederatedClient*> ptrs;
  for (auto& c : clients) ptrs.push_back(&c);
  InProcessTransport good;
  FederatedAveraging server(ptrs, &good);
  server.set_quorum(5);
  server.set_participation(0.2, 21);
  server.initialize({1.0});
  // Cut one drawn client's private link. Seed 21's first draw is {0, 7}
  // (golden, from the historic stream — fraction semantics keep it).
  const std::vector<std::size_t> first_draw = {0, 7};
  class DeadTransport final : public Transport {
   public:
    std::vector<std::uint8_t> transfer(Direction,
                                       std::vector<std::uint8_t>) override {
      throw TransportError("link down");
    }
    const TrafficStats& stats() const noexcept override { return stats_; }

   private:
    TrafficStats stats_;
  } dead;
  server.set_client_transport(first_draw[0], &dead);
  try {
    server.run_round();
    FAIL() << "round must abort: 1 survivor of a 2-client draw, quorum 5";
  } catch (const QuorumError& e) {
    EXPECT_EQ(e.survivors(), 1u);
    EXPECT_EQ(e.required(), 2u);  // min(quorum 5, draw 2)
  }
  EXPECT_EQ(server.rounds_completed(), 0u);
}

TEST(SamplingQuorum, AllRidersRoundStillAborts) {
  // A round whose every participant is quarantined aggregates nothing and
  // must abort even with quorum 1: at least one upload must survive.
  std::vector<ScriptedClient> honest(2, ScriptedClient(0.01));
  PoisonClient bad[2];
  InProcessTransport transport;
  FederatedAveraging server({&honest[0], &honest[1], &bad[0], &bad[1]},
                            &transport);
  server.enable_defense(fast_defense());
  server.initialize({1.0, 1.0});
  server.run(3);
  ASSERT_TRUE(server.defense()->quarantined(2));
  ASSERT_TRUE(server.defense()->quarantined(3));
  // Cut both honest clients' links: the drawn set survives only as
  // probation riders.
  class DeadTransport final : public Transport {
   public:
    std::vector<std::uint8_t> transfer(Direction,
                                       std::vector<std::uint8_t>) override {
      throw TransportError("link down");
    }
    const TrafficStats& stats() const noexcept override { return stats_; }

   private:
    TrafficStats stats_;
  } dead;
  server.set_client_transport(0, &dead);
  server.set_client_transport(1, &dead);
  EXPECT_THROW(server.run_round(), QuorumError);
}

// --- stream shape --------------------------------------------------------

TEST(SamplingStream, HistoricParticipationStreamIsPreserved) {
  // The SamplingConfig refactor must not move existing runs' draws: these
  // golden sequences were generated with the pre-refactor algorithm
  // (shuffle + resize + sort) for 5 clients, C = 0.5, seed 99. With no
  // defense armed the eligible set is the whole fleet, and the shuffle
  // must consume the stream identically.
  std::vector<ScriptedClient> clients(5, ScriptedClient(0.01));
  std::vector<FederatedClient*> ptrs;
  for (auto& c : clients) ptrs.push_back(&c);
  InProcessTransport transport;
  FederatedAveraging server(ptrs, &transport);
  server.set_participation(0.5, 99);
  server.initialize({1.0});
  const std::vector<std::vector<std::size_t>> golden = {
      {1, 2, 4},
      {0, 1, 4},
      {0, 1, 2},
      {2, 3, 4},
  };
  for (const auto& expected : golden)
    EXPECT_EQ(server.run_round().participants, expected);
}

TEST(SamplingStream, FullParticipationConsumesNoRandomness) {
  // fraction = 1 must not touch the participation stream: a run that
  // switches to partial sampling later starts from the seed's first draw
  // regardless of how many full rounds preceded it.
  std::vector<ScriptedClient> a(5, ScriptedClient(0.01));
  std::vector<ScriptedClient> b(5, ScriptedClient(0.01));
  std::vector<FederatedClient*> pa, pb;
  for (auto& c : a) pa.push_back(&c);
  for (auto& c : b) pb.push_back(&c);
  InProcessTransport ta, tb;
  FederatedAveraging full_first(pa, &ta);
  FederatedAveraging partial_only(pb, &tb);
  full_first.initialize({1.0});
  partial_only.initialize({1.0});

  SamplingConfig sampling;
  sampling.fraction = 0.4;
  sampling.seed = 1234;
  full_first.set_sampling(sampling);
  // Ten full-participation rounds on the same stream...
  SamplingConfig full = sampling;
  full.fraction = 1.0;
  full_first.set_sampling(full);
  full_first.run(10);
  // ...then partial: the draws must equal a federation that sampled
  // partially from round one.
  full_first.set_sampling(sampling);
  partial_only.set_sampling(sampling);
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(full_first.run_round().participants,
              partial_only.run_round().participants);
}

TEST(SamplingStream, MinClientsFloorsTheDraw) {
  std::vector<ScriptedClient> clients(8, ScriptedClient(0.01));
  std::vector<FederatedClient*> ptrs;
  for (auto& c : clients) ptrs.push_back(&c);
  InProcessTransport transport;
  FederatedAveraging server(ptrs, &transport);
  SamplingConfig sampling;
  sampling.fraction = 0.01;  // ceil(0.01 * 8) = 1
  sampling.min_clients = 3;
  sampling.seed = 5;
  server.set_sampling(sampling);
  server.initialize({1.0});
  EXPECT_EQ(server.run_round().participants.size(), 3u);
  // The floor clamps at the eligible count: a fleet of 8 with
  // min_clients = 20 fields everyone, not an error.
  sampling.min_clients = 20;
  server.set_sampling(sampling);
  EXPECT_EQ(server.run_round().participants.size(), 8u);
}

// --- determinism ---------------------------------------------------------

TEST(SamplingDeterminism, ParticipantStreamsMatchAcrossExecutors) {
  // The participation stream is drawn on the serial control path, so the
  // executor must have zero influence on who is selected.
  std::vector<ScriptedClient> serial_clients(12, ScriptedClient(0.01));
  std::vector<ScriptedClient> parallel_clients(12, ScriptedClient(0.01));
  std::vector<FederatedClient*> ps, pp;
  for (auto& c : serial_clients) ps.push_back(&c);
  for (auto& c : parallel_clients) pp.push_back(&c);
  InProcessTransport ts, tp;
  FederatedAveraging serial(ps, &ts);
  FederatedAveraging parallel(pp, &tp);
  runtime::ThreadPool pool(4);
  parallel.set_local_executor(pool.executor());
  for (FederatedAveraging* server : {&serial, &parallel}) {
    server->set_participation(0.3, 77);
    server->initialize({1.0, 2.0});
  }
  for (int r = 0; r < 10; ++r) {
    const RoundResult a = serial.run_round();
    const RoundResult b = parallel.run_round();
    EXPECT_EQ(a.participants, b.participants);
    EXPECT_EQ(serial.global_model(), parallel.global_model());
  }
}

TEST(SamplingDeterminism, StreamSurvivesCheckpointResume) {
  // Mid-run snapshot: the resumed federation must draw the exact clients
  // the uninterrupted one does.
  std::vector<ScriptedClient> run_clients(9, ScriptedClient(0.01));
  std::vector<ScriptedClient> resume_clients(9, ScriptedClient(0.01));
  std::vector<FederatedClient*> pr, pm;
  for (auto& c : run_clients) pr.push_back(&c);
  for (auto& c : resume_clients) pm.push_back(&c);
  InProcessTransport tr, tm;
  FederatedAveraging uninterrupted(pr, &tr);
  FederatedAveraging resumed(pm, &tm);
  SamplingConfig sampling;
  sampling.fraction = 0.35;
  sampling.seed = 4242;
  for (FederatedAveraging* server : {&uninterrupted, &resumed}) {
    server->set_sampling(sampling);
    server->initialize({0.5, -0.5});
  }
  uninterrupted.run(3);
  resumed.run(3);
  ckpt::Writer out;
  uninterrupted.save_state(out);

  // Fresh server, same config shape; restore overrides the stream cursor.
  std::vector<ScriptedClient> fresh_clients(9, ScriptedClient(0.01));
  std::vector<FederatedClient*> pf;
  for (auto& c : fresh_clients) pf.push_back(&c);
  InProcessTransport tf;
  FederatedAveraging fresh(pf, &tf);
  fresh.set_sampling(sampling);
  ckpt::Reader in(out.data());
  fresh.restore_state(in);

  for (int r = 0; r < 5; ++r) {
    const RoundResult expected = resumed.run_round();
    const RoundResult actual = fresh.run_round();
    EXPECT_EQ(actual.participants, expected.participants);
  }
}

}  // namespace
}  // namespace fedpower::fed
