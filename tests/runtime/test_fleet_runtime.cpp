#include "runtime/fleet_runtime.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "fed/async.hpp"
#include "sim/splash2.hpp"

namespace fedpower::runtime {
namespace {

std::vector<std::vector<sim::AppProfile>> two_device_apps() {
  return core::resolve(core::table2_scenarios()[1]);
}

core::ExperimentConfig tiny_config(std::size_t num_threads) {
  core::ExperimentConfig config;
  config.rounds = 4;
  config.controller.steps_per_round = 15;
  config.eval.episode_intervals = 8;
  config.seed = 17;
  config.num_threads = num_threads;
  return config;
}

TEST(FleetRuntime, BuildsOneDevicePerAppSet) {
  FleetRuntime fleet({core::ControllerConfig{}}, sim::ProcessorConfig{},
                     two_device_apps(), 7, 1);
  EXPECT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet.num_threads(), 1u);
  EXPECT_EQ(fleet.clients().size(), 2u);
  EXPECT_FALSE(fleet.executor());  // serial runtime: no executor
}

TEST(FleetRuntime, ParallelRuntimeExposesExecutor) {
  FleetRuntime fleet({core::ControllerConfig{}}, sim::ProcessorConfig{},
                     two_device_apps(), 7, 4);
  EXPECT_EQ(fleet.num_threads(), 4u);
  EXPECT_TRUE(static_cast<bool>(fleet.executor()));
}

TEST(FleetRuntime, MatchesSerialConstructionBitForBit) {
  // The runtime's canonical construction loop must reproduce the exact RNG
  // split order the serial runners used, so freshly built fleets start
  // from identical parameters regardless of num_threads.
  FleetRuntime serial({core::ControllerConfig{}}, sim::ProcessorConfig{},
                      two_device_apps(), 21, 1);
  FleetRuntime parallel({core::ControllerConfig{}}, sim::ProcessorConfig{},
                        two_device_apps(), 21, 4);
  for (std::size_t d = 0; d < serial.size(); ++d)
    EXPECT_EQ(serial.controller(d).local_parameters(),
              parallel.controller(d).local_parameters());
}

TEST(FleetRuntime, ParallelLocalRoundMatchesSerial) {
  FleetRuntime serial({core::ControllerConfig{}}, sim::ProcessorConfig{},
                      two_device_apps(), 33, 1);
  FleetRuntime parallel({core::ControllerConfig{}}, sim::ProcessorConfig{},
                        two_device_apps(), 33, 4);
  for (int round = 0; round < 3; ++round) {
    serial.run_local_round();
    parallel.run_local_round();
  }
  for (std::size_t d = 0; d < serial.size(); ++d)
    EXPECT_EQ(serial.controller(d).local_parameters(),
              parallel.controller(d).local_parameters());
}

// The tentpole guarantee: a parallel (4-thread) federated run is
// bit-identical to the serial (1-thread) run for the same seed — same
// RoundResults (traffic, curves) and same final weights.
TEST(FleetRuntime, FederatedRunBitIdenticalAcrossThreadCounts) {
  const auto apps = two_device_apps();
  const auto suite = sim::splash2_suite();
  const auto serial = core::run_federated(tiny_config(1), apps, suite, true);
  const auto parallel =
      core::run_federated(tiny_config(4), apps, suite, true);

  EXPECT_EQ(serial.global_params, parallel.global_params);
  ASSERT_EQ(serial.devices.size(), parallel.devices.size());
  for (std::size_t d = 0; d < serial.devices.size(); ++d) {
    EXPECT_EQ(serial.devices[d].reward, parallel.devices[d].reward);
    EXPECT_EQ(serial.devices[d].mean_freq_mhz,
              parallel.devices[d].mean_freq_mhz);
    EXPECT_EQ(serial.devices[d].stddev_freq_mhz,
              parallel.devices[d].stddev_freq_mhz);
    EXPECT_EQ(serial.devices[d].mean_power_w,
              parallel.devices[d].mean_power_w);
    EXPECT_EQ(serial.devices[d].violation_rate,
              parallel.devices[d].violation_rate);
  }
  EXPECT_EQ(serial.fleet.reward, parallel.fleet.reward);
  EXPECT_EQ(serial.traffic.uplink_bytes, parallel.traffic.uplink_bytes);
  EXPECT_EQ(serial.traffic.downlink_bytes, parallel.traffic.downlink_bytes);
  EXPECT_EQ(serial.eval_app_per_round, parallel.eval_app_per_round);
}

TEST(FleetRuntime, LocalOnlyRunBitIdenticalAcrossThreadCounts) {
  const auto apps = two_device_apps();
  const auto suite = sim::splash2_suite();
  const auto serial =
      core::run_local_only(tiny_config(1), apps, suite, true);
  const auto parallel =
      core::run_local_only(tiny_config(4), apps, suite, true);
  EXPECT_EQ(serial.final_params, parallel.final_params);
  for (std::size_t d = 0; d < serial.devices.size(); ++d)
    EXPECT_EQ(serial.devices[d].reward, parallel.devices[d].reward);
}

TEST(FleetRuntime, CollabProfitBitIdenticalAcrossThreadCounts) {
  const auto apps = two_device_apps();
  auto config = tiny_config(1);
  const auto serial = core::run_collab_profit(config, apps);
  config.num_threads = 4;
  const auto parallel = core::run_collab_profit(config, apps);
  ASSERT_EQ(serial.clients.size(), parallel.clients.size());
  for (std::size_t d = 0; d < serial.clients.size(); ++d)
    EXPECT_EQ(serial.clients[d]->export_policy(),
              parallel.clients[d]->export_policy());
}

TEST(FleetRuntime, AsyncFederationBitIdenticalAcrossThreadCounts) {
  const auto apps = two_device_apps();
  auto make = [&](std::size_t threads) {
    core::ControllerConfig controller;
    controller.steps_per_round = 10;
    FleetRuntime fleet({controller}, sim::ProcessorConfig{}, apps, 5,
                       threads);
    fed::InProcessTransport transport;
    fed::AsyncFederation server(fleet.clients(), {1, 2}, &transport);
    server.set_local_executor(fleet.executor());
    server.initialize(fleet.controller(0).local_parameters());
    server.run_ticks(6);
    return server.global_model();
  };
  EXPECT_EQ(make(1), make(4));
}

TEST(FleetRuntime, FleetCurveIsAcrossDeviceMean) {
  const auto result = core::run_federated(tiny_config(2), two_device_apps(),
                                          sim::splash2_suite(), true);
  ASSERT_EQ(result.fleet.reward.size(), result.devices[0].reward.size());
  for (std::size_t r = 0; r < result.fleet.reward.size(); ++r) {
    double sum = 0.0;
    for (const auto& device : result.devices) sum += device.reward[r];
    EXPECT_DOUBLE_EQ(result.fleet.reward[r],
                     sum / static_cast<double>(result.devices.size()));
  }
}

TEST(FleetRuntime, PerDeviceConfigsAreHonoured) {
  std::vector<core::ControllerConfig> configs(2);
  configs[1].steps_per_round = 3;
  FleetRuntime fleet(configs, sim::ProcessorConfig{}, two_device_apps(), 9,
                     2);
  EXPECT_EQ(fleet.controller(0).config().steps_per_round, 100u);
  EXPECT_EQ(fleet.controller(1).config().steps_per_round, 3u);
}

}  // namespace
}  // namespace fedpower::runtime
