#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fedpower::runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is cleared once observed; the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsBeginOffset) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  pool.parallel_for(5, 15, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(7, 7, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 64,
                                 [](std::size_t i) {
                                   if (i == 13)
                                     throw std::invalid_argument("body");
                                 }),
               std::invalid_argument);
  // Pool survives for further use.
  std::vector<std::atomic<int>> hits(8);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerParallelForRunsInline) {
  // With one worker parallel_for is the serial loop on the calling thread.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(0, seen.size(), [&seen](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> out(1000);
  pool.parallel_for(0, out.size(), [&out](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double expected = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i)
    expected += static_cast<double>(i) * 0.5;
  EXPECT_DOUBLE_EQ(std::accumulate(out.begin(), out.end(), 0.0), expected);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(3), 3u);
  EXPECT_EQ(resolve_num_threads(1), 1u);
  EXPECT_GE(resolve_num_threads(0), 1u);  // auto: at least one
}

}  // namespace
}  // namespace fedpower::runtime
