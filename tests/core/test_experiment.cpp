#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.rounds = 5;
  config.controller.steps_per_round = 20;
  config.eval.episode_intervals = 10;
  config.seed = 11;
  return config;
}

std::vector<std::vector<sim::AppProfile>> scenario2_apps() {
  return resolve(table2_scenarios()[1]);
}

TEST(Experiment, FederatedProducesCurvesPerDevice) {
  const auto result = run_federated(tiny_config(), scenario2_apps(),
                                    sim::splash2_suite(), true);
  ASSERT_EQ(result.devices.size(), 2u);
  EXPECT_EQ(result.devices[0].reward.size(), 5u);
  EXPECT_EQ(result.devices[1].mean_freq_mhz.size(), 5u);
  EXPECT_EQ(result.eval_app_per_round.size(), 5u);
  EXPECT_FALSE(result.global_params.empty());
}

TEST(Experiment, FederatedWithoutEvalSkipsCurves) {
  const auto result = run_federated(tiny_config(), scenario2_apps(),
                                    sim::splash2_suite(), false);
  EXPECT_TRUE(result.devices[0].reward.empty());
  EXPECT_FALSE(result.global_params.empty());
}

TEST(Experiment, EvalAppsCycleInSuiteOrder) {
  const auto result = run_federated(tiny_config(), scenario2_apps(),
                                    sim::splash2_suite(), true);
  const auto names = sim::splash2_names();
  for (std::size_t r = 0; r < result.eval_app_per_round.size(); ++r)
    EXPECT_EQ(result.eval_app_per_round[r], names[r % names.size()]);
}

TEST(Experiment, TrafficMatchesRoundsTimesClients) {
  ExperimentConfig config = tiny_config();
  const auto result = run_federated(config, scenario2_apps(),
                                    sim::splash2_suite(), false);
  // 2 clients * 5 rounds uplink+downlink transfers.
  EXPECT_EQ(result.traffic.uplink_transfers, 10u);
  EXPECT_EQ(result.traffic.downlink_transfers, 10u);
  EXPECT_NEAR(result.traffic.mean_transfer_bytes(), 2760.0, 1.0);
}

TEST(Experiment, LocalOnlyKeepsDevicesIndependent) {
  const auto result = run_local_only(tiny_config(), scenario2_apps(),
                                     sim::splash2_suite(), true);
  ASSERT_EQ(result.devices.size(), 2u);
  ASSERT_EQ(result.final_params.size(), 2u);
  EXPECT_NE(result.final_params[0], result.final_params[1]);
}

TEST(Experiment, FederatedIsDeterministicGivenSeed) {
  const auto a = run_federated(tiny_config(), scenario2_apps(),
                               sim::splash2_suite(), true);
  const auto b = run_federated(tiny_config(), scenario2_apps(),
                               sim::splash2_suite(), true);
  EXPECT_EQ(a.global_params, b.global_params);
  EXPECT_EQ(a.devices[0].reward, b.devices[0].reward);
}

TEST(Experiment, DifferentSeedsDiverge) {
  ExperimentConfig c1 = tiny_config();
  ExperimentConfig c2 = tiny_config();
  c2.seed = 999;
  const auto a = run_federated(c1, scenario2_apps(), sim::splash2_suite(),
                               false);
  const auto b = run_federated(c2, scenario2_apps(), sim::splash2_suite(),
                               false);
  EXPECT_NE(a.global_params, b.global_params);
}

TEST(Experiment, CollabProfitTrainsAndExposesPolicies) {
  const auto result = run_collab_profit(tiny_config(), scenario2_apps());
  ASSERT_EQ(result.clients.size(), 2u);
  // After training both clients have recorded experience.
  for (const auto& client : result.clients)
    EXPECT_EQ(client->local_agent().step_count(), 5u * 20u);
  // Policies are callable.
  const PolicyFn policy = result.policy(0, 1479.0);
  sim::TelemetrySample sample;
  sample.freq_mhz = 500.0;
  sample.power_w = 0.4;
  sample.ipc = 0.8;
  sample.mpki = 10.0;
  EXPECT_LT(policy(sample), 15u);
}

TEST(Experiment, EvaluateAppsReturnsMetricsPerApp) {
  ControllerConfig config;
  EvalConfig eval;
  eval.processor.sensor_noise_w = 0.0;
  const Evaluator evaluator(config, eval);
  const PolicyFn mid = [](const sim::TelemetrySample&) {
    return std::size_t{8};
  };
  const std::vector<sim::AppProfile> apps = {*sim::splash2_app("fft"),
                                             *sim::splash2_app("radix")};
  const auto metrics = evaluate_apps(evaluator, mid, apps, 3);
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].app, "fft");
  EXPECT_EQ(metrics[1].app, "radix");
  for (const auto& m : metrics) {
    EXPECT_GT(m.exec_time_s, 0.0);
    EXPECT_GT(m.ips, 0.0);
    EXPECT_GT(m.power_w, 0.0);
  }
}

TEST(Experiment, SupportsMoreThanTwoDevices) {
  // The paper notes the system "can be naturally extended to use more than
  // two devices" — verify N = 4 works end to end.
  ExperimentConfig config = tiny_config();
  std::vector<std::vector<sim::AppProfile>> apps = {
      {*sim::splash2_app("fft")},
      {*sim::splash2_app("radix")},
      {*sim::splash2_app("lu")},
      {*sim::splash2_app("barnes")},
  };
  const auto result =
      run_federated(config, apps, sim::splash2_suite(), true);
  EXPECT_EQ(result.devices.size(), 4u);
  EXPECT_EQ(result.traffic.uplink_transfers, 4u * 5u);
}

}  // namespace
}  // namespace fedpower::core
