#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

Evaluator make_evaluator() {
  ControllerConfig config;
  EvalConfig eval;
  eval.processor.sensor_noise_w = 0.0;
  eval.processor.workload_jitter = 0.0;
  return Evaluator(config, eval);
}

PolicyFn fixed(std::size_t level) {
  return [level](const sim::TelemetrySample&) { return level; };
}

TEST(SwitchingEpisode, OneSegmentPerApp) {
  const Evaluator evaluator = make_evaluator();
  const std::vector<sim::AppProfile> apps = {
      *sim::splash2_app("fft"), *sim::splash2_app("radix"),
      *sim::splash2_app("lu")};
  const auto segments =
      evaluator.run_switching_episode(fixed(7), apps, 10, 1);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].app, "fft");
  EXPECT_EQ(segments[1].app, "radix");
  EXPECT_EQ(segments[2].app, "lu");
  for (const auto& segment : segments) EXPECT_EQ(segment.intervals, 10u);
}

TEST(SwitchingEpisode, SegmentsReflectTheirApp) {
  // At f_max, the radix segment stays under budget and the lu segment
  // violates — the per-segment stats must show it.
  const Evaluator evaluator = make_evaluator();
  const std::vector<sim::AppProfile> apps = {*sim::splash2_app("radix"),
                                             *sim::splash2_app("lu")};
  const auto segments =
      evaluator.run_switching_episode(fixed(14), apps, 12, 2);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_LT(segments[0].violation_rate, 0.1);
  EXPECT_GT(segments[0].mean_reward, 0.9);
  EXPECT_GT(segments[1].violation_rate, 0.8);
  EXPECT_LT(segments[1].mean_reward, -0.8);
}

TEST(SwitchingEpisode, ReactivePolicyLagsAtBoundary) {
  // A step-down-on-violation policy carries its previous level into the
  // first interval of the new app: after a memory segment the first
  // compute interval must violate.
  const Evaluator evaluator = make_evaluator();
  const PolicyFn reactive = [](const sim::TelemetrySample& s) {
    if (s.power_w > 0.6 && s.level > 0) return s.level - 1;
    if (s.power_w < 0.5 && s.level < 14) return s.level + 1;
    return s.level;
  };
  const std::vector<sim::AppProfile> apps = {*sim::splash2_app("radix"),
                                             *sim::splash2_app("water-ns")};
  const auto segments =
      evaluator.run_switching_episode(reactive, apps, 20, 3);
  // During radix the policy climbs to high levels; the water segment then
  // starts with violations before stepping back down.
  EXPECT_GT(segments[1].violation_rate, 0.1);
}

TEST(SwitchingEpisode, DeterministicGivenSeed) {
  const Evaluator evaluator = make_evaluator();
  const std::vector<sim::AppProfile> apps = {*sim::splash2_app("fft"),
                                             *sim::splash2_app("barnes")};
  const auto a = evaluator.run_switching_episode(fixed(9), apps, 8, 7);
  const auto b = evaluator.run_switching_episode(fixed(9), apps, 8, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].mean_reward, b[i].mean_reward);
}

TEST(SwitchingEpisode, RepeatedAppYieldsSimilarSegments) {
  const Evaluator evaluator = make_evaluator();
  const std::vector<sim::AppProfile> apps = {*sim::splash2_app("volrend"),
                                             *sim::splash2_app("volrend")};
  const auto segments =
      evaluator.run_switching_episode(fixed(10), apps, 15, 9);
  EXPECT_NEAR(segments[0].mean_reward, segments[1].mean_reward, 0.1);
}

}  // namespace
}  // namespace fedpower::core
