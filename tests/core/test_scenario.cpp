#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

TEST(Scenario, ThreeTable2Scenarios) {
  const auto scenarios = table2_scenarios();
  ASSERT_EQ(scenarios.size(), 3u);
  for (const auto& s : scenarios) {
    ASSERT_EQ(s.device_apps.size(), 2u);
    EXPECT_EQ(s.device_apps[0].size(), 2u);
    EXPECT_EQ(s.device_apps[1].size(), 2u);
  }
}

TEST(Scenario, Table2MatchesPaper) {
  const auto scenarios = table2_scenarios();
  EXPECT_EQ(scenarios[0].device_apps[0],
            (std::vector<std::string>{"fft", "lu"}));
  EXPECT_EQ(scenarios[0].device_apps[1],
            (std::vector<std::string>{"raytrace", "volrend"}));
  EXPECT_EQ(scenarios[1].device_apps[0],
            (std::vector<std::string>{"water-ns", "water-sp"}));
  EXPECT_EQ(scenarios[1].device_apps[1],
            (std::vector<std::string>{"ocean", "radix"}));
  EXPECT_EQ(scenarios[2].device_apps[0],
            (std::vector<std::string>{"fmm", "radiosity"}));
  EXPECT_EQ(scenarios[2].device_apps[1],
            (std::vector<std::string>{"barnes", "cholesky"}));
}

TEST(Scenario, Table2AppsAreDisjointWithinScenario) {
  for (const auto& scenario : table2_scenarios()) {
    std::set<std::string> all;
    for (const auto& device : scenario.device_apps)
      for (const auto& app : device)
        EXPECT_TRUE(all.insert(app).second) << app;
  }
}

TEST(Scenario, SixAppSplitCoversAllTwelve) {
  const Scenario split = six_app_split();
  ASSERT_EQ(split.device_apps.size(), 2u);
  EXPECT_EQ(split.device_apps[0].size(), 6u);
  EXPECT_EQ(split.device_apps[1].size(), 6u);
  std::set<std::string> all;
  for (const auto& device : split.device_apps)
    for (const auto& app : device) all.insert(app);
  EXPECT_EQ(all.size(), 12u);
  for (const auto& name : sim::splash2_names())
    EXPECT_TRUE(all.contains(name)) << name;
}

TEST(Scenario, ResolveProducesProfiles) {
  const auto resolved = resolve(table2_scenarios()[1]);
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0][0].name, "water-ns");
  EXPECT_EQ(resolved[1][1].name, "radix");
  for (const auto& device : resolved)
    for (const auto& app : device) EXPECT_FALSE(app.phases.empty());
}

TEST(ScenarioDeathTest, ResolveRejectsUnknownApp) {
  Scenario bad{"bad", {{"nonexistent-app"}}};
  EXPECT_DEATH(resolve(bad), "invariant");
}

}  // namespace
}  // namespace fedpower::core
