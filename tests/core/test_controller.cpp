#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "sim/workload.hpp"

namespace fedpower::core {
namespace {

ControllerConfig fast_config() {
  ControllerConfig config;
  config.agent.replay_capacity = 512;
  config.agent.optimize_interval = 10;
  return config;
}

struct Rig {
  sim::ProcessorConfig proc_config{};
  sim::Processor processor;
  sim::SingleAppWorkload workload;
  PowerController controller;

  explicit Rig(const std::string& app, std::uint64_t seed = 1,
               ControllerConfig config = fast_config())
      : processor(proc_config, util::Rng{seed}),
        workload(*sim::splash2_app(app)),
        controller(config, &processor, util::Rng{seed + 1}) {
    processor.set_workload(&workload);
  }
};

TEST(PowerController, StepExecutesOneInterval) {
  Rig rig("fft");
  const double t0 = rig.processor.time_s();
  rig.controller.step();
  // Bootstrap observation + one action interval = 2 * 0.5 s.
  EXPECT_DOUBLE_EQ(rig.processor.time_s(), t0 + 1.0);
  rig.controller.step();
  EXPECT_DOUBLE_EQ(rig.processor.time_s(), t0 + 1.5);
}

TEST(PowerController, RecordsIntoReplayBuffer) {
  Rig rig("fft");
  rig.controller.run_steps(10);
  EXPECT_EQ(rig.controller.agent().replay().size(), 10u);
  EXPECT_EQ(rig.controller.agent().step_count(), 10u);
}

TEST(PowerController, LocalRoundRunsConfiguredSteps) {
  ControllerConfig config = fast_config();
  config.steps_per_round = 25;
  Rig rig("lu", 2, config);
  rig.controller.run_local_round();
  EXPECT_EQ(rig.controller.agent().step_count(), 25u);
  EXPECT_EQ(rig.controller.local_sample_count(), 25u);
}

TEST(PowerController, RewardMatchesEquation4) {
  Rig rig("radix");
  const sim::TelemetrySample sample = rig.controller.step();
  const double expected =
      rig.controller.reward().evaluate(sample.freq_mhz, sample.power_w);
  EXPECT_DOUBLE_EQ(rig.controller.last_reward(), expected);
}

TEST(PowerController, FederationInterfaceRoundTrips) {
  Rig a("fft", 3);
  Rig b("lu", 4);
  const std::vector<double> params = a.controller.local_parameters();
  b.controller.receive_global(params);
  EXPECT_EQ(b.controller.local_parameters(), params);
}

TEST(PowerController, GreedyStepDoesNotLearn) {
  Rig rig("ocean");
  rig.controller.run_steps(5);
  const std::size_t steps = rig.controller.agent().step_count();
  const auto params = rig.controller.local_parameters();
  rig.controller.greedy_step();
  rig.controller.greedy_step();
  EXPECT_EQ(rig.controller.agent().step_count(), steps);
  EXPECT_EQ(rig.controller.local_parameters(), params);
}

TEST(PowerController, TrainingChangesParameters) {
  ControllerConfig config = fast_config();
  config.agent.optimize_interval = 5;
  Rig rig("barnes", 5, config);
  const auto before = rig.controller.local_parameters();
  rig.controller.run_steps(20);
  EXPECT_NE(rig.controller.local_parameters(), before);
}

TEST(PowerController, SelectsDifferentLevelsWhileExploring) {
  Rig rig("cholesky", 6);
  std::set<std::size_t> levels;
  for (int i = 0; i < 40; ++i) {
    const sim::TelemetrySample sample = rig.controller.step();
    levels.insert(sample.level);
  }
  EXPECT_GT(levels.size(), 5u);  // high-temperature softmax explores widely
}

TEST(PowerController, LocalSampleCountTracksReplaySize) {
  Rig rig("fmm", 7);
  EXPECT_EQ(rig.controller.local_sample_count(), 0u);
  rig.controller.run_steps(3);
  EXPECT_EQ(rig.controller.local_sample_count(), 3u);
}

TEST(PowerControllerDeathTest, ActionCountMustMatchVfLevels) {
  sim::ProcessorConfig proc_config;
  sim::Processor processor(proc_config, util::Rng{8});
  ControllerConfig config = fast_config();
  config.agent.action_count = 7;  // Jetson table has 15
  EXPECT_DEATH(PowerController(config, &processor, util::Rng{9}),
               "precondition");
}

TEST(PowerControllerDeathTest, RejectsNullProcessor) {
  EXPECT_DEATH(PowerController(fast_config(), nullptr, util::Rng{10}),
               "precondition");
}

}  // namespace
}  // namespace fedpower::core
