#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace fedpower::core {
namespace {

RoundCurve make_curve(std::initializer_list<double> rewards) {
  RoundCurve curve;
  for (const double r : rewards) {
    curve.reward.push_back(r);
    curve.mean_power_w.push_back(0.5);
    curve.mean_freq_mhz.push_back(1000.0);
    curve.stddev_freq_mhz.push_back(10.0);
    curve.violation_rate.push_back(r < 0.0 ? 0.5 : 0.0);
  }
  return curve;
}

TEST(CurveSummary, FullCurveStats) {
  const CurveSummary s = summarize(make_curve({0.2, 0.4, 0.6}));
  EXPECT_NEAR(s.mean_reward, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_reward, 0.2);
  EXPECT_DOUBLE_EQ(s.mean_power_w, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_freq_mhz, 1000.0);
  EXPECT_EQ(s.rounds, 3u);
}

TEST(CurveSummary, TailRestrictsWindow) {
  const CurveSummary s = summarize(make_curve({-1.0, 0.5, 0.7}), 2);
  EXPECT_NEAR(s.mean_reward, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_reward, 0.5);
  EXPECT_EQ(s.rounds, 2u);
}

TEST(CurveSummary, TailLargerThanCurveUsesAll) {
  const CurveSummary s = summarize(make_curve({0.1, 0.3}), 99);
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_NEAR(s.mean_reward, 0.2, 1e-12);
}

TEST(CurveSummary, MultiDeviceAveragesAndTakesGlobalMin) {
  const std::vector<RoundCurve> devices = {make_curve({0.4, 0.6}),
                                           make_curve({-0.2, 0.2})};
  const CurveSummary s = summarize(devices);
  EXPECT_NEAR(s.mean_reward, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_reward, -0.2);
}

TEST(CurveSummary, ViolationRateAggregates) {
  const CurveSummary s = summarize(make_curve({-0.5, 0.5}));
  EXPECT_NEAR(s.violation_rate, 0.25, 1e-12);
}

TEST(AppMetricsSummary, MeansAndMax) {
  const std::vector<AppMetrics> metrics = {
      {"a", 10.0, 1e9, 0.5}, {"b", 30.0, 2e9, 0.55}};
  const AppMetricsSummary s = summarize(metrics);
  EXPECT_DOUBLE_EQ(s.mean_exec_time_s, 20.0);
  EXPECT_DOUBLE_EQ(s.mean_ips, 1.5e9);
  EXPECT_NEAR(s.mean_power_w, 0.525, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_exec_time_s, 30.0);
}

TEST(Compare, PerAppChanges) {
  const std::vector<AppMetrics> baseline = {{"a", 20.0, 1.0e9, 0.45}};
  const std::vector<AppMetrics> candidate = {{"a", 16.0, 1.3e9, 0.52}};
  const auto comparisons = compare(baseline, candidate);
  ASSERT_EQ(comparisons.size(), 1u);
  EXPECT_NEAR(comparisons[0].exec_time_change_pct, -20.0, 1e-9);
  EXPECT_NEAR(comparisons[0].ips_change_pct, 30.0, 1e-9);
  EXPECT_NEAR(comparisons[0].power_delta_w, 0.07, 1e-12);
}

TEST(Compare, SummaryPicksBestCases) {
  const std::vector<AppMetrics> baseline = {{"a", 20.0, 1e9, 0.5},
                                            {"b", 40.0, 1e9, 0.5}};
  const std::vector<AppMetrics> candidate = {{"a", 18.0, 1.1e9, 0.5},
                                             {"b", 20.0, 1.5e9, 0.5}};
  const ComparisonSummary s = summarize(compare(baseline, candidate));
  EXPECT_NEAR(s.mean_exec_time_change_pct, -30.0, 1e-9);  // (-10-50)/2
  EXPECT_NEAR(s.best_exec_time_change_pct, -50.0, 1e-9);
  EXPECT_NEAR(s.best_ips_change_pct, 50.0, 1e-9);
}

TEST(CompareDeathTest, RejectsMismatchedApps) {
  const std::vector<AppMetrics> a = {{"x", 1.0, 1.0, 1.0}};
  const std::vector<AppMetrics> b = {{"y", 1.0, 1.0, 1.0}};
  EXPECT_DEATH(compare(a, b), "precondition");
  const std::vector<AppMetrics> longer = {{"x", 1.0, 1.0, 1.0},
                                          {"y", 1.0, 1.0, 1.0}};
  EXPECT_DEATH(compare(a, longer), "precondition");
}

TEST(CurveSummaryDeathTest, RejectsEmptyInputs) {
  EXPECT_DEATH((void)summarize(RoundCurve{}), "precondition");
  EXPECT_DEATH((void)summarize(std::vector<RoundCurve>{}), "precondition");
  EXPECT_DEATH((void)summarize(std::vector<AppMetrics>{}), "precondition");
}

}  // namespace
}  // namespace fedpower::core
