#include "core/evaluate.hpp"

#include <gtest/gtest.h>

#include "sim/splash2.hpp"

namespace fedpower::core {
namespace {

Evaluator make_evaluator() {
  ControllerConfig config;
  EvalConfig eval;
  eval.processor.sensor_noise_w = 0.0;
  eval.processor.workload_jitter = 0.0;
  eval.episode_intervals = 30;
  return Evaluator(config, eval);
}

PolicyFn fixed_policy(std::size_t level) {
  return [level](const sim::TelemetrySample&) { return level; };
}

TEST(Evaluator, EpisodeRunsRequestedIntervals) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult result = evaluator.run_episode(
      fixed_policy(7), *sim::splash2_app("fft"), 1);
  EXPECT_EQ(result.intervals, 30u);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.app, "fft");
}

TEST(Evaluator, FixedPolicyYieldsThatFrequency) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult result = evaluator.run_episode(
      fixed_policy(7), *sim::splash2_app("fft"), 2);
  EXPECT_DOUBLE_EQ(result.mean_freq_mhz, 825.6);
  EXPECT_DOUBLE_EQ(result.stddev_freq_mhz, 0.0);
}

TEST(Evaluator, MaxFrequencyOnComputeAppViolates) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult result = evaluator.run_episode(
      fixed_policy(14), *sim::splash2_app("water-ns"), 3);
  EXPECT_GT(result.violation_rate, 0.95);
  EXPECT_NEAR(result.mean_reward, -1.0, 0.05);
}

TEST(Evaluator, MaxFrequencyOnMemoryAppIsOptimal) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult result = evaluator.run_episode(
      fixed_policy(14), *sim::splash2_app("radix"), 4);
  EXPECT_LT(result.violation_rate, 0.05);
  EXPECT_GT(result.mean_reward, 0.95);
}

TEST(Evaluator, RunToCompletionReportsExecTime) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult result = evaluator.run_to_completion(
      fixed_policy(14), *sim::splash2_app("radix"), 5);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.exec_time_s, 5.0);
  EXPECT_LT(result.exec_time_s, 60.0);
  EXPECT_GT(result.mean_ips, 1e8);
}

TEST(Evaluator, CompletionReportsEnergyAndEdp) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult result = evaluator.run_to_completion(
      fixed_policy(10), *sim::splash2_app("fft"), 11);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_NEAR(result.edp, result.energy_j * result.exec_time_s, 1e-9);
  // Energy must be consistent with mean power x time to within the
  // interval granularity.
  EXPECT_NEAR(result.energy_j,
              result.mean_power_w * result.exec_time_s,
              0.1 * result.energy_j);
}

TEST(Evaluator, EnergyDelayTradeoffAcrossLevels) {
  // Energy-delay product is the metric of [8]; it must be a U-shaped-ish
  // function with neither extreme level optimal for a compute app.
  const Evaluator evaluator = make_evaluator();
  const auto edp_at = [&](std::size_t level) {
    return evaluator
        .run_to_completion(fixed_policy(level), *sim::splash2_app("lu"), 12)
        .edp;
  };
  const double low = edp_at(0);
  const double mid = edp_at(8);
  EXPECT_LT(mid, low);  // crawling wastes leakage energy over a long time
}

TEST(Evaluator, HigherFrequencyFinishesFaster) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult slow = evaluator.run_to_completion(
      fixed_policy(4), *sim::splash2_app("lu"), 6);
  const EvalResult fast = evaluator.run_to_completion(
      fixed_policy(10), *sim::splash2_app("lu"), 6);
  ASSERT_TRUE(slow.completed);
  ASSERT_TRUE(fast.completed);
  EXPECT_LT(fast.exec_time_s, slow.exec_time_s);
}

TEST(Evaluator, TimeoutLeavesCompletedFalse) {
  ControllerConfig config;
  EvalConfig eval;
  eval.processor.sensor_noise_w = 0.0;
  eval.completion_timeout_s = 2.0;  // far too short for any app
  const Evaluator evaluator(config, eval);
  const EvalResult result = evaluator.run_to_completion(
      fixed_policy(0), *sim::splash2_app("ocean"), 7);
  EXPECT_FALSE(result.completed);
  EXPECT_DOUBLE_EQ(result.exec_time_s, 0.0);
}

TEST(Evaluator, NeuralPolicyIsGreedyArgmax) {
  const Evaluator evaluator = make_evaluator();
  ControllerConfig config;
  util::Rng rng(8);
  nn::Mlp model = nn::make_mlp(config.agent.state_dim,
                               config.agent.hidden_sizes,
                               config.agent.action_count, rng);
  // Force the model to always prefer action 3: zero weights, bias peak.
  std::vector<double> params(model.param_count(), 0.0);
  // Output bias layout: last action_count entries.
  params[params.size() - config.agent.action_count + 3] = 1.0;
  const PolicyFn policy = evaluator.neural_policy(params);
  sim::TelemetrySample sample;
  sample.freq_mhz = 500.0;
  EXPECT_EQ(policy(sample), 3u);
}

TEST(Evaluator, DeterministicForSameSeed) {
  const Evaluator evaluator = make_evaluator();
  const EvalResult a = evaluator.run_episode(
      fixed_policy(9), *sim::splash2_app("volrend"), 42);
  const EvalResult b = evaluator.run_episode(
      fixed_policy(9), *sim::splash2_app("volrend"), 42);
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward);
  EXPECT_DOUBLE_EQ(a.mean_power_w, b.mean_power_w);
}

TEST(Evaluator, ReactivePolicyCanUseTelemetry) {
  // A policy that reacts to power (step down when above budget) must end
  // with fewer violations than blindly running at max.
  const Evaluator evaluator = make_evaluator();
  const PolicyFn reactive = [](const sim::TelemetrySample& s) {
    if (s.power_w > 0.6 && s.level > 0) return s.level - 1;
    if (s.power_w < 0.5 && s.level < 14) return s.level + 1;
    return s.level;
  };
  const EvalResult adaptive = evaluator.run_episode(
      reactive, *sim::splash2_app("water-sp"), 9);
  const EvalResult blind = evaluator.run_episode(
      fixed_policy(14), *sim::splash2_app("water-sp"), 9);
  EXPECT_LT(adaptive.violation_rate, blind.violation_rate);
  EXPECT_GT(adaptive.mean_reward, blind.mean_reward);
}

}  // namespace
}  // namespace fedpower::core
