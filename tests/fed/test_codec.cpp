#include "fed/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"

namespace fedpower::fed {
namespace {

TEST(Float32Codec, RoundTrip) {
  const Float32Codec& codec = Float32Codec::instance();
  const std::vector<double> params = {0.5, -1.25, 3.0};
  EXPECT_EQ(codec.decode(codec.encode(params)), params);
}

TEST(Float32Codec, PayloadSizeMatchesSerializeModule) {
  const Float32Codec& codec = Float32Codec::instance();
  EXPECT_EQ(codec.payload_size(687), 12u + 687u * 4u);
  EXPECT_EQ(codec.encode(std::vector<double>(687, 0.1)).size(),
            codec.payload_size(687));
}

TEST(Float32Codec, Name) {
  EXPECT_EQ(Float32Codec::instance().name(), "float32");
}

TEST(QuantizedCodec, RoundTripWithinErrorBound) {
  const QuantizedCodec& codec = QuantizedCodec::instance();
  const std::vector<double> params = {-0.8, -0.3, 0.0, 0.4, 0.8};
  const auto decoded = codec.decode(codec.encode(params));
  ASSERT_EQ(decoded.size(), params.size());
  const double bound = QuantizedCodec::max_error(-0.8, 0.8) + 1e-9;
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_NEAR(decoded[i], params[i], bound);
}

TEST(QuantizedCodec, EndpointsAreExact) {
  const QuantizedCodec& codec = QuantizedCodec::instance();
  const std::vector<double> params = {-2.0, 2.0};
  const auto decoded = codec.decode(codec.encode(params));
  EXPECT_NEAR(decoded[0], -2.0, 1e-6);
  EXPECT_NEAR(decoded[1], 2.0, 1e-6);
}

TEST(QuantizedCodec, QuartersThePayload) {
  const QuantizedCodec& q = QuantizedCodec::instance();
  const Float32Codec& f = Float32Codec::instance();
  // 687-parameter policy: 2760 B float32 vs ~707 B int8.
  EXPECT_LT(q.payload_size(687) * 3, f.payload_size(687));
}

TEST(QuantizedCodec, ConstantVectorSurvives) {
  const QuantizedCodec& codec = QuantizedCodec::instance();
  const std::vector<double> params(10, 0.42);
  const auto decoded = codec.decode(codec.encode(params));
  for (const double v : decoded) EXPECT_NEAR(v, 0.42, 1e-6);
}

TEST(QuantizedCodec, EmptyVector) {
  const QuantizedCodec& codec = QuantizedCodec::instance();
  EXPECT_TRUE(codec.decode(codec.encode(std::vector<double>{})).empty());
}

TEST(QuantizedCodec, RejectsMalformedPayloads) {
  const QuantizedCodec& codec = QuantizedCodec::instance();
  EXPECT_THROW(codec.decode(std::vector<std::uint8_t>(5, 0)),
               std::invalid_argument);
  auto payload = codec.encode(std::vector<double>{1.0, 2.0});
  payload[0] = 'X';
  EXPECT_THROW(codec.decode(payload), std::invalid_argument);
  auto truncated = codec.encode(std::vector<double>{1.0, 2.0});
  truncated.pop_back();
  EXPECT_THROW(codec.decode(truncated), std::invalid_argument);
}

TEST(QuantizedCodec, RealisticModelAccuracy) {
  // Quantizing a real policy network must not move any parameter by more
  // than the bound given its min/max spread.
  util::Rng rng(1);
  nn::Mlp model = nn::make_mlp(5, {32}, 15, rng);
  const std::vector<double> params = model.parameters();
  double lo = params[0];
  double hi = params[0];
  for (const double p : params) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const QuantizedCodec& codec = QuantizedCodec::instance();
  const auto decoded = codec.decode(codec.encode(params));
  const double bound = QuantizedCodec::max_error(lo, hi) + 1e-6;
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_NEAR(decoded[i], params[i], bound);
}

}  // namespace
}  // namespace fedpower::fed
