// Client-side attack models: what a compromised device uploads, when the
// attack activates, and that the wrapper checkpoints its replay state
// (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "ckpt/errors.hpp"
#include "fed/byzantine.hpp"

namespace fedpower::fed {
namespace {

/// Honest client whose model is simply {round, -round}: every local round
/// produces a distinct, predictable vector so replay lags are observable.
class CountingClient final : public FederatedClient {
 public:
  void receive_global(std::span<const double>) override {}
  std::vector<double> local_parameters() const override {
    const double r = static_cast<double>(rounds_);
    return {r, -r};
  }
  void run_local_round() override { ++rounds_; }

 private:
  std::size_t rounds_ = 0;
};

TEST(ByzantineClient, HonestConfigIsPassthrough) {
  CountingClient inner;
  ByzantineClient wrapper(&inner, {});
  wrapper.run_local_round();
  EXPECT_FALSE(wrapper.attack_active());
  EXPECT_EQ(wrapper.local_parameters(), inner.local_parameters());
}

TEST(ByzantineClient, SignFlipNegatesAndScalesTheModel) {
  CountingClient inner;
  ClientFaultConfig config;
  config.attack = UploadAttack::kSignFlip;
  config.scale = 2.0;
  ByzantineClient wrapper(&inner, config);
  wrapper.run_local_round();  // honest model {1, -1}
  EXPECT_TRUE(wrapper.attack_active());
  EXPECT_EQ(wrapper.local_parameters(), (std::vector<double>{-2.0, 2.0}));
}

TEST(ByzantineClient, ScaleAttackInflatesWithoutFlipping) {
  CountingClient inner;
  ClientFaultConfig config;
  config.attack = UploadAttack::kScale;
  config.scale = -4.0;  // the sign comes from the attack, not the config
  ByzantineClient wrapper(&inner, config);
  wrapper.run_local_round();
  EXPECT_EQ(wrapper.local_parameters(), (std::vector<double>{4.0, -4.0}));
}

TEST(ByzantineClient, SleeperStaysHonestUntilStartRound) {
  CountingClient inner;
  ClientFaultConfig config;
  config.attack = UploadAttack::kSignFlip;
  config.scale = 1.0;
  config.start_round = 3;
  ByzantineClient wrapper(&inner, config);
  for (int round = 0; round < 2; ++round) wrapper.run_local_round();
  EXPECT_FALSE(wrapper.attack_active());
  EXPECT_EQ(wrapper.local_parameters(), (std::vector<double>{2.0, -2.0}));
  wrapper.run_local_round();  // rounds_seen reaches start_round
  EXPECT_TRUE(wrapper.attack_active());
  EXPECT_EQ(wrapper.local_parameters(), (std::vector<double>{-3.0, 3.0}));
}

TEST(ByzantineClient, StaleReplayUploadsTheLaggedModel) {
  CountingClient inner;
  ClientFaultConfig config;
  config.attack = UploadAttack::kStaleReplay;
  config.stale_rounds = 2;
  ByzantineClient wrapper(&inner, config);
  wrapper.run_local_round();  // history: {1}
  EXPECT_EQ(wrapper.local_parameters(), (std::vector<double>{1.0, -1.0}));
  for (int round = 0; round < 4; ++round) wrapper.run_local_round();
  // After 5 rounds the bounded history holds models 4 and 5; the replay
  // serves the stalest one while the honest client is already at 5.
  EXPECT_EQ(inner.local_parameters(), (std::vector<double>{5.0, -5.0}));
  EXPECT_EQ(wrapper.local_parameters(), (std::vector<double>{4.0, -4.0}));
}

TEST(ByzantineClient, StaleReplayFallsBackToHonestWithEmptyHistory) {
  CountingClient inner;
  ClientFaultConfig config;
  config.attack = UploadAttack::kStaleReplay;
  config.stale_rounds = 3;
  const ByzantineClient wrapper(&inner, config);
  // No local round yet: nothing recorded, so the upload is the honest
  // model rather than an empty vector the server would have to drop.
  EXPECT_EQ(wrapper.local_parameters(), inner.local_parameters());
}

TEST(ByzantineClient, CheckpointRoundtripPreservesReplayState) {
  CountingClient inner;
  ClientFaultConfig config;
  config.attack = UploadAttack::kStaleReplay;
  config.stale_rounds = 3;
  ByzantineClient original(&inner, config);
  for (int round = 0; round < 5; ++round) original.run_local_round();

  ckpt::Writer out;
  original.save_state(out);
  const std::vector<std::uint8_t> bytes = out.take();

  CountingClient inner_restored;
  for (int round = 0; round < 5; ++round) inner_restored.run_local_round();
  ByzantineClient restored(&inner_restored, config);
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(restored.rounds_seen(), original.rounds_seen());
  EXPECT_EQ(restored.local_parameters(), original.local_parameters());
}

TEST(ByzantineClient, CheckpointRejectsOversizedReplayWindow) {
  CountingClient inner;
  ClientFaultConfig wide;
  wide.attack = UploadAttack::kStaleReplay;
  wide.stale_rounds = 4;
  ByzantineClient original(&inner, wide);
  for (int round = 0; round < 6; ++round) original.run_local_round();

  ckpt::Writer out;
  original.save_state(out);
  const std::vector<std::uint8_t> bytes = out.take();

  ClientFaultConfig narrow = wide;
  narrow.stale_rounds = 2;
  CountingClient inner_restored;
  ByzantineClient restored(&inner_restored, narrow);
  ckpt::Reader in(bytes);
  EXPECT_THROW(restored.restore_state(in), ckpt::StateMismatchError);
}

}  // namespace
}  // namespace fedpower::fed
