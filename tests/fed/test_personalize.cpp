#include "fed/personalize.hpp"

#include <gtest/gtest.h>

namespace fedpower::fed {
namespace {

/// Minimal inner client for decorator tests.
class StubClient final : public FederatedClient {
 public:
  explicit StubClient(std::vector<double> params)
      : params_(std::move(params)) {}

  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override { ++rounds_; }
  std::size_t local_sample_count() const override { return 7; }

  int rounds() const noexcept { return rounds_; }

 private:
  std::vector<double> params_;
  int rounds_ = 0;
};

TEST(SharedBodyMask, SplitsAtTheRightBoundary) {
  const auto mask = shared_body_mask(10, 3);
  ASSERT_EQ(mask.size(), 10u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_TRUE(mask[i]);
  for (std::size_t i = 7; i < 10; ++i) EXPECT_FALSE(mask[i]);
}

TEST(SharedBodyMaskDeathTest, HeadMustBeSmallerThanTotal) {
  EXPECT_DEATH(shared_body_mask(5, 5), "precondition");
}

TEST(PersonalizedClient, MergesOnlySharedCoordinates) {
  StubClient inner({1.0, 2.0, 3.0, 4.0});
  PersonalizedClient client(&inner, {true, true, false, false});
  client.receive_global(std::vector<double>{9.0, 8.0, 7.0, 6.0});
  EXPECT_EQ(inner.local_parameters(),
            (std::vector<double>{9.0, 8.0, 3.0, 4.0}));
}

TEST(PersonalizedClient, FullMaskBehavesLikePlainClient) {
  StubClient inner({1.0, 2.0});
  PersonalizedClient client(&inner, {true, true});
  client.receive_global(std::vector<double>{5.0, 6.0});
  EXPECT_EQ(inner.local_parameters(), (std::vector<double>{5.0, 6.0}));
}

TEST(PersonalizedClient, DelegatesEverythingElse) {
  StubClient inner({1.0});
  PersonalizedClient client(&inner, {true});
  client.run_local_round();
  EXPECT_EQ(inner.rounds(), 1);
  EXPECT_EQ(client.local_sample_count(), 7u);
  EXPECT_EQ(client.local_parameters(), inner.local_parameters());
  EXPECT_EQ(client.shared_count(), 1u);
}

TEST(PersonalizedClient, PrivateHeadSurvivesFederationRounds) {
  // Two personalized clients with different heads: the heads must still
  // differ after several federated rounds even though the bodies converge.
  StubClient inner_a({1.0, 2.0, 100.0});
  StubClient inner_b({3.0, 4.0, -100.0});
  const std::vector<bool> mask = {true, true, false};
  PersonalizedClient a(&inner_a, mask);
  PersonalizedClient b(&inner_b, mask);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize(a.local_parameters());
  server.run(3);
  EXPECT_DOUBLE_EQ(inner_a.local_parameters()[2], 100.0);
  EXPECT_DOUBLE_EQ(inner_b.local_parameters()[2], -100.0);
  // Bodies have been averaged to a common value.
  EXPECT_DOUBLE_EQ(inner_a.local_parameters()[0],
                   inner_b.local_parameters()[0]);
}

TEST(PersonalizedClientDeathTest, RejectsNullInner) {
  EXPECT_DEATH(PersonalizedClient(nullptr, {true}), "precondition");
}

TEST(PersonalizedClientDeathTest, RejectsFullyPrivateMask) {
  StubClient inner({1.0});
  EXPECT_DEATH(PersonalizedClient(&inner, {false}), "precondition");
}

TEST(PersonalizedClientDeathTest, RejectsSizeMismatch) {
  StubClient inner({1.0, 2.0});
  PersonalizedClient client(&inner, {true, false});
  EXPECT_DEATH(client.receive_global(std::vector<double>{1.0}),
               "precondition");
}

}  // namespace
}  // namespace fedpower::fed
