#include "fed/secure_agg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fedpower::fed {
namespace {

std::vector<double> random_params(std::size_t n, util::Rng& rng) {
  std::vector<double> params(n);
  for (double& p : params) p = rng.uniform(-2.0, 2.0);
  return params;
}

TEST(SecureAgg, MeanOfTwoClientsIsExactWithinResolution) {
  SecureAggregationSession session(2, 4, /*round_secret=*/99);
  const std::vector<double> a = {1.0, -1.0, 0.5, 2.0};
  const std::vector<double> b = {0.0, 1.0, 0.5, -1.0};
  const auto mean = session.unmask_mean(
      {session.masked_payload(0, a), session.masked_payload(1, b)});
  ASSERT_EQ(mean.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(mean[i], (a[i] + b[i]) / 2.0, 1e-5);
}

TEST(SecureAgg, ManyClientsManyDimensions) {
  const std::size_t n = 7;
  const std::size_t dim = 100;
  SecureAggregationSession session(n, dim, 1234);
  util::Rng rng(5);
  std::vector<std::vector<double>> models;
  std::vector<std::vector<std::uint64_t>> payloads;
  for (std::size_t c = 0; c < n; ++c) {
    models.push_back(random_params(dim, rng));
    payloads.push_back(session.masked_payload(c, models.back()));
  }
  const auto mean = session.unmask_mean(payloads);
  for (std::size_t i = 0; i < dim; ++i) {
    double expected = 0.0;
    for (const auto& m : models) expected += m[i];
    expected /= static_cast<double>(n);
    EXPECT_NEAR(mean[i], expected, 1e-5);
  }
}

TEST(SecureAgg, MaskedPayloadHidesThePlaintext) {
  // A single masked payload must look nothing like the fixed-point
  // encoding of the parameters: compare against an unmasked session of
  // one... not possible (needs >= 2 clients), so compare the payload to
  // the direct fixed-point values instead.
  SecureAggregationSession session(2, 64, 42);
  util::Rng rng(6);
  const std::vector<double> params = random_params(64, rng);
  const auto payload = session.masked_payload(0, params);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto fixed = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(params[i] / 1e-6)));
    if (payload[i] == fixed) ++matches;
  }
  EXPECT_EQ(matches, 0u);
}

TEST(SecureAgg, MaskedPayloadsDifferAcrossRounds) {
  const std::vector<double> params = {1.0, 2.0, 3.0};
  SecureAggregationSession round1(2, 3, 1);
  SecureAggregationSession round2(2, 3, 2);
  EXPECT_NE(round1.masked_payload(0, params),
            round2.masked_payload(0, params));
}

TEST(SecureAgg, DeterministicForSameSecret) {
  const std::vector<double> params = {1.0, 2.0, 3.0};
  SecureAggregationSession a(3, 3, 7);
  SecureAggregationSession b(3, 3, 7);
  EXPECT_EQ(a.masked_payload(1, params), b.masked_payload(1, params));
}

TEST(SecureAgg, ClippingBoundsExtremeValues) {
  SecureAggregationSession session(2, 1, 11);  // clip = 8.0 default
  const auto mean = session.unmask_mean({
      session.masked_payload(0, std::vector<double>{100.0}),
      session.masked_payload(1, std::vector<double>{0.0}),
  });
  EXPECT_NEAR(mean[0], 4.0, 1e-5);  // clip(100) = 8, mean with 0 = 4
}

TEST(SecureAgg, RejectsDropout) {
  SecureAggregationSession session(3, 2, 13);
  const std::vector<double> params = {0.0, 0.0};
  std::vector<std::vector<std::uint64_t>> partial = {
      session.masked_payload(0, params), session.masked_payload(1, params)};
  EXPECT_THROW(session.unmask_mean(partial), std::invalid_argument);
}

TEST(SecureAgg, RejectsDimensionMismatch) {
  SecureAggregationSession session(2, 3, 17);
  const std::vector<double> params = {0.0, 0.0, 0.0};
  std::vector<std::vector<std::uint64_t>> payloads = {
      session.masked_payload(0, params), {1, 2}};
  EXPECT_THROW(session.unmask_mean(payloads), std::invalid_argument);
}

TEST(SecureAgg, ResolutionControlsPrecision) {
  SecureAggConfig coarse;
  coarse.resolution = 0.1;
  SecureAggregationSession session(2, 1, 19, coarse);
  const auto mean = session.unmask_mean({
      session.masked_payload(0, std::vector<double>{0.123}),
      session.masked_payload(1, std::vector<double>{0.123}),
  });
  EXPECT_NEAR(mean[0], 0.1, 0.051);  // rounded to the 0.1 grid
}

TEST(SecureAggDeathTest, RequiresAtLeastTwoClients) {
  EXPECT_DEATH(SecureAggregationSession(1, 4, 0), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
