// Aggregation-rule properties that must hold for any client models:
// permutation invariance, idempotence on identical inputs, bounds, and
// contraction of client disagreement under averaging.
#include <gtest/gtest.h>

#include <algorithm>

#include "fed/aggregate.hpp"
#include "util/rng.hpp"

namespace fedpower::fed {
namespace {

using Aggregator =
    std::vector<double> (*)(const std::vector<std::vector<double>>&);

std::vector<double> median_wrapper(
    const std::vector<std::vector<double>>& models) {
  return aggregate_median(models);
}

std::vector<double> trimmed_wrapper(
    const std::vector<std::vector<double>>& models) {
  return aggregate_trimmed_mean(models, models.size() >= 3 ? 1 : 0);
}

std::vector<std::vector<double>> random_models(std::size_t n,
                                                std::size_t dim,
                                                std::uint64_t seed);

class AggregationProperties : public ::testing::TestWithParam<Aggregator> {
 protected:
  static std::vector<std::vector<double>> make_models(std::size_t n,
                                                        std::size_t dim,
                                                        std::uint64_t seed) {
    return random_models(n, dim, seed);
  }
};

std::vector<std::vector<double>> random_models(std::size_t n,
                                               std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> models(n, std::vector<double>(dim));
  for (auto& model : models)
    for (double& p : model) p = rng.uniform(-2.0, 2.0);
  return models;
}

TEST_P(AggregationProperties, PermutationInvariant) {
  auto models = AggregationProperties::make_models(5, 16, 1);
  const auto expected = GetParam()(models);
  util::Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    rng.shuffle(models);
    const auto permuted = GetParam()(models);
    ASSERT_EQ(permuted.size(), expected.size());
    // Floating-point summation is not exactly reorder-invariant; allow
    // round-off-level differences.
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_NEAR(permuted[i], expected[i], 1e-12);
  }
}

TEST_P(AggregationProperties, IdenticalModelsAreFixedPoint) {
  const std::vector<double> model = {0.25, -1.5, 3.0, 0.0};
  const std::vector<std::vector<double>> models(4, model);
  const auto global = GetParam()(models);
  for (std::size_t i = 0; i < model.size(); ++i)
    EXPECT_NEAR(global[i], model[i], 1e-12);
}

TEST_P(AggregationProperties, ResultWithinClientEnvelope) {
  const auto models = AggregationProperties::make_models(7, 32, 3);
  const auto global = GetParam()(models);
  for (std::size_t i = 0; i < global.size(); ++i) {
    double lo = models[0][i];
    double hi = models[0][i];
    for (const auto& model : models) {
      lo = std::min(lo, model[i]);
      hi = std::max(hi, model[i]);
    }
    EXPECT_GE(global[i], lo - 1e-12);
    EXPECT_LE(global[i], hi + 1e-12);
  }
}

TEST_P(AggregationProperties, TranslationEquivariant) {
  // agg(models + c) == agg(models) + c, coordinate-wise.
  auto models = AggregationProperties::make_models(5, 8, 4);
  const auto base = GetParam()(models);
  const double shift = 0.37;
  for (auto& model : models)
    for (double& p : model) p += shift;
  const auto shifted = GetParam()(models);
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_NEAR(shifted[i], base[i] + shift, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, AggregationProperties,
    ::testing::Values(static_cast<Aggregator>(&average_unweighted),
                      &median_wrapper, &trimmed_wrapper),
    [](const ::testing::TestParamInfo<Aggregator>& param_info) {
      switch (param_info.index) {
        case 0: return std::string("mean");
        case 1: return std::string("median");
        default: return std::string("trimmed");
      }
    });

TEST(AveragingContraction, MeanReducesClientSpread) {
  // After replacing every model by the average, the pairwise spread is 0 —
  // more interestingly, mixing halfway towards the average halves it.
  const auto models = random_models(4, 16, 5);
  const auto global = average_unweighted(models);
  const auto spread = [](const std::vector<std::vector<double>>& ms) {
    double s = 0.0;
    for (const auto& a : ms)
      for (const auto& b : ms)
        for (std::size_t i = 0; i < a.size(); ++i)
          s += std::abs(a[i] - b[i]);
    return s;
  };
  auto mixed = models;
  for (auto& model : mixed)
    for (std::size_t i = 0; i < model.size(); ++i)
      model[i] = 0.5 * (model[i] + global[i]);
  EXPECT_NEAR(spread(mixed), 0.5 * spread(models), 1e-9);
}

}  // namespace
}  // namespace fedpower::fed
