// Server-side Byzantine defense pipeline: screening verdicts, the
// reputation/quarantine state machine, and DFNS checkpoint round-trips
// (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "ckpt/errors.hpp"
#include "fed/defense.hpp"

namespace fedpower::fed {
namespace {

/// Small windows so the screens arm after a single committed round.
DefenseConfig test_config() {
  DefenseConfig config;
  config.enabled = true;
  config.warmup_rounds = 1;
  config.norm_min_samples = 4;
  config.norm_history = 16;
  return config;
}

/// Fabricated clean observation: client uploaded an update of given norm.
ScreenObservation accepted(std::size_t client, double norm) {
  return {client, ScreenVerdict::kAccepted, norm};
}

/// Commits one round of unit-norm accepted uploads from every client, which
/// both advances the round counter past warm-up and seeds the norm history
/// (median 1.0).
void warm_up(DefensePipeline& pipeline) {
  std::vector<ScreenObservation> observations;
  for (std::size_t c = 0; c < pipeline.client_count(); ++c)
    observations.push_back(accepted(c, 1.0));
  pipeline.commit_round(observations);
}

/// A model `scale` update-norm-units along the previous global's own
/// direction: cosine distance 0, update norm = |scale|.
std::vector<double> along_global(std::span<const double> global,
                                 double scale) {
  double norm = 0.0;
  for (const double g : global) norm += g * g;
  norm = std::sqrt(norm);
  std::vector<double> model(global.begin(), global.end());
  for (double& v : model) v += v / norm * scale;
  return model;
}

const std::vector<double> kGlobal = {1.0, 2.0, 3.0, 4.0};

TEST(DefenseScreen, WarmupAcceptsEverything) {
  const DefensePipeline pipeline(test_config(), 4);
  std::vector<double> flipped(kGlobal);
  for (double& v : flipped) v = -v * 50.0;
  // rounds_committed = 0 < warmup_rounds: even a blatant sign flip passes.
  EXPECT_EQ(pipeline.screen(0, flipped, kGlobal).verdict,
            ScreenVerdict::kAccepted);
}

TEST(DefenseScreen, CosineScreenCatchesSignFlip) {
  DefensePipeline pipeline(test_config(), 4);
  warm_up(pipeline);
  std::vector<double> flipped(kGlobal);
  for (double& v : flipped) v = -v * 50.0;
  EXPECT_EQ(pipeline.screen(0, flipped, kGlobal).verdict,
            ScreenVerdict::kCosineReject);
}

TEST(DefenseScreen, ModerateOversizeIsClippedOntoTheEnvelope) {
  DefensePipeline pipeline(test_config(), 4);
  warm_up(pipeline);  // norm history median = 1.0
  // Update norm 4.0: above clip (2.5 * 1.0) but below reject (6.0 * 1.0).
  std::vector<double> upload = along_global(kGlobal, 4.0);
  const ScreenObservation obs = pipeline.screen(0, upload, kGlobal);
  EXPECT_EQ(obs.verdict, ScreenVerdict::kClipped);
  EXPECT_DOUBLE_EQ(obs.accepted_norm, 2.5);
  double clipped_norm = 0.0;
  for (std::size_t i = 0; i < upload.size(); ++i) {
    const double d = upload[i] - kGlobal[i];
    clipped_norm += d * d;
  }
  EXPECT_NEAR(std::sqrt(clipped_norm), 2.5, 1e-12);
}

TEST(DefenseScreen, GrossOversizeIsRejectedOutright) {
  DefensePipeline pipeline(test_config(), 4);
  warm_up(pipeline);
  std::vector<double> upload = along_global(kGlobal, 10.0);
  EXPECT_EQ(pipeline.screen(0, upload, kGlobal).verdict,
            ScreenVerdict::kNormReject);
}

TEST(DefenseScreen, InEnvelopeUploadIsAccepted) {
  DefensePipeline pipeline(test_config(), 4);
  warm_up(pipeline);
  std::vector<double> upload = along_global(kGlobal, 1.2);
  const std::vector<double> before = upload;
  const ScreenObservation obs = pipeline.screen(0, upload, kGlobal);
  EXPECT_EQ(obs.verdict, ScreenVerdict::kAccepted);
  EXPECT_EQ(upload, before);  // accepted uploads are never rescaled
}

TEST(DefenseScreen, ScreeningMutatesNoPipelineState) {
  DefensePipeline pipeline(test_config(), 4);
  warm_up(pipeline);
  const double reputation_before = pipeline.reputation(0);
  std::vector<double> upload = along_global(kGlobal, 10.0);
  (void)pipeline.screen(0, upload, kGlobal);
  (void)pipeline.non_finite(0);
  // A round aborted by QuorumError drops its observations; nothing may have
  // moved until commit_round().
  EXPECT_DOUBLE_EQ(pipeline.reputation(0), reputation_before);
  EXPECT_EQ(pipeline.rounds_committed(), 1u);
}

TEST(DefenseReputation, RepeatOffenderIsQuarantined) {
  DefensePipeline pipeline(test_config(), 2);
  // fail_penalty 0.25 from 1.0: fails land at 0.75, 0.50, 0.25 — the third
  // one crosses quarantine_threshold 0.5.
  for (int round = 0; round < 2; ++round) {
    const DefenseRoundLog log =
        pipeline.commit_round({pipeline.non_finite(1)});
    EXPECT_TRUE(log.newly_quarantined.empty());
  }
  EXPECT_FALSE(pipeline.quarantined(1));
  const DefenseRoundLog log = pipeline.commit_round({pipeline.non_finite(1)});
  ASSERT_EQ(log.newly_quarantined.size(), 1u);
  EXPECT_EQ(log.newly_quarantined[0], 1u);
  EXPECT_TRUE(pipeline.quarantined(1));
  EXPECT_FALSE(pipeline.quarantined(0));
  EXPECT_EQ(pipeline.quarantined_count(), 1u);
}

TEST(DefenseReputation, ProbationStreakEarnsReadmission) {
  DefenseConfig config = test_config();
  config.probation_rounds = 3;
  DefensePipeline pipeline(config, 2);
  for (int round = 0; round < 3; ++round)
    pipeline.commit_round({pipeline.non_finite(1)});
  ASSERT_TRUE(pipeline.quarantined(1));

  // Two clean rounds are not enough; the third re-admits.
  for (int round = 0; round < 2; ++round) {
    const DefenseRoundLog log = pipeline.commit_round({accepted(1, 1.0)});
    EXPECT_TRUE(log.readmitted.empty());
    EXPECT_TRUE(pipeline.quarantined(1));
  }
  const DefenseRoundLog log = pipeline.commit_round({accepted(1, 1.0)});
  ASSERT_EQ(log.readmitted.size(), 1u);
  EXPECT_EQ(log.readmitted[0], 1u);
  EXPECT_FALSE(pipeline.quarantined(1));
  EXPECT_DOUBLE_EQ(pipeline.reputation(1), config.readmit_reputation);
}

TEST(DefenseReputation, DirtyUploadResetsTheProbationStreak) {
  DefensePipeline pipeline(test_config(), 1);
  for (int round = 0; round < 3; ++round)
    pipeline.commit_round({pipeline.non_finite(0)});
  ASSERT_TRUE(pipeline.quarantined(0));

  pipeline.commit_round({accepted(0, 1.0)});
  pipeline.commit_round({accepted(0, 1.0)});
  pipeline.commit_round({pipeline.non_finite(0)});  // streak back to zero
  pipeline.commit_round({accepted(0, 1.0)});
  pipeline.commit_round({accepted(0, 1.0)});
  EXPECT_TRUE(pipeline.quarantined(0));
  const DefenseRoundLog log = pipeline.commit_round({accepted(0, 1.0)});
  EXPECT_EQ(log.readmitted.size(), 1u);
  EXPECT_FALSE(pipeline.quarantined(0));
}

TEST(DefenseReputation, PassCreditIsCappedAtOne) {
  DefensePipeline pipeline(test_config(), 1);
  for (int round = 0; round < 50; ++round)
    pipeline.commit_round({accepted(0, 1.0)});
  EXPECT_DOUBLE_EQ(pipeline.reputation(0), 1.0);
}

TEST(DefenseCheckpoint, RoundtripRestoresTheExactState) {
  DefensePipeline original(test_config(), 3);
  warm_up(original);
  for (int round = 0; round < 3; ++round)
    original.commit_round({accepted(0, 1.1), original.non_finite(2)});

  ckpt::Writer out;
  original.save_state(out);
  const std::vector<std::uint8_t> bytes = out.take();

  DefensePipeline restored(test_config(), 3);
  ckpt::Reader in(bytes);
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());

  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(restored.reputation(c), original.reputation(c));
    EXPECT_EQ(restored.quarantined(c), original.quarantined(c));
  }
  EXPECT_EQ(restored.rounds_committed(), original.rounds_committed());

  // Equal state must screen identically from here on.
  std::vector<double> upload_a = along_global(kGlobal, 4.0);
  std::vector<double> upload_b = upload_a;
  const ScreenObservation obs_a = original.screen(0, upload_a, kGlobal);
  const ScreenObservation obs_b = restored.screen(0, upload_b, kGlobal);
  EXPECT_EQ(obs_a.verdict, obs_b.verdict);
  EXPECT_EQ(upload_a, upload_b);
}

TEST(DefenseCheckpoint, RejectsClientCountMismatch) {
  DefensePipeline original(test_config(), 3);
  warm_up(original);
  ckpt::Writer out;
  original.save_state(out);
  const std::vector<std::uint8_t> bytes = out.take();

  DefensePipeline other(test_config(), 5);
  ckpt::Reader in(bytes);
  EXPECT_THROW(other.restore_state(in), ckpt::StateMismatchError);
}

}  // namespace
}  // namespace fedpower::fed
