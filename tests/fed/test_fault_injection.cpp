#include "fed/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace fedpower::fed {
namespace {

std::vector<std::uint8_t> bytes(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x5A);
}

TEST(FaultInjection, NoFaultsIsTransparent) {
  InProcessTransport inner;
  FaultInjectingTransport transport(&inner, {});
  const auto payload = bytes(64);
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.stats().uplink_bytes, 64u);
  EXPECT_EQ(transport.fault_stats().attempted, 1u);
  EXPECT_EQ(transport.fault_stats().delivered, 1u);
  EXPECT_EQ(transport.fault_stats().drops, 0u);
}

TEST(FaultInjection, CertainDropAlwaysThrowsTransportError) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.drop_probability = 1.0;
  FaultInjectingTransport transport(&inner, config);
  for (int i = 0; i < 5; ++i)
    EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(8)),
                 TransportError);
  EXPECT_EQ(transport.fault_stats().drops, 5u);
  EXPECT_EQ(transport.fault_stats().delivered, 0u);
  // Dropped transfers never reach the inner transport.
  EXPECT_EQ(inner.stats().total_transfers(), 0u);
}

TEST(FaultInjection, SameSeedSameFaultSchedule) {
  // Determinism is the whole point: the sequence of (dropped, delivered)
  // outcomes must be a pure function of the seed.
  FaultInjectionConfig config;
  config.drop_probability = 0.3;
  config.seed = 1234;
  const auto schedule = [&config] {
    InProcessTransport inner;
    FaultInjectingTransport transport(&inner, config);
    std::vector<bool> dropped;
    for (int i = 0; i < 200; ++i) {
      try {
        transport.transfer(Direction::kUplink, bytes(4));
        dropped.push_back(false);
      } catch (const TransportError&) {
        dropped.push_back(true);
      }
    }
    return dropped;
  };
  const std::vector<bool> first = schedule();
  const std::vector<bool> second = schedule();
  EXPECT_EQ(first, second);
  // And the schedule actually mixes outcomes at p = 0.3.
  EXPECT_GT(std::count(first.begin(), first.end(), true), 20);
  EXPECT_GT(std::count(first.begin(), first.end(), false), 100);

  config.seed = 5678;
  EXPECT_NE(schedule(), first);
}

TEST(FaultInjection, TruncationDamagesThePayload) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.truncate_probability = 1.0;
  FaultInjectingTransport transport(&inner, config);
  const auto delivered = transport.transfer(Direction::kDownlink, bytes(64));
  EXPECT_EQ(delivered.size(), 32u);
  EXPECT_EQ(transport.fault_stats().truncations, 1u);
}

TEST(FaultInjection, DisconnectCausesAnOutage) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.disconnect_probability = 1.0;
  config.outage_transfers = 2;
  FaultInjectingTransport transport(&inner, config);
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);  // the disconnect itself
  EXPECT_FALSE(transport.connected());
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);  // outage transfer 1
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);  // outage transfer 2
  EXPECT_TRUE(transport.connected());
  EXPECT_EQ(transport.fault_stats().disconnects, 1u);
  EXPECT_EQ(transport.fault_stats().outage_failures, 2u);
  // Line healed — but with p = 1 the next transfer disconnects again.
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);
  EXPECT_EQ(transport.fault_stats().disconnects, 2u);
}

TEST(FaultInjection, DelayAccountsLatencyButDelivers) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.delay_probability = 1.0;
  config.injected_delay_s = 0.25;
  FaultInjectingTransport transport(&inner, config);
  const auto payload = bytes(16);
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.fault_stats().delays, 2u);
  EXPECT_EQ(transport.fault_stats().delivered, 2u);
  EXPECT_NEAR(transport.fault_stats().injected_delay_s, 0.5, 1e-12);
}

TEST(FaultInjectionDeathTest, RejectsInvalidConfig) {
  InProcessTransport inner;
  FaultInjectionConfig negative;
  negative.drop_probability = -0.1;
  EXPECT_DEATH(FaultInjectingTransport(&inner, negative), "precondition");
  FaultInjectionConfig oversum;
  oversum.drop_probability = 0.7;
  oversum.truncate_probability = 0.7;
  EXPECT_DEATH(FaultInjectingTransport(&inner, oversum), "precondition");
  EXPECT_DEATH(FaultInjectingTransport(nullptr, {}), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
