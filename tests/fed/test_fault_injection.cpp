#include "fed/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "util/rng.hpp"

namespace fedpower::fed {
namespace {

std::vector<std::uint8_t> bytes(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x5A);
}

TEST(FaultInjection, NoFaultsIsTransparent) {
  InProcessTransport inner;
  FaultInjectingTransport transport(&inner, {});
  const auto payload = bytes(64);
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.stats().uplink_bytes, 64u);
  EXPECT_EQ(transport.fault_stats().attempted, 1u);
  EXPECT_EQ(transport.fault_stats().delivered, 1u);
  EXPECT_EQ(transport.fault_stats().drops, 0u);
}

TEST(FaultInjection, CertainDropAlwaysThrowsTransportError) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.drop_probability = 1.0;
  FaultInjectingTransport transport(&inner, config);
  for (int i = 0; i < 5; ++i)
    EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(8)),
                 TransportError);
  EXPECT_EQ(transport.fault_stats().drops, 5u);
  EXPECT_EQ(transport.fault_stats().delivered, 0u);
  // Dropped transfers never reach the inner transport.
  EXPECT_EQ(inner.stats().total_transfers(), 0u);
}

TEST(FaultInjection, SameSeedSameFaultSchedule) {
  // Determinism is the whole point: the sequence of (dropped, delivered)
  // outcomes must be a pure function of the seed.
  FaultInjectionConfig config;
  config.drop_probability = 0.3;
  config.seed = 1234;
  const auto schedule = [&config] {
    InProcessTransport inner;
    FaultInjectingTransport transport(&inner, config);
    std::vector<bool> dropped;
    for (int i = 0; i < 200; ++i) {
      try {
        transport.transfer(Direction::kUplink, bytes(4));
        dropped.push_back(false);
      } catch (const TransportError&) {
        dropped.push_back(true);
      }
    }
    return dropped;
  };
  const std::vector<bool> first = schedule();
  const std::vector<bool> second = schedule();
  EXPECT_EQ(first, second);
  // And the schedule actually mixes outcomes at p = 0.3.
  EXPECT_GT(std::count(first.begin(), first.end(), true), 20);
  EXPECT_GT(std::count(first.begin(), first.end(), false), 100);

  config.seed = 5678;
  EXPECT_NE(schedule(), first);
}

TEST(FaultInjection, TruncationDamagesThePayload) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.truncate_probability = 1.0;
  FaultInjectingTransport transport(&inner, config);
  const auto delivered = transport.transfer(Direction::kDownlink, bytes(64));
  EXPECT_EQ(delivered.size(), 32u);
  EXPECT_EQ(transport.fault_stats().truncations, 1u);
}

TEST(FaultInjection, DisconnectCausesAnOutage) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.disconnect_probability = 1.0;
  config.outage_transfers = 2;
  FaultInjectingTransport transport(&inner, config);
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);  // the disconnect itself
  EXPECT_FALSE(transport.connected());
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);  // outage transfer 1
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);  // outage transfer 2
  EXPECT_TRUE(transport.connected());
  EXPECT_EQ(transport.fault_stats().disconnects, 1u);
  EXPECT_EQ(transport.fault_stats().outage_failures, 2u);
  // Line healed — but with p = 1 the next transfer disconnects again.
  EXPECT_THROW(transport.transfer(Direction::kUplink, bytes(4)),
               TransportError);
  EXPECT_EQ(transport.fault_stats().disconnects, 2u);
}

TEST(FaultInjection, DelayAccountsLatencyButDelivers) {
  InProcessTransport inner;
  FaultInjectionConfig config;
  config.delay_probability = 1.0;
  config.injected_delay_s = 0.25;
  FaultInjectingTransport transport(&inner, config);
  const auto payload = bytes(16);
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.fault_stats().delays, 2u);
  EXPECT_EQ(transport.fault_stats().delivered, 2u);
  EXPECT_NEAR(transport.fault_stats().injected_delay_s, 0.5, 1e-12);
}

// --- compound-fault RNG ordering (the one-draw-per-transfer contract) ----

enum class Fate {
  kDelivered,
  kDelayed,
  kDropped,
  kDisconnected,
  kOutage,
  kTruncated,
};

/// Classifies one transfer by the stats counter it bumped.
Fate classify(FaultInjectingTransport& transport) {
  const FaultInjectionStats before = transport.fault_stats();
  bool threw = false;
  try {
    transport.transfer(Direction::kUplink, bytes(64));
  } catch (const TransportError&) {
    threw = true;
  }
  const FaultInjectionStats& after = transport.fault_stats();
  if (after.drops > before.drops) return Fate::kDropped;
  if (after.disconnects > before.disconnects) return Fate::kDisconnected;
  if (after.outage_failures > before.outage_failures) return Fate::kOutage;
  EXPECT_FALSE(threw);
  if (after.truncations > before.truncations) return Fate::kTruncated;
  if (after.delays > before.delays) return Fate::kDelayed;
  return Fate::kDelivered;
}

TEST(FaultInjection, CompoundFaultCascadeMatchesASingleDrawOracle) {
  // Every fault class armed at once. The oracle replays the documented
  // contract with its own RNG: one uniform consumed per transfer BEFORE
  // any branching (outage transfers included), thresholds stacked in
  // drop -> disconnect -> truncate -> delay order. Any extra, missing or
  // reordered draw desynchronizes the fates within a few transfers.
  FaultInjectionConfig config;
  config.drop_probability = 0.1;
  config.disconnect_probability = 0.1;
  config.truncate_probability = 0.1;
  config.delay_probability = 0.2;
  config.outage_transfers = 2;
  config.seed = 99;
  InProcessTransport inner;
  FaultInjectingTransport transport(&inner, config);
  util::Rng oracle(config.seed);
  std::size_t outage = 0;
  for (int i = 0; i < 400; ++i) {
    const double u = oracle.uniform();
    Fate expected;
    if (outage > 0) {
      --outage;
      expected = Fate::kOutage;
    } else if (u < 0.1) {
      expected = Fate::kDropped;
    } else if (u < 0.2) {
      expected = Fate::kDisconnected;
      outage = config.outage_transfers;
    } else if (u < 0.3) {
      expected = Fate::kTruncated;
    } else if (u < 0.5) {
      expected = Fate::kDelayed;
    } else {
      expected = Fate::kDelivered;
    }
    EXPECT_EQ(classify(transport), expected) << "transfer " << i;
  }
  EXPECT_EQ(transport.fault_stats().attempted, 400u);
  // The mix actually exercised every class.
  EXPECT_GT(transport.fault_stats().drops, 0u);
  EXPECT_GT(transport.fault_stats().disconnects, 0u);
  EXPECT_GT(transport.fault_stats().outage_failures, 0u);
  EXPECT_GT(transport.fault_stats().truncations, 0u);
  EXPECT_GT(transport.fault_stats().delays, 0u);
}

TEST(FaultInjection, RngPositionDependsOnlyOnTransferCountNotOutcomes) {
  // Two same-seed injectors with wildly different fault mixes must leave
  // their RNG streams at the same position after the same number of
  // transfers — the property that keeps fault schedules composable (a
  // compound config never shifts the fates a simpler config would draw).
  // The FINJ section leads with tag + the four RNG words; everything
  // after differs (stats), so compare just that prefix.
  constexpr std::size_t kRngPrefix = 4 + 4 * sizeof(std::uint64_t);
  const auto rng_prefix = [](const FaultInjectionConfig& config) {
    InProcessTransport inner;
    FaultInjectingTransport transport(&inner, config);
    for (int i = 0; i < 100; ++i) {
      try {
        transport.transfer(Direction::kUplink, bytes(16));
      } catch (const TransportError&) {}
    }
    EXPECT_EQ(transport.fault_stats().attempted, 100u);
    ckpt::Writer out;
    transport.save_state(out);
    const auto& data = out.data();
    return std::vector<std::uint8_t>(data.begin(),
                                     data.begin() + kRngPrefix);
  };

  FaultInjectionConfig quiet;
  quiet.seed = 4242;
  FaultInjectionConfig stormy;
  stormy.seed = 4242;
  stormy.drop_probability = 0.2;
  stormy.disconnect_probability = 0.15;
  stormy.truncate_probability = 0.1;
  stormy.delay_probability = 0.25;
  stormy.outage_transfers = 3;
  FaultInjectionConfig drops_only;
  drops_only.seed = 4242;
  drops_only.drop_probability = 0.5;

  const auto reference = rng_prefix(quiet);
  EXPECT_EQ(rng_prefix(stormy), reference);
  EXPECT_EQ(rng_prefix(drops_only), reference);
}

TEST(FaultInjectionDeathTest, RejectsInvalidConfig) {
  InProcessTransport inner;
  FaultInjectionConfig negative;
  negative.drop_probability = -0.1;
  EXPECT_DEATH(FaultInjectingTransport(&inner, negative), "precondition");
  FaultInjectionConfig oversum;
  oversum.drop_probability = 0.7;
  oversum.truncate_probability = 0.7;
  EXPECT_DEATH(FaultInjectingTransport(&inner, oversum), "precondition");
  EXPECT_DEATH(FaultInjectingTransport(nullptr, {}), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
