#include "fed/federation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nn/serialize.hpp"

namespace fedpower::fed {
namespace {

/// Scripted client: adds a fixed delta to every parameter each round.
class ScriptedClient final : public FederatedClient {
 public:
  ScriptedClient(double delta, std::size_t samples = 1)
      : delta_(delta), samples_(samples) {}

  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
    ++receives_;
  }

  std::vector<double> local_parameters() const override { return params_; }

  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }

  std::size_t local_sample_count() const override { return samples_; }

  int receives() const noexcept { return receives_; }
  int rounds() const noexcept { return rounds_; }
  const std::vector<double>& params() const noexcept { return params_; }

 private:
  double delta_;
  std::size_t samples_;
  std::vector<double> params_;
  int receives_ = 0;
  int rounds_ = 0;
};

TEST(Federation, BroadcastsBeforeLocalTraining) {
  ScriptedClient a(0.0);
  ScriptedClient b(0.0);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({1.0, 2.0});
  server.run_round();
  EXPECT_EQ(a.receives(), 1);
  EXPECT_EQ(b.receives(), 1);
  EXPECT_EQ(a.rounds(), 1);
  EXPECT_EQ(a.params(), (std::vector<double>{1.0, 2.0}));
}

TEST(Federation, AveragesClientDeltas) {
  ScriptedClient a(+1.0);
  ScriptedClient b(-1.0);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({0.0});
  server.run_round();
  // (0+1 + 0-1)/2 = 0.
  EXPECT_NEAR(server.global_model()[0], 0.0, 1e-6);
}

TEST(Federation, AsymmetricDeltasAverage) {
  ScriptedClient a(+0.5);
  ScriptedClient b(+1.5);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({0.0});
  server.run_round();
  EXPECT_NEAR(server.global_model()[0], 1.0, 1e-6);
  server.run_round();
  EXPECT_NEAR(server.global_model()[0], 2.0, 1e-5);
}

TEST(Federation, RunsRequestedRounds) {
  ScriptedClient a(1.0);
  InProcessTransport transport;
  FederatedAveraging server({&a}, &transport);
  server.initialize({0.0});
  server.run(5);
  EXPECT_EQ(server.rounds_completed(), 5u);
  EXPECT_EQ(a.rounds(), 5);
  EXPECT_NEAR(server.global_model()[0], 5.0, 1e-5);
}

TEST(Federation, TrafficMatchesModelSize) {
  ScriptedClient a(0.0);
  ScriptedClient b(0.0);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize(std::vector<double>(719, 0.1));
  const RoundResult result = server.run_round();
  const std::size_t payload = nn::payload_size(719);
  EXPECT_EQ(result.downlink_bytes, 2 * payload);
  EXPECT_EQ(result.uplink_bytes, 2 * payload);
  EXPECT_EQ(transport.stats().uplink_transfers, 2u);
  EXPECT_EQ(transport.stats().downlink_transfers, 2u);
  EXPECT_NEAR(transport.stats().mean_transfer_bytes(), 2888.0, 1.0);
}

TEST(Federation, RoundNumbersIncrement) {
  ScriptedClient a(0.0);
  InProcessTransport transport;
  FederatedAveraging server({&a}, &transport);
  server.initialize({1.0});
  EXPECT_EQ(server.run_round().round, 1u);
  EXPECT_EQ(server.run_round().round, 2u);
}

TEST(Federation, SampleWeightedAggregation) {
  ScriptedClient heavy(+1.0, 3);
  ScriptedClient light(-1.0, 1);
  InProcessTransport transport;
  FederatedAveraging server({&heavy, &light}, &transport,
                            AggregationMode::kSampleWeighted);
  server.initialize({0.0});
  server.run_round();
  // (3*1 + 1*(-1)) / 4 = 0.5.
  EXPECT_NEAR(server.global_model()[0], 0.5, 1e-6);
}

TEST(Federation, Float32WireQuantizesParameters) {
  ScriptedClient a(0.0);
  InProcessTransport transport;
  FederatedAveraging server({&a}, &transport);
  const double fine_value = 0.1234567890123456;
  server.initialize({fine_value});
  server.run_round();
  // The round-tripped value is float32-rounded, not the original double.
  EXPECT_NE(server.global_model()[0], fine_value);
  EXPECT_NEAR(server.global_model()[0], fine_value, 1e-7);
}

/// Client whose local training diverges to non-finite parameters.
class PoisonClient final : public FederatedClient {
 public:
  explicit PoisonClient(double poison) : poison_(poison) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    if (!params_.empty()) params_[0] = poison_;
  }

 private:
  double poison_;
  std::vector<double> params_;
};

TEST(Federation, NonFiniteUploadIsRejectedNotAveraged) {
  ScriptedClient good(+2.0);
  PoisonClient bad(std::numeric_limits<double>::quiet_NaN());
  InProcessTransport transport;
  FederatedAveraging server({&good, &bad}, &transport);
  server.initialize({1.0, 1.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.rejected, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_EQ(result.survivors(), 1u);
  // The aggregate is the good client alone — no NaN contamination.
  EXPECT_EQ(server.global_model(), (std::vector<double>{3.0, 3.0}));
}

TEST(Federation, InfiniteUploadIsRejectedToo) {
  ScriptedClient good(0.5);
  PoisonClient bad(std::numeric_limits<double>::infinity());
  InProcessTransport transport;
  FederatedAveraging server({&good, &bad}, &transport);
  server.initialize({0.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.rejected, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(std::isfinite(server.global_model()[0]));
}

TEST(Federation, RejectionCountsAgainstQuorum) {
  PoisonClient bad(std::numeric_limits<double>::quiet_NaN());
  ScriptedClient good(1.0);
  InProcessTransport transport;
  FederatedAveraging server({&bad, &good}, &transport);
  server.initialize({0.0});
  server.set_quorum(2);
  EXPECT_THROW(server.run_round(), QuorumError);
  // Quorum failure leaves the round counter and model untouched.
  EXPECT_EQ(server.rounds_completed(), 0u);
  EXPECT_EQ(server.global_model(), (std::vector<double>{0.0}));
}

TEST(Federation, ClientCount) {
  ScriptedClient a(0.0);
  ScriptedClient b(0.0);
  ScriptedClient c(0.0);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b, &c}, &transport);
  EXPECT_EQ(server.client_count(), 3u);
}

TEST(FederationDeathTest, RequiresInitialization) {
  ScriptedClient a(0.0);
  InProcessTransport transport;
  FederatedAveraging server({&a}, &transport);
  EXPECT_DEATH(server.run_round(), "precondition");
}

TEST(FederationDeathTest, RejectsEmptyClientList) {
  InProcessTransport transport;
  EXPECT_DEATH(FederatedAveraging({}, &transport), "precondition");
}

TEST(FederationDeathTest, RejectsNullTransport) {
  ScriptedClient a(0.0);
  EXPECT_DEATH(FederatedAveraging({&a}, nullptr), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
