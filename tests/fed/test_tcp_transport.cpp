#include "fed/tcp_transport.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "fed/federation.hpp"
#include "nn/serialize.hpp"

namespace fedpower::fed {
namespace {

/// Fast-failing transport config for fault tests: one or few attempts,
/// millisecond backoff, sub-second timeouts.
TcpTransportConfig fast_config(std::size_t max_attempts) {
  TcpTransportConfig config;
  config.max_attempts = max_attempts;
  config.backoff_initial_s = 0.001;
  config.backoff_max_s = 0.005;
  config.connect_timeout_s = 2.0;
  config.io_timeout_s = 2.0;
  return config;
}

/// Client that adds a fixed delta to every parameter each local round.
class Delta final : public FederatedClient {
 public:
  explicit Delta(double d) : d_(d) {}
  void receive_global(std::span<const double> p) override {
    params_.assign(p.begin(), p.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += d_;
  }
  int rounds() const noexcept { return rounds_; }

 private:
  double d_;
  int rounds_ = 0;
  std::vector<double> params_;
};

TEST(TcpTransport, EchoesPayloadThroughLoopback) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(reflector.frames_served(), 1u);
}

TEST(TcpTransport, CountsTraffic) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(100));
  transport.transfer(Direction::kDownlink, std::vector<std::uint8_t>(40));
  EXPECT_EQ(transport.stats().uplink_bytes, 100u);
  EXPECT_EQ(transport.stats().downlink_bytes, 40u);
  EXPECT_EQ(transport.stats().total_transfers(), 2u);
}

TEST(TcpTransport, EmptyPayload) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  EXPECT_TRUE(transport.transfer(Direction::kUplink, {}).empty());
}

TEST(TcpTransport, ManySequentialFrames) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(i % 50) + 1,
                                      static_cast<std::uint8_t>(i));
    EXPECT_EQ(transport.transfer(Direction::kDownlink, payload), payload);
  }
  EXPECT_EQ(reflector.frames_served(), 200u);
}

TEST(TcpTransport, MultipleClientsSequentially) {
  TcpReflector reflector;
  {
    TcpTransport first("127.0.0.1", reflector.port());
    first.transfer(Direction::kUplink, {1});
  }
  // The reflector must accept a fresh connection after the first closed.
  TcpTransport second("127.0.0.1", reflector.port());
  EXPECT_EQ(second.transfer(Direction::kUplink, {2}),
            (std::vector<std::uint8_t>{2}));
}

TEST(TcpTransport, ConnectToClosedPortThrows) {
  std::uint16_t dead_port = 1;  // almost certainly closed low port
  {
    TcpReflector reflector;
    dead_port = reflector.port();
    reflector.stop();
  }
  EXPECT_THROW(TcpTransport("127.0.0.1", dead_port), std::runtime_error);
}

TEST(TcpTransport, BadAddressThrows) {
  EXPECT_THROW(TcpTransport("not-an-ip", 80), std::runtime_error);
}

TEST(TcpTransport, FullFederatedRoundOverRealSockets) {
  // The whole point: FederatedAveraging runs unmodified over TCP.
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  Delta a(+1.0);
  Delta b(+3.0);
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize(std::vector<double>(687, 0.0));
  server.run(3);
  EXPECT_NEAR(server.global_model()[0], 6.0, 1e-4);
  // 3 rounds x 2 clients x (1 down + 1 up) = 12 frames over the wire.
  EXPECT_EQ(reflector.frames_served(), 12u);
  EXPECT_EQ(transport.stats().uplink_bytes, 6u * nn::payload_size(687));
}

TEST(TcpReflector, StopIsIdempotent) {
  TcpReflector reflector;
  reflector.stop();
  reflector.stop();
}

TEST(TcpFraming, GoldenBytesAreLittleEndian) {
  // Wire contract: u32 LE length of (direction byte + payload), then the
  // direction byte, then the payload — independent of host byte order.
  const std::vector<std::uint8_t> downlink =
      encode_frame(Direction::kDownlink, std::vector<std::uint8_t>{0xAA,
                                                                   0xBB});
  EXPECT_EQ(downlink, (std::vector<std::uint8_t>{0x03, 0x00, 0x00, 0x00,
                                                 0x01, 0xAA, 0xBB}));
  const std::vector<std::uint8_t> empty_uplink =
      encode_frame(Direction::kUplink, std::vector<std::uint8_t>{});
  EXPECT_EQ(empty_uplink,
            (std::vector<std::uint8_t>{0x01, 0x00, 0x00, 0x00, 0x00}));
}

TEST(TcpFraming, U32RoundTrip) {
  std::uint8_t bytes[4];
  store_u32_le(0x12345678u, bytes);
  EXPECT_EQ(bytes[0], 0x78);
  EXPECT_EQ(bytes[1], 0x56);
  EXPECT_EQ(bytes[2], 0x34);
  EXPECT_EQ(bytes[3], 0x12);
  EXPECT_EQ(load_u32_le(bytes), 0x12345678u);
  store_u32_le(0u, bytes);
  EXPECT_EQ(load_u32_le(bytes), 0u);
  store_u32_le(0xFFFFFFFFu, bytes);
  EXPECT_EQ(load_u32_le(bytes), 0xFFFFFFFFu);
}

TEST(TcpReflector, ServesConcurrentConnections) {
  // Two clients hold live connections at once and interleave transfers;
  // a single-threaded accept loop would leave the second client blocked
  // behind the first forever.
  TcpReflector reflector;
  TcpTransport first("127.0.0.1", reflector.port());
  TcpTransport second("127.0.0.1", reflector.port());
  for (int i = 0; i < 10; ++i) {
    const std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(i)};
    EXPECT_EQ(first.transfer(Direction::kUplink, payload), payload);
    EXPECT_EQ(second.transfer(Direction::kDownlink, payload), payload);
  }
  EXPECT_EQ(reflector.frames_served(), 20u);
  EXPECT_EQ(reflector.connections_accepted(), 2u);
}

TEST(TcpTransport, ReconnectsWithRetryAfterPeerClose) {
  TcpReflector reflector;
  // The first accepted connection dies after echoing one frame.
  reflector.inject_close(0, 1);
  TcpTransport transport("127.0.0.1", reflector.port(), fast_config(3));
  const std::vector<std::uint8_t> payload{1, 2, 3};
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  // The second transfer loses the connection mid-exchange, reconnects and
  // succeeds on the fresh connection.
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(transport.stats().retries, 1u);
  EXPECT_EQ(transport.stats().uplink_transfers, 2u);
  EXPECT_EQ(reflector.connections_accepted(), 2u);
}

TEST(TcpTransport, RetriesAreBounded) {
  TcpReflector reflector;
  // Every accepted connection (including reconnects) is closed on sight.
  reflector.refuse_new_connections(true);
  TcpTransport transport("127.0.0.1", reflector.port(), fast_config(3));
  EXPECT_THROW(transport.transfer(Direction::kUplink, {1}), TransportError);
  EXPECT_EQ(transport.stats().retries, 2u);  // attempts 2 and 3
  EXPECT_FALSE(transport.connected());
  EXPECT_EQ(transport.stats().uplink_transfers, 0u);
}

TEST(TcpTransport, ReadTimeoutSurfacesAsTransportError) {
  // A listener that never accepts: the client's connect lands in the
  // backlog, the send is buffered, and the echo never comes. SO_RCVTIMEO
  // must turn that into a TransportError instead of hanging forever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr),
            0);
  socklen_t len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  ASSERT_EQ(::listen(listener, 8), 0);

  TcpTransportConfig config = fast_config(1);
  config.io_timeout_s = 0.05;
  TcpTransport transport("127.0.0.1", ntohs(addr.sin_port), config);
  EXPECT_THROW(transport.transfer(Direction::kUplink, {1, 2, 3}),
               TransportError);
  ::close(listener);
}

TEST(TcpTransport, RoundSurvivesOneClientDroppedMidRound) {
  // End-to-end dropout: two devices on their own TCP connections; the
  // reflector kills device 1's connection between rounds. The round must
  // complete with the survivor, record the dropout, and the process must
  // exit cleanly (no SIGPIPE, no uncaught exception).
  TcpReflector reflector;
  // Connection 1 (device b) serves its two round-1 frames, then dies.
  reflector.inject_close(1, 2);
  TcpTransport transport_a("127.0.0.1", reflector.port());
  TcpTransport transport_b("127.0.0.1", reflector.port(), fast_config(1));

  Delta a(+1.0);
  Delta b(+3.0);
  FederatedAveraging server({&a, &b}, &transport_a);
  server.set_client_transport(1, &transport_b);
  server.initialize(std::vector<double>(10, 0.0));

  const RoundResult first = server.run_round();
  EXPECT_TRUE(first.dropped.empty());
  EXPECT_NEAR(server.global_model()[0], 2.0, 1e-4);  // (1 + 3) / 2

  const RoundResult second = server.run_round();
  EXPECT_EQ(second.dropped, (std::vector<std::size_t>{1}));
  EXPECT_EQ(second.survivors(), 1u);
  EXPECT_EQ(b.rounds(), 1);  // unreachable in round 2: never trained
  // Aggregation covered the survivor alone: 2 + 1.
  EXPECT_NEAR(server.global_model()[0], 3.0, 1e-4);
  EXPECT_EQ(server.rounds_completed(), 2u);
}

TEST(TcpTransport, DeadReflectorFailsRoundWithQuorumError) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port(), fast_config(1));
  Delta a(+1.0);
  FederatedAveraging server({&a}, &transport);
  server.initialize({0.0});
  server.run_round();
  reflector.stop();  // the server vanishes between rounds
  // Every transfer now faults; with zero survivors the round aborts with
  // a catchable QuorumError and the state stays at round 1.
  EXPECT_THROW(server.run_round(), QuorumError);
  EXPECT_EQ(server.rounds_completed(), 1u);
  EXPECT_NEAR(server.global_model()[0], 1.0, 1e-4);
}

/// One-shot raw peer: accepts a single connection, reads the client's
/// complete frame, writes the scripted reply bytes verbatim and closes —
/// for golden-bytes tests of the decode-side frame validation.
class ScriptedEchoServer {
 public:
  explicit ScriptedEchoServer(std::vector<std::uint8_t> reply)
      : reply_(std::move(reply)) {
    listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listener_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listener_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    socklen_t len = sizeof addr;
    ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listener_, 1), 0);
    thread_ = std::thread([this] {
      const int conn = ::accept(listener_, nullptr, nullptr);
      if (conn < 0) return;
      std::uint8_t header[4];
      const ssize_t got = ::recv(conn, header, sizeof header, MSG_WAITALL);
      if (got == static_cast<ssize_t>(sizeof header)) {
        std::vector<std::uint8_t> body(load_u32_le(header));
        if (!body.empty()) {
          const ssize_t ignored =
              ::recv(conn, body.data(), body.size(), MSG_WAITALL);
          (void)ignored;
        }
      }
      if (!reply_.empty()) {
        const ssize_t sent =
            ::send(conn, reply_.data(), reply_.size(), MSG_NOSIGNAL);
        (void)sent;
      }
      ::close(conn);
    });
  }
  ~ScriptedEchoServer() {
    thread_.join();
    ::close(listener_);
  }
  std::uint16_t port() const noexcept { return port_; }

 private:
  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::uint8_t> reply_;
  std::thread thread_;
};

TEST(TcpTransport, OversizedAdvertisedLengthRejectedBeforeAllocation) {
  // Golden bytes: a reply header advertising 0xFFFFFFFF (> kMaxFrameBytes)
  // must be refused with the distinct oversized-frame error — before the
  // length is trusted for allocation or the echo-length comparison.
  ScriptedEchoServer peer({0xFF, 0xFF, 0xFF, 0xFF});
  TcpTransport transport("127.0.0.1", peer.port(), fast_config(1));
  try {
    transport.transfer(Direction::kUplink, {1, 2, 3});
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_STREQ(e.what(), "tcp transport: oversized frame");
  }
}

TEST(TcpTransport, ShortReadMidFrameReportsTruncation) {
  // Golden bytes: the reply advertises the correct echo length (4 = dir
  // byte + 3 payload bytes) but delivers only 2 body bytes before closing.
  // The short read must surface as the distinct truncated-frame error, not
  // as a generic peer-closed.
  ScriptedEchoServer peer({0x04, 0x00, 0x00, 0x00, 0x00, 0x01});
  TcpTransport transport("127.0.0.1", peer.port(), fast_config(1));
  try {
    transport.transfer(Direction::kUplink, {1, 2, 3});
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_STREQ(e.what(), "tcp transport: truncated frame");
  }
}

TEST(TcpReflector, ReapsFinishedHandlerThreads) {
  // Satellite of the serve work: a long-lived reflector must hold one
  // handler thread per live connection, not one per connection ever
  // accepted. Eight sequential clients connect, transfer and disconnect;
  // once their closes land, the live handler count returns to zero.
  TcpReflector reflector;
  for (int i = 0; i < 8; ++i) {
    TcpTransport transport("127.0.0.1", reflector.port());
    const std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(i)};
    EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  }
  std::size_t live = reflector.live_handler_count();
  for (int spin = 0; spin < 400 && live > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    live = reflector.live_handler_count();
  }
  EXPECT_EQ(live, 0u);
  EXPECT_EQ(reflector.connections_accepted(), 8u);
  EXPECT_EQ(reflector.frames_served(), 8u);
}

}  // namespace
}  // namespace fedpower::fed
