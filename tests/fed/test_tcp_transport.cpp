#include "fed/tcp_transport.hpp"

#include <gtest/gtest.h>

#include "fed/federation.hpp"
#include "nn/serialize.hpp"

namespace fedpower::fed {
namespace {

TEST(TcpTransport, EchoesPayloadThroughLoopback) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
  EXPECT_EQ(reflector.frames_served(), 1u);
}

TEST(TcpTransport, CountsTraffic) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(100));
  transport.transfer(Direction::kDownlink, std::vector<std::uint8_t>(40));
  EXPECT_EQ(transport.stats().uplink_bytes, 100u);
  EXPECT_EQ(transport.stats().downlink_bytes, 40u);
  EXPECT_EQ(transport.stats().total_transfers(), 2u);
}

TEST(TcpTransport, EmptyPayload) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  EXPECT_TRUE(transport.transfer(Direction::kUplink, {}).empty());
}

TEST(TcpTransport, ManySequentialFrames) {
  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(i % 50) + 1,
                                      static_cast<std::uint8_t>(i));
    EXPECT_EQ(transport.transfer(Direction::kDownlink, payload), payload);
  }
  EXPECT_EQ(reflector.frames_served(), 200u);
}

TEST(TcpTransport, MultipleClientsSequentially) {
  TcpReflector reflector;
  {
    TcpTransport first("127.0.0.1", reflector.port());
    first.transfer(Direction::kUplink, {1});
  }
  // The reflector must accept a fresh connection after the first closed.
  TcpTransport second("127.0.0.1", reflector.port());
  EXPECT_EQ(second.transfer(Direction::kUplink, {2}),
            (std::vector<std::uint8_t>{2}));
}

TEST(TcpTransport, ConnectToClosedPortThrows) {
  std::uint16_t dead_port = 1;  // almost certainly closed low port
  {
    TcpReflector reflector;
    dead_port = reflector.port();
    reflector.stop();
  }
  EXPECT_THROW(TcpTransport("127.0.0.1", dead_port), std::runtime_error);
}

TEST(TcpTransport, BadAddressThrows) {
  EXPECT_THROW(TcpTransport("not-an-ip", 80), std::runtime_error);
}

TEST(TcpTransport, FullFederatedRoundOverRealSockets) {
  // The whole point: FederatedAveraging runs unmodified over TCP.
  class Delta final : public FederatedClient {
   public:
    explicit Delta(double d) : d_(d) {}
    void receive_global(std::span<const double> p) override {
      params_.assign(p.begin(), p.end());
    }
    std::vector<double> local_parameters() const override { return params_; }
    void run_local_round() override {
      for (double& p : params_) p += d_;
    }

   private:
    double d_;
    std::vector<double> params_;
  };

  TcpReflector reflector;
  TcpTransport transport("127.0.0.1", reflector.port());
  Delta a(+1.0);
  Delta b(+3.0);
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize(std::vector<double>(687, 0.0));
  server.run(3);
  EXPECT_NEAR(server.global_model()[0], 6.0, 1e-4);
  // 3 rounds x 2 clients x (1 down + 1 up) = 12 frames over the wire.
  EXPECT_EQ(reflector.frames_served(), 12u);
  EXPECT_EQ(transport.stats().uplink_bytes, 6u * nn::payload_size(687));
}

TEST(TcpReflector, StopIsIdempotent) {
  TcpReflector reflector;
  reflector.stop();
  reflector.stop();
}

}  // namespace
}  // namespace fedpower::fed
