// Byzantine-robust aggregation rules (median, trimmed mean) and their
// behaviour under model poisoning.
#include <gtest/gtest.h>

#include "fed/federation.hpp"

namespace fedpower::fed {
namespace {

TEST(MedianAggregate, OddCountPicksMiddle) {
  const std::vector<std::vector<double>> models = {{1.0}, {5.0}, {3.0}};
  EXPECT_DOUBLE_EQ(aggregate_median(models)[0], 3.0);
}

TEST(MedianAggregate, EvenCountAveragesMiddlePair) {
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}, {4.0},
                                                   {8.0}};
  EXPECT_DOUBLE_EQ(aggregate_median(models)[0], 3.0);
}

TEST(MedianAggregate, PerCoordinateIndependence) {
  const std::vector<std::vector<double>> models = {
      {1.0, 9.0}, {2.0, 8.0}, {3.0, 7.0}};
  const auto global = aggregate_median(models);
  EXPECT_DOUBLE_EQ(global[0], 2.0);
  EXPECT_DOUBLE_EQ(global[1], 8.0);
}

TEST(MedianAggregate, IgnoresOneArbitraryOutlier) {
  // 4 honest clients near 0.5, one Byzantine at 1e9: the median must stay
  // with the honest majority while the mean is destroyed.
  const std::vector<std::vector<double>> models = {
      {0.49}, {0.50}, {0.51}, {0.52}, {1e9}};
  EXPECT_NEAR(aggregate_median(models)[0], 0.51, 1e-12);
  EXPECT_GT(average_unweighted(models)[0], 1e8);
}

TEST(MedianAggregate, SingleModelIsIdentity) {
  const std::vector<std::vector<double>> models = {{0.7, -0.2}};
  EXPECT_EQ(aggregate_median(models), models[0]);
}

TEST(TrimmedMean, DropsExtremesSymmetrically) {
  const std::vector<std::vector<double>> models = {
      {-100.0}, {1.0}, {2.0}, {3.0}, {100.0}};
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 1)[0], 2.0);
}

TEST(TrimmedMean, ZeroTrimIsPlainMean) {
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}, {6.0}};
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 0)[0], 3.0);
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 0)[0],
                   average_unweighted(models)[0]);
}

TEST(TrimmedMean, SurvivesOnePoisonedClient) {
  const std::vector<std::vector<double>> models = {
      {0.5, -0.5}, {0.6, -0.4}, {0.4, -0.6}, {1e9, -1e9}};
  const auto global = aggregate_trimmed_mean(models, 1);
  EXPECT_NEAR(global[0], 0.55, 0.06);
  EXPECT_NEAR(global[1], -0.55, 0.06);
}

TEST(TrimmedMeanDeathTest, RejectsOverTrimming) {
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}};
  EXPECT_DEATH(aggregate_trimmed_mean(models, 1), "precondition");
}

TEST(RobustAggregateDeathTest, RejectsMismatchedSizes) {
  EXPECT_DEATH(aggregate_median({{1.0}, {1.0, 2.0}}), "precondition");
  EXPECT_DEATH(aggregate_trimmed_mean({{1.0}, {1.0, 2.0}}, 0),
               "precondition");
}

// --- federation integration --------------------------------------------

class FixedClient final : public FederatedClient {
 public:
  explicit FixedClient(double value) : value_(value) {}
  void receive_global(std::span<const double>) override {}
  std::vector<double> local_parameters() const override { return {value_}; }
  void run_local_round() override {}

 private:
  double value_;
};

TEST(RobustFederation, MedianModeShrugsOffPoisoning) {
  FixedClient honest1(0.5);
  FixedClient honest2(0.52);
  FixedClient honest3(0.48);
  FixedClient byzantine(1e6);
  InProcessTransport transport;
  FederatedAveraging server({&honest1, &honest2, &honest3, &byzantine},
                            &transport,
                            AggregationMode::kCoordinateMedian);
  server.initialize({0.0});
  server.run_round();
  EXPECT_NEAR(server.global_model()[0], 0.51, 0.02);
}

TEST(RobustFederation, TrimmedMeanModeShrugsOffPoisoning) {
  FixedClient honest1(0.5);
  FixedClient honest2(0.52);
  FixedClient honest3(0.48);
  FixedClient honest4(0.50);
  FixedClient byzantine(-1e6);
  InProcessTransport transport;
  FederatedAveraging server(
      {&honest1, &honest2, &honest3, &honest4, &byzantine}, &transport,
      AggregationMode::kTrimmedMean);
  server.initialize({0.0});
  server.run_round();
  EXPECT_NEAR(server.global_model()[0], 0.5, 0.02);
}

TEST(RobustFederation, TrimmedMeanWithTwoClientsFallsBackToMean) {
  FixedClient a(1.0);
  FixedClient b(3.0);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport,
                            AggregationMode::kTrimmedMean);
  server.initialize({0.0});
  server.run_round();
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
}

TEST(RobustFederation, PlainMeanIsVulnerableByContrast) {
  FixedClient honest(0.5);
  FixedClient byzantine(1e6);
  InProcessTransport transport;
  FederatedAveraging server({&honest, &byzantine}, &transport);
  server.initialize({0.0});
  server.run_round();
  EXPECT_GT(server.global_model()[0], 1e5);
}

}  // namespace
}  // namespace fedpower::fed
