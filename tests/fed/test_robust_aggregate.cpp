// Byzantine-robust aggregation rules (median, trimmed mean) and their
// behaviour under model poisoning.
#include <gtest/gtest.h>

#include <cmath>

#include "fed/federation.hpp"
#include "runtime/thread_pool.hpp"

namespace fedpower::fed {
namespace {

TEST(MedianAggregate, OddCountPicksMiddle) {
  const std::vector<std::vector<double>> models = {{1.0}, {5.0}, {3.0}};
  EXPECT_DOUBLE_EQ(aggregate_median(models)[0], 3.0);
}

TEST(MedianAggregate, EvenCountAveragesMiddlePair) {
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}, {4.0},
                                                   {8.0}};
  EXPECT_DOUBLE_EQ(aggregate_median(models)[0], 3.0);
}

TEST(MedianAggregate, PerCoordinateIndependence) {
  const std::vector<std::vector<double>> models = {
      {1.0, 9.0}, {2.0, 8.0}, {3.0, 7.0}};
  const auto global = aggregate_median(models);
  EXPECT_DOUBLE_EQ(global[0], 2.0);
  EXPECT_DOUBLE_EQ(global[1], 8.0);
}

TEST(MedianAggregate, IgnoresOneArbitraryOutlier) {
  // 4 honest clients near 0.5, one Byzantine at 1e9: the median must stay
  // with the honest majority while the mean is destroyed.
  const std::vector<std::vector<double>> models = {
      {0.49}, {0.50}, {0.51}, {0.52}, {1e9}};
  EXPECT_NEAR(aggregate_median(models)[0], 0.51, 1e-12);
  EXPECT_GT(average_unweighted(models)[0], 1e8);
}

TEST(MedianAggregate, SingleModelIsIdentity) {
  const std::vector<std::vector<double>> models = {{0.7, -0.2}};
  EXPECT_EQ(aggregate_median(models), models[0]);
}

TEST(TrimmedMean, DropsExtremesSymmetrically) {
  const std::vector<std::vector<double>> models = {
      {-100.0}, {1.0}, {2.0}, {3.0}, {100.0}};
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 1)[0], 2.0);
}

TEST(TrimmedMean, ZeroTrimIsPlainMean) {
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}, {6.0}};
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 0)[0], 3.0);
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 0)[0],
                   average_unweighted(models)[0]);
}

TEST(TrimmedMean, SurvivesOnePoisonedClient) {
  const std::vector<std::vector<double>> models = {
      {0.5, -0.5}, {0.6, -0.4}, {0.4, -0.6}, {1e9, -1e9}};
  const auto global = aggregate_trimmed_mean(models, 1);
  EXPECT_NEAR(global[0], 0.55, 0.06);
  EXPECT_NEAR(global[1], -0.55, 0.06);
}

TEST(TrimmedMean, OverTrimmingClampsInsteadOfAborting) {
  // Dropouts can shrink the survivor set below what the configured trim
  // count was planned for; the rule degrades to the widest valid trim
  // (here: none — 2 models cannot lose a symmetric pair) instead of
  // killing the round.
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}};
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 1)[0], 1.5);
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 100)[0], 1.5);
}

TEST(TrimmedMean, ClampKeepsTheMedianForOddCounts) {
  // 3 models with trim 5 clamps to trim 1 = the middle order statistic.
  const std::vector<std::vector<double>> models = {{-7.0}, {2.0}, {90.0}};
  EXPECT_DOUBLE_EQ(aggregate_trimmed_mean(models, 5)[0], 2.0);
}

TEST(TrimmedMean, ClampTrimCountHelper) {
  EXPECT_EQ(clamp_trim_count(0, 5), 0u);
  EXPECT_EQ(clamp_trim_count(2, 5), 2u);
  EXPECT_EQ(clamp_trim_count(3, 5), 2u);   // floor((5-1)/2)
  EXPECT_EQ(clamp_trim_count(1, 2), 0u);
  EXPECT_EQ(clamp_trim_count(100, 1), 0u);
}

TEST(Krum, PicksTheMostCentralModel) {
  // Three honest models clustered at ~0.5 and one far outlier: Krum must
  // select a cluster member, never the outlier.
  const std::vector<std::vector<double>> models = {
      {0.49}, {0.50}, {0.51}, {1e6}};
  const auto global = aggregate_krum(models, 1);
  EXPECT_NEAR(global[0], 0.50, 0.02);
}

TEST(Krum, MultiKrumAveragesTheSelectedSet) {
  const std::vector<std::vector<double>> models = {
      {0.4}, {0.5}, {0.6}, {0.5}, {1e6}};
  // f = 1 → select n - f - 2 = 2 most central models.
  const auto global = aggregate_krum(models, 1, models.size() - 1 - 2);
  EXPECT_NEAR(global[0], 0.5, 0.06);
}

TEST(Krum, TinyFleetsClampByzantineCount) {
  // 3 models leave no room for f >= 1 (needs n >= f + 3); the clamp keeps
  // the rule total instead of aborting.
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}, {3.0}};
  const auto global = aggregate_krum(models, 2);
  EXPECT_TRUE(std::isfinite(global[0]));
}

TEST(Krum, ParallelOverloadMatchesSerialBitwise) {
  std::vector<std::vector<double>> models;
  for (std::size_t m = 0; m < 9; ++m) {
    std::vector<double> params(700);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] = std::sin(static_cast<double>(m * 131 + i) * 0.013) +
                  (m == 8 ? 50.0 : 0.0);
    }
    models.push_back(std::move(params));
  }
  runtime::ThreadPool pool(4);
  const util::ParallelFor parallel_for = pool.executor();
  const auto serial = aggregate_krum(models, 2, 4);
  const auto parallel = aggregate_krum(models, 2, 4, parallel_for);
  EXPECT_EQ(serial, parallel);
}

TEST(RobustAggregateDeathTest, RejectsMismatchedSizes) {
  EXPECT_DEATH(aggregate_median({{1.0}, {1.0, 2.0}}), "precondition");
  EXPECT_DEATH(aggregate_trimmed_mean({{1.0}, {1.0, 2.0}}, 0),
               "precondition");
}

// --- federation integration --------------------------------------------

class FixedClient final : public FederatedClient {
 public:
  explicit FixedClient(double value) : value_(value) {}
  void receive_global(std::span<const double>) override {}
  std::vector<double> local_parameters() const override { return {value_}; }
  void run_local_round() override {}

 private:
  double value_;
};

TEST(RobustFederation, MedianModeShrugsOffPoisoning) {
  FixedClient honest1(0.5);
  FixedClient honest2(0.52);
  FixedClient honest3(0.48);
  FixedClient byzantine(1e6);
  InProcessTransport transport;
  FederatedAveraging server({&honest1, &honest2, &honest3, &byzantine},
                            &transport,
                            AggregationMode::kCoordinateMedian);
  server.initialize({0.0});
  server.run_round();
  EXPECT_NEAR(server.global_model()[0], 0.51, 0.02);
}

TEST(RobustFederation, TrimmedMeanModeShrugsOffPoisoning) {
  FixedClient honest1(0.5);
  FixedClient honest2(0.52);
  FixedClient honest3(0.48);
  FixedClient honest4(0.50);
  FixedClient byzantine(-1e6);
  InProcessTransport transport;
  FederatedAveraging server(
      {&honest1, &honest2, &honest3, &honest4, &byzantine}, &transport,
      AggregationMode::kTrimmedMean);
  server.initialize({0.0});
  server.run_round();
  EXPECT_NEAR(server.global_model()[0], 0.5, 0.02);
}

TEST(RobustFederation, TrimmedMeanWithTwoClientsFallsBackToMean) {
  FixedClient a(1.0);
  FixedClient b(3.0);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport,
                            AggregationMode::kTrimmedMean);
  server.initialize({0.0});
  server.run_round();
  EXPECT_DOUBLE_EQ(server.global_model()[0], 2.0);
}

TEST(RobustFederation, PlainMeanIsVulnerableByContrast) {
  FixedClient honest(0.5);
  FixedClient byzantine(1e6);
  InProcessTransport transport;
  FederatedAveraging server({&honest, &byzantine}, &transport);
  server.initialize({0.0});
  server.run_round();
  EXPECT_GT(server.global_model()[0], 1e5);
}

}  // namespace
}  // namespace fedpower::fed
