#include "fed/async.hpp"

#include <gtest/gtest.h>

namespace fedpower::fed {
namespace {

class DriftClient final : public FederatedClient {
 public:
  explicit DriftClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
    ++fetches_;
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }
  int rounds() const noexcept { return rounds_; }
  int fetches() const noexcept { return fetches_; }

 private:
  double delta_;
  std::vector<double> params_;
  int rounds_ = 0;
  int fetches_ = 0;
};

TEST(AsyncFederation, FastClientCompletesEveryTick) {
  DriftClient fast(1.0);
  DriftClient slow(1.0);
  InProcessTransport transport;
  AsyncFederation fed({&fast, &slow}, {1, 4}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(8);
  EXPECT_EQ(fast.rounds(), 8);
  EXPECT_EQ(slow.rounds(), 2);
  EXPECT_EQ(fed.stats().merges, 10u);
}

TEST(AsyncFederation, GlobalMovesTowardClientUpdates) {
  DriftClient a(1.0);
  InProcessTransport transport;
  AsyncConfig config;
  config.mixing_rate = 0.5;
  AsyncFederation fed({&a}, {1}, &transport, config);
  fed.initialize({0.0});
  fed.run_ticks(1);
  // Client trained 0 -> 1; merged with w = 0.5 (staleness 0): global 0.5.
  EXPECT_NEAR(fed.global_model()[0], 0.5, 1e-6);
}

TEST(AsyncFederation, StalenessDiscountsSlowClients) {
  // The slow client's update is based on an old global; its staleness
  // must be positive and its weight reduced.
  DriftClient fast(0.0);
  DriftClient slow(100.0);  // a big, stale jump
  InProcessTransport transport;
  AsyncConfig config;
  config.mixing_rate = 0.5;
  config.staleness_power = 1.0;
  AsyncFederation fed({&fast, &slow}, {1, 5}, &transport, config);
  fed.initialize({0.0});
  fed.run_ticks(5);
  // By the slow client's first completion, the fast one merged 4-5 times:
  // staleness ~5, weight ~0.5/6 — the 100-unit jump is strongly damped.
  EXPECT_GT(fed.stats().max_staleness, 3.0);
  EXPECT_LT(fed.global_model()[0], 20.0);
}

TEST(AsyncFederation, ZeroStalenessPowerIgnoresStaleness) {
  DriftClient fast(0.0);
  DriftClient slow(10.0);
  InProcessTransport transport;
  AsyncConfig config;
  config.mixing_rate = 0.5;
  config.staleness_power = 0.0;
  AsyncFederation fed({&fast, &slow}, {1, 5}, &transport, config);
  fed.initialize({0.0});
  fed.run_ticks(5);
  // Weight stays 0.5 regardless of staleness: the jump lands at ~5.
  EXPECT_NEAR(fed.global_model()[0], 5.0, 1e-6);
}

TEST(AsyncFederation, ClientsRefetchAfterEveryMerge) {
  DriftClient a(1.0);
  InProcessTransport transport;
  AsyncFederation fed({&a}, {1}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(3);
  // initialize + one fetch per completed round.
  EXPECT_EQ(a.fetches(), 4);
}

TEST(AsyncFederation, TracksMeanStaleness) {
  DriftClient fast(0.0);
  DriftClient slow(0.0);
  InProcessTransport transport;
  AsyncFederation fed({&fast, &slow}, {1, 3}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(9);
  EXPECT_GT(fed.stats().mean_staleness, 0.0);
  EXPECT_GE(fed.stats().max_staleness, fed.stats().mean_staleness);
}

/// Forwards to an InProcessTransport but throws TransportError on chosen
/// transfer indices (counting every call, downlinks included).
class DroppingTransport final : public Transport {
 public:
  explicit DroppingTransport(std::vector<std::size_t> drop_calls)
      : drop_calls_(std::move(drop_calls)) {}
  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override {
    const std::size_t call = calls_++;
    for (const std::size_t drop : drop_calls_)
      if (call == drop) throw TransportError("scripted drop");
    return inner_.transfer(direction, std::move(payload));
  }
  const TrafficStats& stats() const noexcept override {
    return inner_.stats();
  }

 private:
  InProcessTransport inner_;
  std::vector<std::size_t> drop_calls_;
  std::size_t calls_ = 0;
};

/// Throws on every uplink; downlinks pass. No upload ever reaches the
/// server, so not a single merge happens.
class UplinkBlackholeTransport final : public Transport {
 public:
  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override {
    if (direction == Direction::kUplink)
      throw TransportError("uplink blackhole");
    return inner_.transfer(direction, std::move(payload));
  }
  const TrafficStats& stats() const noexcept override {
    return inner_.stats();
  }

 private:
  InProcessTransport inner_;
};

TEST(AsyncFederation, ZeroMergesLeaveMeanStalenessZero) {
  // Every uplink is lost: merges stays 0 and mean_staleness must remain
  // exactly 0.0 (never 0/0) while every loss is counted as a dropout.
  DriftClient a(1.0);
  DriftClient b(1.0);
  UplinkBlackholeTransport transport;
  AsyncFederation fed({&a, &b}, {1, 2}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(4);
  EXPECT_EQ(fed.stats().merges, 0u);
  EXPECT_EQ(fed.stats().mean_staleness, 0.0);
  EXPECT_EQ(fed.stats().max_staleness, 0.0);
  EXPECT_EQ(fed.stats().dropouts, 6u);  // 4 fast + 2 slow attempts
  EXPECT_EQ(fed.stats().server_version, 0u);
}

TEST(AsyncFederation, DroppedUploadRetriesFromStaleBase) {
  // The slow client's first upload (transfer call 8: 2 init downlinks + 3
  // fast up/down pairs) is lost; its base version stays 0 while the fast
  // client keeps merging, so its eventual retry lands with staleness equal
  // to the full version distance — 6 fast merges by tick 6.
  DriftClient fast(0.0);
  DriftClient slow(0.0);
  DroppingTransport transport({8});
  AsyncFederation fed({&fast, &slow}, {1, 3}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(6);
  EXPECT_EQ(fed.stats().dropouts, 1u);
  EXPECT_EQ(fed.stats().merges, 7u);  // 6 fast + the slow retry
  EXPECT_EQ(fed.stats().max_staleness, 6.0);
}

TEST(AsyncFederation, TrafficAccountedPerCompletion) {
  DriftClient a(0.0);
  InProcessTransport transport;
  AsyncFederation fed({&a}, {1}, &transport);
  fed.initialize({1.0, 2.0});
  transport.reset_stats();
  fed.run_ticks(4);
  EXPECT_EQ(transport.stats().uplink_transfers, 4u);
  EXPECT_EQ(transport.stats().downlink_transfers, 4u);
}

TEST(AsyncFederationDeathTest, Preconditions) {
  DriftClient a(0.0);
  InProcessTransport transport;
  EXPECT_DEATH(AsyncFederation({&a}, {0}, &transport), "precondition");
  EXPECT_DEATH(AsyncFederation({&a}, {1, 2}, &transport), "precondition");
  AsyncConfig bad;
  bad.mixing_rate = 0.0;
  EXPECT_DEATH(AsyncFederation({&a}, {1}, &transport, bad), "precondition");
  AsyncFederation fed({&a}, {1}, &transport);
  EXPECT_DEATH(fed.run_ticks(1), "precondition");  // not initialized
}

}  // namespace
}  // namespace fedpower::fed
