#include "fed/aggregate.hpp"

#include <gtest/gtest.h>

namespace fedpower::fed {
namespace {

TEST(AverageUnweighted, SingleModelIsIdentity) {
  const std::vector<std::vector<double>> models = {{1.0, 2.0, 3.0}};
  EXPECT_EQ(average_unweighted(models), models[0]);
}

TEST(AverageUnweighted, ElementwiseMean) {
  const std::vector<std::vector<double>> models = {{1.0, 2.0}, {3.0, 6.0}};
  const auto global = average_unweighted(models);
  EXPECT_DOUBLE_EQ(global[0], 2.0);
  EXPECT_DOUBLE_EQ(global[1], 4.0);
}

TEST(AverageUnweighted, PaperAlgorithm2Line8) {
  // theta_{r+1} = 1/N sum theta_r^n for N = 3.
  const std::vector<std::vector<double>> models = {
      {0.3}, {0.6}, {0.9}};
  EXPECT_NEAR(average_unweighted(models)[0], 0.6, 1e-12);
}

TEST(AverageUnweighted, NegativeValues) {
  const std::vector<std::vector<double>> models = {{-1.0}, {1.0}};
  EXPECT_DOUBLE_EQ(average_unweighted(models)[0], 0.0);
}

TEST(AverageUnweighted, IdenticalModelsAreFixedPoint) {
  const std::vector<double> model = {0.5, -0.25, 1.5};
  EXPECT_EQ(average_unweighted({model, model, model}), model);
}

TEST(AverageWeighted, RespectsWeights) {
  const std::vector<std::vector<double>> models = {{0.0}, {1.0}};
  const std::vector<double> weights = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(average_weighted(models, weights)[0], 0.75);
}

TEST(AverageWeighted, EqualWeightsMatchUnweighted) {
  const std::vector<std::vector<double>> models = {{1.0, 4.0}, {3.0, 0.0}};
  const std::vector<double> weights = {2.0, 2.0};
  EXPECT_EQ(average_weighted(models, weights), average_unweighted(models));
}

TEST(AverageWeighted, ZeroWeightClientIgnored) {
  const std::vector<std::vector<double>> models = {{5.0}, {1.0}};
  const std::vector<double> weights = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(average_weighted(models, weights)[0], 1.0);
}

TEST(AggregateDeathTest, RejectsEmptyModelList) {
  EXPECT_DEATH(average_unweighted({}), "precondition");
}

TEST(AggregateDeathTest, RejectsMismatchedSizes) {
  EXPECT_DEATH(average_unweighted({{1.0}, {1.0, 2.0}}), "precondition");
}

TEST(AggregateDeathTest, RejectsAllZeroWeights) {
  const std::vector<std::vector<double>> models = {{1.0}, {2.0}};
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH(average_weighted(models, weights), "precondition");
}

TEST(AggregateDeathTest, RejectsNegativeWeights) {
  const std::vector<std::vector<double>> models = {{1.0}};
  const std::vector<double> weights = {-1.0};
  EXPECT_DEATH(average_weighted(models, weights), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
