#include "fed/transport.hpp"

#include <gtest/gtest.h>

namespace fedpower::fed {
namespace {

TEST(InProcessTransport, DeliversPayloadUnmodified) {
  InProcessTransport transport;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 255, 0};
  EXPECT_EQ(transport.transfer(Direction::kUplink, payload), payload);
}

TEST(InProcessTransport, CountsUplinkAndDownlinkSeparately) {
  InProcessTransport transport;
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(100));
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(50));
  transport.transfer(Direction::kDownlink, std::vector<std::uint8_t>(70));
  const TrafficStats& stats = transport.stats();
  EXPECT_EQ(stats.uplink_transfers, 2u);
  EXPECT_EQ(stats.uplink_bytes, 150u);
  EXPECT_EQ(stats.downlink_transfers, 1u);
  EXPECT_EQ(stats.downlink_bytes, 70u);
  EXPECT_EQ(stats.total_bytes(), 220u);
  EXPECT_EQ(stats.total_transfers(), 3u);
}

TEST(InProcessTransport, MeanTransferBytes) {
  InProcessTransport transport;
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(100));
  transport.transfer(Direction::kDownlink, std::vector<std::uint8_t>(200));
  EXPECT_DOUBLE_EQ(transport.stats().mean_transfer_bytes(), 150.0);
}

TEST(InProcessTransport, MeanOfNoTransfersIsZero) {
  InProcessTransport transport;
  EXPECT_DOUBLE_EQ(transport.stats().mean_transfer_bytes(), 0.0);
}

TEST(InProcessTransport, LatencyModelAccumulates) {
  InProcessTransport transport(0.01, 1000.0);  // 10 ms + 1 kB/s
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(500));
  EXPECT_NEAR(transport.stats().total_latency_s, 0.01 + 0.5, 1e-12);
  transport.transfer(Direction::kDownlink, std::vector<std::uint8_t>(1000));
  EXPECT_NEAR(transport.stats().total_latency_s, 0.51 + 1.01, 1e-12);
}

TEST(InProcessTransport, ResetStats) {
  InProcessTransport transport;
  transport.transfer(Direction::kUplink, std::vector<std::uint8_t>(10));
  transport.reset_stats();
  EXPECT_EQ(transport.stats().total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(transport.stats().total_latency_s, 0.0);
}

TEST(InProcessTransport, EmptyPayloadStillCountsTransfer) {
  InProcessTransport transport;
  transport.transfer(Direction::kUplink, {});
  EXPECT_EQ(transport.stats().uplink_transfers, 1u);
  EXPECT_EQ(transport.stats().uplink_bytes, 0u);
}

TEST(InProcessTransportDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(InProcessTransport(-1.0, 100.0), "precondition");
  EXPECT_DEATH(InProcessTransport(0.0, 0.0), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
