#include "fed/dp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedpower::fed {
namespace {

class MovingClient final : public FederatedClient {
 public:
  explicit MovingClient(std::vector<double> delta) : delta_(std::move(delta)) {}

  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (std::size_t i = 0; i < params_.size(); ++i) params_[i] += delta_[i];
  }

 private:
  std::vector<double> delta_;
  std::vector<double> params_;
};

TEST(L2Norm, KnownValues) {
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<double>{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<double>{}), 0.0);
}

TEST(ClipToNorm, LeavesSmallVectorsAlone) {
  const std::vector<double> v = {0.3, 0.4};
  EXPECT_EQ(clip_to_norm(v, 1.0), v);
}

TEST(ClipToNorm, ScalesLargeVectors) {
  const auto clipped = clip_to_norm({3.0, 4.0}, 1.0);
  EXPECT_NEAR(l2_norm(clipped), 1.0, 1e-12);
  EXPECT_NEAR(clipped[0] / clipped[1], 0.75, 1e-12);  // direction kept
}

TEST(DpClient, UpdateClippedToNorm) {
  MovingClient inner({3.0, 4.0});  // one local round moves by norm-5 update
  DpConfig config;
  config.clip_norm = 1.0;
  DpClient client(&inner, config);
  client.receive_global(std::vector<double>{0.0, 0.0});
  client.run_local_round();
  const auto upload = client.local_parameters();
  EXPECT_NEAR(l2_norm(upload), 1.0, 1e-12);  // anchor 0 -> upload == update
  EXPECT_DOUBLE_EQ(client.last_update_norm(), 5.0);
}

TEST(DpClient, SmallUpdatePassesUnclipped) {
  MovingClient inner({0.1, 0.0});
  DpConfig config;
  config.clip_norm = 1.0;
  DpClient client(&inner, config);
  client.receive_global(std::vector<double>{1.0, 1.0});
  client.run_local_round();
  const auto upload = client.local_parameters();
  EXPECT_NEAR(upload[0], 1.1, 1e-12);
  EXPECT_NEAR(upload[1], 1.0, 1e-12);
}

TEST(DpClient, NoiseHasConfiguredScale) {
  MovingClient inner({0.0, 0.0});
  DpConfig config;
  config.clip_norm = 1.0;
  config.noise_multiplier = 0.1;
  config.seed = 7;
  DpClient client(&inner, config);
  client.receive_global(std::vector<double>(100, 0.0));
  // Zero update: uploads are pure noise with sigma = 0.1.
  double sum_sq = 0.0;
  const auto upload = client.local_parameters();
  for (const double x : upload) sum_sq += x * x;
  const double sigma = std::sqrt(sum_sq / 100.0);
  EXPECT_NEAR(sigma, 0.1, 0.03);
}

TEST(DpClient, ZeroNoiseIsDeterministic) {
  MovingClient inner({0.5, -0.5});
  DpConfig config;
  config.clip_norm = 10.0;
  DpClient client(&inner, config);
  client.receive_global(std::vector<double>{0.0, 0.0});
  client.run_local_round();
  EXPECT_EQ(client.local_parameters(), client.local_parameters());
}

TEST(DpClient, BeforeFirstGlobalUploadsRaw) {
  MovingClient inner({1.0});
  inner.receive_global(std::vector<double>{42.0});
  DpConfig config;
  config.noise_multiplier = 1.0;
  DpClient client(&inner, config);
  EXPECT_EQ(client.local_parameters(), (std::vector<double>{42.0}));
  EXPECT_DOUBLE_EQ(client.last_update_norm(), 0.0);
}

TEST(DpClient, WorksInsideFederation) {
  MovingClient inner_a({0.2, 0.0});
  MovingClient inner_b({0.0, 0.2});
  DpConfig config;
  config.clip_norm = 0.1;  // clips both updates from 0.2 to 0.1
  DpClient a(&inner_a, config);
  DpClient b(&inner_b, config);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({0.0, 0.0});
  server.run_round();
  // Each update clipped to norm 0.1, averaged over 2 clients -> 0.05.
  EXPECT_NEAR(server.global_model()[0], 0.05, 1e-6);
  EXPECT_NEAR(server.global_model()[1], 0.05, 1e-6);
}

TEST(DpClientDeathTest, RejectsBadConfig) {
  MovingClient inner({1.0});
  DpConfig bad;
  bad.clip_norm = 0.0;
  EXPECT_DEATH(DpClient(&inner, bad), "precondition");
  EXPECT_DEATH(DpClient(nullptr, DpConfig{}), "precondition");
}

}  // namespace
}  // namespace fedpower::fed
