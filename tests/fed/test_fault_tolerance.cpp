// Dropout semantics of the federation layers: rounds survive client
// failures, aggregate over the survivors, record the casualties, and fail
// only below quorum — without ever advancing state for a failed round.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fed/async.hpp"
#include "fed/fault_injection.hpp"
#include "fed/federation.hpp"

namespace fedpower::fed {
namespace {

class ScriptedClient final : public FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
    ++receives_;
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }
  int receives() const noexcept { return receives_; }
  int rounds() const noexcept { return rounds_; }

 private:
  double delta_;
  std::vector<double> params_;
  int receives_ = 0;
  int rounds_ = 0;
};

/// Throws TransportError on exactly the scripted transfer indices
/// (1-based, counted across both directions); delivers otherwise.
class ScriptedFaultTransport final : public Transport {
 public:
  explicit ScriptedFaultTransport(std::set<std::size_t> fail_on)
      : fail_on_(std::move(fail_on)) {}

  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override {
    ++count_;
    if (fail_on_.count(count_) > 0)
      throw TransportError("scripted fault at transfer " +
                           std::to_string(count_));
    return inner_.transfer(direction, std::move(payload));
  }

  const TrafficStats& stats() const noexcept override {
    return inner_.stats();
  }

  std::size_t transfers_seen() const noexcept { return count_; }

 private:
  std::set<std::size_t> fail_on_;
  std::size_t count_ = 0;
  InProcessTransport inner_;
};

TEST(FaultTolerance, DownlinkFaultDropsClientAndSkipsItsTraining) {
  ScriptedClient a(+1.0);
  ScriptedClient b(+5.0);
  // Transfer order in a round: downlink a (1), downlink b (2),
  // uplink a (3), uplink b — client b's broadcast is lost.
  ScriptedFaultTransport transport({2});
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({0.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{1}));
  EXPECT_EQ(result.survivors(), 1u);
  EXPECT_EQ(b.receives(), 0);
  EXPECT_EQ(b.rounds(), 0);  // unreachable clients must not train
  EXPECT_NEAR(server.global_model()[0], 1.0, 1e-6);  // a alone
  EXPECT_EQ(server.rounds_completed(), 1u);
}

TEST(FaultTolerance, UplinkFaultDropsClientFromAggregate) {
  ScriptedClient a(+1.0);
  ScriptedClient b(+5.0);
  // Both broadcasts land; b trains but its upload (transfer 4) is lost.
  ScriptedFaultTransport transport({4});
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({0.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{1}));
  EXPECT_EQ(b.rounds(), 1);  // it did train; only the upload was lost
  EXPECT_NEAR(server.global_model()[0], 1.0, 1e-6);
}

TEST(FaultTolerance, CleanRoundsReportNoDropouts) {
  ScriptedClient a(+1.0);
  ScriptedClient b(-1.0);
  ScriptedFaultTransport transport({});
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({0.0});
  const RoundResult result = server.run_round();
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_EQ(result.survivors(), 2u);
  EXPECT_EQ(result.transport_retries, 0u);
}

TEST(FaultTolerance, QuorumFailureThrowsAndLeavesStateUntouched) {
  ScriptedClient a(+1.0);
  ScriptedClient b(+1.0);
  // Round 1 clean (transfers 1-4); in round 2 both broadcasts fail
  // (transfers 5, 6), so zero survivors remain.
  ScriptedFaultTransport transport({5, 6});
  FederatedAveraging server({&a, &b}, &transport);
  server.set_quorum(1);
  server.initialize({0.0});
  server.run_round();
  EXPECT_EQ(server.rounds_completed(), 1u);
  const std::vector<double> before = server.global_model();
  try {
    server.run_round();
    FAIL() << "expected QuorumError";
  } catch (const QuorumError& error) {
    EXPECT_EQ(error.survivors(), 0u);
    EXPECT_EQ(error.required(), 1u);
  }
  // The failed round must not advance the counter or move the model —
  // the seed's bug advanced the counter before any transfer.
  EXPECT_EQ(server.rounds_completed(), 1u);
  EXPECT_EQ(server.global_model(), before);
  // And the next clean round proceeds normally.
  const RoundResult retry = server.run_round();
  EXPECT_EQ(retry.round, 2u);
  EXPECT_EQ(server.rounds_completed(), 2u);
}

TEST(FaultTolerance, ConfigurableQuorumRejectsThinRounds) {
  ScriptedClient a(+1.0);
  ScriptedClient b(+1.0);
  ScriptedClient c(+1.0);
  // Client c's broadcast (transfer 3) is lost: 2 of 3 survive.
  ScriptedFaultTransport transport({3});
  FederatedAveraging server({&a, &b, &c}, &transport);
  server.set_quorum(3);  // demand full participation
  server.initialize({0.0});
  EXPECT_THROW(server.run_round(), QuorumError);
  EXPECT_EQ(server.rounds_completed(), 0u);
}

TEST(FaultTolerance, PerClientTransportsIsolateFailures) {
  ScriptedClient a(+1.0);
  ScriptedClient b(+5.0);
  InProcessTransport healthy;
  FaultInjectionConfig dead;
  dead.drop_probability = 1.0;
  InProcessTransport dead_inner;
  FaultInjectingTransport faulty(&dead_inner, dead);
  FederatedAveraging server({&a, &b}, &healthy);
  server.set_client_transport(1, &faulty);
  server.initialize({0.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(server.global_model()[0], 1.0, 1e-6);
  // Client a's traffic went over its own healthy link.
  EXPECT_EQ(healthy.stats().total_transfers(), 2u);
}

TEST(FaultTolerance, TruncatedPayloadIsDetectedAndDropped) {
  // A payload damaged in flight must not crash decode or poison the
  // aggregate: the codec rejects it and the client counts as dropped.
  ScriptedClient a(+1.0);
  ScriptedClient b(+5.0);
  InProcessTransport healthy;
  FaultInjectionConfig config;
  config.truncate_probability = 1.0;
  InProcessTransport inner;
  FaultInjectingTransport truncating(&inner, config);
  FederatedAveraging server({&a, &b}, &healthy);
  server.set_client_transport(1, &truncating);
  server.initialize({0.0, 0.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.dropped, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(server.global_model()[0], 1.0, 1e-6);
}

TEST(FaultTolerance, DroppedSetIsDeterministicPerSeed) {
  // Same seed => identical dropped sets across independent runs; a
  // different seed produces a different schedule.
  const auto dropped_history = [](std::uint64_t seed) {
    ScriptedClient a(+1.0);
    ScriptedClient b(-1.0);
    ScriptedClient c(+2.0);
    InProcessTransport inner;
    FaultInjectionConfig config;
    config.drop_probability = 0.25;
    config.seed = seed;
    FaultInjectingTransport transport(&inner, config);
    FederatedAveraging server({&a, &b, &c}, &transport);
    server.initialize({0.0});
    std::vector<std::vector<std::size_t>> history;
    for (int round = 0; round < 20; ++round) {
      try {
        history.push_back(server.run_round().dropped);
      } catch (const QuorumError&) {
        history.push_back({99});  // sentinel: round aborted
      }
    }
    return history;
  };
  const auto first = dropped_history(7);
  EXPECT_EQ(first, dropped_history(7));
  EXPECT_NE(first, dropped_history(8));
}

TEST(FaultTolerance, AsyncUplinkFaultCountsDropoutAndKeepsTicking) {
  ScriptedClient fast(+1.0);
  ScriptedClient slow(+1.0);
  // Async transfer order: init downlinks (1, 2); each completion is
  // uplink + downlink. Tick 1: fast up (3) / down (4). Tick 2: fast up
  // (5) fails -> dropout, slow up (6) / down (7).
  ScriptedFaultTransport transport({5});
  AsyncFederation fed({&fast, &slow}, {1, 2}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(2);
  EXPECT_EQ(fed.stats().dropouts, 1u);
  EXPECT_EQ(fed.stats().merges, 2u);  // fast tick 1 + slow tick 2
  EXPECT_EQ(fast.rounds(), 2);  // the failed round still trained locally
}

TEST(FaultTolerance, AsyncDownlinkFaultKeepsMergeAndGrowsStaleness) {
  ScriptedClient a(+1.0);
  // Single client, period 1. Transfers: init down (1); tick 1 up (2) /
  // down (3) — the refetch fails. Tick 2: up (4) / down (5) succeed.
  ScriptedFaultTransport transport({3});
  AsyncFederation fed({&a}, {1}, &transport);
  fed.initialize({0.0});
  fed.run_ticks(2);
  // Both uploads merged; only the refetch was lost.
  EXPECT_EQ(fed.stats().merges, 2u);
  EXPECT_EQ(fed.stats().dropouts, 1u);
  // The tick-2 upload was trained on the stale (initial) base: its
  // staleness is 1, not 0.
  EXPECT_NEAR(fed.stats().max_staleness, 1.0, 1e-12);
}

}  // namespace
}  // namespace fedpower::fed
