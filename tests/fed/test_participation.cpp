#include <gtest/gtest.h>

#include <set>

#include "fed/federation.hpp"

namespace fedpower::fed {
namespace {

class CountingClient final : public FederatedClient {
 public:
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
    ++receives_;
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override { ++rounds_; }

  int receives() const noexcept { return receives_; }
  int rounds() const noexcept { return rounds_; }

 private:
  std::vector<double> params_ = {0.0};
  int receives_ = 0;
  int rounds_ = 0;
};

TEST(Participation, FullParticipationIsDefault) {
  CountingClient a;
  CountingClient b;
  CountingClient c;
  InProcessTransport transport;
  FederatedAveraging server({&a, &b, &c}, &transport);
  server.initialize({1.0});
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.participants, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(a.rounds(), 1);
  EXPECT_EQ(b.rounds(), 1);
  EXPECT_EQ(c.rounds(), 1);
}

TEST(Participation, HalfFractionSelectsCeilHalf) {
  CountingClient clients[4];
  InProcessTransport transport;
  FederatedAveraging server(
      {&clients[0], &clients[1], &clients[2], &clients[3]}, &transport);
  server.initialize({1.0});
  server.set_participation(0.5, 7);
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.participants.size(), 2u);
}

TEST(Participation, AtLeastOneClientAlwaysSelected) {
  CountingClient a;
  CountingClient b;
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport);
  server.initialize({1.0});
  server.set_participation(0.01, 3);
  const RoundResult result = server.run_round();
  EXPECT_EQ(result.participants.size(), 1u);
}

TEST(Participation, NonParticipantsAreUntouched) {
  CountingClient a;
  CountingClient b;
  CountingClient c;
  CountingClient d;
  InProcessTransport transport;
  FederatedAveraging server({&a, &b, &c, &d}, &transport);
  server.initialize({1.0});
  server.set_participation(0.5, 11);
  server.run(6);
  const CountingClient* all[] = {&a, &b, &c, &d};
  int total_rounds = 0;
  for (const auto* client : all) {
    EXPECT_EQ(client->rounds(), client->receives());
    total_rounds += client->rounds();
  }
  // 6 rounds x 2 participants each.
  EXPECT_EQ(total_rounds, 12);
}

TEST(Participation, AllClientsEventuallyParticipate) {
  CountingClient clients[4];
  InProcessTransport transport;
  FederatedAveraging server(
      {&clients[0], &clients[1], &clients[2], &clients[3]}, &transport);
  server.initialize({1.0});
  server.set_participation(0.25, 13);
  std::set<std::size_t> seen;
  for (int r = 0; r < 40; ++r)
    for (const std::size_t i : server.run_round().participants) seen.insert(i);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Participation, ParticipantsAreSortedAndUnique) {
  CountingClient clients[5];
  InProcessTransport transport;
  FederatedAveraging server({&clients[0], &clients[1], &clients[2],
                             &clients[3], &clients[4]},
                            &transport);
  server.initialize({1.0});
  server.set_participation(0.6, 17);
  for (int r = 0; r < 10; ++r) {
    const auto participants = server.run_round().participants;
    EXPECT_TRUE(std::is_sorted(participants.begin(), participants.end()));
    const std::set<std::size_t> unique(participants.begin(),
                                       participants.end());
    EXPECT_EQ(unique.size(), participants.size());
  }
}

TEST(Participation, TrafficScalesWithParticipants) {
  CountingClient clients[4];
  InProcessTransport transport;
  FederatedAveraging server(
      {&clients[0], &clients[1], &clients[2], &clients[3]}, &transport);
  server.initialize({1.0, 2.0});
  server.set_participation(0.5, 19);
  server.run_round();
  // 2 participants -> 2 uplink and 2 downlink transfers.
  EXPECT_EQ(transport.stats().uplink_transfers, 2u);
  EXPECT_EQ(transport.stats().downlink_transfers, 2u);
}

TEST(ParticipationDeathTest, RejectsBadFraction) {
  CountingClient a;
  InProcessTransport transport;
  FederatedAveraging server({&a}, &transport);
  EXPECT_DEATH(server.set_participation(0.0, 1), "precondition");
  EXPECT_DEATH(server.set_participation(1.5, 1), "precondition");
}

TEST(FederationCodec, QuantizedCodecPluggedIn) {
  CountingClient a;
  CountingClient b;
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport,
                            AggregationMode::kUnweightedMean,
                            &QuantizedCodec::instance());
  server.initialize({0.25, -0.5, 0.75});
  server.run_round();
  EXPECT_EQ(server.codec().name(), "int8");
  // Values survive within the quantization bound.
  EXPECT_NEAR(server.global_model()[0], 0.25,
              QuantizedCodec::max_error(-0.5, 0.75) + 1e-9);
  // Payloads on the wire are the quantized size, not float32.
  EXPECT_EQ(transport.stats().uplink_bytes,
            2 * QuantizedCodec::instance().payload_size(3));
}

}  // namespace
}  // namespace fedpower::fed
