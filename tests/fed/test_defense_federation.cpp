// Defense pipeline wired into the federation: screening and quarantine in
// live rounds, the exclusion-category accounting of RoundResult, quorum
// interaction with every exclusion source at once, and serial/parallel
// bit-identity of the whole defended trajectory (DESIGN.md §10).
#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "fed/byzantine.hpp"
#include "fed/federation.hpp"
#include "runtime/thread_pool.hpp"

namespace fedpower::fed {
namespace {

// --- RoundResult::effective_clients (regression) ------------------------

TEST(EffectiveClients, NoExclusionsCountsAllParticipants) {
  RoundResult result;
  result.participants = {0, 1, 2, 3};
  EXPECT_EQ(result.effective_clients(), 4u);
}

TEST(EffectiveClients, OverlappingCategoriesSubtractOnce) {
  // Client 2 is screened AND quarantined, client 1 dropped AND rejected: a
  // naive sum of the list sizes would subtract 6 from 5 participants.
  RoundResult result;
  result.participants = {0, 1, 2, 3, 4};
  result.dropped = {1};
  result.rejected = {1, 2};
  result.screened = {2, 3};
  result.quarantined = {2};
  EXPECT_EQ(result.effective_clients(), 2u);  // survivors: 0 and 4
  EXPECT_EQ(result.survivors(), 2u);
}

TEST(EffectiveClients, FullyExcludedRoundDoesNotUnderflow) {
  // Every participant excluded in multiple categories at once: the old
  // size_t arithmetic (participants - sum of list sizes) wrapped around to
  // ~2^64; the count must clamp at zero.
  RoundResult result;
  result.participants = {0, 1};
  result.dropped = {0, 1};
  result.rejected = {0};
  result.screened = {0, 1};
  result.quarantined = {1};
  EXPECT_EQ(result.effective_clients(), 0u);
}

// --- scripted clients ----------------------------------------------------

/// Honest client: installs the broadcast, adds `delta` per local round.
class ScriptedClient final : public FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

/// Diverged device: uploads NaN until `recover_after` local rounds have
/// passed, then behaves honestly — the shape that should be quarantined
/// and later earn re-admission.
class FlakyClient final : public FederatedClient {
 public:
  FlakyClient(double delta, std::size_t recover_after)
      : delta_(delta), recover_after_(recover_after) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override {
    if (rounds_ <= recover_after_)
      return std::vector<double>(params_.size(),
                                 std::numeric_limits<double>::quiet_NaN());
    return params_;
  }
  void run_local_round() override {
    ++rounds_;
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::size_t recover_after_;
  std::size_t rounds_ = 0;
  std::vector<double> params_;
};

/// Transport whose link can be cut between rounds.
class ToggleFaultTransport final : public Transport {
 public:
  std::vector<std::uint8_t> transfer(
      Direction direction, std::vector<std::uint8_t> payload) override {
    if (down) throw TransportError("link down");
    return inner_.transfer(direction, std::move(payload));
  }
  const TrafficStats& stats() const noexcept override {
    return inner_.stats();
  }

  bool down = false;

 private:
  InProcessTransport inner_;
};

/// Screens arm after one committed round and four accepted norms.
DefenseConfig fast_defense() {
  DefenseConfig config;
  config.enabled = true;
  config.warmup_rounds = 1;
  config.norm_min_samples = 4;
  return config;
}

// --- defended rounds -----------------------------------------------------

TEST(DefendedFederation, SignFlipperIsScreenedThenQuarantined) {
  std::vector<ScriptedClient> honest;
  honest.reserve(4);
  for (int c = 0; c < 4; ++c) honest.emplace_back(0.01);
  ScriptedClient attacker_inner(0.01);
  ClientFaultConfig attack;
  attack.attack = UploadAttack::kSignFlip;
  attack.scale = 10.0;
  ByzantineClient attacker(&attacker_inner, attack);

  InProcessTransport transport;
  FederatedAveraging server(
      {&honest[0], &honest[1], &honest[2], &honest[3], &attacker},
      &transport);
  server.enable_defense(fast_defense());
  server.initialize({0.5, 0.5, 0.5, 0.5});

  // Round 1 is warm-up: the flipped upload sails through into the mean.
  const RoundResult warmup = server.run_round();
  EXPECT_TRUE(warmup.screened.empty());
  EXPECT_LT(server.global_model()[0], 0.0);  // poison landed once
  const double poisoned = server.global_model()[0];

  // Rounds 2-4: the cosine screen rejects the flip every round until the
  // third strike quarantines the attacker (1.0 - 3 * 0.25 < 0.5).
  for (int round = 2; round <= 4; ++round) {
    const RoundResult result = server.run_round();
    EXPECT_EQ(result.screened, (std::vector<std::size_t>{4}));
    EXPECT_TRUE(result.quarantined.empty());
  }
  const RoundResult quarantined_round = server.run_round();
  EXPECT_TRUE(quarantined_round.screened.empty());
  EXPECT_EQ(quarantined_round.quarantined, (std::vector<std::size_t>{4}));
  ASSERT_NE(server.defense(), nullptr);
  EXPECT_TRUE(server.defense()->quarantined(4));
  // With the attacker fenced off from round 2 on, only the honest drift
  // (+0.01 per round) moves the model — steadily away from the poison.
  EXPECT_NEAR(server.global_model()[0], poisoned + 4 * 0.01, 1e-5);
}

TEST(DefendedFederation, RecoveredClientEarnsReadmission) {
  std::vector<ScriptedClient> honest;
  honest.reserve(3);
  for (int c = 0; c < 3; ++c) honest.emplace_back(0.01);
  FlakyClient flaky(0.01, /*recover_after=*/3);
  InProcessTransport transport;
  FederatedAveraging server({&honest[0], &honest[1], &honest[2], &flaky},
                            &transport);
  server.enable_defense(fast_defense());
  server.initialize({0.5, 0.5, 0.5, 0.5});

  // Rounds 1-3: NaN uploads are rejected server-side; the third strike
  // quarantines the device.
  for (int round = 1; round <= 3; ++round) {
    const RoundResult result = server.run_round();
    EXPECT_EQ(result.rejected, (std::vector<std::size_t>{3}));
  }
  EXPECT_TRUE(server.defense()->quarantined(3));

  // Recovered: three consecutive clean (probation) uploads re-admit it at
  // the end of round 6; round 7 aggregates it again.
  RoundResult result = server.run_round();
  EXPECT_EQ(result.quarantined, (std::vector<std::size_t>{3}));
  EXPECT_TRUE(result.readmitted.empty());
  result = server.run_round();
  EXPECT_TRUE(result.readmitted.empty());
  result = server.run_round();
  EXPECT_EQ(result.readmitted, (std::vector<std::size_t>{3}));
  EXPECT_FALSE(server.defense()->quarantined(3));
  result = server.run_round();
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(result.effective_clients(), 4u);
}

TEST(DefendedFederation, TrimmedMeanClampIsRecordedInTheRound) {
  ScriptedClient a(0.01);
  ScriptedClient b(-0.01);
  InProcessTransport transport;
  FederatedAveraging server({&a, &b}, &transport,
                            AggregationMode::kTrimmedMean);
  server.set_trim_count(2);  // infeasible with two uploads
  server.initialize({0.0});
  const RoundResult result = server.run_round();
  EXPECT_TRUE(result.trim_clamped);
  EXPECT_EQ(result.trim_count, 0u);
  EXPECT_EQ(server.rounds_completed(), 1u);
}

// --- quorum interaction, serial vs parallel ------------------------------

/// Everything a defended quorum-abort trajectory observes, for bitwise
/// comparison across thread counts.
struct QuorumTrajectory {
  std::vector<double> global_before_abort;
  std::vector<double> reputation;
  std::size_t survivors_at_abort = 0;
  std::size_t rounds_completed = 0;
  bool quorum_threw = false;
};

/// Drives a fleet where, by round 5, every exclusion category is populated
/// at once: c5 sign-flips (quarantined), c6 uploads NaN (quarantined, still
/// rejected), and c7's link is cut (dropped). With quorum 6 the five honest
/// survivors cannot carry the round.
QuorumTrajectory run_quorum_scenario(std::size_t threads) {
  std::vector<ScriptedClient> honest;
  honest.reserve(5);
  for (int c = 0; c < 5; ++c) honest.emplace_back(0.01);
  ScriptedClient attacker_inner(0.01);
  ClientFaultConfig attack;
  attack.attack = UploadAttack::kSignFlip;
  attack.scale = 10.0;
  ByzantineClient attacker(&attacker_inner, attack);
  FlakyClient nan_client(0.01, /*recover_after=*/1000);
  ScriptedClient fragile(0.01);

  InProcessTransport transport;
  ToggleFaultTransport fragile_link;
  FederatedAveraging server(
      {&honest[0], &honest[1], &honest[2], &honest[3], &honest[4], &attacker,
       &nan_client, &fragile},
      &transport);
  server.set_client_transport(7, &fragile_link);
  server.enable_defense(fast_defense());
  server.set_quorum(6);
  server.initialize({0.5, 0.5, 0.5, 0.5});

  runtime::ThreadPool pool(threads);
  if (threads > 1) server.set_local_executor(pool.executor());

  QuorumTrajectory trajectory;
  // Rounds 1-4: c6 is quarantined after round 3, c5 after round 4; the six
  // clean uploads (five honest + fragile) keep the quorum satisfied.
  for (int round = 1; round <= 4; ++round) server.run_round();
  trajectory.global_before_abort = server.global_model();

  fragile_link.down = true;
  try {
    server.run_round();
  } catch (const QuorumError& error) {
    trajectory.quorum_threw = true;
    trajectory.survivors_at_abort = error.survivors();
  }
  trajectory.rounds_completed = server.rounds_completed();
  for (std::size_t c = 0; c < server.client_count(); ++c)
    trajectory.reputation.push_back(server.defense()->reputation(c));

  // The cut link heals: the very next round completes with six uploads,
  // proving the abort left the federation in a re-runnable state.
  fragile_link.down = false;
  server.run_round();
  return trajectory;
}

TEST(DefendedFederation, AllExclusionSourcesCrossingQuorumAbortTheRound) {
  const QuorumTrajectory trajectory = run_quorum_scenario(1);
  EXPECT_TRUE(trajectory.quorum_threw);
  EXPECT_EQ(trajectory.survivors_at_abort, 5u);
  // The aborted round advanced nothing: counter still at the 4 completed
  // rounds, and the attacker's reputation was not double-penalized (its
  // observations were dropped with the round).
  EXPECT_EQ(trajectory.rounds_completed, 4u);
  EXPECT_DOUBLE_EQ(trajectory.reputation[5], 0.25);
  EXPECT_DOUBLE_EQ(trajectory.reputation[0], 1.0);
}

TEST(DefendedFederation, QuorumAbortTrajectoryIsBitIdenticalAcrossThreads) {
  const QuorumTrajectory serial = run_quorum_scenario(1);
  const QuorumTrajectory parallel = run_quorum_scenario(4);
  EXPECT_EQ(parallel.quorum_threw, serial.quorum_threw);
  EXPECT_EQ(parallel.survivors_at_abort, serial.survivors_at_abort);
  EXPECT_EQ(parallel.rounds_completed, serial.rounds_completed);
  EXPECT_EQ(parallel.global_before_abort, serial.global_before_abort);
  EXPECT_EQ(parallel.reputation, serial.reputation);
}

}  // namespace
}  // namespace fedpower::fed
