// Ablation — stress-testing the paper's thermal assumption.
//
// The paper treats power control as a contextual bandit because it
// "neglect[s] the impact of power consumption on temperature and
// temperature on leakage power" (§III-A, footnote 2). Our simulator can
// model exactly that coupling (sim::ThermalModel). Here a policy is
// trained in the athermal environment and evaluated in the thermal one,
// and vice versa, to measure how much the assumption costs.
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

core::ExperimentConfig base_config(bool thermal_training) {
  core::ExperimentConfig config;
  config.rounds = 60;
  config.seed = 42;
  config.processor.enable_thermal = thermal_training;
  config.eval.episode_intervals = 60;  // long enough to heat up
  return config;
}

struct Row {
  double reward = 0.0;
  double violation = 0.0;
  double power = 0.0;
};

Row evaluate(const std::vector<double>& params, bool thermal_eval) {
  core::ExperimentConfig config = base_config(false);
  core::EvalConfig eval;
  eval.processor = config.processor;
  eval.processor.enable_thermal = thermal_eval;
  eval.episode_intervals = 60;
  const core::Evaluator evaluator(config.controller, eval);
  util::RunningStats reward;
  util::RunningStats violation;
  util::RunningStats power;
  std::uint64_t seed = 1000;
  for (const auto& app : sim::splash2_suite()) {
    const auto r =
        evaluator.run_episode(evaluator.neural_policy(params), app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
    power.add(r.mean_power_w);
  }
  return Row{reward.mean(), violation.mean(), power.mean()};
}

}  // namespace

int main() {
  std::printf("== Ablation: thermal coupling (paper assumes none) ==\n\n");

  const auto apps = core::resolve(core::six_app_split());
  const auto suite = sim::splash2_suite();

  const auto athermal =
      core::run_federated(base_config(false), apps, suite, false);
  const auto thermal =
      core::run_federated(base_config(true), apps, suite, false);

  util::AsciiTable out({"train env -> eval env", "mean reward",
                        "violation rate", "mean power [W]"});
  const auto add = [&](const char* label, const Row& row) {
    out.add_row(label, {row.reward, row.violation, row.power});
  };
  add("athermal -> athermal (paper setting)",
      evaluate(athermal.global_params, false));
  add("athermal -> thermal  (assumption stressed)",
      evaluate(athermal.global_params, true));
  add("thermal  -> thermal  (oracle)",
      evaluate(thermal.global_params, true));

  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "Reading: if the athermal->thermal row is close to the oracle row,\n"
      "the paper's contextual-bandit simplification survives leakage\n"
      "heating; a large violation-rate gap would argue for a thermal\n"
      "state feature.\n");
  return 0;
}
