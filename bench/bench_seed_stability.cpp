// Meta-experiment — seed stability of the headline result.
//
// Everything in this repository is deterministic given a seed, which cuts
// both ways: a single seed could flatter the technique. This bench re-runs
// the Fig. 3 scenario-2 comparison across five seeds and reports the
// distribution of the federated-vs-local gap. The paper's qualitative
// claim should hold for every seed, not on average.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct SeedResult {
  double fed = 0.0;
  double local = 0.0;
  double local_worst = 0.0;
};

SeedResult run_seed(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.rounds = 60;
  config.seed = seed;
  config.eval.episode_intervals = 30;
  const auto apps = core::resolve(core::table2_scenarios()[1]);
  const auto suite = sim::splash2_suite();
  const auto fed = core::run_federated(config, apps, suite, true);
  const auto local = core::run_local_only(config, apps, suite, true);

  const auto curve_mean = [](const std::vector<double>& xs) {
    return util::mean(xs);
  };
  SeedResult result;
  result.fed = (curve_mean(fed.devices[0].reward) +
                curve_mean(fed.devices[1].reward)) /
               2.0;
  const double local_a = curve_mean(local.devices[0].reward);
  const double local_b = curve_mean(local.devices[1].reward);
  result.local = (local_a + local_b) / 2.0;
  result.local_worst = std::min(local_a, local_b);
  return result;
}

}  // namespace

int main() {
  std::printf("== Seed stability: scenario 2, 60 rounds, 5 seeds ==\n\n");
  util::AsciiTable out({"seed", "federated", "local mean", "local worst",
                        "fed - local"});
  util::RunningStats gap;
  bool fed_always_wins = true;
  bool one_local_always_fails = true;
  for (const std::uint64_t seed : {42u, 7u, 1234u, 99u, 2026u}) {
    const SeedResult r = run_seed(seed);
    out.add_row(std::to_string(seed),
                {r.fed, r.local, r.local_worst, r.fed - r.local});
    gap.add(r.fed - r.local);
    fed_always_wins &= (r.fed > r.local);
    one_local_always_fails &= (r.local_worst < 0.25);
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("fed - local gap: %.3f +- %.3f (min %.3f)\n", gap.mean(),
              gap.stddev(), gap.min());
  std::printf("federated > local on every seed     : %s\n",
              fed_always_wins ? "holds" : "VIOLATED");
  std::printf("one local policy degraded every seed: %s\n",
              one_local_always_fails ? "holds" : "VIOLATED");
  return 0;
}
