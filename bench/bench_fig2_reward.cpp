// Fig. 2 — Distribution of the reward signal for P_crit = 0.6 W and
// k_offset = 0.05 W over the 15 Jetson Nano frequency levels.
//
// The paper's figure plots reward as a function of power for each V/f
// level: flat at f/f_max below P_crit, a frequency-scaled ramp to zero at
// P_crit + k_offset, a common ramp to -1 at P_crit + 2*k_offset. This
// binary regenerates the exact series.
#include <cstdio>

#include "rl/reward.hpp"
#include "sim/vf_table.hpp"
#include "util/table.hpp"

int main() {
  using namespace fedpower;

  const sim::VfTable table = sim::VfTable::jetson_nano();
  const rl::PaperReward reward(0.6, 0.05, table.f_max_mhz());

  std::printf(
      "== Fig. 2: reward signal, P_crit = 0.6 W, k_offset = 0.05 W ==\n"
      "Paper: r = f/f_max below P_crit; scaled ramp to 0 at P_crit+k;\n"
      "       common ramp to -1 at P_crit+2k; -1 beyond.\n\n");

  // Power sweep columns (W). Chosen to show all four reward regimes.
  const double powers[] = {0.30, 0.50, 0.60, 0.625, 0.65, 0.675, 0.70, 0.80};

  std::vector<std::string> header = {"level", "f [MHz]"};
  for (const double p : powers)
    header.push_back("P=" + util::AsciiTable::format(p, 3));
  util::AsciiTable out(std::move(header));

  for (std::size_t l = 0; l < table.size(); ++l) {
    const sim::VfLevel& vf = table.level(l);
    std::vector<std::string> row = {
        std::to_string(l), util::AsciiTable::format(vf.freq_mhz, 1)};
    for (const double p : powers)
      row.push_back(
          util::AsciiTable::format(reward.evaluate(vf.freq_mhz, p), 3));
    out.add_row(std::move(row));
  }
  std::printf("%s\n", out.to_string().c_str());

  // Structural checks the figure displays visually.
  std::printf("checks:\n");
  std::printf("  reward(f_max, 0.60 W) = %.3f (expected 1.000)\n",
              reward.evaluate(1479.0, 0.60));
  std::printf("  reward(f_max, 0.65 W) = %.3f (expected 0.000)\n",
              reward.evaluate(1479.0, 0.65));
  std::printf("  reward(any f, 0.70 W) = %.3f (expected -1.000)\n",
              reward.evaluate(825.6, 0.70));
  return 0;
}
