// Extension — generalization to never-seen applications.
//
// The paper motivates neural policies with their ability to generalize
// across applications (§I). Here both techniques train on the twelve
// SPLASH-2 programs (six per device) and are then evaluated on 20
// synthetic applications drawn from the same workload space
// (sim::generate_suite) — none of which any device ever executed. A static
// per-app oracle (best fixed level in hindsight) bounds what is achievable.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/generator.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double reward = 0.0;
  double violation = 0.0;
  double power = 0.0;
};

Outcome evaluate(const core::Evaluator& evaluator,
                 const core::PolicyFn& policy,
                 const std::vector<sim::AppProfile>& apps) {
  util::RunningStats reward;
  util::RunningStats violation;
  util::RunningStats power;
  std::uint64_t seed = 4000;
  for (const auto& app : apps) {
    const auto r = evaluator.run_episode(policy, app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
    power.add(r.mean_power_w);
  }
  return Outcome{reward.mean(), violation.mean(), power.mean()};
}

/// Best fixed level per app, chosen with oracle knowledge.
Outcome oracle(const core::Evaluator& evaluator,
               const std::vector<sim::AppProfile>& apps) {
  util::RunningStats reward;
  util::RunningStats violation;
  util::RunningStats power;
  std::uint64_t seed = 5000;
  for (const auto& app : apps) {
    core::EvalResult best;
    best.mean_reward = -2.0;
    for (std::size_t level = 0; level < 15; ++level) {
      const auto r = evaluator.run_episode(
          [level](const sim::TelemetrySample&) { return level; }, app,
          seed);
      if (r.mean_reward > best.mean_reward) best = r;
    }
    ++seed;
    reward.add(best.mean_reward);
    violation.add(best.violation_rate);
    power.add(best.mean_power_w);
  }
  return Outcome{reward.mean(), violation.mean(), power.mean()};
}

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;

  std::printf("== Extension: generalization to 20 unseen synthetic apps ==\n");
  std::printf("Training: the 12 SPLASH-2 programs (6 per device).\n"
              "Evaluation: 20 generated programs no device ever ran.\n\n");

  const auto train_apps = core::resolve(core::six_app_split());
  util::Rng gen_rng(1234);
  const auto unseen =
      sim::generate_suite(20, "unseen", sim::AppGeneratorParams{}, gen_rng);

  const auto ours =
      core::run_federated(config, train_apps, sim::splash2_suite(), false);
  const auto sota = core::run_collab_profit(config, train_apps);

  core::EvalConfig eval_config;
  eval_config.processor = config.processor;
  eval_config.episode_intervals = 40;
  const core::Evaluator evaluator(config.controller, eval_config);

  util::AsciiTable out(
      {"policy", "mean reward", "violation rate", "mean power [W]"});
  const Outcome o_ours = evaluate(
      evaluator, evaluator.neural_policy(ours.global_params), unseen);
  out.add_row("federated neural (ours)",
              {o_ours.reward, o_ours.violation, o_ours.power});
  const Outcome o_sota = evaluate(
      evaluator, sota.policy(0, config.processor.vf_table.f_max_mhz()),
      unseen);
  out.add_row("Profit+CollabPolicy",
              {o_sota.reward, o_sota.violation, o_sota.power});
  const Outcome o_oracle = oracle(evaluator, unseen);
  out.add_row("static per-app oracle",
              {o_oracle.reward, o_oracle.violation, o_oracle.power});
  std::printf("%s\n", out.to_string().c_str());

  std::printf("Gap to oracle: ours %.0f%%, tabular %.0f%% — the neural\n"
              "policy interpolates between trained operating points, the\n"
              "table falls back to whatever its coarse bins saw.\n",
              (o_oracle.reward - o_ours.reward) / o_oracle.reward * 100.0,
              (o_oracle.reward - o_sota.reward) / o_oracle.reward * 100.0);
  return 0;
}
