// Ablation — partial participation. The paper's protocol has every client
// in every round (synchronous, N = 2). Real fleets sample a fraction of
// clients per round (McMahan et al.); this bench measures what client
// sampling costs in convergence and buys in traffic on a 6-device fleet.
#include <cstdio>

#include "core/evaluate.hpp"
#include "fleet.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double mean_reward = 0.0;
  double late_reward = 0.0;
  double violation = 0.0;
  double uplink_kb = 0.0;
};

Outcome run_with(double participation) {
  const std::size_t rounds = 80;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < 6; ++d)
    apps.push_back({suite[2 * d], suite[2 * d + 1]});

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);
  fed::InProcessTransport transport;
  fed::FederatedAveraging server(fleet.clients(), &transport);
  server.initialize(fleet.controller(0).local_parameters());
  if (participation < 1.0) server.set_participation(participation, 7);

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  Outcome outcome;
  util::RunningStats all;
  util::RunningStats late;
  util::RunningStats violations;
  for (std::size_t round = 0; round < rounds; ++round) {
    server.run_round();
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 900 + round);
    all.add(result.mean_reward);
    violations.add(result.violation_rate);
    if (round + 20 >= rounds) late.add(result.mean_reward);
  }
  outcome.mean_reward = all.mean();
  outcome.late_reward = late.mean();
  outcome.violation = violations.mean();
  outcome.uplink_kb =
      static_cast<double>(transport.stats().uplink_bytes) / 1000.0;
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Ablation: partial participation "
              "(6 devices, 2 apps each, 80 rounds) ==\n\n");
  util::AsciiTable out({"participation", "mean reward", "last-20 reward",
                        "violation rate", "uplink kB"});
  for (const double fraction : {1.0, 0.5, 1.0 / 3.0}) {
    const Outcome o = run_with(fraction);
    out.add_row(util::AsciiTable::format(fraction, 2),
                {o.mean_reward, o.late_reward, o.violation, o.uplink_kb});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("Sampling clients trades convergence speed for traffic; with\n"
              "enough rounds the sampled fleet catches up because every\n"
              "device's data still reaches the average regularly.\n");
  return 0;
}
