// Ablation — synchronous (paper) vs asynchronous federation under
// stragglers.
//
// Four devices, one of which is 4x slower than the rest. The paper's
// synchronous Algorithm 2 advances at the straggler's pace: in a fixed
// wall-clock window (measured in ticks of the fastest device) it completes
// only window/4 rounds. FedAsync-style merging (fed::AsyncFederation) lets
// the fast devices keep contributing, at the cost of stale updates.
#include <cstdio>

#include "core/evaluate.hpp"
#include "fed/async.hpp"
#include "fleet.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

std::vector<std::vector<sim::AppProfile>> fleet_apps() {
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < 4; ++d)
    apps.push_back({suite[3 * d], suite[3 * d + 1], suite[3 * d + 2]});
  return apps;
}

struct Outcome {
  double reward = 0.0;
  double violation = 0.0;
  std::size_t straggler_rounds = 0;
  std::size_t fast_rounds = 0;
};

Outcome evaluate_global(const std::vector<double>& global) {
  core::ControllerConfig config;
  core::EvalConfig eval;
  eval.episode_intervals = 30;
  const core::Evaluator evaluator(config, eval);
  util::RunningStats reward;
  util::RunningStats violation;
  std::uint64_t seed = 7000;
  for (const auto& app : sim::splash2_suite()) {
    const auto r = evaluator.run_episode(evaluator.neural_policy(global),
                                         app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
  }
  return Outcome{reward.mean(), violation.mean(), 0, 0};
}

}  // namespace

int main() {
  const std::size_t window_ticks = 48;  // fast-device round times
  std::printf("== Ablation: stragglers — synchronous vs asynchronous ==\n");
  std::printf("4 devices, device 3 is 4x slower; wall-clock window = %zu\n"
              "fast-device rounds.\n\n", window_ticks);

  util::AsciiTable out({"scheme", "eval reward", "violation rate",
                        "fast-dev rounds", "straggler rounds"});

  {
    // Synchronous: one round costs 4 ticks (the straggler's period).
    benchutil::Fleet fleet = benchutil::make_fleet(
        {core::ControllerConfig{}}, sim::ProcessorConfig{}, fleet_apps(),
        42);
    fed::InProcessTransport transport;
    fed::FederatedAveraging server(fleet.clients(), &transport);
    server.initialize(fleet.controller(0).local_parameters());
    const std::size_t rounds = window_ticks / 4;
    server.run(rounds);
    Outcome o = evaluate_global(server.global_model());
    o.fast_rounds = rounds;
    o.straggler_rounds = rounds;
    out.add_row("synchronous (paper)",
                {o.reward, o.violation, static_cast<double>(o.fast_rounds),
                 static_cast<double>(o.straggler_rounds)});
  }
  {
    benchutil::Fleet fleet = benchutil::make_fleet(
        {core::ControllerConfig{}}, sim::ProcessorConfig{}, fleet_apps(),
        42);
    fed::InProcessTransport transport;
    fed::AsyncConfig config;
    config.mixing_rate = 0.4;
    config.staleness_power = 1.0;
    fed::AsyncFederation server(fleet.clients(), {1, 1, 1, 4}, &transport,
                                config);
    server.initialize(fleet.controller(0).local_parameters());
    server.run_ticks(window_ticks);
    Outcome o = evaluate_global(server.global_model());
    o.fast_rounds = window_ticks;
    o.straggler_rounds = window_ticks / 4;
    out.add_row("async, staleness-weighted",
                {o.reward, o.violation, static_cast<double>(o.fast_rounds),
                 static_cast<double>(o.straggler_rounds)});
    std::printf("async staleness: mean %.2f, max %.0f server versions\n\n",
                server.stats().mean_staleness,
                server.stats().max_staleness);
  }

  std::printf("%s\n", out.to_string().c_str());
  std::printf("In the same wall-clock window the async fleet performs 4x\n"
              "the local training of the synchronous one (fast devices\n"
              "never idle); the staleness discount keeps the slow device's\n"
              "outdated updates from dragging the global model backwards.\n"
              "With generous windows both converge to the same quality —\n"
              "the async advantage is wall-clock time to reach it.\n");
  return 0;
}
