// Ablation — contextual bandit vs full Q-learning.
//
// The paper models power control as a contextual bandit: "it is sufficient
// to identify the optimal frequency for the current state since the effect
// of frequency selection is immediately observable in the next timestep"
// (§III-A, footnote 2). This bench tests that simplification empirically:
// the same network/hyperparameters trained (a) on immediate rewards
// (gamma = 0, the paper) and (b) with bootstrapped targets
// r + gamma * max Q(s',·) and a target network, for gamma in {0.5, 0.9}.
// If the paper is right, discounting buys nothing and costs stability.
#include <cstdio>

#include "core/evaluate.hpp"
#include "rl/neural_q_agent.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double reward = 0.0;
  double violation = 0.0;
};

Outcome evaluate_greedy(const core::Evaluator& evaluator,
                        const core::PolicyFn& policy) {
  util::RunningStats reward;
  util::RunningStats violation;
  std::uint64_t seed = 600;
  for (const auto& app : sim::splash2_suite()) {
    const auto r = evaluator.run_episode(policy, app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
  }
  return Outcome{reward.mean(), violation.mean()};
}

Outcome run_q_agent(double gamma, std::size_t steps) {
  sim::ProcessorConfig processor_config;
  sim::Processor processor(processor_config, util::Rng{11});
  sim::RandomWorkload workload(sim::splash2_suite());
  processor.set_workload(&workload);

  core::ControllerConfig controller_config;
  rl::NeuralQConfig q_config;
  q_config.base = controller_config.agent;
  q_config.base.tau_decay = 0.001;  // converge within the budget
  q_config.gamma = gamma;
  auto agent = std::make_shared<rl::NeuralQAgent>(q_config, util::Rng{12});
  const rl::StateFeaturizer featurizer(controller_config.featurizer);
  const rl::PaperReward reward(0.6, 0.05, 1479.0);

  sim::TelemetrySample sample = processor.run_interval(0.5);
  for (std::size_t t = 0; t < steps; ++t) {
    const std::vector<double> s = featurizer.featurize(sample);
    const std::size_t a = agent->select_action(s);
    processor.set_level(a);
    const sim::TelemetrySample next = processor.run_interval(0.5);
    agent->record(s, a, reward(next), featurizer.featurize(next));
    sample = next;
  }

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);
  const core::PolicyFn policy =
      [agent, featurizer](const sim::TelemetrySample& s) {
        return agent->greedy_action(featurizer.featurize(s));
      };
  return evaluate_greedy(evaluator, policy);
}

Outcome run_bandit(std::size_t steps) {
  sim::ProcessorConfig processor_config;
  sim::Processor processor(processor_config, util::Rng{11});
  sim::RandomWorkload workload(sim::splash2_suite());
  processor.set_workload(&workload);
  core::ControllerConfig controller_config;
  controller_config.agent.tau_decay = 0.001;
  core::PowerController controller(controller_config, &processor,
                                   util::Rng{12});
  controller.run_steps(steps);

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);
  return evaluate_greedy(
      evaluator, evaluator.neural_policy(controller.local_parameters()));
}

}  // namespace

int main() {
  const std::size_t steps = 5000;
  std::printf("== Ablation: contextual bandit vs bootstrapped Q-learning ==\n");
  std::printf("Single device, all 12 apps, %zu training steps, greedy eval "
              "per app.\n\n", steps);
  util::AsciiTable out({"objective", "mean eval reward", "violation rate"});
  const Outcome bandit = run_bandit(steps);
  out.add_row("immediate reward (paper, gamma=0)",
              {bandit.reward, bandit.violation});
  for (const double gamma : {0.5, 0.9}) {
    const Outcome q = run_q_agent(gamma, steps);
    out.add_row("Q-learning gamma=" + util::AsciiTable::format(gamma, 1),
                {q.reward, q.violation});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "Reading: the three objectives land within noise of each other —\n"
      "DVFS rewards are fully revealed one interval after the action, so\n"
      "bootstrapped targets carry no extra information and the cheaper\n"
      "bandit objective (no successor states, no target network) is the\n"
      "right engineering choice, as the paper argues in footnote 2.\n");
  return 0;
}
