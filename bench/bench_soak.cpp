// Deterministic chaos soak (DESIGN.md §13): a days-equivalent federated
// run with every fault layer armed at once — transport drop/delay/
// truncate/disconnect, availability churn with seeded dwell times,
// workload shocks, sign-flip attackers — against the recovery machinery:
// per-round deadlines with straggler demotion, defense screening with
// churn-safe re-admission, FPCK checkpoints with corruption fallback.
//
// The soak is segmented into kill/resume cycles: each segment runs to a
// kill point that lands on a snapshot boundary, the process state is
// discarded (exactly what SIGKILL leaves behind: the rotation directory
// and nothing else), and the next segment resumes from the rotation.
// Before one resume the newest snapshot is deliberately bit-flipped, so
// recovery must fall back to the older entry and re-execute the gap.
//
// Invariants asserted per epoch and at the end (exit 1 on any failure):
//  * monotone rounds    — every segment's per-round history has exactly
//                         the target length; resumes never rewind or skip.
//  * honest quarantine  — no honest (uncompromised) device ends below the
//                         quarantine threshold: churn absences and
//                         straggler demotions produce NO defense
//                         observation, so availability cannot poison
//                         reputation.
//  * bounded RSS        — peak resident memory stays under a fixed budget
//                         across all cycles (the lazy fleet keeps the
//                         working set per-round sized).
//  * chaos-seed replay  — the segmented, kill/resumed, corruption-recovered
//                         run ends bit-identical to one uninterrupted run,
//                         at 1 and at 4 worker threads; the serve pipeline
//                         under the same chaos is worker-count invariant.
//
// Results land in BENCH_soak.json.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/rotation.hpp"
#include "core/experiment.hpp"
#include "sim/splash2.hpp"

namespace {

using namespace fedpower;

/// Current resident set size in KiB (Linux /proc; 0 when unavailable).
std::size_t current_rss_kib() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t rss = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &rss);
      break;
    }
  }
  std::fclose(status);
  return rss;
}

/// Peak resident set size in KiB over the process lifetime.
std::size_t peak_rss_kib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss);
}

constexpr std::size_t kDevices = 12;
constexpr std::size_t kRounds = 320;
// At least one optimizer update per device per round (the agent trains
// every optimize_interval = 20 interactions): a round below that cadence
// uploads an unchanged model, and a fleet of no-op uploads collapses the
// defense's norm envelope until every real update looks oversized.
constexpr std::size_t kStepsPerRound = 20;
constexpr double kDvfsIntervalS = 60.0;  // one DVFS decision per minute
constexpr std::size_t kCkptEvery = 7;
constexpr std::size_t kPeakRssBudgetKib = 1536 * 1024;  // 1.5 GiB

std::vector<std::vector<sim::AppProfile>> soak_apps() {
  const std::vector<sim::AppProfile> suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    apps[d].push_back(suite[d % suite.size()]);
    apps[d].push_back(suite[(d + 5) % suite.size()]);
  }
  return apps;
}

/// The full chaos recipe: every fault layer on, every recovery layer on.
core::ExperimentConfig soak_config(std::size_t rounds,
                                   std::size_t num_threads) {
  core::ExperimentConfig config;
  config.rounds = rounds;
  config.seed = 42;
  config.num_threads = num_threads;
  config.lazy_fleet = true;
  config.controller.steps_per_round = kStepsPerRound;
  config.controller.dvfs_interval_s = kDvfsIntervalS;
  config.sampling.fraction = 0.75;
  config.sampling.min_clients = 4;
  config.sampling.seed = 7;
  config.quorum = 1;
  config.defense.enabled = true;
  config.faults.attack = fed::UploadAttack::kSignFlip;
  config.faults.fraction = 0.2;  // 3 of 12 devices flip their uploads
  config.faults.start_round = 10;
  config.faults.transport.drop_probability = 0.02;
  config.faults.transport.delay_probability = 0.05;
  config.faults.transport.injected_delay_s = 0.05;
  config.faults.transport.truncate_probability = 0.01;
  config.faults.transport.disconnect_probability = 0.01;
  config.faults.transport.seed = 7;
  config.chaos.enabled = true;
  config.chaos.seed = 2026;
  config.chaos.leave_probability = 0.05;
  config.chaos.rejoin_probability = 0.5;
  config.chaos.shock_probability = 0.1;
  // A clean downlink+uplink pair stays well under budget; one injected
  // 0.05 s delay pushes the client over and demotes it for the round.
  config.deadline_s = 0.05;
  return config;
}

bool same_bytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Flips one bit in the middle of the newest snapshot: the CRC check must
/// reject it and load_latest() must fall back to the older entry.
bool corrupt_newest_snapshot(const std::string& dir) {
  const ckpt::SnapshotRotation rotation(dir, 3);
  const std::vector<std::uint64_t> seqs = rotation.sequences();
  if (seqs.empty()) return false;
  const std::string path = rotation.path_for(seqs.back());
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size <= 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, size / 2, SEEK_SET);
  const int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x10, f);
  std::fclose(f);
  return true;
}

struct SoakOutcome {
  core::FederatedRunResult result;
  bool monotone = true;          ///< every epoch history had target length
  std::size_t resumes = 0;       ///< kill/resume cycles completed
  bool corrupted_fallback = false;  ///< bit-flip recovery exercised
};

/// Runs the soak as kill/resume segments sharing one rotation directory.
/// Each boundary discards all in-process state — the resume must rebuild
/// the run from the snapshot alone. `corrupt_at` picks the boundary whose
/// newest snapshot gets bit-flipped first.
SoakOutcome run_segmented(std::size_t num_threads, const std::string& dir,
                          const std::vector<std::size_t>& kill_points,
                          std::size_t corrupt_at) {
  std::filesystem::remove_all(dir);
  SoakOutcome outcome;
  const auto device_apps = soak_apps();
  const std::vector<sim::AppProfile> no_eval;
  for (std::size_t seg = 0; seg <= kill_points.size(); ++seg) {
    const std::size_t target =
        seg < kill_points.size() ? kill_points[seg] : kRounds;
    core::ExperimentConfig config = soak_config(target, num_threads);
    config.checkpoint.every_rounds = kCkptEvery;
    config.checkpoint.dir = dir;
    config.checkpoint.keep = 3;
    if (seg > 0) {
      config.checkpoint.resume_from = dir;
      ++outcome.resumes;
      if (seg == corrupt_at)
        outcome.corrupted_fallback = corrupt_newest_snapshot(dir);
    }
    outcome.result = core::run_federated(config, device_apps, no_eval,
                                         /*eval_each_round=*/false);
    // Epoch invariant: the per-round history is exactly `target` long —
    // the resumed round counter never rewound and never skipped.
    outcome.monotone =
        outcome.monotone &&
        outcome.result.robustness.screened_per_round.size() == target &&
        outcome.result.robustness.stragglers_per_round.size() == target;
    std::printf(
        "  [%zu threads] epoch %zu: rounds=%zu stragglers=%zu "
        "quarantined(max)=%zu rss=%zu KiB\n",
        num_threads, seg, target, outcome.result.robustness.total_stragglers,
        outcome.result.robustness.max_quarantined, current_rss_kib());
  }
  return outcome;
}

/// No honest device may end quarantined: churn absences and straggler
/// demotions feed the defense no observation, so availability alone can
/// never push an honest reputation below the threshold.
std::size_t honest_quarantined(const core::FederatedRunResult& result,
                               double threshold) {
  std::size_t count = 0;
  for (std::size_t d = 0; d < result.robustness.final_reputation.size();
       ++d) {
    const bool compromised =
        std::find(result.robustness.compromised.begin(),
                  result.robustness.compromised.end(),
                  d) != result.robustness.compromised.end();
    if (!compromised && result.robustness.final_reputation[d] < threshold)
      ++count;
  }
  return count;
}

/// Serve-pipeline phase: the same chaos schedule and deadline through the
/// sharded server must be worker-count invariant (defense stays off — the
/// serve path routes verdicts through the shared screening primitives
/// instead of the full pipeline).
bool serve_phase_invariant() {
  const auto device_apps = soak_apps();
  const std::vector<sim::AppProfile> no_eval;
  std::vector<core::FederatedRunResult> results;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    core::ExperimentConfig config = soak_config(40, /*num_threads=*/workers);
    config.defense.enabled = false;
    config.serve.enabled = true;
    config.serve.workers = workers;
    results.push_back(core::run_federated(config, device_apps, no_eval,
                                          /*eval_each_round=*/false));
  }
  return same_bytes(results[0].global_params, results[1].global_params) &&
         results[0].robustness.total_stragglers ==
             results[1].robustness.total_stragglers;
}

}  // namespace

int main() {
  std::printf("== chaos soak: multi-layer faults + kill/resume ==\n");
  const double simulated_days = static_cast<double>(kRounds) *
                                static_cast<double>(kStepsPerRound) *
                                kDvfsIntervalS / 86400.0;
  std::printf("simulated time: %.2f days (%zu rounds x %zu steps x %.0fs)\n",
              simulated_days, kRounds, kStepsPerRound, kDvfsIntervalS);

  // lint: nondet-ok(wall-clock timing of the run, never fed into a seed)
  const auto start = std::chrono::steady_clock::now();

  // Reference: one uninterrupted run, serial, no checkpointing.
  const auto device_apps = soak_apps();
  const std::vector<sim::AppProfile> no_eval;
  std::printf("reference run (uninterrupted, 1 thread)...\n");
  const core::FederatedRunResult reference = core::run_federated(
      soak_config(kRounds, 1), device_apps, no_eval, false);

  // Kill points land on snapshot boundaries (multiples of the cadence);
  // the bit-flip hits the resume into the third segment.
  const std::vector<std::size_t> kill_points = {70, 140, 210};
  std::printf("segmented soak, 1 thread (corrupting one snapshot)...\n");
  const SoakOutcome serial = run_segmented(1, "soak_ckpt_1t", kill_points,
                                           /*corrupt_at=*/2);
  std::printf("segmented soak, 4 threads...\n");
  const SoakOutcome threaded = run_segmented(4, "soak_ckpt_4t", kill_points,
                                             /*corrupt_at=*/2);

  std::printf("serve-pipeline phase (workers 1 vs 4)...\n");
  const bool serve_invariant = serve_phase_invariant();

  const double wall_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: nondet-ok(timing)
          .count();

  const bool monotone = serial.monotone && threaded.monotone;
  const std::size_t honest_bad =
      honest_quarantined(serial.result,
                         core::ExperimentConfig{}.defense.quarantine_threshold);
  const bool quarantine_bounded = honest_bad == 0;
  const std::size_t rss_kib = peak_rss_kib();
  const bool rss_bounded = rss_kib > 0 && rss_kib < kPeakRssBudgetKib;
  const bool replay_1t =
      same_bytes(serial.result.global_params, reference.global_params);
  const bool replay_4t =
      same_bytes(threaded.result.global_params, reference.global_params);
  const bool fallback =
      serial.corrupted_fallback && threaded.corrupted_fallback;
  const std::size_t cycles = serial.resumes;

  std::printf(
      "monotone rounds: %s | honest quarantined: %zu | peak rss: %zu KiB "
      "(budget %zu) | replay 1t: %s | replay 4t: %s | corrupt fallback: %s "
      "| serve invariant: %s | %zu kill/resume cycles | %.1fs wall\n",
      monotone ? "yes" : "NO", honest_bad, rss_kib, kPeakRssBudgetKib,
      replay_1t ? "yes" : "NO", replay_4t ? "yes" : "NO",
      fallback ? "yes" : "NO", serve_invariant ? "yes" : "NO", cycles,
      wall_seconds);
  std::printf(
      "chaos schedule: %llu departures, %llu rejoins, %llu shocks, "
      "%zu straggler demotions, %llu aborted rounds\n",
      static_cast<unsigned long long>(serial.result.robustness.chaos.departures),
      static_cast<unsigned long long>(serial.result.robustness.chaos.rejoins),
      static_cast<unsigned long long>(serial.result.robustness.chaos.shocks),
      serial.result.robustness.total_stragglers,
      static_cast<unsigned long long>(serial.result.robustness.aborted_rounds));

  const bool passed = monotone && quarantine_bounded && rss_bounded &&
                      replay_1t && replay_4t && fallback && serve_invariant &&
                      cycles >= 3;

  std::FILE* out = std::fopen("BENCH_soak.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"soak\",\n");
    std::fprintf(out, "  \"simulated_days\": %.3f,\n", simulated_days);
    std::fprintf(out, "  \"rounds\": %zu,\n", kRounds);
    std::fprintf(out, "  \"devices\": %zu,\n", kDevices);
    std::fprintf(out, "  \"kill_resume_cycles\": %zu,\n", cycles);
    std::fprintf(out, "  \"corrupt_fallback_exercised\": %s,\n",
                 fallback ? "true" : "false");
    std::fprintf(out, "  \"chaos\": {\"departures\": %llu, \"rejoins\": %llu, "
                 "\"shocks\": %llu, \"max_offline\": %llu},\n",
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.departures),
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.rejoins),
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.shocks),
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.max_offline));
    std::fprintf(out, "  \"stragglers\": %zu,\n",
                 serial.result.robustness.total_stragglers);
    std::fprintf(out, "  \"aborted_rounds\": %llu,\n",
                 static_cast<unsigned long long>(
                     serial.result.robustness.aborted_rounds));
    std::fprintf(out, "  \"invariants\": {\n");
    std::fprintf(out, "    \"monotone_rounds\": %s,\n",
                 monotone ? "true" : "false");
    std::fprintf(out, "    \"honest_quarantined\": %zu,\n", honest_bad);
    std::fprintf(out, "    \"peak_rss_kib\": %zu,\n", rss_kib);
    std::fprintf(out, "    \"rss_budget_kib\": %zu,\n", kPeakRssBudgetKib);
    std::fprintf(out, "    \"replay_identical_1t\": %s,\n",
                 replay_1t ? "true" : "false");
    std::fprintf(out, "    \"replay_identical_4t\": %s,\n",
                 replay_4t ? "true" : "false");
    std::fprintf(out, "    \"serve_worker_invariant\": %s\n",
                 serve_invariant ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"wall_seconds\": %.1f,\n", wall_seconds);
    std::fprintf(out, "  \"passed\": %s\n", passed ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_soak.json\n");
  }

  std::filesystem::remove_all("soak_ckpt_1t");
  std::filesystem::remove_all("soak_ckpt_4t");
  return passed ? 0 : 1;
}
