// Deterministic chaos soak (DESIGN.md §13): a days-equivalent federated
// run with every fault layer armed at once — transport drop/delay/
// truncate/disconnect, availability churn with seeded dwell times,
// workload shocks, sign-flip attackers — against the recovery machinery:
// per-round deadlines with straggler demotion, defense screening with
// churn-safe re-admission, FPCK checkpoints with corruption fallback.
//
// The soak is segmented into kill/resume cycles: each segment runs to a
// kill point that lands on a snapshot boundary, the process state is
// discarded (exactly what SIGKILL leaves behind: the rotation directory
// and nothing else), and the next segment resumes from the rotation.
// Before one resume the newest snapshot is deliberately bit-flipped, so
// recovery must fall back to the older entry and re-execute the gap.
//
// Invariants asserted per epoch and at the end (exit 1 on any failure):
//  * monotone rounds    — every segment's per-round history has exactly
//                         the target length; resumes never rewind or skip.
//  * honest quarantine  — no honest (uncompromised) device ends below the
//                         quarantine threshold: churn absences and
//                         straggler demotions produce NO defense
//                         observation, so availability cannot poison
//                         reputation.
//  * bounded RSS        — peak resident memory stays under a fixed budget
//                         across all cycles (the lazy fleet keeps the
//                         working set per-round sized).
//  * chaos-seed replay  — the segmented, kill/resumed, corruption-recovered
//                         run ends bit-identical to one uninterrupted run,
//                         at 1 and at 4 worker threads; the serve pipeline
//                         under the same chaos is worker-count invariant.
//
// Results land in BENCH_soak.json.
//
// --tcp mode (DESIGN.md §14) runs the fault stack over REAL sockets
// instead: scripted-delta client PROCESSES (fork+exec of this binary with
// --tcp-client) talk to the EpollFrontEnd through the seeded TcpChaosProxy
// — connection refusals, mid-stream resets, mid-frame truncations, write
// stalls — while the driver SIGKILLs clients mid-round and respawns them.
// Every layer of the recovery stack is live: client reconnect/backoff with
// the session-resume handshake, server-side first-arrival dedup and the
// round-replay guard, idle/half-open reaping. The gate is the same as the
// in-process soak: deterministic-mode committed model bytes bit-identical
// to an in-process reference at 1, 2 and 4 shard workers. Results land in
// BENCH_tcp_soak.json.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "chaos/tcp_chaos_proxy.hpp"
#include "ckpt/rotation.hpp"
#include "core/experiment.hpp"
#include "fed/codec.hpp"
#include "fed/tcp_transport.hpp"
#include "serve/client.hpp"
#include "serve/epoll_server.hpp"
#include "serve/server.hpp"
#include "sim/splash2.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedpower;

/// Current resident set size in KiB (Linux /proc; 0 when unavailable).
std::size_t current_rss_kib() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t rss = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &rss);
      break;
    }
  }
  std::fclose(status);
  return rss;
}

/// Peak resident set size in KiB over the process lifetime.
std::size_t peak_rss_kib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss);
}

constexpr std::size_t kDevices = 12;
constexpr std::size_t kRounds = 320;
// At least one optimizer update per device per round (the agent trains
// every optimize_interval = 20 interactions): a round below that cadence
// uploads an unchanged model, and a fleet of no-op uploads collapses the
// defense's norm envelope until every real update looks oversized.
constexpr std::size_t kStepsPerRound = 20;
constexpr double kDvfsIntervalS = 60.0;  // one DVFS decision per minute
constexpr std::size_t kCkptEvery = 7;
constexpr std::size_t kPeakRssBudgetKib = 1536 * 1024;  // 1.5 GiB

std::vector<std::vector<sim::AppProfile>> soak_apps() {
  const std::vector<sim::AppProfile> suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    apps[d].push_back(suite[d % suite.size()]);
    apps[d].push_back(suite[(d + 5) % suite.size()]);
  }
  return apps;
}

/// The full chaos recipe: every fault layer on, every recovery layer on.
core::ExperimentConfig soak_config(std::size_t rounds,
                                   std::size_t num_threads) {
  core::ExperimentConfig config;
  config.rounds = rounds;
  config.seed = 42;
  config.num_threads = num_threads;
  config.lazy_fleet = true;
  config.controller.steps_per_round = kStepsPerRound;
  config.controller.dvfs_interval_s = kDvfsIntervalS;
  config.sampling.fraction = 0.75;
  config.sampling.min_clients = 4;
  config.sampling.seed = 7;
  config.quorum = 1;
  config.defense.enabled = true;
  config.faults.attack = fed::UploadAttack::kSignFlip;
  config.faults.fraction = 0.2;  // 3 of 12 devices flip their uploads
  config.faults.start_round = 10;
  config.faults.transport.drop_probability = 0.02;
  config.faults.transport.delay_probability = 0.05;
  config.faults.transport.injected_delay_s = 0.05;
  config.faults.transport.truncate_probability = 0.01;
  config.faults.transport.disconnect_probability = 0.01;
  config.faults.transport.seed = 7;
  config.chaos.enabled = true;
  config.chaos.seed = 2026;
  config.chaos.leave_probability = 0.05;
  config.chaos.rejoin_probability = 0.5;
  config.chaos.shock_probability = 0.1;
  // A clean downlink+uplink pair stays well under budget; one injected
  // 0.05 s delay pushes the client over and demotes it for the round.
  config.deadline_s = 0.05;
  return config;
}

bool same_bytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Flips one bit in the middle of the newest snapshot: the CRC check must
/// reject it and load_latest() must fall back to the older entry.
bool corrupt_newest_snapshot(const std::string& dir) {
  const ckpt::SnapshotRotation rotation(dir, 3);
  const std::vector<std::uint64_t> seqs = rotation.sequences();
  if (seqs.empty()) return false;
  const std::string path = rotation.path_for(seqs.back());
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size <= 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, size / 2, SEEK_SET);
  const int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x10, f);
  std::fclose(f);
  return true;
}

struct SoakOutcome {
  core::FederatedRunResult result;
  bool monotone = true;          ///< every epoch history had target length
  std::size_t resumes = 0;       ///< kill/resume cycles completed
  bool corrupted_fallback = false;  ///< bit-flip recovery exercised
};

/// Runs the soak as kill/resume segments sharing one rotation directory.
/// Each boundary discards all in-process state — the resume must rebuild
/// the run from the snapshot alone. `corrupt_at` picks the boundary whose
/// newest snapshot gets bit-flipped first.
SoakOutcome run_segmented(std::size_t num_threads, const std::string& dir,
                          const std::vector<std::size_t>& kill_points,
                          std::size_t corrupt_at) {
  std::filesystem::remove_all(dir);
  SoakOutcome outcome;
  const auto device_apps = soak_apps();
  const std::vector<sim::AppProfile> no_eval;
  for (std::size_t seg = 0; seg <= kill_points.size(); ++seg) {
    const std::size_t target =
        seg < kill_points.size() ? kill_points[seg] : kRounds;
    core::ExperimentConfig config = soak_config(target, num_threads);
    config.checkpoint.every_rounds = kCkptEvery;
    config.checkpoint.dir = dir;
    config.checkpoint.keep = 3;
    if (seg > 0) {
      config.checkpoint.resume_from = dir;
      ++outcome.resumes;
      if (seg == corrupt_at)
        outcome.corrupted_fallback = corrupt_newest_snapshot(dir);
    }
    outcome.result = core::run_federated(config, device_apps, no_eval,
                                         /*eval_each_round=*/false);
    // Epoch invariant: the per-round history is exactly `target` long —
    // the resumed round counter never rewound and never skipped.
    outcome.monotone =
        outcome.monotone &&
        outcome.result.robustness.screened_per_round.size() == target &&
        outcome.result.robustness.stragglers_per_round.size() == target;
    std::printf(
        "  [%zu threads] epoch %zu: rounds=%zu stragglers=%zu "
        "quarantined(max)=%zu rss=%zu KiB\n",
        num_threads, seg, target, outcome.result.robustness.total_stragglers,
        outcome.result.robustness.max_quarantined, current_rss_kib());
  }
  return outcome;
}

/// No honest device may end quarantined: churn absences and straggler
/// demotions feed the defense no observation, so availability alone can
/// never push an honest reputation below the threshold.
std::size_t honest_quarantined(const core::FederatedRunResult& result,
                               double threshold) {
  std::size_t count = 0;
  for (std::size_t d = 0; d < result.robustness.final_reputation.size();
       ++d) {
    const bool compromised =
        std::find(result.robustness.compromised.begin(),
                  result.robustness.compromised.end(),
                  d) != result.robustness.compromised.end();
    if (!compromised && result.robustness.final_reputation[d] < threshold)
      ++count;
  }
  return count;
}

/// Serve-pipeline phase: the same chaos schedule and deadline through the
/// sharded server must be worker-count invariant (defense stays off — the
/// serve path routes verdicts through the shared screening primitives
/// instead of the full pipeline).
bool serve_phase_invariant() {
  const auto device_apps = soak_apps();
  const std::vector<sim::AppProfile> no_eval;
  std::vector<core::FederatedRunResult> results;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    core::ExperimentConfig config = soak_config(40, /*num_threads=*/workers);
    config.defense.enabled = false;
    config.serve.enabled = true;
    config.serve.workers = workers;
    results.push_back(core::run_federated(config, device_apps, no_eval,
                                          /*eval_each_round=*/false));
  }
  return same_bytes(results[0].global_params, results[1].global_params) &&
         results[0].robustness.total_stragglers ==
             results[1].robustness.total_stragglers;
}

// ---------------------------------------------------------------------------
// --tcp mode: the soak driven over real sockets through the chaos proxy.
// ---------------------------------------------------------------------------

// Small on purpose: the TCP soak measures protocol survival, not learning.
// Deltas and participation are pure hash functions of (seed, round,
// client), so a SIGKILLed client process recomputes its exact upload from
// nothing but the fetched version — process state is never load-bearing.
constexpr std::size_t kTcpDevices = 6;
constexpr std::size_t kTcpRounds = 20;
constexpr std::size_t kTcpParams = 256;
constexpr std::uint64_t kTcpSeed = 4242;
constexpr std::uint64_t kTcpProxySeed = 77;
constexpr double kTcpIdleTimeoutS = 0.4;

double scripted_delta(std::uint64_t seed, std::uint64_t round,
                      std::uint64_t client, std::uint64_t i) {
  std::uint64_t s = seed ^ ((round + 1) * 0x9e3779b97f4a7c15ULL) ^
                    ((client + 1) * 0xbf58476d1ce4e5b9ULL) ^
                    ((i + 1) * 0x94d049bb133111ebULL);
  const std::uint64_t h = util::splitmix64(s);
  // Uniform in [-0.005, 0.005): bounded drift, never non-finite.
  return (static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5) * 0.01;
}

/// The round's participant draw — the same pure function in the driver,
/// the reference and every client process.
std::vector<std::size_t> tcp_participants(std::uint64_t seed,
                                          std::uint64_t round) {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < kTcpDevices; ++c) {
    std::uint64_t s = seed ^ ((round + 1) * 0xd6e8feb86659fd93ULL) ^
                      ((c + 1) * 0xa5a5a5a5a5a5a5a5ULL);
    if ((util::splitmix64(s) & 3) != 0) out.push_back(c);  // ~75 %
  }
  if (out.empty()) out.push_back(round % kTcpDevices);
  return out;
}

/// What the committed model must be: the identical upload schedule driven
/// through an in-process server (worker count is irrelevant by the PR 7
/// determinism contract, so one reference covers every TCP worker count).
/// The codec round-trip mirrors what a TCP client sees in its fetch reply,
/// keeping the submitted payload bytes — and therefore the committed
/// model — bit-identical to the socket path.
std::vector<double> tcp_reference_model() {
  serve::ShardedServer server(kTcpDevices);
  server.initialize(std::vector<double>(kTcpParams, 0.0));
  const fed::ModelCodec& codec = server.codec();
  for (std::uint64_t r = 0; r < kTcpRounds; ++r) {
    const std::vector<std::size_t> participants =
        tcp_participants(kTcpSeed, r);
    server.begin_round(participants);
    const std::vector<std::uint8_t> fetched =
        codec.encode(server.global_model());
    for (const std::size_t c : participants) {
      std::vector<double> local = codec.decode(fetched);
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] += scripted_delta(kTcpSeed, r, c, i);
      server.submit(c, r, codec.encode(local), 1.0);
    }
    server.drain();
    server.commit_round(1);
  }
  return server.global_model();
}

/// Child process body (--tcp-client <port> <id>): fetch, recompute the
/// scripted upload for the current round, deliver it through whatever the
/// chaos proxy does to the connection, repeat until the server's version
/// reaches the round target. Stateless by construction — a respawn after
/// SIGKILL picks up exactly where the fetch says the federation is.
int tcp_client_main(std::uint16_t port, std::uint32_t id) {
  serve::ServeClientConfig config;
  config.port = port;
  config.client_id = id;
  config.connect_timeout_s = 2.0;
  config.io_timeout_s = 5.0;
  config.max_attempts = 400;
  config.backoff_initial_s = 0.001;
  config.backoff_multiplier = 2.0;
  config.backoff_max_s = 0.02;
  config.jitter_seed = kTcpSeed ^ ((id + 1) * 0x9e3779b97f4a7c15ULL);
  serve::ServeClient client(config);
  std::uint64_t uploaded_round = ~std::uint64_t{0};
  try {
    for (;;) {
      const serve::FetchResult fetched = client.fetch();
      if (fetched.version >= kTcpRounds) return 0;
      const std::uint64_t r = fetched.version;
      if (r == uploaded_round) {
        // Our upload is in; poll until the round commits.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      const std::vector<std::size_t> participants =
          tcp_participants(kTcpSeed, r);
      if (std::find(participants.begin(), participants.end(), id) !=
          participants.end()) {
        const fed::ModelCodec& codec = fed::Float32Codec::instance();
        std::vector<double> local = codec.decode(fetched.model);
        for (std::size_t i = 0; i < local.size(); ++i)
          local[i] += scripted_delta(kTcpSeed, r, id, i);
        client.set_last_acked_round(r);
        // false = the round committed while we were reconnecting (our
        // earlier send landed); either way round r is settled for us.
        (void)client.upload(r, 1, codec.encode(local));
      }
      uploaded_round = r;
    }
  } catch (const fed::TransportError& error) {
    std::fprintf(stderr, "tcp client %u: %s\n", id, error.what());
    return 1;
  }
}

pid_t spawn_tcp_client(std::uint16_t port, std::size_t id) {
  // argv is fully formatted BEFORE fork: only async-signal-safe calls may
  // run between fork and exec in a multithreaded parent.
  char port_arg[16];
  char id_arg[16];
  std::snprintf(port_arg, sizeof port_arg, "%u", port);
  std::snprintf(id_arg, sizeof id_arg, "%zu", id);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl("/proc/self/exe", "bench_soak", "--tcp-client", port_arg, id_arg,
            static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

/// Opens a raw connection to the front end, writes a frame header plus a
/// few payload bytes and goes silent: a half-open socket that only the
/// idle reaper can clear. Returns the fd (closed by the caller at
/// teardown).
int inject_half_frame(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  // Header promises 100 bytes; only a direction byte and two more follow.
  const std::uint8_t junk[7] = {100, 0, 0, 0, 0, 0xAB, 0xCD};
  (void)::send(fd, junk, sizeof junk, MSG_NOSIGNAL);
  return fd;
}

bool wait_for_draw(const serve::EpollFrontEnd& front_end, std::size_t want,
                   double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +  // lint: nondet-ok(watchdog deadline; timing never feeds results)
      std::chrono::duration<double>(timeout_s);
  while (front_end.round_distinct() < want) {
    if (std::chrono::steady_clock::now() > deadline)  // lint: nondet-ok(watchdog deadline; timing never feeds results)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

struct TcpRunOutcome {
  std::vector<double> model;
  bool completed = false;        ///< every round drew fully and committed
  bool reputation_clean = true;  ///< all accepts => all reputations at cap
  std::size_t kills = 0;
  std::size_t duplicates = 0;
  std::size_t sessions_resumed = 0;
  std::size_t idle_reaped = 0;
  std::size_t truncated_frames = 0;
  std::size_t proxy_connections = 0;
  std::size_t proxy_refusals = 0;
  std::size_t proxy_resets = 0;
  std::size_t proxy_truncations = 0;
  std::size_t proxy_stalls = 0;
};

/// One full TCP soak at the given worker count: server + front end +
/// chaos proxy + client processes + mid-round SIGKILLs.
TcpRunOutcome tcp_run(std::size_t workers) {
  TcpRunOutcome outcome;

  serve::ServeConfig config;
  config.workers = workers;
  config.idle_timeout_s = kTcpIdleTimeoutS;
  serve::ShardedServer server(kTcpDevices, config);
  server.initialize(std::vector<double>(kTcpParams, 0.0));
  serve::EpollFrontEnd front_end(&server);

  chaos::TcpChaosConfig chaos_config;
  chaos_config.seed = kTcpProxySeed;
  chaos_config.refuse_probability = 0.08;
  chaos_config.reset_probability = 0.20;  // heaviest: each reset forces a
  chaos_config.truncate_probability = 0.08;  // reconnect, feeding more
  chaos_config.stall_probability = 0.08;     // connections to the schedule
  chaos_config.reset_min_bytes = 8;
  chaos_config.reset_window_bytes = 900;
  chaos_config.stall_min_s = 0.002;
  chaos_config.stall_max_s = 0.02;
  chaos::TcpChaosProxy proxy(front_end.port(), chaos_config);

  // Round 0 must be open before any client can fetch version 0 and
  // upload; frames outside a round belong to no round.
  front_end.begin_round(tcp_participants(kTcpSeed, 0));

  std::vector<pid_t> pids(kTcpDevices);
  for (std::size_t id = 0; id < kTcpDevices; ++id)
    pids[id] = spawn_tcp_client(proxy.port(), id);

  int half_open_fd = -1;
  bool ok = true;
  for (std::uint64_t r = 0; r < kTcpRounds && ok; ++r) {
    const std::vector<std::size_t> participants =
        tcp_participants(kTcpSeed, r);
    if (r == 2) half_open_fd = inject_half_frame(front_end.port());
    // Every 6th round: once the round is visibly in flight, SIGKILL one
    // client — possibly mid-frame — and respawn it. The respawn rejoins
    // via the resume handshake and recomputes its upload from the fetch.
    if (r % 6 == 5) {
      if (!wait_for_draw(front_end, 1, 60.0)) {
        ok = false;
        break;
      }
      const std::size_t victim = r % kTcpDevices;
      ::kill(pids[victim], SIGKILL);
      int status = 0;
      ::waitpid(pids[victim], &status, 0);
      pids[victim] = spawn_tcp_client(proxy.port(), victim);
      ++outcome.kills;
    }
    if (!wait_for_draw(front_end, participants.size(), 60.0)) {
      ok = false;
      break;
    }
    try {
      if (r + 1 < kTcpRounds) {
        // Atomic commit+begin: no fetch can observe the bumped version
        // while no round is open, so no upload ever lands in the void.
        front_end.commit_then_begin(1, tcp_participants(kTcpSeed, r + 1));
      } else {
        front_end.commit_round(1);
      }
    } catch (const fed::QuorumError&) {
      ok = false;  // full draw waited => a quorum abort is a bug
    }
  }

  // Clients exit once a fetch shows the final version; reap with a
  // deadline so a wedged child fails the run instead of hanging it.
  const auto reap_deadline =
      std::chrono::steady_clock::now() +  // lint: nondet-ok(watchdog deadline; timing never feeds results)
      std::chrono::seconds(20);
  for (std::size_t id = 0; id < kTcpDevices; ++id) {
    for (;;) {
      int status = 0;
      const pid_t done = ::waitpid(pids[id], &status, WNOHANG);
      if (done == pids[id]) {
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ok = false;
        break;
      }
      if (std::chrono::steady_clock::now() > reap_deadline) {  // lint: nondet-ok(watchdog deadline; timing never feeds results)
        ::kill(pids[id], SIGKILL);
        ::waitpid(pids[id], &status, 0);
        ok = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Give the idle reaper a beat to clear the injected half-open socket.
  for (int spins = 0; front_end.idle_reaped() == 0 && spins < 300; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  if (half_open_fd >= 0) ::close(half_open_fd);

  proxy.stop();
  outcome.sessions_resumed = front_end.sessions_resumed();
  outcome.idle_reaped = front_end.idle_reaped();
  outcome.truncated_frames = front_end.truncated_frames();
  front_end.stop();
  // The front end's loop thread was the orchestrator; after stop() the
  // bench thread takes over and establishes quiescence before reading.
  server.drain();
  outcome.model = server.global_model();
  outcome.completed = ok;
  outcome.duplicates = server.stats().duplicates;
  for (std::size_t c = 0; c < kTcpDevices; ++c)
    if (server.client_record(c).reputation != 1.0)
      outcome.reputation_clean = false;
  outcome.proxy_connections = proxy.connections();
  outcome.proxy_refusals = proxy.refusals();
  outcome.proxy_resets = proxy.resets();
  outcome.proxy_truncations = proxy.truncations();
  outcome.proxy_stalls = proxy.stalls();
  return outcome;
}

int tcp_soak_main() {
  std::printf("== tcp chaos soak: socket faults + kill/resume ==\n");
  // lint: nondet-ok(wall-clock timing of the run, never fed into a seed)
  const auto start = std::chrono::steady_clock::now();

  const std::vector<double> reference = tcp_reference_model();
  const std::size_t worker_counts[] = {1, 2, 4};
  TcpRunOutcome outcomes[3];
  bool all_identical = true;
  bool all_completed = true;
  bool reputation_clean = true;
  std::size_t total_resumed = 0;
  std::size_t total_reaped = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("tcp soak, %zu workers...\n", worker_counts[i]);
    outcomes[i] = tcp_run(worker_counts[i]);
    const bool identical = same_bytes(outcomes[i].model, reference);
    all_identical = all_identical && identical;
    all_completed = all_completed && outcomes[i].completed;
    reputation_clean = reputation_clean && outcomes[i].reputation_clean;
    total_resumed += outcomes[i].sessions_resumed;
    total_reaped += outcomes[i].idle_reaped;
    std::printf(
        "  [%zu workers] identical=%s completed=%s kills=%zu dup=%zu "
        "resumes=%zu reaped=%zu truncated=%zu | proxy: conn=%zu refuse=%zu "
        "reset=%zu trunc=%zu stall=%zu\n",
        worker_counts[i], identical ? "yes" : "NO",
        outcomes[i].completed ? "yes" : "NO", outcomes[i].kills,
        outcomes[i].duplicates, outcomes[i].sessions_resumed,
        outcomes[i].idle_reaped, outcomes[i].truncated_frames,
        outcomes[i].proxy_connections, outcomes[i].proxy_refusals,
        outcomes[i].proxy_resets, outcomes[i].proxy_truncations,
        outcomes[i].proxy_stalls);
  }
  const double wall_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: nondet-ok(timing)
          .count();

  // Every client process performs the resume handshake on its first
  // connect, so resumes >= devices per run; kills and reconnects push it
  // higher. The half-open injection must have been reaped in every run.
  const bool resume_exercised =
      total_resumed >= 3 * kTcpDevices && total_reaped >= 3;
  const bool passed = all_identical && all_completed && reputation_clean &&
                      resume_exercised;

  std::printf(
      "tcp soak: identical(1/2/4)=%s completed=%s reputation clean=%s "
      "resume+reap exercised=%s | %.1fs wall\n",
      all_identical ? "yes" : "NO", all_completed ? "yes" : "NO",
      reputation_clean ? "yes" : "NO", resume_exercised ? "yes" : "NO",
      wall_seconds);

  std::FILE* out = std::fopen("BENCH_tcp_soak.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"tcp_soak\",\n");
    std::fprintf(out, "  \"rounds\": %zu,\n", kTcpRounds);
    std::fprintf(out, "  \"devices\": %zu,\n", kTcpDevices);
    std::fprintf(out, "  \"params\": %zu,\n", kTcpParams);
    std::fprintf(out, "  \"runs\": [\n");
    for (std::size_t i = 0; i < 3; ++i) {
      std::fprintf(
          out,
          "    {\"workers\": %zu, \"identical\": %s, \"completed\": %s, "
          "\"kills\": %zu, \"duplicates\": %zu, \"sessions_resumed\": %zu, "
          "\"idle_reaped\": %zu, \"truncated_frames\": %zu, "
          "\"proxy\": {\"connections\": %zu, \"refusals\": %zu, "
          "\"resets\": %zu, \"truncations\": %zu, \"stalls\": %zu}}%s\n",
          worker_counts[i], same_bytes(outcomes[i].model, reference)
                                ? "true" : "false",
          outcomes[i].completed ? "true" : "false", outcomes[i].kills,
          outcomes[i].duplicates, outcomes[i].sessions_resumed,
          outcomes[i].idle_reaped, outcomes[i].truncated_frames,
          outcomes[i].proxy_connections, outcomes[i].proxy_refusals,
          outcomes[i].proxy_resets, outcomes[i].proxy_truncations,
          outcomes[i].proxy_stalls, i + 1 < 3 ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"reputation_clean\": %s,\n",
                 reputation_clean ? "true" : "false");
    std::fprintf(out, "  \"resume_exercised\": %s,\n",
                 resume_exercised ? "true" : "false");
    std::fprintf(out, "  \"wall_seconds\": %.1f,\n", wall_seconds);
    std::fprintf(out, "  \"passed\": %s\n", passed ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_tcp_soak.json\n");
  }
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--tcp-client") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: bench_soak --tcp-client <port> <id>\n");
      return 2;
    }
    return tcp_client_main(
        static_cast<std::uint16_t>(std::strtoul(argv[2], nullptr, 10)),
        static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10)));
  }
  if (argc >= 2 && std::strcmp(argv[1], "--tcp") == 0) return tcp_soak_main();

  std::printf("== chaos soak: multi-layer faults + kill/resume ==\n");
  const double simulated_days = static_cast<double>(kRounds) *
                                static_cast<double>(kStepsPerRound) *
                                kDvfsIntervalS / 86400.0;
  std::printf("simulated time: %.2f days (%zu rounds x %zu steps x %.0fs)\n",
              simulated_days, kRounds, kStepsPerRound, kDvfsIntervalS);

  // lint: nondet-ok(wall-clock timing of the run, never fed into a seed)
  const auto start = std::chrono::steady_clock::now();

  // Reference: one uninterrupted run, serial, no checkpointing.
  const auto device_apps = soak_apps();
  const std::vector<sim::AppProfile> no_eval;
  std::printf("reference run (uninterrupted, 1 thread)...\n");
  const core::FederatedRunResult reference = core::run_federated(
      soak_config(kRounds, 1), device_apps, no_eval, false);

  // Kill points land on snapshot boundaries (multiples of the cadence);
  // the bit-flip hits the resume into the third segment.
  const std::vector<std::size_t> kill_points = {70, 140, 210};
  std::printf("segmented soak, 1 thread (corrupting one snapshot)...\n");
  const SoakOutcome serial = run_segmented(1, "soak_ckpt_1t", kill_points,
                                           /*corrupt_at=*/2);
  std::printf("segmented soak, 4 threads...\n");
  const SoakOutcome threaded = run_segmented(4, "soak_ckpt_4t", kill_points,
                                             /*corrupt_at=*/2);

  std::printf("serve-pipeline phase (workers 1 vs 4)...\n");
  const bool serve_invariant = serve_phase_invariant();

  const double wall_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: nondet-ok(timing)
          .count();

  const bool monotone = serial.monotone && threaded.monotone;
  const std::size_t honest_bad =
      honest_quarantined(serial.result,
                         core::ExperimentConfig{}.defense.quarantine_threshold);
  const bool quarantine_bounded = honest_bad == 0;
  const std::size_t rss_kib = peak_rss_kib();
  const bool rss_bounded = rss_kib > 0 && rss_kib < kPeakRssBudgetKib;
  const bool replay_1t =
      same_bytes(serial.result.global_params, reference.global_params);
  const bool replay_4t =
      same_bytes(threaded.result.global_params, reference.global_params);
  const bool fallback =
      serial.corrupted_fallback && threaded.corrupted_fallback;
  const std::size_t cycles = serial.resumes;

  std::printf(
      "monotone rounds: %s | honest quarantined: %zu | peak rss: %zu KiB "
      "(budget %zu) | replay 1t: %s | replay 4t: %s | corrupt fallback: %s "
      "| serve invariant: %s | %zu kill/resume cycles | %.1fs wall\n",
      monotone ? "yes" : "NO", honest_bad, rss_kib, kPeakRssBudgetKib,
      replay_1t ? "yes" : "NO", replay_4t ? "yes" : "NO",
      fallback ? "yes" : "NO", serve_invariant ? "yes" : "NO", cycles,
      wall_seconds);
  std::printf(
      "chaos schedule: %llu departures, %llu rejoins, %llu shocks, "
      "%zu straggler demotions, %llu aborted rounds\n",
      static_cast<unsigned long long>(serial.result.robustness.chaos.departures),
      static_cast<unsigned long long>(serial.result.robustness.chaos.rejoins),
      static_cast<unsigned long long>(serial.result.robustness.chaos.shocks),
      serial.result.robustness.total_stragglers,
      static_cast<unsigned long long>(serial.result.robustness.aborted_rounds));

  const bool passed = monotone && quarantine_bounded && rss_bounded &&
                      replay_1t && replay_4t && fallback && serve_invariant &&
                      cycles >= 3;

  std::FILE* out = std::fopen("BENCH_soak.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"soak\",\n");
    std::fprintf(out, "  \"simulated_days\": %.3f,\n", simulated_days);
    std::fprintf(out, "  \"rounds\": %zu,\n", kRounds);
    std::fprintf(out, "  \"devices\": %zu,\n", kDevices);
    std::fprintf(out, "  \"kill_resume_cycles\": %zu,\n", cycles);
    std::fprintf(out, "  \"corrupt_fallback_exercised\": %s,\n",
                 fallback ? "true" : "false");
    std::fprintf(out, "  \"chaos\": {\"departures\": %llu, \"rejoins\": %llu, "
                 "\"shocks\": %llu, \"max_offline\": %llu},\n",
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.departures),
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.rejoins),
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.shocks),
                 static_cast<unsigned long long>(
                     serial.result.robustness.chaos.max_offline));
    std::fprintf(out, "  \"stragglers\": %zu,\n",
                 serial.result.robustness.total_stragglers);
    std::fprintf(out, "  \"aborted_rounds\": %llu,\n",
                 static_cast<unsigned long long>(
                     serial.result.robustness.aborted_rounds));
    std::fprintf(out, "  \"invariants\": {\n");
    std::fprintf(out, "    \"monotone_rounds\": %s,\n",
                 monotone ? "true" : "false");
    std::fprintf(out, "    \"honest_quarantined\": %zu,\n", honest_bad);
    std::fprintf(out, "    \"peak_rss_kib\": %zu,\n", rss_kib);
    std::fprintf(out, "    \"rss_budget_kib\": %zu,\n", kPeakRssBudgetKib);
    std::fprintf(out, "    \"replay_identical_1t\": %s,\n",
                 replay_1t ? "true" : "false");
    std::fprintf(out, "    \"replay_identical_4t\": %s,\n",
                 replay_4t ? "true" : "false");
    std::fprintf(out, "    \"serve_worker_invariant\": %s\n",
                 serve_invariant ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"wall_seconds\": %.1f,\n", wall_seconds);
    std::fprintf(out, "  \"passed\": %s\n", passed ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_soak.json\n");
  }

  std::filesystem::remove_all("soak_ckpt_1t");
  std::filesystem::remove_all("soak_ckpt_4t");
  return passed ? 0 : 1;
}
