// §IV-C — Runtime overhead of the power controller.
//
// Paper figures (on a Cortex-A57 @ <= 1.479 GHz): 29 ms mean controller
// latency (5.9 % of the 500 ms control interval), 2.8 kB per model
// transfer, ~100 kB replay-buffer storage. We measure the same quantities
// on the build machine with google-benchmark; absolute times differ from
// the Jetson's, the static byte counts match exactly.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/collab_policy.hpp"
#include "baselines/profit.hpp"
#include "core/controller.hpp"
#include "fed/federation.hpp"
#include "nn/serialize.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"

namespace {

using namespace fedpower;

rl::NeuralAgentConfig paper_agent_config() {
  return rl::NeuralAgentConfig{};  // Table I defaults
}

void BM_PolicyInference(benchmark::State& state) {
  rl::NeuralBanditAgent agent(paper_agent_config(), util::Rng{1});
  const std::vector<double> features = {0.5, 0.45, 0.55, 0.3, 0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(agent.predict(features));
}
BENCHMARK(BM_PolicyInference);

void BM_ActionSelection(benchmark::State& state) {
  rl::NeuralBanditAgent agent(paper_agent_config(), util::Rng{2});
  const std::vector<double> features = {0.5, 0.45, 0.55, 0.3, 0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(agent.select_action(features));
}
BENCHMARK(BM_ActionSelection);

void BM_TrainStep(benchmark::State& state) {
  // One gradient update on a full 128-sample batch (the H-th step's work).
  rl::NeuralBanditAgent agent(paper_agent_config(), util::Rng{3});
  util::Rng env(4);
  const std::vector<double> features = {0.5, 0.45, 0.55, 0.3, 0.4};
  for (int i = 0; i < 512; ++i)
    agent.record(features, env.uniform_index(15), env.uniform(-1.0, 1.0));
  for (auto _ : state) benchmark::DoNotOptimize(agent.train_step());
}
BENCHMARK(BM_TrainStep);

void BM_FullControllerStep(benchmark::State& state) {
  // Inference + simulation interval + reward + record (+ amortized
  // training): the per-interval latency the paper's 29 ms refers to,
  // minus the real DVFS syscall.
  sim::ProcessorConfig proc_config;
  sim::Processor processor(proc_config, util::Rng{5});
  sim::SingleAppWorkload workload(*sim::splash2_app("fft"));
  processor.set_workload(&workload);
  core::ControllerConfig config;
  core::PowerController controller(config, &processor, util::Rng{6});
  for (auto _ : state) benchmark::DoNotOptimize(controller.step());
}
BENCHMARK(BM_FullControllerStep);

void BM_ModelSerialization(benchmark::State& state) {
  rl::NeuralBanditAgent agent(paper_agent_config(), util::Rng{7});
  const std::vector<double> params = agent.parameters();
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::encode_parameters(params));
}
BENCHMARK(BM_ModelSerialization);

void BM_FederatedAggregation(benchmark::State& state) {
  // Server-side cost of one unweighted FedAvg step for N clients.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> models(n, std::vector<double>(687, 0.5));
  for (auto _ : state)
    benchmark::DoNotOptimize(fed::average_unweighted(models));
}
BENCHMARK(BM_FederatedAggregation)->Arg(2)->Arg(8)->Arg(32);

void BM_ProfitStep(benchmark::State& state) {
  // The tabular baseline's decision+update cost, for comparison.
  baselines::ProfitAgent agent(baselines::ProfitConfig{}, util::Rng{8});
  const std::vector<double> features = {0.5, 0.45, 0.8, 20.0};
  for (auto _ : state) {
    const std::size_t a = agent.select_action(features);
    agent.record(features, a, 0.5);
  }
}
BENCHMARK(BM_ProfitStep);

}  // namespace

int main(int argc, char** argv) {
  using namespace fedpower;
  std::printf("== SS IV-C: runtime overhead ==\n");
  std::printf("Paper: 29 ms controller latency (5.9%% of the 500 ms "
              "interval),\n2.8 kB per transfer, ~100 kB replay buffer.\n\n");

  const rl::NeuralAgentConfig agent_config;
  rl::NeuralBanditAgent agent(agent_config, util::Rng{1});
  const std::size_t payload = nn::payload_size(agent.param_count());
  const rl::ReplayBuffer buffer(agent_config.replay_capacity,
                                agent_config.state_dim);
  std::printf("static footprints:\n");
  std::printf("  policy network parameters : %zu\n", agent.param_count());
  std::printf("  bytes per model transfer  : %zu (%.2f kB; paper 2.8 kB)\n",
              payload, static_cast<double>(payload) / 1000.0);
  std::printf("  replay buffer storage     : %zu B (%.0f kB; paper ~100 kB)\n",
              buffer.storage_bytes(),
              static_cast<double>(buffer.storage_bytes()) / 1000.0);
  const baselines::ProfitConfig profit_config;
  std::printf("  CollabPolicy table upload : %zu B per round (for contrast)\n",
              baselines::policy_table_bytes(
                  baselines::profit_discretizer(profit_config)
                      .state_count()));
  std::printf("\nlatency microbenchmarks (build machine, not Cortex-A57):\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
