// Table III — Comparison with the state of the art (Profit [6] +
// CollabPolicy [11]) for the Table II scenarios, averaged over all three
// scenarios: mean execution time, IPS and power during evaluation.
//
// Paper values: Ours 24.24 s / 0.92e6 IPS / 0.52 W vs
// Profit+CollabPolicy 30.38 s / 0.79e6 IPS / 0.47 W — i.e. 20 % faster,
// 17 % higher throughput, both under the 0.6 W constraint.
// (Absolute IPS differs from ours because the substrate differs; the shape
// — who wins, power compliance — is the reproduction target.)
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace fedpower;

  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;

  const auto eval_apps = sim::splash2_suite();

  util::RunningStats ours_time;
  util::RunningStats ours_ips;
  util::RunningStats ours_power;
  util::RunningStats sota_time;
  util::RunningStats sota_ips;
  util::RunningStats sota_power;

  std::printf("== Table III: ours vs Profit+CollabPolicy "
              "(average over the 3 scenarios) ==\n\n");

  for (const core::Scenario& scenario : core::table2_scenarios()) {
    const auto apps = core::resolve(scenario);

    const auto ours =
        core::run_federated(config, apps, eval_apps, false);
    const auto sota = core::run_collab_profit(config, apps);

    core::EvalConfig eval;
    eval.processor = config.processor;
    const core::Evaluator evaluator(config.controller, eval);

    const auto ours_metrics = core::evaluate_apps(
        evaluator, evaluator.neural_policy(ours.global_params), eval_apps,
        config.seed + 1);
    // The paper evaluates the policies "on each device"; average both
    // devices' CollabPolicy controllers.
    for (std::size_t d = 0; d < sota.clients.size(); ++d) {
      const auto m = core::evaluate_apps(
          evaluator,
          sota.policy(d, config.processor.vf_table.f_max_mhz()), eval_apps,
          config.seed + 2 + d);
      for (const auto& metric : m) {
        sota_time.add(metric.exec_time_s);
        sota_ips.add(metric.ips);
        sota_power.add(metric.power_w);
      }
    }
    for (const auto& metric : ours_metrics) {
      ours_time.add(metric.exec_time_s);
      ours_ips.add(metric.ips);
      ours_power.add(metric.power_w);
    }
    std::printf("scenario %s done\n", scenario.name.c_str());
  }

  util::AsciiTable out({"category", "paper: ours", "paper: P+CP", "ours",
                        "Profit+CollabPolicy", "delta"});
  const double dt = util::percent_change(sota_time.mean(), ours_time.mean());
  const double di = util::percent_change(sota_ips.mean(), ours_ips.mean());
  std::string dt_cell = util::AsciiTable::format(dt, 0);
  dt_cell += "%";
  std::string di_cell = "+";
  di_cell += util::AsciiTable::format(di, 0);
  di_cell += "%";
  out.add_row({"Exec. time [s]", "24.24 (-20%)", "30.38",
               util::AsciiTable::format(ours_time.mean(), 2),
               util::AsciiTable::format(sota_time.mean(), 2), dt_cell});
  out.add_row({"IPS [x1e9]", "0.92e6 (+17%)", "0.79e6",
               util::AsciiTable::format(ours_ips.mean() / 1e9, 3),
               util::AsciiTable::format(sota_ips.mean() / 1e9, 3), di_cell});
  out.add_row({"Power [W]", "0.52", "0.47",
               util::AsciiTable::format(ours_power.mean(), 3),
               util::AsciiTable::format(sota_power.mean(), 3), "-"});
  std::printf("\n%s\n", out.to_string().c_str());

  std::printf("Shape checks (paper):\n");
  std::printf("  ours faster on average            : %s (%.0f%%)\n",
              ours_time.mean() < sota_time.mean() ? "holds" : "VIOLATED", -dt);
  std::printf("  ours higher IPS on average        : %s (+%.0f%%)\n",
              ours_ips.mean() > sota_ips.mean() ? "holds" : "VIOLATED", di);
  std::printf("  both under the 0.6 W constraint   : %s (%.2f / %.2f W)\n",
              (ours_power.mean() < 0.6 && sota_power.mean() < 0.6)
                  ? "holds"
                  : "VIOLATED",
              ours_power.mean(), sota_power.mean());
  std::printf("  ours uses more of the power budget: %s\n",
              ours_power.mean() > sota_power.mean() ? "holds" : "VIOLATED");
  return 0;
}
