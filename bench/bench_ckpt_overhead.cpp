// Checkpointing overhead (DESIGN.md §9).
//
// Runs the same federated workload with checkpointing disabled, then at
// successively denser snapshot cadences (every 8 / 4 / 1 round(s)), and
// reports the wall-clock cost the durable snapshots add on top of
// training. Also verifies the crash-safety contract end to end: the final
// global weights with checkpointing on must be bit-identical to the run
// without it (writing a snapshot reads state, never perturbs it), and a
// resume from the densest rotation must reproduce the same weights again.
// Results land in BENCH_ckpt_overhead.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/splash2.hpp"

namespace {

using namespace fedpower;

constexpr std::size_t kDevices = 8;
constexpr std::size_t kRounds = 40;
constexpr std::uint64_t kSeed = 2025;

std::vector<std::vector<sim::AppProfile>> fleet_apps() {
  const std::vector<sim::AppProfile> suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d)
    apps[d].push_back(suite[d % suite.size()]);
  return apps;
}

struct Run {
  std::size_t every_rounds = 0;  ///< 0 = checkpointing off
  double seconds = 0.0;
  std::uint64_t snapshot_bytes = 0;  ///< size of one container on disk
  std::vector<double> final_weights;
};

Run run_at(std::size_t every_rounds, const std::string& dir,
           const std::vector<std::vector<sim::AppProfile>>& apps) {
  core::ExperimentConfig config;
  config.rounds = kRounds;
  config.seed = kSeed;
  config.checkpoint.every_rounds = every_rounds;
  config.checkpoint.dir = dir;
  config.checkpoint.keep = 2;

  Run run;
  run.every_rounds = every_rounds;
  // lint: nondet-ok(wall-clock timing of the run, never fed into a seed)
  const auto start = std::chrono::steady_clock::now();
  const core::FederatedRunResult result =
      core::run_federated(config, apps, {}, /*eval_each_round=*/false);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() -  // lint: nondet-ok(timing)
                    start)
                    .count();
  run.final_weights = result.global_params;
  if (every_rounds != 0)
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.is_regular_file())
        run.snapshot_bytes = static_cast<std::uint64_t>(entry.file_size());
  return run;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const auto apps = fleet_apps();
  const fs::path base = fs::temp_directory_path() / "fedpower_bench_ckpt";
  fs::remove_all(base);

  std::printf("checkpoint overhead: %zu devices, %zu rounds, eval off\n",
              kDevices, kRounds);
  const std::vector<std::size_t> cadences = {0, 8, 4, 1};
  std::vector<Run> runs;
  for (const std::size_t every : cadences) {
    const std::string dir = (base / std::to_string(every)).string();
    runs.push_back(run_at(every, dir, apps));
    const Run& run = runs.back();
    if (every == 0)
      std::printf("  checkpoints off        wall=%.3fs (baseline)\n",
                  run.seconds);
    else
      std::printf("  every %2zu round(s)      wall=%.3fs  overhead=%+.1f%%  "
                  "snapshot=%llu bytes\n",
                  every, run.seconds,
                  100.0 * (run.seconds / runs.front().seconds - 1.0),
                  static_cast<unsigned long long>(run.snapshot_bytes));
  }

  bool identical = true;
  for (const Run& run : runs)
    if (run.final_weights != runs.front().final_weights) identical = false;
  std::printf("checkpointing leaves results bit-identical: %s\n",
              identical ? "yes" : "NO — SNAPSHOTS PERTURB THE RUN");

  // Resume from the densest rotation: rerun the tail and require the same
  // final weights once more.
  core::ExperimentConfig resume;
  resume.rounds = kRounds;
  resume.seed = kSeed;
  resume.checkpoint.resume_from = (base / "1").string();
  const auto resumed =
      core::run_federated(resume, apps, {}, /*eval_each_round=*/false);
  const bool resume_identical =
      resumed.global_params == runs.front().final_weights;
  std::printf("resume from round %zu reproduces the run: %s\n",
              kRounds - 1,  // keep=2: newest snapshot precedes the last round
              resume_identical ? "yes" : "NO — RESUME DIVERGED");

  std::FILE* out = std::fopen("BENCH_ckpt_overhead.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"ckpt_overhead\",\n");
    std::fprintf(out, "  \"devices\": %zu,\n", kDevices);
    std::fprintf(out, "  \"rounds\": %zu,\n", kRounds);
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(kSeed));
    std::fprintf(out, "  \"bit_identical_with_checkpointing\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"resume_reproduces_run\": %s,\n",
                 resume_identical ? "true" : "false");
    std::fprintf(out, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i)
      std::fprintf(out,
                   "    {\"every_rounds\": %zu, \"wall_seconds\": %.4f, "
                   "\"overhead_vs_off\": %.4f, \"snapshot_bytes\": %llu}%s\n",
                   runs[i].every_rounds, runs[i].seconds,
                   runs[i].seconds / runs.front().seconds - 1.0,
                   static_cast<unsigned long long>(runs[i].snapshot_bytes),
                   i + 1 < runs.size() ? "," : "");
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_ckpt_overhead.json\n");
  }
  fs::remove_all(base);
  return identical && resume_identical ? 0 : 1;
}
