// Fig. 4 — Average frequency selected under the local-only and federated
// policies during evaluation for scenario 2 of Table II (mean +- standard
// deviation per round).
//
// The paper's observation: the local-only policy of the device trained on
// ocean/radix (memory-bound) selects systematically higher frequencies than
// both the other device's policy and the federated policy — which is why it
// violates the power constraint on compute-bound evaluation apps.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace fedpower;

  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;
  config.eval.episode_intervals = 30;

  const auto scenario = core::table2_scenarios()[1];  // scenario 2
  const auto apps = core::resolve(scenario);
  const auto eval_apps = sim::splash2_suite();

  const auto fed = core::run_federated(config, apps, eval_apps, true);
  const auto local = core::run_local_only(config, apps, eval_apps, true);

  std::printf("== Fig. 4: frequency selection during evaluation "
              "(scenario 2) ==\n");
  std::printf("Paper: local-only policy on the ocean/radix device selects\n"
              "higher frequencies than the water-trained device and the\n"
              "federated policy.\n\n");

  util::AsciiTable out({"round", "fed f [MHz]", "fed std", "locA f [MHz]",
                        "locA std", "locB f [MHz]", "locB std", "eval app"});
  for (std::size_t r = 9; r < config.rounds; r += 10) {
    out.add_row({std::to_string(r + 1),
                 util::AsciiTable::format(fed.devices[0].mean_freq_mhz[r], 1),
                 util::AsciiTable::format(fed.devices[0].stddev_freq_mhz[r], 1),
                 util::AsciiTable::format(local.devices[0].mean_freq_mhz[r], 1),
                 util::AsciiTable::format(local.devices[0].stddev_freq_mhz[r],
                                          1),
                 util::AsciiTable::format(local.devices[1].mean_freq_mhz[r], 1),
                 util::AsciiTable::format(local.devices[1].stddev_freq_mhz[r],
                                          1),
                 fed.eval_app_per_round[r]});
  }
  std::printf("%s\n", out.to_string().c_str());

  const double fed_f = util::mean(fed.devices[0].mean_freq_mhz);
  const double loc_a = util::mean(local.devices[0].mean_freq_mhz);
  const double loc_b = util::mean(local.devices[1].mean_freq_mhz);
  std::printf("Mean selected frequency over all rounds:\n");
  std::printf("  federated           : %7.1f MHz\n", fed_f);
  std::printf("  local dev A (water) : %7.1f MHz\n", loc_a);
  std::printf("  local dev B (ocean/radix, the aggressive one): %7.1f MHz\n",
              loc_b);
  std::printf("Shape check (paper): local dev B > federated -> %s\n",
              loc_b > fed_f ? "holds" : "VIOLATED");
  return 0;
}
