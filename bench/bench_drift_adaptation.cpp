// Extension — adapting to workload change (the paper's own motivation:
// "changes in the workload, user preferences or ambient conditions").
//
// A device trains on memory-bound apps (ocean/radix) until its temperature
// schedule has fully decayed, then the workload flips to compute-bound
// water codes. The stock controller keeps exploiting its stale
// "f_max is safe" policy and burns the power budget; with drift adaptation
// (rl::DriftMonitor + reheat) the reward drop re-opens exploration and the
// controller re-converges.
#include <cstdio>

#include "core/controller.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct PhaseStats {
  double reward = 0.0;
  double violation = 0.0;
};

struct Outcome {
  PhaseStats before;         // steady state pre-shift
  PhaseStats early_after;    // first 200 steps post-shift
  PhaseStats mid_after;      // steps 200..600 post-shift
  PhaseStats late_after;     // steps 600..1400 post-shift
  std::size_t detections = 0;
};

Outcome run_with(bool adaptation) {
  core::ControllerConfig config;
  config.agent.tau_decay = 0.002;  // fully decayed well before the shift
  config.drift_adaptation = adaptation;
  config.drift.warmup = 100;
  config.drift.cooldown = 1200;
  config.drift.drop_threshold = 0.4;
  config.reheat_tau = 0.3;

  sim::ProcessorConfig processor_config;
  sim::Processor processor(processor_config, util::Rng{5});
  sim::RandomWorkload memory_phase(
      {*sim::splash2_app("ocean"), *sim::splash2_app("radix")});
  sim::RandomWorkload compute_phase(
      {*sim::splash2_app("water-ns"), *sim::splash2_app("water-sp")});
  processor.set_workload(&memory_phase);
  core::PowerController controller(config, &processor, util::Rng{6});

  const auto measure = [&](std::size_t steps) {
    PhaseStats stats;
    util::RunningStats reward;
    std::size_t violations = 0;
    for (std::size_t i = 0; i < steps; ++i) {
      const sim::TelemetrySample s = controller.step();
      reward.add(controller.last_reward());
      if (s.true_power_w > config.p_crit_w) ++violations;
    }
    stats.reward = reward.mean();
    stats.violation =
        static_cast<double>(violations) / static_cast<double>(steps);
    return stats;
  };

  Outcome outcome;
  measure(2800);                       // learn the memory-bound regime
  outcome.before = measure(200);       // steady state
  processor.set_workload(&compute_phase);  // the world changes
  processor.reset_app();
  outcome.early_after = measure(200);
  outcome.mid_after = measure(400);
  outcome.late_after = measure(800);
  outcome.detections = controller.drift_detections();
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Extension: workload shift at step 3000 "
              "(ocean/radix -> water) ==\n\n");
  util::AsciiTable out({"controller", "pre-shift r", "r (0-200)",
                        "r (200-600)", "r (600-1400)", "late violations",
                        "drift detections"});
  for (const bool adaptation : {false, true}) {
    const Outcome o = run_with(adaptation);
    out.add_row(adaptation ? "with drift adaptation" : "stock (paper)",
                {o.before.reward, o.early_after.reward, o.mid_after.reward,
                 o.late_after.reward, o.late_after.violation,
                 static_cast<double>(o.detections)});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("Both controllers crash when the workload flips (the old\n"
              "policy runs compute-bound code at memory-bound frequencies);\n"
              "the adaptive one detects the reward collapse, re-heats its\n"
              "softmax temperature and re-converges, while the stock\n"
              "controller recovers only as slowly as fresh samples displace\n"
              "stale ones in its replay buffer.\n");
  return 0;
}
