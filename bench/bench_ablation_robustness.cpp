// Ablation — Byzantine robustness. The paper's §I threat model worries
// about malicious participants; with plain federated averaging a *single*
// poisoned device steers the global DVFS policy anywhere it wants (e.g.
// "always f_max", burning every device's power budget). Coordinate-median
// and trimmed-mean aggregation bound that influence.
//
// Setup: 5 devices on disjoint workload shards; one of them uploads an
// adversarially scaled model every round. We compare the three aggregation
// rules on the clean devices' evaluation reward.
// A second failure mode rides along: client *dropout*. Real edge fleets
// lose devices to network faults constantly; the dropout ablation below
// injects seeded transport faults and shows the round loop aggregating
// over the survivors (FedAvg with partial participation) instead of dying.
#include <cstdio>

#include "core/evaluate.hpp"
#include "fed/fault_injection.hpp"
#include "fleet.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

/// Wraps a controller and replaces its upload with a hostile model:
/// the honest parameters scaled and flipped, which under plain averaging
/// drags the global model far outside the useful range.
class ByzantineClient final : public fed::FederatedClient {
 public:
  explicit ByzantineClient(fed::FederatedClient* inner) : inner_(inner) {}

  void receive_global(std::span<const double> params) override {
    inner_->receive_global(params);
  }
  std::vector<double> local_parameters() const override {
    std::vector<double> poisoned = inner_->local_parameters();
    for (double& p : poisoned) p *= -25.0;
    return poisoned;
  }
  void run_local_round() override { inner_->run_local_round(); }

 private:
  fed::FederatedClient* inner_;
};

struct Outcome {
  double mean_reward = 0.0;
  double violation = 0.0;
};

Outcome run_with(fed::AggregationMode mode) {
  const std::size_t rounds = 60;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < 5; ++d)
    apps.push_back({suite[(2 * d) % 12], suite[(2 * d + 1) % 12]});

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);
  ByzantineClient attacker(&fleet.controller(fleet.size() - 1));
  std::vector<fed::FederatedClient*> clients = fleet.clients();
  clients.back() = &attacker;  // device 4 turns hostile

  fed::InProcessTransport transport;
  fed::FederatedAveraging server(clients, &transport, mode);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  util::RunningStats reward;
  util::RunningStats violations;
  for (std::size_t round = 0; round < rounds; ++round) {
    server.run_round();
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 500 + round);
    reward.add(result.mean_reward);
    violations.add(result.violation_rate);
  }
  return Outcome{reward.mean(), violations.mean()};
}

struct DropoutOutcome {
  double mean_reward = 0.0;
  std::size_t dropped_total = 0;
  std::size_t failed_rounds = 0;
  std::vector<double> final_global;
};

/// 5 clean devices federating over a fault-injecting transport: each
/// transfer is lost with drop_probability; rounds aggregate over the
/// survivors and abort (without advancing) only when nobody survives.
DropoutOutcome run_with_dropout(double drop_probability,
                                std::uint64_t fault_seed) {
  const std::size_t rounds = 60;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < 5; ++d)
    apps.push_back({suite[(2 * d) % 12], suite[(2 * d + 1) % 12]});

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);

  fed::InProcessTransport inner;
  fed::FaultInjectionConfig fault_config;
  fault_config.drop_probability = drop_probability;
  fault_config.seed = fault_seed;
  fed::FaultInjectingTransport transport(&inner, fault_config);
  fed::FederatedAveraging server(fleet.clients(), &transport);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  DropoutOutcome outcome;
  util::RunningStats reward;
  for (std::size_t round = 0; round < rounds; ++round) {
    try {
      outcome.dropped_total += server.run_round().dropped.size();
    } catch (const fed::QuorumError&) {
      ++outcome.failed_rounds;  // nobody survived; retry next round
    }
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 500 + round);
    reward.add(result.mean_reward);
  }
  outcome.mean_reward = reward.mean();
  outcome.final_global = server.global_model();
  return outcome;
}

const char* mode_name(fed::AggregationMode mode) {
  switch (mode) {
    case fed::AggregationMode::kUnweightedMean: return "mean (paper)";
    case fed::AggregationMode::kSampleWeighted: return "weighted mean";
    case fed::AggregationMode::kCoordinateMedian: return "coordinate median";
    case fed::AggregationMode::kTrimmedMean: return "trimmed mean (20%)";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("== Ablation: one Byzantine device out of five ==\n");
  std::printf("The hostile device uploads its model scaled by -25 every "
              "round.\n\n");
  util::AsciiTable out({"aggregation", "global-policy reward",
                        "violation rate"});
  for (const fed::AggregationMode mode :
       {fed::AggregationMode::kUnweightedMean,
        fed::AggregationMode::kCoordinateMedian,
        fed::AggregationMode::kTrimmedMean}) {
    const Outcome o = run_with(mode);
    out.add_row(mode_name(mode), {o.mean_reward, o.violation});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("Plain averaging lets the attacker own the policy; the\n"
              "robust rules confine it to (at most) shifting one order\n"
              "statistic per coordinate.\n");

  std::printf("\n== Ablation: client dropout over a faulty transport ==\n");
  std::printf("5 devices, 60 rounds; each transfer is lost with the given\n"
              "probability; rounds aggregate over the survivors.\n\n");
  util::AsciiTable dropout_table(
      {"drop prob", "global-policy reward", "dropped clients",
       "failed rounds"});
  for (const double p : {0.0, 0.1, 0.3}) {
    const DropoutOutcome o = run_with_dropout(p, /*fault_seed=*/7);
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%%", p * 100.0);
    dropout_table.add_row(
        label, {o.mean_reward, static_cast<double>(o.dropped_total),
                static_cast<double>(o.failed_rounds)});
  }
  std::printf("%s\n", dropout_table.to_string().c_str());

  // Determinism check: the fault schedule is a pure function of the seed,
  // so two runs with the same seed must agree bit-for-bit.
  const DropoutOutcome first = run_with_dropout(0.3, /*fault_seed=*/7);
  const DropoutOutcome second = run_with_dropout(0.3, /*fault_seed=*/7);
  const bool identical = first.dropped_total == second.dropped_total &&
                         first.failed_rounds == second.failed_rounds &&
                         first.final_global == second.final_global;
  std::printf("Same-seed replay identical: %s (%zu dropped, %zu failed "
              "rounds)\n",
              identical ? "yes" : "NO — NONDETERMINISM BUG",
              first.dropped_total, first.failed_rounds);
  std::printf("Dropout costs learning speed, not liveness: the round loop\n"
              "never dies, and the survivors keep the fleet converging.\n");
  return identical ? 0 : 1;
}
