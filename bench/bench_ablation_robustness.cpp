// Ablation — Byzantine robustness. The paper's §I threat model worries
// about malicious participants; with plain federated averaging a *single*
// poisoned device steers the global DVFS policy anywhere it wants (e.g.
// "always f_max", burning every device's power budget). Coordinate-median
// and trimmed-mean aggregation bound that influence.
//
// Setup: 5 devices on disjoint workload shards; one of them uploads an
// adversarially scaled model every round. We compare the three aggregation
// rules on the clean devices' evaluation reward.
// A second failure mode rides along: client *dropout*. Real edge fleets
// lose devices to network faults constantly; the dropout ablation below
// injects seeded transport faults and shows the round loop aggregating
// over the survivors (FedAvg with partial participation) instead of dying.
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "fed/fault_injection.hpp"
#include "fleet.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

/// Wraps a controller and replaces its upload with a hostile model:
/// the honest parameters scaled and flipped, which under plain averaging
/// drags the global model far outside the useful range.
class ByzantineClient final : public fed::FederatedClient {
 public:
  explicit ByzantineClient(fed::FederatedClient* inner) : inner_(inner) {}

  void receive_global(std::span<const double> params) override {
    inner_->receive_global(params);
  }
  std::vector<double> local_parameters() const override {
    std::vector<double> poisoned = inner_->local_parameters();
    for (double& p : poisoned) p *= -25.0;
    return poisoned;
  }
  void run_local_round() override { inner_->run_local_round(); }

 private:
  fed::FederatedClient* inner_;
};

struct Outcome {
  double mean_reward = 0.0;
  double violation = 0.0;
};

Outcome run_with(fed::AggregationMode mode) {
  const std::size_t rounds = 60;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < 5; ++d)
    apps.push_back({suite[(2 * d) % 12], suite[(2 * d + 1) % 12]});

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);
  ByzantineClient attacker(&fleet.controller(fleet.size() - 1));
  std::vector<fed::FederatedClient*> clients = fleet.clients();
  clients.back() = &attacker;  // device 4 turns hostile

  fed::InProcessTransport transport;
  fed::FederatedAveraging server(clients, &transport, mode);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  util::RunningStats reward;
  util::RunningStats violations;
  for (std::size_t round = 0; round < rounds; ++round) {
    server.run_round();
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 500 + round);
    reward.add(result.mean_reward);
    violations.add(result.violation_rate);
  }
  return Outcome{reward.mean(), violations.mean()};
}

struct DropoutOutcome {
  double mean_reward = 0.0;
  std::size_t dropped_total = 0;
  std::size_t failed_rounds = 0;
  std::vector<double> final_global;
};

/// 5 clean devices federating over a fault-injecting transport: each
/// transfer is lost with drop_probability; rounds aggregate over the
/// survivors and abort (without advancing) only when nobody survives.
DropoutOutcome run_with_dropout(double drop_probability,
                                std::uint64_t fault_seed) {
  const std::size_t rounds = 60;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps;
  for (std::size_t d = 0; d < 5; ++d)
    apps.push_back({suite[(2 * d) % 12], suite[(2 * d + 1) % 12]});

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);

  fed::InProcessTransport inner;
  fed::FaultInjectionConfig fault_config;
  fault_config.drop_probability = drop_probability;
  fault_config.seed = fault_seed;
  fed::FaultInjectingTransport transport(&inner, fault_config);
  fed::FederatedAveraging server(fleet.clients(), &transport);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  DropoutOutcome outcome;
  util::RunningStats reward;
  for (std::size_t round = 0; round < rounds; ++round) {
    try {
      outcome.dropped_total += server.run_round().dropped.size();
    } catch (const fed::QuorumError&) {
      ++outcome.failed_rounds;  // nobody survived; retry next round
    }
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 500 + round);
    reward.add(result.mean_reward);
  }
  outcome.mean_reward = reward.mean();
  outcome.final_global = server.global_model();
  return outcome;
}

const char* mode_name(fed::AggregationMode mode) {
  switch (mode) {
    case fed::AggregationMode::kUnweightedMean: return "mean (paper)";
    case fed::AggregationMode::kSampleWeighted: return "weighted mean";
    case fed::AggregationMode::kCoordinateMedian: return "coordinate median";
    case fed::AggregationMode::kTrimmedMean: return "trimmed mean (20%)";
    case fed::AggregationMode::kKrum: return "krum";
    case fed::AggregationMode::kMultiKrum: return "multi-krum";
  }
  return "?";
}

// --- attack-vs-defense sweep (BENCH_byzantine.json) ----------------------
//
// The full pipeline end to end: 8 devices, a quarter of them sign-flipping
// every upload, run through core::run_federated so the defense pipeline,
// reputation/quarantine and robust aggregation all engage exactly as they
// do in the examples. The acceptance bar: the defended run's final eval
// reward recovers >= 90% of the attack-free run, while undefended FedAvg
// visibly degrades.

constexpr std::size_t kByzDevices = 8;
constexpr std::size_t kByzRounds = 48;
constexpr std::size_t kByzTail = 12;  ///< final rounds averaged as "final"
constexpr std::uint64_t kByzSeed = 42;

std::vector<std::vector<sim::AppProfile>> byzantine_apps() {
  const auto suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps(kByzDevices);
  for (std::size_t d = 0; d < kByzDevices; ++d)
    apps[d] = {suite[(2 * d) % suite.size()],
               suite[(2 * d + 1) % suite.size()]};
  return apps;
}

double tail_mean(const std::vector<double>& values, std::size_t tail) {
  if (values.empty()) return 0.0;
  const std::size_t n = values.size() < tail ? values.size() : tail;
  double sum = 0.0;
  for (std::size_t i = values.size() - n; i < values.size(); ++i)
    sum += values[i];
  return sum / static_cast<double>(n);
}

core::ExperimentConfig byzantine_config(bool attacked, bool defended,
                                        fed::AggregationMode mode,
                                        std::size_t threads) {
  core::ExperimentConfig config;
  config.rounds = kByzRounds;
  config.seed = kByzSeed;
  config.num_threads = threads;
  config.eval.episode_intervals = 30;
  config.aggregation = mode;
  config.defense.enabled = defended;
  if (attacked) {
    config.faults.attack = fed::UploadAttack::kSignFlip;
    config.faults.fraction = 0.25;
  }
  return config;
}

core::FederatedRunResult run_byzantine(const core::ExperimentConfig& config) {
  return core::run_federated(config, byzantine_apps(), sim::splash2_suite(),
                             /*eval_each_round=*/true);
}

}  // namespace

int main() {
  std::printf("== Ablation: one Byzantine device out of five ==\n");
  std::printf("The hostile device uploads its model scaled by -25 every "
              "round.\n\n");
  util::AsciiTable out({"aggregation", "global-policy reward",
                        "violation rate"});
  for (const fed::AggregationMode mode :
       {fed::AggregationMode::kUnweightedMean,
        fed::AggregationMode::kCoordinateMedian,
        fed::AggregationMode::kTrimmedMean}) {
    const Outcome o = run_with(mode);
    out.add_row(mode_name(mode), {o.mean_reward, o.violation});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("Plain averaging lets the attacker own the policy; the\n"
              "robust rules confine it to (at most) shifting one order\n"
              "statistic per coordinate.\n");

  std::printf("\n== Ablation: client dropout over a faulty transport ==\n");
  std::printf("5 devices, 60 rounds; each transfer is lost with the given\n"
              "probability; rounds aggregate over the survivors.\n\n");
  util::AsciiTable dropout_table(
      {"drop prob", "global-policy reward", "dropped clients",
       "failed rounds"});
  for (const double p : {0.0, 0.1, 0.3}) {
    const DropoutOutcome o = run_with_dropout(p, /*fault_seed=*/7);
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%%", p * 100.0);
    dropout_table.add_row(
        label, {o.mean_reward, static_cast<double>(o.dropped_total),
                static_cast<double>(o.failed_rounds)});
  }
  std::printf("%s\n", dropout_table.to_string().c_str());

  // Determinism check: the fault schedule is a pure function of the seed,
  // so two runs with the same seed must agree bit-for-bit.
  const DropoutOutcome first = run_with_dropout(0.3, /*fault_seed=*/7);
  const DropoutOutcome second = run_with_dropout(0.3, /*fault_seed=*/7);
  const bool identical = first.dropped_total == second.dropped_total &&
                         first.failed_rounds == second.failed_rounds &&
                         first.final_global == second.final_global;
  std::printf("Same-seed replay identical: %s (%zu dropped, %zu failed "
              "rounds)\n",
              identical ? "yes" : "NO — NONDETERMINISM BUG",
              first.dropped_total, first.failed_rounds);
  std::printf("Dropout costs learning speed, not liveness: the round loop\n"
              "never dies, and the survivors keep the fleet converging.\n");

  std::printf("\n== Sweep: 25%% sign-flip attackers vs the defense "
              "pipeline ==\n");
  std::printf("%zu devices, %zu rounds; 'final reward' averages the last "
              "%zu rounds' fleet eval.\n\n",
              kByzDevices, kByzRounds, kByzTail);

  struct Scenario {
    const char* key;
    const char* label;
    core::ExperimentConfig config;
  };
  const std::vector<Scenario> scenarios = {
      {"clean_fedavg", "attack-free fedavg",
       byzantine_config(false, false, fed::AggregationMode::kUnweightedMean,
                        1)},
      {"attacked_fedavg", "attacked, undefended fedavg",
       byzantine_config(true, false, fed::AggregationMode::kUnweightedMean,
                        1)},
      {"attacked_median_defense", "attacked, median + defense",
       byzantine_config(true, true, fed::AggregationMode::kCoordinateMedian,
                        1)},
      {"attacked_multikrum_defense", "attacked, multi-krum + defense",
       byzantine_config(true, true, fed::AggregationMode::kMultiKrum, 1)},
  };

  std::vector<core::FederatedRunResult> sweep;
  std::vector<double> finals;
  util::AsciiTable byz_table({"scenario", "final reward", "screened",
                              "max quarantined", "readmitted"});
  for (const Scenario& scenario : scenarios) {
    sweep.push_back(run_byzantine(scenario.config));
    const core::FederatedRunResult& run = sweep.back();
    finals.push_back(tail_mean(run.fleet.reward, kByzTail));
    byz_table.add_row(
        scenario.label,
        {finals.back(), static_cast<double>(run.robustness.total_screened),
         static_cast<double>(run.robustness.max_quarantined),
         static_cast<double>(run.robustness.total_readmitted)});
  }
  std::printf("%s\n", byz_table.to_string().c_str());

  const double clean = finals[0];
  const double undefended = finals[1];
  const double defended = finals[2];
  const double recovery = clean > 0.0 ? defended / clean : 0.0;
  const double undefended_ratio = clean > 0.0 ? undefended / clean : 0.0;
  const bool recovered = recovery >= 0.9;
  std::printf("Defense recovery: %.1f%% of the attack-free reward "
              "(undefended fedavg keeps %.1f%%) — %s\n",
              recovery * 100.0, undefended_ratio * 100.0,
              recovered ? "within the 90% bar" : "BELOW THE 90% BAR");

  // Bit-identity at 4 threads: the screening loops, Krum distances and
  // reputation updates all accumulate in model/client order, so the thread
  // count must not change a single bit of the outcome.
  core::ExperimentConfig threaded = scenarios[2].config;
  threaded.num_threads = 4;
  const core::FederatedRunResult parallel_run = run_byzantine(threaded);
  const core::FederatedRunResult& serial_run = sweep[2];
  const bool thread_identical =
      parallel_run.global_params == serial_run.global_params &&
      parallel_run.fleet.reward == serial_run.fleet.reward &&
      parallel_run.robustness.screened_per_round ==
          serial_run.robustness.screened_per_round &&
      parallel_run.robustness.quarantined_per_round ==
          serial_run.robustness.quarantined_per_round &&
      parallel_run.robustness.final_reputation ==
          serial_run.robustness.final_reputation;
  std::printf("Defended attack run bit-identical at 1 vs 4 threads: %s\n",
              thread_identical ? "yes" : "NO — DETERMINISM BROKEN");

  // Crash/resume mid-attack: checkpoint halfway, resume to the end, and
  // demand the stitched run match the uninterrupted one bit for bit —
  // including the reputation/quarantine state riding in the snapshot.
  namespace fs = std::filesystem;
  const fs::path ckpt_dir =
      fs::temp_directory_path() / "fedpower_bench_byzantine_ckpt";
  fs::remove_all(ckpt_dir);
  core::ExperimentConfig half = scenarios[2].config;
  half.rounds = kByzRounds / 2;
  half.checkpoint.every_rounds = kByzRounds / 2;
  half.checkpoint.dir = ckpt_dir.string();
  run_byzantine(half);
  core::ExperimentConfig resumed = scenarios[2].config;
  resumed.checkpoint.resume_from = ckpt_dir.string();
  const core::FederatedRunResult resumed_run = run_byzantine(resumed);
  fs::remove_all(ckpt_dir);
  const bool resume_identical =
      resumed_run.global_params == serial_run.global_params &&
      resumed_run.fleet.reward == serial_run.fleet.reward &&
      resumed_run.robustness.screened_per_round ==
          serial_run.robustness.screened_per_round &&
      resumed_run.robustness.final_reputation ==
          serial_run.robustness.final_reputation;
  std::printf("Resume mid-attack bit-identical to uninterrupted: %s\n",
              resume_identical ? "yes" : "NO — CHECKPOINT BUG");

  std::FILE* json = std::fopen("BENCH_byzantine.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"byzantine\",\n");
    std::fprintf(json, "  \"devices\": %zu,\n", kByzDevices);
    std::fprintf(json, "  \"rounds\": %zu,\n", kByzRounds);
    std::fprintf(json, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(kByzSeed));
    std::fprintf(json, "  \"attack\": \"sign-flip\",\n");
    std::fprintf(json, "  \"attack_fraction\": 0.25,\n");
    std::fprintf(json, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const core::RobustnessReport& rob = sweep[i].robustness;
      std::fprintf(json,
                   "    {\"key\": \"%s\", \"final_reward\": %.6f, "
                   "\"screened\": %zu, \"clipped\": %zu, "
                   "\"max_quarantined\": %zu, \"readmitted\": %zu}%s\n",
                   scenarios[i].key, finals[i], rob.total_screened,
                   rob.total_clipped, rob.max_quarantined,
                   rob.total_readmitted,
                   i + 1 < scenarios.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"defense_recovery_ratio\": %.4f,\n", recovery);
    std::fprintf(json, "  \"undefended_ratio\": %.4f,\n", undefended_ratio);
    std::fprintf(json, "  \"recovered_90pct\": %s,\n",
                 recovered ? "true" : "false");
    std::fprintf(json, "  \"thread_bit_identical\": %s,\n",
                 thread_identical ? "true" : "false");
    std::fprintf(json, "  \"resume_bit_identical\": %s\n",
                 resume_identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_byzantine.json\n");
  }

  const bool ok =
      identical && recovered && thread_identical && resume_identical;
  return ok ? 0 : 1;
}
