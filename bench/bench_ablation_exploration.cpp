// Ablation — exploration strategy. The paper samples actions from a
// softmax with decaying temperature (Eq. 3); the Profit baseline uses
// epsilon-greedy. This bench runs the *neural* agent with both strategies
// on the hardest scenario to separate the exploration question from the
// representation question.
#include <cstdio>

#include "core/evaluate.hpp"
#include "fleet.hpp"
#include "core/scenario.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double mean_reward = 0.0;
  double late_reward = 0.0;
  double violation = 0.0;
};

Outcome run_with(rl::ExplorationMode mode) {
  const std::size_t rounds = 80;
  core::ControllerConfig controller_config;
  controller_config.agent.exploration = mode;
  sim::ProcessorConfig processor_config;
  const auto apps = core::resolve(core::table2_scenarios()[1]);
  const auto suite = sim::splash2_suite();

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);
  fed::InProcessTransport transport;
  fed::FederatedAveraging server(fleet.clients(), &transport);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  Outcome outcome;
  util::RunningStats all;
  util::RunningStats late;
  util::RunningStats violations;
  for (std::size_t round = 0; round < rounds; ++round) {
    server.run_round();
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 700 + round);
    all.add(result.mean_reward);
    violations.add(result.violation_rate);
    if (round + 20 >= rounds) late.add(result.mean_reward);
  }
  outcome.mean_reward = all.mean();
  outcome.late_reward = late.mean();
  outcome.violation = violations.mean();
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Ablation: exploration strategy (scenario 2, 80 rounds) ==\n\n");
  util::AsciiTable out(
      {"strategy", "mean reward", "last-20 reward", "violation rate"});
  const Outcome softmax = run_with(rl::ExplorationMode::kSoftmax);
  out.add_row("softmax / Boltzmann (paper)",
              {softmax.mean_reward, softmax.late_reward, softmax.violation});
  const Outcome egreedy = run_with(rl::ExplorationMode::kEpsilonGreedy);
  out.add_row("epsilon-greedy",
              {egreedy.mean_reward, egreedy.late_reward, egreedy.violation});
  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "Softmax exploration is reward-aware: clearly bad frequencies (those\n"
      "that already violated) get exponentially less exploration than\n"
      "near-optimal ones, while epsilon-greedy keeps sampling the whole\n"
      "action range uniformly — costing violations during training and\n"
      "leaving less-informative data in the replay buffer.\n");
  return 0;
}
