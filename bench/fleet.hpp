// Shared helper for ablation benches that need a hand-built federation
// (custom codec, participation, per-device configs) instead of the
// standard core::run_federated runner.
#pragma once

#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "core/evaluate.hpp"
#include "fed/federation.hpp"
#include "sim/processor.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace fedpower::benchutil {

struct Fleet {
  std::vector<std::unique_ptr<sim::Processor>> processors;
  std::vector<std::unique_ptr<sim::Workload>> workloads;
  std::vector<std::unique_ptr<core::PowerController>> controllers;

  std::vector<fed::FederatedClient*> clients() {
    std::vector<fed::FederatedClient*> out;
    out.reserve(controllers.size());
    for (auto& controller : controllers) out.push_back(controller.get());
    return out;
  }
};

/// Builds one device per entry of device_apps; configs may hold one entry
/// (applied to every device) or one per device.
inline Fleet make_fleet(const std::vector<core::ControllerConfig>& configs,
                        const sim::ProcessorConfig& processor_config,
                        const std::vector<std::vector<sim::AppProfile>>&
                            device_apps,
                        std::uint64_t seed) {
  FEDPOWER_EXPECTS(configs.size() == 1 ||
                   configs.size() == device_apps.size());
  util::Rng root(seed);
  Fleet fleet;
  for (std::size_t d = 0; d < device_apps.size(); ++d) {
    fleet.processors.push_back(
        std::make_unique<sim::Processor>(processor_config, root.split()));
    fleet.workloads.push_back(
        std::make_unique<sim::RandomWorkload>(device_apps[d]));
    fleet.processors.back()->set_workload(fleet.workloads.back().get());
    const core::ControllerConfig& config =
        configs.size() == 1 ? configs.front() : configs[d];
    fleet.controllers.push_back(std::make_unique<core::PowerController>(
        config, fleet.processors.back().get(), root.split()));
  }
  return fleet;
}

}  // namespace fedpower::benchutil
