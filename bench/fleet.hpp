// Shared helper for ablation benches that need a hand-built federation
// (custom codec, participation, per-device configs) instead of the
// standard core::run_federated runner. Device construction lives in
// runtime::FleetRuntime — this is only the bench-friendly entry point.
#pragma once

#include <vector>

#include "runtime/fleet_runtime.hpp"

namespace fedpower::benchutil {

using Fleet = runtime::FleetRuntime;

/// Builds one device per entry of device_apps; configs may hold one entry
/// (applied to every device) or one per device. Serial by default — pass
/// num_threads to shard local training across workers (bit-identical
/// results either way).
inline Fleet make_fleet(const std::vector<core::ControllerConfig>& configs,
                        const sim::ProcessorConfig& processor_config,
                        const std::vector<std::vector<sim::AppProfile>>&
                            device_apps,
                        std::uint64_t seed, std::size_t num_threads = 1) {
  return Fleet(configs, processor_config, device_apps, seed, num_threads);
}

/// Options overload for fleet-scale benches (lazy construction at 100k+
/// devices). Same prvalue-return contract as above.
inline Fleet make_fleet(const std::vector<core::ControllerConfig>& configs,
                        const sim::ProcessorConfig& processor_config,
                        const std::vector<std::vector<sim::AppProfile>>&
                            device_apps,
                        std::uint64_t seed,
                        const runtime::FleetOptions& options) {
  return Fleet(configs, processor_config, device_apps, seed, options);
}

}  // namespace fedpower::benchutil
