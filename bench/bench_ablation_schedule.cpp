// Ablation — exploration schedule and round structure.
//
// Part 1 sweeps the temperature decay rate around the paper's 5e-4: too
// fast and the policy exploits before it has seen the reward landscape;
// too slow and it never stops paying the exploration tax.
// Part 2 trades rounds against steps per round at a fixed interaction
// budget (R*T = 10000): more frequent aggregation means fresher shared
// knowledge but the same total on-device work.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double late_reward = 0.0;
  double violation = 0.0;
};

Outcome run(double tau_decay, std::size_t rounds, std::size_t steps) {
  core::ExperimentConfig config;
  config.rounds = rounds;
  config.controller.steps_per_round = steps;
  config.controller.agent.tau_decay = tau_decay;
  config.seed = 42;
  config.eval.episode_intervals = 30;
  const auto apps = core::resolve(core::table2_scenarios()[1]);
  const auto fed =
      core::run_federated(config, apps, sim::splash2_suite(), true);
  Outcome outcome;
  util::RunningStats late;
  util::RunningStats violations;
  const std::size_t tail = rounds / 5;
  for (const auto& device : fed.devices)
    for (std::size_t r = 0; r < device.reward.size(); ++r) {
      if (r + tail >= device.reward.size()) late.add(device.reward[r]);
      violations.add(device.violation_rate[r]);
    }
  outcome.late_reward = late.mean();
  outcome.violation = violations.mean();
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Ablation: temperature decay (R=100, T=100) ==\n\n");
  util::AsciiTable decay_table(
      {"tau_decay", "final-rounds reward", "violation rate"});
  for (const double decay : {0.0001, 0.0005, 0.002, 0.01}) {
    const Outcome o = run(decay, 100, 100);
    decay_table.add_row(util::AsciiTable::format(decay, 4),
                        {o.late_reward, o.violation});
  }
  std::printf("%s\n", decay_table.to_string().c_str());
  std::printf("(paper uses 0.0005 — the floor is reached near the end of\n"
              "the 10000-step training budget)\n\n");

  std::printf("== Ablation: rounds vs steps at fixed budget R*T = 10000 ==\n\n");
  util::AsciiTable structure_table(
      {"R x T", "final-rounds reward", "violation rate"});
  const std::pair<std::size_t, std::size_t> structures[] = {
      {200, 50}, {100, 100}, {50, 200}, {20, 500}};
  for (const auto& [rounds, steps] : structures) {
    const Outcome o = run(0.0005, rounds, steps);
    structure_table.add_row(
        std::to_string(rounds) + " x " + std::to_string(steps),
        {o.late_reward, o.violation});
  }
  std::printf("%s\n", structure_table.to_string().c_str());
  std::printf("(paper uses 100 x 100; very infrequent aggregation lets the\n"
              "two non-IID devices drift apart between rounds)\n");
  return 0;
}
