// Ablation — wire compression. The paper ships float32 weights (2.76 kB
// per transfer). Affine int8 quantization cuts the payload to ~0.7 kB;
// this bench measures whether the federation still learns through the
// quantization noise (it re-quantizes every round, so errors could
// accumulate in principle).
#include <cstdio>

#include "core/evaluate.hpp"
#include "fleet.hpp"
#include "core/scenario.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double mean_reward = 0.0;
  double late_reward = 0.0;
  double violation = 0.0;
  double uplink_kb = 0.0;
  double per_transfer_b = 0.0;
};

Outcome run_with(const fed::ModelCodec& codec) {
  const std::size_t rounds = 60;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto apps = core::resolve(core::table2_scenarios()[1]);
  const auto suite = sim::splash2_suite();

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);
  fed::InProcessTransport transport;
  fed::FederatedAveraging server(fleet.clients(), &transport,
                                 fed::AggregationMode::kUnweightedMean,
                                 &codec);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  Outcome outcome;
  util::RunningStats all;
  util::RunningStats late;
  util::RunningStats violations;
  for (std::size_t round = 0; round < rounds; ++round) {
    server.run_round();
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 1000 + round);
    all.add(result.mean_reward);
    violations.add(result.violation_rate);
    if (round + 15 >= rounds) late.add(result.mean_reward);
  }
  outcome.mean_reward = all.mean();
  outcome.late_reward = late.mean();
  outcome.violation = violations.mean();
  outcome.uplink_kb =
      static_cast<double>(transport.stats().uplink_bytes) / 1000.0;
  outcome.per_transfer_b = transport.stats().mean_transfer_bytes();
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Ablation: payload compression (scenario 2, 60 rounds) ==\n\n");
  util::AsciiTable out({"codec", "B/transfer", "uplink kB", "mean reward",
                        "last-15 reward", "violation rate"});
  for (const fed::ModelCodec* codec :
       {static_cast<const fed::ModelCodec*>(&fed::Float32Codec::instance()),
        static_cast<const fed::ModelCodec*>(
            &fed::QuantizedCodec::instance())}) {
    const Outcome o = run_with(*codec);
    out.add_row(codec->name(),
                {o.per_transfer_b, o.uplink_kb, o.mean_reward, o.late_reward,
                 o.violation});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("int8 cuts traffic ~4x; the value head tolerates the extra\n"
              "quantization noise because rewards live in [-1, 1] and the\n"
              "Huber targets are far apart relative to the grid step.\n");
  return 0;
}
