// Ablation — heterogeneous objectives (the paper's future-work direction
// "varying objectives/user preferences").
//
// Two devices share applications but have different power budgets
// (0.5 W vs 0.7 W). Plain federated averaging forces one compromise policy
// on both; a personalized federation (shared representation, private
// output head — fed::PersonalizedClient) lets each device keep its own
// operating point while still pooling workload knowledge. Local-only
// training is the no-collaboration reference.
#include <cstdio>

#include "core/evaluate.hpp"
#include "fleet.hpp"
#include "core/scenario.hpp"
#include "fed/personalize.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

constexpr double kBudgets[2] = {0.5, 0.7};

std::vector<core::ControllerConfig> device_configs() {
  std::vector<core::ControllerConfig> configs(2);
  configs[0].p_crit_w = kBudgets[0];
  configs[1].p_crit_w = kBudgets[1];
  return configs;
}

std::vector<std::vector<sim::AppProfile>> shared_apps() {
  // Both devices run the same 4-app mix, so the *only* heterogeneity is
  // the objective.
  const std::vector<sim::AppProfile> mix = {
      *sim::splash2_app("fft"), *sim::splash2_app("lu"),
      *sim::splash2_app("ocean"), *sim::splash2_app("barnes")};
  return {mix, mix};
}

struct DeviceScore {
  double reward = 0.0;
  double violation = 0.0;
};

/// Evaluates params against device d's own budget on all its apps.
DeviceScore score(const std::vector<double>& params, std::size_t device,
                  const sim::ProcessorConfig& processor_config) {
  core::ControllerConfig config = device_configs()[device];
  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 40;
  const core::Evaluator evaluator(config, eval_config);
  util::RunningStats reward;
  util::RunningStats violation;
  std::uint64_t seed = 100 + device;
  const auto apps = shared_apps();  // keep alive across the loop
  for (const auto& app : apps[device]) {
    const auto r =
        evaluator.run_episode(evaluator.neural_policy(params), app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
  }
  return DeviceScore{reward.mean(), violation.mean()};
}

}  // namespace

int main() {
  const std::size_t rounds = 80;
  sim::ProcessorConfig processor_config;
  const auto apps = shared_apps();

  std::printf("== Ablation: heterogeneous power budgets "
              "(0.5 W vs 0.7 W, same apps) ==\n\n");

  util::AsciiTable out({"scheme", "dev0 reward (0.5W)", "dev0 viol.",
                        "dev1 reward (0.7W)", "dev1 viol."});

  // --- local-only reference.
  {
    benchutil::Fleet fleet =
        benchutil::make_fleet(device_configs(), processor_config, apps, 42);
    for (std::size_t r = 0; r < rounds; ++r) fleet.run_local_round();
    const auto s0 =
        score(fleet.controller(0).local_parameters(), 0, processor_config);
    const auto s1 =
        score(fleet.controller(1).local_parameters(), 1, processor_config);
    out.add_row("local-only",
                {s0.reward, s0.violation, s1.reward, s1.violation});
  }

  // --- plain federated averaging (one policy for both budgets).
  {
    benchutil::Fleet fleet =
        benchutil::make_fleet(device_configs(), processor_config, apps, 42);
    fed::InProcessTransport transport;
    fed::FederatedAveraging server(fleet.clients(), &transport);
    server.initialize(fleet.controller(0).local_parameters());
    server.run(rounds);
    const auto s0 = score(server.global_model(), 0, processor_config);
    const auto s1 = score(server.global_model(), 1, processor_config);
    out.add_row("full FedAvg",
                {s0.reward, s0.violation, s1.reward, s1.violation});
  }

  // --- personalized: shared body, private output head.
  {
    benchutil::Fleet fleet =
        benchutil::make_fleet(device_configs(), processor_config, apps, 42);
    const std::size_t total =
        fleet.controller(0).agent().param_count();
    const std::size_t head = 32 * 15 + 15;  // the output Dense layer
    const std::vector<bool> mask = fed::shared_body_mask(total, head);
    fed::PersonalizedClient p0(&fleet.controller(0), mask);
    fed::PersonalizedClient p1(&fleet.controller(1), mask);
    fed::InProcessTransport transport;
    fed::FederatedAveraging server({&p0, &p1}, &transport);
    server.initialize(fleet.controller(0).local_parameters());
    server.run(rounds);
    // Each device evaluates with its own (personalized) parameters.
    const auto s0 =
        score(fleet.controller(0).local_parameters(), 0, processor_config);
    const auto s1 =
        score(fleet.controller(1).local_parameters(), 1, processor_config);
    out.add_row("personalized (FedPer)",
                {s0.reward, s0.violation, s1.reward, s1.violation});
  }

  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "Full FedAvg averages a 0.5 W policy with a 0.7 W policy: the tight-\n"
      "budget device inherits the loose device's aggressiveness (higher\n"
      "violations), the loose device sandbags. The personalized scheme\n"
      "keeps per-device heads, recovering most of both objectives.\n");
  return 0;
}
