// Ablation — scaling the federation size N. The paper evaluates N = 2 and
// notes the system "can be naturally extended to use more than two
// devices"; this bench quantifies what additional devices (each holding a
// 2-app shard of the suite) buy in evaluation reward and what they cost in
// traffic.
#include <cstdio>

#include "core/experiment.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace fedpower;

  core::ExperimentConfig config;
  config.rounds = 60;
  config.seed = 42;
  config.eval.episode_intervals = 30;

  const auto suite = sim::splash2_suite();

  std::printf("== Ablation: number of federated devices N ==\n");
  std::printf("Each device trains on a disjoint 2-app shard of the suite\n"
              "(N=6 covers all 12 apps).\n\n");

  util::AsciiTable out({"N", "mean eval reward", "last-20 reward",
                        "violation rate", "uplink kB total"});

  for (const std::size_t n : {2u, 3u, 4u, 6u}) {
    std::vector<std::vector<sim::AppProfile>> apps;
    for (std::size_t d = 0; d < n; ++d)
      apps.push_back({suite[(2 * d) % suite.size()],
                      suite[(2 * d + 1) % suite.size()]});
    const auto fed = core::run_federated(config, apps, suite, true);

    util::RunningStats reward_all;
    util::RunningStats reward_late;
    util::RunningStats violations;
    for (const auto& device : fed.devices) {
      for (std::size_t r = 0; r < device.reward.size(); ++r) {
        reward_all.add(device.reward[r]);
        violations.add(device.violation_rate[r]);
        if (r + 20 >= device.reward.size()) reward_late.add(device.reward[r]);
      }
    }
    out.add_row(std::to_string(n),
                {reward_all.mean(), reward_late.mean(), violations.mean(),
                 static_cast<double>(fed.traffic.uplink_bytes) / 1000.0});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("Expectation: broader workload coverage (larger N over more\n"
              "apps) stabilizes the policy; traffic grows linearly in N.\n");
  return 0;
}
