// Ablation — local-update hyperparameters the paper fixes in Table I:
// batch size C_B (128) and optimization interval H (20). Both control how
// much gradient work happens per round; this sweep shows how much slack
// the published values have.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double mean_reward = 0.0;
  double late_reward = 0.0;
  double violation = 0.0;
};

Outcome run_with(std::size_t batch, std::size_t interval) {
  core::ExperimentConfig config;
  config.rounds = 60;
  config.seed = 42;
  config.eval.episode_intervals = 30;
  config.controller.agent.batch_size = batch;
  config.controller.agent.optimize_interval = interval;
  const auto fed = core::run_federated(
      config, core::resolve(core::table2_scenarios()[1]),
      sim::splash2_suite(), true);
  Outcome outcome;
  util::RunningStats all;
  util::RunningStats late;
  util::RunningStats violations;
  for (const auto& device : fed.devices)
    for (std::size_t r = 0; r < device.reward.size(); ++r) {
      all.add(device.reward[r]);
      violations.add(device.violation_rate[r]);
      if (r + 15 >= device.reward.size()) late.add(device.reward[r]);
    }
  outcome.mean_reward = all.mean();
  outcome.late_reward = late.mean();
  outcome.violation = violations.mean();
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Ablation: batch size C_B (H = 20 fixed) ==\n\n");
  util::AsciiTable batch_table(
      {"C_B", "mean reward", "last-15 reward", "violation rate"});
  for (const std::size_t batch : {16u, 64u, 128u, 256u}) {
    const Outcome o = run_with(batch, 20);
    batch_table.add_row(std::to_string(batch),
                        {o.mean_reward, o.late_reward, o.violation});
  }
  std::printf("%s\n(paper uses C_B = 128)\n\n",
              batch_table.to_string().c_str());

  std::printf("== Ablation: optimization interval H (C_B = 128 fixed) ==\n\n");
  util::AsciiTable h_table(
      {"H", "updates/round", "mean reward", "last-15 reward",
       "violation rate"});
  for (const std::size_t interval : {5u, 10u, 20u, 50u}) {
    const Outcome o = run_with(128, interval);
    h_table.add_row(std::to_string(interval),
                    {static_cast<double>(100 / interval), o.mean_reward,
                     o.late_reward, o.violation});
  }
  std::printf("%s\n(paper uses H = 20 -> five updates per 100-step round)\n",
              h_table.to_string().c_str());
  return 0;
}
