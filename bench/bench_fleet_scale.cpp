// Fleet-scale bench (DESIGN.md §11): lazy fleet memory footprint and the
// per-round transport-retry accounting guard.
//
// Part 1 sweeps devices × participation-fraction over lazy fleets up to
// 100k devices at C = 0.01 and reports resident memory after construction
// and after federated rounds with between-round dehydration. The
// acceptance property: a lazy fleet's resident memory follows the
// per-round working set (the C-fraction sample), not the fleet size — an
// eager 100k-device fleet would need tens of gigabytes (extrapolated here
// from a small eager fleet), the lazy one stays within a few hundred MB.
//
// Part 2 guards the total_transport_retries() fix: with one private
// transport per client the historic per-round accounting scan was
// O(clients^2) pointer comparisons (~seconds per round at 20k clients);
// the sort-based dedup makes it O(n log n) once and O(n) per round.
// The guard fails the bench (exit 1) if the accounting path regresses.
//
// Results land in BENCH_fleet_scale.json.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fleet.hpp"
#include "sim/splash2.hpp"

namespace {

using namespace fedpower;

/// Current resident set size in KiB (Linux /proc; 0 when unavailable).
std::size_t current_rss_kib() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t rss = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &rss);
      break;
    }
  }
  std::fclose(status);
  return rss;
}

/// Peak resident set size in KiB over the process lifetime.
std::size_t peak_rss_kib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss);
}

std::vector<std::vector<sim::AppProfile>> fleet_apps(std::size_t devices) {
  const std::vector<sim::AppProfile> suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps(devices);
  for (std::size_t d = 0; d < devices; ++d)
    apps[d].push_back(suite[d % suite.size()]);
  return apps;
}

core::ControllerConfig bench_controller() {
  core::ControllerConfig config;
  config.steps_per_round = 4;  // local training is not the subject here
  return config;
}

struct SweepResult {
  std::size_t devices = 0;
  double fraction = 0.0;
  std::size_t participants = 0;
  std::size_t hot_after_round = 0;
  std::size_t rss_after_build_kib = 0;
  std::size_t rss_after_rounds_kib = 0;
  double build_seconds = 0.0;
  double round_seconds = 0.0;
  bool bounded = false;
};

SweepResult run_sweep(std::size_t devices, double fraction,
                      std::size_t eager_kib_per_device) {
  SweepResult result;
  result.devices = devices;
  result.fraction = fraction;

  const std::size_t rss_before = current_rss_kib();
  // lint: nondet-ok(wall-clock timing of the run, never fed into a seed)
  const auto build_start = std::chrono::steady_clock::now();
  benchutil::Fleet fleet =
      benchutil::make_fleet({bench_controller()}, sim::ProcessorConfig{},
                            fleet_apps(devices), /*seed=*/2026,
                            runtime::FleetOptions{1, /*lazy=*/true});
  result.build_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - build_start)  // lint: nondet-ok(timing)
          .count();
  result.rss_after_build_kib = current_rss_kib() - rss_before;

  fed::InProcessTransport transport;
  fed::FederatedAveraging server(fleet.clients(), &transport);
  fed::SamplingConfig sampling;
  sampling.fraction = fraction;
  sampling.seed = 7;
  server.set_sampling(sampling);
  server.initialize(fleet.controller(0).local_parameters());

  // lint: nondet-ok(timing)
  const auto round_start = std::chrono::steady_clock::now();
  constexpr std::size_t kRounds = 2;
  for (std::size_t r = 0; r < kRounds; ++r) {
    const fed::RoundResult round = server.run_round();
    result.participants = round.participants.size();
    fleet.dehydrate_inactive(round.participants);
  }
  result.round_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - round_start)  // lint: nondet-ok(timing)
          .count() /
      static_cast<double>(kRounds);
  result.hot_after_round = fleet.hot_count();
  result.rss_after_rounds_kib = current_rss_kib() - rss_before;

  // Bounded-memory acceptance: the working set stays hot, the fleet does
  // not. Demand (a) the hot set tracks the sample, and (b) resident memory
  // is at most a quarter of what an eager fleet of this size would take.
  const std::size_t eager_estimate_kib = devices * eager_kib_per_device;
  result.bounded = result.hot_after_round <= result.participants &&
                   result.rss_after_rounds_kib < eager_estimate_kib / 4;
  return result;
}

/// KiB per device of a materialized (eager) fleet, measured on a small
/// fleet so the 100k-device eager footprint can be extrapolated without
/// allocating it.
std::size_t measure_eager_kib_per_device() {
  constexpr std::size_t kProbe = 512;
  const std::size_t before = current_rss_kib();
  benchutil::Fleet fleet =
      benchutil::make_fleet({bench_controller()}, sim::ProcessorConfig{},
                            fleet_apps(kProbe), 2026,
                            runtime::FleetOptions{1, /*lazy=*/false});
  const std::size_t after = current_rss_kib();
  const std::size_t per_device = (after - before) / kProbe;
  return per_device > 0 ? per_device : 1;
}

/// A client with no state: the retries-guard federation must be dominated
/// by the transport-accounting scan, not local training.
class NullClient final : public fed::FederatedClient {
 public:
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {}

 private:
  std::vector<double> params_;
};

struct RetriesGuard {
  std::size_t clients = 0;
  double round_seconds = 0.0;
  bool passed = false;
};

RetriesGuard run_retries_guard() {
  // 20k clients, each with a private transport: the historic accounting
  // scan was O(n^2) over the override table per round (~10^8 comparisons);
  // the dedup fix is one cached sorted table. Budget: well under 100ms per
  // round even on a loaded single-core host (the O(n^2) path took seconds).
  constexpr std::size_t kClients = 20000;
  RetriesGuard guard;
  guard.clients = kClients;

  std::vector<NullClient> clients(kClients);
  std::vector<fed::FederatedClient*> ptrs;
  ptrs.reserve(kClients);
  for (NullClient& c : clients) ptrs.push_back(&c);
  fed::InProcessTransport shared;
  fed::FederatedAveraging server(ptrs, &shared);
  std::vector<std::unique_ptr<fed::InProcessTransport>> transports;
  transports.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    transports.push_back(std::make_unique<fed::InProcessTransport>());
    server.set_client_transport(c, transports.back().get());
  }
  fed::SamplingConfig sampling;
  sampling.fraction = 0.001;  // 20 participants: training cost ~ zero
  sampling.seed = 3;
  server.set_sampling(sampling);
  server.initialize({0.0, 0.0, 0.0, 0.0});

  constexpr std::size_t kRounds = 5;
  // lint: nondet-ok(timing)
  const auto start = std::chrono::steady_clock::now();
  server.run(kRounds);
  guard.round_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: nondet-ok(timing)
          .count() /
      static_cast<double>(kRounds);
  guard.passed = guard.round_seconds < 0.1;
  return guard;
}

}  // namespace

int main() {
  std::printf("== fleet scale: lazy runtime memory + retry accounting ==\n");

  const std::size_t eager_kib = measure_eager_kib_per_device();
  std::printf("eager footprint probe: ~%zu KiB/device\n", eager_kib);

  std::vector<SweepResult> sweeps;
  const std::size_t sweep_devices[] = {10000, 100000};
  const double sweep_fractions[] = {0.001, 0.01};
  for (const std::size_t devices : sweep_devices) {
    for (const double fraction : sweep_fractions) {
      sweeps.push_back(run_sweep(devices, fraction, eager_kib));
      const SweepResult& s = sweeps.back();
      std::printf(
          "  devices=%-7zu C=%.3f  participants=%zu  hot=%zu  "
          "rss build=%zu KiB rounds=%zu KiB (eager est %zu KiB)  "
          "build=%.2fs round=%.2fs  bounded=%s\n",
          s.devices, s.fraction, s.participants, s.hot_after_round,
          s.rss_after_build_kib, s.rss_after_rounds_kib,
          s.devices * eager_kib, s.build_seconds, s.round_seconds,
          s.bounded ? "yes" : "NO");
    }
  }

  const RetriesGuard guard = run_retries_guard();
  std::printf(
      "retries guard: %zu private transports, %.4fs/round (budget 0.1s) — "
      "%s\n",
      guard.clients, guard.round_seconds, guard.passed ? "ok" : "REGRESSED");

  bool all_bounded = true;
  for (const SweepResult& s : sweeps) all_bounded = all_bounded && s.bounded;

  std::FILE* out = std::fopen("BENCH_fleet_scale.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"fleet_scale\",\n");
    std::fprintf(out, "  \"eager_kib_per_device\": %zu,\n", eager_kib);
    std::fprintf(out, "  \"peak_rss_kib\": %zu,\n", peak_rss_kib());
    std::fprintf(out, "  \"sweeps\": [\n");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      const SweepResult& s = sweeps[i];
      std::fprintf(out,
                   "    {\"devices\": %zu, \"fraction\": %.3f, "
                   "\"participants\": %zu, \"hot_after_round\": %zu, "
                   "\"rss_after_build_kib\": %zu, "
                   "\"rss_after_rounds_kib\": %zu, "
                   "\"eager_estimate_kib\": %zu, "
                   "\"build_seconds\": %.3f, \"round_seconds\": %.3f, "
                   "\"bounded\": %s}%s\n",
                   s.devices, s.fraction, s.participants, s.hot_after_round,
                   s.rss_after_build_kib, s.rss_after_rounds_kib,
                   s.devices * eager_kib, s.build_seconds, s.round_seconds,
                   s.bounded ? "true" : "false",
                   i + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"retries_guard\": {\"clients\": %zu, "
                 "\"round_seconds\": %.4f, \"budget_seconds\": 0.1, "
                 "\"passed\": %s},\n",
                 guard.clients, guard.round_seconds,
                 guard.passed ? "true" : "false");
    std::fprintf(out, "  \"bounded_memory\": %s\n",
                 all_bounded ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_fleet_scale.json\n");
  }

  return (all_bounded && guard.passed) ? 0 : 1;
}
