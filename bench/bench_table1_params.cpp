// Table I — Parameters of the federated power control. Prints the
// configuration defaults of this implementation next to the published
// values; any drift between code and paper shows up here immediately.
#include <cstdio>

#include "core/controller.hpp"
#include "util/table.hpp"

int main() {
  using namespace fedpower;

  const core::ControllerConfig config;  // library defaults

  std::printf("== Table I: parameters of our federated power control ==\n\n");

  util::AsciiTable out({"parameter", "paper", "ours"});
  const auto row = [&](const char* name, const char* paper, double ours,
                       int precision = 4) {
    out.add_row({name, paper, util::AsciiTable::format(ours, precision)});
  };

  row("Learning rate (alpha)", "0.005", config.agent.learning_rate);
  row("Max. temp. (tau_max)", "0.9", config.agent.tau_max, 2);
  row("Temp. decay (tau_decay)", "0.0005", config.agent.tau_decay);
  row("Min. temp. (tau_min)", "0.01", config.agent.tau_min, 2);
  row("Replay capacity (C)", "4000",
      static_cast<double>(config.agent.replay_capacity), 0);
  row("Batch size (C_B)", "128", static_cast<double>(config.agent.batch_size),
      0);
  row("Optim. interval (H)", "20",
      static_cast<double>(config.agent.optimize_interval), 0);
  row("#Hidden layers", "1",
      static_cast<double>(config.agent.hidden_sizes.size()), 0);
  row("#Neurons/layer", "32",
      static_cast<double>(config.agent.hidden_sizes.empty()
                              ? 0
                              : config.agent.hidden_sizes.front()),
      0);
  row("Pow. constr. [W] (P_crit)", "0.6", config.p_crit_w, 2);
  row("Pow. offs. [W] (k_offset)", "0.05", config.k_offset_w, 2);
  row("Ctrl. intv. [ms] (Delta_DVFS)", "500", config.dvfs_interval_s * 1000.0,
      0);
  row("#Steps/round (T)", "100",
      static_cast<double>(config.steps_per_round), 0);
  out.add_row({"#Rounds (R)", "100", "100 (ExperimentConfig default)"});

  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "NN: single hidden layer, ReLU activation, Adam optimizer, Huber "
      "loss\n(delta = %.1f), matching the paper's §III-C.\n",
      config.agent.huber_delta);
  return 0;
}
