// Ablation — differential privacy. Clipping + Gaussian noise on the
// per-round updates (fed::DpClient) strengthens the paper's weights-only
// privacy story; this bench sweeps the noise multiplier to locate the
// utility knee.
#include <cstdio>

#include "core/evaluate.hpp"
#include "fed/dp.hpp"
#include "fleet.hpp"
#include "core/scenario.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Outcome {
  double mean_reward = 0.0;
  double violation = 0.0;
  double mean_update_norm = 0.0;
};

Outcome run_with(double noise_multiplier, double clip_norm) {
  const std::size_t rounds = 60;
  core::ControllerConfig controller_config;
  sim::ProcessorConfig processor_config;
  const auto apps = core::resolve(core::table2_scenarios()[0]);
  const auto suite = sim::splash2_suite();

  benchutil::Fleet fleet = benchutil::make_fleet(
      {controller_config}, processor_config, apps, /*seed=*/42);
  fed::DpConfig dp_config;
  dp_config.clip_norm = clip_norm;
  dp_config.noise_multiplier = noise_multiplier;
  dp_config.seed = 77;
  std::vector<std::unique_ptr<fed::DpClient>> dp_clients;
  std::vector<fed::FederatedClient*> clients;
  for (std::size_t d = 0; d < fleet.size(); ++d) {
    dp_clients.push_back(
        std::make_unique<fed::DpClient>(&fleet.controller(d), dp_config));
    clients.push_back(dp_clients.back().get());
  }

  fed::InProcessTransport transport;
  fed::FederatedAveraging server(clients, &transport);
  server.initialize(fleet.controller(0).local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = processor_config;
  eval_config.episode_intervals = 30;
  const core::Evaluator evaluator(controller_config, eval_config);

  util::RunningStats reward;
  util::RunningStats violations;
  util::RunningStats norms;
  for (std::size_t round = 0; round < rounds; ++round) {
    server.run_round();
    for (const auto& dp : dp_clients) norms.add(dp->last_update_norm());
    const auto result = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()),
        suite[round % suite.size()], 300 + round);
    reward.add(result.mean_reward);
    violations.add(result.violation_rate);
  }
  return Outcome{reward.mean(), violations.mean(), norms.mean()};
}

}  // namespace

int main() {
  std::printf("== Ablation: differentially private updates "
              "(scenario 1, 60 rounds) ==\n\n");
  // Clip chosen near the typical raw update norm so clipping is mild and
  // the noise multiplier is the active knob.
  const double clip = 1.0;
  util::AsciiTable out({"noise multiplier z", "mean reward",
                        "violation rate", "mean raw update norm"});
  for (const double z : {0.0, 0.01, 0.05, 0.1, 0.3}) {
    const Outcome o = run_with(z, clip);
    out.add_row(util::AsciiTable::format(z, 2),
                {o.mean_reward, o.violation, o.mean_update_norm});
  }
  std::printf("%s\n", out.to_string().c_str());
  std::printf("Per-round noise sigma = z * clip is averaged over N clients\n"
              "and partially washed out by later rounds; small z is nearly\n"
              "free, large z stalls learning — the usual DP knee.\n");
  return 0;
}
