// Extension — learned shared-clock control on a contended 4-core node.
//
// The Jetson Nano's four cores share one clock (paper §IV); when several
// cores run memory-heavy code they also share DRAM bandwidth, so the
// effective optimum moves with both the power budget and the contention
// level. This bench trains the RL controller on the 4-core device (three
// workload mixes) and compares it against the static levels and the
// reactive power-cap governor under a 1.5 W rail budget.
#include <cstdio>
#include <functional>
#include <memory>

#include "core/controller.hpp"
#include "rl/policy.hpp"
#include "sim/governor.hpp"
#include "sim/multicore.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct Mix {
  const char* name;
  std::vector<const char*> apps;  // per core; fewer than 4 leaves idles
};

struct Outcome {
  double reward = 0.0;
  double power = 0.0;
  double freq = 0.0;
  double violation = 0.0;
  double ips = 0.0;
};

core::ControllerConfig controller_config() {
  core::ControllerConfig config;
  config.p_crit_w = 1.5;
  config.k_offset_w = 0.1;
  config.featurizer.power_scale_w = 3.0;
  config.agent.tau_decay = 0.002;
  return config;
}

std::vector<std::unique_ptr<sim::SingleAppWorkload>> attach(
    sim::MulticoreProcessor& proc, const Mix& mix) {
  std::vector<std::unique_ptr<sim::SingleAppWorkload>> workloads;
  for (std::size_t c = 0; c < mix.apps.size(); ++c) {
    workloads.push_back(std::make_unique<sim::SingleAppWorkload>(
        *sim::splash2_app(mix.apps[c])));
    proc.set_workload(c, workloads.back().get());
  }
  return workloads;
}

Outcome measure(sim::MulticoreProcessor& proc,
                const std::function<std::size_t(
                    const sim::TelemetrySample&)>& policy,
                const core::ControllerConfig& config) {
  const rl::PaperReward reward(config.p_crit_w, config.k_offset_w, 1479.0);
  sim::TelemetrySample sample = proc.run_interval(0.5);
  util::RunningStats r;
  util::RunningStats p;
  util::RunningStats f;
  util::RunningStats ips;
  std::size_t violations = 0;
  const int steps = 60;
  for (int i = 0; i < steps; ++i) {
    proc.set_level(policy(sample));
    sample = proc.run_interval(0.5);
    r.add(reward(sample));
    p.add(sample.true_power_w);
    f.add(sample.freq_mhz);
    ips.add(sample.ips);
    if (sample.true_power_w > config.p_crit_w) ++violations;
  }
  return Outcome{r.mean(), p.mean(), f.mean(),
                 static_cast<double>(violations) / steps, ips.mean()};
}

}  // namespace

int main() {
  const core::ControllerConfig config = controller_config();
  const Mix mixes[] = {
      {"3x memory (radix, ocean, radix)", {"radix", "ocean", "radix"}},
      {"3x compute (lu, water-ns, water-sp)",
       {"lu", "water-ns", "water-sp"}},
      {"mixed (raytrace, lu, radix)", {"raytrace", "lu", "radix"}},
  };

  std::printf("== Extension: 4-core shared clock + DRAM contention, "
              "1.5 W rail budget ==\n\n");

  for (const Mix& mix : mixes) {
    // Train the controller on this mix.
    sim::MulticoreProcessor train_proc(
        sim::MulticoreConfig::jetson_nano_4core(), util::Rng{31});
    auto train_workloads = attach(train_proc, mix);
    core::PowerController controller(config, &train_proc, util::Rng{32});
    controller.run_steps(2500);

    util::AsciiTable out({"policy", "reward", "power [W]", "freq [MHz]",
                          "violations", "IPS [1e9]"});
    const auto row = [&](const char* name, const Outcome& o) {
      out.add_row(name,
                  {o.reward, o.power, o.freq, o.violation, o.ips / 1e9});
    };

    {
      sim::MulticoreProcessor proc(
          sim::MulticoreConfig::jetson_nano_4core(), util::Rng{33});
      auto workloads = attach(proc, mix);
      nn::Mlp model = [&] {
        util::Rng rng(0);
        nn::Mlp m = nn::make_mlp(config.agent.state_dim,
                                 config.agent.hidden_sizes,
                                 config.agent.action_count, rng);
        m.set_parameters(controller.local_parameters());
        return m;
      }();
      const rl::StateFeaturizer featurizer(config.featurizer);
      row("learned RL", measure(proc, [&](const sim::TelemetrySample& s) {
            return rl::argmax(
                model.forward(nn::Matrix::row_vector(featurizer.featurize(s)))
                    .data());
          }, config));
    }
    {
      sim::MulticoreProcessor proc(
          sim::MulticoreConfig::jetson_nano_4core(), util::Rng{34});
      auto workloads = attach(proc, mix);
      sim::PowerCapGovernor governor(config.p_crit_w, 0.1);
      row("reactive power-cap",
          measure(proc, [&](const sim::TelemetrySample& s) {
            return governor.select_level(s, proc.vf_table());
          }, config));
    }
    for (const std::size_t fixed : {7u, 14u}) {
      sim::MulticoreProcessor proc(
          sim::MulticoreConfig::jetson_nano_4core(), util::Rng{35});
      auto workloads = attach(proc, mix);
      const std::string name =
          "fixed level " + std::to_string(fixed);
      row(name.c_str(), measure(proc, [fixed](const sim::TelemetrySample&) {
            return fixed;
          }, config));
    }

    std::printf("-- %s\n%s\n", mix.name, out.to_string().c_str());
  }

  std::printf("The budget binds hardest for the compute mix (f_max would\n"
              "draw ~2.9 W) and barely for the memory mix, where DRAM\n"
              "contention — not power — caps useful frequency. The learned\n"
              "policy lands near the per-mix constrained optimum without\n"
              "being told which regime it is in.\n");
  return 0;
}
