// Ablation — aggregation rule. The paper uses *unweighted* federated
// averaging (every client counts equally, Algorithm 2 line 8). This bench
// compares it against sample-count-weighted FedAvg (McMahan et al.) and
// against a FedProx-style proximal term on the local objective, on the
// hardest Table II scenario (scenario 2, water vs ocean/radix).
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "fed/federation.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

struct VariantResult {
  double mean_reward = 0.0;
  double late_reward = 0.0;
  double violation = 0.0;
};

// A variant of core::run_federated that exposes the aggregation mode and
// prox coefficient (the core runner hardwires the paper's choices).
VariantResult run_variant(fed::AggregationMode mode, double prox_mu,
                          std::uint64_t seed) {
  core::ExperimentConfig config;
  config.rounds = 60;
  config.seed = seed;
  config.eval.episode_intervals = 30;
  config.controller.agent.prox_mu = prox_mu;

  const auto apps = core::resolve(core::table2_scenarios()[1]);
  const auto suite = sim::splash2_suite();

  util::Rng root(config.seed);
  std::vector<std::unique_ptr<sim::Processor>> processors;
  std::vector<std::unique_ptr<sim::Workload>> workloads;
  std::vector<std::unique_ptr<core::PowerController>> controllers;
  std::vector<fed::FederatedClient*> clients;
  for (const auto& device_apps : apps) {
    processors.push_back(
        std::make_unique<sim::Processor>(config.processor, root.split()));
    workloads.push_back(std::make_unique<sim::RandomWorkload>(device_apps));
    processors.back()->set_workload(workloads.back().get());
    controllers.push_back(std::make_unique<core::PowerController>(
        config.controller, processors.back().get(), root.split()));
    clients.push_back(controllers.back().get());
  }
  fed::InProcessTransport transport;
  fed::FederatedAveraging server(clients, &transport, mode);
  server.initialize(controllers.front()->local_parameters());

  core::EvalConfig eval_config;
  eval_config.processor = config.processor;
  eval_config.episode_intervals = config.eval.episode_intervals;
  const core::Evaluator evaluator(config.controller, eval_config);

  VariantResult result;
  util::RunningStats all;
  util::RunningStats late;
  util::RunningStats violations;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    server.run_round();
    const auto& app = suite[round % suite.size()];
    const auto eval = evaluator.run_episode(
        evaluator.neural_policy(server.global_model()), app,
        seed ^ (round * 7919));
    all.add(eval.mean_reward);
    violations.add(eval.violation_rate);
    if (round + 20 >= config.rounds) late.add(eval.mean_reward);
  }
  result.mean_reward = all.mean();
  result.late_reward = late.mean();
  result.violation = violations.mean();
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation: aggregation rule (scenario 2) ==\n\n");
  util::AsciiTable out(
      {"variant", "mean reward", "last-20 reward", "violation rate"});

  const auto unweighted =
      run_variant(fed::AggregationMode::kUnweightedMean, 0.0, 42);
  out.add_row("unweighted mean (paper)",
              {unweighted.mean_reward, unweighted.late_reward,
               unweighted.violation});

  const auto weighted =
      run_variant(fed::AggregationMode::kSampleWeighted, 0.0, 42);
  out.add_row("sample-weighted FedAvg",
              {weighted.mean_reward, weighted.late_reward,
               weighted.violation});

  for (const double mu : {0.01, 0.1}) {
    const auto prox =
        run_variant(fed::AggregationMode::kUnweightedMean, mu, 42);
    out.add_row("FedProx mu=" + util::AsciiTable::format(mu, 2),
                {prox.mean_reward, prox.late_reward, prox.violation});
  }

  std::printf("%s\n", out.to_string().c_str());
  std::printf("Note: with equal steps per round on homogeneous devices,\n"
              "sample weighting should track the unweighted rule closely;\n"
              "a small proximal term mostly affects early-round drift.\n");
  return 0;
}
