// Async-server bench (DESIGN.md §12): the deterministic-commit gate and
// the epoll front end's uplink throughput.
//
// Part 1 is an acceptance gate, not a measurement: ServeFederation in
// deterministic commit mode must produce EXACTLY the bytes the
// synchronous FederatedAveraging server produces, at 1/2/4 workers, with
// and without seeded transport faults. Any divergence fails the bench
// (exit 1) loudly — this is the contract that makes the sharded pipeline
// a drop-in replacement for the paper's server.
//
// Part 2 sweeps workers x clients over real loopback TCP through the
// EpollFrontEnd: every client holds its own connection, each uplink is
// timed send-to-ack (the ack is written only after the frame reached the
// shard queues), and the sweep reports p50/p95/p99 RTT plus end-to-end
// uplinks/sec including the round commits.
//
// `--smoke` runs the crash-tolerance scenario instead (scripts/
// server_smoke.sh): 250 concurrent connections, one client dies after
// half a frame, the round still commits at quorum 200 with exactly that
// client dropped.
//
// Results land in BENCH_server_throughput.json.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fed/codec.hpp"
#include "fed/fault_injection.hpp"
#include "fed/federation.hpp"
#include "fed/tcp_transport.hpp"
#include "serve/epoll_server.hpp"
#include "serve/serve_federation.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace {

using namespace fedpower;

// ---------------------------------------------------------------------------
// Part 1: the deterministic-commit gate.

/// Fixed-delta client, identical across the sync and serve fleets.
class ScriptedClient final : public fed::FederatedClient {
 public:
  explicit ScriptedClient(double delta) : delta_(delta) {}
  void receive_global(std::span<const double> params) override {
    params_.assign(params.begin(), params.end());
  }
  std::vector<double> local_parameters() const override { return params_; }
  void run_local_round() override {
    for (double& p : params_) p += delta_;
  }

 private:
  double delta_;
  std::vector<double> params_;
};

struct GateCase {
  std::size_t workers = 1;
  bool faults = false;
  std::size_t rounds_compared = 0;
  bool passed = false;
};

GateCase run_gate_case(std::size_t workers, bool faults) {
  GateCase result;
  result.workers = workers;
  result.faults = faults;

  const std::vector<double> deltas{0.5, -1.0, 2.0, 0.25, -0.75, 1.5,
                                   0.125, -2.0};
  std::vector<std::unique_ptr<ScriptedClient>> sync_fleet;
  std::vector<std::unique_ptr<ScriptedClient>> serve_fleet;
  std::vector<fed::FederatedClient*> sync_ptrs;
  std::vector<fed::FederatedClient*> serve_ptrs;
  for (const double d : deltas) {
    sync_fleet.push_back(std::make_unique<ScriptedClient>(d));
    serve_fleet.push_back(std::make_unique<ScriptedClient>(d));
    sync_ptrs.push_back(sync_fleet.back().get());
    serve_ptrs.push_back(serve_fleet.back().get());
  }

  fed::InProcessTransport sync_inner;
  fed::InProcessTransport serve_inner;
  fed::FaultInjectionConfig fault_config;
  fault_config.drop_probability = faults ? 0.15 : 0.0;
  fault_config.truncate_probability = faults ? 0.1 : 0.0;
  fault_config.seed = 29;
  fed::FaultInjectingTransport sync_faulty(&sync_inner, fault_config);
  fed::FaultInjectingTransport serve_faulty(&serve_inner, fault_config);

  fed::FederatedAveraging sync_server(sync_ptrs, &sync_faulty);
  serve::ServeConfig config;
  config.workers = workers;
  serve::ServeFederation serve_server(serve_ptrs, &serve_faulty, config);

  fed::SamplingConfig sampling;
  sampling.fraction = 0.75;
  sampling.min_clients = 2;
  sampling.seed = 13;
  sync_server.set_sampling(sampling);
  serve_server.set_sampling(sampling);

  const std::vector<double> init(64, 0.5);
  sync_server.initialize(init);
  serve_server.initialize(init);

  result.passed = true;
  for (int round = 0; round < 8; ++round) {
    bool sync_committed = true;
    bool serve_committed = true;
    try {
      sync_server.run_round();
    } catch (const fed::QuorumError&) {
      sync_committed = false;
    }
    try {
      serve_server.run_round();
    } catch (const fed::QuorumError&) {
      serve_committed = false;
    }
    ++result.rounds_compared;
    if (sync_committed != serve_committed ||
        sync_server.global_model() != serve_server.global_model()) {
      result.passed = false;
      std::fprintf(stderr,
                   "DETERMINISM GATE FAILURE: workers=%zu faults=%d "
                   "round=%d — serve pipeline diverged from the "
                   "synchronous server\n",
                   workers, faults ? 1 : 0, round);
      break;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Part 2: TCP throughput through the epoll front end.

/// Minimal blocking frame client (the front end is not an echo peer, so
/// TcpTransport does not apply).
class BenchClient {
 public:
  explicit BenchClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    const int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() { close(); }
  BenchClient(const BenchClient&) = delete;
  BenchClient& operator=(const BenchClient&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool send_bytes(const std::uint8_t* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd_, data + sent, size - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Sends an uplink frame and blocks for the 1-byte enqueue ack.
  bool upload(const std::vector<std::uint8_t>& frame) {
    if (!send_bytes(frame.data(), frame.size())) return false;
    std::uint8_t reply[6];  // u32 len + direction + status byte
    std::size_t got = 0;
    while (got < sizeof reply) {
      const ssize_t n = ::recv(fd_, reply + got, sizeof reply - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return reply[5] == 0;
  }

 private:
  int fd_ = -1;
};

std::vector<std::uint8_t> uplink_frame(std::uint32_t client,
                                       std::uint64_t base_version,
                                       std::span<const std::uint8_t> model) {
  serve::UplinkHeader header;
  header.client = client;
  header.base_version = base_version;
  return fed::encode_frame(fed::Direction::kUplink,
                           serve::encode_uplink(header, model));
}

double percentile(std::vector<double>& sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

struct SweepRow {
  std::size_t workers = 0;
  std::size_t clients = 0;
  std::size_t rounds = 0;
  std::size_t uplinks = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double uplinks_per_sec = 0.0;
};

std::optional<SweepRow> run_sweep(std::size_t workers, std::size_t clients,
                                  std::size_t rounds,
                                  std::size_t model_params) {
  serve::ServeConfig config;
  config.workers = workers;
  serve::ShardedServer server(clients, config);
  server.initialize(std::vector<double>(model_params, 0.25));
  serve::EpollFrontEnd front(&server);

  std::vector<std::unique_ptr<BenchClient>> sockets;
  for (std::size_t i = 0; i < clients; ++i) {
    sockets.push_back(std::make_unique<BenchClient>(front.port()));
    if (!sockets.back()->ok()) {
      std::fprintf(stderr, "sweep: connect %zu failed\n", i);
      return std::nullopt;
    }
  }

  const std::vector<double> local(model_params, 1.5);
  const std::vector<std::uint8_t> codec_bytes =
      fed::Float32Codec::instance().encode(local);
  std::vector<std::size_t> everyone(clients);
  for (std::size_t i = 0; i < clients; ++i) everyone[i] = i;

  using Clock = std::chrono::steady_clock;
  std::vector<double> rtt_us;
  rtt_us.reserve(clients * rounds);
  // lint: nondet-ok(wall-clock RTT measurement is the bench's output)
  const Clock::time_point start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    front.begin_round(everyone);
    for (std::size_t i = 0; i < clients; ++i) {
      const std::vector<std::uint8_t> frame = uplink_frame(
          static_cast<std::uint32_t>(i), server.version(), codec_bytes);
      const Clock::time_point t0 = Clock::now();  // lint: nondet-ok(timing)
      if (!sockets[i]->upload(frame)) {
        std::fprintf(stderr, "sweep: upload %zu failed\n", i);
        return std::nullopt;
      }
      const std::chrono::duration<double, std::micro> rtt =
          Clock::now() - t0;  // lint: nondet-ok(timing)
      rtt_us.push_back(rtt.count());
    }
    front.commit_round(clients);
  }
  // lint: nondet-ok(timing)
  const std::chrono::duration<double> elapsed = Clock::now() - start;

  std::sort(rtt_us.begin(), rtt_us.end());
  SweepRow row;
  row.workers = workers;
  row.clients = clients;
  row.rounds = rounds;
  row.uplinks = rtt_us.size();
  row.p50_us = percentile(rtt_us, 0.50);
  row.p95_us = percentile(rtt_us, 0.95);
  row.p99_us = percentile(rtt_us, 0.99);
  row.uplinks_per_sec =
      static_cast<double>(rtt_us.size()) / elapsed.count();
  return row;
}

// ---------------------------------------------------------------------------
// Smoke mode: 250 concurrent connections, one killed mid-frame.

bool run_smoke() {
  constexpr std::size_t kClients = 250;
  constexpr std::size_t kQuorum = 200;
  constexpr std::size_t kVictim = 137;

  serve::ServeConfig config;
  config.workers = 4;
  serve::ShardedServer server(kClients, config);
  server.initialize(std::vector<double>(32, 0.0));
  serve::EpollFrontEnd front(&server);

  std::vector<std::size_t> everyone(kClients);
  for (std::size_t i = 0; i < kClients; ++i) everyone[i] = i;
  front.begin_round(everyone);

  // Every client connects before anyone uploads: the front end holds all
  // 250 sockets on one event loop at once.
  std::vector<std::unique_ptr<BenchClient>> sockets;
  for (std::size_t i = 0; i < kClients; ++i) {
    sockets.push_back(std::make_unique<BenchClient>(front.port()));
    if (!sockets.back()->ok()) {
      std::fprintf(stderr, "smoke: connect %zu failed\n", i);
      return false;
    }
  }
  if (front.connections_accepted() < kClients) {
    // Accepts race the connect loop; the uploads below force the loop to
    // visit every socket, so just note the count later.
  }

  const std::vector<double> local(32, 1.0);
  const std::vector<std::uint8_t> codec_bytes =
      fed::Float32Codec::instance().encode(local);
  for (std::size_t i = 0; i < kClients; ++i) {
    if (i == kVictim) {
      // Advertise a full frame, deliver 3 bytes, die mid-round.
      const std::vector<std::uint8_t> frame = uplink_frame(
          static_cast<std::uint32_t>(i), 0, codec_bytes);
      if (!sockets[i]->send_bytes(frame.data(), 7)) return false;
      sockets[i]->close();
      continue;
    }
    if (!sockets[i]->upload(uplink_frame(static_cast<std::uint32_t>(i), 0,
                                         codec_bytes))) {
      std::fprintf(stderr, "smoke: upload %zu failed\n", i);
      return false;
    }
  }

  // The killed connection's EOF lands asynchronously; wait for the loop
  // to notice before committing.
  for (int spin = 0; spin < 800 && front.truncated_frames() == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  fed::RoundResult result;
  try {
    result = front.commit_round(kQuorum);
  } catch (const fed::QuorumError& err) {
    std::fprintf(stderr, "smoke: spurious quorum abort: %s\n", err.what());
    return false;
  }

  const bool truncated_ok = front.truncated_frames() == 1;
  const bool dropped_ok =
      result.dropped == std::vector<std::size_t>{kVictim};
  const bool survivors_ok = result.effective_clients() == kClients - 1;
  const bool accepted_ok = front.connections_accepted() == kClients;
  std::printf(
      "smoke: %zu connections, victim %zu killed mid-frame -> "
      "truncated_frames=%zu dropped=%zu effective=%zu committed_round=%zu\n",
      kClients, kVictim, front.truncated_frames(), result.dropped.size(),
      result.effective_clients(), server.rounds_committed());
  if (!truncated_ok)
    std::fprintf(stderr, "smoke FAIL: expected exactly 1 truncated frame\n");
  if (!dropped_ok)
    std::fprintf(stderr, "smoke FAIL: dropped set != {victim}\n");
  if (!survivors_ok)
    std::fprintf(stderr, "smoke FAIL: wrong survivor count\n");
  if (!accepted_ok)
    std::fprintf(stderr, "smoke FAIL: not every connection was accepted\n");
  return truncated_ok && dropped_ok && survivors_ok && accepted_ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    const bool ok = run_smoke();
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::printf("== async server: determinism gate + TCP throughput ==\n");

  bool gate_passed = true;
  std::vector<GateCase> gate;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const bool faults : {false, true}) {
      gate.push_back(run_gate_case(workers, faults));
      const GateCase& g = gate.back();
      gate_passed = gate_passed && g.passed;
      std::printf("  gate workers=%zu faults=%-3s rounds=%zu  %s\n",
                  g.workers, g.faults ? "yes" : "no", g.rounds_compared,
                  g.passed ? "bit-identical" : "DIVERGED");
    }
  }

  std::vector<SweepRow> rows;
  bool sweep_passed = true;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::size_t clients : {64u, 256u}) {
      const std::optional<SweepRow> row =
          run_sweep(workers, clients, 3, 1024);
      if (!row) {
        sweep_passed = false;
        continue;
      }
      rows.push_back(*row);
      std::printf(
          "  sweep workers=%zu clients=%-4zu uplinks=%-5zu "
          "p50=%.0fus p95=%.0fus p99=%.0fus  %.0f uplinks/s\n",
          row->workers, row->clients, row->uplinks, row->p50_us,
          row->p95_us, row->p99_us, row->uplinks_per_sec);
    }
  }

  std::FILE* out = std::fopen("BENCH_server_throughput.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"server_throughput\",\n");
    std::fprintf(out, "  \"determinism_gate\": [\n");
    for (std::size_t i = 0; i < gate.size(); ++i) {
      std::fprintf(out,
                   "    {\"workers\": %zu, \"faults\": %s, "
                   "\"rounds_compared\": %zu, \"bit_identical\": %s}%s\n",
                   gate[i].workers, gate[i].faults ? "true" : "false",
                   gate[i].rounds_compared,
                   gate[i].passed ? "true" : "false",
                   i + 1 < gate.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"tcp_sweep\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(out,
                   "    {\"workers\": %zu, \"clients\": %zu, "
                   "\"rounds\": %zu, \"uplinks\": %zu, "
                   "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
                   "\"uplinks_per_sec\": %.1f}%s\n",
                   r.workers, r.clients, r.rounds, r.uplinks, r.p50_us,
                   r.p95_us, r.p99_us, r.uplinks_per_sec,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"gate_passed\": %s,\n",
                 gate_passed ? "true" : "false");
    std::fprintf(out, "  \"sweep_passed\": %s\n",
                 sweep_passed ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_server_throughput.json\n");
  }

  if (!gate_passed)
    std::fprintf(stderr,
                 "FAILED: deterministic serve commit diverged from the "
                 "synchronous server\n");
  return (gate_passed && sweep_passed) ? 0 : 1;
}
