// Fig. 3 — Reward during evaluation of the local-only and federated
// policies for each scenario of Table II, plus the §IV-A headline claim:
// federated power control beats the local-only policies by 57 % on average.
//
// Protocol (paper §IV-A): per scenario, two devices each see only their two
// training applications; after every training round the (global or local)
// policy is evaluated greedily on one of the twelve SPLASH-2 applications,
// cycling through the suite. 100 rounds of 100 steps.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

double curve_mean(const std::vector<double>& xs) { return util::mean(xs); }

void print_curve(const char* label, const std::vector<double>& xs,
                 std::size_t stride) {
  std::printf("  %-14s", label);
  for (std::size_t i = stride - 1; i < xs.size(); i += stride)
    std::printf(" %6.2f", xs[i]);
  std::printf("\n");
}

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;
  config.eval.episode_intervals = 30;

  const auto eval_apps = sim::splash2_suite();

  std::printf("== Fig. 3: local-only vs federated evaluation reward ==\n");
  std::printf(
      "Paper: federated curves ~constant just below 0.5 from early rounds;\n"
      "in each scenario one local-only policy stands out negatively\n"
      "(L2 device B bottoms out at ~-0.5); local-only average falls short\n"
      "of federated by 57%%.\n\n");
  std::printf("Reward curves (every 10th round, rounds 10..100):\n");

  util::RunningStats fed_all;
  util::RunningStats local_all;
  util::AsciiTable summary({"scenario", "fed devA", "fed devB", "local devA",
                            "local devB", "local worst"});

  for (const core::Scenario& scenario : core::table2_scenarios()) {
    const auto apps = core::resolve(scenario);
    const auto fed = core::run_federated(config, apps, eval_apps, true);
    const auto local = core::run_local_only(config, apps, eval_apps, true);

    std::printf("\n-- scenario %s: A trains {%s, %s}, B trains {%s, %s}\n",
                scenario.name.c_str(), scenario.device_apps[0][0].c_str(),
                scenario.device_apps[0][1].c_str(),
                scenario.device_apps[1][0].c_str(),
                scenario.device_apps[1][1].c_str());
    print_curve("fed (dev A)", fed.devices[0].reward, 10);
    print_curve("local dev A", local.devices[0].reward, 10);
    print_curve("local dev B", local.devices[1].reward, 10);

    const double fed_a = curve_mean(fed.devices[0].reward);
    const double fed_b = curve_mean(fed.devices[1].reward);
    const double loc_a = curve_mean(local.devices[0].reward);
    const double loc_b = curve_mean(local.devices[1].reward);
    summary.add_row("S" + scenario.name,
                    {fed_a, fed_b, loc_a, loc_b, std::min(loc_a, loc_b)});
    fed_all.add(fed_a);
    fed_all.add(fed_b);
    local_all.add(loc_a);
    local_all.add(loc_b);
  }

  std::printf("\nMean evaluation reward over all rounds:\n%s\n",
              summary.to_string().c_str());

  const double fed_mean = fed_all.mean();
  const double local_mean = local_all.mean();
  const double shortfall = (fed_mean - local_mean) / std::abs(fed_mean) *
                           100.0;
  std::printf("Headline (paper: local-only falls short of federated by "
              "57%% on average):\n");
  std::printf("  federated mean reward : %.3f\n", fed_mean);
  std::printf("  local-only mean reward: %.3f\n", local_mean);
  std::printf("  local shortfall       : %.0f%% of the federated reward\n",
              shortfall);
  return 0;
}
