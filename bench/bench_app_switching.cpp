// Extension — proactive adaptation at application switches.
//
// The paper's §I claim for learned DVFS: the state features (IPC, cache
// statistics) let the agent "proactively adjust the frequency according to
// the current workload", where classic governors only *react* to the power
// they already burned. This bench runs a trained federated policy and the
// reactive power-cap governor through the same sequence of abrupt app
// switches (compute -> memory -> compute ...) and reports per-segment
// rewards and violations, plus the first-interval behaviour right at each
// boundary — the interval where proactive vs reactive shows.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/governor.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

std::vector<sim::AppProfile> switch_sequence() {
  // Alternating extremes, twice around.
  std::vector<sim::AppProfile> seq;
  for (int repeat = 0; repeat < 2; ++repeat)
    for (const char* name : {"water-ns", "radix", "lu", "ocean"})
      seq.push_back(*sim::splash2_app(name));
  return seq;
}

struct Summary {
  double reward = 0.0;
  double violation = 0.0;
  double boundary_violation = 0.0;  // violations in the first 2 intervals
                                    // after each switch
};

Summary summarize(const std::vector<core::EvalResult>& segments,
                  const core::Evaluator& evaluator,
                  const core::PolicyFn& policy, std::uint64_t seed) {
  Summary summary;
  util::RunningStats reward;
  util::RunningStats violation;
  for (const auto& segment : segments) {
    reward.add(segment.mean_reward);
    violation.add(segment.violation_rate);
  }
  summary.reward = reward.mean();
  summary.violation = violation.mean();

  // Boundary behaviour: re-run with 2-interval segments so each segment IS
  // the boundary window.
  const auto boundary = evaluator.run_switching_episode(
      policy, switch_sequence(), 2, seed + 1);
  util::RunningStats bv;
  for (const auto& segment : boundary) bv.add(segment.violation_rate);
  summary.boundary_violation = bv.mean();
  return summary;
}

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;
  std::printf("== Extension: abrupt app switches "
              "(water-ns -> radix -> lu -> ocean, x2) ==\n\n");

  const auto fed = core::run_federated(
      config, core::resolve(core::six_app_split()), sim::splash2_suite(),
      false);

  core::EvalConfig eval_config;
  eval_config.processor = config.processor;
  const core::Evaluator evaluator(config.controller, eval_config);
  const std::size_t segment_intervals = 20;  // 10 s per app

  util::AsciiTable out({"policy", "mean reward", "violation rate",
                        "boundary violation rate"});

  const core::PolicyFn learned = evaluator.neural_policy(fed.global_params);
  const auto learned_segments = evaluator.run_switching_episode(
      learned, switch_sequence(), segment_intervals, 5);
  const Summary s_learned =
      summarize(learned_segments, evaluator, learned, 500);
  out.add_row("federated RL (ours)",
              {s_learned.reward, s_learned.violation,
               s_learned.boundary_violation});

  auto governor = std::make_shared<sim::PowerCapGovernor>(0.6, 0.05);
  const core::PolicyFn reactive =
      [governor](const sim::TelemetrySample& sample) {
        static const sim::VfTable table = sim::VfTable::jetson_nano();
        return governor->select_level(sample, table);
      };
  const auto reactive_segments = evaluator.run_switching_episode(
      reactive, switch_sequence(), segment_intervals, 5);
  governor->reset();
  const Summary s_reactive =
      summarize(reactive_segments, evaluator, reactive, 500);
  out.add_row("reactive power-cap",
              {s_reactive.reward, s_reactive.violation,
               s_reactive.boundary_violation});

  std::printf("%s\n", out.to_string().c_str());

  std::printf("per-segment rewards (20 intervals each):\n  %-10s %8s %8s\n",
              "app", "RL", "reactive");
  for (std::size_t i = 0; i < learned_segments.size(); ++i)
    std::printf("  %-10s %8.3f %8.3f\n", learned_segments[i].app.c_str(),
                learned_segments[i].mean_reward,
                reactive_segments[i].mean_reward);

  std::printf(
      "\nAt a memory->compute boundary the reactive governor is still at\n"
      "the high frequency the memory app tolerated and must *observe* a\n"
      "violation before stepping down one level per interval; the learned\n"
      "policy sees the IPC/MPKI signature of the new app in the very first\n"
      "interval and jumps straight to its operating point.\n");
  return 0;
}
