// Ablation — heterogeneous silicon. The paper assumes homogeneous devices
// (§III-B) and leaves cross-architecture transfer to future work. A milder,
// ubiquitous heterogeneity is process variation: nominally identical chips
// whose power differs by several percent. Here four devices span a
// +-10 % power spread; one shared policy must then be conservative on the
// leaky chips or violating on them. We compare full FedAvg against a
// personalized output head per device, evaluating every device's policy on
// its own silicon.
#include <cstdio>
#include <memory>

#include "core/evaluate.hpp"
#include "fed/personalize.hpp"
#include "fleet.hpp"
#include "sim/processor.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fedpower;

constexpr double kVariations[4] = {0.90, 0.97, 1.03, 1.10};

std::vector<std::vector<sim::AppProfile>> shared_apps() {
  const std::vector<sim::AppProfile> mix = {
      *sim::splash2_app("fft"), *sim::splash2_app("lu"),
      *sim::splash2_app("ocean"), *sim::splash2_app("barnes")};
  return {mix, mix, mix, mix};
}

struct DeviceFleet {
  std::vector<std::unique_ptr<sim::Processor>> processors;
  std::vector<std::unique_ptr<sim::Workload>> workloads;
  std::vector<std::unique_ptr<core::PowerController>> controllers;
};

DeviceFleet make_varied_fleet(std::uint64_t seed) {
  util::Rng root(seed);
  DeviceFleet fleet;
  const auto apps = shared_apps();
  for (std::size_t d = 0; d < 4; ++d) {
    sim::ProcessorConfig config;
    config.power.variation = kVariations[d];
    fleet.processors.push_back(
        std::make_unique<sim::Processor>(config, root.split()));
    fleet.workloads.push_back(
        std::make_unique<sim::RandomWorkload>(apps[d]));
    fleet.processors.back()->set_workload(fleet.workloads.back().get());
    fleet.controllers.push_back(std::make_unique<core::PowerController>(
        core::ControllerConfig{}, fleet.processors.back().get(),
        root.split()));
  }
  return fleet;
}

struct Score {
  double reward = 0.0;
  double violation = 0.0;
};

/// Evaluates params on device d's own (varied) silicon.
Score score(const std::vector<double>& params, std::size_t device) {
  core::ControllerConfig config;
  core::EvalConfig eval;
  eval.processor.power.variation = kVariations[device];
  eval.episode_intervals = 40;
  const core::Evaluator evaluator(config, eval);
  util::RunningStats reward;
  util::RunningStats violation;
  std::uint64_t seed = 800 + device;
  const auto apps = shared_apps();
  for (const auto& app : apps[device]) {
    const auto r =
        evaluator.run_episode(evaluator.neural_policy(params), app, seed++);
    reward.add(r.mean_reward);
    violation.add(r.violation_rate);
  }
  return Score{reward.mean(), violation.mean()};
}

}  // namespace

int main() {
  const std::size_t rounds = 80;
  std::printf("== Ablation: process variation across devices "
              "(power x0.90 .. x1.10) ==\n\n");

  util::AsciiTable out({"scheme", "fastest chip r/viol", "leakiest chip "
                        "r/viol", "mean reward"});
  const auto add = [&](const char* name, const std::vector<Score>& scores) {
    util::RunningStats mean;
    for (const auto& s : scores) mean.add(s.reward);
    out.add_row({name,
                 util::AsciiTable::format(scores.front().reward, 3) + " / " +
                     util::AsciiTable::format(scores.front().violation, 3),
                 util::AsciiTable::format(scores.back().reward, 3) + " / " +
                     util::AsciiTable::format(scores.back().violation, 3),
                 util::AsciiTable::format(mean.mean(), 3)});
  };

  {
    DeviceFleet fleet = make_varied_fleet(42);
    std::vector<fed::FederatedClient*> clients;
    for (auto& controller : fleet.controllers)
      clients.push_back(controller.get());
    fed::InProcessTransport transport;
    fed::FederatedAveraging server(clients, &transport);
    server.initialize(fleet.controllers.front()->local_parameters());
    server.run(rounds);
    std::vector<Score> scores;
    for (std::size_t d = 0; d < 4; ++d)
      scores.push_back(score(server.global_model(), d));
    add("full FedAvg (one policy)", scores);
  }
  {
    DeviceFleet fleet = make_varied_fleet(42);
    const std::size_t total = fleet.controllers.front()->agent().param_count();
    const std::vector<bool> mask =
        fed::shared_body_mask(total, 32 * 15 + 15);
    std::vector<std::unique_ptr<fed::PersonalizedClient>> wrapped;
    std::vector<fed::FederatedClient*> clients;
    for (auto& controller : fleet.controllers) {
      wrapped.push_back(
          std::make_unique<fed::PersonalizedClient>(controller.get(), mask));
      clients.push_back(wrapped.back().get());
    }
    fed::InProcessTransport transport;
    fed::FederatedAveraging server(clients, &transport);
    server.initialize(fleet.controllers.front()->local_parameters());
    server.run(rounds);
    std::vector<Score> scores;
    for (std::size_t d = 0; d < 4; ++d)
      scores.push_back(score(fleet.controllers[d]->local_parameters(), d));
    add("personalized heads", scores);
  }

  std::printf("%s\n", out.to_string().c_str());
  std::printf(
      "One shared policy must pick a single frequency map for chips whose\n"
      "power differs by 20%% end to end: it either wastes headroom on the\n"
      "fast chip or violates on the leaky one. Per-device heads let each\n"
      "chip calibrate its own operating points while sharing the workload\n"
      "representation — a small-scale version of the paper's\n"
      "\"devices of different architecture\" future-work direction.\n");
  return 0;
}
