// Runtime scaling of the parallel fleet runtime (DESIGN.md §7).
//
// Runs the same federated workload — 32 devices, 50 rounds, evaluation
// off so local training dominates — at 1/2/4/8 worker threads, checks
// the final global weights are bit-identical across every thread count
// (the runtime's determinism contract), and reports wall-clock per
// configuration. Results land in BENCH_runtime_scaling.json next to the
// working directory; `host_cores` is recorded because speedup is bounded
// by the physical core count of the machine that produced the file.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "sim/splash2.hpp"

namespace {

using namespace fedpower;

constexpr std::size_t kDevices = 32;
constexpr std::size_t kRounds = 50;
constexpr std::uint64_t kSeed = 2024;

std::vector<std::vector<sim::AppProfile>> fleet_apps() {
  const std::vector<sim::AppProfile> suite = sim::splash2_suite();
  std::vector<std::vector<sim::AppProfile>> apps(kDevices);
  for (std::size_t d = 0; d < kDevices; ++d) {
    apps[d].push_back(suite[d % suite.size()]);
    apps[d].push_back(suite[(d + 1) % suite.size()]);
  }
  return apps;
}

struct Run {
  std::size_t threads = 1;
  double seconds = 0.0;
  std::vector<double> final_weights;
};

Run run_at(std::size_t threads,
           const std::vector<std::vector<sim::AppProfile>>& apps) {
  core::ExperimentConfig config;
  config.rounds = kRounds;
  config.seed = kSeed;
  config.num_threads = threads;

  Run run;
  run.threads = threads;
  // lint: nondet-ok(wall-clock timing of the run, never fed into a seed)
  const auto start = std::chrono::steady_clock::now();
  const core::FederatedRunResult result =
      core::run_federated(config, apps, {}, /*eval_each_round=*/false);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() -  // lint: nondet-ok(timing)
                    start)
                    .count();
  run.final_weights = result.global_params;
  return run;
}

}  // namespace

int main() {
  const auto apps = fleet_apps();
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  std::printf("runtime scaling: %zu devices, %zu rounds, eval off\n",
              kDevices, kRounds);
  std::vector<Run> runs;
  for (const std::size_t threads : thread_counts) {
    runs.push_back(run_at(threads, apps));
    std::printf("  threads=%zu  wall=%.3fs  speedup=%.2fx\n", threads,
                runs.back().seconds,
                runs.front().seconds / runs.back().seconds);
  }

  bool identical = true;
  for (const Run& run : runs)
    if (run.final_weights != runs.front().final_weights) identical = false;
  std::printf("bit-identical final weights across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::FILE* out = std::fopen("BENCH_runtime_scaling.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"runtime_scaling\",\n");
    std::fprintf(out, "  \"devices\": %zu,\n", kDevices);
    std::fprintf(out, "  \"rounds\": %zu,\n", kRounds);
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(kSeed));
    std::fprintf(out, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(out, "  \"bit_identical_weights\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i)
      std::fprintf(out,
                   "    {\"threads\": %zu, \"wall_seconds\": %.4f, "
                   "\"speedup_vs_serial\": %.3f}%s\n",
                   runs[i].threads, runs[i].seconds,
                   runs.front().seconds / runs[i].seconds,
                   i + 1 < runs.size() ? "," : "");
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"note\": \"speedup is bounded by host_cores; on a "
                 "single-core host all configurations collapse to ~1x "
                 "while remaining bit-identical\"\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_runtime_scaling.json\n");
  }
  return identical ? 0 : 1;
}
