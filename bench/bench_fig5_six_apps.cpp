// Fig. 5 — Per-application comparison with the state of the art using six
// training applications per device: every evaluation application has been
// seen during training by exactly one of the two devices.
//
// Paper results: both techniques keep average power under the constraint;
// ours closes the margin to the threshold for most applications, finishes
// 22 % faster on average (53 % max) and delivers +29 % IPS on average
// (+95 % max).
#include <cstdio>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/splash2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace fedpower;

  core::ExperimentConfig config;
  config.rounds = 100;
  config.seed = 42;

  const auto split = core::six_app_split();
  const auto apps = core::resolve(split);
  const auto eval_apps = sim::splash2_suite();

  const auto ours = core::run_federated(config, apps, eval_apps, false);
  const auto sota = core::run_collab_profit(config, apps);

  core::EvalConfig eval;
  eval.processor = config.processor;
  const core::Evaluator evaluator(config.controller, eval);

  const auto ours_metrics = core::evaluate_apps(
      evaluator, evaluator.neural_policy(ours.global_params), eval_apps,
      config.seed + 1);
  // Average the two devices' CollabPolicy evaluations app by app.
  std::vector<core::AppMetrics> sota_metrics(eval_apps.size());
  for (std::size_t d = 0; d < sota.clients.size(); ++d) {
    const auto m = core::evaluate_apps(
        evaluator, sota.policy(d, config.processor.vf_table.f_max_mhz()),
        eval_apps, config.seed + 2 + d);
    for (std::size_t i = 0; i < m.size(); ++i) {
      sota_metrics[i].app = m[i].app;
      sota_metrics[i].exec_time_s += m[i].exec_time_s / 2.0;
      sota_metrics[i].ips += m[i].ips / 2.0;
      sota_metrics[i].power_w += m[i].power_w / 2.0;
    }
  }

  std::printf("== Fig. 5: per-app results, six training apps per device ==\n");
  std::printf("Paper: ours -22%% exec time avg (-53%% max), +29%% IPS avg "
              "(+95%% max),\nboth techniques under 0.6 W on average.\n\n");

  util::AsciiTable out({"app", "time ours [s]", "time P+CP [s]", "dTime",
                        "IPS ours [1e9]", "IPS P+CP [1e9]", "dIPS",
                        "P ours [W]", "P P+CP [W]"});
  util::RunningStats time_gain;
  util::RunningStats ips_gain;
  util::RunningStats ours_power;
  util::RunningStats sota_power;
  for (std::size_t i = 0; i < eval_apps.size(); ++i) {
    const auto& mine = ours_metrics[i];
    const auto& theirs = sota_metrics[i];
    const double dt = util::percent_change(theirs.exec_time_s,
                                           mine.exec_time_s);
    const double di = util::percent_change(theirs.ips, mine.ips);
    time_gain.add(dt);
    ips_gain.add(di);
    ours_power.add(mine.power_w);
    sota_power.add(theirs.power_w);
    out.add_row({mine.app, util::AsciiTable::format(mine.exec_time_s, 2),
                 util::AsciiTable::format(theirs.exec_time_s, 2),
                 util::AsciiTable::format(dt, 0) + "%",
                 util::AsciiTable::format(mine.ips / 1e9, 3),
                 util::AsciiTable::format(theirs.ips / 1e9, 3),
                 util::AsciiTable::format(di, 0) + "%",
                 util::AsciiTable::format(mine.power_w, 3),
                 util::AsciiTable::format(theirs.power_w, 3)});
  }
  std::printf("%s\n", out.to_string().c_str());

  std::printf("Aggregates (paper in parentheses):\n");
  std::printf("  mean exec-time change : %+.0f%% (paper -22%%)\n",
              time_gain.mean());
  std::printf("  best exec-time change : %+.0f%% (paper -53%%)\n",
              time_gain.min());
  std::printf("  mean IPS change       : %+.0f%% (paper +29%%)\n",
              ips_gain.mean());
  std::printf("  best IPS change       : %+.0f%% (paper +95%%)\n",
              ips_gain.max());
  std::printf("  mean power ours/P+CP  : %.3f / %.3f W (both < 0.6: %s)\n",
              ours_power.mean(), sota_power.mean(),
              (ours_power.mean() < 0.6 && sota_power.mean() < 0.6)
                  ? "holds"
                  : "VIOLATED");
  return 0;
}
