// fedpower-lint: repo-specific determinism & safety static analysis.
//
// The reproduction's headline guarantee — bit-identical federated rounds at
// every thread count (DESIGN.md §7) — rests on conventions a compiler never
// checks: all randomness flows through util::Rng streams split in canonical
// order, floating-point aggregation runs in model index order, and nothing
// on a determinism-critical path iterates a hash container. This linter
// turns those conventions into machine-checked rules (DESIGN.md §8):
//
//   L1-nondet          no rand()/srand/std::random_device/time()/getenv/
//                      clock ::now() outside the allowlist
//   L2-unordered-iter  no iteration over std::unordered_{map,set} in
//                      determinism-critical dirs (src/fed, src/nn,
//                      src/runtime, src/core)
//   L3-fp-reduce       no std::accumulate/std::reduce in src/fed —
//                      aggregation uses the documented model-order loops
//   L4-header-guard    every header opens with #pragma once or an
//   L4-using-namespace #ifndef guard; no using namespace at namespace
//                      scope in headers
//   L5-thread-detach   no detached threads and no raw mutex .lock()/
//   L5-raw-mutex-lock  .unlock() (use lock_guard/unique_lock/scoped_lock)
//                      in src/
//   L6-fs-write        no ad-hoc file writing (std::ofstream / fopen /
//                      freopen) in src/ outside the allowlisted writers —
//                      durable state goes through ckpt::write_snapshot_file
//                      so every on-disk artifact is atomic and checksummed
//   L7-raw-syscall     no raw event-loop syscalls (epoll_create/epoll_ctl/
//                      epoll_wait/eventfd/accept4) in src/ outside the
//                      designated event-loop translation units — socket
//                      plumbing stays confined to the transport and the
//                      serve front end
//
// On top of the token-stream rules, the declaration-aware contract analyzer
// (analyze.hpp) adds L8-ckpt-coverage, L9-ckpt-symmetry and
// L10-shard-ownership, and lint_tree() reports waivers that no longer
// suppress anything as W1-stale-waiver (severity "warning" by default,
// "error" under Options::strict_waivers — the lint-strict preset).
//
// A finding is waived by a same-line comment `// lint: <key>-ok(<reason>)`
// with a non-empty reason; keys: nondet, ordered, fpreduce, header, thread,
// fs, syscall, ckpt-sym, shard — plus the member annotation
// `// lint: ckpt-skip(<reason>)` consumed by L8. A comment-only waiver line
// covers the code line below it.
// The analysis is a scrubbing tokenizer (comments, string/char literals and
// raw strings are blanked before matching) plus a heuristic declaration
// parser, not a C++ front end — rules are deliberately conservative so a
// clean pass means something.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fedpower::lint {

/// Finding severity. Errors fail the scan; warnings are reported (and
/// serialized to JSON/SARIF) but only fail under --strict. Today the sole
/// warning-class rule is W1-stale-waiver.
enum class Severity { kError, kWarning };

/// One rule violation at a specific source line (1-based).
struct Finding {
  std::string file;     ///< path as given (normalized, '/'-separated)
  std::size_t line = 0; ///< 1-based line number
  std::string rule;     ///< stable rule id, e.g. "L1-nondet"
  std::string message;  ///< human-readable explanation
  Severity severity = Severity::kError;
};

/// Rule scoping. Paths are repository-relative with forward slashes; a file
/// matches a dir entry when it lives underneath it.
struct Options {
  /// Files exempt from L1 (the determinism contract's designated owners:
  /// the RNG implementation itself and the transport timeout code).
  std::vector<std::string> nondet_allowlist = {
      "src/util/rng.cpp",
      "src/fed/tcp_transport.cpp",
      "src/fed/tcp_transport.hpp",
  };
  /// Dirs where hash-container iteration order could leak into results.
  std::vector<std::string> determinism_dirs = {
      "src/fed", "src/nn", "src/runtime", "src/core", "src/serve"};
  /// Dirs where FP reductions must keep the documented model-order loops.
  std::vector<std::string> fp_reduce_dirs = {"src/fed", "src/serve"};
  /// Dirs covered by the threading rules (L5).
  std::vector<std::string> thread_rule_dirs = {"src"};
  /// Dirs covered by the filesystem-write rule (L6).
  std::vector<std::string> fs_write_dirs = {"src"};
  /// Files allowed to open writable streams directly: the snapshot
  /// subsystem's atomic writer (the sanctioned durable-write path) and the
  /// explicitly non-durable exporters (CSV reports, trace dumps).
  std::vector<std::string> fs_write_allowlist = {
      "src/ckpt/snapshot.cpp",
      "src/util/csv.hpp",
      "src/util/jsonl.hpp",
      "src/sim/trace_io.cpp",
  };
  /// Dirs covered by the raw-syscall rule (L7).
  std::vector<std::string> syscall_dirs = {"src"};
  /// Translation units allowed to issue event-loop syscalls directly: the
  /// blocking TCP transport and the serve subsystem's epoll front end.
  /// Everything else talks to sockets through those layers.
  std::vector<std::string> syscall_allowlist = {
      "src/fed/tcp_transport.cpp",
      "src/serve/epoll_server.cpp",
  };
  /// Dirs covered by the checkpoint-contract rules (L8/L9). Classes whose
  /// declaration lives outside these dirs are modeled but not checked.
  std::vector<std::string> ckpt_contract_dirs = {"src"};
  /// Dirs covered by the shard-ownership rule (L10): the sharded async
  /// server, where correctness comes from partitioning (DESIGN.md §12).
  std::vector<std::string> shard_ownership_dirs = {"src/serve"};
  /// Type-token substrings that make an injector/worker crossing member
  /// legal: lock-free rings, atomics and immutable state.
  std::vector<std::string> shard_safe_types = {"SpscQueue", "atomic", "const"};
  /// Promote W1-stale-waiver findings from warning to error (the
  /// lint-strict preset / --strict flag).
  bool strict_waivers = false;
};

/// Lints one translation unit given as an in-memory string: the token
/// rules (L1–L7) plus the declaration analyzer (L8–L10) over this single
/// file's model. Stale-waiver detection is a whole-tree concern (a waiver
/// may be consumed by cross-file analysis) and only runs in lint_tree.
/// `path` scopes the directory-dependent rules and is echoed into
/// findings; findings are sorted by line, then rule.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& content,
                                               const Options& options = {});

/// Reads and lints one file. `display_path` is the repo-relative path used
/// for rule scoping and reporting. Throws std::runtime_error on I/O error.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& fs_path,
                                             const std::string& display_path,
                                             const Options& options = {});

/// Recursively lints every .cpp/.cc/.hpp/.h file under `inputs` (files or
/// directories, relative to `root`), in sorted path order: token rules per
/// file, then the declaration analyzer over the merged model (headers
/// declare, .cpps define), then W1-stale-waiver over every waiver nothing
/// consumed. Findings are sorted by (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::string& root, const std::vector<std::string>& inputs,
    const Options& options = {});

/// True when any finding is an error (warnings alone keep a scan green).
[[nodiscard]] bool has_errors(const std::vector<Finding>& findings);

/// "file:line: rule-id message" lines, one per finding; warnings carry a
/// "[warning]" marker after the rule id.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

/// JSON array of {"file", "line", "rule", "severity", "message"} objects.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 log (one run, tool "fedpower-lint") for CI artifact
/// consumption; every distinct rule id becomes a reportingDescriptor.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace fedpower::lint
