#include "fedpower_lint/scrub.hpp"

#include <cctype>

namespace fedpower::lint {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Extracts every `lint: <key>-ok(<non-empty reason>)` and
/// `lint: ckpt-skip(<non-empty reason>)` from one comment's text.
void parse_waivers(const std::string& comment, std::size_t line,
                   std::vector<Waiver>* out) {
  std::size_t pos = 0;
  while ((pos = comment.find("lint:", pos)) != std::string::npos) {
    pos += 5;
    while (pos < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[pos])) != 0)
      ++pos;
    std::string key;
    while (pos < comment.size() &&
           (is_ident_char(comment[pos]) || comment[pos] == '-'))
      key += comment[pos++];
    const bool ok_form = ends_with(key, "-ok");
    const bool skip_form = key == "ckpt-skip";
    if ((!ok_form && !skip_form) || pos >= comment.size() ||
        comment[pos] != '(')
      continue;
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos || close == pos + 1) continue;  // no reason
    Waiver waiver;
    waiver.key = ok_form ? key.substr(0, key.size() - 3) : key;
    waiver.line = line;
    waiver.reason = comment.substr(pos + 1, close - pos - 1);
    out->push_back(waiver);
    pos = close + 1;
  }
}

/// True when the characters ending `code` right before a trailing 'R' form a
/// valid raw-string encoding prefix: R"..., u8R"..., uR"..., UR"..., LR"...
/// — and the prefix itself is not glued onto a longer identifier (fooR"..."
/// is a user-defined-literal juxtaposition, not a raw string).
bool raw_string_prefix(const std::string& code) {
  if (code.empty() || code.back() != 'R') return false;
  std::size_t start = code.size() - 1;  // index of 'R'
  while (start > 0 && is_ident_char(code[start - 1])) --start;
  const std::string prefix = code.substr(start, code.size() - 1 - start);
  return prefix.empty() || prefix == "u" || prefix == "u8" || prefix == "U" ||
         prefix == "L";
}

/// True when a '\'' at position i of `text`, with scrubbed code so far in
/// `code`, is a digit separator (1'000'000, 0xFF'FF, 0b1010'1010) rather
/// than the start of a character literal: the preceding identifier-ish run
/// must begin with a digit (a numeric literal) and the next character must
/// continue it.
bool digit_separator(const std::string& code, const std::string& text,
                     std::size_t i) {
  if (code.empty() || !is_ident_char(code.back())) return false;
  if (i + 1 >= text.size() ||
      std::isalnum(static_cast<unsigned char>(text[i + 1])) == 0)
    return false;
  std::size_t start = code.size();
  while (start > 0 && is_ident_char(code[start - 1])) --start;
  return std::isdigit(static_cast<unsigned char>(code[start])) != 0;
}

}  // namespace

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool Scrubbed::line_is_comment_only(std::size_t line_idx) const {
  if (line_idx >= code.size()) return false;
  for (const char c : code[line_idx])
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  return true;
}

Scrubbed scrub(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Scrubbed out;
  State state = State::kCode;
  std::string code_line;
  std::string comment;
  std::string raw_delim;
  std::size_t comment_start_line = 0;
  std::size_t line = 0;

  auto flush_comment = [&] {
    parse_waivers(comment, comment_start_line, &out.waivers);
    comment.clear();
  };
  auto newline = [&] {
    out.code.push_back(code_line);
    code_line.clear();
    if (state == State::kLineComment) {
      flush_comment();
      state = State::kCode;
    }
    ++line;
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      newline();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          comment_start_line = line;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          comment_start_line = line;
          ++i;
        } else if (c == '"') {
          // Raw string literal? The '"' follows a lone 'R' or an
          // encoding-prefixed u8R/uR/UR/LR; anything longer (an identifier
          // ending in R) is not a raw-string opener.
          if (raw_string_prefix(code_line)) {
            raw_delim.clear();
            ++i;
            while (i < n && text[i] != '(' && text[i] != '\n')
              raw_delim += text[i++];
            state = State::kRaw;
          } else {
            state = State::kString;
          }
          code_line += ' ';
        } else if (c == '\'') {
          if (digit_separator(code_line, text, i)) {
            // Part of a numeric literal: scrub the quote, keep lexing code.
            code_line += ' ';
          } else {
            state = State::kChar;
            code_line += ' ';
          }
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
          flush_comment();
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n)
          ++i;
        else if (c == '"')
          state = State::kCode;
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n)
          ++i;
        else if (c == '\'')
          state = State::kCode;
        break;
      case State::kRaw:
        if (c == ')' && i + raw_delim.size() + 1 < n &&
            text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            text[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          state = State::kCode;
        }
        break;
    }
  }
  newline();  // final line (also flushes a trailing // comment)
  if (state == State::kBlockComment) flush_comment();
  return out;
}

std::vector<Token> lex(const std::string& code_line) {
  std::vector<Token> out;
  const std::size_t n = code_line.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = code_line[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (is_ident_char(c)) {
      std::string word;
      while (i < n && is_ident_char(code_line[i])) word += code_line[i++];
      out.push_back({true, word});
    } else if (c == ':' && i + 1 < n && code_line[i + 1] == ':') {
      out.push_back({false, "::"});
      i += 2;
    } else if (c == '-' && i + 1 < n && code_line[i + 1] == '>') {
      out.push_back({false, "->"});
      i += 2;
    } else {
      out.push_back({false, std::string(1, c)});
      ++i;
    }
  }
  return out;
}

WaiverSet::WaiverSet(const Scrubbed& scrubbed) {
  entries_.reserve(scrubbed.waivers.size());
  for (const Waiver& waiver : scrubbed.waivers)
    entries_.push_back(
        {waiver, scrubbed.line_is_comment_only(waiver.line), false});
}

bool WaiverSet::try_waive(std::size_t line_idx, const std::string& key) {
  bool waived = false;
  for (Entry& entry : entries_) {
    if (entry.waiver.key != key) continue;
    const bool same_line = entry.waiver.line == line_idx;
    const bool line_above = entry.comment_only_line && line_idx > 0 &&
                            entry.waiver.line == line_idx - 1;
    if (same_line || line_above) {
      entry.used = true;
      waived = true;
    }
  }
  return waived;
}

std::vector<Waiver> WaiverSet::stale() const {
  std::vector<Waiver> out;
  for (const Entry& entry : entries_)
    if (!entry.used) out.push_back(entry.waiver);
  return out;
}

}  // namespace fedpower::lint
