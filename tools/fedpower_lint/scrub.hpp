// Shared scrubbing tokenizer for fedpower-lint (DESIGN.md §8).
//
// Both analysis layers — the token-stream rule engine (lint.cpp, L1–L7) and
// the declaration-aware contract analyzer (analyze.cpp, L8–L10) — must see
// the exact same view of a translation unit, or a literal that one layer
// skips and the other matches would let rules desynchronize. This header
// owns that view:
//
//   * scrub()  blanks comments, string/char literals (including raw strings
//     with encoding prefixes u8R/uR/UR/LR and arbitrary delimiters) and
//     digit separators (1'000'000, 0xFF'FF) so rules only ever match real
//     code, while collecting `// lint: ...` waiver comments per line.
//   * lex()    splits one scrubbed line into identifier/punctuation tokens
//     with "::" and "->" fused.
//   * WaiverSet tracks which waivers actually suppressed a finding, so the
//     tree driver can report the stale ones (W1-stale-waiver) — a waiver
//     that suppresses nothing is documentation rot, not a pass.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fedpower::lint {

/// One parsed waiver comment: `// lint: <key>-ok(<reason>)` (key stored
/// without the -ok suffix) or the member annotation
/// `// lint: ckpt-skip(<reason>)` (key "ckpt-skip").
struct Waiver {
  std::string key;       ///< "nondet", "ordered", ..., "ckpt-skip"
  std::size_t line = 0;  ///< 0-based line the comment starts on
  std::string reason;    ///< text inside the parentheses (non-empty)
};

/// Literal/comment-free source with per-line waiver bookkeeping.
struct Scrubbed {
  std::vector<std::string> code;  ///< scrubbed text, one entry per line
  std::vector<Waiver> waivers;    ///< every waiver comment, in file order
  /// True when the line holds no code tokens (comment/blank only); a waiver
  /// on such a line covers the next line down.
  [[nodiscard]] bool line_is_comment_only(std::size_t line_idx) const;
};

[[nodiscard]] Scrubbed scrub(const std::string& text);

/// One lexical token of a scrubbed line.
struct Token {
  bool ident = false;  ///< identifier/number vs punctuation
  std::string text;
};

[[nodiscard]] std::vector<Token> lex(const std::string& code_line);

[[nodiscard]] bool is_ident_char(char c);

/// Waiver lookup with usage tracking. try_waive() consumes a waiver
/// matching (line, key) — same line, or a comment-only line directly above —
/// and marks it used; stale() returns the ones nothing ever consumed.
class WaiverSet {
 public:
  explicit WaiverSet(const Scrubbed& scrubbed);

  /// True (and marks the waiver used) when a waiver with `key` covers the
  /// 0-based line `line_idx`. A used waiver keeps waiving: several findings
  /// on one line may share it.
  [[nodiscard]] bool try_waive(std::size_t line_idx, const std::string& key);

  /// Waivers that never suppressed anything, in file order.
  [[nodiscard]] std::vector<Waiver> stale() const;

 private:
  struct Entry {
    Waiver waiver;
    bool comment_only_line = false;
    bool used = false;
  };
  std::vector<Entry> entries_;
};

}  // namespace fedpower::lint
