// fedpower-lint CLI. Scans files/directories (relative to --root) and
// prints findings as `file:line: rule-id message` lines, a JSON array with
// --json, or a SARIF 2.1.0 log with --sarif (for CI artifact upload).
// Exit status: 0 clean, 1 error findings, 2 usage/I-O error. Warnings
// (W1-stale-waiver) are printed but keep the scan green unless --strict
// promotes them to errors. --must-fail inverts the status — exit 0 iff ANY
// finding (error or warning) was produced — which the fixture self-check
// uses to assert the linter still catches deliberately broken code.
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fedpower_lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--json|--sarif] [--strict] [--must-fail] [--root DIR] PATH...\n"
         "  PATH      file or directory, relative to --root (default .)\n"
         "  --json    emit findings as a JSON array\n"
         "  --sarif   emit findings as a SARIF 2.1.0 log\n"
         "  --strict  treat stale waivers (W1) as errors\n"
         "  --must-fail  exit 0 iff findings were produced (fixture "
         "self-check)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> inputs;
  bool json = false;
  bool sarif = false;
  bool must_fail = false;
  fedpower::lint::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--strict") {
      options.strict_waivers = true;
    } else if (arg == "--must-fail") {
      must_fail = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "fedpower-lint: unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() || (json && sarif)) return usage(argv[0]);

  std::vector<fedpower::lint::Finding> findings;
  try {
    findings = fedpower::lint::lint_tree(root, inputs, options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (json)
    std::cout << fedpower::lint::to_json(findings);
  else if (sarif)
    std::cout << fedpower::lint::to_sarif(findings);
  else
    std::cout << fedpower::lint::to_text(findings);

  if (must_fail) {
    if (findings.empty()) {
      std::cerr << "fedpower-lint: --must-fail but no findings — the linter "
                   "no longer catches the broken fixtures\n";
      return 1;
    }
    return 0;
  }
  if (fedpower::lint::has_errors(findings)) {
    std::cerr << "fedpower-lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
