// fedpower-lint CLI. Scans files/directories (relative to --root) and
// prints findings as `file:line: rule-id message` lines, or a JSON array
// with --json. Exit status: 0 clean, 1 findings, 2 usage/I-O error —
// inverted by --must-fail, which the fixture self-check uses to assert the
// linter still catches deliberately broken code.
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fedpower_lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--must-fail] [--root DIR] PATH...\n"
               "  PATH      file or directory, relative to --root (default .)\n"
               "  --json    emit findings as a JSON array\n"
               "  --must-fail  exit 0 iff findings were produced (fixture "
               "self-check)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> inputs;
  bool json = false;
  bool must_fail = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--must-fail") {
      must_fail = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "fedpower-lint: unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<fedpower::lint::Finding> findings;
  try {
    findings = fedpower::lint::lint_tree(root, inputs);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (json)
    std::cout << fedpower::lint::to_json(findings);
  else
    std::cout << fedpower::lint::to_text(findings);

  if (must_fail) {
    if (findings.empty()) {
      std::cerr << "fedpower-lint: --must-fail but no findings — the linter "
                   "no longer catches the broken fixtures\n";
      return 1;
    }
    return 0;
  }
  if (!findings.empty()) {
    std::cerr << "fedpower-lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
