// Declaration-aware contract analyzer for fedpower-lint (DESIGN.md §8).
//
// The token-stream rules (L1–L7, lint.cpp) catch forbidden *calls*; the two
// load-bearing repo contracts — bit-identical checkpoint/resume and the
// serve subsystem's no-locks-by-partitioning invariant — fail through
// forbidden *omissions*: a data member added but never serialized, a
// Writer/Reader call sequence that skews, shard state touched from the
// wrong thread. Catching those needs declarations, so this layer runs two
// passes on top of the shared scrubbing tokenizer (scrub.hpp):
//
//   pass 1  build_file_model(): a lightweight per-file model — every
//           class/struct with its non-static data members, every method
//           with its parameter list and (when present) body token range,
//           plus out-of-line `Class::method(...) { ... }` definitions.
//           It is a heuristic single-token-lookahead parser, not a C++
//           front end: nested classes, NSDMIs, template members, ctor
//           init lists and `operator` noise are handled; exotic declarators
//           (function pointers, multi-dimensional arrays of members) are
//           conservatively skipped rather than misread.
//
//   pass 2  analyze(): merges the per-file models by class name (headers
//           declare, .cpps define) and runs three rules:
//
//   L8-ckpt-coverage   every non-static data member of a class that
//                      defines save_state must be referenced in BOTH the
//                      save_state and restore_state bodies, or carry a
//                      `// lint: ckpt-skip(reason)` annotation stating why
//                      it is deliberately not state (caches, config,
//                      thread counts — DESIGN.md §9).
//   L9-ckpt-symmetry   the ordered sequence of typed ckpt::Writer calls in
//                      save_state must mirror the ckpt::Reader calls in
//                      restore_state by kind and loop depth (u64 pairs
//                      with u64, vec_f64 with vec_f64, write_tag with
//                      expect_tag, save_rng with restore_rng, nested
//                      member save_state with the member's restore_state),
//                      catching type/order skew that decodes as
//                      valid-but-wrong bytes the container CRC cannot see.
//                      Waive on the save_state definition line with
//                      `// lint: ckpt-sym-ok(reason)`.
//   L10-shard-ownership in shard-ownership dirs (src/serve), a data member
//                      touched both by worker-thread methods (the
//                      transitive closure of methods a `std::thread(...)`
//                      construction names) and by orchestrator methods
//                      must be an SpscQueue, std::atomic or const —
//                      anything else crossing the injector/worker boundary
//                      is a data race the partitioning idiom exists to
//                      exclude. Waive on the member with
//                      `// lint: shard-ok(reason)`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fedpower_lint/lint.hpp"
#include "fedpower_lint/scrub.hpp"

namespace fedpower::lint {

/// One token of the flattened file, with its 0-based source line.
struct SourceToken {
  bool ident = false;
  std::string text;
  std::size_t line = 0;
};

/// A non-static-or-static data member declaration.
struct MemberModel {
  std::string name;
  std::string type;      ///< declaration tokens left of the name, joined
  std::size_t line = 0;  ///< 0-based line of the declarator name
  bool is_static = false;
};

/// A method declaration or definition. Body ranges index FileModel::tokens.
struct MethodModel {
  std::string name;
  std::size_t line = 0;  ///< 0-based line of the method name
  bool has_body = false;
  bool is_ctor = false;
  bool is_dtor = false;
  std::size_t body_begin = 0;  ///< first token inside the body braces
  std::size_t body_end = 0;    ///< one past the last body token
  std::vector<std::string> param_names;
  std::vector<std::string> param_types;  ///< joined tokens, aligned
};

/// A class/struct definition with its direct members and methods. Nested
/// classes appear as their own ClassModel with a qualified name.
struct ClassModel {
  std::string name;       ///< simple name ("ShardedServer")
  std::string qualified;  ///< nesting chain ("ShardedServer::Shard")
  std::size_t line = 0;
  bool templated = false;
  std::vector<MemberModel> members;
  std::vector<MethodModel> methods;
};

/// An out-of-line `Class::method(...) { ... }` definition.
struct OutOfLineMethod {
  std::string class_name;  ///< innermost class on the :: chain
  MethodModel method;
};

/// Pass-1 output for one translation unit.
struct FileModel {
  std::string path;                 ///< normalized repo-relative path
  std::vector<SourceToken> tokens;  ///< flattened scrubbed token stream
  std::vector<ClassModel> classes;
  std::vector<OutOfLineMethod> out_of_line;
};

/// Builds the declaration model from an already-scrubbed file.
[[nodiscard]] FileModel build_file_model(const std::string& path,
                                         const Scrubbed& scrubbed);

/// Pass 2 over a set of file models (typically one scan root). `waivers`
/// is aligned with `models`; rules consume waivers through it so the tree
/// driver can afterwards report the stale ones. Findings are unsorted; the
/// caller merges and sorts.
[[nodiscard]] std::vector<Finding> analyze(
    const std::vector<FileModel>& models, std::vector<WaiverSet*>& waivers,
    const Options& options);

}  // namespace fedpower::lint
