#include "fedpower_lint/analyze.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace fedpower::lint {
namespace {

// ---------------------------------------------------------------------------
// Small token helpers over the flattened stream.
// ---------------------------------------------------------------------------

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "if",      "else",    "for",      "while",   "do",       "switch",
      "case",    "return",  "break",    "continue", "sizeof",  "throw",
      "new",     "delete",  "const",    "constexpr", "static", "inline",
      "virtual", "explicit", "mutable", "volatile", "typename", "template",
      "class",   "struct",  "union",    "enum",    "public",   "private",
      "protected", "operator", "using", "typedef", "friend",   "namespace",
      "noexcept", "override", "final",  "default", "catch",    "try",
      "static_assert", "alignas", "decltype", "co_await", "co_return"};
  return kw;
}

bool under_dir(const std::string& path, const std::string& dir) {
  return path.size() > dir.size() + 1 &&
         path.compare(0, dir.size(), dir) == 0 && path[dir.size()] == '/';
}

bool under_any(const std::string& path, const std::vector<std::string>& dirs) {
  return std::any_of(dirs.begin(), dirs.end(), [&](const std::string& d) {
    return under_dir(path, d);
  });
}

std::vector<SourceToken> lex_flat(const Scrubbed& scrubbed) {
  std::vector<SourceToken> out;
  for (std::size_t line = 0; line < scrubbed.code.size(); ++line)
    for (const Token& tok : lex(scrubbed.code[line]))
      out.push_back({tok.ident, tok.text, line});
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: the declaration-model parser. A heuristic recursive scanner over
// the flattened token stream — single lookahead, balanced-bracket skipping,
// and an identifier-before-'<' heuristic for template argument lists. It
// deliberately skips what it cannot classify (function-pointer members,
// anonymous aggregates) so a modeled declaration is trustworthy.
// ---------------------------------------------------------------------------

class ModelBuilder {
 public:
  ModelBuilder(const std::vector<SourceToken>& tokens, FileModel* out)
      : t_(tokens), n_(tokens.size()), out_(out) {}

  void run() { parse_scope(0, n_, {}); }

 private:
  [[nodiscard]] bool is(std::size_t i, const char* text) const {
    return i < n_ && t_[i].text == text;
  }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < n_ && t_[i].ident;
  }
  [[nodiscard]] bool ident_is(std::size_t i, const char* text) const {
    return ident(i) && t_[i].text == text;
  }

  /// t_[i] must be `open`; returns the index one past the matching close
  /// (or `end` when unbalanced).
  [[nodiscard]] std::size_t skip_balanced(std::size_t i, std::size_t end,
                                          const char* open,
                                          const char* close) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (t_[i].text == open) ++depth;
      if (t_[i].text == close && --depth == 0) return i + 1;
    }
    return end;
  }

  /// t_[i] must be "<". Returns one past the matching ">"; bails (returns
  /// i + 1, treating the token as a comparison) at ';', '{' or imbalance.
  [[nodiscard]] std::size_t skip_template_args(std::size_t i,
                                               std::size_t end) const {
    int depth = 0;
    for (std::size_t j = i; j < end; ++j) {
      const std::string& txt = t_[j].text;
      if (txt == "<") ++depth;
      else if (txt == ">") {
        if (--depth == 0) return j + 1;
      } else if (txt == ";" || txt == "{") {
        break;
      } else if (txt == "(") {
        j = skip_balanced(j, end, "(", ")") - 1;
      }
    }
    return i + 1;
  }

  /// Skips to one past the next ';' at bracket depth 0.
  [[nodiscard]] std::size_t skip_statement(std::size_t i,
                                           std::size_t end) const {
    for (; i < end; ++i) {
      const std::string& txt = t_[i].text;
      if (txt == "(") i = skip_balanced(i, end, "(", ")") - 1;
      else if (txt == "{") i = skip_balanced(i, end, "{", "}") - 1;
      else if (txt == "[") i = skip_balanced(i, end, "[", "]") - 1;
      else if (txt == ";") return i + 1;
    }
    return end;
  }

  /// Skips `template < ... >`.
  [[nodiscard]] std::size_t skip_template_intro(std::size_t i,
                                                std::size_t end) const {
    ++i;  // past "template"
    if (is(i, "<")) return skip_template_args(i, end);
    return i;
  }

  /// Skips an enum definition (body and trailing ';').
  [[nodiscard]] std::size_t skip_enum(std::size_t i, std::size_t end) const {
    for (; i < end; ++i) {
      if (t_[i].text == ";") return i + 1;
      if (t_[i].text == "{") {
        i = skip_balanced(i, end, "{", "}");
        return i < end && t_[i].text == ";" ? i + 1 : i;
      }
    }
    return end;
  }

  /// Skips a preprocessor directive: t_[i] is "#"; consumes to the end of
  /// the physical line, following backslash continuations.
  [[nodiscard]] std::size_t skip_directive(std::size_t i,
                                           std::size_t end) const {
    std::size_t line = t_[i].line;
    std::size_t j = i;
    while (j < end) {
      if (t_[j].line != line) {
        if (t_[j - 1].text != "\\") break;
        line = t_[j].line;  // continuation: the directive spans this line too
      }
      ++j;
    }
    return j;
  }

  // --- scope parsing --------------------------------------------------------

  void parse_scope(std::size_t i, std::size_t end,
                   std::vector<std::string> stack) {
    bool pending_template = false;
    while (i < end) {
      const std::string& txt = t_[i].text;
      if (txt == "#") {
        i = skip_directive(i, end);
      } else if (txt == ";") {
        ++i;
        pending_template = false;
      } else if (ident_is(i, "template")) {
        i = skip_template_intro(i, end);
        pending_template = true;
      } else if (ident_is(i, "namespace")) {
        std::size_t j = i + 1;
        std::string names;  // "a::b::" for `namespace a::b`; empty if anonymous
        while (j < end && t_[j].text != "{" && t_[j].text != ";" &&
               t_[j].text != "=") {
          if (ident(j) && cpp_keywords().count(t_[j].text) == 0)
            names += t_[j].text + "::";
          ++j;
        }
        if (j < end && t_[j].text == "{") {
          const std::size_t close = skip_balanced(j, end, "{", "}");
          const std::string saved = ns_prefix_;
          ns_prefix_ += names;
          parse_scope(j + 1, close - 1, stack);
          ns_prefix_ = saved;
          i = close;
        } else {
          i = skip_statement(j, end);
        }
        pending_template = false;
      } else if (ident_is(i, "class") || ident_is(i, "struct") ||
                 ident_is(i, "union")) {
        i = parse_class(i, end, stack, pending_template);
        pending_template = false;
      } else if (ident_is(i, "enum")) {
        i = skip_enum(i, end);
        pending_template = false;
      } else if (ident_is(i, "using") || ident_is(i, "typedef") ||
                 ident_is(i, "static_assert") || ident_is(i, "friend")) {
        i = skip_statement(i, end);
        pending_template = false;
      } else if (ident_is(i, "extern") && is(i + 1, "{")) {
        const std::size_t close = skip_balanced(i + 1, end, "{", "}");
        parse_scope(i + 2, close - 1, stack);
        i = close;
      } else {
        i = parse_declaration(i, end, nullptr, pending_template);
        pending_template = false;
      }
    }
  }

  /// Parses from the class/struct/union keyword. Returns the resume index.
  /// Forward declarations and elaborated-type member uses fall through to
  /// ordinary declaration parsing.
  std::size_t parse_class(std::size_t i, std::size_t end,
                          const std::vector<std::string>& stack,
                          bool templated) {
    std::size_t j = i + 1;
    while (j < end && t_[j].text == "[")  // attributes
      j = skip_balanced(j, end, "[", "]");
    std::string name;
    std::size_t name_line = j < n_ ? t_[j].line : 0;
    if (ident(j) && cpp_keywords().count(t_[j].text) == 0) {
      name = t_[j].text;
      name_line = t_[j].line;
      ++j;
      while (is(j, "::") && ident(j + 1)) {  // out-of-line nested definition
        name = t_[j + 1].text;
        name_line = t_[j + 1].line;
        j += 2;
      }
      if (is(j, "<")) j = skip_template_args(j, end);  // specialization
    }
    // Scan the (optional) base clause for the defining '{'.
    std::size_t k = j;
    while (k < end && t_[k].text != "{" && t_[k].text != ";" &&
           t_[k].text != "(" && t_[k].text != "=") {
      if (t_[k].text == "<")
        k = skip_template_args(k, end);
      else
        ++k;
    }
    if (k >= end || t_[k].text == ";") return k >= end ? end : k + 1;
    if (t_[k].text == "(" || t_[k].text == "=") {
      // `struct tm foo(...)` / `struct X y = ...` — an elaborated type in a
      // declaration, not a definition.
      return parse_declaration(i + 1, end, nullptr, false);
    }
    const std::size_t close = skip_balanced(k, end, "{", "}");
    if (!name.empty()) {
      ClassModel model;
      model.name = name;
      std::string qualified = ns_prefix_;
      for (const std::string& outer : stack) qualified += outer + "::";
      model.qualified = qualified + name;
      model.line = name_line;
      model.templated = templated;
      std::vector<std::string> inner_stack = stack;
      inner_stack.push_back(name);
      parse_class_body(k + 1, close - 1, &model, inner_stack);
      out_->classes.push_back(std::move(model));
    }
    // Skip any declarator between '}' and ';' (e.g. `} instance;`).
    return skip_statement(close, end);
  }

  void parse_class_body(std::size_t i, std::size_t end, ClassModel* model,
                        const std::vector<std::string>& stack) {
    bool pending_template = false;
    while (i < end) {
      const std::string& txt = t_[i].text;
      if (txt == "#") {
        i = skip_directive(i, end);
      } else if (txt == ";") {
        ++i;
      } else if ((ident_is(i, "public") || ident_is(i, "private") ||
                  ident_is(i, "protected")) &&
                 is(i + 1, ":")) {
        i += 2;
      } else if (ident_is(i, "template")) {
        i = skip_template_intro(i, end);
        pending_template = true;
        continue;
      } else if (ident_is(i, "using") || ident_is(i, "typedef") ||
                 ident_is(i, "static_assert") || ident_is(i, "friend")) {
        i = skip_statement(i, end);
      } else if (ident_is(i, "enum")) {
        i = skip_enum(i, end);
      } else if ((ident_is(i, "class") || ident_is(i, "struct") ||
                  ident_is(i, "union")) &&
                 nested_definition_ahead(i, end)) {
        i = parse_class(i, end, stack, pending_template);
      } else {
        i = parse_declaration(i, end, model, pending_template);
      }
      pending_template = false;
    }
  }

  /// Distinguishes a nested type definition from an elaborated-type member
  /// declaration (`struct tm epoch_;`): a definition reaches '{' before
  /// ';', '(' or '='.
  [[nodiscard]] bool nested_definition_ahead(std::size_t i,
                                             std::size_t end) const {
    for (std::size_t j = i + 1; j < end; ++j) {
      const std::string& txt = t_[j].text;
      if (txt == "{") return true;
      if (txt == ";" || txt == "(" || txt == "=") return false;
      if (txt == "<") j = skip_template_args(j, end) - 1;
    }
    return false;
  }

  // --- declarations ---------------------------------------------------------

  /// Parses one declaration statement: a data member / variable (ends at
  /// ';'), a function declaration (ends at ';'), or a function definition
  /// (ends at the body's '}'). `model` is the enclosing class, or nullptr
  /// at namespace scope (where only out-of-line method definitions are
  /// recorded). Returns the resume index.
  std::size_t parse_declaration(std::size_t i, std::size_t end,
                                ClassModel* model, bool templated) {
    const std::size_t begin = i;
    std::size_t paren_begin = 0, paren_end = 0;  // param-list candidate
    bool seen_eq = false;
    bool seen_operator = false;
    bool in_init_list = false;
    std::string prev;  // previous top-level token text
    std::size_t j = i;
    while (j < end) {
      const std::string& txt = t_[j].text;
      if (txt == ";") return finish_declaration(begin, j, paren_begin,
                                                paren_end, seen_operator,
                                                model, templated, 0, 0),
                             j + 1;
      if (txt == "{") {
        if (seen_eq || (in_init_list && ident(j - 1) && t_[j - 1].text != "const" &&
                        t_[j - 1].text != "noexcept")) {
          // Initializer braces (= {...} or a brace-init inside a ctor
          // init list): part of the declaration, keep scanning.
          j = skip_balanced(j, end, "{", "}");
          prev = "}";
          continue;
        }
        if (paren_end != 0) {
          // Function body.
          const std::size_t body_close = skip_balanced(j, end, "{", "}");
          finish_declaration(begin, j, paren_begin, paren_end, seen_operator,
                             model, templated, j + 1,
                             body_close > 0 ? body_close - 1 : j + 1);
          return body_close;
        }
        // NSDMI brace-init: `std::atomic<int> x{0};`
        j = skip_balanced(j, end, "{", "}");
        prev = "}";
        continue;
      }
      if (txt == "(") {
        const std::size_t close = skip_balanced(j, end, "(", ")");
        if (paren_end == 0 && !seen_eq && ident(j - 1) && j > begin &&
            cpp_keywords().count(t_[j - 1].text) == 0) {
          paren_begin = j + 1;
          paren_end = close - 1;
        }
        j = close;
        prev = ")";
        continue;
      }
      if (txt == "[") {
        j = skip_balanced(j, end, "[", "]");
        prev = "]";
        continue;
      }
      if (txt == "=") {
        if (ident_is(j - 1, "operator")) {
          seen_operator = true;
        } else {
          seen_eq = true;
        }
        prev = txt;
        ++j;
        continue;
      }
      if (txt == ":" && paren_end != 0) in_init_list = true;
      if (txt == "<" && ident(j - 1) && !seen_eq &&
          cpp_keywords().count(t_[j - 1].text) == 0) {
        j = skip_template_args(j, end);
        prev = ">";
        continue;
      }
      if (ident_is(j, "operator")) seen_operator = true;
      prev = txt;
      ++j;
    }
    return end;
  }

  /// Records the parsed declaration. `body_begin`/`body_end` are 0 for
  /// body-less declarations.
  void finish_declaration(std::size_t begin, std::size_t decl_end,
                          std::size_t paren_begin, std::size_t paren_end,
                          bool seen_operator, ClassModel* model,
                          bool templated, std::size_t body_begin,
                          std::size_t body_end) {
    (void)templated;
    if (seen_operator) return;  // operators carry no contract we check
    if (paren_end != 0) {
      record_method(begin, paren_begin, paren_end, model, body_begin,
                    body_end);
      return;
    }
    if (model == nullptr || body_begin != 0) return;
    record_members(begin, decl_end, model);
  }

  void record_method(std::size_t begin, std::size_t paren_begin,
                     std::size_t paren_end, ClassModel* model,
                     std::size_t body_begin, std::size_t body_end) {
    const std::size_t name_idx = paren_begin - 2;  // ident before '('
    if (!ident(name_idx)) return;
    MethodModel method;
    method.name = t_[name_idx].text;
    method.line = t_[name_idx].line;
    method.has_body = body_begin != 0;
    method.body_begin = body_begin;
    method.body_end = body_end;
    method.is_dtor = name_idx > begin && t_[name_idx - 1].text == "~";
    parse_params(paren_begin, paren_end, &method);
    if (model != nullptr) {
      method.is_ctor = !method.is_dtor && method.name == model->name;
      model->methods.push_back(std::move(method));
      return;
    }
    // Namespace scope: record only `Class::method` definitions with bodies.
    // The whole `Outer::Inner::method` chain plus the enclosing namespaces
    // qualifies the class, so same-named classes in different namespaces
    // (or in namespace-free bench/test files) never share bodies.
    if (!method.has_body) return;
    std::size_t chain_idx = method.is_dtor ? name_idx - 1 : name_idx;
    std::vector<std::string> chain;
    while (chain_idx >= begin + 2 && t_[chain_idx - 1].text == "::" &&
           ident(chain_idx - 2)) {
      chain.insert(chain.begin(), t_[chain_idx - 2].text);
      chain_idx -= 2;
    }
    if (chain.empty()) return;
    OutOfLineMethod out;
    out.class_name = ns_prefix_;
    for (const std::string& part : chain) {
      if (out.class_name != ns_prefix_) out.class_name += "::";
      out.class_name += part;
    }
    method.is_ctor = !method.is_dtor && method.name == chain.back();
    out.method = std::move(method);
    out_->out_of_line.push_back(std::move(out));
  }

  void parse_params(std::size_t begin, std::size_t end, MethodModel* method) {
    if (begin >= end) return;
    if (end == begin + 1 && ident_is(begin, "void")) return;
    std::size_t chunk_start = begin;
    auto flush = [&](std::size_t chunk_end) {
      // Trim default argument.
      std::size_t effective = chunk_end;
      for (std::size_t j = chunk_start; j < chunk_end; ++j) {
        if (t_[j].text == "=") {
          effective = j;
          break;
        }
        if (t_[j].text == "(") j = skip_balanced(j, chunk_end, "(", ")") - 1;
        if (t_[j].text == "<" && ident(j - 1))
          j = skip_template_args(j, chunk_end) - 1;
      }
      if (effective <= chunk_start) return;
      std::string name;
      std::size_t type_end = effective;
      if (ident(effective - 1) && effective - 1 > chunk_start) {
        name = t_[effective - 1].text;
        type_end = effective - 1;
      }
      std::string type;
      for (std::size_t j = chunk_start; j < type_end; ++j) {
        if (!type.empty()) type += ' ';
        type += t_[j].text;
      }
      method->param_names.push_back(name);
      method->param_types.push_back(type);
      chunk_start = chunk_end + 1;
    };
    int depth = 0;
    for (std::size_t j = begin; j < end; ++j) {
      const std::string& txt = t_[j].text;
      if (txt == "(") j = skip_balanced(j, end, "(", ")") - 1;
      else if (txt == "[") j = skip_balanced(j, end, "[", "]") - 1;
      else if (txt == "{") j = skip_balanced(j, end, "{", "}") - 1;
      else if (txt == "<" && ident(j - 1) && depth == 0)
        j = skip_template_args(j, end) - 1;
      else if (txt == "," && depth == 0)
        flush(j);
    }
    flush(end);
  }

  void record_members(std::size_t begin, std::size_t end, ClassModel* model) {
    bool is_static = false;
    for (std::size_t j = begin; j < end; ++j)
      if (ident_is(j, "static")) is_static = true;
    // Split the declarator list at top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::size_t chunk_start = begin;
    for (std::size_t j = begin; j < end; ++j) {
      const std::string& txt = t_[j].text;
      if (txt == "(") j = skip_balanced(j, end, "(", ")") - 1;
      else if (txt == "[") j = skip_balanced(j, end, "[", "]") - 1;
      else if (txt == "{") j = skip_balanced(j, end, "{", "}") - 1;
      else if (txt == "<" && ident(j - 1) &&
               cpp_keywords().count(t_[j - 1].text) == 0)
        j = skip_template_args(j, end) - 1;
      else if (txt == ",") {
        chunks.push_back({chunk_start, j});
        chunk_start = j + 1;
      }
    }
    chunks.push_back({chunk_start, end});

    std::string shared_type;
    for (const auto& [cb, ce] : chunks) {
      // Trim initializer / array extent / bitfield width.
      std::size_t effective = ce;
      for (std::size_t j = cb; j < ce; ++j) {
        const std::string& txt = t_[j].text;
        if (txt == "=" || txt == "{" || txt == "[" || txt == ":") {
          effective = j;
          break;
        }
        if (txt == "<" && ident(j - 1) &&
            cpp_keywords().count(t_[j - 1].text) == 0)
          j = skip_template_args(j, ce) - 1;
      }
      if (effective <= cb || !ident(effective - 1)) continue;
      const std::size_t name_idx = effective - 1;
      if (cpp_keywords().count(t_[name_idx].text) != 0) continue;
      if (name_idx == cb) continue;  // a lone identifier is not a member
      MemberModel member;
      member.name = t_[name_idx].text;
      member.line = t_[name_idx].line;
      member.is_static = is_static;
      std::string type;
      for (std::size_t j = cb; j < name_idx; ++j) {
        if (!type.empty()) type += ' ';
        type += t_[j].text;
      }
      if (&chunks.front().first == &cb) shared_type = type;
      member.type = type.empty() ? shared_type : type;
      model->members.push_back(std::move(member));
    }
  }

  const std::vector<SourceToken>& t_;
  const std::size_t n_;
  FileModel* out_;
  std::string ns_prefix_;  ///< enclosing namespaces as "a::b::"; "" at global
};

// ---------------------------------------------------------------------------
// Pass 2 support: merged class view and body scanning.
// ---------------------------------------------------------------------------

struct BoundMethod {
  const MethodModel* method = nullptr;
  const FileModel* file = nullptr;
  std::size_t waiver_index = 0;  ///< index into the aligned WaiverSet vector
};

struct MergedClass {
  const ClassModel* decl = nullptr;
  const FileModel* decl_file = nullptr;
  std::size_t decl_waivers = 0;
  std::vector<BoundMethod> bodies;  ///< every method with a body
};

bool range_contains_ident(const FileModel& file, std::size_t begin,
                          std::size_t end, const std::string& name) {
  for (std::size_t i = begin; i < end && i < file.tokens.size(); ++i)
    if (file.tokens[i].ident && file.tokens[i].text == name) return true;
  return false;
}

const BoundMethod* find_body(const MergedClass& merged,
                             const std::string& name) {
  for (const BoundMethod& bound : merged.bodies)
    if (bound.method->name == name) return &bound;
  return nullptr;
}

/// The typed Writer/Reader surface (binary_io.hpp). Writer and Reader use
/// the same method names, so one set covers both sides.
const std::set<std::string>& io_kinds() {
  static const std::set<std::string> kinds = {
      "u8",      "u16",     "u32",    "u64",    "f64",    "f32",   "str",
      "bytes",   "raw",     "vec_f64", "vec_f32", "vec_u8", "vec_u64"};
  return kinds;
}

/// One serialization call, normalized for symmetry comparison.
struct IoCall {
  std::string kind;      ///< "u64", "tag", "rng", "nested", "call"
  std::string receiver;  ///< nested: the member the state belongs to
  std::size_t loop_depth = 0;
  std::size_t line = 0;  ///< 0-based
};

std::string describe(const IoCall& call) {
  std::string out = call.kind;
  if (call.kind == "nested") out += "(" + call.receiver + ")";
  if (call.loop_depth > 0)
    out += " in a depth-" + std::to_string(call.loop_depth) + " loop";
  return out;
}

/// Extracts the ordered typed-I/O sequence of one save_state/restore_state
/// body: direct Writer/Reader calls, write_tag/expect_tag, save_rng/
/// restore_rng, nested member save_state/restore_state, and opaque helper
/// calls that take the stream by reference. Loop depth tracks enclosing
/// for/while/do bodies (braced or single-statement).
std::vector<IoCall> extract_io_calls(const FileModel& file, std::size_t begin,
                                     std::size_t end, const std::string& var) {
  const auto& t = file.tokens;
  std::vector<IoCall> out;
  if (var.empty()) return out;

  // Loop-depth bookkeeping.
  std::vector<bool> brace_is_loop;       // one entry per open '{'
  std::size_t stmt_loops = 0;            // single-statement loops pending ';'
  std::vector<std::size_t> stmt_depths;  // brace depth each was opened at
  bool next_brace_is_loop = false;
  bool loop_header_pending = false;  // between for/while and its ')'
  int header_paren_depth = 0;

  auto loop_depth = [&] {
    std::size_t depth = stmt_loops;
    for (const bool is_loop : brace_is_loop)
      if (is_loop) ++depth;
    if (loop_header_pending) ++depth;  // reads in the header run per-iteration
    return depth;
  };

  auto first_arg_is = [&](std::size_t open_paren, const std::string& name) {
    return open_paren + 1 < end && t[open_paren + 1].ident &&
           t[open_paren + 1].text == name;
  };

  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    const std::string& txt = t[i].text;

    if (loop_header_pending) {
      if (txt == "(") ++header_paren_depth;
      if (txt == ")" && --header_paren_depth == 0) {
        loop_header_pending = false;
        if (i + 1 < end && t[i + 1].text == "{") {
          next_brace_is_loop = true;
        } else {
          ++stmt_loops;
          stmt_depths.push_back(brace_is_loop.size());
        }
      }
    } else if (t[i].ident && (txt == "for" || txt == "while") &&
               i + 1 < end && t[i + 1].text == "(") {
      loop_header_pending = true;
      header_paren_depth = 0;
    } else if (t[i].ident && txt == "do" && i + 1 < end &&
               t[i + 1].text == "{") {
      next_brace_is_loop = true;
    } else if (txt == "{") {
      brace_is_loop.push_back(next_brace_is_loop);
      next_brace_is_loop = false;
    } else if (txt == "}") {
      if (!brace_is_loop.empty()) brace_is_loop.pop_back();
    } else if (txt == ";") {
      while (!stmt_depths.empty() &&
             stmt_depths.back() >= brace_is_loop.size()) {
        stmt_depths.pop_back();
        --stmt_loops;
      }
    }

    if (!t[i].ident) continue;
    const bool after_member_access =
        i > begin && (t[i - 1].text == "." || t[i - 1].text == "->");

    // `stream.kind(...)`
    if (txt == var && i + 3 < end &&
        (t[i + 1].text == "." || t[i + 1].text == "->") && t[i + 2].ident &&
        t[i + 3].text == "(" && io_kinds().count(t[i + 2].text) != 0) {
      out.push_back({t[i + 2].text, "", loop_depth(), t[i + 2].line});
      continue;
    }
    if (i + 1 >= end || t[i + 1].text != "(") continue;

    // `member.save_state(stream)` / `member.restore_state(stream)`
    if ((txt == "save_state" || txt == "restore_state") &&
        after_member_access && first_arg_is(i + 1, var)) {
      std::string receiver = "<expr>";
      if (i >= begin + 2 && t[i - 2].ident) receiver = t[i - 2].text;
      out.push_back({"nested", receiver, loop_depth(), t[i].line});
      continue;
    }
    if (after_member_access) continue;

    if ((txt == "write_tag" || txt == "expect_tag") &&
        first_arg_is(i + 1, var)) {
      out.push_back({"tag", "", loop_depth(), t[i].line});
      continue;
    }
    if ((txt == "save_rng" || txt == "restore_rng") &&
        first_arg_is(i + 1, var)) {
      out.push_back({"rng", "", loop_depth(), t[i].line});
      continue;
    }
    if (cpp_keywords().count(txt) != 0 || txt == var) continue;

    // Opaque helper taking the stream by reference: `helper(..., stream)`.
    const std::size_t close = [&] {
      int depth = 0;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) return j;
      }
      return end;
    }();
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].ident && t[j].text == var &&
          (j + 1 >= close ||
           (t[j + 1].text != "." && t[j + 1].text != "->"))) {
        out.push_back({"call", "", loop_depth(), t[i].line});
        break;
      }
    }
  }
  return out;
}

/// The stream parameter name of a save_state/restore_state body.
std::string stream_param(const MethodModel& method, const char* type_marker) {
  for (std::size_t i = 0; i < method.param_types.size(); ++i)
    if (method.param_types[i].find(type_marker) != std::string::npos)
      return method.param_names[i];
  return {};
}

bool io_calls_match(const IoCall& save, const IoCall& restore) {
  if (save.loop_depth != restore.loop_depth) return false;
  if (save.kind != restore.kind) return false;
  if (save.kind == "nested" && save.receiver != restore.receiver &&
      save.receiver != "<expr>" && restore.receiver != "<expr>")
    return false;
  return true;
}

}  // namespace

FileModel build_file_model(const std::string& path, const Scrubbed& scrubbed) {
  FileModel model;
  model.path = path;
  model.tokens = lex_flat(scrubbed);
  ModelBuilder(model.tokens, &model).run();
  return model;
}

std::vector<Finding> analyze(const std::vector<FileModel>& models,
                             std::vector<WaiverSet*>& waivers,
                             const Options& options) {
  std::vector<Finding> findings;

  // Merge the per-file models: headers declare, .cpps define.
  std::map<std::string, MergedClass> classes;
  for (std::size_t f = 0; f < models.size(); ++f) {
    const FileModel& file = models[f];
    for (const ClassModel& cls : file.classes) {
      MergedClass& merged = classes[cls.qualified];
      if (merged.decl == nullptr) {
        merged.decl = &cls;
        merged.decl_file = &file;
        merged.decl_waivers = f;
      }
      for (const MethodModel& method : cls.methods)
        if (method.has_body) merged.bodies.push_back({&method, &file, f});
    }
    for (const OutOfLineMethod& out : file.out_of_line)
      classes[out.class_name].bodies.push_back({&out.method, &file, f});
  }

  for (auto& [name, merged] : classes) {
    if (merged.decl == nullptr) continue;
    const std::string& decl_path = merged.decl_file->path;
    WaiverSet& decl_waivers = *waivers[merged.decl_waivers];

    // ---- L8 / L9: checkpoint contract --------------------------------------
    if (under_any(decl_path, options.ckpt_contract_dirs)) {
      const BoundMethod* save = find_body(merged, "save_state");
      const BoundMethod* restore = find_body(merged, "restore_state");
      if (save != nullptr && restore != nullptr) {
        // L8: every non-static data member is referenced in both bodies or
        // carries a ckpt-skip annotation saying why it is not state.
        for (const MemberModel& member : merged.decl->members) {
          if (member.is_static) continue;
          const bool in_save = range_contains_ident(
              *save->file, save->method->body_begin, save->method->body_end,
              member.name);
          const bool in_restore = range_contains_ident(
              *restore->file, restore->method->body_begin,
              restore->method->body_end, member.name);
          if (in_save && in_restore) continue;
          if (decl_waivers.try_waive(member.line, "ckpt-skip")) continue;
          const char* where =
              !in_save && !in_restore
                  ? "either save_state or restore_state"
                  : (!in_save ? "save_state" : "restore_state");
          findings.push_back(
              {decl_path, member.line + 1, "L8-ckpt-coverage",
               "data member '" + member.name + "' of '" +
                   merged.decl->qualified + "' is not referenced in " +
                   where +
                   " — a resume would silently lose it; serialize it or "
                   "annotate `// lint: ckpt-skip(reason)` on the member",
               Severity::kError});
        }

        // L9: the typed Writer sequence mirrors the Reader sequence.
        const std::string writer = stream_param(*save->method, "Writer");
        const std::string reader = stream_param(*restore->method, "Reader");
        if (!writer.empty() && !reader.empty()) {
          const auto saves = extract_io_calls(*save->file,
                                              save->method->body_begin,
                                              save->method->body_end, writer);
          const auto reads = extract_io_calls(
              *restore->file, restore->method->body_begin,
              restore->method->body_end, reader);
          std::size_t k = 0;
          while (k < saves.size() && k < reads.size() &&
                 io_calls_match(saves[k], reads[k]))
            ++k;
          if (k < saves.size() || k < reads.size()) {
            const std::size_t report_line =
                k < saves.size() ? saves[k].line : save->method->line;
            WaiverSet& save_waivers = *waivers[save->waiver_index];
            const bool waived =
                save_waivers.try_waive(save->method->line, "ckpt-sym") ||
                save_waivers.try_waive(report_line, "ckpt-sym");
            if (!waived) {
              std::ostringstream msg;
              msg << "save_state/restore_state of '"
                  << merged.decl->qualified << "' diverge at typed call "
                  << (k + 1) << ": ";
              if (k < saves.size() && k < reads.size())
                msg << "save writes " << describe(saves[k])
                    << " but restore reads " << describe(reads[k]);
              else if (k < saves.size())
                msg << "save writes " << describe(saves[k])
                    << " with no matching restore read (" << saves.size()
                    << " writes vs " << reads.size() << " reads)";
              else
                msg << "restore reads " << describe(reads[k])
                    << " with no matching save write (" << saves.size()
                    << " writes vs " << reads.size() << " reads)";
              msg << " — skewed bytes decode as valid-but-wrong state the "
                     "CRC cannot see; fix the order or waive the "
                     "save_state definition with "
                     "`// lint: ckpt-sym-ok(reason)`";
              findings.push_back({save->file->path, report_line + 1,
                                  "L9-ckpt-symmetry", msg.str(),
                                  Severity::kError});
            }
          }
        }
      }
    }

    // ---- L10: shard ownership ----------------------------------------------
    if (under_any(decl_path, options.shard_ownership_dirs) &&
        !merged.bodies.empty()) {
      std::set<std::string> method_names;
      for (const MethodModel& method : merged.decl->methods)
        method_names.insert(method.name);
      for (const BoundMethod& bound : merged.bodies)
        method_names.insert(bound.method->name);

      // Worker entries: methods a std::thread construction names.
      std::set<std::string> workers;
      for (const BoundMethod& bound : merged.bodies) {
        const auto& t = bound.file->tokens;
        for (std::size_t i = bound.method->body_begin;
             i < bound.method->body_end && i < t.size(); ++i) {
          if (!t[i].ident || t[i].text != "thread" ||
              i + 1 >= bound.method->body_end || t[i + 1].text != "(")
            continue;
          int depth = 0;
          for (std::size_t j = i + 1; j < bound.method->body_end; ++j) {
            if (t[j].text == "(") ++depth;
            if (t[j].text == ")" && --depth == 0) break;
            if (t[j].ident && method_names.count(t[j].text) != 0 &&
                j + 1 < bound.method->body_end && t[j + 1].text == "(")
              workers.insert(t[j].text);
          }
        }
      }
      if (workers.empty()) continue;

      // Transitive closure: anything a worker method calls runs on the
      // worker thread too.
      for (bool changed = true; changed;) {
        changed = false;
        for (const BoundMethod& bound : merged.bodies) {
          if (workers.count(bound.method->name) == 0) continue;
          const auto& t = bound.file->tokens;
          for (std::size_t i = bound.method->body_begin;
               i < bound.method->body_end && i < t.size(); ++i) {
            if (!t[i].ident || method_names.count(t[i].text) == 0) continue;
            if (i + 1 >= bound.method->body_end || t[i + 1].text != "(")
              continue;
            const bool member_access =
                i > 0 && (t[i - 1].text == "." ||
                          (t[i - 1].text == "->" &&
                           !(i >= 2 && t[i - 2].ident &&
                             t[i - 2].text == "this")));
            if (member_access) continue;
            if (workers.insert(t[i].text).second) changed = true;
          }
        }
      }

      std::set<std::string> worker_touched;
      std::set<std::string> orchestrator_touched;
      for (const BoundMethod& bound : merged.bodies) {
        const bool is_worker = workers.count(bound.method->name) != 0;
        if (!is_worker && bound.method->is_ctor)
          continue;  // runs before any worker thread exists
        for (const MemberModel& member : merged.decl->members) {
          if (member.is_static) continue;
          if (!range_contains_ident(*bound.file, bound.method->body_begin,
                                    bound.method->body_end, member.name))
            continue;
          (is_worker ? worker_touched : orchestrator_touched)
              .insert(member.name);
        }
      }

      for (const MemberModel& member : merged.decl->members) {
        if (member.is_static) continue;
        if (worker_touched.count(member.name) == 0 ||
            orchestrator_touched.count(member.name) == 0)
          continue;
        const bool safe_type = std::any_of(
            options.shard_safe_types.begin(), options.shard_safe_types.end(),
            [&](const std::string& marker) {
              return member.type.find(marker) != std::string::npos;
            });
        if (safe_type) continue;
        if (decl_waivers.try_waive(member.line, "shard")) continue;
        findings.push_back(
            {decl_path, member.line + 1, "L10-shard-ownership",
             "data member '" + member.name + "' of '" +
                 merged.decl->qualified +
                 "' is touched by worker-thread methods (" +
                 [&] {
                   std::string list;
                   for (const std::string& w : workers)
                     list += (list.empty() ? "" : ", ") + w;
                   return list;
                 }() +
                 ") and by orchestrator methods but is neither an "
                 "SpscQueue, std::atomic nor const — state crossing the "
                 "injector/worker boundary must use the partitioning idiom "
                 "(DESIGN.md §12) or waive with `// lint: shard-ok(reason)`",
             Severity::kError});
      }
    }
  }

  return findings;
}

}  // namespace fedpower::lint
