#include "fedpower_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fedpower_lint/analyze.hpp"
#include "fedpower_lint/scrub.hpp"

namespace fedpower::lint {
namespace {

// ---------------------------------------------------------------------------
// Path helpers
// ---------------------------------------------------------------------------

std::string normalize_path(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  while (path.rfind("./", 0) == 0) path.erase(0, 2);
  return path;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool under_dir(const std::string& path, const std::string& dir) {
  return path.size() > dir.size() + 1 &&
         path.compare(0, dir.size(), dir) == 0 && path[dir.size()] == '/';
}

bool under_any(const std::string& path, const std::vector<std::string>& dirs) {
  return std::any_of(dirs.begin(), dirs.end(), [&](const std::string& d) {
    return under_dir(path, d);
  });
}

bool is_header_path(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") ||
         ends_with(path, ".hh");
}

bool is_source_path(const std::string& path) {
  return is_header_path(path) || ends_with(path, ".cpp") ||
         ends_with(path, ".cc");
}

bool tok_is(const std::vector<Token>& toks, std::size_t i, const char* text) {
  return i < toks.size() && toks[i].text == text;
}

bool prev_is_member_access(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

// ---------------------------------------------------------------------------
// Token-stream rule engine (L1–L7)
// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(std::string path, const Scrubbed& src, WaiverSet* waivers,
          const Options& options)
      : path_(std::move(path)), src_(src), waivers_(waivers),
        options_(options) {
    for (const auto& line : src_.code) tokens_.push_back(lex(line));
  }

  std::vector<Finding> run() {
    const bool header = is_header_path(path_);
    if (std::find(options_.nondet_allowlist.begin(),
                  options_.nondet_allowlist.end(),
                  path_) == options_.nondet_allowlist.end())
      check_nondet();
    if (under_any(path_, options_.determinism_dirs)) check_unordered_iter();
    if (under_any(path_, options_.fp_reduce_dirs)) check_fp_reduce();
    if (header) check_header_hygiene();
    if (under_any(path_, options_.thread_rule_dirs)) check_threading();
    if (under_any(path_, options_.fs_write_dirs) &&
        std::find(options_.fs_write_allowlist.begin(),
                  options_.fs_write_allowlist.end(),
                  path_) == options_.fs_write_allowlist.end())
      check_fs_write();
    if (under_any(path_, options_.syscall_dirs) &&
        std::find(options_.syscall_allowlist.begin(),
                  options_.syscall_allowlist.end(),
                  path_) == options_.syscall_allowlist.end())
      check_syscall();
    return std::move(findings_);
  }

 private:
  void report(std::size_t line_idx, const char* waiver_key, std::string rule,
              std::string message) {
    if (waivers_->try_waive(line_idx, waiver_key)) return;
    findings_.push_back({path_, line_idx + 1, std::move(rule),
                         std::move(message), Severity::kError});
  }

  // L1: nondeterminism sources. Everything stochastic must flow through
  // explicitly seeded util::Rng streams; wall-clock reads are only legal in
  // allowlisted files or under a nondet-ok waiver (e.g. bench timing).
  void check_nondet() {
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident) continue;
        const std::string& t = toks[i].text;
        const bool call = tok_is(toks, i + 1, "(");
        const bool member = prev_is_member_access(toks, i);
        std::string what;
        if (t == "srand" && call && !member)
          what = "srand() seeds global libc state";
        else if (t == "rand" && call && !member)
          what = "rand() draws from hidden global state";
        else if (t == "random_device")
          what = "std::random_device is entropy-seeded";
        else if (t == "time" && call && !member)
          what = "time() makes results depend on the wall clock";
        else if (t == "getenv" && call && !member)
          what = "getenv() makes behaviour depend on the environment";
        else if (t == "now" && call && i > 0 && toks[i - 1].text == "::")
          what = "clock ::now() reads the wall clock";
        if (!what.empty())
          report(li, "nondet", "L1-nondet",
                 what + "; use a seeded util::Rng stream or waive with "
                        "`// lint: nondet-ok(reason)`");
      }
    }
  }

  // L2: iteration over hash containers on determinism-critical paths.
  // Declaring/looking up in an unordered container is fine — iterating one
  // feeds platform-dependent bucket order into FP accumulation (§8).
  void check_unordered_iter() {
    const std::set<std::string> unordered_types = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    // Pass A: names declared (on one line) with an unordered container type.
    std::set<std::string> unordered_names;
    for (const auto& toks : tokens_) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident || unordered_types.count(toks[i].text) == 0)
          continue;
        std::size_t j = i + 1;
        if (!tok_is(toks, j, "<")) continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">" && --depth == 0) break;
        }
        ++j;  // past closing '>'
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
          ++j;  // reference/pointer/const qualifiers before the name
        if (j >= toks.size() || !toks[j].ident || toks[j].text == "const")
          continue;
        // `name` is a variable iff not immediately called/qualified.
        if (j + 1 == toks.size() || tok_is(toks, j + 1, ";") ||
            tok_is(toks, j + 1, "=") || tok_is(toks, j + 1, "{") ||
            tok_is(toks, j + 1, ",") || tok_is(toks, j + 1, ")"))
          unordered_names.insert(toks[j].text);
      }
    }
    // Pass B: range-for over an unordered expression, or begin()/end() on a
    // known unordered name.
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].ident && toks[i].text == "for" && tok_is(toks, i + 1, "(")) {
          int depth = 0;
          std::size_t colon = 0;
          for (std::size_t j = i + 1; j < toks.size(); ++j) {
            if (toks[j].text == "(") ++depth;
            if (toks[j].text == ")" && --depth == 0) break;
            if (toks[j].text == ":" && depth == 1) {
              colon = j;
              break;
            }
          }
          if (colon == 0) continue;
          int depth2 = 1;
          for (std::size_t j = colon + 1; j < toks.size(); ++j) {
            if (toks[j].text == "(") ++depth2;
            if (toks[j].text == ")" && --depth2 == 0) break;
            if (toks[j].ident && (unordered_names.count(toks[j].text) != 0 ||
                                  unordered_types.count(toks[j].text) != 0))
              report(li, "ordered", "L2-unordered-iter",
                     "range-for over unordered container '" + toks[j].text +
                         "': bucket order is platform-defined; iterate an "
                         "ordered structure or waive with "
                         "`// lint: ordered-ok(reason)`");
          }
        }
        if (toks[i].ident && unordered_names.count(toks[i].text) != 0 &&
            (tok_is(toks, i + 1, ".") || tok_is(toks, i + 1, "->"))) {
          static const std::set<std::string> iter_fns = {
              "begin", "end", "cbegin", "cend", "rbegin", "rend"};
          if (i + 2 < toks.size() && toks[i + 2].ident &&
              iter_fns.count(toks[i + 2].text) != 0 && tok_is(toks, i + 3, "("))
            report(li, "ordered", "L2-unordered-iter",
                   "iterator over unordered container '" + toks[i].text +
                       "': bucket order is platform-defined; iterate an "
                       "ordered structure or waive with "
                       "`// lint: ordered-ok(reason)`");
        }
      }
    }
  }

  // L3: FP reductions in src/fed. Aggregation must keep the model-order
  // accumulation loops (fed/aggregate.hpp) — std::accumulate/std::reduce
  // make the summation order an implementation detail.
  void check_fp_reduce() {
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident) continue;
        const std::string& t = toks[i].text;
        if ((t == "accumulate" || t == "reduce") && tok_is(toks, i + 1, "(") &&
            !prev_is_member_access(toks, i))
          report(li, "fpreduce", "L3-fp-reduce",
                 "std::" + t +
                     " hides the floating-point summation order; use the "
                     "documented model-order loop (fed/aggregate.hpp) or "
                     "waive with `// lint: fpreduce-ok(reason)`");
      }
    }
  }

  // L4: header hygiene — a guard up front, no using namespace at namespace
  // scope. (The tokenizer can't see scopes, so any `using namespace` in a
  // header is flagged; function-local uses are rare enough to waive.)
  void check_header_hygiene() {
    bool guard_seen = false;
    bool first_code_checked = false;
    for (std::size_t li = 0; li < src_.code.size() && !first_code_checked;
         ++li) {
      const auto& toks = tokens_[li];
      if (toks.empty()) continue;
      first_code_checked = true;
      if (tok_is(toks, 0, "#") &&
          ((tok_is(toks, 1, "pragma") && tok_is(toks, 2, "once")) ||
           tok_is(toks, 1, "ifndef")))
        guard_seen = true;
      if (!guard_seen)
        report(li, "header", "L4-header-guard",
               "header must open with #pragma once or an #ifndef include "
               "guard before any code");
    }
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].ident && toks[i].text == "using" && toks[i + 1].ident &&
            toks[i + 1].text == "namespace")
          report(li, "header", "L4-using-namespace",
                 "using namespace in a header leaks into every includer; "
                 "qualify names or waive with `// lint: header-ok(reason)`");
      }
    }
  }

  // L5: threading discipline in src/ — no detached threads (they outlive
  // the barrier semantics of §7) and no raw mutex lock()/unlock() (a thrown
  // exception leaks the lock; use a guard type).
  void check_threading() {
    static const std::set<std::string> lock_fns = {"lock", "unlock",
                                                   "try_lock"};
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident) continue;
        if (toks[i].text == "detach" && prev_is_member_access(toks, i) &&
            tok_is(toks, i + 1, "(")) {
          report(li, "thread", "L5-thread-detach",
                 "detached threads escape the pool's barrier/exception "
                 "contract (DESIGN.md §7); join them or waive with "
                 "`// lint: thread-ok(reason)`");
        }
        const std::string low = lower(toks[i].text);
        if ((low.find("mutex") != std::string::npos ||
             low.find("mtx") != std::string::npos) &&
            (tok_is(toks, i + 1, ".") || tok_is(toks, i + 1, "->")) &&
            i + 2 < toks.size() && toks[i + 2].ident &&
            lock_fns.count(toks[i + 2].text) != 0 && tok_is(toks, i + 3, "(")) {
          report(li, "thread", "L5-raw-mutex-lock",
                 "raw ." + toks[i + 2].text + "() on '" + toks[i].text +
                     "' is not exception-safe; use std::lock_guard/"
                     "unique_lock/scoped_lock or waive with "
                     "`// lint: thread-ok(reason)`");
        }
      }
    }
  }

  // L6: ad-hoc file writing in src/. Durable artifacts must go through
  // ckpt::write_snapshot_file (temp + fsync + rename + checksum) so a crash
  // never leaves a torn file; only the allowlisted writers (the snapshot
  // subsystem itself and the explicitly non-durable exporters) may open
  // writable streams directly.
  void check_fs_write() {
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident) continue;
        const std::string& t = toks[i].text;
        std::string what;
        if (t == "ofstream")
          what = "std::ofstream writes a file without atomicity or checksum";
        else if ((t == "fopen" || t == "freopen") &&
                 tok_is(toks, i + 1, "(") && !prev_is_member_access(toks, i))
          what = t + "() writes a file without atomicity or checksum";
        if (!what.empty())
          report(li, "fs", "L6-fs-write",
                 what + "; route durable state through "
                        "ckpt::write_snapshot_file (src/ckpt/snapshot.hpp) "
                        "or waive with `// lint: fs-ok(reason)`");
      }
    }
  }

  // L7: raw event-loop syscalls in src/. epoll/eventfd/accept4 plumbing is
  // confined to the designated event-loop translation units (the blocking
  // transport and the serve front end) so reviewers can audit every place
  // the process touches the readiness machinery.
  void check_syscall() {
    static const std::set<std::string> syscall_fns = {
        "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait",
        "epoll_pwait",  "eventfd",       "accept4"};
    for (std::size_t li = 0; li < tokens_.size(); ++li) {
      const auto& toks = tokens_[li];
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident || syscall_fns.count(toks[i].text) == 0) continue;
        if (!tok_is(toks, i + 1, "(") || prev_is_member_access(toks, i))
          continue;
        report(li, "syscall", "L7-raw-syscall",
               toks[i].text +
                   "() belongs in a designated event-loop translation unit "
                   "(fed/tcp_transport.cpp, serve/epoll_server.cpp); route "
                   "through the serve front end or waive with "
                   "`// lint: syscall-ok(reason)`");
      }
    }
  }

  std::string path_;
  const Scrubbed& src_;
  WaiverSet* waivers_;
  const Options& options_;
  std::vector<std::vector<Token>> tokens_;
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

std::string read_file(const std::string& fs_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) throw std::runtime_error("fedpower-lint: cannot read " + fs_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Finding stale_finding(const std::string& path, const Waiver& waiver,
                      const Options& options) {
  const std::string shown =
      waiver.key == "ckpt-skip" ? waiver.key : waiver.key + "-ok";
  return {path, waiver.line + 1, "W1-stale-waiver",
          "waiver `" + shown + "(" + waiver.reason +
              ")` no longer suppresses any finding — the code it excused "
              "changed or moved; delete the comment (stale waivers teach "
              "readers the rule still fires here)",
          options.strict_waivers ? Severity::kError : Severity::kWarning};
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& options) {
  const std::string norm = normalize_path(path);
  const Scrubbed scrubbed = scrub(content);
  WaiverSet waivers(scrubbed);
  std::vector<Finding> findings =
      Checker(norm, scrubbed, &waivers, options).run();

  std::vector<FileModel> models;
  models.push_back(build_file_model(norm, scrubbed));
  std::vector<WaiverSet*> waiver_ptrs = {&waivers};
  std::vector<Finding> contract = analyze(models, waiver_ptrs, options);
  findings.insert(findings.end(), std::make_move_iterator(contract.begin()),
                  std::make_move_iterator(contract.end()));
  sort_findings(&findings);
  return findings;
}

std::vector<Finding> lint_file(const std::string& fs_path,
                               const std::string& display_path,
                               const Options& options) {
  return lint_source(display_path, read_file(fs_path), options);
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& inputs,
                               const Options& options) {
  namespace fs = std::filesystem;
  const fs::path root_path = root.empty() ? fs::path(".") : fs::path(root);
  std::vector<std::string> rel_files;
  for (const auto& input : inputs) {
    const fs::path abs = root_path / input;
    if (fs::is_directory(abs)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (!entry.is_regular_file()) continue;
        const std::string rel =
            normalize_path(fs::relative(entry.path(), root_path).string());
        if (is_source_path(rel)) rel_files.push_back(rel);
      }
    } else if (fs::is_regular_file(abs)) {
      rel_files.push_back(normalize_path(input));
    } else {
      throw std::runtime_error("fedpower-lint: no such file or directory: " +
                               abs.string());
    }
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  // Scrub every file up front: the token rules, the declaration analyzer
  // and the stale-waiver pass must share one WaiverSet per file so usage
  // tracking sees every consumer.
  std::vector<Scrubbed> scrubs;
  scrubs.reserve(rel_files.size());
  for (const auto& rel : rel_files)
    scrubs.push_back(scrub(read_file((root_path / rel).string())));
  std::vector<WaiverSet> waiver_sets;
  waiver_sets.reserve(rel_files.size());
  for (const Scrubbed& scrubbed : scrubs) waiver_sets.emplace_back(scrubbed);

  std::vector<Finding> all;
  std::vector<FileModel> models;
  models.reserve(rel_files.size());
  for (std::size_t i = 0; i < rel_files.size(); ++i) {
    auto findings =
        Checker(rel_files[i], scrubs[i], &waiver_sets[i], options).run();
    all.insert(all.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
    models.push_back(build_file_model(rel_files[i], scrubs[i]));
  }

  std::vector<WaiverSet*> waiver_ptrs;
  waiver_ptrs.reserve(waiver_sets.size());
  for (WaiverSet& set : waiver_sets) waiver_ptrs.push_back(&set);
  std::vector<Finding> contract = analyze(models, waiver_ptrs, options);
  all.insert(all.end(), std::make_move_iterator(contract.begin()),
             std::make_move_iterator(contract.end()));

  // W1: waivers nothing consumed. Runs last so every rule has had its
  // chance to claim one.
  for (std::size_t i = 0; i < rel_files.size(); ++i)
    for (const Waiver& waiver : waiver_sets[i].stale())
      all.push_back(stale_finding(rel_files[i], waiver, options));

  sort_findings(&all);
  return all;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& f : findings) {
    out << f.file << ':' << f.line << ": " << f.rule;
    if (f.severity == Severity::kWarning) out << " [warning]";
    out << ' ' << f.message << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "\n  {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"severity\": \""
        << severity_name(f.severity) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n]\n");
  return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  // Distinct rule ids, in first-appearance order, become the driver's
  // reportingDescriptors; results reference them by index.
  std::vector<std::string> rule_ids;
  std::map<std::string, std::size_t> rule_index;
  for (const Finding& f : findings) {
    if (rule_index.count(f.rule) != 0) continue;
    rule_index[f.rule] = rule_ids.size();
    rule_ids.push_back(f.rule);
  }

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"fedpower-lint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/fedpower/DESIGN.md\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n            {\"id\": \"" << json_escape(rule_ids[i]) << "\"}";
  }
  out << (rule_ids.empty() ? "]\n" : "\n          ]\n")
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"ruleIndex\": " << rule_index[f.rule] << ",\n"
        << "          \"level\": \"" << severity_name(f.severity) << "\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"},\n"
        << "                \"region\": {\"startLine\": " << f.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n")
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace fedpower::lint
