// Fixture: L5 — detached threads and raw mutex lock()/unlock() in src/.
// Never compiled, only linted.
#include <mutex>
#include <thread>

namespace fedpower::runtime {

struct Worker {
  std::mutex mutex_;
  int value_ = 0;

  void bad_detach() {
    std::thread([] {}).detach();  // L5: thread-detach
  }

  void bad_lock() {
    mutex_.lock();  // L5: raw-mutex-lock
    ++value_;
    mutex_.unlock();  // L5: raw-mutex-lock
  }

  void good_lock() {
    const std::lock_guard<std::mutex> lock(mutex_);  // ok: guard type
    ++value_;
  }
};

}  // namespace fedpower::runtime
