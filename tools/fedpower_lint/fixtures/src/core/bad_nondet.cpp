// Fixture: every L1 nondeterminism source the linter must catch.
// Scanned by the `lint.fixtures` ctest via --must-fail; never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fedpower::core {

unsigned bad_seed() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // L1: srand + time
  return static_cast<unsigned>(rand());              // L1: rand
}

std::uint64_t bad_entropy() {
  std::random_device entropy;  // L1: random_device
  const auto tick = std::chrono::steady_clock::now();  // L1: ::now()
  return entropy() + static_cast<std::uint64_t>(
                         tick.time_since_epoch().count());
}

const char* bad_env() {
  return std::getenv("FEDPOWER_SEED");  // L1: getenv
}

unsigned waived_seed() {
  return static_cast<unsigned>(rand());  // lint: nondet-ok(fixture waiver)
}

}  // namespace fedpower::core
