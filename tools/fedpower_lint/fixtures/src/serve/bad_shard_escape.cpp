// Deliberately broken fixture: L10-shard-ownership must flag `backlog_` —
// the worker thread (worker_main, spawned by start()) appends to it while
// the orchestrator-side drain() reads and clears it, and a std::vector is
// neither an SpscQueue, an atomic nor const. That is exactly the data race
// the serve subsystem's partitioning idiom (DESIGN.md §12) exists to
// exclude.
#include <cstddef>
#include <thread>
#include <vector>

namespace fedpower::serve_fixture {

class MiniPool {
 public:
  void start() {
    worker_ = std::thread([this] { worker_main(); });
  }

  void stop() {
    if (worker_.joinable()) worker_.join();
  }

  std::size_t drain() {
    const std::size_t n = backlog_.size();
    backlog_.clear();
    return n;
  }

 private:
  void worker_main() {
    for (std::size_t i = 0; i < 4; ++i) backlog_.push_back(next_item());
  }

  std::size_t next_item() { return backlog_.size() + 1; }

  std::thread worker_;
  std::vector<std::size_t> backlog_;
};

}  // namespace fedpower::serve_fixture
