// Fixture: L7 — raw event-loop syscalls outside the designated event-loop
// translation units, plus the clock (L1) and raw-mutex (L5) mistakes the
// same hand-rolled loop tends to make. Never compiled, only linted.
#include <chrono>
#include <mutex>
#include <sys/epoll.h>
#include <sys/eventfd.h>

namespace fedpower::serve {

struct BadLoop {
  std::mutex mutex_;
  int epfd_ = -1;
  int wake_ = -1;

  void open() {
    epfd_ = epoll_create1(0);                 // L7: raw-syscall
    wake_ = eventfd(0, 0);                    // L7: raw-syscall
  }

  void spin(int listener) {
    epoll_event ev{};
    epoll_ctl(epfd_, 1, listener, &ev);       // L7: raw-syscall
    epoll_event out[8];
    epoll_wait(epfd_, out, 8, -1);            // L7: raw-syscall
    accept4(listener, nullptr, nullptr, 0);   // L7: raw-syscall
    auto t = std::chrono::steady_clock::now();  // L1: nondet clock
    (void)t;
    mutex_.lock();  // L5: raw-mutex-lock
    mutex_.unlock();  // L5: raw-mutex-lock
  }
};

}  // namespace fedpower::serve
