// Deliberately broken fixture: L9-ckpt-symmetry must flag the epoch field —
// save_state writes it as u32 but restore_state reads a u64, so every field
// after it decodes from skewed offsets. The container CRC cannot catch this:
// the bytes are valid, just misinterpreted.
#include <cstdint>

namespace ckpt {
class Writer;
class Reader;
struct Tag;
void write_tag(Writer& out, const Tag& tag);
void expect_tag(Reader& in, const Tag& tag);
}  // namespace ckpt

namespace fedpower::ckpt_fixture {

class SkewedState {
 public:
  void save_state(::ckpt::Writer& out) const {
    ::ckpt::write_tag(out, kTag);
    out.u32(epoch_);
    out.f64(temperature_);
  }

  void restore_state(::ckpt::Reader& in) {
    ::ckpt::expect_tag(in, kTag);
    epoch_ = static_cast<std::uint32_t>(in.u64());
    temperature_ = in.f64();
  }

 private:
  static const ::ckpt::Tag kTag;
  std::uint32_t epoch_ = 0;
  double temperature_ = 0.0;
};

}  // namespace fedpower::ckpt_fixture
