// Deliberately broken fixture: L8-ckpt-coverage must flag `cursor_` — it is
// mutated by step() but neither save_state nor restore_state touches it, so
// a resume would silently reset it. `scratch_` shows the sanctioned escape
// hatch: a ckpt-skip annotation with a reason.
#include <cstdint>
#include <vector>

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fedpower::ckpt_fixture {

class LeakyCounter {
 public:
  void save_state(::ckpt::Writer& out) const {
    out.u64(total_);
    out.vec_f64(history_);
  }

  void restore_state(::ckpt::Reader& in) {
    total_ = in.u64();
    history_ = in.vec_f64();
  }

  void step() {
    ++cursor_;
    ++total_;
    history_.push_back(static_cast<double>(total_));
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<double> history_;
  std::uint64_t cursor_ = 0;
  std::vector<double> scratch_;  // lint: ckpt-skip(rebuilt lazily by step)
};

}  // namespace fedpower::ckpt_fixture
