// Fixture: L4 — header with no include guard and a namespace-scope
// using-namespace. Never compiled, only linted.
#include <vector>

using namespace std;  // L4: using-namespace (and no guard above: L4)

namespace fedpower::nn {

inline vector<double> zeros(size_t n) { return vector<double>(n, 0.0); }

}  // namespace fedpower::nn
