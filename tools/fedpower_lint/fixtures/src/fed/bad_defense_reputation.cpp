// Fixture: the defense pipeline written the wrong way. A reputation table
// iterated in hash order (L2) or an update norm via std::accumulate (L3)
// would make screening verdicts — and thus the whole round — depend on
// bucket layout and summation order. The real src/fed/defense.cpp keeps a
// vector indexed by client and accumulates norms in coordinate order;
// these are the mistakes the lint gate exists to catch. Never compiled.
#include <cstddef>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace fedpower::fed {

struct BadDefense {
  std::unordered_map<std::size_t, double> reputation_;

  std::vector<std::size_t> bad_quarantine_sweep() const {
    std::vector<std::size_t> quarantined;
    for (const auto& entry : reputation_)  // L2: hash-order verdicts
      if (entry.second < 0.5) quarantined.push_back(entry.first);
    return quarantined;
  }

  double bad_update_norm(const std::vector<double>& update) const {
    return std::accumulate(update.begin(), update.end(), 0.0);  // L3
  }
};

/// What the real pipeline does: client-index vector, coordinate-order sum.
inline double good_update_norm(const std::vector<double>& update) {
  double sum = 0.0;
  for (const double v : update) sum += v * v;
  return sum;
}

}  // namespace fedpower::fed
