// Deliberately broken fixture: W1-stale-waiver must flag the waiver below.
// The rand() fallback it once excused is gone, so the comment now only
// teaches readers that L1 supposedly fires here — documentation rot the
// tree scan is required to surface.
#include <cstddef>
#include <vector>

namespace fedpower::fed_fixture {

inline double mean(const std::vector<double>& xs) {
  double sum = 0.0;  // lint: nondet-ok(leftover from a deleted rand fallback)
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace fedpower::fed_fixture
