// Fixture: L2 — iterating a hash container in a determinism-critical dir
// (src/fed). Bucket order would feed platform-dependent order into the
// model-order FP accumulation. Never compiled, only linted.
#include <string>
#include <unordered_map>
#include <vector>

namespace fedpower::fed {

double bad_sum(const std::unordered_map<std::string, double>& by_client) {
  double sum = 0.0;
  for (const auto& entry : by_client) sum += entry.second;  // L2
  return sum;
}

struct Registry {
  std::unordered_map<int, double> weights_;
  double first() const { return weights_.begin()->second; }  // L2
  double lookup(int k) const { return weights_.at(k); }      // ok: no iter
};

double waived_sum(const Registry& r) {
  double sum = 0.0;
  // lint: ordered-ok(fixture waiver — order-insensitive count)
  for (const auto& entry : r.weights_) sum += entry.second;
  return sum;
}

}  // namespace fedpower::fed
