// Fixture: L3 — FP reductions in src/fed must use the documented
// model-order loops, not std::accumulate/std::reduce. Never compiled.
#include <numeric>
#include <vector>

namespace fedpower::fed {

double bad_mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /  // L3
         static_cast<double>(xs.size());
}

double bad_total(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());  // L3
}

double waived_total(const std::vector<double>& xs) {
  // lint: fpreduce-ok(fixture waiver — integer counts, order-exact)
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

}  // namespace fedpower::fed
