// Fixture: L6 — ad-hoc file writing in src/ outside the allowlist.
// Never compiled, only linted.
#include <cstdio>
#include <fstream>

namespace fedpower::sim {

void bad_ofstream(const char* path) {
  std::ofstream out(path);  // L6: fs-write
  out << 42;
}

void bad_fopen(const char* path) {
  std::FILE* f = std::fopen(path, "wb");  // L6: fs-write
  if (f != nullptr) std::fclose(f);
}

void bad_freopen(const char* path) {
  std::freopen(path, "w", stdout);  // L6: fs-write
}

void waived_ofstream(const char* path) {
  // lint: fs-ok(fixture demonstrates the waiver form)
  std::ofstream out(path);
  out << 42;
}

}  // namespace fedpower::sim
