#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "fed/tcp_transport.hpp"
#include "util/assert.hpp"

namespace fedpower::serve {

namespace {

using fed::TransportError;

[[noreturn]] void throw_errno(const char* what, int err) {
  throw TransportError(std::string("serve client: ") + what + ": " +
                       std::strerror(err));
}

/// send() the whole buffer; MSG_NOSIGNAL turns a peer close into EPIPE
/// (catchable) instead of SIGPIPE, EINTR restarts the syscall.
void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError("serve client: send timed out");
      throw_errno("send failed", errno);
    }
    if (n == 0) throw TransportError("serve client: send made no progress");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// recv() the whole buffer; throws on error/timeout and on a peer close
/// mid-buffer — the caller always expects a complete reply, so a clean
/// close here still means the operation failed and must be retried.
void read_exact(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n == 0) throw TransportError("serve client: peer closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError("serve client: read timed out");
      throw_errno("read failed", errno);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void set_io_timeouts(int fd, double timeout_s) {
  if (timeout_s <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

ServeClient::ServeClient(ServeClientConfig config)
    : config_(std::move(config)), jitter_(config_.jitter_seed) {
  FEDPOWER_EXPECTS(config_.max_attempts >= 1);
  FEDPOWER_EXPECTS(config_.backoff_initial_s >= 0.0);
  FEDPOWER_EXPECTS(config_.backoff_multiplier >= 1.0);
}

ServeClient::~ServeClient() { close_socket(); }

void ServeClient::close_socket() noexcept {
  if (socket_ >= 0) {
    ::close(socket_);
    socket_ = -1;
  }
  resumed_ = false;
}

void ServeClient::connect_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket failed", errno);
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("serve client: bad address " + config_.host);
  }

  // Non-blocking connect bounded by poll(): a refused connect (chaos
  // proxy's kRefuse fate, or a dead server) fails after connect_timeout_s
  // instead of the kernel's minutes-long default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      const int err = errno;
      ::close(fd);
      throw_errno("connect failed", err);
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        config_.connect_timeout_s > 0.0
            ? std::max(1, static_cast<int>(config_.connect_timeout_s * 1e3))
            : -1;
    int rc = 0;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      ::close(fd);
      throw TransportError("serve client: connect timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      ::close(fd);
      throw_errno("connect failed", err);
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for framed I/O

  set_io_timeouts(fd, config_.io_timeout_s);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  socket_ = fd;
}

void ServeClient::send_all(const std::vector<std::uint8_t>& frame) {
  write_all(socket_, frame.data(), frame.size());
}

std::vector<std::uint8_t> ServeClient::read_frame(
    std::uint8_t expect_direction) {
  std::uint8_t header[4];
  read_exact(socket_, header, sizeof header);
  const std::uint32_t frame_len = fed::load_u32_le(header);
  if (frame_len == 0 || frame_len > fed::kMaxFrameBytes)
    throw TransportError("serve client: bad frame length");
  std::vector<std::uint8_t> body(frame_len);
  read_exact(socket_, body.data(), body.size());
  if (body[0] != expect_direction)
    throw TransportError("serve client: direction mismatch");
  return {body.begin() + 1, body.end()};
}

std::vector<std::uint8_t> ServeClient::request(
    std::uint8_t direction, std::span<const std::uint8_t> payload) {
  send_all(encode_serve_frame(direction, payload));
  return read_frame(direction);
}

ResumeReply ServeClient::ensure_session() {
  if (socket_ < 0) connect_socket();
  if (resumed_) {
    ResumeReply cached;
    cached.version = last_resume_version_;
    return cached;
  }
  ResumeRequest hello;
  hello.client = config_.client_id;
  hello.last_acked_round = last_acked_round_;
  const std::vector<std::uint8_t> payload =
      request(kResumeDirection, encode_resume_request(hello));
  ResumeReply reply;
  if (!decode_resume_reply(payload, reply))
    throw TransportError("serve client: malformed resume reply");
  resumed_ = true;
  last_resume_version_ = reply.version;
  return reply;
}

void ServeClient::backoff(std::size_t attempt) {
  if (config_.backoff_initial_s <= 0.0) return;
  double bound = config_.backoff_initial_s;
  for (std::size_t i = 1; i < attempt; ++i)
    bound = std::min(bound * config_.backoff_multiplier,
                     config_.backoff_max_s);
  // Full jitter: sleep a uniform fraction of the exponential bound so a
  // fleet of clients knocked over together does not retry in lockstep.
  const double sleep_s = bound * jitter_.uniform();
  if (sleep_s > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
}

ResumeReply ServeClient::resume() {
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      if (socket_ < 0) connect_socket();
      resumed_ = false;  // force a fresh handshake
      return ensure_session();
    } catch (const TransportError&) {
      close_socket();
      if (attempt >= config_.max_attempts) throw;
      ++retries_;
      backoff(attempt);
    }
  }
}

FetchResult ServeClient::fetch() {
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      ensure_session();
      const std::vector<std::uint8_t> payload = request(kFetchDirection, {});
      if (payload.size() < 8)
        throw TransportError("serve client: short fetch reply");
      FetchResult result;
      result.version = load_u64_le(payload.data());
      result.model.assign(payload.begin() + 8, payload.end());
      return result;
    } catch (const TransportError&) {
      close_socket();
      if (attempt >= config_.max_attempts) throw;
      ++retries_;
      backoff(attempt);
    }
  }
}

bool ServeClient::upload(std::uint64_t base_version, std::uint32_t weight,
                         std::span<const std::uint8_t> model) {
  UplinkHeader header;
  header.client = config_.client_id;
  header.base_version = base_version;
  header.weight = weight;
  const std::vector<std::uint8_t> payload = encode_uplink(header, model);
  if (payload.size() + 1 > fed::kMaxFrameBytes)
    throw TransportError("serve client: uplink too large");

  for (std::size_t attempt = 1;; ++attempt) {
    try {
      const ResumeReply session = ensure_session();
      if (session.version > base_version) {
        // The server committed past this uplink's base while we were
        // disconnected — either our earlier send landed (first-arrival
        // dedup would discard a re-send anyway) or the round closed
        // without us. Re-sending a stale-beyond-window update would only
        // burn bandwidth to be screened, so report "obsolete" and let the
        // caller fetch the new model.
        return false;
      }
      const std::vector<std::uint8_t> ack =
          request(kUplinkDirection, payload);
      if (ack.size() != 1 || ack[0] != 0)
        throw TransportError("serve client: uplink rejected");
      return true;
    } catch (const TransportError&) {
      // We cannot tell whether the uplink landed before the fault; the
      // server's first-arrival dedup makes the re-send idempotent, so
      // always retry delivery.
      close_socket();
      if (attempt >= config_.max_attempts) throw;
      ++retries_;
      backoff(attempt);
    }
  }
}

}  // namespace fedpower::serve
