// Round driver that runs the synchronous federated-averaging protocol
// through the sharded serve pipeline (DESIGN.md §12).
//
// ServeFederation mirrors FederatedAveraging's round shape — draw
// participants, broadcast, parallel local training, serial uplink in
// client-index order — but hands every uplink to a ShardedServer instead
// of aggregating inline. In deterministic commit mode the result is
// bit-identical to FederatedAveraging at any worker count: the transfer
// sequence is the same call-for-call (so fault-injection streams line up),
// the participant draw consumes the same RNG stream, and the commit runs
// the same fed::aggregate_with_mode over the same survivor order. In
// throughput mode the server merges FedAsync-style instead.
//
// Defense screening is not routed through this driver (the worker-shard
// verdicts cover transport-level screening); configurations that need the
// full defense pipeline use the synchronous server.
#pragma once

#include <cstddef>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/codec.hpp"
#include "fed/federation.hpp"
#include "fed/transport.hpp"
#include "serve/server.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace fedpower::serve {

class ServeFederation {
 public:
  ServeFederation(std::vector<fed::FederatedClient*> clients,
                  fed::Transport* transport, ServeConfig config = {},
                  const fed::ModelCodec* codec = nullptr);

  /// Installs the initial global model (Algorithm 2 line 1).
  void initialize(std::vector<double> global);

  /// Client-fraction sampling; consumes the same RNG stream as
  /// FederatedAveraging with defense off.
  void set_sampling(const fed::SamplingConfig& config);

  /// Minimum surviving uploads per round (see FederatedAveraging).
  void set_quorum(std::size_t min_survivors);

  /// Per-client transport override (fault injection, private links).
  void set_client_transport(std::size_t client, fed::Transport* transport);

  /// Per-round transport-latency budget per client, in simulated seconds;
  /// 0 disables. Same demotion semantics as
  /// FederatedAveraging::set_round_deadline: an over-budget participant's
  /// upload is never submitted to the shard pipeline, so commit_round
  /// counts it as a never-arrived dropout (RoundResult::stragglers ⊆
  /// dropped) — it weighs against the quorum but cannot block the round.
  void set_round_deadline(double seconds);

  /// Executor for local training and the commit aggregation.
  void set_local_executor(util::ParallelFor executor);

  /// One synchronous round through the serve pipeline. Throws
  /// fed::QuorumError (round counter and global model untouched) when the
  /// surviving uploads fall below the quorum.
  fed::RoundResult run_round();

  void run(std::size_t rounds);

  [[nodiscard]] const std::vector<double>& global_model() const noexcept {
    return server_.global_model();
  }
  [[nodiscard]] std::size_t rounds_completed() const noexcept {
    return rounds_completed_;
  }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] const ServeStats& server_stats() const noexcept {
    return server_.stats();
  }
  [[nodiscard]] ShardedServer& server() noexcept { return server_; }

  /// FPCK sections: SFED (round counter + participation RNG) followed by
  /// the server's SRVR section.
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  std::vector<std::size_t> draw_participants();
  fed::Transport& transport_for(std::size_t client) noexcept;
  std::size_t total_transport_retries() const;

  std::vector<fed::FederatedClient*> clients_;
  fed::Transport* transport_;  // lint: ckpt-skip(non-owning wiring; re-attached before resuming)
  // lint: ckpt-skip(non-owning wiring; re-attached before resuming)
  std::vector<fed::Transport*> client_transports_;
  // lint: ckpt-skip(lazy cache rebuilt from the transports on demand)
  mutable std::vector<const fed::Transport*> transport_dedup_;
  mutable bool transport_dedup_stale_ = true;  // lint: ckpt-skip(lazy cache flag; stale default makes resume rebuild)
  const fed::ModelCodec* codec_;  // lint: ckpt-skip(non-owning strategy object; re-wired on resume)
  ShardedServer server_;
  util::ParallelFor executor_;  // lint: ckpt-skip(thread pool handle; rounds are width-invariant)

  fed::SamplingConfig sampling_;  // lint: ckpt-skip(construction config, fixed for the run)
  util::Rng participation_rng_{sampling_.seed};
  std::size_t quorum_ = 1;  // lint: ckpt-skip(construction config, fixed for the run)
  double deadline_s_ = 0.0;  // lint: ckpt-skip(construction config, fixed for the run)
  std::size_t rounds_completed_ = 0;
};

}  // namespace fedpower::serve
