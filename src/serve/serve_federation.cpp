#include "serve/serve_federation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "ckpt/errors.hpp"
#include "ckpt/state_io.hpp"
#include "util/assert.hpp"

namespace fedpower::serve {

ServeFederation::ServeFederation(std::vector<fed::FederatedClient*> clients,
                                 fed::Transport* transport,
                                 ServeConfig config,
                                 const fed::ModelCodec* codec)
    : clients_(std::move(clients)),
      transport_(transport),
      codec_(codec != nullptr ? codec : &fed::Float32Codec::instance()),
      server_(clients_.empty() ? 1 : clients_.size(), config, codec_) {
  FEDPOWER_EXPECTS(!clients_.empty());
  FEDPOWER_EXPECTS(transport_ != nullptr);
  for (const auto* client : clients_) FEDPOWER_EXPECTS(client != nullptr);
  client_transports_.assign(clients_.size(), nullptr);
}

void ServeFederation::initialize(std::vector<double> global) {
  server_.initialize(std::move(global));
}

void ServeFederation::set_sampling(const fed::SamplingConfig& config) {
  FEDPOWER_EXPECTS(config.fraction > 0.0 && config.fraction <= 1.0);
  FEDPOWER_EXPECTS(config.min_clients >= 1);
  sampling_ = config;
  participation_rng_ = util::Rng{config.seed};
}

void ServeFederation::set_quorum(std::size_t min_survivors) {
  FEDPOWER_EXPECTS(min_survivors >= 1 && min_survivors <= clients_.size());
  quorum_ = min_survivors;
}

void ServeFederation::set_client_transport(std::size_t client,
                                           fed::Transport* transport) {
  FEDPOWER_EXPECTS(client < clients_.size());
  FEDPOWER_EXPECTS(transport != nullptr);
  client_transports_[client] = transport;
  transport_dedup_stale_ = true;
}

void ServeFederation::set_round_deadline(double seconds) {
  FEDPOWER_EXPECTS(seconds >= 0.0);
  deadline_s_ = seconds;
}

void ServeFederation::set_local_executor(util::ParallelFor executor) {
  executor_ = executor;
  server_.set_executor(std::move(executor));
}

fed::Transport& ServeFederation::transport_for(std::size_t client) noexcept {
  fed::Transport* t = client_transports_[client];
  return t != nullptr ? *t : *transport_;
}

std::size_t ServeFederation::total_transport_retries() const {
  // Same sort-based dedup as FederatedAveraging: the sum over the distinct
  // transport set is order-independent, so the result is deterministic.
  if (transport_dedup_stale_) {
    transport_dedup_.clear();
    transport_dedup_.reserve(client_transports_.size() + 1);
    transport_dedup_.push_back(transport_);
    for (const fed::Transport* t : client_transports_)
      if (t != nullptr) transport_dedup_.push_back(t);
    std::sort(transport_dedup_.begin(), transport_dedup_.end());
    transport_dedup_.erase(
        std::unique(transport_dedup_.begin(), transport_dedup_.end()),
        transport_dedup_.end());
    transport_dedup_stale_ = false;
  }
  std::size_t total = 0;
  for (const fed::Transport* t : transport_dedup_) total += t->stats().retries;
  return total;
}

std::vector<std::size_t> ServeFederation::draw_participants() {
  // FederatedAveraging::draw_participants with defense off: full
  // participation consumes no randomness, a fractional draw shuffles the
  // whole fleet and keeps the first `count`. Matching the RNG consumption
  // exactly is part of the bit-identity contract.
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (sampling_.fraction >= 1.0) return all;
  const auto ceil_fraction = static_cast<std::size_t>(
      std::ceil(sampling_.fraction * static_cast<double>(all.size())));
  const std::size_t count =
      std::min(all.size(), std::max({std::size_t{1}, sampling_.min_clients,
                                     ceil_fraction}));
  participation_rng_.shuffle(all);
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

fed::RoundResult ServeFederation::run_round() {
  FEDPOWER_EXPECTS(!server_.global_model().empty());
  const std::vector<std::size_t> participants = draw_participants();
  const std::size_t retries_before = total_transport_retries();
  server_.begin_round(participants);
  const std::uint64_t base_version = server_.version();

  // Broadcast (Algorithm 2 line 3), one transfer per participant in index
  // order — the same call sequence as the synchronous server, so a
  // fault-injection stream decides identical fates on both paths.
  std::size_t downlink_bytes = 0;
  std::vector<char> lost(clients_.size(), 0);
  // Per-client latency this round, measured exactly like the synchronous
  // server (serial transfers make the delta attribution exact).
  const bool deadline_armed = deadline_s_ > 0.0;
  std::vector<double> link_latency(deadline_armed ? clients_.size() : 0, 0.0);
  const std::vector<std::uint8_t> broadcast =
      codec_->encode(server_.global_model());
  for (const std::size_t i : participants) {
    const double latency_before =
        deadline_armed ? transport_for(i).cumulative_latency_s() : 0.0;
    try {
      const auto delivered =
          transport_for(i).transfer(fed::Direction::kDownlink, broadcast);
      clients_[i]->receive_global(codec_->decode(delivered));
      downlink_bytes += delivered.size();
    } catch (const fed::TransportError&) {
      lost[i] = 1;
    } catch (const std::invalid_argument&) {
      lost[i] = 1;
    }
    if (deadline_armed)
      link_latency[i] =
          transport_for(i).cumulative_latency_s() - latency_before;
  }

  // Local training (line 5), parallel with a barrier; clients own disjoint
  // state so the schedule cannot change what they learn.
  std::vector<std::size_t> training;
  training.reserve(participants.size());
  for (const std::size_t i : participants)
    if (!lost[i]) training.push_back(i);
  util::for_each_index(executor_, training.size(), [&](std::size_t k) {
    clients_[training[k]]->run_local_round();
  });

  // Uplink (line 6), serial and in client-index order. The transfer call
  // matches the synchronous server; the decoded payload goes to the shard
  // pipeline instead of being aggregated inline.
  std::vector<char> straggler(clients_.size(), 0);
  for (const std::size_t i : training) {
    try {
      const double latency_before =
          deadline_armed ? transport_for(i).cumulative_latency_s() : 0.0;
      auto payload = transport_for(i).transfer(
          fed::Direction::kUplink,
          codec_->encode(clients_[i]->local_parameters()));
      if (deadline_armed) {
        // Deadline demotion (DESIGN.md §13): an over-budget upload is never
        // submitted, so the shard pipeline sees exactly what the
        // synchronous server would — a participant that never arrived —
        // and commit_round books it as a dropout.
        const double round_latency =
            link_latency[i] +
            (transport_for(i).cumulative_latency_s() - latency_before);
        if (round_latency > deadline_s_) {
          straggler[i] = 1;
          continue;
        }
      }
      server_.submit(i, base_version, std::move(payload),
                     static_cast<double>(clients_[i]->local_sample_count()));
    } catch (const fed::TransportError&) {
      lost[i] = 1;
    } catch (const std::invalid_argument&) {
      lost[i] = 1;
    }
  }

  fed::RoundResult result = server_.commit_round(quorum_);
  for (const std::size_t i : participants)
    if (straggler[i]) result.stragglers.push_back(i);
  result.downlink_bytes = downlink_bytes;
  result.transport_retries = total_transport_retries() - retries_before;
  ++rounds_completed_;
  return result;
}

void ServeFederation::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

namespace {
constexpr ckpt::Tag kServeFedTag{'S', 'F', 'E', 'D'};
}  // namespace

void ServeFederation::save_state(ckpt::Writer& out) const {
  ckpt::write_tag(out, kServeFedTag);
  out.u64(clients_.size());
  out.u64(rounds_completed_);
  ckpt::save_rng(out, participation_rng_);
  server_.save_state(out);
}

void ServeFederation::restore_state(ckpt::Reader& in) {
  ckpt::expect_tag(in, kServeFedTag, "serve federation driver");
  const std::uint64_t client_count = in.u64();
  if (client_count != clients_.size())
    throw ckpt::StateMismatchError(
        "serve snapshot was taken with " + std::to_string(client_count) +
        " client(s), this federation has " + std::to_string(clients_.size()));
  rounds_completed_ = static_cast<std::size_t>(in.u64());
  ckpt::restore_rng(in, participation_rng_);
  server_.restore_state(in);
}

}  // namespace fedpower::serve
