// Serve-wire client with reconnect/resume (DESIGN.md §14).
//
// TcpTransport cannot talk to the epoll front end — its exchange() insists
// on echo semantics (the reply must repeat the sent frame), while the
// front end answers an uplink with a 1-byte ack and a fetch with the
// version + global model. This client speaks the serve wire protocol
// natively and adds the resilience layer the TCP chaos stack leans on:
//
//  * every operation retries over a fresh connection on transport error,
//    with bounded exponential backoff and seeded jitter (util::Rng — the
//    jitter stream is deterministic per client, never wall-clock);
//  * every (re)connect opens with the session-resume handshake, so the
//    server can tell a rejoining client from a protocol error and the
//    client learns the authoritative version before re-sending anything;
//  * a re-sent uplink is safe by design: the server's first-arrival dedup
//    resolves the round to one contribution, so the client re-sends
//    whenever it cannot prove the ack arrived. If the resume handshake
//    shows the server version has moved past the uplink's base version,
//    the round is already committed and the re-send is skipped.
//
// Failure model matches TcpTransport: every connection-level fault
// surfaces as fed::TransportError (after the retry budget), never process
// death. Not thread-safe — one client per federation participant.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/wire.hpp"
#include "util/rng.hpp"

namespace fedpower::serve {

struct ServeClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t client_id = 0;
  /// Wall-clock bound on establishing a connection; <= 0 waits forever.
  double connect_timeout_s = 5.0;
  /// Per-syscall read/write bound via SO_RCVTIMEO/SO_SNDTIMEO; <= 0 off.
  double io_timeout_s = 5.0;
  /// Total delivery tries per operation (1 = fail on the first fault).
  std::size_t max_attempts = 16;
  /// Bounded exponential backoff between retries.
  double backoff_initial_s = 0.002;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 0.1;
  /// Seed of the jitter stream (each backoff sleeps a uniform fraction of
  /// the current bound — decorrelates a fleet retrying in lockstep while
  /// staying deterministic per client).
  std::uint64_t jitter_seed = 1;
};

struct FetchResult {
  std::uint64_t version = 0;
  std::vector<std::uint8_t> model;  ///< codec-encoded global model
};

class ServeClient {
 public:
  explicit ServeClient(ServeClientConfig config);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Current server version + encoded global model, retried until it
  /// lands. Throws fed::TransportError once the retry budget is spent.
  FetchResult fetch();

  /// Delivers one uplink and waits for the enqueue ack. On a transport
  /// fault the client reconnects (resume handshake), and re-sends; if the
  /// handshake shows version > base_version the round already committed
  /// without needing this re-send and upload() returns false (the uplink
  /// is obsolete, not lost). Returns true once acked.
  bool upload(std::uint64_t base_version, std::uint32_t weight,
              std::span<const std::uint8_t> model);

  /// Explicit session-resume handshake (also performed implicitly on every
  /// (re)connect). Returns the server's authoritative position.
  ResumeReply resume();

  /// Latest round the caller saw acknowledged; carried in the resume
  /// handshake so server-side telemetry can tell how far back a rejoining
  /// client is.
  void set_last_acked_round(std::uint64_t round) noexcept {
    last_acked_round_ = round;
  }

  [[nodiscard]] bool connected() const noexcept { return socket_ >= 0; }
  /// Reconnections performed after the initial connect (churn telemetry).
  [[nodiscard]] std::size_t reconnects() const noexcept {
    return reconnects_;
  }
  /// Transport faults survived via retry (any operation).
  [[nodiscard]] std::size_t retries() const noexcept { return retries_; }

 private:
  void connect_socket();
  void close_socket() noexcept;
  /// Connects if needed and performs the resume handshake.
  ResumeReply ensure_session();
  void backoff(std::size_t attempt);
  void send_all(const std::vector<std::uint8_t>& frame);
  /// Reads one complete frame; checks the direction byte. Returns payload.
  std::vector<std::uint8_t> read_frame(std::uint8_t expect_direction);
  std::vector<std::uint8_t> request(std::uint8_t direction,
                                    std::span<const std::uint8_t> payload);

  ServeClientConfig config_;
  int socket_ = -1;
  bool resumed_ = false;  ///< handshake done on the current connection
  std::uint64_t last_acked_round_ = 0;
  std::uint64_t last_resume_version_ = 0;
  std::size_t reconnects_ = 0;
  std::size_t retries_ = 0;
  bool ever_connected_ = false;
  util::Rng jitter_;
};

}  // namespace fedpower::serve
