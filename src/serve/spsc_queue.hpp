// Bounded single-producer / single-consumer ring for the serve subsystem.
//
// Each front-end injector -> worker edge gets exactly one queue with exactly
// one producer and one consumer, which is what lets the hot path run on two
// monotonic cursors (head_, tail_) with acquire/release ordering and no
// locks — the KVell shared-nothing idiom (DESIGN.md §12).
//
// Capacity is fixed at construction. try_push never blocks: a full queue
// returns false so the caller can apply backpressure (the injector defers
// the frame and surfaces a `deferred` count; frames are never dropped
// silently). The blocking helpers park on the C++20 atomic wait facility,
// so an idle worker costs no CPU between bursts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace fedpower::serve {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : slots_(capacity) {
    FEDPOWER_EXPECTS(capacity >= 1);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Items currently queued. Exact only on the producer or consumer thread.
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  /// Producer side. Returns false (without consuming `value`) when full.
  [[nodiscard]] bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[static_cast<std::size_t>(tail % slots_.size())] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    tail_.notify_one();
    return true;
  }

  /// Consumer side. Returns false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[static_cast<std::size_t>(head % slots_.size())]);
    head_.store(head + 1, std::memory_order_release);
    head_.notify_one();
    return true;
  }

  /// Consumer side: pop up to `max_items` into `out` (appended). Batched
  /// dequeue amortizes the cursor traffic across a burst of frames.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    std::size_t popped = 0;
    T item;
    while (popped < max_items && try_pop(item)) {
      out.push_back(std::move(item));
      ++popped;
    }
    return popped;
  }

  /// Producer side: park until the consumer frees at least one slot.
  void wait_for_space() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head < slots_.size()) return;
    head_.wait(head, std::memory_order_acquire);
  }

  /// Consumer side: park until the producer publishes at least one item.
  void wait_for_item() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    tail_.wait(head, std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::atomic<std::uint64_t> head_{0};  // items popped (consumer cursor)
  std::atomic<std::uint64_t> tail_{0};  // items pushed (producer cursor)
};

}  // namespace fedpower::serve
