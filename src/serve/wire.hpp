// Serve-subsystem wire format, layered on the existing TCP framing
// (u32 LE length + direction byte + payload, fed/tcp_transport.hpp).
//
// An uplink frame's payload carries a 16-byte header in front of the codec
// bytes so the front end can route the frame to the right shard without
// decoding the model:
//
//   bytes 0..3   u32 LE  client index
//   bytes 4..11  u64 LE  base version (server version the client trained
//                        from; staleness = server version - base version)
//   bytes 12..15 u32 LE  sample-count weight
//   bytes 16..   codec-encoded model
//
// The server acknowledges an uplink with a 1-byte status payload (0 =
// enqueued). A downlink (fetch) frame's request payload is empty; the
// reply payload is a u64 LE server version followed by the codec-encoded
// global model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fed/tcp_transport.hpp"

namespace fedpower::serve {

inline constexpr std::size_t kUplinkHeaderBytes = 16;

inline void store_u64_le(std::uint64_t v, std::uint8_t* out) noexcept {
  for (std::size_t i = 0; i < 8; ++i)
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

[[nodiscard]] inline std::uint64_t load_u64_le(
    const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

struct UplinkHeader {
  std::uint32_t client = 0;
  std::uint64_t base_version = 0;
  std::uint32_t weight = 1;
};

/// Builds an uplink frame payload: header + codec bytes.
[[nodiscard]] inline std::vector<std::uint8_t> encode_uplink(
    const UplinkHeader& header, std::span<const std::uint8_t> model) {
  std::vector<std::uint8_t> payload(kUplinkHeaderBytes + model.size());
  fed::store_u32_le(header.client, payload.data());
  store_u64_le(header.base_version, payload.data() + 4);
  fed::store_u32_le(header.weight, payload.data() + 12);
  std::copy(model.begin(), model.end(),
            payload.begin() + kUplinkHeaderBytes);
  return payload;
}

/// Reads the header off an uplink frame payload. Returns false when the
/// payload is too short to carry one.
[[nodiscard]] inline bool decode_uplink_header(
    std::span<const std::uint8_t> payload, UplinkHeader& header) noexcept {
  if (payload.size() < kUplinkHeaderBytes) return false;
  header.client = fed::load_u32_le(payload.data());
  header.base_version = load_u64_le(payload.data() + 4);
  header.weight = fed::load_u32_le(payload.data() + 12);
  return true;
}

/// Builds a fetch-reply payload: u64 LE version + codec bytes.
[[nodiscard]] inline std::vector<std::uint8_t> encode_fetch_reply(
    std::uint64_t version, std::span<const std::uint8_t> model) {
  std::vector<std::uint8_t> payload(8 + model.size());
  store_u64_le(version, payload.data());
  std::copy(model.begin(), model.end(), payload.begin() + 8);
  return payload;
}

}  // namespace fedpower::serve
