// Serve-subsystem wire format, layered on the existing TCP framing
// (u32 LE length + direction byte + payload, fed/tcp_transport.hpp).
//
// An uplink frame's payload carries a 16-byte header in front of the codec
// bytes so the front end can route the frame to the right shard without
// decoding the model:
//
//   bytes 0..3   u32 LE  client index
//   bytes 4..11  u64 LE  base version (server version the client trained
//                        from; staleness = server version - base version)
//   bytes 12..15 u32 LE  sample-count weight
//   bytes 16..   codec-encoded model
//
// The server acknowledges an uplink with a 1-byte status payload (0 =
// enqueued). A downlink (fetch) frame's request payload is empty; the
// reply payload is a u64 LE server version followed by the codec-encoded
// global model.
//
// A third direction byte (2) carries the session-resume handshake
// (DESIGN.md §14): after reconnecting, a client announces itself with its
// client index and the last round it saw acknowledged, and the front end
// answers with the current server version and committed-round count. The
// handshake is what lets the front end tell a rejoining client apart from
// a protocol error, and its reply is what lets a killed-and-respawned
// client rejoin the round schedule without any local state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fed/tcp_transport.hpp"

namespace fedpower::serve {

inline constexpr std::size_t kUplinkHeaderBytes = 16;

// Frame direction bytes on the serve wire. 0/1 mirror fed::Direction; 2 is
// the serve-only session-resume handshake.
inline constexpr std::uint8_t kUplinkDirection = 0;
inline constexpr std::uint8_t kFetchDirection = 1;
inline constexpr std::uint8_t kResumeDirection = 2;

inline constexpr std::size_t kResumeRequestBytes = 12;  ///< u32 + u64
inline constexpr std::size_t kResumeReplyBytes = 16;    ///< u64 + u64

inline void store_u64_le(std::uint64_t v, std::uint8_t* out) noexcept {
  for (std::size_t i = 0; i < 8; ++i)
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

[[nodiscard]] inline std::uint64_t load_u64_le(
    const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

struct UplinkHeader {
  std::uint32_t client = 0;
  std::uint64_t base_version = 0;
  std::uint32_t weight = 1;
};

/// Builds an uplink frame payload: header + codec bytes.
[[nodiscard]] inline std::vector<std::uint8_t> encode_uplink(
    const UplinkHeader& header, std::span<const std::uint8_t> model) {
  std::vector<std::uint8_t> payload(kUplinkHeaderBytes + model.size());
  fed::store_u32_le(header.client, payload.data());
  store_u64_le(header.base_version, payload.data() + 4);
  fed::store_u32_le(header.weight, payload.data() + 12);
  std::copy(model.begin(), model.end(),
            payload.begin() + kUplinkHeaderBytes);
  return payload;
}

/// Reads the header off an uplink frame payload. Returns false when the
/// payload is too short to carry one.
[[nodiscard]] inline bool decode_uplink_header(
    std::span<const std::uint8_t> payload, UplinkHeader& header) noexcept {
  if (payload.size() < kUplinkHeaderBytes) return false;
  header.client = fed::load_u32_le(payload.data());
  header.base_version = load_u64_le(payload.data() + 4);
  header.weight = fed::load_u32_le(payload.data() + 12);
  return true;
}

/// Builds a complete wire frame for an arbitrary direction byte. The
/// fed::encode_frame helper only speaks the two fed::Direction values;
/// this one admits the serve-only resume direction as well.
[[nodiscard]] inline std::vector<std::uint8_t> encode_serve_frame(
    std::uint8_t direction, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(4);
  frame.reserve(4 + 1 + payload.size());
  fed::store_u32_le(static_cast<std::uint32_t>(1 + payload.size()),
                    frame.data());
  frame.push_back(direction);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// Session-resume handshake request: who is rejoining and the last round
/// the client saw acknowledged (informational; the reply is authoritative).
struct ResumeRequest {
  std::uint32_t client = 0;
  std::uint64_t last_acked_round = 0;
};

[[nodiscard]] inline std::vector<std::uint8_t> encode_resume_request(
    const ResumeRequest& request) {
  std::vector<std::uint8_t> payload(kResumeRequestBytes);
  fed::store_u32_le(request.client, payload.data());
  store_u64_le(request.last_acked_round, payload.data() + 4);
  return payload;
}

/// Strict decode: a resume payload is exactly kResumeRequestBytes, so a
/// malformed frame is a protocol error, not a partial parse.
[[nodiscard]] inline bool decode_resume_request(
    std::span<const std::uint8_t> payload, ResumeRequest& request) noexcept {
  if (payload.size() != kResumeRequestBytes) return false;
  request.client = fed::load_u32_le(payload.data());
  request.last_acked_round = load_u64_le(payload.data() + 4);
  return true;
}

/// Session-resume reply: where the server actually is. A rejoining client
/// trusts these over anything it remembers from before the disconnect.
struct ResumeReply {
  std::uint64_t version = 0;          ///< current global-model version
  std::uint64_t rounds_committed = 0; ///< committed-round count
};

[[nodiscard]] inline std::vector<std::uint8_t> encode_resume_reply(
    const ResumeReply& reply) {
  std::vector<std::uint8_t> payload(kResumeReplyBytes);
  store_u64_le(reply.version, payload.data());
  store_u64_le(reply.rounds_committed, payload.data() + 8);
  return payload;
}

[[nodiscard]] inline bool decode_resume_reply(
    std::span<const std::uint8_t> payload, ResumeReply& reply) noexcept {
  if (payload.size() != kResumeReplyBytes) return false;
  reply.version = load_u64_le(payload.data());
  reply.rounds_committed = load_u64_le(payload.data() + 8);
  return true;
}

/// Builds a fetch-reply payload: u64 LE version + codec bytes.
[[nodiscard]] inline std::vector<std::uint8_t> encode_fetch_reply(
    std::uint64_t version, std::span<const std::uint8_t> model) {
  std::vector<std::uint8_t> payload(8 + model.size());
  store_u64_le(version, payload.data());
  std::copy(model.begin(), model.end(), payload.begin() + 8);
  return payload;
}

}  // namespace fedpower::serve
