// Epoll-based TCP front end for the sharded federation server
// (DESIGN.md §12).
//
// One event-loop thread owns every socket: a non-blocking listener plus
// all accepted connections, multiplexed through a single epoll instance —
// thousands of concurrent clients cost file descriptors, not OS threads
// (contrast TcpReflector's thread-per-accept). The loop is also the
// ShardedServer's single orchestrator: it injects decoded uplink frames
// into the shard queues and executes round commands (begin/commit) that
// other threads post through an eventfd-signalled command queue, so the
// server's no-locks-on-the-hot-path contract holds by construction.
//
// Framing is the existing u32-LE length + direction byte (fed/
// tcp_transport.hpp), with kMaxFrameBytes enforced at decode: an oversized
// or zero length closes the connection and counts in protocol_errors();
// EOF mid-frame counts in truncated_frames(). An uplink frame (direction
// 0) carries the serve wire header (wire.hpp) and is acknowledged with a
// 1-byte status frame once enqueued; a fetch frame (direction 1) is
// answered with the current server version + encoded global model; a
// resume frame (direction 2) is the session-resume handshake (DESIGN.md
// §14) — a reconnecting client announces its id and last-acked round and
// receives the authoritative version + committed-round count, so a
// rejoining client is telemetry (sessions_resumed, per-client churn via
// ShardedServer::note_resume), not a protocol error.
//
// Graceful degradation: when the server config arms serve.idle_timeout_s,
// the loop reaps connections with no traffic for that long (deadline
// sweep on the epoll_wait timeout — no extra threads), so a half-open
// socket can no longer hold its slot forever. Reaps count in
// idle_reaped() and in the server's stats().idle_reaped.
//
// All raw epoll/eventfd syscalls live in epoll_server.cpp, the one TU the
// lint L7 allowlist admits them in.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fed/federation.hpp"
#include "serve/server.hpp"

namespace fedpower::serve {

class EpollFrontEnd {
 public:
  /// Binds 127.0.0.1 on an ephemeral port and starts the event loop. The
  /// server must already be initialized; the front end becomes its sole
  /// orchestrator (do not call the server's mutating API elsewhere while
  /// the front end runs). Throws fed::TransportError on socket errors.
  explicit EpollFrontEnd(ShardedServer* server);
  ~EpollFrontEnd();

  EpollFrontEnd(const EpollFrontEnd&) = delete;
  EpollFrontEnd& operator=(const EpollFrontEnd&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Posts a begin-round command to the loop and waits for it to apply.
  void begin_round(std::vector<std::size_t> participants);

  /// Posts a commit command, waits for the result. Rethrows
  /// fed::QuorumError from the commit.
  fed::RoundResult commit_round(std::size_t quorum);

  /// Commit + begin-next as ONE loop-thread command: no fetch can observe
  /// the post-commit version while no round is open. Without this, a
  /// client that fetches in the gap between separate commit and begin
  /// posts would upload into the void (frames outside a round belong to
  /// no round) — the TCP round driver's pipelining primitive. On
  /// fed::QuorumError the next round is NOT begun.
  fed::RoundResult commit_then_begin(std::size_t quorum,
                                     std::vector<std::size_t> participants);

  // Counters below are written by the loop thread, readable from any
  // thread (monotonic telemetry; bench threads poll uplinks_received).
  [[nodiscard]] std::size_t connections_accepted() const noexcept {
    return connections_accepted_.load();
  }
  [[nodiscard]] std::size_t uplinks_received() const noexcept {
    return uplinks_received_.load();
  }
  [[nodiscard]] std::size_t fetches_served() const noexcept {
    return fetches_served_.load();
  }
  [[nodiscard]] std::size_t protocol_errors() const noexcept {
    return protocol_errors_.load();
  }
  [[nodiscard]] std::size_t truncated_frames() const noexcept {
    return truncated_frames_.load();
  }
  [[nodiscard]] std::size_t sessions_resumed() const noexcept {
    return sessions_resumed_.load();
  }
  [[nodiscard]] std::size_t idle_reaped() const noexcept {
    return idle_reaped_.load();
  }
  /// Distinct participants whose uplink for the open round has arrived
  /// (mirror of ShardedServer::round_distinct_arrivals(), refreshed by the
  /// loop thread each wakeup so round drivers on other threads can wait
  /// for the full draw before posting the commit).
  [[nodiscard]] std::size_t round_distinct() const noexcept {
    return round_distinct_.load();
  }

  /// Stops the loop, closes every socket and joins the thread
  /// (idempotent).
  void stop();

 private:
  struct Connection {
    std::vector<std::uint8_t> in;   ///< partial-frame reassembly buffer
    std::vector<std::uint8_t> out;  ///< pending reply bytes
    std::size_t out_offset = 0;     ///< bytes of `out` already written
    /// Last traffic on this socket (idle-deadline bookkeeping; only
    /// consulted when serve.idle_timeout_s is armed).
    std::chrono::steady_clock::time_point last_activity{};
  };

  struct Command {
    enum class Kind { kBeginRound, kCommitRound } kind = Kind::kBeginRound;
    std::vector<std::size_t> participants;
    std::size_t quorum = 1;
    /// Commit only: begin the next round (with `participants`) in the same
    /// command execution, atomically w.r.t. socket events.
    bool begin_next = false;
    std::promise<fed::RoundResult> result;
  };

  void loop();
  void accept_ready();
  void connection_readable(int fd);
  void connection_writable(int fd);
  bool handle_frame(int fd, Connection& conn, std::uint8_t direction,
                    std::vector<std::uint8_t> payload);
  void queue_reply(int fd, Connection& conn,
                   const std::vector<std::uint8_t>& frame);
  void flush_writes(int fd, Connection& conn);
  void close_connection(int fd);
  void run_commands();
  void update_interest(int fd, bool want_write);
  void reap_idle_connections();

  ShardedServer* server_;
  // The fds are opened in start() before the loop thread exists and closed
  // in stop() after it joins; the loop thread has them to itself in between.
  int epoll_fd_ = -1;  // lint: shard-ok(opened before the loop thread starts, closed after it joins)
  int listener_ = -1;  // lint: shard-ok(opened before the loop thread starts, closed after it joins)
  int wake_fd_ = -1;   // lint: shard-ok(opened before the loop thread starts, closed after it joins)
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  bool stopped_ = false;

  // Loop-thread-owned. lint: shard-ok(only the loop thread touches it while running; orchestrator reads after join)
  std::map<int, Connection> connections_;

  /// Cold path: round commands only. lint: shard-ok(mutex is the crossing primitive itself)
  std::mutex command_mutex_;
  std::deque<Command> commands_;  // lint: shard-ok(guarded by command_mutex_ on both sides)

  // Cached encoding of the global model for fetch replies, refreshed when
  // the server version moves. Loop-thread-owned.
  std::uint64_t cached_version_ = ~std::uint64_t{0};
  std::vector<std::uint8_t> cached_global_;

  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::size_t> uplinks_received_{0};
  std::atomic<std::size_t> fetches_served_{0};
  std::atomic<std::size_t> protocol_errors_{0};
  std::atomic<std::size_t> truncated_frames_{0};
  std::atomic<std::size_t> sessions_resumed_{0};
  std::atomic<std::size_t> idle_reaped_{0};
  std::atomic<std::size_t> round_distinct_{0};
};

}  // namespace fedpower::serve
