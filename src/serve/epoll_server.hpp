// Epoll-based TCP front end for the sharded federation server
// (DESIGN.md §12).
//
// One event-loop thread owns every socket: a non-blocking listener plus
// all accepted connections, multiplexed through a single epoll instance —
// thousands of concurrent clients cost file descriptors, not OS threads
// (contrast TcpReflector's thread-per-accept). The loop is also the
// ShardedServer's single orchestrator: it injects decoded uplink frames
// into the shard queues and executes round commands (begin/commit) that
// other threads post through an eventfd-signalled command queue, so the
// server's no-locks-on-the-hot-path contract holds by construction.
//
// Framing is the existing u32-LE length + direction byte (fed/
// tcp_transport.hpp), with kMaxFrameBytes enforced at decode: an oversized
// or zero length closes the connection and counts in protocol_errors();
// EOF mid-frame counts in truncated_frames(). An uplink frame (direction
// 0) carries the serve wire header (wire.hpp) and is acknowledged with a
// 1-byte status frame once enqueued; a fetch frame (direction 1) is
// answered with the current server version + encoded global model.
//
// All raw epoll/eventfd syscalls live in epoll_server.cpp, the one TU the
// lint L7 allowlist admits them in.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fed/federation.hpp"
#include "serve/server.hpp"

namespace fedpower::serve {

class EpollFrontEnd {
 public:
  /// Binds 127.0.0.1 on an ephemeral port and starts the event loop. The
  /// server must already be initialized; the front end becomes its sole
  /// orchestrator (do not call the server's mutating API elsewhere while
  /// the front end runs). Throws fed::TransportError on socket errors.
  explicit EpollFrontEnd(ShardedServer* server);
  ~EpollFrontEnd();

  EpollFrontEnd(const EpollFrontEnd&) = delete;
  EpollFrontEnd& operator=(const EpollFrontEnd&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Posts a begin-round command to the loop and waits for it to apply.
  void begin_round(std::vector<std::size_t> participants);

  /// Posts a commit command, waits for the result. Rethrows
  /// fed::QuorumError from the commit.
  fed::RoundResult commit_round(std::size_t quorum);

  // Counters below are written by the loop thread, readable from any
  // thread (monotonic telemetry; bench threads poll uplinks_received).
  [[nodiscard]] std::size_t connections_accepted() const noexcept {
    return connections_accepted_.load();
  }
  [[nodiscard]] std::size_t uplinks_received() const noexcept {
    return uplinks_received_.load();
  }
  [[nodiscard]] std::size_t fetches_served() const noexcept {
    return fetches_served_.load();
  }
  [[nodiscard]] std::size_t protocol_errors() const noexcept {
    return protocol_errors_.load();
  }
  [[nodiscard]] std::size_t truncated_frames() const noexcept {
    return truncated_frames_.load();
  }

  /// Stops the loop, closes every socket and joins the thread
  /// (idempotent).
  void stop();

 private:
  struct Connection {
    std::vector<std::uint8_t> in;   ///< partial-frame reassembly buffer
    std::vector<std::uint8_t> out;  ///< pending reply bytes
    std::size_t out_offset = 0;     ///< bytes of `out` already written
  };

  struct Command {
    enum class Kind { kBeginRound, kCommitRound } kind = Kind::kBeginRound;
    std::vector<std::size_t> participants;
    std::size_t quorum = 1;
    std::promise<fed::RoundResult> result;
  };

  void loop();
  void accept_ready();
  void connection_readable(int fd);
  void connection_writable(int fd);
  bool handle_frame(int fd, Connection& conn, std::uint8_t direction,
                    std::vector<std::uint8_t> payload);
  void queue_reply(int fd, Connection& conn,
                   const std::vector<std::uint8_t>& frame);
  void flush_writes(int fd, Connection& conn);
  void close_connection(int fd);
  void run_commands();
  void update_interest(int fd, bool want_write);

  ShardedServer* server_;
  // The fds are opened in start() before the loop thread exists and closed
  // in stop() after it joins; the loop thread has them to itself in between.
  int epoll_fd_ = -1;  // lint: shard-ok(opened before the loop thread starts, closed after it joins)
  int listener_ = -1;  // lint: shard-ok(opened before the loop thread starts, closed after it joins)
  int wake_fd_ = -1;   // lint: shard-ok(opened before the loop thread starts, closed after it joins)
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  bool stopped_ = false;

  // Loop-thread-owned. lint: shard-ok(only the loop thread touches it while running; orchestrator reads after join)
  std::map<int, Connection> connections_;

  /// Cold path: round commands only. lint: shard-ok(mutex is the crossing primitive itself)
  std::mutex command_mutex_;
  std::deque<Command> commands_;  // lint: shard-ok(guarded by command_mutex_ on both sides)

  // Cached encoding of the global model for fetch replies, refreshed when
  // the server version moves. Loop-thread-owned.
  std::uint64_t cached_version_ = ~std::uint64_t{0};
  std::vector<std::uint8_t> cached_global_;

  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::size_t> uplinks_received_{0};
  std::atomic<std::size_t> fetches_served_{0};
  std::atomic<std::size_t> protocol_errors_{0};
  std::atomic<std::size_t> truncated_frames_{0};
};

}  // namespace fedpower::serve
