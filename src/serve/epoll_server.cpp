#include "serve/epoll_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "fed/tcp_transport.hpp"
#include "fed/transport.hpp"
#include "serve/wire.hpp"
#include "util/assert.hpp"

namespace fedpower::serve {

namespace {

[[noreturn]] void throw_errno(const char* what, int err) {
  throw fed::TransportError(std::string("epoll front end: ") + what + ": " +
                            std::strerror(err));
}

constexpr std::size_t kMaxEvents = 64;
constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

EpollFrontEnd::EpollFrontEnd(ShardedServer* server) : server_(server) {
  FEDPOWER_EXPECTS(server_ != nullptr);
  FEDPOWER_EXPECTS(!server_->global_model().empty());

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1 failed", errno);

  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    throw_errno("eventfd failed", err);
  }

  listener_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listener_ < 0) {
    const int err = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("socket failed", err);
  }
  const int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listener_, 1024) != 0) {
    const int err = errno;
    ::close(listener_);
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("bind/listen failed", err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

EpollFrontEnd::~EpollFrontEnd() { stop(); }

void EpollFrontEnd::stop() {
  if (stopped_) return;
  stopped_ = true;
  running_.store(false);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  if (thread_.joinable()) thread_.join();
  for (const auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  ::close(listener_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
  // Fail any commands posted after the loop quit instead of hanging their
  // waiters.
  const std::lock_guard<std::mutex> lock(command_mutex_);
  for (Command& command : commands_)
    command.result.set_exception(std::make_exception_ptr(
        std::runtime_error("epoll front end stopped")));
  commands_.clear();
}

void EpollFrontEnd::begin_round(std::vector<std::size_t> participants) {
  Command command;
  command.kind = Command::Kind::kBeginRound;
  command.participants = std::move(participants);
  std::future<fed::RoundResult> done = command.result.get_future();
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(std::move(command));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  done.get();  // begin-round reports an empty result; propagate errors
}

fed::RoundResult EpollFrontEnd::commit_round(std::size_t quorum) {
  Command command;
  command.kind = Command::Kind::kCommitRound;
  command.quorum = quorum;
  std::future<fed::RoundResult> done = command.result.get_future();
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(std::move(command));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  return done.get();  // rethrows fed::QuorumError from the loop thread
}

fed::RoundResult EpollFrontEnd::commit_then_begin(
    std::size_t quorum, std::vector<std::size_t> participants) {
  Command command;
  command.kind = Command::Kind::kCommitRound;
  command.quorum = quorum;
  command.begin_next = true;
  command.participants = std::move(participants);
  std::future<fed::RoundResult> done = command.result.get_future();
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(std::move(command));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  return done.get();
}

void EpollFrontEnd::run_commands() {
  std::deque<Command> batch;
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    batch.swap(commands_);
  }
  for (Command& command : batch) {
    try {
      fed::RoundResult result;
      switch (command.kind) {
        case Command::Kind::kBeginRound:
          server_->begin_round(std::move(command.participants));
          break;
        case Command::Kind::kCommitRound:
          result = server_->commit_round(command.quorum);
          // commit_then_begin: the next round opens before any socket
          // event can deliver an uplink against the bumped version.
          if (command.begin_next)
            server_->begin_round(std::move(command.participants));
          break;
      }
      // Refresh the progress mirror before the caller's future resolves:
      // a round driver reading round_distinct() right after begin/commit
      // must see the new round's count, not the previous round's.
      round_distinct_.store(server_->round_distinct_arrivals());
      command.result.set_value(std::move(result));
    } catch (...) {
      command.result.set_exception(std::current_exception());
    }
  }
}

void EpollFrontEnd::loop() {
  // Idle reaping rides on the epoll_wait timeout (no extra thread): with a
  // deadline armed the loop wakes at a fraction of it and sweeps. Even
  // without one the wait stays bounded: worker verdicts land on their own
  // threads, so a wakeup must happen for poll() to collect them and
  // refresh the round_distinct mirror — an unbounded wait would let the
  // last verdicts of a round sit invisible until the next socket event.
  const double idle_timeout_s = server_->config().idle_timeout_s;
  const int wait_ms =
      idle_timeout_s > 0.0
          ? std::clamp(static_cast<int>(idle_timeout_s * 1000.0 / 4.0), 10,
                       500)
          : 50;
  epoll_event events[kMaxEvents];
  while (running_.load()) {
    const int ready = ::epoll_wait(epoll_fd_, events,
                                   static_cast<int>(kMaxEvents), wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // fatal epoll error: shut the loop down
    }
    for (int e = 0; e < ready; ++e) {
      const int fd = events[e].data.fd;
      const std::uint32_t mask = events[e].events;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t n =
            ::read(wake_fd_, &drain, sizeof drain);
        run_commands();
        continue;
      }
      if (fd == listener_) {
        accept_ready();
        continue;
      }
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        // Peer reset. Pending partial input means a frame died mid-wire.
        const auto it = connections_.find(fd);
        if (it != connections_.end() && !it->second.in.empty())
          truncated_frames_.fetch_add(1);
        close_connection(fd);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) connection_writable(fd);
      if ((mask & EPOLLIN) != 0) connection_readable(fd);
      if (idle_timeout_s > 0.0) {
        const auto it = connections_.find(fd);
        if (it != connections_.end())
          it->second.last_activity = std::chrono::steady_clock::now();  // lint: nondet-ok(idle-deadline bookkeeping; wall time never reaches results)
      }
    }
    // Opportunistic pipeline progress: flush deferred frames and collect
    // worker verdicts (merging them in throughput mode) once per wakeup.
    server_->poll();
    round_distinct_.store(server_->round_distinct_arrivals());
    if (idle_timeout_s > 0.0) reap_idle_connections();
  }
}

void EpollFrontEnd::reap_idle_connections() {
  const double idle_timeout_s = server_->config().idle_timeout_s;
  const auto now = std::chrono::steady_clock::now();  // lint: nondet-ok(idle-deadline sweep; wall time never reaches results)
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_) {
    const double idle_s =
        std::chrono::duration<double>(now - conn.last_activity).count();
    if (idle_s >= idle_timeout_s) expired.push_back(fd);
  }
  for (const int fd : expired) {
    // A half-open socket dying with a partial frame buffered is the same
    // mid-wire death every other close path counts.
    const auto it = connections_.find(fd);
    if (it != connections_.end() && !it->second.in.empty())
      truncated_frames_.fetch_add(1);
    idle_reaped_.fetch_add(1);
    server_->note_idle_reap();
    close_connection(fd);
  }
}

void EpollFrontEnd::accept_ready() {
  for (;;) {
    const int conn = ::accept4(listener_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // transient resource failure; keep serving existing clients
    }
    const int nodelay = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn, &ev) != 0) {
      ::close(conn);
      continue;
    }
    Connection fresh;
    fresh.last_activity = std::chrono::steady_clock::now();  // lint: nondet-ok(idle-deadline bookkeeping; wall time never reaches results)
    connections_.emplace(conn, std::move(fresh));
    connections_accepted_.fetch_add(1);
  }
}

void EpollFrontEnd::connection_readable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(fd);
      return;
    }
    if (n == 0) {
      // Orderly close. Bytes short of a frame boundary mean the client
      // died mid-frame (the smoke test's killed client lands here).
      if (!conn.in.empty()) truncated_frames_.fetch_add(1);
      close_connection(fd);
      return;
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
  }

  // Decode every complete frame in the reassembly buffer. kMaxFrameBytes
  // is enforced here, before the advertised length is trusted for
  // anything.
  std::size_t offset = 0;
  while (conn.in.size() - offset >= 4) {
    const std::uint32_t frame_len = fed::load_u32_le(conn.in.data() + offset);
    if (frame_len == 0 || frame_len > fed::kMaxFrameBytes) {
      protocol_errors_.fetch_add(1);
      close_connection(fd);
      return;
    }
    if (conn.in.size() - offset - 4 < frame_len) break;  // partial frame
    const std::uint8_t direction = conn.in[offset + 4];
    std::vector<std::uint8_t> payload(
        conn.in.begin() + static_cast<std::ptrdiff_t>(offset + 5),
        conn.in.begin() + static_cast<std::ptrdiff_t>(offset + 4 + frame_len));
    offset += 4 + frame_len;
    if (!handle_frame(fd, conn, direction, std::move(payload))) {
      protocol_errors_.fetch_add(1);
      close_connection(fd);
      return;
    }
  }
  conn.in.erase(conn.in.begin(),
                conn.in.begin() + static_cast<std::ptrdiff_t>(offset));
}

bool EpollFrontEnd::handle_frame(int fd, Connection& conn,
                                 std::uint8_t direction,
                                 std::vector<std::uint8_t> payload) {
  if (direction == 0) {  // uplink: header + model bytes
    UplinkHeader header;
    if (!decode_uplink_header(payload, header)) return false;
    if (header.client >= server_->client_count()) return false;
    std::vector<std::uint8_t> model(payload.begin() + kUplinkHeaderBytes,
                                    payload.end());
    server_->submit(header.client, header.base_version, std::move(model),
                    static_cast<double>(header.weight));
    uplinks_received_.fetch_add(1);
    // Ack once enqueued; the commit decides acceptance, the ack only
    // bounds the client's uplink latency measurement.
    const std::vector<std::uint8_t> status{0};
    queue_reply(fd, conn,
                fed::encode_frame(fed::Direction::kUplink, status));
    return true;
  }
  if (direction == 1) {  // fetch: reply version + global model
    if (cached_version_ != server_->version()) {
      cached_version_ = server_->version();
      cached_global_ = server_->codec().encode(server_->global_model());
    }
    fetches_served_.fetch_add(1);
    queue_reply(fd, conn,
                fed::encode_frame(fed::Direction::kDownlink,
                                  encode_fetch_reply(cached_version_,
                                                     cached_global_)));
    return true;
  }
  if (direction == kResumeDirection) {  // session-resume handshake
    ResumeRequest request;
    if (!decode_resume_request(payload, request)) return false;
    if (request.client >= server_->client_count()) return false;
    sessions_resumed_.fetch_add(1);
    server_->note_resume(request.client);
    ResumeReply reply;
    reply.version = server_->version();
    reply.rounds_committed = server_->rounds_committed();
    queue_reply(fd, conn,
                encode_serve_frame(kResumeDirection,
                                   encode_resume_reply(reply)));
    return true;
  }
  return false;  // unknown direction byte
}

void EpollFrontEnd::queue_reply(int fd, Connection& conn,
                                const std::vector<std::uint8_t>& frame) {
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  flush_writes(fd, conn);
}

void EpollFrontEnd::flush_writes(int fd, Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        update_interest(fd, true);  // resume when the socket drains
        return;
      }
      close_connection(fd);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(n);
  }
  conn.out.clear();
  conn.out_offset = 0;
  update_interest(fd, false);
}

void EpollFrontEnd::update_interest(int fd, bool want_write) {
  epoll_event ev{};
  ev.events = want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EpollFrontEnd::connection_writable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  flush_writes(fd, it->second);
}

void EpollFrontEnd::close_connection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);
}

}  // namespace fedpower::serve
