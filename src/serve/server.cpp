#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "ckpt/errors.hpp"
#include "fed/defense.hpp"
#include "util/assert.hpp"

namespace fedpower::serve {

namespace {

/// Sentinel client index the injector enqueues to stop a worker.
constexpr std::size_t kStopClient = std::numeric_limits<std::size_t>::max();

/// Reputation moves: small credit on a clean upload, large debit on a
/// corrupt or non-finite one (asymmetric so one bad frame costs five good
/// ones to recover from).
constexpr double kReputationCredit = 0.05;
constexpr double kReputationDebit = 0.25;

constexpr ckpt::Tag kServerTag{'S', 'R', 'V', 'R'};

}  // namespace

ShardedServer::ShardedServer(std::size_t client_count, ServeConfig config,
                             const fed::ModelCodec* codec)
    : config_(config),
      codec_(codec != nullptr ? codec : &fed::Float32Codec::instance()) {
  FEDPOWER_EXPECTS(client_count >= 1);
  FEDPOWER_EXPECTS(config_.mixing_rate > 0.0 && config_.mixing_rate <= 1.0);
  FEDPOWER_EXPECTS(config_.staleness_power >= 0.0);
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.queue_depth = std::max<std::size_t>(2, config_.queue_depth);
  config_.batch_max = std::max<std::size_t>(1, config_.batch_max);
  records_.resize(client_count);
  client_resumes_.assign(client_count, 0);
  shards_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    shards_.push_back(std::make_unique<Shard>(config_.queue_depth));
  for (std::size_t w = 0; w < config_.workers; ++w)
    shards_[w]->thread = std::thread([this, w] { worker_main(w); });
}

ShardedServer::~ShardedServer() { stop(); }

void ShardedServer::initialize(std::vector<double> global) {
  FEDPOWER_EXPECTS(!global.empty());
  global_ = std::move(global);
  model_size_ = global_.size();
}

void ShardedServer::set_executor(util::ParallelFor executor) {
  executor_ = std::move(executor);
}

void ShardedServer::begin_round(std::vector<std::size_t> participants) {
  FEDPOWER_EXPECTS(!round_open_);
  for (const std::size_t p : participants)
    FEDPOWER_EXPECTS(p < records_.size());
  participants_ = std::move(participants);
  std::sort(participants_.begin(), participants_.end());
  round_records_.clear();
  round_accepted_ = 0;
  round_uplink_bytes_ = 0;
  round_seen_.assign(records_.size(), 0);
  round_distinct_ = 0;
  round_open_ = true;
}

void ShardedServer::note_resume(std::size_t client) {
  FEDPOWER_EXPECTS(client < client_resumes_.size());
  ++stats_.resumes;
  ++client_resumes_[client];
}

std::uint64_t ShardedServer::client_resumes(std::size_t client) const {
  FEDPOWER_EXPECTS(client < client_resumes_.size());
  return client_resumes_[client];
}

void ShardedServer::submit(std::size_t client, std::uint64_t base_version,
                           std::vector<std::uint8_t> payload, double weight) {
  FEDPOWER_EXPECTS(client < records_.size());
  FEDPOWER_EXPECTS(!global_.empty());  // initialize() must run first
  Shard& shard = *shards_[client % shards_.size()];
  flush_overflow(shard);
  Upload upload;
  upload.client = client;
  upload.base_version = base_version;
  upload.weight = weight;
  upload.payload = std::move(payload);
  // Deferred frames must stay ahead of newer ones (per-shard FIFO), so a
  // non-empty overflow list forces this frame behind it.
  bool queued = false;
  if (shard.overflow.empty()) queued = shard.inbox.try_push(std::move(upload));
  if (!queued) {
    shard.overflow.push_back(std::move(upload));
    ++stats_.deferred;
  }
  ++submitted_total_;
}

void ShardedServer::poll() {
  for (auto& shard : shards_) flush_overflow(*shard);
  collect();
}

void ShardedServer::drain() {
  for (;;) {
    for (auto& shard : shards_) flush_overflow(*shard);
    // Load the progress counter BEFORE collecting: anything a worker
    // finishes after this load but before the wait below changes the
    // counter and makes the wait return immediately, so no wakeup is lost.
    const std::uint64_t before =
        processed_total_.load(std::memory_order_acquire);
    collect();
    bool overflow_empty = true;
    for (const auto& shard : shards_)
      overflow_empty = overflow_empty && shard->overflow.empty();
    if (overflow_empty && collected_total_ == submitted_total_) return;
    processed_total_.wait(before, std::memory_order_acquire);
  }
}

fed::RoundResult ShardedServer::commit_round(std::size_t quorum) {
  FEDPOWER_EXPECTS(round_open_);
  drain();

  fed::RoundResult result;
  result.round = rounds_committed_ + 1;
  result.participants = participants_;

  // Order the buffered verdicts by client index — the deterministic-mode
  // contract — keeping per-client arrival order (stable) so a duplicate
  // submission resolves to the first arrival.
  std::stable_sort(round_records_.begin(), round_records_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.client < b.client;
                   });

  std::vector<char> is_participant(records_.size(), 0);
  for (const std::size_t p : participants_) is_participant[p] = 1;

  std::vector<std::vector<double>> locals;
  std::vector<double> weights;
  std::vector<char> arrived(records_.size(), 0);
  locals.reserve(round_records_.size());
  for (Pending& p : round_records_) {
    if (!is_participant[p.client]) continue;
    if (arrived[p.client]) {
      // First-arrival dedup: a reconnecting client's re-sent uplink is
      // idempotent — the retry is counted, never aggregated twice.
      ++stats_.duplicates;
      continue;
    }
    arrived[p.client] = 1;
    switch (p.verdict) {
      case Verdict::kAccepted:
        if (config_.mode == CommitMode::kDeterministic) {
          locals.push_back(std::move(p.model));
          weights.push_back(p.weight);
        }
        break;
      case Verdict::kCorrupt:
        result.dropped.push_back(p.client);
        break;
      case Verdict::kNonFinite:
        result.rejected.push_back(p.client);
        break;
      case Verdict::kNormScreened:
        result.screened.push_back(p.client);
        break;
    }
  }
  // Participants that never produced a frame (transport fault upstream, or
  // a client killed mid-round) are dropouts, exactly like the synchronous
  // server's lost set.
  for (const std::size_t p : participants_)
    if (!arrived[p]) result.dropped.push_back(p);
  std::sort(result.dropped.begin(), result.dropped.end());
  result.uplink_bytes = round_uplink_bytes_;

  const std::size_t survivors = config_.mode == CommitMode::kDeterministic
                                    ? locals.size()
                                    : round_accepted_;
  const std::size_t required =
      std::max<std::size_t>(1, std::min(quorum, participants_.size()));
  if (survivors < required) {
    // Abort the round without touching the global model or the round
    // counter (throughput-mode merges already applied stand, as in
    // AsyncFederation where a merge is final once made).
    round_records_.clear();
    round_open_ = false;
    throw fed::QuorumError(survivors, required);
  }

  if (config_.mode == CommitMode::kDeterministic) {
    fed::AggregateOutcome outcome;
    global_ = fed::aggregate_with_mode(config_.aggregation, locals, weights,
                                       config_.trim_override, executor_,
                                       outcome);
    result.trim_count = outcome.trim_count;
    result.trim_clamped = outcome.trim_clamped;
    ++version_;
  }

  round_records_.clear();
  round_open_ = false;
  ++rounds_committed_;
  return result;
}

const ClientRecord& ShardedServer::client_record(std::size_t client) const {
  FEDPOWER_EXPECTS(client < records_.size());
  FEDPOWER_EXPECTS(collected_total_ == submitted_total_);  // quiescent only
  return records_[client];
}

void ShardedServer::worker_main(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Upload> batch;
  batch.reserve(config_.batch_max);
  for (;;) {
    batch.clear();
    if (shard.inbox.pop_batch(batch, config_.batch_max) == 0) {
      shard.inbox.wait_for_item();
      continue;
    }
    for (Upload& upload : batch) {
      if (upload.client == kStopClient) return;
      process(shard, std::move(upload));
    }
  }
}

void ShardedServer::process(Shard& shard, Upload upload) {
  Pending pending;
  pending.client = upload.client;
  pending.base_version = upload.base_version;
  pending.weight = upload.weight;
  pending.payload_bytes = upload.payload.size();

  ClientRecord& record = records_[upload.client];
  record.base_version_seen = upload.base_version;
  try {
    pending.model = codec_->decode(upload.payload);
    if (pending.model.size() != model_size_) {
      pending.verdict = Verdict::kCorrupt;  // wrong shape: treat as corrupt
    } else if (fed::any_non_finite(pending.model)) {
      // Shared screening primitive (screening-parity contract, DESIGN.md
      // §13): the exact predicate the synchronous defense pipeline applies,
      // so verdict counters match under identical fault seeds.
      pending.verdict = Verdict::kNonFinite;
    } else {
      pending.verdict = Verdict::kAccepted;
    }
  } catch (const std::invalid_argument&) {
    pending.verdict = Verdict::kCorrupt;  // codec rejected the payload
  }

  if (pending.verdict == Verdict::kAccepted &&
      config_.norm_screen_multiplier > 0.0 &&
      record.norm_count >= config_.norm_min_samples) {
    // Norm screen against the client's OWN accepted-norm history (never
    // cross-shard state, so snapshot bytes stay worker-count invariant).
    // Median and norm come from the same fed:: primitives as the defense
    // pipeline.
    const std::size_t window = static_cast<std::size_t>(
        std::min<std::uint64_t>(record.norm_count, kNormWindow));
    std::vector<double> history(record.norms.begin(),
                                record.norms.begin() +
                                    static_cast<std::ptrdiff_t>(window));
    const double median = fed::robust_median(std::move(history));
    const double norm = fed::l2_norm(pending.model);
    if (median > 0.0 && norm > config_.norm_screen_multiplier * median)
      pending.verdict = Verdict::kNormScreened;
  }

  if (pending.verdict == Verdict::kAccepted) {
    ++record.accepted;
    record.reputation = std::min(1.0, record.reputation + kReputationCredit);
    record.norms[static_cast<std::size_t>(record.norm_count % kNormWindow)] =
        fed::l2_norm(pending.model);
    ++record.norm_count;
  } else {
    if (pending.verdict == Verdict::kCorrupt)
      ++record.corrupt;
    else if (pending.verdict == Verdict::kNormScreened)
      ++record.screened;
    else
      ++record.rejected;
    record.reputation = std::max(0.0, record.reputation - kReputationDebit);
    pending.model.clear();
  }

  for (;;) {
    if (shard.done.try_push(std::move(pending))) break;
    shard.done.wait_for_space();
  }
  processed_total_.fetch_add(1, std::memory_order_release);
  processed_total_.notify_one();
}

void ShardedServer::flush_overflow(Shard& shard) {
  while (!shard.overflow.empty()) {
    if (!shard.inbox.try_push(std::move(shard.overflow.front()))) return;
    shard.overflow.pop_front();
  }
}

void ShardedServer::collect() {
  Pending pending;
  for (auto& shard : shards_) {
    while (shard->done.try_pop(pending)) {
      ++collected_total_;
      absorb(std::move(pending));
    }
  }
}

void ShardedServer::absorb(Pending pending) {
  // Round-replay guard (deterministic mode): an uplink whose base version
  // predates the current global model arrived after the round it was
  // trained for committed — a reconnecting client's re-send crossing the
  // commit boundary, not a contribution to the open round. Admitting it
  // would aggregate a stale model into a later round (and first-arrival
  // dedup would then bounce that client's genuine fresh upload), so it is
  // resolved here with the other duplicates. Throughput mode is untouched:
  // it merges stale uploads under staleness discounting by design.
  if (config_.mode == CommitMode::kDeterministic && round_open_ &&
      pending.base_version < version_) {
    ++stats_.duplicates;
    return;
  }
  switch (pending.verdict) {
    case Verdict::kAccepted:
      ++stats_.uplinks_accepted;
      break;
    case Verdict::kCorrupt:
      ++stats_.uplinks_corrupt;
      break;
    case Verdict::kNonFinite:
      ++stats_.uplinks_rejected;
      break;
    case Verdict::kNormScreened:
      ++stats_.uplinks_screened;
      break;
  }
  if (pending.verdict == Verdict::kAccepted) {
    if (config_.mode == CommitMode::kThroughput) {
      merge_async(pending);
      pending.model.clear();  // merged; only the verdict feeds the round log
    }
    if (round_open_) {
      ++round_accepted_;
      round_uplink_bytes_ += pending.payload_bytes;
    }
  }
  if (round_open_) {
    // Distinct-arrival progress: the first frame a client lands this round
    // (whatever its verdict) moves the counter; retries do not. Round
    // drivers over lossy transports wait on this before committing.
    if (round_seen_[pending.client] == 0) {
      round_seen_[pending.client] = 1;
      ++round_distinct_;
    }
    round_records_.push_back(std::move(pending));
  }
}

void ShardedServer::merge_async(const Pending& pending) {
  FEDPOWER_ASSERT(!global_.empty());
  const std::uint64_t base = std::min(pending.base_version, version_);
  const double staleness = static_cast<double>(version_ - base);
  const double weight =
      config_.mixing_rate /
      std::pow(1.0 + staleness, config_.staleness_power);
  const std::vector<double>& local = pending.model;
  // Per-coordinate blend, sharded across the executor for large models
  // with bit-identical results (coordinates are independent).
  if (executor_ && global_.size() >= fed::kParallelAggregationMinWork) {
    executor_(global_.size(), [&](std::size_t i) {
      global_[i] = (1.0 - weight) * global_[i] + weight * local[i];
    });
  } else {
    for (std::size_t i = 0; i < global_.size(); ++i)
      global_[i] = (1.0 - weight) * global_[i] + weight * local[i];
  }
  ++version_;
  ++stats_.merges;
  staleness_sum_ += staleness;
  stats_.max_staleness = std::max(stats_.max_staleness, staleness);
  stats_.mean_staleness =
      staleness_sum_ / static_cast<double>(stats_.merges);
}

void ShardedServer::stop() {
  if (stopped_) return;
  for (auto& shard : shards_) {
    for (;;) {
      flush_overflow(*shard);
      if (shard->overflow.empty()) {
        Upload sentinel;
        sentinel.client = kStopClient;
        if (shard->inbox.try_push(std::move(sentinel))) break;
      }
      // The shard is backed up: free done-queue slots (a worker may be
      // parked on a full done queue) and wait for the worker to make room.
      collect();
      shard->inbox.wait_for_space();
    }
  }
  for (auto& shard : shards_)
    if (shard->thread.joinable()) shard->thread.join();
  collect();  // absorb any verdicts that finished after the last poll
  stopped_ = true;
}

void ShardedServer::save_state(ckpt::Writer& out) const {
  FEDPOWER_EXPECTS(collected_total_ == submitted_total_);  // quiescent only
  ckpt::write_tag(out, kServerTag);
  out.u64(records_.size());
  out.u64(version_);
  out.u64(rounds_committed_);
  out.vec_f64(global_);
  out.u64(stats_.uplinks_accepted);
  out.u64(stats_.uplinks_corrupt);
  out.u64(stats_.uplinks_rejected);
  out.u64(stats_.uplinks_screened);
  out.u64(stats_.deferred);
  out.u64(stats_.merges);
  out.u64(stats_.duplicates);
  out.u64(stats_.resumes);
  out.u64(stats_.idle_reaped);
  out.f64(stats_.max_staleness);
  out.f64(staleness_sum_);
  for (const std::uint64_t r : client_resumes_) out.u64(r);
  for (const ClientRecord& record : records_) {
    out.u64(record.base_version_seen);
    out.u64(record.accepted);
    out.u64(record.corrupt);
    out.u64(record.rejected);
    out.u64(record.screened);
    out.u64(record.norm_count);
    out.f64(record.reputation);
    for (const double n : record.norms) out.f64(n);
  }
}

void ShardedServer::restore_state(ckpt::Reader& in) {
  FEDPOWER_EXPECTS(collected_total_ == submitted_total_);  // quiescent only
  ckpt::expect_tag(in, kServerTag, "sharded federation server");
  const std::uint64_t client_count = in.u64();
  if (client_count != records_.size())
    throw ckpt::StateMismatchError(
        "server snapshot was taken with " + std::to_string(client_count) +
        " client(s), this server has " + std::to_string(records_.size()));
  version_ = in.u64();
  rounds_committed_ = static_cast<std::size_t>(in.u64());
  global_ = in.vec_f64();
  model_size_ = global_.size();
  stats_.uplinks_accepted = static_cast<std::size_t>(in.u64());
  stats_.uplinks_corrupt = static_cast<std::size_t>(in.u64());
  stats_.uplinks_rejected = static_cast<std::size_t>(in.u64());
  stats_.uplinks_screened = static_cast<std::size_t>(in.u64());
  stats_.deferred = static_cast<std::size_t>(in.u64());
  stats_.merges = static_cast<std::size_t>(in.u64());
  stats_.duplicates = static_cast<std::size_t>(in.u64());
  stats_.resumes = static_cast<std::size_t>(in.u64());
  stats_.idle_reaped = static_cast<std::size_t>(in.u64());
  stats_.max_staleness = in.f64();
  staleness_sum_ = in.f64();
  for (std::uint64_t& r : client_resumes_) r = in.u64();
  stats_.mean_staleness =
      stats_.merges > 0
          ? staleness_sum_ / static_cast<double>(stats_.merges)
          : 0.0;
  for (ClientRecord& record : records_) {
    record.base_version_seen = in.u64();
    record.accepted = in.u64();
    record.corrupt = in.u64();
    record.rejected = in.u64();
    record.screened = in.u64();
    record.norm_count = in.u64();
    record.reputation = in.f64();
    for (double& n : record.norms) n = in.f64();
  }
}

}  // namespace fedpower::serve
