// Sharded federation server: injector -> per-worker SPSC queues, static
// client shards, two commit modes (DESIGN.md §12).
//
// The KVell idiom: one injector thread decodes/validates nothing itself —
// it routes each uplink to the worker that statically owns the client
// (client mod workers) over a bounded SPSC queue. Each worker owns its
// shard of per-client state (reputation, robust-norm window, screening
// verdicts, staleness bookkeeping) outright, so the hot path takes no
// locks: correctness comes from partitioning, not mutual exclusion. A full
// queue applies backpressure — the frame is deferred on the injector side
// and surfaces in stats().deferred; it is never dropped silently.
//
// Commit modes:
//  * kDeterministic buffers worker verdicts for the round and commits in
//    client-index order at the round boundary, running the exact same
//    aggregation code as the synchronous FederatedAveraging server
//    (fed::aggregate_with_mode). The result is bit-identical to the
//    synchronous path at ANY worker count — the PR 2/PR 6 contract.
//  * kThroughput merges each accepted upload FedAsync-style as it is
//    collected, discounted by staleness (server_version - client base
//    version), relaxing only ordering.
//
// Threading contract: exactly one orchestrator thread calls the public
// mutating API (begin_round/submit/poll/drain/commit_round/initialize/
// save_state/restore_state); workers never touch anything outside their
// shard. save_state/restore_state additionally require quiescence (no
// in-flight uploads), which drain() establishes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "ckpt/binary_io.hpp"
#include "fed/aggregate.hpp"
#include "fed/codec.hpp"
#include "fed/federation.hpp"
#include "serve/spsc_queue.hpp"
#include "util/executor.hpp"

namespace fedpower::serve {

enum class CommitMode {
  kDeterministic,  ///< round-boundary commit, bit-identical to sync FedAvg
  kThroughput,     ///< FedAsync-style staleness-discounted merge per upload
};

struct ServeConfig {
  std::size_t workers = 1;       ///< shard count (static client partition)
  std::size_t queue_depth = 256; ///< per-shard SPSC capacity (frames)
  std::size_t batch_max = 16;    ///< worker batched-dequeue burst size
  CommitMode mode = CommitMode::kDeterministic;
  fed::AggregationMode aggregation = fed::AggregationMode::kUnweightedMean;
  std::optional<std::size_t> trim_override;  ///< trimmed-mean budget override
  double mixing_rate = 0.5;      ///< throughput mode: FedAsync alpha
  double staleness_power = 1.0;  ///< throughput mode: discount exponent
  /// Shard-local norm screen: an upload whose L2 norm exceeds this multiple
  /// of the client's own recent accepted-norm median is screened out
  /// (Verdict kNormScreened -> RoundResult::screened), using the same
  /// fed::robust_median / fed::l2_norm primitives as the defense pipeline.
  /// Per-client history only — never cross-shard state — so verdicts and
  /// snapshot bytes stay identical at any worker count. 0 disables (the
  /// default, preserving the PR 7 verdict taxonomy byte-for-byte).
  double norm_screen_multiplier = 0.0;
  /// Accepted norms a client must have banked before its screen arms.
  std::size_t norm_min_samples = 4;
  /// Idle/half-open connection deadline for the epoll front end, in
  /// seconds: a connection with no traffic for this long is reaped
  /// (stats().idle_reaped). 0 disables, preserving the PR 7 behavior of
  /// holding a half-open slot forever.
  double idle_timeout_s = 0.0;
};

struct ServeStats {
  std::size_t uplinks_accepted = 0;  ///< decoded, right shape, finite
  std::size_t uplinks_corrupt = 0;   ///< codec reject or wrong shape
  std::size_t uplinks_rejected = 0;  ///< non-finite screened out
  std::size_t uplinks_screened = 0;  ///< norm-screen rejects (screen armed)
  std::size_t deferred = 0;          ///< backpressure: frames queued overflow
  std::size_t merges = 0;            ///< throughput-mode merges applied
  /// Re-sent uplinks resolved away: round duplicates folded to the first
  /// arrival at commit, plus deterministic-mode replays whose round had
  /// already committed when they landed. Never reach the model.
  std::size_t duplicates = 0;
  /// Session-resume handshakes served (connection churn, fleet-wide).
  std::size_t resumes = 0;
  /// Idle/half-open connections reaped by the front end's deadline.
  std::size_t idle_reaped = 0;
  double max_staleness = 0.0;
  double mean_staleness = 0.0;
};

/// Robust-norm history window per client (ring buffer length).
inline constexpr std::size_t kNormWindow = 8;

/// Per-client serving state. Owned exclusively by the worker whose shard
/// the client maps to; the orchestrator may only read it at quiescence.
struct ClientRecord {
  std::uint64_t base_version_seen = 0;
  std::uint64_t accepted = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t rejected = 0;
  std::uint64_t screened = 0;    ///< norm-screen rejects (screen armed only)
  std::uint64_t norm_count = 0;  ///< total norms recorded (ring write cursor)
  double reputation = 1.0;       ///< [0, 1]; credit on accept, debit on bad
  std::array<double, kNormWindow> norms{};  ///< recent upload L2 norms
};

class ShardedServer {
 public:
  ShardedServer(std::size_t client_count, ServeConfig config = {},
                const fed::ModelCodec* codec = nullptr);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Installs the initial global model. Must run before the first submit.
  void initialize(std::vector<double> global);

  /// Executor for the commit-time aggregation (and large throughput
  /// merges); empty means serial. Same bit-identity contract as
  /// fed::aggregate.hpp.
  void set_executor(util::ParallelFor executor);

  /// Opens a round: records the drawn participant set and clears the
  /// per-round upload log. Frames collected while no round is open are
  /// counted in stats() but belong to no round.
  void begin_round(std::vector<std::size_t> participants);

  /// Routes one uplink payload to its shard. `base_version` is the server
  /// version the client trained from (staleness bookkeeping); `weight` is
  /// its sample count for weighted aggregation. Never blocks and never
  /// drops: a full shard queue defers the frame to an injector-side
  /// overflow list (stats().deferred) that flushes ahead of newer frames.
  void submit(std::size_t client, std::uint64_t base_version,
              std::vector<std::uint8_t> payload, double weight);

  /// Opportunistic progress: flushes deferred frames and collects finished
  /// worker verdicts (merging them immediately in throughput mode).
  void poll();

  /// Blocks until every submitted frame has been processed and collected.
  void drain();

  /// Closes the round. Deterministic mode aggregates the buffered
  /// survivors in client-index order (bit-identical to the synchronous
  /// server); throughput mode has already merged and only reports. Throws
  /// fed::QuorumError — leaving the global model and round counter
  /// untouched — when fewer than `quorum` uploads survived.
  fed::RoundResult commit_round(std::size_t quorum);

  [[nodiscard]] const std::vector<double>& global_model() const noexcept {
    return global_;
  }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::size_t rounds_committed() const noexcept {
    return rounds_committed_;
  }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return records_.size();
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t submitted() const noexcept {
    return submitted_total_;
  }
  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const fed::ModelCodec& codec() const noexcept {
    return *codec_;
  }
  [[nodiscard]] CommitMode mode() const noexcept { return config_.mode; }
  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// Connection-churn accounting (orchestrator-owned, so the front end's
  /// loop thread — the server's sole orchestrator while it runs — may call
  /// these without crossing a shard boundary).
  void note_resume(std::size_t client);
  void note_idle_reap() { ++stats_.idle_reaped; }
  [[nodiscard]] std::uint64_t client_resumes(std::size_t client) const;

  /// Distinct participants whose uplink for the open round has been
  /// collected so far (first arrival only; duplicates do not advance it).
  /// Orchestrator-owned progress signal for round drivers that wait for
  /// the full draw before committing.
  [[nodiscard]] std::size_t round_distinct_arrivals() const noexcept {
    return round_distinct_;
  }

  /// Per-client state. Only valid at quiescence (after drain()).
  [[nodiscard]] const ClientRecord& client_record(std::size_t client) const;

  /// FPCK section (tag SRVR): version, round counter, global model, stats
  /// and every per-client record. Requires quiescence; restoring into a
  /// server with a different client count throws StateMismatchError. The
  /// snapshot bytes are identical at any worker count (per-client state
  /// depends only on that client's upload sequence, never on the shard
  /// schedule).
  void save_state(ckpt::Writer& out) const;
  void restore_state(ckpt::Reader& in);

 private:
  enum class Verdict : std::uint8_t {
    kAccepted,
    kCorrupt,
    kNonFinite,
    kNormScreened,  ///< norm outside the client's own envelope (screen armed)
  };

  struct Upload {
    std::size_t client = 0;
    std::uint64_t base_version = 0;
    double weight = 1.0;
    std::vector<std::uint8_t> payload;
  };

  struct Pending {
    std::size_t client = 0;
    std::uint64_t base_version = 0;
    Verdict verdict = Verdict::kCorrupt;
    double weight = 1.0;
    std::size_t payload_bytes = 0;
    std::vector<double> model;  ///< empty unless accepted
  };

  struct Shard {
    explicit Shard(std::size_t depth) : inbox(depth), done(depth) {}
    SpscQueue<Upload> inbox;   ///< injector -> worker
    SpscQueue<Pending> done;   ///< worker -> injector
    std::deque<Upload> overflow;  ///< injector-owned backpressure buffer
    std::thread thread;
  };

  void worker_main(std::size_t shard_index);
  void process(Shard& shard, Upload upload);
  void flush_overflow(Shard& shard);
  void collect();
  void absorb(Pending pending);
  void merge_async(const Pending& pending);
  void stop();

  // lint: ckpt-skip(construction config, fixed for the run) lint: shard-ok(set before start(); read-only afterwards)
  ServeConfig config_;
  const fed::ModelCodec* codec_;  // lint: ckpt-skip(non-owning strategy object; re-wired on resume)
  std::vector<ClientRecord> records_;  // lint: shard-ok(workers read only their own shard's rows; resized only at quiescence)
  // lint: ckpt-skip(shard scratch rebuilt by start()) lint: shard-ok(each worker touches only its own shard slot)
  std::vector<std::unique_ptr<Shard>> shards_;
  util::ParallelFor executor_;  // lint: ckpt-skip(thread pool handle; commits are width-invariant)

  std::vector<double> global_;
  // lint: ckpt-skip(derived from global_.size() on restore) lint: shard-ok(fixed after attach; workers read it only between rounds)
  std::size_t model_size_ = 0;
  std::uint64_t version_ = 0;
  std::size_t rounds_committed_ = 0;

  // In-flight round state: snapshots are taken only at quiescence, between
  // open_round/commit pairs, so none of it can be live in a checkpoint.
  bool round_open_ = false;  // lint: ckpt-skip(in-flight round state; snapshots only at quiescence)
  std::vector<std::size_t> participants_;  // lint: ckpt-skip(in-flight round state; snapshots only at quiescence)
  /// Models only in deterministic mode. lint: ckpt-skip(in-flight round state; snapshots only at quiescence)
  std::vector<Pending> round_records_;
  std::size_t round_accepted_ = 0;  // lint: ckpt-skip(in-flight round state; snapshots only at quiescence)
  std::size_t round_uplink_bytes_ = 0;  // lint: ckpt-skip(in-flight round state; snapshots only at quiescence)
  /// First-arrival flags for the open round. lint: ckpt-skip(in-flight round state; snapshots only at quiescence)
  std::vector<char> round_seen_;
  std::size_t round_distinct_ = 0;  // lint: ckpt-skip(in-flight round state; snapshots only at quiescence)

  ServeStats stats_;
  double staleness_sum_ = 0.0;
  /// Session-resume handshakes per client (orchestrator-owned; the shard
  /// workers never see connection churn).
  std::vector<std::uint64_t> client_resumes_;

  std::size_t submitted_total_ = 0;   // orchestrator-owned
  std::size_t collected_total_ = 0;   // orchestrator-owned
  // Workers bump + notify. lint: ckpt-skip(drains to zero at quiescence; always zero in a snapshot)
  std::atomic<std::uint64_t> processed_total_{0};
  bool stopped_ = false;  // lint: ckpt-skip(lifecycle latch; a restored server restarts its workers)
};

}  // namespace fedpower::serve
